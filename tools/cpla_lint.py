#!/usr/bin/env python3
"""cpla-lint: project-specific static analysis for the CPLA repository.

Cross-file checks no generic linter knows about:

  fault-site-undeclared   every CPLA_FAULT_POINT("...") string used in src/
                          must be declared in src/util/fault_sites.hpp
  fault-site-unused       every site declared in src/util/fault_sites.hpp
                          must have a CPLA_FAULT_POINT in src/
  fault-site-unknown-arm  every site a test arms (arm / arm_always / disarm)
                          must exist as a fault point in src/ or in the
                          arming file itself (injector unit tests)
  metric-unregistered     every metric name tests/bench query against the
                          global registry must be registered by
                          instrumentation in src/
  no-direct-stdout        library code must not print directly (std::cout,
                          printf, fprintf(stdout/stderr), puts); route
                          output through src/util/logging
  solver-nondeterminism   no rand()/srand()/std::random_device inside the
                          solver modules (la, lp, ilp, sdp); solvers must
                          be bit-reproducible across runs
  missing-pragma-once     every header starts with #pragma once  [--fix]
  using-namespace-header  no `using namespace` at any scope in headers

Determinism-contract checks, keyed off src/util/determinism_contract.hpp
(the registry of bit-identity TUs and order-sensitive directories; all
three are skipped when the registry header is absent, e.g. in fixtures):

  determinism-fp-contract   every TU in kBitIdentityTUs must be compiled
                            with -ffp-contract=off; the owning
                            CMakeLists.txt is parsed (including one level
                            of ${var} indirection through set / list(APPEND))
                            to prove the flag is actually applied
  determinism-omp-reduction no `#pragma omp ... reduction(...)` and no
                            `#pragma omp atomic` inside a registered TU —
                            reassociated or racing accumulation breaks
                            bit-identity
  unordered-iteration       no range-for over a std::unordered_{map,set}
                            declared in the same file, inside the
                            directories listed in kOrderSensitiveDirs
                            (iteration order reaches solver inputs there)

Concurrency/suppression hygiene:

  mutex-guard-coverage      no raw std::mutex / std::condition_variable
                            members in src/ (use cpla::Mutex / CondVar from
                            src/util/mutex.hpp so Clang Thread Safety
                            Analysis sees them); every `Mutex x;` member in
                            a src/ header must have at least one
                            CPLA_GUARDED_BY(x) in the same file
  suppression-rationale     every `// cpla-lint: allow(check)` comment must
                            carry a trailing ` -- why` rationale; this
                            check cannot itself be suppressed

Findings print as `path:line: [check] message` or, with --format json, as a
machine-readable document (schema cpla-lint-v1). `--fix` applies the safe
fixes (inserting #pragma once, appending missing fault-site declarations to
the registry). A finding can be suppressed for one line with a trailing
`// cpla-lint: allow(check-name) -- rationale` comment; an allow comment
alone on a line suppresses the line below it. `--list-suppressions` prints
the full suppression inventory; `--self-test` runs the linter's own test
suite (tests/lint/lint_selftest.py).

Exit status: 0 clean, 1 findings, 2 usage or internal error.

Dependency-free by design: stdlib only, so it runs in any CI image and as a
ctest with no environment setup.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

SCHEMA = "cpla-lint-v1"

CHECKS = (
    "fault-site-undeclared",
    "fault-site-unused",
    "fault-site-unknown-arm",
    "metric-unregistered",
    "no-direct-stdout",
    "solver-nondeterminism",
    "missing-pragma-once",
    "using-namespace-header",
    "determinism-fp-contract",
    "determinism-omp-reduction",
    "unordered-iteration",
    "mutex-guard-coverage",
    "suppression-rationale",
)

REGISTRY_RELPATH = Path("src/util/fault_sites.hpp")
DETERMINISM_RELPATH = Path("src/util/determinism_contract.hpp")
# Files allowed to hold raw std:: synchronisation primitives: the annotated
# wrapper itself and the annotation macros.
RAW_SYNC_EXEMPT = ("src/util/mutex.hpp", "src/util/mutex.cpp", "src/util/thread_annotations.hpp")
SOLVER_DIRS = ("la", "lp", "ilp", "sdp")
HEADER_SUFFIXES = (".hpp", ".h")
SOURCE_SUFFIXES = (".hpp", ".h", ".cpp", ".cc")
FP_CONTRACT_FLAG = "-ffp-contract=off"

ALLOW_RE = re.compile(r"cpla-lint:\s*allow\(([a-z0-9_,\s-]+)\)(?:\s*--\s*(.*\S))?")
FAULT_POINT_RE = re.compile(r'CPLA_FAULT_POINT\s*\(\s*"([^"]+)"\s*\)')
ARM_RE = re.compile(r'\b(?:arm|arm_always|disarm)\s*\(\s*"([^"]+)"')
METRIC_RE = re.compile(r'(?<![A-Za-z0-9_])(counter|gauge|histogram)\s*\(\s*"([^"]+)"\s*([,)])')
SCOPED_PHASE_RE = re.compile(r'\bScopedPhase\s+\w+\s*[({]\s*"([^"]+)"\s*([,)}])')
GLOBAL_RECEIVER_RE = re.compile(r"(?:\bobs\s*::\s*)?\bmetrics\s*\(\s*\)\s*\.\s*$")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
STDOUT_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*cout\b"), "std::cout"),
    (re.compile(r"\bstd\s*::\s*cerr\b"), "std::cerr"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?printf\s*\("), "printf"),
    (
        re.compile(r"(?<![\w:.])(?:std\s*::\s*)?v?fprintf\s*\(\s*(?:stdout|stderr)\b"),
        "fprintf(stdout/stderr)",
    ),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?puts\s*\("), "puts"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?putchar\s*\("), "putchar"),
    (
        re.compile(
            r"(?<![\w:.])(?:std\s*::\s*)?(?:fputs|fputc|fwrite)"
            r"\s*\([^()]*,\s*(?:stdout|stderr)\s*\)"
        ),
        "fputs/fwrite(stdout/stderr)",
    ),
)
NONDETERMINISM_PATTERNS = (
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
)
OMP_PATTERNS = (
    (re.compile(r"#\s*pragma\s+omp\b[^\n]*\breduction\s*\("), "OpenMP reduction clause"),
    (re.compile(r"#\s*pragma\s+omp\s+atomic\b"), "#pragma omp atomic"),
)
UNORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\([^();]*?:\s*([A-Za-z_]\w*(?:\s*(?:\.|->)\s*\w+)*)\s*\)"
)
RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?)\s+\w+\s*[;={]"
)
# Terminator set covers `Mutex m;`, `Mutex m{};`, and `Mutex m = ...;`
# (MutexLock locals don't match: `Mutex` is bounded by \b\s+).
MUTEX_MEMBER_RE = re.compile(r"\bMutex\s+(\w+)\s*[;={]")
GUARDED_BY_RE = re.compile(r"\bCPLA_(?:PT_)?GUARDED_BY\s*\(\s*(\w+)\s*\)")
CMAKE_ARRAY_RES = {
    "tus": re.compile(r"kBitIdentityTUs\s*\[\s*\]\s*=\s*\{([^}]*)\}"),
    "dirs": re.compile(r"kOrderSensitiveDirs\s*\[\s*\]\s*=\s*\{([^}]*)\}"),
}


@dataclass
class Finding:
    check: str
    path: Path
    line: int
    message: str
    fixable: bool = False

    def render(self, root: Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.check}] {self.message}"


@dataclass
class Suppression:
    """One `// cpla-lint: allow(...)` comment, as written in the file."""

    line: int  # 1-based line the comment sits on
    checks: set[str]
    rationale: str | None  # text after ` -- `, None when absent


@dataclass
class SourceFile:
    """One scanned file: raw text, comment-stripped text, suppressions."""

    path: Path
    raw: str
    code: str  # comments blanked out, strings and line structure preserved
    allows: dict[int, set[str]]  # 1-based line -> suppressed check names
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def code_lines(self) -> list[str]:
        return self.code.splitlines()


def strip_comments(text: str) -> str:
    """Blanks // and /* */ comment bodies, preserving newlines, string and
    character literals (including escapes), and raw string literals. Keeping
    offsets identical to the input makes every downstream regex line-accurate.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif ch == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif ch == "R" and nxt == '"' and (i == 0 or not text[i - 1].isalnum()):
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                end = text.find(f"){m.group(1)}\"", i + m.end())
                i = n if end < 0 else end + len(m.group(1)) + 2
            else:
                i += 1
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            i += 1
    return "".join(out)


def parse_allows(raw: str) -> tuple[dict[int, set[str]], list[Suppression]]:
    allows: dict[int, set[str]] = {}
    suppressions: list[Suppression] = []
    for lineno, line in enumerate(raw.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        checks = {name.strip() for name in m.group(1).split(",")}
        suppressions.append(Suppression(lineno, checks, m.group(2)))
        allows.setdefault(lineno, set()).update(checks)
        # An allow comment alone on a line covers the line below it, so a
        # suppression never has to stretch an already-long statement.
        if line[: m.start()].strip() in ("", "//", "/*", "*"):
            allows.setdefault(lineno + 1, set()).update(checks)
    return allows, suppressions


def load(path: Path) -> SourceFile:
    raw = path.read_text(encoding="utf-8", errors="replace")
    allows, suppressions = parse_allows(raw)
    return SourceFile(
        path=path, raw=raw, code=strip_comments(raw), allows=allows, suppressions=suppressions
    )


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


class Repo:
    def __init__(self, root: Path) -> None:
        self.root = root
        self.src = self._glob(root / "src")
        self.tests = self._glob(root / "tests")
        self.bench = self._glob(root / "bench")

    @staticmethod
    def _glob(base: Path) -> list[SourceFile]:
        if not base.is_dir():
            return []
        paths = sorted(
            p
            for p in base.rglob("*")
            if p.is_file()
            and p.suffix in SOURCE_SUFFIXES
            # The lint self-test corpus holds deliberately broken mini-repos;
            # they are linted via --root, never as part of the real tree.
            # (Relative to the scan base, so --root can point INTO a fixture.)
            and "lint/data" not in p.relative_to(base).as_posix()
        )
        return [load(p) for p in paths]

    @property
    def headers(self) -> list[SourceFile]:
        return [
            f for f in (*self.src, *self.tests, *self.bench) if f.path.suffix in HEADER_SUFFIXES
        ]

    def registry(self) -> SourceFile | None:
        target = (self.root / REGISTRY_RELPATH).resolve()
        for f in self.src:
            if f.path.resolve() == target:
                return f
        return None

    def determinism(self) -> tuple[SourceFile | None, list[str], list[str]]:
        """The determinism-contract registry and its two arrays: registered
        bit-identity TUs and order-sensitive directories (repo-relative
        paths). (None, [], []) when the registry header is absent, which
        switches the three determinism checks off entirely.
        """
        target = (self.root / DETERMINISM_RELPATH).resolve()
        for f in self.src:
            if f.path.resolve() == target:
                tus = parse_string_array(f.code, CMAKE_ARRAY_RES["tus"])
                dirs = parse_string_array(f.code, CMAKE_ARRAY_RES["dirs"])
                return f, tus, dirs
        return None, [], []


def parse_string_array(code: str, array_re: re.Pattern[str]) -> list[str]:
    m = array_re.search(code)
    if not m:
        return []
    return re.findall(r'"([^"\n]+)"', m.group(1))


def cmake_commands(text: str) -> list[tuple[str, str, int]]:
    """Top-level CMake command invocations as (lowercased name, raw argument
    text, 1-based line). Quoted arguments (with escapes) and # comments are
    honoured so parentheses inside strings or comments do not derail the
    balanced-paren scan. Control flow (if/else) is NOT evaluated — every
    branch's commands are returned, which is the conservative choice for a
    static contract check.
    """
    cmds: list[tuple[str, str, int]] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == '"':
            i += 1
            while i < n and text[i] != '"':
                i += 2 if text[i] == "\\" else 1
            i += 1
        elif ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            k = j
            while k < n and text[k] in " \t":
                k += 1
            if k < n and text[k] == "(":
                depth, m_ = 0, k
                while m_ < n:
                    c = text[m_]
                    if c == '"':
                        m_ += 1
                        while m_ < n and text[m_] != '"':
                            m_ += 2 if text[m_] == "\\" else 1
                    elif c == "#":
                        while m_ < n and text[m_] != "\n":
                            m_ += 1
                        continue
                    elif c == "(":
                        depth += 1
                    elif c == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    m_ += 1
                cmds.append((text[i:j].lower(), text[k + 1 : m_], line_of(text, i)))
                i = m_ + 1
                continue
            i = j
        else:
            i += 1
    return cmds


def cmake_tokens(argtext: str) -> list[str]:
    """Splits CMake argument text into tokens, unquoting and splitting
    embedded ;-lists the way CMake itself flattens them.
    """
    out: list[str] = []
    for t in re.findall(r'"(?:[^"\\]|\\.)*"|\S+', argtext):
        if t.startswith('"') and t.endswith('"') and len(t) >= 2:
            t = t[1:-1]
        out.extend(part for part in t.split(";") if part)
    return out


def cmake_expanded_commands(text: str) -> list[tuple[str, list[str], int]]:
    """cmake_commands with one level of ${var} expansion: set(v ...) and
    list(APPEND v ...) are interpreted in order, and later ${v} references
    are replaced by the accumulated value. One level is enough to see
    through the `set(_flags ...)` + `set_source_files_properties(...
    "${_flags}")` idiom without re-implementing CMake.
    """
    variables: dict[str, list[str]] = {}

    def expand(tokens: list[str]) -> list[str]:
        out: list[str] = []
        for t in tokens:
            if "${" in t:
                t = re.sub(
                    r"\$\{(\w+)\}", lambda m: ";".join(variables.get(m.group(1), [])), t
                )
                out.extend(part for part in t.split(";") if part)
            else:
                out.append(t)
        return out

    cmds: list[tuple[str, list[str], int]] = []
    for name, argtext, line in cmake_commands(text):
        tokens = expand(cmake_tokens(argtext))
        if name == "set" and tokens:
            variables[tokens[0]] = tokens[1:]
        elif name == "list" and len(tokens) >= 2 and tokens[0].upper() == "APPEND":
            variables.setdefault(tokens[1], []).extend(tokens[2:])
        cmds.append((name, tokens, line))
    return cmds


class Linter:
    def __init__(self, repo: Repo, fix: bool) -> None:
        self.repo = repo
        self.fix = fix
        self.findings: list[Finding] = []
        self.fixed: list[Finding] = []

    def report(
        self, check: str, f: SourceFile, line: int, message: str, fixable: bool = False
    ) -> None:
        if check in f.allows.get(line, set()):
            return
        self.findings.append(Finding(check, f.path, line, message, fixable))

    def run(self) -> list[Finding]:
        self.check_fault_sites()
        self.check_metrics()
        self.check_no_direct_stdout()
        self.check_solver_nondeterminism()
        self.check_headers()
        self.check_determinism_contract()
        self.check_mutex_guard_coverage()
        self.check_suppression_rationale()
        return self.findings

    # ---- fault-injection site registry ---------------------------------

    def check_fault_sites(self) -> None:
        registry = self.repo.registry()
        declared: dict[str, int] = {}
        if registry is not None:
            for m in re.finditer(r'"([^"\n]+)"', registry.code):
                declared.setdefault(m.group(1), line_of(registry.code, m.start()))

        used: dict[str, tuple[SourceFile, int]] = {}
        missing: list[tuple[str, SourceFile, int]] = []
        for f in self.repo.src:
            if registry is not None and f.path == registry.path:
                continue
            for m in FAULT_POINT_RE.finditer(f.code):
                site = m.group(1)
                used.setdefault(site, (f, line_of(f.code, m.start())))
                if site not in declared:
                    missing.append((site, f, line_of(f.code, m.start())))

        for site, f, line in missing:
            self.report(
                "fault-site-undeclared",
                f,
                line,
                f'fault site "{site}" is not declared in {REGISTRY_RELPATH}',
                fixable=True,
            )
        if missing and self.fix and registry is not None:
            self.fix_registry(registry, sorted({site for site, _, _ in missing}))

        if registry is not None:
            for site, line in sorted(declared.items()):
                if site not in used:
                    self.report(
                        "fault-site-unused",
                        registry,
                        line,
                        f'declared fault site "{site}" has no CPLA_FAULT_POINT in src/',
                    )

        for f in (*self.repo.tests, *self.repo.bench):
            local = {m.group(1) for m in FAULT_POINT_RE.finditer(f.code)}
            for m in ARM_RE.finditer(f.code):
                site = m.group(1)
                if site not in used and site not in local:
                    self.report(
                        "fault-site-unknown-arm",
                        f,
                        line_of(f.code, m.start()),
                        f'armed fault site "{site}" does not exist in src/ '
                        "(renamed or deleted? the test is arming a dead string)",
                    )

    def fix_registry(self, registry: SourceFile, sites: list[str]) -> None:
        text = registry.raw
        anchor = text.find("inline constexpr const char* kAll[]")
        end = text.find("};", anchor)
        if anchor < 0 or end < 0:
            return
        decls = "".join(
            f'inline constexpr char {constant_name(site)}[] = "{site}";\n' for site in sites
        )
        entries = "".join(f"    {constant_name(site)},\n" for site in sites)
        text = text[:anchor] + decls + "\n" + text[anchor:end] + entries + text[end:]
        registry.path.write_text(text, encoding="utf-8")
        for fnd in self.findings:
            if fnd.check == "fault-site-undeclared":
                self.fixed.append(fnd)
        self.findings = [f for f in self.findings if f.check != "fault-site-undeclared"]

    # ---- metric-name cross-check ---------------------------------------

    def check_metrics(self) -> None:
        registered: set[str] = set()
        for f in self.repo.src:
            for m in METRIC_RE.finditer(f.code):
                if self.is_global_receiver(f.code, m.start()):
                    registered.add(m.group(2))
            for m in SCOPED_PHASE_RE.finditer(f.code):
                if m.group(2) != ",":  # second arg means a non-global registry
                    registered.add(f"phase.{m.group(1)}.ms")

        # Only names under a subsystem prefix src actually instruments are
        # checked; local-registry unit-test names ("test.counter") pass free.
        prefixes = {name.split(".", 1)[0] for name in registered}

        for f in (*self.repo.tests, *self.repo.bench):
            local = {
                f"phase.{m.group(1)}.ms"
                for m in SCOPED_PHASE_RE.finditer(f.code)
            }
            for m in METRIC_RE.finditer(f.code):
                name = m.group(2)
                if not self.is_global_receiver(f.code, m.start()):
                    continue
                if name.split(".", 1)[0] not in prefixes:
                    continue
                if name in registered or name in local:
                    continue
                self.report(
                    "metric-unregistered",
                    f,
                    line_of(f.code, m.start()),
                    f'metric "{name}" is queried here but never registered by '
                    "instrumentation in src/ (renamed? typo?)",
                )

    @staticmethod
    def is_global_receiver(code: str, start: int) -> bool:
        """True for `obs::metrics().counter(` / bare `counter(` (helper
        functions forwarding to the global registry); False for calls on any
        other receiver (`reg.counter(` — a local registry).
        """
        head = code[:start].rstrip()
        if head.endswith("."):
            return bool(GLOBAL_RECEIVER_RE.search(head))
        return True

    # ---- direct stdout and nondeterminism ------------------------------

    def check_no_direct_stdout(self) -> None:
        for f in self.repo.src:
            if f.path.stem == "logging" or "util/logging" in f.path.as_posix():
                continue
            for pattern, label in STDOUT_PATTERNS:
                for m in pattern.finditer(f.code):
                    self.report(
                        "no-direct-stdout",
                        f,
                        line_of(f.code, m.start()),
                        f"library code must not print via {label}; "
                        "use LOG_INFO/LOG_WARN (src/util/logging.hpp)",
                    )

    def check_solver_nondeterminism(self) -> None:
        solver_roots = [(self.repo.root / "src" / d).resolve() for d in SOLVER_DIRS]
        for f in self.repo.src:
            resolved = f.path.resolve()
            if not any(root in resolved.parents for root in solver_roots):
                continue
            for pattern, label in NONDETERMINISM_PATTERNS:
                for m in pattern.finditer(f.code):
                    self.report(
                        "solver-nondeterminism",
                        f,
                        line_of(f.code, m.start()),
                        f"{label} in a solver module breaks run-to-run "
                        "reproducibility; thread cpla::Rng through instead",
                    )

    # ---- determinism contract (src/util/determinism_contract.hpp) ------

    def check_determinism_contract(self) -> None:
        registry, tus, dirs = self.repo.determinism()
        if registry is None:
            return
        for tu in tus:
            self.check_fp_contract_tu(registry, tu)
            self.check_omp_tu(tu)
        self.check_unordered_iteration(dirs)

    def check_fp_contract_tu(self, registry: SourceFile, tu: str) -> None:
        tu_path = self.repo.root / tu
        reg_line = self.registry_entry_line(registry, tu)
        if not tu_path.is_file():
            self.report(
                "determinism-fp-contract",
                registry,
                reg_line,
                f'registered bit-identity TU "{tu}" does not exist (renamed or deleted? '
                "update the registry)",
            )
            return
        cml_path = tu_path.parent / "CMakeLists.txt"
        if not cml_path.is_file():
            self.report(
                "determinism-fp-contract",
                registry,
                reg_line,
                f'no CMakeLists.txt next to registered TU "{tu}"; cannot prove '
                f"{FP_CONTRACT_FLAG} is applied",
            )
            return
        cml = load(cml_path)
        basename = tu_path.name
        mention_line = 1
        commands = cmake_expanded_commands(cml.raw)
        # Conditional nesting depth per command: add_compile_options inside
        # an if() branch proves nothing (the branch may never be taken), so
        # directory-wide acceptance requires depth 0.
        depth = 0
        depths: list[int] = []
        for name, _tokens, _line in commands:
            if name == "endif":
                depth = max(0, depth - 1)
            depths.append(depth)
            if name == "if":
                depth += 1
        target = None  # name of the add_library/add_executable owning the TU
        target_line: int | None = None
        for name, tokens, line in commands:
            if basename not in tokens:
                continue
            mention_line = line
            if name in ("add_library", "add_executable") and target is None and tokens:
                target, target_line = tokens[0], line
            # Per-TU flags (set_source_files_properties ... COMPILE_OPTIONS)
            # or any other command that names both the TU and the flag.
            if FP_CONTRACT_FLAG in tokens:
                return
        for idx, (name, tokens, line) in enumerate(commands):
            if FP_CONTRACT_FLAG not in tokens:
                continue
            # Directory-wide flags only reach targets defined *after* the
            # add_compile_options call, and only unconditionally when the
            # call sits outside every if() branch.
            if (
                name == "add_compile_options"
                and depths[idx] == 0
                and (target_line is None or line < target_line)
            ):
                return
            # Target-wide flags must name the target that compiles the TU;
            # a flag on an unrelated target proves nothing.
            if name == "target_compile_options" and tokens and tokens[0] == target:
                return
        self.report(
            "determinism-fp-contract",
            cml,
            mention_line,
            f'registered bit-identity TU "{tu}" is not compiled with {FP_CONTRACT_FLAG} '
            f"(contract: {DETERMINISM_RELPATH}); FMA contraction is "
            "compiler-discretionary and breaks bit-identical replay",
        )

    @staticmethod
    def registry_entry_line(registry: SourceFile, tu: str) -> int:
        at = registry.code.find(f'"{tu}"')
        return line_of(registry.code, at) if at >= 0 else 1

    def check_omp_tu(self, tu: str) -> None:
        tu_path = (self.repo.root / tu).resolve()
        for f in self.repo.src:
            if f.path.resolve() != tu_path:
                continue
            for pattern, label in OMP_PATTERNS:
                for m in pattern.finditer(f.code):
                    self.report(
                        "determinism-omp-reduction",
                        f,
                        line_of(f.code, m.start()),
                        f"{label} in bit-identity TU {tu}: reduction order (and "
                        "atomic update order) varies with thread count; accumulate "
                        f"in a pinned order instead (contract: {DETERMINISM_RELPATH})",
                    )

    def check_unordered_iteration(self, dirs: list[str]) -> None:
        roots = [(self.repo.root / d).resolve() for d in dirs]
        for f in self.repo.src:
            resolved = f.path.resolve()
            if not any(root in resolved.parents for root in roots):
                continue
            declared = unordered_decl_names(f.code)
            if not declared:
                continue
            for m in RANGE_FOR_RE.finditer(f.code):
                name = re.split(r"\.|->", m.group(1))[-1].strip()
                if name not in declared:
                    continue
                self.report(
                    "unordered-iteration",
                    f,
                    line_of(f.code, m.start()),
                    f'range-for over std::unordered container "{name}" in an '
                    "order-sensitive directory: hash-bucket order can reach solver "
                    "inputs; iterate a sorted container or add a rationale'd "
                    "allow(unordered-iteration) if the loop is order-independent",
                )

    # ---- mutex annotation coverage --------------------------------------

    def check_mutex_guard_coverage(self) -> None:
        for f in self.repo.src:
            rel = self.relpath(f)
            if rel in RAW_SYNC_EXEMPT:
                continue
            for m in RAW_SYNC_RE.finditer(f.code):
                self.report(
                    "mutex-guard-coverage",
                    f,
                    line_of(f.code, m.start()),
                    f"raw std::{m.group(1)} member: use cpla::Mutex / cpla::CondVar "
                    "(src/util/mutex.hpp) so Clang Thread Safety Analysis can see it",
                )
            if f.path.suffix not in HEADER_SUFFIXES:
                continue
            spans = class_body_spans(f.code)
            for m in MUTEX_MEMBER_RE.finditer(f.code):
                name = m.group(1)
                # Scope the guarded-name search to the innermost enclosing
                # class/struct body: two classes in one header each owning a
                # `Mutex mu;` must each annotate their own guarded data.
                span = innermost_span(spans, m.start())
                region = f.code[span[0] : span[1]] if span else f.code
                guarded = {g.group(1) for g in GUARDED_BY_RE.finditer(region)}
                if name in guarded:
                    continue
                self.report(
                    "mutex-guard-coverage",
                    f,
                    line_of(f.code, m.start()),
                    f'Mutex member "{name}" has no CPLA_GUARDED_BY({name}) in its '
                    "enclosing class: annotate the data it protects (or it protects "
                    "nothing and should be removed)",
                )

    def relpath(self, f: SourceFile) -> str:
        try:
            return f.path.resolve().relative_to(self.repo.root.resolve()).as_posix()
        except ValueError:
            return f.path.as_posix()

    # ---- suppression hygiene --------------------------------------------

    def check_suppression_rationale(self) -> None:
        for f in (*self.repo.src, *self.repo.tests, *self.repo.bench):
            for s in f.suppressions:
                if s.rationale:
                    continue
                # Deliberately bypasses report(): a rationale-less allow()
                # must not be able to suppress the check that polices it.
                self.findings.append(
                    Finding(
                        "suppression-rationale",
                        f.path,
                        s.line,
                        f"suppression allow({', '.join(sorted(s.checks))}) has no "
                        "rationale; write `// cpla-lint: allow(check) -- why`",
                    )
                )

    # ---- header hygiene -------------------------------------------------

    def check_headers(self) -> None:
        for f in self.repo.headers:
            if "#pragma once" not in f.code:
                self.report(
                    "missing-pragma-once",
                    f,
                    1,
                    "header lacks #pragma once",
                    fixable=True,
                )
                if self.fix:
                    f.path.write_text("#pragma once\n\n" + f.raw, encoding="utf-8")
                    self.fixed.append(self.findings.pop())
            for lineno, line in enumerate(f.code_lines, start=1):
                if USING_NAMESPACE_RE.match(line):
                    self.report(
                        "using-namespace-header",
                        f,
                        lineno,
                        "`using namespace` in a header leaks into every "
                        "includer; qualify names instead",
                    )


def constant_name(site: str) -> str:
    parts = re.split(r"[._-]", site)
    return "k" + "".join(p.capitalize() for p in parts if p)


def class_body_spans(code: str) -> list[tuple[int, int]]:
    """Brace-matched `{...}` extents of every class/struct/union body in the
    (comment-stripped) code, including nested ones. Forward declarations and
    function definitions never match (the head may not contain `;`, braces,
    or parens between the keyword and the opening brace).
    """
    spans: list[tuple[int, int]] = []
    for m in re.finditer(r"\b(?:class|struct|union)\b[^;{}()]*\{", code):
        open_brace = m.end() - 1
        depth = 0
        for i in range(open_brace, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    spans.append((open_brace, i + 1))
                    break
    return spans


def innermost_span(spans: list[tuple[int, int]], pos: int) -> tuple[int, int] | None:
    """The tightest span containing `pos`, or None if none does."""
    best: tuple[int, int] | None = None
    for span in spans:
        if span[0] <= pos < span[1] and (best is None or span[0] > best[0]):
            best = span
    return best


def unordered_decl_names(code: str) -> dict[str, int]:
    """Names declared in this file with a std::unordered_{map,set,...} type
    (locals, members, and reference parameters alike), mapped to the line of
    the declaration. Template arguments are skipped by balancing angle
    brackets, so nested templates don't confuse the name capture.
    """
    names: dict[str, int] = {}
    for m in UNORDERED_DECL_RE.finditer(code):
        i, depth, n = m.end() - 1, 0, len(code)
        while i < n:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        dm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)", code[i + 1 : i + 200])
        if dm and dm.group(1) != "const":
            names.setdefault(dm.group(1), line_of(code, m.start()))
    return names


def list_suppressions(repo: Repo, root: Path, fmt: str) -> int:
    """Inventory of every allow() comment in the tree. The suppression
    budget is review-visible this way: a PR that grows the list shows up in
    the diff of this command's output, not just in a silent comment.
    """
    rows: list[tuple[str, int, list[str], str | None]] = []
    for f in (*repo.src, *repo.tests, *repo.bench):
        for s in f.suppressions:
            try:
                rel = f.path.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = f.path.as_posix()
            rows.append((rel, s.line, sorted(s.checks), s.rationale))
    if fmt == "json":
        doc = {
            "schema": SCHEMA,
            "suppressions": [
                {"file": rel, "line": line, "checks": checks, "rationale": rationale}
                for rel, line, checks, rationale in rows
            ],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for rel, line, checks, rationale in rows:
            why = f" -- {rationale}" if rationale else "  (NO RATIONALE)"
            print(f"{rel}:{line}: allow({', '.join(checks)}){why}")
        print(f"cpla-lint: {len(rows)} suppression(s)", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cpla_lint.py", description="Project-specific static analysis for CPLA."
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root to scan (default: this file's repo)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--fix", action="store_true", help="apply safe fixes (pragma once, registry append)"
    )
    parser.add_argument("--list-checks", action="store_true", help="print check names and exit")
    parser.add_argument(
        "--list-suppressions",
        action="store_true",
        help="print every cpla-lint allow() comment with its rationale and exit",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the linter's own test suite (tests/lint/lint_selftest.py)",
    )
    args = parser.parse_args(argv)

    if args.list_checks:
        for check in CHECKS:
            print(check)
        return 0

    if args.self_test:
        selftest = Path(__file__).resolve().parent.parent / "tests" / "lint" / "lint_selftest.py"
        if not selftest.is_file():
            print(f"cpla-lint: self-test not found at {selftest}", file=sys.stderr)
            return 2
        return subprocess.call([sys.executable, str(selftest)])

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"cpla-lint: no src/ under {root}", file=sys.stderr)
        return 2

    if args.list_suppressions:
        return list_suppressions(Repo(root), root, args.format)

    linter = Linter(Repo(root), fix=args.fix)
    findings = linter.run()

    if args.format == "json":
        doc = {
            "schema": SCHEMA,
            "root": str(root),
            "findings": [
                {
                    "check": f.check,
                    "file": str(f.path.resolve().relative_to(root)),
                    "line": f.line,
                    "message": f.message,
                    "fixable": f.fixable,
                }
                for f in findings
            ],
            "fixed": [
                {"check": f.check, "file": str(f.path.resolve().relative_to(root)), "line": f.line}
                for f in linter.fixed
            ],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for f in findings:
            print(f.render(root))
        for f in linter.fixed:
            print(f"fixed: {f.render(root)}")
        if findings:
            print(f"cpla-lint: {len(findings)} finding(s)", file=sys.stderr)

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
