#!/usr/bin/env python3
"""cpla-lint: project-specific static analysis for the CPLA repository.

Cross-file checks no generic linter knows about:

  fault-site-undeclared   every CPLA_FAULT_POINT("...") string used in src/
                          must be declared in src/util/fault_sites.hpp
  fault-site-unused       every site declared in src/util/fault_sites.hpp
                          must have a CPLA_FAULT_POINT in src/
  fault-site-unknown-arm  every site a test arms (arm / arm_always / disarm)
                          must exist as a fault point in src/ or in the
                          arming file itself (injector unit tests)
  metric-unregistered     every metric name tests/bench query against the
                          global registry must be registered by
                          instrumentation in src/
  no-direct-stdout        library code must not print directly (std::cout,
                          printf, fprintf(stdout/stderr), puts); route
                          output through src/util/logging
  solver-nondeterminism   no rand()/srand()/std::random_device inside the
                          solver modules (la, lp, ilp, sdp); solvers must
                          be bit-reproducible across runs
  missing-pragma-once     every header starts with #pragma once  [--fix]
  using-namespace-header  no `using namespace` at any scope in headers

Findings print as `path:line: [check] message` or, with --format json, as a
machine-readable document (schema cpla-lint-v1). `--fix` applies the safe
fixes (inserting #pragma once, appending missing fault-site declarations to
the registry). A finding can be suppressed for one line with a trailing
`// cpla-lint: allow(check-name)` comment.

Exit status: 0 clean, 1 findings, 2 usage or internal error.

Dependency-free by design: stdlib only, so it runs in any CI image and as a
ctest with no environment setup.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path

SCHEMA = "cpla-lint-v1"

CHECKS = (
    "fault-site-undeclared",
    "fault-site-unused",
    "fault-site-unknown-arm",
    "metric-unregistered",
    "no-direct-stdout",
    "solver-nondeterminism",
    "missing-pragma-once",
    "using-namespace-header",
)

REGISTRY_RELPATH = Path("src/util/fault_sites.hpp")
SOLVER_DIRS = ("la", "lp", "ilp", "sdp")
HEADER_SUFFIXES = (".hpp", ".h")
SOURCE_SUFFIXES = (".hpp", ".h", ".cpp", ".cc")

ALLOW_RE = re.compile(r"cpla-lint:\s*allow\(([a-z0-9_,\s-]+)\)")
FAULT_POINT_RE = re.compile(r'CPLA_FAULT_POINT\s*\(\s*"([^"]+)"\s*\)')
ARM_RE = re.compile(r'\b(?:arm|arm_always|disarm)\s*\(\s*"([^"]+)"')
METRIC_RE = re.compile(r'(?<![A-Za-z0-9_])(counter|gauge|histogram)\s*\(\s*"([^"]+)"\s*([,)])')
SCOPED_PHASE_RE = re.compile(r'\bScopedPhase\s+\w+\s*[({]\s*"([^"]+)"\s*([,)}])')
GLOBAL_RECEIVER_RE = re.compile(r"(?:\bobs\s*::\s*)?\bmetrics\s*\(\s*\)\s*\.\s*$")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
STDOUT_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*cout\b"), "std::cout"),
    (re.compile(r"\bstd\s*::\s*cerr\b"), "std::cerr"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?printf\s*\("), "printf"),
    (
        re.compile(r"(?<![\w:.])(?:std\s*::\s*)?v?fprintf\s*\(\s*(?:stdout|stderr)\b"),
        "fprintf(stdout/stderr)",
    ),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?puts\s*\("), "puts"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?putchar\s*\("), "putchar"),
    (
        re.compile(
            r"(?<![\w:.])(?:std\s*::\s*)?(?:fputs|fputc|fwrite)"
            r"\s*\([^()]*,\s*(?:stdout|stderr)\s*\)"
        ),
        "fputs/fwrite(stdout/stderr)",
    ),
)
NONDETERMINISM_PATTERNS = (
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
)


@dataclass
class Finding:
    check: str
    path: Path
    line: int
    message: str
    fixable: bool = False

    def render(self, root: Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.check}] {self.message}"


@dataclass
class SourceFile:
    """One scanned file: raw text, comment-stripped text, suppressions."""

    path: Path
    raw: str
    code: str  # comments blanked out, strings and line structure preserved
    allows: dict[int, set[str]]  # 1-based line -> suppressed check names

    @property
    def code_lines(self) -> list[str]:
        return self.code.splitlines()


def strip_comments(text: str) -> str:
    """Blanks // and /* */ comment bodies, preserving newlines, string and
    character literals (including escapes), and raw string literals. Keeping
    offsets identical to the input makes every downstream regex line-accurate.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif ch == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif ch == "R" and nxt == '"' and (i == 0 or not text[i - 1].isalnum()):
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                end = text.find(f"){m.group(1)}\"", i + m.end())
                i = n if end < 0 else end + len(m.group(1)) + 2
            else:
                i += 1
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            i += 1
    return "".join(out)


def parse_allows(raw: str) -> dict[int, set[str]]:
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(raw.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if m:
            allows[lineno] = {name.strip() for name in m.group(1).split(",")}
    return allows


def load(path: Path) -> SourceFile:
    raw = path.read_text(encoding="utf-8", errors="replace")
    return SourceFile(path=path, raw=raw, code=strip_comments(raw), allows=parse_allows(raw))


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


class Repo:
    def __init__(self, root: Path) -> None:
        self.root = root
        self.src = self._glob(root / "src")
        self.tests = self._glob(root / "tests")
        self.bench = self._glob(root / "bench")

    @staticmethod
    def _glob(base: Path) -> list[SourceFile]:
        if not base.is_dir():
            return []
        paths = sorted(
            p
            for p in base.rglob("*")
            if p.is_file()
            and p.suffix in SOURCE_SUFFIXES
            # The lint self-test corpus holds deliberately broken mini-repos;
            # they are linted via --root, never as part of the real tree.
            # (Relative to the scan base, so --root can point INTO a fixture.)
            and "lint/data" not in p.relative_to(base).as_posix()
        )
        return [load(p) for p in paths]

    @property
    def headers(self) -> list[SourceFile]:
        return [
            f for f in (*self.src, *self.tests, *self.bench) if f.path.suffix in HEADER_SUFFIXES
        ]

    def registry(self) -> SourceFile | None:
        target = (self.root / REGISTRY_RELPATH).resolve()
        for f in self.src:
            if f.path.resolve() == target:
                return f
        return None


class Linter:
    def __init__(self, repo: Repo, fix: bool) -> None:
        self.repo = repo
        self.fix = fix
        self.findings: list[Finding] = []
        self.fixed: list[Finding] = []

    def report(
        self, check: str, f: SourceFile, line: int, message: str, fixable: bool = False
    ) -> None:
        if check in f.allows.get(line, set()):
            return
        self.findings.append(Finding(check, f.path, line, message, fixable))

    def run(self) -> list[Finding]:
        self.check_fault_sites()
        self.check_metrics()
        self.check_no_direct_stdout()
        self.check_solver_nondeterminism()
        self.check_headers()
        return self.findings

    # ---- fault-injection site registry ---------------------------------

    def check_fault_sites(self) -> None:
        registry = self.repo.registry()
        declared: dict[str, int] = {}
        if registry is not None:
            for m in re.finditer(r'"([^"\n]+)"', registry.code):
                declared.setdefault(m.group(1), line_of(registry.code, m.start()))

        used: dict[str, tuple[SourceFile, int]] = {}
        missing: list[tuple[str, SourceFile, int]] = []
        for f in self.repo.src:
            if registry is not None and f.path == registry.path:
                continue
            for m in FAULT_POINT_RE.finditer(f.code):
                site = m.group(1)
                used.setdefault(site, (f, line_of(f.code, m.start())))
                if site not in declared:
                    missing.append((site, f, line_of(f.code, m.start())))

        for site, f, line in missing:
            self.report(
                "fault-site-undeclared",
                f,
                line,
                f'fault site "{site}" is not declared in {REGISTRY_RELPATH}',
                fixable=True,
            )
        if missing and self.fix and registry is not None:
            self.fix_registry(registry, sorted({site for site, _, _ in missing}))

        if registry is not None:
            for site, line in sorted(declared.items()):
                if site not in used:
                    self.report(
                        "fault-site-unused",
                        registry,
                        line,
                        f'declared fault site "{site}" has no CPLA_FAULT_POINT in src/',
                    )

        for f in (*self.repo.tests, *self.repo.bench):
            local = {m.group(1) for m in FAULT_POINT_RE.finditer(f.code)}
            for m in ARM_RE.finditer(f.code):
                site = m.group(1)
                if site not in used and site not in local:
                    self.report(
                        "fault-site-unknown-arm",
                        f,
                        line_of(f.code, m.start()),
                        f'armed fault site "{site}" does not exist in src/ '
                        "(renamed or deleted? the test is arming a dead string)",
                    )

    def fix_registry(self, registry: SourceFile, sites: list[str]) -> None:
        text = registry.raw
        anchor = text.find("inline constexpr const char* kAll[]")
        end = text.find("};", anchor)
        if anchor < 0 or end < 0:
            return
        decls = "".join(
            f'inline constexpr char {constant_name(site)}[] = "{site}";\n' for site in sites
        )
        entries = "".join(f"    {constant_name(site)},\n" for site in sites)
        text = text[:anchor] + decls + "\n" + text[anchor:end] + entries + text[end:]
        registry.path.write_text(text, encoding="utf-8")
        for fnd in self.findings:
            if fnd.check == "fault-site-undeclared":
                self.fixed.append(fnd)
        self.findings = [f for f in self.findings if f.check != "fault-site-undeclared"]

    # ---- metric-name cross-check ---------------------------------------

    def check_metrics(self) -> None:
        registered: set[str] = set()
        for f in self.repo.src:
            for m in METRIC_RE.finditer(f.code):
                if self.is_global_receiver(f.code, m.start()):
                    registered.add(m.group(2))
            for m in SCOPED_PHASE_RE.finditer(f.code):
                if m.group(2) != ",":  # second arg means a non-global registry
                    registered.add(f"phase.{m.group(1)}.ms")

        # Only names under a subsystem prefix src actually instruments are
        # checked; local-registry unit-test names ("test.counter") pass free.
        prefixes = {name.split(".", 1)[0] for name in registered}

        for f in (*self.repo.tests, *self.repo.bench):
            local = {
                f"phase.{m.group(1)}.ms"
                for m in SCOPED_PHASE_RE.finditer(f.code)
            }
            for m in METRIC_RE.finditer(f.code):
                name = m.group(2)
                if not self.is_global_receiver(f.code, m.start()):
                    continue
                if name.split(".", 1)[0] not in prefixes:
                    continue
                if name in registered or name in local:
                    continue
                self.report(
                    "metric-unregistered",
                    f,
                    line_of(f.code, m.start()),
                    f'metric "{name}" is queried here but never registered by '
                    "instrumentation in src/ (renamed? typo?)",
                )

    @staticmethod
    def is_global_receiver(code: str, start: int) -> bool:
        """True for `obs::metrics().counter(` / bare `counter(` (helper
        functions forwarding to the global registry); False for calls on any
        other receiver (`reg.counter(` — a local registry).
        """
        head = code[:start].rstrip()
        if head.endswith("."):
            return bool(GLOBAL_RECEIVER_RE.search(head))
        return True

    # ---- direct stdout and nondeterminism ------------------------------

    def check_no_direct_stdout(self) -> None:
        for f in self.repo.src:
            if f.path.stem == "logging" or "util/logging" in f.path.as_posix():
                continue
            for pattern, label in STDOUT_PATTERNS:
                for m in pattern.finditer(f.code):
                    self.report(
                        "no-direct-stdout",
                        f,
                        line_of(f.code, m.start()),
                        f"library code must not print via {label}; "
                        "use LOG_INFO/LOG_WARN (src/util/logging.hpp)",
                    )

    def check_solver_nondeterminism(self) -> None:
        solver_roots = [(self.repo.root / "src" / d).resolve() for d in SOLVER_DIRS]
        for f in self.repo.src:
            resolved = f.path.resolve()
            if not any(root in resolved.parents for root in solver_roots):
                continue
            for pattern, label in NONDETERMINISM_PATTERNS:
                for m in pattern.finditer(f.code):
                    self.report(
                        "solver-nondeterminism",
                        f,
                        line_of(f.code, m.start()),
                        f"{label} in a solver module breaks run-to-run "
                        "reproducibility; thread cpla::Rng through instead",
                    )

    # ---- header hygiene -------------------------------------------------

    def check_headers(self) -> None:
        for f in self.repo.headers:
            if "#pragma once" not in f.code:
                self.report(
                    "missing-pragma-once",
                    f,
                    1,
                    "header lacks #pragma once",
                    fixable=True,
                )
                if self.fix:
                    f.path.write_text("#pragma once\n\n" + f.raw, encoding="utf-8")
                    self.fixed.append(self.findings.pop())
            for lineno, line in enumerate(f.code_lines, start=1):
                if USING_NAMESPACE_RE.match(line):
                    self.report(
                        "using-namespace-header",
                        f,
                        lineno,
                        "`using namespace` in a header leaks into every "
                        "includer; qualify names instead",
                    )


def constant_name(site: str) -> str:
    parts = re.split(r"[._-]", site)
    return "k" + "".join(p.capitalize() for p in parts if p)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cpla_lint.py", description="Project-specific static analysis for CPLA."
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root to scan (default: this file's repo)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--fix", action="store_true", help="apply safe fixes (pragma once, registry append)"
    )
    parser.add_argument("--list-checks", action="store_true", help="print check names and exit")
    args = parser.parse_args(argv)

    if args.list_checks:
        for check in CHECKS:
            print(check)
        return 0

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"cpla-lint: no src/ under {root}", file=sys.stderr)
        return 2

    linter = Linter(Repo(root), fix=args.fix)
    findings = linter.run()

    if args.format == "json":
        doc = {
            "schema": SCHEMA,
            "root": str(root),
            "findings": [
                {
                    "check": f.check,
                    "file": str(f.path.resolve().relative_to(root)),
                    "line": f.line,
                    "message": f.message,
                    "fixable": f.fixable,
                }
                for f in findings
            ],
            "fixed": [
                {"check": f.check, "file": str(f.path.resolve().relative_to(root)), "line": f.line}
                for f in linter.fixed
            ],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for f in findings:
            print(f.render(root))
        for f in linter.fixed:
            print(f"fixed: {f.render(root)}")
        if findings:
            print(f"cpla-lint: {len(findings)} finding(s)", file=sys.stderr)

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
