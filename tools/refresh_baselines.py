#!/usr/bin/env python3
"""Re-generate the checked-in CI bench baselines (ci/baselines/BENCH_*.json).

The bench-smoke CI job gates every run against these files, so they must be
refreshed deliberately — never as a side effect of a failing run. This tool
re-runs every gated bench binary with the *same canonical arguments* the CI
job uses (keep the SPECS table below in sync with .github/workflows/ci.yml),
writes the fresh artifacts into a candidate directory, and schema-diffs each
candidate against the current baseline with bench_compare.py --schema-only.

The schema diff is the safety net: a candidate that silently *dropped* a
phase, value, or counter (instrumentation broke, a case was skipped) fails
the refresh; new keys are fine and are reported as notes.

Usage:
  refresh_baselines.py [--build-dir build] [--out ci/baselines.candidate]
                       [--only NAME]... [--install] [--check]

Modes:
  default    run benches -> write candidates -> schema-diff vs baselines
  --check    skip the bench runs; schema-diff existing files in --out
  --install  after a clean diff, copy candidates over ci/baselines/

Exit status: 0 = candidates ready (and installed with --install),
1 = a bench failed or a candidate dropped keys, 2 = usage/IO error.

CI: the manually-dispatched refresh-baselines job runs this tool and
uploads the candidate directory as an artifact; a human reviews the diff
and commits the new baselines.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys

# (artifact name, binary, canonical args) — one row per baseline gated in
# the bench-smoke CI job, with identical arguments. micro_batch keeps its
# in-binary --gate so a refresh cannot record a below-floor baseline.
SPECS: list[tuple[str, str, list[str]]] = [
    ("BENCH_ablation_cpla.json", "ablation_cpla", ["--quick"]),
    ("BENCH_micro_solvers.json", "micro_solvers", ["--benchmark_filter=/(8|10|16|20)$"]),
    ("BENCH_micro_la.json", "micro_la", ["--benchmark_filter=/(32|64)$"]),
    ("BENCH_micro_batch.json", "micro_batch", ["--quick", "--gate", "1.15"]),
    ("BENCH_eco_incremental.json", "eco_incremental", ["--quick"]),
    ("BENCH_eco_serve.json", "eco_serve", ["--quick"]),
    ("BENCH_sta_incremental.json", "sta_incremental", ["--quick"]),
    ("BENCH_backend_arbiter.json", "backend_arbiter", ["--quick", "--gate", "1.0"]),
]


def run_bench(build_dir: str, out_dir: str, name: str, binary: str, args: list[str]) -> bool:
    exe = os.path.join(build_dir, "bench", binary)
    if not os.path.exists(exe):
        print(f"refresh_baselines: missing {exe} (build the bench targets first)",
              file=sys.stderr)
        return False
    out = os.path.join(out_dir, name)
    cmd = [exe, *args, "--metrics-out", out]
    # Same thread pinning as CI's bench-smoke job: single-thread wall
    # clocks are the least noisy and the micro_batch gate compares
    # batch-vs-scalar at equal thread count.
    env = {**os.environ, "OMP_NUM_THREADS": "1"}
    print(f"refresh_baselines: running {' '.join(cmd)}")
    res = subprocess.run(cmd, env=env, check=False)
    if res.returncode != 0:
        print(f"refresh_baselines: {binary} exited {res.returncode}", file=sys.stderr)
        return False
    return True


def schema_diff(baseline_dir: str, out_dir: str, name: str) -> bool:
    baseline = os.path.join(baseline_dir, name)
    candidate = os.path.join(out_dir, name)
    if not os.path.exists(candidate):
        print(f"refresh_baselines: no candidate {candidate}", file=sys.stderr)
        return False
    if not os.path.exists(baseline):
        # First baseline for a new bench: nothing to diff against.
        print(f"refresh_baselines: {name} is new (no current baseline)")
        return True
    compare = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_compare.py")
    res = subprocess.run(
        [sys.executable, compare, baseline, candidate, "--schema-only"], check=False)
    return res.returncode == 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--build-dir", default="build", help="CMake build dir (default: build)")
    ap.add_argument("--baselines", default=os.path.join("ci", "baselines"),
                    help="checked-in baseline dir (default: ci/baselines)")
    ap.add_argument("--out", default=os.path.join("ci", "baselines.candidate"),
                    help="candidate output dir (default: ci/baselines.candidate)")
    ap.add_argument("--only", action="append", default=[], metavar="NAME",
                    help="refresh only this bench binary (repeatable)")
    ap.add_argument("--check", action="store_true",
                    help="skip bench runs; schema-diff existing candidates in --out")
    ap.add_argument("--install", action="store_true",
                    help="copy candidates over the baseline dir after a clean diff")
    args = ap.parse_args(argv)

    specs = [s for s in SPECS if not args.only or s[1] in args.only]
    if not specs:
        ap.error(f"--only matched nothing; known benches: {[s[1] for s in SPECS]}")
    os.makedirs(args.out, exist_ok=True)

    failures = 0
    for name, binary, bench_args in specs:
        if not args.check and not run_bench(args.build_dir, args.out, name, binary, bench_args):
            failures += 1
            continue
        if not schema_diff(args.baselines, args.out, name):
            failures += 1
    if failures:
        print(f"refresh_baselines: {failures} bench(es) failed", file=sys.stderr)
        return 1

    if args.install:
        os.makedirs(args.baselines, exist_ok=True)
        for name, _, _ in specs:
            shutil.copyfile(os.path.join(args.out, name), os.path.join(args.baselines, name))
            print(f"refresh_baselines: installed {os.path.join(args.baselines, name)}")
    else:
        print(f"refresh_baselines: candidates in {args.out} "
              "(review, then re-run with --install or copy manually)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
