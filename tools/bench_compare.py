#!/usr/bin/env python3
"""Compare two cpla bench JSON artifacts and gate on regressions.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [options]
  bench_compare.py --self-test

Exit status: 0 = no regression, 1 = regression (or schema mismatch),
2 = usage/IO error.

Both files must be `cpla-bench-v1` artifacts produced by a bench binary's
--metrics-out flag (see bench/harness.hpp). Three sections are gated
independently, each with its own relative tolerance:

  phases   wall_ms per phase        --time-tol   (default 0.50 = +50%)
  values   objective/delay scalars  --value-tol  (default 0.05 = +5%)
  counters solver work counters     --counter-tol(default 0.25 = +25%)

A regression is current > baseline * (1 + tol). Improvements never fail.
For quality values (avg_tcp, max_tcp, overflow) "bigger is worse" holds
throughout this project, so a one-sided gate is correct.

Cross-machine wall clocks are noisy and google-benchmark adapts iteration
counts to machine speed, so CI uses:
  --no-time       skip the phases gate (keeps schema + presence checks)
  --schema-only   only verify schema, key presence, and counter presence

Missing keys in CURRENT (present in BASELINE) always fail: a silently
dropped phase or counter usually means instrumentation broke.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any


def load(path: str) -> dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "cpla-bench-v1":
        print(f"bench_compare: {path}: unknown schema {doc.get('schema')!r}", file=sys.stderr)
        sys.exit(1)
    return doc


def flatten_phases(doc: dict[str, Any]) -> dict[str, float]:
    return {name: p.get("wall_ms", 0.0) for name, p in doc.get("phases", {}).items()}


def flatten_counters(doc: dict[str, Any]) -> dict[str, float]:
    return dict(doc.get("metrics", {}).get("counters", {}))


def compare_section(
    label: str,
    base: dict[str, Any],
    cur: dict[str, Any],
    tol: float,
    failures: list[str],
    *,
    numeric: bool = True,
    min_abs: float = 0.0,
) -> None:
    """One-sided comparison of two {name: number} maps."""
    for name in sorted(base):
        if name not in cur:
            failures.append(f"{label}: '{name}' missing from current run")
            continue
        if not numeric:
            continue
        b, c = float(base[name]), float(cur[name])
        # Ignore tiny absolute magnitudes (sub-ms phases, near-zero counters):
        # relative noise there is meaningless.
        if max(abs(b), abs(c)) <= min_abs:
            continue
        limit = b * (1.0 + tol) if b >= 0 else b * (1.0 - tol)
        if c > limit:
            pct = 100.0 * (c - b) / b if b != 0 else float("inf")
            failures.append(
                f"{label}: '{name}' regressed {b:g} -> {c:g} (+{pct:.1f}%, tol +{100*tol:.0f}%)")
    for name in sorted(cur):
        if name not in base:
            print(f"note: {label}: '{name}' is new (not in baseline)")


def compare(base: dict[str, Any], cur: dict[str, Any], args: argparse.Namespace) -> list[str]:
    failures: list[str] = []
    if base.get("bench") != cur.get("bench"):
        failures.append(
            f"bench name mismatch: {base.get('bench')!r} vs {cur.get('bench')!r}")
    if base.get("seed") != cur.get("seed"):
        print(f"note: seeds differ ({base.get('seed')} vs {cur.get('seed')}); "
              "value comparisons may not be like-for-like")

    numeric = not args.schema_only
    compare_section("phase", flatten_phases(base), flatten_phases(cur),
                    args.time_tol, failures,
                    numeric=numeric and not args.no_time, min_abs=args.min_ms)
    compare_section("value", base.get("values", {}), cur.get("values", {}),
                    args.value_tol, failures, numeric=numeric)
    compare_section("counter", flatten_counters(base), flatten_counters(cur),
                    args.counter_tol, failures, numeric=numeric, min_abs=10.0)
    return failures


def self_test() -> int:
    """Proves the gate logic: identical runs pass, a 2x slowdown fails."""
    base = {
        "schema": "cpla-bench-v1", "bench": "selftest", "git_rev": "x", "threads": 1,
        "seed": 1,
        "phases": {"case.sdp": {"wall_ms": 100.0}, "case.tila": {"wall_ms": 40.0}},
        "values": {"case.sdp.avg_tcp": 123.0},
        "metrics": {"counters": {"sdp.solve.iterations": 5000}, "gauges": {},
                    "histograms": {}},
    }
    ns = argparse.Namespace(time_tol=0.5, value_tol=0.05, counter_tol=0.25,
                            no_time=False, schema_only=False, min_ms=1.0)

    assert compare(base, json.loads(json.dumps(base)), ns) == [], "identical run must pass"

    slow = json.loads(json.dumps(base))
    slow["phases"]["case.sdp"]["wall_ms"] = 200.0  # injected 2x slowdown
    fails = compare(base, slow, ns)
    assert any("case.sdp" in f and "regressed" in f for f in fails), \
        "2x slowdown must be flagged"

    ns_nt = argparse.Namespace(**{**vars(ns), "no_time": True})
    assert compare(base, slow, ns_nt) == [], "--no-time must ignore wall-clock regressions"

    worse = json.loads(json.dumps(base))
    worse["values"]["case.sdp.avg_tcp"] = 123.0 * 1.10  # +10% quality loss
    assert any("avg_tcp" in f for f in compare(base, worse, ns)), \
        "quality regression must be flagged"

    faster = json.loads(json.dumps(base))
    faster["phases"]["case.sdp"]["wall_ms"] = 50.0
    assert compare(base, faster, ns) == [], "improvements must pass"

    missing = json.loads(json.dumps(base))
    del missing["metrics"]["counters"]["sdp.solve.iterations"]
    ns_schema = argparse.Namespace(**{**vars(ns), "schema_only": True})
    assert any("missing" in f for f in compare(base, missing, ns_schema)), \
        "missing counter must fail even in --schema-only"

    print("bench_compare: self-test OK")
    return 0


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    ap.add_argument("current", nargs="?", help="current BENCH_*.json")
    ap.add_argument("--time-tol", type=float, default=0.50,
                    help="allowed relative wall-time growth (default 0.50)")
    ap.add_argument("--value-tol", type=float, default=0.05,
                    help="allowed relative growth of quality values (default 0.05)")
    ap.add_argument("--counter-tol", type=float, default=0.25,
                    help="allowed relative growth of solver counters (default 0.25)")
    ap.add_argument("--min-ms", type=float, default=1.0,
                    help="ignore phases faster than this in both runs (default 1.0)")
    ap.add_argument("--no-time", action="store_true",
                    help="skip wall-time comparisons (cross-machine CI)")
    ap.add_argument("--schema-only", action="store_true",
                    help="only check schema and key presence")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in gate-logic checks and exit")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.current:
        ap.error("baseline and current files are required (or --self-test)")

    base, cur = load(args.baseline), load(args.current)
    failures = compare(base, cur, args)
    if failures:
        print(f"bench_compare: {len(failures)} regression(s) vs {args.baseline}:")
        for f in failures:
            print(f"  FAIL {f}")
        sys.exit(1)
    print(f"bench_compare: OK ({args.current} vs {args.baseline})")


if __name__ == "__main__":
    main()
