#!/usr/bin/env python3
"""Chaos harness for the ECO service daemon (examples/eco_served).

Four campaigns, each run over a fixed seed budget:

  kill    SIGKILL the server mid-resolve. The two independent recovery
          paths — a service restart (checkpoint + journal suffix) and the
          journal-only reference replay — must land on bit-identical
          state, a second restart must be stable, and the recovered
          resolve must be never-worse than the acknowledged pre-resolve
          state (avg/max Tcp within 1e-9 relative, total overflow not up).
  fault   Arm journal fsync/append fault sites. The server must degrade
          to read-only — refusing mutations with `err unavailable`, still
          answering queries, never crashing or deadlocking — and a clean
          restart must agree with the reference replay.
  torn    SIGKILL, then truncate the journal mid-record. Recovery must
          repair the tail and both paths must agree on the valid prefix.
  hammer  Concurrent sessions race edits, syncs, and resolves; SIGKILL
          mid-flight; both recovery paths must agree.

Stdlib only. Exit code 0 iff every campaign passed for every seed.
"""

from __future__ import annotations

import argparse
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional

START_TIMEOUT_S = 300.0  # recovery replays a resolve; generous for slow CI
IO_TIMEOUT_S = 300.0


class ChaosFailure(AssertionError):
    """A campaign invariant did not hold."""


def expect(cond: bool, message: str) -> None:
    if not cond:
        raise ChaosFailure(message)


def server_args(binary: Path, workdir: Path, seed: int) -> list[str]:
    return [
        str(binary),
        "--quiet",
        "--size", "14",
        "--nets", "90",
        "--seed", str(seed),
        "--journal", str(workdir / "journal.wal"),
        "--checkpoint", str(workdir / "state.ckpt"),
        "--checkpoint-every", "2",
    ]


class Server:
    """One eco_served process; waits for the listening banner on start."""

    def __init__(self, binary: Path, workdir: Path, seed: int,
                 extra: Optional[list[str]] = None) -> None:
        self.sock_path = workdir / "eco.sock"
        args = server_args(binary, workdir, seed)
        args += ["--socket", str(self.sock_path), "--print-hash"]
        args += list(extra or [])
        self.proc: subprocess.Popen[str] = subprocess.Popen(
            args, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
        self.start_hash = ""
        stdout = self.proc.stdout
        assert stdout is not None
        for line in stdout:  # a wedged start is caught by the outer timeout
            if line.startswith("hash "):
                self.start_hash = line.split()[1]
            if line.startswith("listening on"):
                return
        code = self.proc.wait(timeout=IO_TIMEOUT_S)
        raise ChaosFailure(f"server exited with {code} before listening")

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()  # SIGKILL: the crash the journal exists for
        self.proc.wait(timeout=IO_TIMEOUT_S)

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        expect(self.proc.wait(timeout=IO_TIMEOUT_S) == 0, "clean shutdown exited nonzero")


class Client:
    """One line-protocol connection."""

    def __init__(self, sock_path: Path) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(IO_TIMEOUT_S)
        self.sock.connect(str(sock_path))
        self.buf = b""

    def send(self, line: str) -> str:
        self.sock.sendall((line + "\n").encode())
        while b"\n" not in self.buf:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buf += chunk
        reply, _, self.buf = self.buf.partition(b"\n")
        return reply.decode()

    def close(self) -> None:
        self.sock.close()


def reply_int(reply: str, key: str) -> int:
    return int(reply_tok(reply, key))


def reply_float(reply: str, key: str) -> float:
    return float(reply_tok(reply, key))


def reply_tok(reply: str, key: str) -> str:
    for tok in reply.split():
        if tok.startswith(key + "="):
            return tok.split("=", 1)[1]
    raise ChaosFailure(f"no '{key}=' in reply: {reply}")


def replay_hash(binary: Path, workdir: Path, seed: int) -> str:
    """The journal-only reference recovery path (checkpoints ignored)."""
    args = server_args(binary, workdir, seed) + ["--replay"]
    out = subprocess.run(args, capture_output=True, text=True,
                         timeout=START_TIMEOUT_S, check=False)
    for line in out.stdout.splitlines():
        if line.startswith("hash "):
            return line.split()[1]
    raise ChaosFailure(f"replay failed: {out.stderr.strip()[-400:]}")


def submit_edits(client: Client, rng: random.Random, count: int) -> None:
    """Capacity raises only: monotone in capacity, so overflow cannot grow."""
    for _ in range(count):
        x, y = rng.randint(1, 11), rng.randint(1, 11)
        cap = rng.randint(8, 14)
        reply = client.send(f"capacity 0 {x} {y} {cap}")
        expect(reply.startswith("ok "), f"edit refused: {reply}")


def expect_recovery_agrees(binary: Path, workdir: Path, seed: int) -> Server:
    """Restart + reference replay must agree; returns the live restart."""
    replayed = replay_hash(binary, workdir, seed)
    server = Server(binary, workdir, seed)
    expect(server.start_hash == replayed,
           f"restart hash {server.start_hash} != replay hash {replayed}")
    return server


def campaign_kill(binary: Path, workdir: Path, seed: int) -> None:
    rng = random.Random(seed)
    server = Server(binary, workdir, seed)
    client = Client(server.sock_path)
    submit_edits(client, rng, 12)
    expect(client.send("sync") == "ok", "sync must ack")
    pre = client.send("query metrics")
    avg0, max0 = reply_float(pre, "avg_tcp"), reply_float(pre, "max_tcp")
    overflow0 = reply_int(pre, "wire_overflow") + reply_int(pre, "via_overflow")

    def fire_resolve() -> None:
        try:
            client.send("resolve")
        except (ConnectionError, OSError):
            pass  # the kill races the reply; either outcome is legal

    resolver = threading.Thread(target=fire_resolve)
    resolver.start()
    time.sleep(rng.uniform(0.0, 0.2))  # lands before, during, or after the solve
    server.kill()
    resolver.join(timeout=IO_TIMEOUT_S)
    expect(not resolver.is_alive(), "resolve client wedged after SIGKILL")
    client.close()

    recovered = expect_recovery_agrees(binary, workdir, seed)
    first_hash = recovered.start_hash
    probe = Client(recovered.sock_path)
    post = probe.send("query metrics")
    expect(reply_float(post, "avg_tcp") <= avg0 * (1.0 + 1e-9), "avg_tcp worse after recovery")
    expect(reply_float(post, "max_tcp") <= max0 * (1.0 + 1e-9), "max_tcp worse after recovery")
    post_overflow = reply_int(post, "wire_overflow") + reply_int(post, "via_overflow")
    expect(post_overflow <= overflow0, "overflow worse after recovery")
    probe.close()
    recovered.terminate()

    # Stability: recovering the recovered store changes nothing.
    second = Server(binary, workdir, seed)
    expect(second.start_hash == first_hash, "second restart moved the state")
    second.terminate()


def campaign_fault(binary: Path, workdir: Path, seed: int) -> None:
    rng = random.Random(seed)
    site = rng.choice(["serve.journal.fsync", "serve.journal.append"])
    # Occurrence 0 of either site happens during start() (genesis record),
    # so arm strictly later to fault a client-visible operation.
    server = Server(binary, workdir, seed,
                    extra=["--fault", f"{site}:{rng.randint(1, 3)}"])
    client = Client(server.sock_path)

    refused = False
    for _ in range(10):
        x, y = rng.randint(1, 11), rng.randint(1, 11)
        edit = client.send(f"capacity 0 {x} {y} {rng.randint(8, 14)}")
        barrier = client.send("sync")
        if edit.startswith("err unavailable") or barrier.startswith("err unavailable"):
            refused = True
            break
    expect(refused, "armed journal fault never surfaced as err unavailable")

    # Read-only, not dead: queries answer, mutations are refused, and the
    # snapshot hash is still serveable.
    stats = client.send("query stats")
    expect(reply_int(stats, "read_only") == 1, f"read_only not reported: {stats}")
    expect(client.send("query hash").startswith("ok "), "query refused in read-only mode")
    expect(client.send("resolve").startswith("err unavailable"),
           "resolve not refused in read-only mode")
    client.close()
    server.terminate()

    # A fault-free restart recovers every acknowledged record.
    expect_recovery_agrees(binary, workdir, seed).terminate()


def campaign_torn(binary: Path, workdir: Path, seed: int) -> None:
    rng = random.Random(seed)
    server = Server(binary, workdir, seed)
    client = Client(server.sock_path)
    submit_edits(client, rng, 8)
    expect(client.send("sync") == "ok", "sync must ack")
    server.kill()
    client.close()

    # A power cut mid-append: shear off part of the journal tail.
    journal = workdir / "journal.wal"
    size = journal.stat().st_size
    cut = rng.randint(1, 20)
    with journal.open("rb+") as f:
        f.truncate(max(size - cut, 0))

    expect_recovery_agrees(binary, workdir, seed).terminate()


def campaign_hammer(binary: Path, workdir: Path, seed: int) -> None:
    rng = random.Random(seed)
    server = Server(binary, workdir, seed)

    def worker(worker_seed: int, resolver: bool) -> None:
        wrng = random.Random(worker_seed)
        try:
            mine = Client(server.sock_path)
            for _ in range(10):
                x, y = wrng.randint(1, 11), wrng.randint(1, 11)
                mine.send(f"capacity 0 {x} {y} {wrng.randint(8, 14)}")
                mine.send("resolve" if resolver else "sync")
            mine.close()
        except (ConnectionError, OSError):
            pass  # expected once the kill lands

    threads = [threading.Thread(target=worker, args=(seed * 31 + i, i % 4 == 0))
               for i in range(8)]
    for t in threads:
        t.start()
    time.sleep(rng.uniform(0.1, 0.6))
    server.kill()
    for t in threads:
        t.join(timeout=IO_TIMEOUT_S)
        expect(not t.is_alive(), "hammer client wedged after SIGKILL")

    expect_recovery_agrees(binary, workdir, seed).terminate()


CAMPAIGNS = {
    "kill": campaign_kill,
    "fault": campaign_fault,
    "torn": campaign_torn,
    "hammer": campaign_hammer,
}


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--binary", type=Path, default=Path("build/examples/eco_served"),
                        help="path to the eco_served binary")
    parser.add_argument("--budget", type=int, default=3,
                        help="seeds per campaign (fixed: 1..budget)")
    parser.add_argument("--campaign", choices=sorted(CAMPAIGNS), action="append",
                        help="run only these campaigns (default: all)")
    args = parser.parse_args(argv)

    binary: Path = args.binary
    if not binary.exists():
        print(f"error: {binary} not found (build eco_served first)", file=sys.stderr)
        return 2

    names = args.campaign or sorted(CAMPAIGNS)
    failures = 0
    for name in names:
        for seed in range(1, args.budget + 1):
            workdir = Path(tempfile.mkdtemp(prefix=f"chaos_{name}_{seed}_"))
            started = time.monotonic()
            try:
                CAMPAIGNS[name](binary, workdir, seed)
            except ChaosFailure as failure:
                failures += 1
                print(f"FAIL {name} seed={seed}: {failure} (artifacts kept: {workdir})")
                continue
            print(f"ok   {name} seed={seed} ({time.monotonic() - started:.1f}s)")
            shutil.rmtree(workdir, ignore_errors=True)

    total = len(names) * args.budget
    print(f"chaos: {total - failures}/{total} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
