// Component micro-benchmarks (google-benchmark): the EDA substrates —
// global routing, segment-tree extraction, Elmore timing, partitioning,
// and one full partition SDP solve.

#include <benchmark/benchmark.h>

#include "bench/micro_main.hpp"

#include "src/core/critical.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/sdp_engine.hpp"
#include "src/gen/synth.hpp"
#include "src/route/router.hpp"
#include "src/route/seg_tree.hpp"
#include "src/timing/elmore.hpp"

namespace {

using namespace cpla;

gen::SynthSpec small_spec() {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 400;
  spec.num_layers = 6;
  spec.seed = 77;
  return spec;
}

void BM_GlobalRoute(benchmark::State& state) {
  const grid::Design d = gen::generate(small_spec());
  for (auto _ : state) {
    auto r = route::route_all(d);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GlobalRoute)->Unit(benchmark::kMillisecond);

void BM_ExtractTrees(benchmark::State& state) {
  const grid::Design d = gen::generate(small_spec());
  const route::RoutingResult routed = route::route_all(d);
  for (auto _ : state) {
    for (std::size_t n = 0; n < d.nets.size(); ++n) {
      route::NetRoute copy = routed.routes[n];
      auto tree = route::extract_tree(d.grid, d.nets[n], &copy);
      benchmark::DoNotOptimize(tree);
    }
  }
}
BENCHMARK(BM_ExtractTrees)->Unit(benchmark::kMillisecond);

void BM_ElmoreWholeDesign(benchmark::State& state) {
  core::Prepared prep = core::prepare(gen::generate(small_spec()));
  for (auto _ : state) {
    double sum = 0.0;
    for (int n = 0; n < prep.state->num_nets(); ++n) {
      if (prep.state->tree(n).segs.empty()) continue;
      sum += timing::critical_delay(prep.state->tree(n), prep.state->layers(n), *prep.rc);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ElmoreWholeDesign)->Unit(benchmark::kMillisecond);

void BM_PartitionSdpSolve(benchmark::State& state) {
  core::Prepared prep = core::prepare(gen::generate(small_spec()));
  const core::CriticalSet cs = core::select_critical(*prep.state, *prep.rc, 0.01);
  std::unordered_map<int, timing::NetTiming> timings;
  std::vector<core::SegRef> refs;
  for (int net : cs.nets) {
    timings.emplace(net,
                    timing::compute_timing(prep.state->tree(net), prep.state->layers(net),
                                           *prep.rc));
    for (const auto& seg : prep.state->tree(net).segs) {
      refs.push_back(core::SegRef{net, seg.id,
                                  {(seg.a.x + seg.b.x) / 2, (seg.a.y + seg.b.y) / 2}});
    }
  }
  const auto parts = core::partition(24, 24, refs, {});
  // Pick the largest partition as a representative solve.
  std::size_t best = 0;
  for (std::size_t i = 0; i < parts.leaves.size(); ++i) {
    if (parts.leaves[i].segments.size() > parts.leaves[best].segments.size()) best = i;
  }
  const core::PartitionProblem problem =
      core::build_partition_problem(*prep.state, *prep.rc, timings, parts.leaves[best], {});
  state.counters["segments"] = static_cast<double>(problem.vars.size());
  for (auto _ : state) {
    auto r = core::solve_partition_sdp(problem, *prep.state);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PartitionSdpSolve)->Unit(benchmark::kMillisecond);

}  // namespace

CPLA_MICRO_BENCH_MAIN("micro_eda")
