// Cross-backend arbiter harness: runs the same instance through the three
// backend modes (SDP-only, Lagrangian-only, hybrid) from identical initial
// assignments and reports each one's quality-vs-wall-clock point, plus a
// deadline-pressured pair showing the arbiter's second routing axis. The
// partition cap is raised well above the flow default so the instance
// actually contains partitions on both sides of the hybrid threshold —
// that is the regime the arbiter exists for (the lifted SDP's dense
// dimension grows with vars; the sub-gradient sweep stays linear).
//
// Flags beyond the common harness set (bench/harness.hpp):
//   --gate <wall_ratio>   exit nonzero unless the *deadline-pressured*
//                         hybrid run dominates the deadline-pressured
//                         SDP-only run: avg_tcp no worse (0.1% tolerance)
//                         AND wall-clock <= SDP-only * wall_ratio. CI uses
//                         1.0. The deadline is derived from the measured
//                         SDP per-solve time (mean/4), so the pressure —
//                         and with it the gate's premise — holds on any
//                         machine speed: the above-mean lifted SDPs blow
//                         the budget and degrade to keep-current, while
//                         the arbiter routes those partitions to the
//                         sub-gradient sweep, which always lands a valid
//                         pick inside it. The gate lives in-binary because
//                         bench_compare.py's one-sided bigger-is-worse
//                         rule cannot express a cross-phase frontier
//                         condition.
//
// The no-deadline trio is report-only: it maps the frontier (Lagrangian
// ~100x faster at a few percent quality cost, hybrid in between), but
// without deadline pressure the SDP tier is never the wrong tool, so
// "no worse AND no slower" is not the claim being made there.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench/harness.hpp"

namespace {

using namespace cpla;

struct ModeOutcome {
  bench::FlowOutcome flow;
  core::ArbiterStats arbiter;
  core::GuardStats guard;
};

ModeOutcome run_mode(bench::BenchRun* run, const core::CplaOptions& opt) {
  run->restore();
  WallTimer timer;
  core::CplaResult res =
      core::run_cpla(run->prepared.state.get(), *run->prepared.rc, run->critical, opt);
  ModeOutcome out;
  out.flow.seconds = timer.seconds();
  out.flow.metrics =
      core::compute_metrics(*run->prepared.state, *run->prepared.rc, run->critical);
  out.arbiter = res.arbiter_stats;
  out.guard = res.guard_stats;
  return out;
}

void record_mode(bench::BenchReport* report, const std::string& name, const ModeOutcome& out) {
  report->record_flow(name, out.flow);
  report->record_value(name + ".wire_overflow", static_cast<double>(out.flow.metrics.wire_overflow));
  report->record_value(name + ".sdp_chosen", static_cast<double>(out.arbiter.sdp_chosen));
  report->record_value(name + ".lagr_chosen", static_cast<double>(out.arbiter.lagr_chosen));
  report->record_value(name + ".sdp_escalations",
                       static_cast<double>(out.arbiter.sdp_escalations));
  report->record_value(name + ".lagr_escalations",
                       static_cast<double>(out.arbiter.lagr_escalations));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  double gate = 0.0;  // 0 = report only
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--gate") == 0 && r + 1 < argc) {
      gate = std::strtod(argv[++r], nullptr);
    }
  }

  // Quick mode shrinks the instance but keeps the released set dense
  // enough that the raised partition cap still yields >=48-var partitions
  // (otherwise hybrid degenerates to SDP-only and the gate proves nothing;
  // the lagr_chosen count below makes that visible either way).
  bench::BenchRun run = args.quick
                            ? [&] {
                                gen::SynthSpec spec = gen::suite_spec("newblue1");
                                spec.xsize = spec.ysize = 32;
                                spec.num_nets = 700;
                                spec.seed += (args.seed - 1) * 0x9e3779b97f4a7c15ull;
                                return bench::make_run_spec(std::move(spec), /*ratio=*/0.02);
                              }()
                            : bench::make_run("newblue1", /*ratio=*/0.01, args.seed);

  core::CplaOptions base;
  base.partition.max_segments = 64;
  base.max_rounds = args.quick ? 2 : 8;

  core::CplaOptions sdp_opt = base;  // backend.mode defaults to kSdp

  core::CplaOptions lagr_opt = base;
  lagr_opt.backend.mode = core::BackendMode::kLagr;

  core::CplaOptions hybrid_opt = base;
  hybrid_opt.backend.mode = core::BackendMode::kHybrid;
  // The quick instance's partitions top out below the stock threshold;
  // scale it down so the size policy still has both sides to route.
  if (args.quick) hybrid_opt.backend.lagr_min_vars = 32;

  const ModeOutcome sdp = run_mode(&run, sdp_opt);
  const ModeOutcome lagr = run_mode(&run, lagr_opt);
  const ModeOutcome hybrid = run_mode(&run, hybrid_opt);

  // Deadline pressure: a per-solve budget at a quarter of the measured
  // mean SDP solve time. The size distribution is heavy-tailed, so the big
  // lifted SDPs (many times the mean) blow the budget on any machine and
  // escalate — often to keep-current. Hybrid routes every partition
  // at/above deadline_min_vars to the Lagrangian sweep instead, which
  // always lands a valid pick inside the budget.
  const long sdp_solves = std::max(1L, sdp.guard.solves);
  const double deadline_ms =
      std::max(1.0, sdp.flow.seconds * 1e3 / static_cast<double>(sdp_solves) / 4.0);
  core::CplaOptions sdp_dl = sdp_opt;
  sdp_dl.guard.deadline_ms = deadline_ms;
  core::CplaOptions hybrid_dl = hybrid_opt;
  hybrid_dl.guard.deadline_ms = deadline_ms;
  const ModeOutcome sdp_deadline = run_mode(&run, sdp_dl);
  const ModeOutcome hybrid_deadline = run_mode(&run, hybrid_dl);

  std::printf("backend   Avg(Tcp)    Max(Tcp)   wire_ov  wall(s)  sdp/lagr chosen\n");
  std::printf("-----------------------------------------------------------------\n");
  auto row = [](const char* name, const ModeOutcome& m) {
    std::printf("%-9s %10.1f %10.1f %8ld %8.2f  %ld/%ld\n", name, m.flow.metrics.avg_tcp,
                m.flow.metrics.max_tcp, m.flow.metrics.wire_overflow, m.flow.seconds,
                m.arbiter.sdp_chosen, m.arbiter.lagr_chosen);
  };
  row("sdp", sdp);
  row("lagr", lagr);
  row("hybrid", hybrid);
  row("sdp+dl", sdp_deadline);
  row("hyb+dl", hybrid_deadline);

  bench::BenchReport report("backend_arbiter", args);
  record_mode(&report, "sdp", sdp);
  record_mode(&report, "lagr", lagr);
  record_mode(&report, "hybrid", hybrid);
  record_mode(&report, "sdp_deadline", sdp_deadline);
  record_mode(&report, "hybrid_deadline", hybrid_deadline);
  report.record_value("deadline_ms", deadline_ms);
  if (!report.write()) return 1;

  if (gate > 0.0) {
    bool ok = true;
    if (hybrid_deadline.arbiter.lagr_chosen == 0) {
      std::fprintf(stderr,
                   "backend_arbiter: FAIL hybrid routed nothing to lagr — the instance has "
                   "no partitions above the threshold, the gate would be vacuous\n");
      ok = false;
    }
    if (hybrid_deadline.flow.metrics.avg_tcp > sdp_deadline.flow.metrics.avg_tcp * 1.001) {
      std::fprintf(stderr,
                   "backend_arbiter: FAIL deadline-pressured hybrid avg_tcp %.1f worse than "
                   "sdp %.1f\n",
                   hybrid_deadline.flow.metrics.avg_tcp, sdp_deadline.flow.metrics.avg_tcp);
      ok = false;
    }
    if (hybrid_deadline.flow.seconds > sdp_deadline.flow.seconds * gate) {
      std::fprintf(stderr,
                   "backend_arbiter: FAIL deadline-pressured hybrid wall %.2fs above gate "
                   "(%.2f x sdp %.2fs)\n",
                   hybrid_deadline.flow.seconds, gate, sdp_deadline.flow.seconds);
      ok = false;
    }
    if (!ok) return 1;
  }
  return 0;
}
