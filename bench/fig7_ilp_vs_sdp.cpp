// Fig. 7: ILP formulation vs SDP relaxation on the small test cases
// (adaptec1, adaptec2, bigblue1, newblue1, newblue2, newblue4), 0.5%
// released, partitioning applied to both.
//
// Paper shape: (a) average and (b) maximum critical-path timing nearly
// identical between ILP and SDP; (c) SDP significantly faster.

#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace cpla;
  const bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  bench::BenchReport report("fig7_ilp_vs_sdp", args);
  set_log_level(LogLevel::kWarn);
  std::printf("=== Fig 7: ILP vs SDP on small cases (0.5%% critical) ===\n\n");

  Table table({"bench", "ILP Avg(Tcp)", "SDP Avg(Tcp)", "ILP Max(Tcp)", "SDP Max(Tcp)",
               "ILP CPU(s)", "SDP CPU(s)"});

  double sum_ilp_cpu = 0.0, sum_sdp_cpu = 0.0;
  double sum_ilp_avg = 0.0, sum_sdp_avg = 0.0;
  for (const auto& name : gen::small_case_names()) {
    bench::BenchRun run = bench::make_run(name, 0.005, args.seed);

    // Same iterative scheme and round budget for both; only the engine
    // differs (the paper applies its partitioning to both methods).
    core::CplaOptions ilp_opt;
    ilp_opt.engine = core::Engine::kIlp;
    ilp_opt.max_rounds = 3;
    ilp_opt.ilp.time_limit_s = 10.0;  // per-partition cap; ILP is the slow reference
    const bench::FlowOutcome ilp = bench::run_cpla_flow(&run, ilp_opt);

    core::CplaOptions sdp_opt;
    sdp_opt.max_rounds = 3;
    const bench::FlowOutcome sdp = bench::run_cpla_flow(&run, sdp_opt);
    report.record_flow(name + ".ilp", ilp);
    report.record_flow(name + ".sdp", sdp);

    table.add_row({name, fmt_num(ilp.metrics.avg_tcp / 1e3, 2),
                   fmt_num(sdp.metrics.avg_tcp / 1e3, 2), fmt_num(ilp.metrics.max_tcp / 1e3, 2),
                   fmt_num(sdp.metrics.max_tcp / 1e3, 2), fmt_num(ilp.seconds, 2),
                   fmt_num(sdp.seconds, 2)});
    sum_ilp_cpu += ilp.seconds;
    sum_sdp_cpu += sdp.seconds;
    sum_ilp_avg += ilp.metrics.avg_tcp;
    sum_sdp_avg += sdp.metrics.avg_tcp;
  }
  table.print(stdout);

  std::printf("\nSDP/ILP quality ratio (Avg): %.3f;  ILP/SDP runtime ratio: %.2fx\n",
              sum_sdp_avg / sum_ilp_avg, sum_ilp_cpu / std::max(0.01, sum_sdp_cpu));
  std::printf("(paper: quality ~1.0, ILP much slower — it cannot finish large cases)\n");
  report.record_value("ratio.quality", sum_sdp_avg / sum_ilp_avg);
  return report.write() ? 0 : 1;
}
