// Component micro-benchmarks (google-benchmark): the math substrates —
// dense linear algebra, simplex LP, branch-and-bound ILP, interior-point
// SDP — at the sizes the CPLA partitions produce.

#include <benchmark/benchmark.h>

#include "bench/micro_main.hpp"

#include "src/ilp/branch_bound.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/eigen.hpp"
#include "src/lp/simplex.hpp"
#include "src/sdp/solver.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace cpla;

la::Matrix random_spd(std::size_t n, Rng* rng) {
  la::Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng->normal();
  la::Matrix a = g * g.transposed();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

void BM_Cholesky(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Matrix a = random_spd(n, &rng);
  for (auto _ : state) {
    auto chol = la::Cholesky::factor(a);
    benchmark::DoNotOptimize(chol);
  }
}
BENCHMARK(BM_Cholesky)->Arg(16)->Arg(64)->Arg(128);

void BM_EigenSym(benchmark::State& state) {
  Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Matrix a = random_spd(n, &rng);
  for (auto _ : state) {
    auto e = la::eigen_sym(a);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_EigenSym)->Arg(16)->Arg(48);

void BM_SimplexLp(benchmark::State& state) {
  Rng rng(3);
  const int n = static_cast<int>(state.range(0));
  lp::LpProblem p;
  for (int j = 0; j < n; ++j) p.add_var(0.0, 1.0, rng.uniform(-1.0, 1.0));
  for (int i = 0; i < n / 2; ++i) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.5)) row.push_back({j, rng.uniform(0.1, 1.0)});
    }
    if (row.empty()) row.push_back({0, 1.0});
    p.add_row(lp::Sense::kLe, rng.uniform(1.0, 4.0), row);
  }
  for (auto _ : state) {
    auto r = lp::solve(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SimplexLp)->Arg(20)->Arg(60);

void BM_BranchBoundKnapsack(benchmark::State& state) {
  Rng rng(4);
  const int n = static_cast<int>(state.range(0));
  ilp::MipModel m;
  std::vector<std::pair<int, double>> row;
  for (int j = 0; j < n; ++j) {
    m.add_binary(-rng.uniform(1.0, 10.0));
    row.push_back({j, rng.uniform(1.0, 5.0)});
  }
  m.add_row(lp::Sense::kLe, n * 0.8, row);
  for (auto _ : state) {
    auto r = solve_mip(m);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BranchBoundKnapsack)->Arg(10)->Arg(16);

void BM_SdpMinEigenvalue(benchmark::State& state) {
  Rng rng(5);
  const int n = static_cast<int>(state.range(0));
  sdp::SdpProblem p({sdp::BlockSpec{sdp::BlockSpec::Kind::kDense, n}});
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) p.add_objective_entry(0, i, j, rng.uniform(-1.0, 1.0));
  }
  const int tr = p.add_constraint(1.0);
  for (int i = 0; i < n; ++i) p.add_entry(tr, 0, i, i, 1.0);
  for (auto _ : state) {
    auto r = sdp::solve(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SdpMinEigenvalue)->Arg(8)->Arg(24)->Arg(48);

// A lifted-partition-style instance shaped like the SDPs core/sdp_engine.cpp
// emits: dense block of 1 + vars*layers binary-relaxation variables, a diag
// slack block, and the characteristic constraint mix (Y00 pin, diagonal
// linkage, one-layer-per-segment rows, capacity rows with slack). This is
// the solver's production workload; m grows with the dense dimension, so it
// exercises the Schur assembly much harder than the single-constraint
// min-eigenvalue case above.
sdp::SdpProblem lifted_partition_problem(int vars, int layers, Rng* rng) {
  const int dense_dim = 1 + vars * layers;
  const int caps = vars;
  sdp::SdpProblem p({sdp::BlockSpec{sdp::BlockSpec::Kind::kDense, dense_dim},
                     sdp::BlockSpec{sdp::BlockSpec::Kind::kDiag, caps}});
  for (int k = 1; k < dense_dim; ++k) {
    p.add_objective_entry(0, 0, k, 0.5 * rng->uniform(0.1, 1.0));
  }
  for (int k = 1; k + layers < dense_dim; ++k) {
    p.add_objective_entry(0, k, k + layers, rng->uniform(-0.2, 0.2));
  }
  const int c0 = p.add_constraint(1.0);
  p.add_entry(c0, 0, 0, 0, 1.0);
  for (int k = 1; k < dense_dim; ++k) {
    const int c = p.add_constraint(0.0);
    p.add_entry(c, 0, k, k, 1.0);
    p.add_entry(c, 0, 0, k, -0.5);
  }
  for (int v = 0; v < vars; ++v) {
    const int c = p.add_constraint(1.0);
    for (int l = 0; l < layers; ++l) {
      p.add_entry(c, 0, 0, 1 + v * layers + l, 0.5);
    }
  }
  for (int r = 0; r < caps; ++r) {
    const int c = p.add_constraint(rng->uniform(1.0, 2.0));
    for (int v = 0; v < vars; ++v) {
      if (!rng->chance(0.4)) continue;
      const int l = static_cast<int>(rng->uniform_int(0, layers - 1));
      p.add_entry(c, 0, 0, 1 + v * layers + l, 0.5 * rng->uniform(0.5, 1.0));
    }
    p.add_entry(c, 1, r, r, 1.0);
  }
  return p;
}

void BM_SdpLiftedPartition(benchmark::State& state) {
  Rng rng(6);
  const int vars = static_cast<int>(state.range(0));
  const sdp::SdpProblem p = lifted_partition_problem(vars, /*layers=*/4, &rng);
  for (auto _ : state) {
    auto r = sdp::solve(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SdpLiftedPartition)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

CPLA_MICRO_BENCH_MAIN("micro_solvers")
