// Fig. 1: pin delay distribution of critical nets on adaptec1 with 0.5% of
// nets released, TILA vs our incremental layer assignment. The paper's
// point: the SDP flow shortens the *tail* (the worst pins) even where the
// bulk of the distribution is similar.
//
// Prints two histograms: pin count (log2 buckets on the paper's y-axis)
// per delay bin.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/harness.hpp"
#include "src/timing/elmore.hpp"

namespace {

std::vector<double> sink_delays(const cpla::core::Prepared& prepared,
                                const cpla::core::CriticalSet& critical) {
  std::vector<double> delays;
  for (int net : critical.nets) {
    const auto timing = cpla::timing::compute_timing(
        prepared.state->tree(net), prepared.state->layers(net), *prepared.rc);
    delays.insert(delays.end(), timing.sink_delay.begin(), timing.sink_delay.end());
  }
  return delays;
}

void print_histogram(const char* title, const std::vector<double>& delays, double lo,
                     double hi, int bins) {
  std::printf("%s  (%zu critical pins)\n", title, delays.size());
  const double width = (hi - lo) / bins;
  for (int b = 0; b < bins; ++b) {
    const double from = lo + b * width;
    const double to = from + width;
    int count = 0;
    for (double d : delays) {
      if (d >= from && (d < to || (b == bins - 1 && d <= to))) ++count;
    }
    std::string bar(static_cast<std::size_t>(count > 0 ? 1 + std::log2(count) : 0), '#');
    std::printf("  [%8.0f, %8.0f) %5d %s\n", from, to, count, bar.c_str());
  }
  const double worst = delays.empty() ? 0.0 : *std::max_element(delays.begin(), delays.end());
  std::printf("  worst pin delay: %.0f\n\n", worst);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpla;
  const bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  bench::BenchReport report("fig1_delay_distribution", args);
  set_log_level(LogLevel::kWarn);
  std::printf("=== Fig 1: pin delay distribution, adaptec1, 0.5%% critical ===\n\n");

  bench::BenchRun run = bench::make_run("adaptec1", 0.005, args.seed);

  const bench::FlowOutcome tila_out = bench::run_tila_flow(&run);
  const std::vector<double> tila = sink_delays(run.prepared, run.critical);

  const bench::FlowOutcome ours_out = bench::run_cpla_flow(&run);
  const std::vector<double> ours = sink_delays(run.prepared, run.critical);
  report.record_flow("adaptec1.tila", tila_out);
  report.record_flow("adaptec1.sdp", ours_out);

  // Common bin range across both flows (like the paper's shared x-axis).
  double hi = 0.0;
  for (double d : tila) hi = std::max(hi, d);
  for (double d : ours) hi = std::max(hi, d);

  print_histogram("(a) TILA", tila, 0.0, hi, 14);
  print_histogram("(b) ours (SDP)", ours, 0.0, hi, 14);

  const double tila_worst = *std::max_element(tila.begin(), tila.end());
  const double ours_worst = *std::max_element(ours.begin(), ours.end());
  std::printf("max pin delay: TILA %.0f vs ours %.0f (%.1f%% lower)\n", tila_worst, ours_worst,
              100.0 * (1.0 - ours_worst / tila_worst));
  report.record_value("adaptec1.tila.worst_pin_delay", tila_worst);
  report.record_value("adaptec1.sdp.worst_pin_delay", ours_worst);
  return report.write() ? 0 : 1;
}
