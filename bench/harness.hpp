#pragma once

// Shared helpers for the paper-reproduction harnesses (Table 2, Figs 1,
// 7, 8, 9). Each harness is a standalone binary that prints the same rows
// or series the paper reports, and — with --metrics-out <file> — emits a
// machine-readable BENCH_<name>.json artifact for CI:
//
//   { "schema": "cpla-bench-v1", "bench": ..., "git_rev": ..., "threads": N,
//     "seed": S, "phases": {"name": {"wall_ms": ...}}, "values": {...},
//     "metrics": { counters/gauges/histograms from the obs registry } }
//
// Common flags (parse_bench_args strips them, leaving the rest untouched
// so google-benchmark binaries can forward argc/argv):
//   --metrics-out <file>   write the JSON artifact
//   --seed <n>             perturb the synthetic-suite RNG (default 1 =
//                          the canonical suite); always recorded in output
//   --quick                reduced workload (binaries that support it)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "src/core/critical.hpp"
#include "src/core/flow.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/tila.hpp"
#include "src/gen/synth.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/table.hpp"
#include "src/util/logging.hpp"
#include "src/util/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#ifndef CPLA_GIT_REV
#define CPLA_GIT_REV "unknown"
#endif

namespace cpla::bench {

struct FlowOutcome {
  core::LaMetrics metrics;
  double seconds = 0.0;
};

struct BenchArgs {
  std::string metrics_out;      // empty = no artifact
  std::uint64_t seed = 1;       // 1 = canonical suite instances
  bool quick = false;
};

/// Strips the harness flags from argc/argv in place (so remaining args can
/// be handed to google-benchmark or bench-specific parsing).
inline BenchArgs parse_bench_args(int* argc, char** argv) {
  BenchArgs out;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--metrics-out") == 0 && r + 1 < *argc) {
      out.metrics_out = argv[++r];
    } else if (std::strcmp(argv[r], "--seed") == 0 && r + 1 < *argc) {
      out.seed = std::strtoull(argv[++r], nullptr, 10);
    } else if (std::strcmp(argv[r], "--quick") == 0) {
      out.quick = true;
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return out;
}

/// Collects per-phase wall times and named scalar results, then writes the
/// schema-stable JSON artifact (merged with the global metrics registry).
class BenchReport {
 public:
  BenchReport(std::string bench_name, const BenchArgs& args)
      : bench_(std::move(bench_name)), args_(args) {}

  void record_phase(const std::string& name, double wall_ms) { phases_[name] = wall_ms; }
  void record_value(const std::string& name, double value) { values_[name] = value; }

  /// Convenience: one flow run = one phase (wall time) + its quality values.
  void record_flow(const std::string& prefix, const FlowOutcome& out) {
    record_phase(prefix, out.seconds * 1e3);
    record_value(prefix + ".avg_tcp", out.metrics.avg_tcp);
    record_value(prefix + ".max_tcp", out.metrics.max_tcp);
    record_value(prefix + ".via_overflow", static_cast<double>(out.metrics.via_overflow));
    record_value(prefix + ".via_count", static_cast<double>(out.metrics.via_count));
  }

  static int thread_count() {
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
  }

  std::string to_json() const {
    std::string out = "{\"schema\":\"cpla-bench-v1\"";
    out += ",\"bench\":\"" + obs::json_escape(bench_) + '"';
    out += ",\"git_rev\":\"" + obs::json_escape(CPLA_GIT_REV) + '"';
    out += ",\"threads\":" + std::to_string(thread_count());
    out += ",\"seed\":" + std::to_string(args_.seed);
    out += ",\"phases\":{";
    bool first = true;
    for (const auto& [name, ms] : phases_) {
      if (!first) out += ',';
      first = false;
      out += '"' + obs::json_escape(name) + "\":{\"wall_ms\":" + obs::json_number(ms) + '}';
    }
    out += "},\"values\":{";
    first = true;
    for (const auto& [name, v] : values_) {
      if (!first) out += ',';
      first = false;
      out += '"' + obs::json_escape(name) + "\":" + obs::json_number(v);
    }
    out += "},\"metrics\":" + obs::metrics().to_json();
    out += '}';
    return out;
  }

  /// Writes the artifact if --metrics-out was given. Returns false (and
  /// logs) on I/O failure so benches can propagate a nonzero exit.
  bool write() const {
    if (args_.metrics_out.empty()) return true;
    std::FILE* f = std::fopen(args_.metrics_out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write metrics to %s\n", args_.metrics_out.c_str());
      return false;
    }
    const std::string json = to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("metrics written to %s\n", args_.metrics_out.c_str());
    return true;
  }

 private:
  std::string bench_;
  BenchArgs args_;
  std::map<std::string, double> phases_;
  std::map<std::string, double> values_;
};

struct BenchRun {
  core::Prepared prepared;
  core::CriticalSet critical;

  /// Baseline copy of the initial assignment (so TILA and CPLA start from
  /// identical states).
  std::vector<std::vector<int>> initial_layers;

  void snapshot() {
    initial_layers.clear();
    for (int n = 0; n < prepared.state->num_nets(); ++n) {
      initial_layers.push_back(prepared.state->layers(n));
    }
  }
  void restore() {
    for (int n = 0; n < prepared.state->num_nets(); ++n) {
      prepared.state->set_layers(n, initial_layers[n]);
    }
  }
};

/// Builds a run from an explicit generator spec (used by --quick smoke
/// instances and seed sweeps).
inline BenchRun make_run_spec(gen::SynthSpec spec, double critical_ratio) {
  BenchRun run{core::prepare(gen::generate(spec)), {}, {}};
  run.critical = core::select_critical(*run.prepared.state, *run.prepared.rc, critical_ratio);
  run.snapshot();
  return run;
}

/// Builds a named suite run. `seed` perturbs the instance deterministically;
/// the default (1) reproduces the canonical suite exactly, and the value
/// used always lands in the BENCH_*.json artifact via BenchReport.
inline BenchRun make_run(const std::string& bench_name, double critical_ratio,
                         std::uint64_t seed = 1) {
  gen::SynthSpec spec = gen::suite_spec(bench_name);
  spec.seed += (seed - 1) * 0x9e3779b97f4a7c15ull;
  return make_run_spec(std::move(spec), critical_ratio);
}

inline FlowOutcome run_tila_flow(BenchRun* run, const core::TilaOptions& opt = {}) {
  run->restore();
  WallTimer timer;
  core::run_tila(run->prepared.state.get(), *run->prepared.rc, run->critical, opt);
  FlowOutcome out;
  out.seconds = timer.seconds();
  out.metrics = core::compute_metrics(*run->prepared.state, *run->prepared.rc, run->critical);
  return out;
}

inline FlowOutcome run_cpla_flow(BenchRun* run, const core::CplaOptions& opt = {}) {
  run->restore();
  WallTimer timer;
  core::run_cpla(run->prepared.state.get(), *run->prepared.rc, run->critical, opt);
  FlowOutcome out;
  out.seconds = timer.seconds();
  out.metrics = core::compute_metrics(*run->prepared.state, *run->prepared.rc, run->critical);
  return out;
}

}  // namespace cpla::bench
