#pragma once

// Shared helpers for the paper-reproduction harnesses (Table 2, Figs 1,
// 7, 8, 9). Each harness is a standalone binary that prints the same rows
// or series the paper reports.

#include <cstdio>
#include <string>

#include "src/core/critical.hpp"
#include "src/core/flow.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/tila.hpp"
#include "src/gen/synth.hpp"
#include "src/util/table.hpp"
#include "src/util/logging.hpp"
#include "src/util/timer.hpp"

namespace cpla::bench {

struct FlowOutcome {
  core::LaMetrics metrics;
  double seconds = 0.0;
};

struct BenchRun {
  core::Prepared prepared;
  core::CriticalSet critical;

  /// Baseline copy of the initial assignment (so TILA and CPLA start from
  /// identical states).
  std::vector<std::vector<int>> initial_layers;

  void snapshot() {
    initial_layers.clear();
    for (int n = 0; n < prepared.state->num_nets(); ++n) {
      initial_layers.push_back(prepared.state->layers(n));
    }
  }
  void restore() {
    for (int n = 0; n < prepared.state->num_nets(); ++n) {
      prepared.state->set_layers(n, initial_layers[n]);
    }
  }
};

inline BenchRun make_run(const std::string& bench_name, double critical_ratio) {
  BenchRun run{core::prepare(gen::generate_suite(bench_name)), {}, {}};
  run.critical = core::select_critical(*run.prepared.state, *run.prepared.rc, critical_ratio);
  run.snapshot();
  return run;
}

inline FlowOutcome run_tila_flow(BenchRun* run, const core::TilaOptions& opt = {}) {
  run->restore();
  WallTimer timer;
  core::run_tila(run->prepared.state.get(), *run->prepared.rc, run->critical, opt);
  FlowOutcome out;
  out.seconds = timer.seconds();
  out.metrics = core::compute_metrics(*run->prepared.state, *run->prepared.rc, run->critical);
  return out;
}

inline FlowOutcome run_cpla_flow(BenchRun* run, const core::CplaOptions& opt = {}) {
  run->restore();
  WallTimer timer;
  core::run_cpla(run->prepared.state.get(), *run->prepared.rc, run->critical, opt);
  FlowOutcome out;
  out.seconds = timer.seconds();
  out.metrics = core::compute_metrics(*run->prepared.state, *run->prepared.rc, run->critical);
  return out;
}

}  // namespace cpla::bench
