#pragma once

// Shared main() for the google-benchmark micro suites: parses the harness
// flags (--metrics-out, --seed), forwards everything else to
// google-benchmark, and captures every benchmark's per-iteration real time
// as a phase in the BENCH_*.json artifact alongside the obs registry
// counters (pivots, B&B nodes, Cholesky factors, ...) the run generated.
//
// Usage, instead of BENCHMARK_MAIN():
//   CPLA_MICRO_BENCH_MAIN("micro_solvers")

#include <benchmark/benchmark.h>

#include <type_traits>

#include "bench/harness.hpp"

namespace cpla::bench {

// google-benchmark <1.8 exposes Run::error_occurred; >=1.8 replaced it with
// the Run::skipped enum. Detect whichever this toolchain has.
template <typename R, typename = void>
struct HasSkippedField : std::false_type {};
template <typename R>
struct HasSkippedField<R, std::void_t<decltype(std::declval<const R&>().skipped)>>
    : std::true_type {};

template <typename R>
bool run_completed(const R& run) {
  if constexpr (HasSkippedField<R>::value) {
    return !static_cast<bool>(run.skipped);
  } else {
    return !run.error_occurred;
  }
}

/// ConsoleReporter that additionally mirrors each per-iteration run into
/// the report: phase "<name>" = real time per iteration in ms.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || !run_completed(run)) continue;
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      report_->record_phase(run.benchmark_name(),
                            run.real_accumulated_time / iters * 1e3);
      report_->record_value(run.benchmark_name() + ".iterations",
                            static_cast<double>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

inline int micro_bench_main(const char* name, int argc, char** argv) {
  BenchArgs args = parse_bench_args(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchReport report(name, args);
  CapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return report.write() ? 0 : 1;
}

}  // namespace cpla::bench

#define CPLA_MICRO_BENCH_MAIN(name)                                  \
  int main(int argc, char** argv) {                                  \
    return ::cpla::bench::micro_bench_main(name, argc, argv);        \
  }
