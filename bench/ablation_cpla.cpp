// Ablation study of the CPLA design choices DESIGN.md documents beyond the
// paper's text. Each row disables exactly one mechanism relative to the
// default configuration and reports Avg(Tcp) / Max(Tcp) / runtime on two
// benchmarks (lower is better; the "default" row is the reference).
//
//   default           full flow
//   jacobi            snapshot-solve-commit-all partitions (no Gauss-Seidel)
//   no-polish         skip the coordinate-descent polish after rounding
//   no-guard          commit the rounded pick even if it regresses the model
//   no-rlt            drop the RLT product rows from the SDP relaxation
//   no-max-focus      gamma = 0: no global worst-net weighting
//   flat-weights      branch floor = 1.0: plain formulation (4a) weights
//   no-displace       no victim displacement (non-critical nets frozen)
//   no-refine         no max-shaving refinement rounds

// Usage: ablation_cpla [--quick] [--seed N] [--metrics-out FILE]
// (--quick runs a small synthetic smoke instance — the CI bench-smoke job)

#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace cpla;
  const bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  bench::BenchReport report("ablation_cpla", args);
  set_log_level(LogLevel::kWarn);
  std::printf("=== Ablation: CPLA design choices ===\n\n");

  struct Config {
    const char* name;
    core::CplaOptions opt;
  };
  std::vector<Config> configs;
  {
    Config c{"default", {}};
    configs.push_back(c);
  }
  {
    Config c{"jacobi", {}};
    c.opt.jacobi_commits = true;
    configs.push_back(c);
  }
  {
    Config c{"no-polish", {}};
    c.opt.model.polish = false;
    configs.push_back(c);
  }
  {
    Config c{"no-guard", {}};
    c.opt.model.incumbent_guard = false;
    configs.push_back(c);
  }
  {
    Config c{"no-rlt", {}};
    c.opt.model.rlt_rows = false;
    configs.push_back(c);
  }
  {
    Config c{"no-max-focus", {}};
    c.opt.model.max_focus_gamma = 0.0;
    configs.push_back(c);
  }
  {
    Config c{"flat-weights", {}};
    c.opt.model.branch_weight = 1.0;
    c.opt.model.max_focus_gamma = 0.0;
    configs.push_back(c);
  }
  {
    Config c{"no-displace", {}};
    c.opt.displace_victims = false;
    configs.push_back(c);
  }
  {
    Config c{"no-refine", {}};
    c.opt.max_refine_rounds = 0;
    configs.push_back(c);
  }

  // CI smoke: one small synthetic instance with a raised critical ratio so
  // every mechanism in the ablation list actually fires.
  std::vector<std::pair<std::string, bench::BenchRun>> runs;
  if (args.quick) {
    gen::SynthSpec spec;
    spec.name = "smoke";
    spec.xsize = spec.ysize = 24;
    spec.num_nets = 300;
    spec.seed = 7 + (args.seed - 1) * 0x9e3779b97f4a7c15ull;
    runs.emplace_back("smoke", bench::make_run_spec(spec, 0.02));
  } else {
    for (const char* name : {"adaptec1", "bigblue1"}) {
      runs.emplace_back(name, bench::make_run(name, 0.005, args.seed));
    }
  }

  Table table({"bench", "config", "Avg(Tcp)", "Max(Tcp)", "CPU(s)"});
  for (auto& [name, run] : runs) {
    for (const Config& config : configs) {
      const bench::FlowOutcome out = bench::run_cpla_flow(&run, config.opt);
      report.record_flow(name + "." + config.name, out);
      table.add_row({name, config.name, fmt_num(out.metrics.avg_tcp / 1e3, 2),
                     fmt_num(out.metrics.max_tcp / 1e3, 2), fmt_num(out.seconds, 2)});
    }
  }
  table.print(stdout);
  return report.write() ? 0 : 1;
}
