// Fig. 8: impact of the self-adaptive partition size cap (max segments per
// partition) on adaptec1, adaptec2, bigblue1.
//
// Paper shape: (a) Avg(Tcp) and (b) Max(Tcp) are nearly flat across
// partition sizes; (c) runtime grows sharply with partition size, with the
// sweet spot near 10 segments per partition (the default).
//
// --batch adds a second series per (bench, size) with the batched SDP
// backend enabled (CplaOptions::batch); its rows record phases/values under
// a ".batch" suffix. Both series then pin commit_batch (batch mode would
// otherwise auto-widen it, changing the Gauss-Seidel granularity): at equal
// commit-batch size the batched tier is result-transparent, so the quality
// columns must match the scalar series exactly and the extra series only
// adds runtime evidence. Plain runs keep the default commit_batch so the
// canonical fig8 series is unchanged.

#include <cstring>

#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace cpla;
  const bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  bool with_batch = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batch") == 0) with_batch = true;
  }
  bench::BenchReport report("fig8_partition_sweep", args);
  set_log_level(LogLevel::kWarn);
  std::printf("=== Fig 8: partition-size impact (SDP engine) ===\n\n");

  const int sizes[] = {5, 10, 20, 40};
  const char* benches[] = {"adaptec1", "adaptec2", "bigblue1"};

  Table table({"bench", "segs/part", "mode", "Avg(Tcp)", "Max(Tcp)", "CPU(s)", "partitions"});
  for (const char* name : benches) {
    bench::BenchRun run = bench::make_run(name, 0.005, args.seed);
    for (int size : sizes) {
      const int modes = with_batch ? 2 : 1;
      for (int mode = 0; mode < modes; ++mode) {
        core::CplaOptions opt;
        opt.partition.max_segments = size;
        opt.max_rounds = 2;  // fixed round budget so CPU reflects partition size
        opt.batch.enabled = mode == 1;
        if (with_batch) opt.commit_batch = 32;  // equal granularity across modes
        run.restore();
        WallTimer timer;
        const core::CplaResult r =
            core::run_cpla(run.prepared.state.get(), *run.prepared.rc, run.critical, opt);
        const double secs = timer.seconds();
        std::string prefix = std::string(name) + ".size" + std::to_string(size);
        if (mode == 1) prefix += ".batch";
        report.record_phase(prefix, secs * 1e3);
        report.record_value(prefix + ".avg_tcp", r.metrics.avg_tcp);
        report.record_value(prefix + ".max_tcp", r.metrics.max_tcp);
        table.add_row({name, std::to_string(size), mode == 1 ? "batch" : "scalar",
                       fmt_num(r.metrics.avg_tcp / 1e3, 2), fmt_num(r.metrics.max_tcp / 1e3, 2),
                       fmt_num(secs, 2),
                       std::to_string(r.partitions_solved / std::max(1, r.rounds))});
      }
    }
  }
  table.print(stdout);
  std::printf("\n(paper: quality flat across partition sizes; runtime rises steeply —\n"
              " the default cap of 10 sits at the runtime sweet spot)\n");
  return report.write() ? 0 : 1;
}
