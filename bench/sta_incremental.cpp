// Incremental STA headline bench: replay a stream of small-cone layer
// deltas (one net's assignment flips per step) against a routed design and
// time TimingGraph::update() against a from-scratch build() on the same
// state, insisting — at every step — that the two graphs agree bitwise on
// every arrival/required/slack at every corner, and that the top-K path
// report matches (the registered determinism contract, exercised at bench
// scale). Reports the aggregate incremental-vs-scratch speedup and the
// top-K extraction cost for K in {1, 8, 64}.
//
// Exit status: nonzero when any step diverges bitwise (always), or when
// the incremental speedup falls below the --gate floor (default 5x, full
// mode only; --quick is too small to gate). The floor lives in-binary for
// the same reason micro_batch's does: bench_compare.py's bigger-is-worse
// rule cannot express "this derived ratio must stay above X".
//
// Usage: sta_incremental [--quick] [--gate X] [--seed N] [--metrics-out FILE]

#include "bench/harness.hpp"
#include "src/sta/corner.hpp"
#include "src/sta/path_enum.hpp"
#include "src/sta/timing_graph.hpp"
#include "src/util/rng.hpp"

#include <cmath>
#include <cstring>
#include <vector>

namespace {

using namespace cpla;

bool bits_equal(double a, double b) { return a == b && std::signbit(a) == std::signbit(b); }

// Full bitwise comparison of the two graphs' timing arrays; returns the
// number of disagreeing (corner, node, quantity) entries.
long diff_graphs(const sta::TimingGraph& a, const sta::TimingGraph& b) {
  if (a.num_corners() != b.num_corners() || a.num_nodes() != b.num_nodes()) return 1L << 30;
  long mismatches = 0;
  for (int c = 0; c < a.num_corners(); ++c) {
    if (!bits_equal(a.corner_required(c), b.corner_required(c))) ++mismatches;
    for (int v = 0; v < a.num_nodes(); ++v) {
      if (!bits_equal(a.arrival(c, v), b.arrival(c, v))) ++mismatches;
      if (!bits_equal(a.required(c, v), b.required(c, v))) ++mismatches;
      if (!bits_equal(a.slack(c, v), b.slack(c, v))) ++mismatches;
    }
  }
  for (int v = 0; v < a.num_nodes(); ++v) {
    if (!bits_equal(a.worst_slack(v), b.worst_slack(v))) ++mismatches;
  }
  return mismatches;
}

// One small-cone delta: re-assign a few segments of one routed net.
void mutate_one_net(assign::AssignState* state, Rng* rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const int n = static_cast<int>(rng->uniform_int(0, state->num_nets() - 1));
    const route::SegTree& tree = state->tree(n);
    if (tree.segs.empty()) continue;
    std::vector<int> layers = state->layers(n);
    bool touched = false;
    for (std::size_t s = 0; s < layers.size(); ++s) {
      if (!rng->chance(0.5)) continue;
      const std::vector<int>& allowed = state->allowed_layers(tree.segs[s].horizontal);
      const int pick = allowed[static_cast<std::size_t>(
          rng->uniform_int(0, static_cast<int>(allowed.size()) - 1))];
      touched = touched || pick != layers[s];
      layers[s] = pick;
    }
    if (!touched) continue;
    state->set_layers(n, std::move(layers));
    return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  bench::BenchReport report("sta_incremental", args);
  set_log_level(LogLevel::kWarn);

  double gate = 5.0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) gate = std::atof(argv[i + 1]);
  }

  const int num_deltas = args.quick ? 12 : 60;
  std::printf("=== STA: incremental update vs from-scratch build (%d deltas) ===\n\n",
              num_deltas);

  gen::SynthSpec spec;
  spec.name = "sta";
  spec.xsize = spec.ysize = args.quick ? 24 : 40;
  spec.num_nets = args.quick ? 300 : 1200;
  spec.num_layers = 6;
  spec.seed = 19 + (args.seed - 1) * 0x9e3779b97f4a7c15ull;
  core::Prepared run = core::prepare(gen::generate(spec));

  const std::vector<sta::RcCorner> corners = {
      sta::RcCorner{"slow", 1.25, 1.15, 1.1, -1.0},
      sta::RcCorner{"typ", 1.0, 1.0, 1.0, -1.0},
      sta::RcCorner{"fast", 0.85, 0.9, 0.95, -1.0},
  };
  const sta::CornerSet corner_set(*run.rc, corners);

  sta::TimingGraph live;
  {
    WallTimer timer;
    live.build(*run.state, corner_set, sta::TimingGraph::Options{});
    report.record_phase("sta.initial_build", timer.seconds() * 1e3);
  }
  std::printf("graph: %d corners, %d nodes, %d edges, %d levels\n", live.num_corners(),
              live.num_nodes(), live.num_edges(), live.num_levels());

  Rng rng(0xC0FFEEull + args.seed);
  double inc_s = 0.0, scratch_s = 0.0;
  long mismatches = 0, path_mismatches = 0;
  long dirty_nodes_total = 0;
  for (int i = 0; i < num_deltas; ++i) {
    mutate_one_net(run.state.get(), &rng);
    {
      WallTimer timer;
      live.update(*run.state);
      inc_s += timer.seconds();
    }
    dirty_nodes_total += live.stats().dirty_nodes;

    sta::TimingGraph scratch;
    {
      WallTimer timer;
      scratch.build(*run.state, corner_set, sta::TimingGraph::Options{});
      scratch_s += timer.seconds();
    }
    mismatches += diff_graphs(live, scratch);

    // The path report must agree too (it reads the same slack arrays).
    const std::vector<sta::TimingPath> a = live.report_top_k_paths(0, 8);
    const std::vector<sta::TimingPath> b = scratch.report_top_k_paths(0, 8);
    if (a.size() != b.size()) {
      ++path_mismatches;
    } else {
      for (std::size_t p = 0; p < a.size(); ++p) {
        if (a[p].nodes != b[p].nodes || !bits_equal(a[p].slack, b[p].slack)) ++path_mismatches;
      }
    }
    if ((i + 1) % 20 == 0) std::printf("  %d/%d deltas replayed\n", i + 1, num_deltas);
  }
  const double speedup = inc_s > 0.0 ? scratch_s / inc_s : 0.0;

  // Top-K extraction cost on the final graph.
  double topk_ms[3] = {0.0, 0.0, 0.0};
  const int kvals[3] = {1, 8, 64};
  for (int j = 0; j < 3; ++j) {
    WallTimer timer;
    const std::vector<sta::TimingPath> paths = live.report_top_k_paths(0, kvals[j]);
    topk_ms[j] = timer.seconds() * 1e3;
    report.record_value("sta.topk.k" + std::to_string(kvals[j]) + ".paths",
                        static_cast<double>(paths.size()));
  }

  Table table({"metric", "value"});
  table.add_row({"incremental total (s)", fmt_num(inc_s, 3)});
  table.add_row({"from-scratch total (s)", fmt_num(scratch_s, 3)});
  table.add_row({"speedup", fmt_num(speedup, 2) + "x"});
  table.add_row({"avg dirty nodes / delta", fmt_num(double(dirty_nodes_total) / num_deltas, 1)});
  table.add_row({"bitwise mismatches", std::to_string(mismatches)});
  table.add_row({"path mismatches", std::to_string(path_mismatches)});
  table.add_row({"worst slack", fmt_num(live.worst_slack(), 2)});
  table.add_row({"top-64 extract (ms)", fmt_num(topk_ms[2], 2)});
  table.print(stdout);

  report.record_phase("sta.update_total", inc_s * 1e3);
  report.record_phase("sta.scratch_total", scratch_s * 1e3);
  // Inverse speedup rides the phases section (same reasoning as
  // eco_incremental: wall-clock direction + machine noise, so CI's
  // --no-time skips it while local comparisons still gate it).
  report.record_phase("sta.inverse_speedup", speedup > 0.0 ? 1e3 / speedup : 1e9);
  report.record_phase("sta.topk.k1", topk_ms[0]);
  report.record_phase("sta.topk.k8", topk_ms[1]);
  report.record_phase("sta.topk.k64", topk_ms[2]);
  report.record_value("sta.bitwise_mismatches", static_cast<double>(mismatches));
  report.record_value("sta.path_mismatches", static_cast<double>(path_mismatches));
  report.record_value("sta.graph.num_nodes", static_cast<double>(live.num_nodes()));
  report.record_value("sta.graph.num_edges", static_cast<double>(live.num_edges()));
  report.record_value("sta.graph.num_levels", static_cast<double>(live.num_levels()));
  report.record_value("sta.final.worst_slack", live.worst_slack());

  if (mismatches > 0 || path_mismatches > 0) {
    std::fprintf(stderr,
                 "sta_incremental: FAIL - incremental update diverged "
                 "(%ld value, %ld path mismatches)\n",
                 mismatches, path_mismatches);
    report.write();
    return 1;
  }
  if (!args.quick && speedup < gate) {
    std::fprintf(stderr, "sta_incremental: FAIL - speedup %.2fx below the %.2fx floor\n",
                 speedup, gate);
    report.write();
    return 1;
  }
  return report.write() ? 0 : 1;
}
