// ECO engine headline bench: replay a deterministic 50-delta edit script
// (12 under --quick) against a converged assignment twice — once through
// EcoSession::resolve() (warm partition-solution cache + timing cache) and
// once as a from-scratch core::optimize() on an identically mutated control
// copy — timing both and insisting the results stay bit-identical at every
// step. Reports the aggregate speedup and the cache hit rate.
//
// Exit status: nonzero when any step diverges (always), or when the warm
// speedup falls below 3x (full mode only; --quick is too small to gate).
//
// Usage: eco_incremental [--quick] [--seed N] [--metrics-out FILE]

#include "bench/harness.hpp"
#include "src/eco/delta.hpp"
#include "src/eco/eco_session.hpp"
#include "src/eco/edit_script.hpp"

int main(int argc, char** argv) {
  using namespace cpla;
  const bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  bench::BenchReport report("eco_incremental", args);
  set_log_level(LogLevel::kWarn);
  const int num_deltas = args.quick ? 12 : 50;
  std::printf("=== ECO: incremental resolve vs from-scratch (%d deltas) ===\n\n", num_deltas);

  gen::SynthSpec spec;
  spec.name = "eco";
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 200;
  spec.num_layers = 6;
  spec.seed = 7 + (args.seed - 1) * 0x9e3779b97f4a7c15ull;
  core::Prepared live = core::prepare(gen::generate(spec));
  core::Prepared control = core::prepare(gen::generate(spec));

  eco::EcoOptions opt;
  opt.critical_ratio = 0.03;
  opt.cache_capacity = 8192;
  eco::EcoSession session(live.design.get(), live.state.get(), live.rc.get(), opt);
  core::CriticalSet control_critical = session.critical();

  // ECO premise: edits arrive against a converged assignment. Align both
  // sides on it (bit-identical by the equivalence contract) and warm the
  // cache in the same stroke.
  {
    WallTimer timer;
    session.resolve();
    report.record_phase("warmup.resolve", timer.seconds() * 1e3);
  }
  core::optimize(control.state.get(), *control.rc, control_critical, opt.flow);

  const std::vector<eco::Delta> script = eco::make_edit_script(
      session.state(), session.critical(), {.count = num_deltas, .seed = args.seed});
  if (static_cast<int>(script.size()) != num_deltas) {
    std::fprintf(stderr, "eco_incremental: script generation came up short\n");
    return 1;
  }
  const eco::EcoStats warm = session.stats();

  double inc_s = 0.0, full_s = 0.0;
  long mismatch_nets = 0;
  for (int i = 0; i < num_deltas; ++i) {
    if (!session.apply(script[i]).is_ok() ||
        !eco::apply_delta(script[i], control.design.get(), control.state.get(),
                          &control_critical)
             .is_ok()) {
      std::fprintf(stderr, "eco_incremental: delta %d failed to apply\n", i);
      return 1;
    }
    {
      WallTimer timer;
      session.resolve();
      inc_s += timer.seconds();
    }
    {
      WallTimer timer;
      core::optimize(control.state.get(), *control.rc, control_critical, opt.flow);
      full_s += timer.seconds();
    }
    for (int net = 0; net < control.state->num_nets(); ++net) {
      if (live.state->layers(net) != control.state->layers(net)) ++mismatch_nets;
    }
    if ((i + 1) % 10 == 0) std::printf("  %d/%d deltas replayed\n", i + 1, num_deltas);
  }

  const eco::EcoStats s = session.stats();
  const long hits = s.cache_hits - warm.cache_hits;
  const long misses = s.cache_misses - warm.cache_misses;
  const double hit_rate = hits + misses > 0 ? double(hits) / double(hits + misses) : 0.0;
  const double speedup = inc_s > 0.0 ? full_s / inc_s : 0.0;

  Table table({"metric", "value"});
  table.add_row({"incremental total (s)", fmt_num(inc_s, 2)});
  table.add_row({"from-scratch total (s)", fmt_num(full_s, 2)});
  table.add_row({"speedup", fmt_num(speedup, 2) + "x"});
  table.add_row({"cache hit rate", fmt_num(hit_rate * 100.0, 1) + "%"});
  table.add_row({"dirty partitions", std::to_string(s.dirty_partitions)});
  table.add_row({"clean partitions", std::to_string(s.clean_partitions)});
  table.add_row({"mismatched nets", std::to_string(mismatch_nets)});
  table.print(stdout);

  report.record_phase("incremental.resolve_total", inc_s * 1e3);
  report.record_phase("from_scratch.optimize_total", full_s * 1e3);
  // Inverse speedup rides the phases section: it shares wall-clock's
  // "bigger is worse" direction and machine noise, so CI's --no-time skips
  // it while local comparisons still gate it at the time tolerance.
  report.record_phase("eco.inverse_speedup", speedup > 0.0 ? 1e3 / speedup : 1e9);
  report.record_value("eco.mismatch_nets", static_cast<double>(mismatch_nets));
  report.record_value("eco.cache.miss_rate", hits + misses > 0 ? 1.0 - hit_rate : 1.0);
  const core::LaMetrics final_metrics =
      core::compute_metrics(*live.state, *live.rc, session.critical());
  report.record_value("eco.final.avg_tcp", final_metrics.avg_tcp);
  report.record_value("eco.final.max_tcp", final_metrics.max_tcp);

  if (mismatch_nets > 0) {
    std::fprintf(stderr, "eco_incremental: FAIL - incremental resolve diverged on %ld nets\n",
                 mismatch_nets);
    report.write();
    return 1;
  }
  if (!args.quick && speedup < 3.0) {
    std::fprintf(stderr, "eco_incremental: FAIL - warm speedup %.2fx below the 3x floor\n",
                 speedup);
    report.write();
    return 1;
  }
  return report.write() ? 0 : 1;
}
