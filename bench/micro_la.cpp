// Dense linear-algebra micro-benchmarks (google-benchmark): the blocked
// kernels under src/la and the BlockMatrix operations the SDP solver leans
// on. Sizes bracket the partition-scale regime (tens to ~200) and include
// the odd tails the blocking scheme must handle.

#include <benchmark/benchmark.h>

#include "bench/micro_main.hpp"

#include "src/la/cholesky.hpp"
#include "src/sdp/blockmat.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace cpla;

la::Matrix random_dense(std::size_t rows, std::size_t cols, Rng* rng) {
  la::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng->normal();
  return m;
}

la::Matrix random_spd(std::size_t n, Rng* rng) {
  la::Matrix g = random_dense(n, n, rng);
  la::Matrix a = g * g.transposed();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

sdp::BlockMatrix random_block_spd(std::size_t blocks, std::size_t dim, Rng* rng) {
  sdp::BlockStructure structure(
      blocks, sdp::BlockSpec{sdp::BlockSpec::Kind::kDense, static_cast<int>(dim)});
  sdp::BlockMatrix m(structure);
  for (std::size_t k = 0; k < blocks; ++k) m.dense(k) = random_spd(dim, rng);
  return m;
}

void BM_Gemm(benchmark::State& state) {
  Rng rng(11);
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Matrix a = random_dense(n, n, &rng);
  const la::Matrix b = random_dense(n, n, &rng);
  for (auto _ : state) {
    la::Matrix c = a * b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(192);

void BM_CholeskyFactor(benchmark::State& state) {
  Rng rng(12);
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Matrix a = random_spd(n, &rng);
  for (auto _ : state) {
    auto chol = la::Cholesky::factor(a);
    benchmark::DoNotOptimize(chol);
  }
}
BENCHMARK(BM_CholeskyFactor)->Arg(32)->Arg(64)->Arg(128)->Arg(192);

void BM_CholeskySolveMatrix(benchmark::State& state) {
  Rng rng(13);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto chol = la::Cholesky::factor(random_spd(n, &rng));
  const la::Matrix b = random_dense(n, n, &rng);
  for (auto _ : state) {
    la::Matrix x = chol->solve(b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CholeskySolveMatrix)->Arg(32)->Arg(64)->Arg(128);

void BM_CholeskyInverse(benchmark::State& state) {
  Rng rng(14);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto chol = la::Cholesky::factor(random_spd(n, &rng));
  for (auto _ : state) {
    la::Matrix inv = chol->inverse();
    benchmark::DoNotOptimize(inv);
  }
}
BENCHMARK(BM_CholeskyInverse)->Arg(32)->Arg(64)->Arg(128);

void BM_BlockMultiply(benchmark::State& state) {
  Rng rng(15);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const sdp::BlockMatrix a = random_block_spd(8, dim, &rng);
  const sdp::BlockMatrix b = random_block_spd(8, dim, &rng);
  for (auto _ : state) {
    sdp::BlockMatrix c = multiply(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BlockMultiply)->Arg(32)->Arg(64);

void BM_BlockCholeskyFactor(benchmark::State& state) {
  Rng rng(16);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const sdp::BlockMatrix a = random_block_spd(8, dim, &rng);
  for (auto _ : state) {
    auto chol = sdp::BlockCholesky::factor(a);
    benchmark::DoNotOptimize(chol);
  }
}
BENCHMARK(BM_BlockCholeskyFactor)->Arg(32)->Arg(64);

}  // namespace

CPLA_MICRO_BENCH_MAIN("micro_la")
