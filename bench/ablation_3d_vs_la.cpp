// Extension experiment: monolithic direct 3-D routing vs the paper's
// decomposition (2-D routing -> layer assignment -> CPLA). The 3-D router
// sees layers during search; the decomposition routes in 2-D and then
// optimizes layers with the SDP flow. Reported per benchmark:
//   * Avg/Max critical-path delay over the same released-net ids,
//   * design-wide wirelength and via count,
//   * runtime of each flow.

#include "bench/harness.hpp"
#include "src/route/router3d.hpp"

int main(int argc, char** argv) {
  using namespace cpla;
  const bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  bench::BenchReport report("ablation_3d_vs_la", args);
  set_log_level(LogLevel::kWarn);
  std::printf("=== Extension: direct 3-D routing vs 2-D + CPLA layer assignment ===\n\n");

  Table table({"bench", "flow", "Avg(Tcp)", "Max(Tcp)", "wirelen", "via#", "CPU(s)"});
  for (const char* name : {"adaptec1", "newblue1"}) {
    // --- Flow A: 2-D + layer assignment + CPLA --------------------------
    WallTimer t_a;
    bench::BenchRun run = bench::make_run(name, 0.005, args.seed);
    core::run_cpla(run.prepared.state.get(), *run.prepared.rc, run.critical, {});
    const double secs_a = t_a.seconds();
    const core::LaMetrics m_a =
        core::compute_metrics(*run.prepared.state, *run.prepared.rc, run.critical);
    long wirelen_a = 0;
    for (int n = 0; n < run.prepared.state->num_nets(); ++n) {
      for (const auto& seg : run.prepared.state->tree(n).segs) wirelen_a += seg.length();
    }

    // --- Flow B: direct 3-D routing -------------------------------------
    WallTimer t_b;
    gen::SynthSpec spec_b = gen::suite_spec(name);
    spec_b.seed += (args.seed - 1) * 0x9e3779b97f4a7c15ull;  // same instance as flow A
    const grid::Design design = gen::generate(spec_b);
    const route::Routing3DResult routed = route::route_all_3d(design);
    std::vector<route::SegTree> trees;
    std::vector<std::vector<int>> layers;
    for (std::size_t n = 0; n < design.nets.size(); ++n) {
      route::Tree3D t = route::extract_tree_3d(design.grid, design.nets[n], routed.routes[n]);
      trees.push_back(std::move(t.tree));
      layers.push_back(std::move(t.layers));
    }
    assign::AssignState state(&design, std::move(trees));
    for (std::size_t n = 0; n < layers.size(); ++n) {
      if (state.tree(static_cast<int>(n)).segs.empty()) continue;
      state.set_layers(static_cast<int>(n), layers[n]);
    }
    const double secs_b = t_b.seconds();

    // Same released ids as flow A for a like-for-like critical comparison.
    const core::LaMetrics m_b =
        core::compute_metrics(state, *run.prepared.rc, run.critical);
    long wirelen_b = 0;
    for (int n = 0; n < state.num_nets(); ++n) {
      for (const auto& seg : state.tree(n).segs) wirelen_b += seg.length();
    }

    report.record_phase(std::string(name) + ".2d_cpla", secs_a * 1e3);
    report.record_value(std::string(name) + ".2d_cpla.avg_tcp", m_a.avg_tcp);
    report.record_value(std::string(name) + ".2d_cpla.wirelen", static_cast<double>(wirelen_a));
    report.record_phase(std::string(name) + ".3d_direct", secs_b * 1e3);
    report.record_value(std::string(name) + ".3d_direct.avg_tcp", m_b.avg_tcp);
    report.record_value(std::string(name) + ".3d_direct.wirelen", static_cast<double>(wirelen_b));
    table.add_row({name, "2D+CPLA", fmt_num(m_a.avg_tcp / 1e3, 2),
                   fmt_num(m_a.max_tcp / 1e3, 2), std::to_string(wirelen_a),
                   std::to_string(m_a.via_count), fmt_num(secs_a, 2)});
    table.add_row({name, "3D-direct", fmt_num(m_b.avg_tcp / 1e3, 2),
                   fmt_num(m_b.max_tcp / 1e3, 2), std::to_string(wirelen_b),
                   std::to_string(m_b.via_count), fmt_num(secs_b, 2)});
  }
  table.print(stdout);
  std::printf("\n(3-D search is layer-aware but congestion-blind across layers per step and\n"
              " far slower per net; the decomposition plus timing-driven incremental\n"
              " assignment is how production flows close timing)\n");
  return report.write() ? 0 : 1;
}
