// ECO service load generator: drives one in-process EcoService (journal +
// checkpoints on, the production configuration) with concurrent sessions
// streaming capacity edits, durability syncs, and resolves, then proves the
// run back: the journal must replay to the exact final snapshot hash, the
// final resolve must be never-worse than the warmed entry state, and the
// p99 resolve latency under load must stay within a generous multiple of a
// quiescent solo resolve (a machine-relative gate, so it survives CI
// hardware churn where absolute wall clocks cannot).
//
// Artifact notes (cpla-bench-v1): latency percentiles ride the `phases`
// section so CI's --no-time skips them; the gates and the service's
// deterministic totals ride `values` where the 5% one-sided tolerance
// applies. Load-phase obs counters (batch counts, journal records) depend
// on thread interleaving, so the registry is zeroed — registration kept,
// presence still checked — before the artifact is written.
//
// Exit status: nonzero when replay diverges, the final state regresses, or
// the relative latency gate trips.
//
// Usage: eco_serve [--quick] [--seed N] [--metrics-out FILE]

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "src/eco/delta.hpp"
#include "src/serve/service.hpp"

namespace {

double percentile(std::vector<double> sorted_ms, double pct) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double rank = pct / 100.0 * static_cast<double>(sorted_ms.size() - 1);
  return sorted_ms[static_cast<std::size_t>(rank + 0.5)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpla;
  const bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  bench::BenchReport report("eco_serve", args);
  set_log_level(LogLevel::kWarn);

  const int kSessions = args.quick ? 4 : 8;
  const int kEditsPerSession = args.quick ? 30 : 90;
  const int kSyncEvery = 10;
  const int kResolveEvery = 30;
  const int kWarmupEdits = 12;
  std::printf("=== ECO service: %d sessions x %d edits (journal + checkpoints on) ===\n\n",
              kSessions, kEditsPerSession);

  gen::SynthSpec spec;
  spec.name = "eco_serve";
  spec.xsize = spec.ysize = 16;
  spec.num_nets = 140;
  spec.num_layers = 6;
  spec.seed = 11 + (args.seed - 1) * 0x9e3779b97f4a7c15ull;
  core::Prepared live = core::prepare(gen::generate(spec));

  // Pre-compute every delta while the state is quiescent — client threads
  // must never read the live grid (that is the worker's job). All edits are
  // capacity raises over the *original* capacities, warmup confined to the
  // top row and load to the rows below it, so whatever interleaving wins,
  // every edge ends at or above its capacity at the entry resolve — the
  // precondition for the never-worse gate.
  const auto& g = live.design->grid;
  int h_layer = 0;
  while (!g.is_horizontal(h_layer)) ++h_layer;
  const int load_rows = g.ysize() - 1;
  std::vector<eco::Delta> warmup;
  for (int i = 0; i < kWarmupEdits; ++i) {
    const int x = (i * 5) % (g.xsize() - 1);
    const int cap = g.edge_capacity(h_layer, g.h_edge_id(x, load_rows));
    warmup.push_back(eco::Delta::capacity_adjusted(h_layer, x, load_rows, cap + 1 + i % 3));
  }
  std::vector<std::vector<eco::Delta>> scripts(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    for (int i = 0; i < kEditsPerSession; ++i) {
      const int x = (s * 11 + i * 7) % (g.xsize() - 1);
      const int y = (s + i * 3) % load_rows;
      const int cap = g.edge_capacity(h_layer, g.h_edge_id(x, y));
      scripts[s].push_back(eco::Delta::capacity_adjusted(h_layer, x, y, cap + 1 + (s + i) % 4));
    }
  }

  namespace fs = std::filesystem;
  std::string workdir = (fs::temp_directory_path() / "cpla_eco_serve_XXXXXX").string();
  if (mkdtemp(workdir.data()) == nullptr) {
    std::fprintf(stderr, "eco_serve: cannot create a journal directory\n");
    return 1;
  }

  serve::ServeOptions opt;
  opt.eco.critical_ratio = 0.03;
  opt.journal_path = workdir + "/journal.wal";
  opt.checkpoint_path = workdir + "/state.ckpt";
  // Every 2: resolve executions under load vary with marker folding, but
  // the standalone warmup + final resolves guarantee at least one multiple
  // of 2, so serve.checkpoint.writes is always registered (presence-stable
  // artifacts).
  opt.checkpoint_every = 2;
  opt.max_sessions = kSessions + 1;
  // Coalescing folds same-edge edits per batch, and batch composition is
  // an interleaving accident — off, so applied == submitted exactly.
  opt.coalesce = false;
  opt.max_queue = static_cast<std::size_t>(kSessions * kEditsPerSession + kWarmupEdits + 64);
  serve::EcoService service(live.design.get(), live.state.get(), live.rc.get(), opt);
  if (!service.start().is_ok()) {
    std::fprintf(stderr, "eco_serve: service start failed\n");
    return 1;
  }

  // Warmup: a quiescent edit burst + resolve. Its wall time is the solo
  // reference the loaded p99 is gated against, and its metrics are the
  // entry state for the never-worse check.
  const Result<int> warm_session = service.open_session();
  for (const eco::Delta& d : warmup) {
    if (!service.submit(warm_session.value(), d).is_ok()) {
      std::fprintf(stderr, "eco_serve: warmup edit shed\n");
      return 1;
    }
  }
  WallTimer solo_timer;
  const serve::ResolveOutcome entry = service.resolve(warm_session.value());
  const double solo_ms = solo_timer.seconds() * 1e3;
  if (!entry.status.is_ok()) {
    std::fprintf(stderr, "eco_serve: warmup resolve failed\n");
    return 1;
  }
  report.record_phase("warmup.resolve", solo_ms);

  std::atomic<int> failures{0};
  std::atomic<int> resolves_ok{1};  // the warmup resolve, already checked
  std::vector<std::vector<double>> resolve_ms(kSessions), sync_ms(kSessions);
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  WallTimer load_timer;
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      const Result<int> session = service.open_session();
      if (!session.is_ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int e = 0; e < kEditsPerSession; ++e) {
        if (!service.submit(session.value(), scripts[s][e]).is_ok()) failures.fetch_add(1);
        if ((e + 1) % kSyncEvery == 0) {
          WallTimer timer;
          if (!service.sync(session.value()).is_ok()) failures.fetch_add(1);
          sync_ms[s].push_back(timer.seconds() * 1e3);
        }
        if ((e + 1) % kResolveEvery == 0) {
          WallTimer timer;
          if (service.resolve(session.value()).status.is_ok()) resolves_ok.fetch_add(1);
          resolve_ms[s].push_back(timer.seconds() * 1e3);
        }
      }
      service.close_session(session.value());
    });
  }
  for (std::thread& t : clients) t.join();
  const double load_s = load_timer.seconds();
  report.record_phase("load.wall", load_s * 1e3);

  // Settle: one final resolve covers any edits behind the last in-load one.
  WallTimer final_timer;
  const serve::ResolveOutcome fin = service.resolve(warm_session.value());
  report.record_phase("final.resolve", final_timer.seconds() * 1e3);
  if (fin.status.is_ok()) resolves_ok.fetch_add(1);
  service.close_session(warm_session.value());

  const std::uint64_t final_hash = service.snapshot()->hash;
  const serve::ServeStats stats = service.stats();
  service.stop();

  // Recovery proof: the journal alone, replayed against a freshly
  // generated base, must land on the published final bits.
  core::Prepared fresh = core::prepare(gen::generate(spec));
  const Result<std::uint64_t> replayed = serve::replay_journal(
      opt.journal_path, fresh.design.get(), fresh.state.get(), fresh.rc.get(), opt.eco);
  const bool equivalence_ok = replayed.is_ok() && replayed.value() == final_hash;
  fs::remove_all(workdir);

  const bool never_worse_ok =
      fin.metrics.avg_tcp <= entry.metrics.avg_tcp * (1.0 + 1e-9) &&
      fin.metrics.max_tcp <= entry.metrics.max_tcp * (1.0 + 1e-9) &&
      fin.metrics.wire_overflow + fin.metrics.via_overflow <=
          entry.metrics.wire_overflow + entry.metrics.via_overflow;

  std::vector<double> all_resolve, all_sync;
  for (int s = 0; s < kSessions; ++s) {
    all_resolve.insert(all_resolve.end(), resolve_ms[s].begin(), resolve_ms[s].end());
    all_sync.insert(all_sync.end(), sync_ms[s].begin(), sync_ms[s].end());
  }
  const double p50 = percentile(all_resolve, 50.0);
  const double p99 = percentile(all_resolve, 99.0);
  // Relative latency gate: a loaded resolve waits behind at most the other
  // sessions' resolves, each costing about one solo resolve, so 50x solo
  // (plus slack for scheduler noise on busy CI runners) is room to spare —
  // it trips on serialization collapse, not on a slow machine.
  const double budget_ms = 50.0 * std::max(solo_ms, 1.0) + 500.0;
  const bool latency_ok = p99 <= budget_ms;

  Table table({"metric", "value"});
  table.add_row({"sessions", std::to_string(kSessions)});
  table.add_row({"edits submitted", std::to_string(stats.submitted)});
  table.add_row({"edits applied", std::to_string(stats.applied)});
  table.add_row({"resolves ok", std::to_string(resolves_ok.load())});
  table.add_row({"load wall (s)", fmt_num(load_s, 2)});
  table.add_row({"solo resolve (ms)", fmt_num(solo_ms, 1)});
  table.add_row({"resolve p50 (ms)", fmt_num(p50, 1)});
  table.add_row({"resolve p99 (ms)", fmt_num(p99, 1)});
  table.add_row({"sync p99 (ms)", fmt_num(percentile(all_sync, 99.0), 1)});
  table.add_row({"replay agrees", equivalence_ok ? "yes" : "NO"});
  table.add_row({"never worse", never_worse_ok ? "yes" : "NO"});
  table.print(stdout);

  report.record_phase("resolve.p50", p50);
  report.record_phase("resolve.p99", p99);
  report.record_phase("resolve.max", percentile(all_resolve, 100.0));
  report.record_phase("sync.p50", percentile(all_sync, 50.0));
  report.record_phase("sync.p99", percentile(all_sync, 99.0));

  const int expected_resolves = kSessions * (kEditsPerSession / kResolveEvery) + 2;
  report.record_value("serve.equivalence_ok", equivalence_ok ? 1.0 : 0.0);
  report.record_value("serve.never_worse_ok", never_worse_ok ? 1.0 : 0.0);
  report.record_value("serve.latency_gate_ok", latency_ok ? 1.0 : 0.0);
  report.record_value("serve.submitted", static_cast<double>(stats.submitted));
  report.record_value("serve.applied", static_cast<double>(stats.applied));
  report.record_value("serve.rejected", static_cast<double>(stats.rejected));
  report.record_value("serve.shed", static_cast<double>(stats.shed));
  report.record_value("serve.coalesced", static_cast<double>(stats.coalesced));
  report.record_value("serve.client_failures", static_cast<double>(failures.load()));
  report.record_value("serve.resolves_ok", static_cast<double>(resolves_ok.load()));
  report.record_value("serve.resolves_expected", static_cast<double>(expected_resolves));

  // Zero the obs registry (registration survives, so the comparator still
  // checks presence): batch and journal-record counts vary with thread
  // interleaving, and the deterministic totals are already in `values`.
  obs::metrics().reset();

  bool ok = true;
  if (failures.load() > 0 || resolves_ok.load() != expected_resolves) {
    std::fprintf(stderr, "eco_serve: FAIL - %d client failures, %d/%d resolves ok\n",
                 failures.load(), resolves_ok.load(), expected_resolves);
    ok = false;
  }
  if (!equivalence_ok) {
    std::fprintf(stderr, "eco_serve: FAIL - journal replay does not match the final state\n");
    ok = false;
  }
  if (!never_worse_ok) {
    std::fprintf(stderr, "eco_serve: FAIL - final resolve worse than the entry state\n");
    ok = false;
  }
  if (!latency_ok) {
    std::fprintf(stderr, "eco_serve: FAIL - resolve p99 %.1fms over the %.1fms budget\n", p99,
                 budget_ms);
    ok = false;
  }
  if (!report.write()) ok = false;
  return ok ? 0 : 1;
}
