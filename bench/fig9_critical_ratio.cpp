// Fig. 9: impact of the critical ratio (fraction of nets released) on
// benchmark adaptec1, TILA vs SDP.
//
// Paper shape: (a) Avg(Tcp) decreases slightly with more released nets for
// both flows; (b) TILA does not control Max(Tcp) as well as SDP; (c) SDP
// runtime grows roughly linearly with the ratio (well-controlled
// scalability).

#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace cpla;
  const bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  bench::BenchReport report("fig9_critical_ratio", args);
  set_log_level(LogLevel::kWarn);
  std::printf("=== Fig 9: critical-ratio impact on adaptec1 ===\n\n");

  const double ratios[] = {0.005, 0.010, 0.015, 0.020, 0.025};

  Table table({"ratio", "TILA Avg(Tcp)", "SDP Avg(Tcp)", "TILA Max(Tcp)", "SDP Max(Tcp)",
               "TILA CPU(s)", "SDP CPU(s)"});
  for (double ratio : ratios) {
    bench::BenchRun run = bench::make_run("adaptec1", ratio, args.seed);
    const bench::FlowOutcome tila = bench::run_tila_flow(&run);
    const bench::FlowOutcome sdp = bench::run_cpla_flow(&run);
    std::string prefix = "adaptec1.r";  // two steps: gcc 12 -Wrestrict FP (PR105651)
    prefix += fmt_num(1000.0 * ratio, 0);
    report.record_flow(prefix + ".tila", tila);
    report.record_flow(prefix + ".sdp", sdp);
    table.add_row({fmt_num(100.0 * ratio, 1) + "%", fmt_num(tila.metrics.avg_tcp / 1e3, 2),
                   fmt_num(sdp.metrics.avg_tcp / 1e3, 2), fmt_num(tila.metrics.max_tcp / 1e3, 2),
                   fmt_num(sdp.metrics.max_tcp / 1e3, 2), fmt_num(tila.seconds, 3),
                   fmt_num(sdp.seconds, 2)});
  }
  table.print(stdout);
  std::printf("\n(paper: Avg decreases mildly with ratio for both; SDP holds Max(Tcp)\n"
              " down where TILA does not; SDP runtime scales ~linearly with ratio)\n");
  return report.write() ? 0 : 1;
}
