// Batched-SDP throughput harness: solves a population of lifted
// partition SDPs (the shape core/sdp_engine.cpp emits) once through the
// scalar sdp::solve loop and once through sdp::solve_batch, verifies the
// two result sets are bit-identical, and reports the throughput ratio.
//
// Flags beyond the common harness set (bench/harness.hpp):
//   --gate <ratio>   exit nonzero unless batch speedup >= ratio (CI uses
//                    3.0; wall-ratios are asserted here, in-binary, because
//                    bench_compare.py's one-sided bigger-is-worse rule
//                    cannot express "this value must be large")
//
// The bitwise-equality check always runs — a fast batch that diverges
// from the scalar path is a correctness bug, not a win.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.hpp"

#include "src/sdp/batch_solver.hpp"
#include "src/sdp/solver.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace cpla;

// Same instance family as bench/micro_solvers.cpp BM_SdpLiftedPartition:
// dense moment block of 1 + vars*layers, a diag slack block, and the
// pin / linkage / one-hot / capacity constraint mix.
sdp::SdpProblem lifted_partition_problem(int vars, int layers, Rng* rng) {
  const int dense_dim = 1 + vars * layers;
  const int caps = vars;
  sdp::SdpProblem p({sdp::BlockSpec{sdp::BlockSpec::Kind::kDense, dense_dim},
                     sdp::BlockSpec{sdp::BlockSpec::Kind::kDiag, caps}});
  for (int k = 1; k < dense_dim; ++k) {
    p.add_objective_entry(0, 0, k, 0.5 * rng->uniform(0.1, 1.0));
  }
  for (int k = 1; k + layers < dense_dim; ++k) {
    p.add_objective_entry(0, k, k + layers, rng->uniform(-0.2, 0.2));
  }
  const int c0 = p.add_constraint(1.0);
  p.add_entry(c0, 0, 0, 0, 1.0);
  for (int k = 1; k < dense_dim; ++k) {
    const int c = p.add_constraint(0.0);
    p.add_entry(c, 0, k, k, 1.0);
    p.add_entry(c, 0, 0, k, -0.5);
  }
  for (int v = 0; v < vars; ++v) {
    const int c = p.add_constraint(1.0);
    for (int l = 0; l < layers; ++l) p.add_entry(c, 0, 0, 1 + v * layers + l, 0.5);
  }
  for (int r = 0; r < caps; ++r) {
    const int c = p.add_constraint(rng->uniform(1.0, 2.0));
    for (int v = 0; v < vars; ++v) {
      if (!rng->chance(0.4)) continue;
      const int l = static_cast<int>(rng->uniform_int(0, layers - 1));
      p.add_entry(c, 0, 0, 1 + v * layers + l, 0.5 * rng->uniform(0.5, 1.0));
    }
    p.add_entry(c, 1, r, r, 1.0);
  }
  return p;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

bool block_bits_equal(const sdp::BlockMatrix& a, const sdp::BlockMatrix& b) {
  if (a.num_blocks() != b.num_blocks()) return false;
  for (std::size_t k = 0; k < a.num_blocks(); ++k) {
    if (a.is_dense(k) != b.is_dense(k)) return false;
    if (a.is_dense(k)) {
      const la::Matrix& ma = a.dense(k);
      const la::Matrix& mb = b.dense(k);
      if (ma.rows() != mb.rows() || ma.cols() != mb.cols()) return false;
      for (std::size_t r = 0; r < ma.rows(); ++r) {
        for (std::size_t c = 0; c < ma.cols(); ++c) {
          if (bits(ma(r, c)) != bits(mb(r, c))) return false;
        }
      }
    } else {
      if (a.diag(k).size() != b.diag(k).size()) return false;
      for (std::size_t i = 0; i < a.diag(k).size(); ++i) {
        if (bits(a.diag(k)[i]) != bits(b.diag(k)[i])) return false;
      }
    }
  }
  return true;
}

bool results_bit_identical(const sdp::SdpResult& got, const sdp::SdpResult& want) {
  if (got.status != want.status || got.iterations != want.iterations) return false;
  if (bits(got.primal_obj) != bits(want.primal_obj)) return false;
  if (bits(got.dual_obj) != bits(want.dual_obj)) return false;
  if (bits(got.rel_gap) != bits(want.rel_gap)) return false;
  if (got.y.size() != want.y.size()) return false;
  for (std::size_t i = 0; i < got.y.size(); ++i) {
    if (bits(got.y[i]) != bits(want.y[i])) return false;
  }
  return block_bits_equal(got.x, want.x) && block_bits_equal(got.z, want.z);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  double gate = 0.0;  // 0 = report only
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--gate") == 0 && r + 1 < argc) {
      gate = std::strtod(argv[++r], nullptr);
    }
  }

  // Population: the small-partition sizes the flow's batch tier actually
  // packs (dense dims 17/25/33 at 4 layers), many problems per size class
  // so every class fills several kLanes-wide slabs.
  const int per_class = args.quick ? 16 : 48;
  const int reps = args.quick ? 3 : 5;
  Rng rng(args.seed * 977 + 6);
  std::vector<sdp::SdpProblem> problems;
  for (int vars : {4, 6, 8}) {
    for (int i = 0; i < per_class; ++i) {
      problems.push_back(lifted_partition_problem(vars, /*layers=*/4, &rng));
    }
  }
  std::vector<const sdp::SdpProblem*> ptrs;
  ptrs.reserve(problems.size());
  for (const sdp::SdpProblem& p : problems) ptrs.push_back(&p);

  sdp::SdpOptions opt;
  opt.parallel = false;  // throughput comes from the lanes, not threads

  // Warm-up + correctness reference: one scalar pass, one batch pass.
  std::vector<sdp::SdpResult> scalar_results;
  scalar_results.reserve(ptrs.size());
  for (const sdp::SdpProblem* p : ptrs) scalar_results.push_back(sdp::solve(*p, opt));
  sdp::BatchSolveStats stats;
  const std::vector<sdp::SdpResult> batch_results = sdp::solve_batch(ptrs, opt, {}, &stats);

  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    if (!results_bit_identical(batch_results[i], scalar_results[i])) {
      std::fprintf(stderr, "micro_batch: FAIL problem %zu: batch result diverges from scalar\n",
                   i);
      return 1;
    }
  }

  // Timed passes: best-of-reps on each side (single machine, CI noise).
  double scalar_ms = 1e300;
  double batch_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    for (const sdp::SdpProblem* p : ptrs) {
      sdp::SdpResult res = sdp::solve(*p, opt);
      if (res.iterations < 0) return 1;  // keep the solve observable
    }
    scalar_ms = std::min(scalar_ms, t.seconds() * 1e3);
  }
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    const std::vector<sdp::SdpResult> res = sdp::solve_batch(ptrs, opt);
    if (res.size() != ptrs.size()) return 1;
    batch_ms = std::min(batch_ms, t.seconds() * 1e3);
  }
  const double speedup = batch_ms > 0.0 ? scalar_ms / batch_ms : 0.0;

  std::printf("micro_batch: %zu problems  scalar %.1f ms  batch %.1f ms  speedup %.2fx\n",
              ptrs.size(), scalar_ms, batch_ms, speedup);
  std::printf("micro_batch: chunks=%d batched_lanes=%d scalar_fallback=%d aborted=%d\n",
              stats.chunks, stats.batched_lanes, stats.scalar, stats.aborted);

  bench::BenchReport report("micro_batch", args);
  report.record_phase("scalar_loop", scalar_ms);
  report.record_phase("batched", batch_ms);
  report.record_value("batch.problems", static_cast<double>(ptrs.size()));
  report.record_value("batch.speedup", speedup);
  report.record_value("batch.chunks", static_cast<double>(stats.chunks));
  report.record_value("batch.batched_lanes", static_cast<double>(stats.batched_lanes));
  report.record_value("batch.scalar_fallback", static_cast<double>(stats.scalar));
  report.record_value("batch.aborted", static_cast<double>(stats.aborted));
  if (!report.write()) return 1;

  if (gate > 0.0 && speedup < gate) {
    std::fprintf(stderr, "micro_batch: FAIL speedup %.2fx below gate %.2fx\n", speedup, gate);
    return 1;
  }
  return 0;
}
