// Table 2: Performance comparison on the (synthetic) ISPD'08 suite.
// TILA-0.5% vs SDP-0.5% — Avg(Tcp), Max(Tcp), via overflow OV#, via count,
// CPU seconds — plus the normalized "ratio" summary row the paper reports.
//
// Paper shape being reproduced: SDP beats TILA on Avg(Tcp) (paper: 0.86x)
// and Max(Tcp) (0.96x), reduces via overflow (0.90x), keeps via count flat
// (1.00x), and pays a multiple of TILA's runtime (3.16x).
//
// Usage: table2_main_comparison [--quick] [--seed N] [--metrics-out FILE]
// (--quick runs the 6 small cases)

#include <cstring>

#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace cpla;
  const bench::BenchArgs args = bench::parse_bench_args(&argc, argv);
  bench::BenchReport report("table2_main_comparison", args);
  set_log_level(LogLevel::kWarn);

  const auto& names = args.quick ? gen::small_case_names() : gen::suite_names();
  std::printf("=== Table 2: TILA-0.5%% vs SDP-0.5%% on %zu benchmarks ===\n\n", names.size());

  Table table({"bench", "TILA Avg(Tcp)", "TILA Max(Tcp)", "TILA OV#", "TILA via#",
               "TILA CPU(s)", "SDP Avg(Tcp)", "SDP Max(Tcp)", "SDP OV#", "SDP via#",
               "SDP CPU(s)"});

  double sum_t_avg = 0, sum_t_max = 0, sum_t_cpu = 0;
  double sum_s_avg = 0, sum_s_max = 0, sum_s_cpu = 0;
  double sum_t_ov = 0, sum_t_via = 0, sum_s_ov = 0, sum_s_via = 0;

  for (const auto& name : names) {
    bench::BenchRun run = bench::make_run(name, 0.005, args.seed);
    const bench::FlowOutcome tila = bench::run_tila_flow(&run);
    const bench::FlowOutcome sdp = bench::run_cpla_flow(&run);
    report.record_flow(name + ".tila", tila);
    report.record_flow(name + ".sdp", sdp);

    table.add_row({name, fmt_num(tila.metrics.avg_tcp / 1e3, 2),
                   fmt_num(tila.metrics.max_tcp / 1e3, 2),
                   std::to_string(tila.metrics.via_overflow),
                   std::to_string(tila.metrics.via_count), fmt_num(tila.seconds, 3),
                   fmt_num(sdp.metrics.avg_tcp / 1e3, 2), fmt_num(sdp.metrics.max_tcp / 1e3, 2),
                   std::to_string(sdp.metrics.via_overflow),
                   std::to_string(sdp.metrics.via_count), fmt_num(sdp.seconds, 2)});

    sum_t_avg += tila.metrics.avg_tcp;
    sum_t_max += tila.metrics.max_tcp;
    sum_t_cpu += tila.seconds;
    sum_t_ov += static_cast<double>(tila.metrics.via_overflow);
    sum_t_via += static_cast<double>(tila.metrics.via_count);
    sum_s_avg += sdp.metrics.avg_tcp;
    sum_s_max += sdp.metrics.max_tcp;
    sum_s_cpu += sdp.seconds;
    sum_s_ov += static_cast<double>(sdp.metrics.via_overflow);
    sum_s_via += static_cast<double>(sdp.metrics.via_count);
  }

  const double n = static_cast<double>(names.size());
  table.add_row({"average", fmt_num(sum_t_avg / n / 1e3, 2), fmt_num(sum_t_max / n / 1e3, 2),
                 fmt_num(sum_t_ov / n, 0), fmt_num(sum_t_via / n, 0),
                 fmt_num(sum_t_cpu / n, 3), fmt_num(sum_s_avg / n / 1e3, 2),
                 fmt_num(sum_s_max / n / 1e3, 2), fmt_num(sum_s_ov / n, 0),
                 fmt_num(sum_s_via / n, 0), fmt_num(sum_s_cpu / n, 2)});
  table.add_row({"ratio", "1.00", "1.00", "1.00", "1.00", "1.00",
                 fmt_num(sum_s_avg / sum_t_avg, 2), fmt_num(sum_s_max / sum_t_max, 2),
                 fmt_num(sum_s_ov / std::max(1.0, sum_t_ov), 2),
                 fmt_num(sum_s_via / sum_t_via, 2),
                 fmt_num(sum_s_cpu / std::max(0.01, sum_t_cpu), 2)});
  table.print(stdout);

  std::printf("\n(units: Avg/Max Tcp in 1e3 delay units; paper ratios for reference:\n"
              " Avg 0.86, Max 0.96, OV 0.90, via 1.00, CPU 3.16)\n");
  report.record_value("ratio.avg_tcp", sum_s_avg / sum_t_avg);
  report.record_value("ratio.max_tcp", sum_s_max / sum_t_max);
  return report.write() ? 0 : 1;
}
