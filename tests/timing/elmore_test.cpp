#include "src/timing/elmore.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/gen/synth.hpp"
#include "src/grid/layer_stack.hpp"
#include "src/route/router.hpp"

namespace cpla::timing {
namespace {

/// A 4-layer grid with hand-picked RC so expected delays are computable by
/// hand: R = 8,4,2,1 per tile; C = 1 per tile on every layer; via R = 1 per
/// crossing.
grid::GridGraph simple_grid(int n = 16) {
  std::vector<grid::Layer> layers = grid::make_layer_stack(4);
  const double res[] = {8.0, 4.0, 2.0, 1.0};
  for (int l = 0; l < 4; ++l) {
    layers[l].unit_res = res[l];
    layers[l].unit_cap = 1.0;
    layers[l].via_res_up = 1.0;
  }
  grid::GridGraph g(n, n, layers, grid::default_geom());
  for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, 10);
  return g;
}

RcTable simple_rc(const grid::GridGraph& g) {
  RcTable rc(g);
  rc.set_sink_cap(2.0);
  rc.set_driver_res(3.0);
  return rc;
}

route::SegTree two_pin_tree(const grid::GridGraph& g, int len) {
  grid::Net net;
  net.id = 0;
  net.pins = {grid::Pin{1, 1, 0}, grid::Pin{1 + len, 1, 0}};
  route::NetRoute r;
  for (int x = 1; x < 1 + len; ++x) r.add_h(g.h_edge_id(x, 1));
  return route::extract_tree(g, net, &r);
}

TEST(Elmore, HandComputedTwoPin) {
  const grid::GridGraph g = simple_grid();
  const RcTable rc = simple_rc(g);
  const route::SegTree tree = two_pin_tree(g, 4);

  // Segment on layer 0 (R=8/tile, C=1/tile), length 4, sink cap 2:
  //   wire cap = 4, Cd = 2, total = 6.
  //   driver = 3 * 6 = 18
  //   source via: layer 0 -> 0: none.
  //   ts = 8*4 * (4/2 + 2) = 128
  //   sink via: none (pin layer 0).
  const NetTiming t0 = compute_timing(tree, {0}, rc);
  EXPECT_DOUBLE_EQ(t0.total_cap, 6.0);
  EXPECT_DOUBLE_EQ(t0.downstream_cap[0], 2.0);
  EXPECT_DOUBLE_EQ(t0.max_sink_delay, 18.0 + 128.0);

  // Same segment on layer 2 (R=2/tile): source via 0->2 = 2*(4+2)=12,
  // ts = 2*4*(2+2) = 32, sink via 2->0 = 2*2 = 4.
  const NetTiming t2 = compute_timing(tree, {2}, rc);
  EXPECT_DOUBLE_EQ(t2.max_sink_delay, 18.0 + 12.0 + 32.0 + 4.0);
  EXPECT_LT(t2.max_sink_delay, t0.max_sink_delay);
}

TEST(Elmore, HigherLayerIsFasterForLongNets) {
  const grid::GridGraph g = simple_grid(32);
  const RcTable rc = simple_rc(g);
  const route::SegTree tree = two_pin_tree(g, 20);
  double prev = compute_timing(tree, {0}, rc).max_sink_delay;
  const double d2 = compute_timing(tree, {2}, rc).max_sink_delay;
  EXPECT_LT(d2, prev);
}

TEST(Elmore, BranchTreeDownstreamCaps) {
  // T shape: trunk (1,2)->(4,2), then two branches: right to (7,2) and up
  // to (4,6). Verify Cd against hand computation.
  const grid::GridGraph g = simple_grid();
  const RcTable rc = simple_rc(g);
  grid::Net net;
  net.id = 0;
  net.pins = {grid::Pin{1, 2, 0}, grid::Pin{7, 2, 0}, grid::Pin{4, 6, 0}};
  route::NetRoute r;
  for (int x = 1; x < 7; ++x) r.add_h(g.h_edge_id(x, 2));
  for (int y = 2; y < 6; ++y) r.add_v(g.v_edge_id(4, y));
  const route::SegTree tree = route::extract_tree(g, net, &r);
  ASSERT_EQ(tree.segs.size(), 3u);

  // All on layer 0 (H) / layer 1 (V); C = 1/tile everywhere, sink cap 2.
  std::vector<int> layers(3);
  for (const auto& s : tree.segs) layers[s.id] = s.horizontal ? 0 : 1;
  const NetTiming t = compute_timing(tree, layers, rc);

  // Identify segments: trunk len 3 (parent -1), branch-right len 3, up len 4.
  int trunk = -1, right = -1, up = -1;
  for (const auto& s : tree.segs) {
    if (s.parent < 0) {
      trunk = s.id;
    } else if (s.horizontal) {
      right = s.id;
    } else {
      up = s.id;
    }
  }
  ASSERT_GE(trunk, 0);
  ASSERT_GE(right, 0);
  ASSERT_GE(up, 0);
  EXPECT_DOUBLE_EQ(t.downstream_cap[right], 2.0);
  EXPECT_DOUBLE_EQ(t.downstream_cap[up], 2.0);
  // Trunk: right wire (3) + its Cd (2) + up wire (4) + its Cd (2) = 11.
  EXPECT_DOUBLE_EQ(t.downstream_cap[trunk], 11.0);
  // Total cap: wires 3+3+4 + sinks 2*2 = 14.
  EXPECT_DOUBLE_EQ(t.total_cap, 14.0);
}

TEST(Elmore, CriticalPathMarking) {
  const grid::GridGraph g = simple_grid();
  const RcTable rc = simple_rc(g);
  grid::Net net;
  net.id = 0;
  // Far sink at (9,2) is clearly more critical than the near one at (2,3).
  net.pins = {grid::Pin{1, 2, 0}, grid::Pin{9, 2, 0}, grid::Pin{2, 3, 0}};
  route::NetRoute r;
  for (int x = 1; x < 9; ++x) r.add_h(g.h_edge_id(x, 2));
  r.add_v(g.v_edge_id(2, 2));
  const route::SegTree tree = route::extract_tree(g, net, &r);
  std::vector<int> layers(tree.segs.size());
  for (const auto& s : tree.segs) layers[s.id] = s.horizontal ? 0 : 1;
  const NetTiming t = compute_timing(tree, layers, rc);

  ASSERT_GE(t.critical_sink, 0);
  const auto& crit = tree.sinks[t.critical_sink];
  // The far pin (index 1 in pins) is the critical one.
  EXPECT_EQ(crit.pin_index, 1);
  // Marked path = exactly the path from that sink's segment to the root.
  std::vector<bool> expected(tree.segs.size(), false);
  for (int s : tree.path_to_root(crit.seg_id)) expected[s] = true;
  for (std::size_t s = 0; s < tree.segs.size(); ++s) {
    EXPECT_EQ(t.on_critical_path[s], expected[s]) << s;
  }
}

TEST(Elmore, SinkAtRootGetsDriverDelayOnly) {
  const grid::GridGraph g = simple_grid();
  const RcTable rc = simple_rc(g);
  grid::Net net;
  net.id = 0;
  net.pins = {grid::Pin{1, 1, 0}, grid::Pin{1, 1, 0}, grid::Pin{5, 1, 0}};
  route::NetRoute r;
  for (int x = 1; x < 5; ++x) r.add_h(g.h_edge_id(x, 1));
  const route::SegTree tree = route::extract_tree(g, net, &r);
  const NetTiming t = compute_timing(tree, {0}, rc);
  // sinks: one at root, one at segment end.
  ASSERT_EQ(t.sink_delay.size(), 2u);
  const double driver = rc.driver_res() * t.total_cap;
  bool found_root_sink = false;
  for (std::size_t k = 0; k < tree.sinks.size(); ++k) {
    if (tree.sinks[k].seg_id < 0) {
      EXPECT_DOUBLE_EQ(t.sink_delay[k], driver);
      found_root_sink = true;
    } else {
      EXPECT_GT(t.sink_delay[k], driver);
    }
  }
  EXPECT_TRUE(found_root_sink);
}

TEST(Elmore, ViaDelayUsesMinDownstreamCap) {
  // L-shape net: via between trunk and arm. Eqn (3) prices the via with
  // min(Cd_parent, Cd_child); check against hand computation.
  const grid::GridGraph g = simple_grid();
  const RcTable rc = simple_rc(g);
  grid::Net net;
  net.id = 0;
  net.pins = {grid::Pin{1, 1, 0}, grid::Pin{4, 4, 0}};
  route::NetRoute r;
  for (int x = 1; x < 4; ++x) r.add_h(g.h_edge_id(x, 1));
  for (int y = 1; y < 4; ++y) r.add_v(g.v_edge_id(4, y));
  const route::SegTree tree = route::extract_tree(g, net, &r);
  ASSERT_EQ(tree.segs.size(), 2u);

  // H on layer 0, V on layer 3: via stack 0->3 has resistance 3.
  const NetTiming t = compute_timing(tree, {0, 3}, rc);
  // Cd(child V-seg) = 2 (sink); Cd(parent H-seg) = wire(V)=3 + 2 = 5.
  // Via delay = 3 * min(5, 2) = 6.
  // arrival(parent) = driver(3*(3+3+2)=24) + ts(8*3*(1.5+5)=156) = 180.
  // arrival(child) = 180 + 6 + ts_child(1*3*(1.5+2)=10.5) = 196.5
  // sink via 3->0: 3*2 = 6 -> 202.5
  EXPECT_DOUBLE_EQ(t.max_sink_delay, 202.5);
}

TEST(Elmore, NetsOnRoutedBenchmarkHaveFiniteDelays) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 150;
  spec.num_layers = 4;
  spec.seed = 21;
  const grid::Design d = gen::generate(spec);
  route::RoutingResult rr = route::route_all(d);
  const RcTable rc(d.grid);
  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    const route::SegTree tree = route::extract_tree(d.grid, d.nets[n], &rr.routes[n]);
    std::vector<int> layers(tree.segs.size());
    for (const auto& s : tree.segs) layers[s.id] = s.horizontal ? 0 : 1;
    const NetTiming t = compute_timing(tree, layers, rc);
    EXPECT_TRUE(std::isfinite(t.max_sink_delay));
    EXPECT_GE(t.max_sink_delay, 0.0);
    for (double cd : t.downstream_cap) EXPECT_GE(cd, 0.0);
    // Arrival times increase along any root-to-leaf path.
    for (const auto& s : tree.segs) {
      if (s.parent >= 0) {
        EXPECT_GE(t.arrival[s.id], t.arrival[s.parent]);
      }
    }
  }
}

}  // namespace
}  // namespace cpla::timing
