#include "src/timing/moments.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/gen/synth.hpp"
#include "src/grid/layer_stack.hpp"
#include "src/route/router.hpp"
#include "src/route/seg_tree.hpp"
#include "src/util/rng.hpp"

namespace cpla::timing {
namespace {

grid::GridGraph simple_grid() {
  std::vector<grid::Layer> layers = grid::make_layer_stack(4);
  for (int l = 0; l < 4; ++l) {
    layers[l].unit_res = 2.0;
    layers[l].unit_cap = 1.0;
    layers[l].via_res_up = 0.0;
  }
  grid::GridGraph g(16, 16, layers, grid::default_geom());
  for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, 10);
  return g;
}

TEST(Moments, SingleLumpedSegmentClosedForm) {
  // One segment, lumped: R_total = Rd + R, C = wire + sink.
  // m1 = R_total * C; S2 = C * m1; m2 = R_total * S2 = (R_total * C)^2.
  // D2M = ln2 * m1^2 / sqrt(m2) = ln2 * m1.
  const grid::GridGraph g = simple_grid();
  RcTable rc(g);
  rc.set_driver_res(3.0);
  rc.set_sink_cap(2.0);

  grid::Net net;
  net.id = 0;
  net.pins = {grid::Pin{1, 1, 0}, grid::Pin{5, 1, 0}};
  route::NetRoute r;
  for (int x = 1; x < 5; ++x) r.add_h(g.h_edge_id(x, 1));
  const route::SegTree tree = route::extract_tree(g, net, &r);

  const NetMoments m = compute_moments(tree, {0}, rc);
  const double rt = 3.0 + 2.0 * 4;  // driver + wire
  const double c = 4.0 + 2.0;       // wire + sink
  ASSERT_EQ(m.m1.size(), 1u);
  EXPECT_DOUBLE_EQ(m.m1[0], rt * c);
  EXPECT_DOUBLE_EQ(m.m2[0], rt * rt * c * c);
  EXPECT_NEAR(m.d2m[0], std::log(2.0) * rt * c, 1e-9);
}

TEST(Moments, D2mBoundedByElmore) {
  // Circuit moments of a nonnegative impulse response satisfy
  // m1^2 <= 2*m2 (Cauchy-Schwarz), so D2M <= sqrt(2)*ln2*m1 < m1.
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 120;
  spec.num_layers = 6;
  spec.seed = 95;
  const grid::Design d = gen::generate(spec);
  route::RoutingResult rr = route::route_all(d);
  const RcTable rc(d.grid);
  cpla::Rng rng(5);
  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    const route::SegTree tree = route::extract_tree(d.grid, d.nets[n], &rr.routes[n]);
    std::vector<int> layers;
    for (const auto& seg : tree.segs) {
      const int pair = static_cast<int>(rng.uniform_int(0, 2));
      layers.push_back(seg.horizontal ? pair * 2 : pair * 2 + 1);
    }
    const NetMoments m = compute_moments(tree, layers, rc);
    for (std::size_t k = 0; k < m.m1.size(); ++k) {
      EXPECT_GT(m.m1[k], 0.0);
      EXPECT_GE(2.0 * m.m2[k], m.m1[k] * m.m1[k] * (1.0 - 1e-9));
      EXPECT_LE(m.d2m[k], m.m1[k] + 1e-9);
      EXPECT_GT(m.d2m[k], 0.0);
    }
  }
}

TEST(Moments, MonotoneAlongPaths) {
  // m1 and m2 both increase from driver to sinks; the worst D2M sink is
  // recorded in max_d2m.
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 16;
  spec.num_nets = 60;
  spec.num_layers = 4;
  spec.seed = 97;
  const grid::Design d = gen::generate(spec);
  route::RoutingResult rr = route::route_all(d);
  const RcTable rc(d.grid);
  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    const route::SegTree tree = route::extract_tree(d.grid, d.nets[n], &rr.routes[n]);
    std::vector<int> layers;
    for (const auto& seg : tree.segs) layers.push_back(seg.horizontal ? 0 : 1);
    const NetMoments m = compute_moments(tree, layers, rc);
    double best = 0.0;
    for (double v : m.d2m) best = std::max(best, v);
    EXPECT_DOUBLE_EQ(best, m.max_d2m);
  }
}

}  // namespace
}  // namespace cpla::timing
