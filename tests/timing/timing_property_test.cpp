// Property tests on the Elmore engine: scaling laws and monotonicities
// that must hold for any net tree and any layer assignment.

#include <gtest/gtest.h>

#include "src/gen/synth.hpp"
#include "src/grid/layer_stack.hpp"
#include "src/route/router.hpp"
#include "src/route/seg_tree.hpp"
#include "src/timing/elmore.hpp"
#include "src/util/rng.hpp"

namespace cpla::timing {
namespace {

struct Routed {
  grid::Design design;
  std::vector<route::SegTree> trees;
  std::vector<std::vector<int>> layers;
};

Routed routed_design(std::uint64_t seed) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 120;
  spec.num_layers = 6;
  spec.seed = seed;
  grid::Design d = gen::generate(spec);
  route::RoutingResult rr = route::route_all(d);
  Routed out{std::move(d), {}, {}};
  cpla::Rng rng(seed * 7 + 1);
  for (std::size_t n = 0; n < out.design.nets.size(); ++n) {
    out.trees.push_back(route::extract_tree(out.design.grid, out.design.nets[n], &rr.routes[n]));
    std::vector<int> assignment;
    for (const auto& seg : out.trees.back().segs) {
      // Random direction-legal layer.
      const int pair = static_cast<int>(rng.uniform_int(0, 2));
      assignment.push_back(seg.horizontal ? pair * 2 : pair * 2 + 1);
    }
    out.layers.push_back(std::move(assignment));
  }
  return out;
}

TEST(TimingProperty, WireDelayScalesWithResistance) {
  // Doubling every wire and via resistance, with the driver resistance at
  // zero, doubles every sink delay exactly (Elmore is linear in R).
  const Routed base = routed_design(11);
  RcTable rc1(base.design.grid);
  rc1.set_driver_res(0.0);
  RcTable rc2 = rc1;
  rc2.scale_resistance(2.0);

  for (std::size_t n = 0; n < base.trees.size(); ++n) {
    if (base.trees[n].segs.empty()) continue;
    const auto t1 = compute_timing(base.trees[n], base.layers[n], rc1);
    const auto t2 = compute_timing(base.trees[n], base.layers[n], rc2);
    EXPECT_NEAR(t2.max_sink_delay, 2.0 * t1.max_sink_delay,
                1e-9 * (1.0 + t1.max_sink_delay));
  }
}

TEST(TimingProperty, SinkCapMonotonicity) {
  const Routed r = routed_design(12);
  RcTable small(r.design.grid), large(r.design.grid);
  small.set_sink_cap(1.0);
  large.set_sink_cap(4.0);
  for (std::size_t n = 0; n < r.trees.size(); ++n) {
    if (r.trees[n].segs.empty()) continue;
    const double d1 = critical_delay(r.trees[n], r.layers[n], small);
    const double d2 = critical_delay(r.trees[n], r.layers[n], large);
    EXPECT_LE(d1, d2);
  }
}

TEST(TimingProperty, DriverResistanceAddsUniformly) {
  // Increasing driver resistance by dR adds exactly dR * total_cap to
  // every sink delay.
  const Routed r = routed_design(13);
  RcTable rc_a(r.design.grid), rc_b(r.design.grid);
  rc_a.set_driver_res(5.0);
  rc_b.set_driver_res(9.0);
  for (std::size_t n = 0; n < r.trees.size(); ++n) {
    if (r.trees[n].segs.empty()) continue;
    const auto ta = compute_timing(r.trees[n], r.layers[n], rc_a);
    const auto tb = compute_timing(r.trees[n], r.layers[n], rc_b);
    for (std::size_t k = 0; k < ta.sink_delay.size(); ++k) {
      EXPECT_NEAR(tb.sink_delay[k] - ta.sink_delay[k], 4.0 * ta.total_cap,
                  1e-9 * (1.0 + ta.total_cap));
    }
  }
}

TEST(TimingProperty, CriticalSinkIsArgmax) {
  const Routed r = routed_design(14);
  for (std::size_t n = 0; n < r.trees.size(); ++n) {
    if (r.trees[n].sinks.empty()) continue;
    const auto t = compute_timing(r.trees[n], r.layers[n], RcTable(r.design.grid));
    for (double d : t.sink_delay) EXPECT_LE(d, t.max_sink_delay + 1e-12);
    EXPECT_DOUBLE_EQ(t.sink_delay[t.critical_sink], t.max_sink_delay);
  }
}

TEST(TimingProperty, DownstreamCapDecreasesTowardLeaves) {
  // Cd of a parent is at least the Cd of any child (the child's subtree is
  // contained in the parent's, plus the child's own wire cap).
  const Routed r = routed_design(15);
  const RcTable rc(r.design.grid);
  for (std::size_t n = 0; n < r.trees.size(); ++n) {
    const auto t = compute_timing(r.trees[n], r.layers[n], rc);
    for (const auto& seg : r.trees[n].segs) {
      for (int c : seg.children) {
        EXPECT_GE(t.downstream_cap[seg.id], t.downstream_cap[c]);
      }
    }
  }
}

}  // namespace
}  // namespace cpla::timing
