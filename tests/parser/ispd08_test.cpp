#include "src/parser/ispd08.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/gen/synth.hpp"
#include "src/util/logging.hpp"

namespace cpla::parser {
namespace {

const char* kSample = R"(grid 10 8 4
vertical capacity 0 12 0 12
horizontal capacity 12 0 12 0
minimum width 1 1 1 1
minimum spacing 1 1 1 1
via spacing 1 1 1 1
0 0 10 10

num net 2
netA 0 2 1
15 15 1
85 25 1
netB 1 3 1
5 5 1
5 75 1
95 75 2

2
1 2 1   2 2 1   4
3 3 2   3 4 2   0
)";

TEST(Ispd08Reader, ParsesHeaderAndGrid) {
  std::istringstream in(kSample);
  const auto design = read_ispd08(in, "sample");
  ASSERT_TRUE(design.has_value());
  EXPECT_EQ(design->grid.xsize(), 10);
  EXPECT_EQ(design->grid.ysize(), 8);
  EXPECT_EQ(design->grid.num_layers(), 4);
  EXPECT_TRUE(design->grid.is_horizontal(0));
  EXPECT_FALSE(design->grid.is_horizontal(1));
}

TEST(Ispd08Reader, CapacityDividedByPitch) {
  std::istringstream in(kSample);
  const auto design = read_ispd08(in, "sample");
  ASSERT_TRUE(design.has_value());
  // raw 12 / (width 1 + spacing 1) = 6 tracks.
  EXPECT_EQ(design->grid.edge_capacity(0, design->grid.h_edge_id(5, 5)), 6);
}

TEST(Ispd08Reader, PinToGcellConversion) {
  std::istringstream in(kSample);
  const auto design = read_ispd08(in, "sample");
  ASSERT_TRUE(design.has_value());
  ASSERT_EQ(design->nets.size(), 2u);
  const auto& netA = design->nets[0];
  EXPECT_EQ(netA.name, "netA");
  ASSERT_EQ(netA.pins.size(), 2u);
  EXPECT_EQ(netA.pins[0].x, 1);  // 15/10
  EXPECT_EQ(netA.pins[0].y, 1);
  EXPECT_EQ(netA.pins[1].x, 8);  // 85/10
  EXPECT_EQ(netA.pins[1].y, 2);
  // 1-based layer in file -> 0-based.
  EXPECT_EQ(design->nets[1].pins[2].layer, 1);
}

TEST(Ispd08Reader, AppliesAdjustments) {
  std::istringstream in(kSample);
  const auto design = read_ispd08(in, "sample");
  ASSERT_TRUE(design.has_value());
  // Adjustment "1 2 1  2 2 1  4": h-edge (1,2)-(2,2) on layer 0 -> cap 4.
  EXPECT_EQ(design->grid.edge_capacity(0, design->grid.h_edge_id(1, 2)), 4);
  // Adjustment on layer 1 (vertical): v-edge (3,3)-(3,4) -> cap 0.
  EXPECT_EQ(design->grid.edge_capacity(1, design->grid.v_edge_id(3, 3)), 0);
}

TEST(Ispd08Reader, RejectsMalformedHeader) {
  set_log_level(LogLevel::kSilent);
  std::istringstream in("not a benchmark\n");
  EXPECT_FALSE(read_ispd08(in, "bad").has_value());
  set_log_level(LogLevel::kInfo);
}

TEST(Ispd08Reader, RejectsTruncatedNets) {
  set_log_level(LogLevel::kSilent);
  std::string text(kSample);
  text = text.substr(0, text.find("netB"));
  std::istringstream in(text);
  EXPECT_FALSE(read_ispd08(in, "bad").has_value());
  set_log_level(LogLevel::kInfo);
}

TEST(Ispd08RoundTrip, WriteThenReadPreservesStructure) {
  // Generate a synthetic design, write it, read it back, compare.
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 16;
  spec.num_nets = 40;
  spec.num_layers = 4;
  spec.seed = 99;
  const grid::Design original = gen::generate(spec);

  std::stringstream buf;
  write_ispd08(original, buf);
  const auto reread = read_ispd08(buf, original.name);
  ASSERT_TRUE(reread.has_value());

  EXPECT_EQ(reread->grid.xsize(), original.grid.xsize());
  EXPECT_EQ(reread->grid.ysize(), original.grid.ysize());
  EXPECT_EQ(reread->grid.num_layers(), original.grid.num_layers());
  ASSERT_EQ(reread->nets.size(), original.nets.size());

  for (std::size_t n = 0; n < original.nets.size(); ++n) {
    ASSERT_EQ(reread->nets[n].pins.size(), original.nets[n].pins.size()) << n;
    for (std::size_t k = 0; k < original.nets[n].pins.size(); ++k) {
      EXPECT_EQ(reread->nets[n].pins[k].x, original.nets[n].pins[k].x);
      EXPECT_EQ(reread->nets[n].pins[k].y, original.nets[n].pins[k].y);
      EXPECT_EQ(reread->nets[n].pins[k].layer, original.nets[n].pins[k].layer);
    }
  }
  // Per-edge capacities preserved (via the adjustment mechanism).
  for (int l = 0; l < original.grid.num_layers(); ++l) {
    for (int e = 0; e < original.grid.num_edges_on_layer(l); ++e) {
      ASSERT_EQ(reread->grid.edge_capacity(l, e), original.grid.edge_capacity(l, e))
          << "layer " << l << " edge " << e;
    }
  }
}

}  // namespace
}  // namespace cpla::parser
