#include "src/parser/ispd08.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/gen/synth.hpp"
#include "src/util/logging.hpp"

namespace cpla::parser {
namespace {

const char* kSample = R"(grid 10 8 4
vertical capacity 0 12 0 12
horizontal capacity 12 0 12 0
minimum width 1 1 1 1
minimum spacing 1 1 1 1
via spacing 1 1 1 1
0 0 10 10

num net 2
netA 0 2 1
15 15 1
85 25 1
netB 1 3 1
5 5 1
5 75 1
95 75 2

2
1 2 1   2 2 1   4
3 3 2   3 4 2   0
)";

TEST(Ispd08Reader, ParsesHeaderAndGrid) {
  std::istringstream in(kSample);
  const auto design = read_ispd08(in, "sample");
  ASSERT_TRUE(design.has_value());
  EXPECT_EQ(design->grid.xsize(), 10);
  EXPECT_EQ(design->grid.ysize(), 8);
  EXPECT_EQ(design->grid.num_layers(), 4);
  EXPECT_TRUE(design->grid.is_horizontal(0));
  EXPECT_FALSE(design->grid.is_horizontal(1));
}

TEST(Ispd08Reader, CapacityDividedByPitch) {
  std::istringstream in(kSample);
  const auto design = read_ispd08(in, "sample");
  ASSERT_TRUE(design.has_value());
  // raw 12 / (width 1 + spacing 1) = 6 tracks.
  EXPECT_EQ(design->grid.edge_capacity(0, design->grid.h_edge_id(5, 5)), 6);
}

TEST(Ispd08Reader, PinToGcellConversion) {
  std::istringstream in(kSample);
  const auto design = read_ispd08(in, "sample");
  ASSERT_TRUE(design.has_value());
  ASSERT_EQ(design->nets.size(), 2u);
  const auto& netA = design->nets[0];
  EXPECT_EQ(netA.name, "netA");
  ASSERT_EQ(netA.pins.size(), 2u);
  EXPECT_EQ(netA.pins[0].x, 1);  // 15/10
  EXPECT_EQ(netA.pins[0].y, 1);
  EXPECT_EQ(netA.pins[1].x, 8);  // 85/10
  EXPECT_EQ(netA.pins[1].y, 2);
  // 1-based layer in file -> 0-based.
  EXPECT_EQ(design->nets[1].pins[2].layer, 1);
}

TEST(Ispd08Reader, AppliesAdjustments) {
  std::istringstream in(kSample);
  const auto design = read_ispd08(in, "sample");
  ASSERT_TRUE(design.has_value());
  // Adjustment "1 2 1  2 2 1  4": h-edge (1,2)-(2,2) on layer 0 -> cap 4.
  EXPECT_EQ(design->grid.edge_capacity(0, design->grid.h_edge_id(1, 2)), 4);
  // Adjustment on layer 1 (vertical): v-edge (3,3)-(3,4) -> cap 0.
  EXPECT_EQ(design->grid.edge_capacity(1, design->grid.v_edge_id(3, 3)), 0);
}

TEST(Ispd08Reader, RejectsMalformedHeader) {
  set_log_level(LogLevel::kSilent);
  std::istringstream in("not a benchmark\n");
  EXPECT_FALSE(read_ispd08(in, "bad").has_value());
  set_log_level(LogLevel::kInfo);
}

TEST(Ispd08Reader, RejectsTruncatedNets) {
  set_log_level(LogLevel::kSilent);
  std::string text(kSample);
  text = text.substr(0, text.find("netB"));
  std::istringstream in(text);
  EXPECT_FALSE(read_ispd08(in, "bad").has_value());
  set_log_level(LogLevel::kInfo);
}

// --- Structured diagnostics (parse_ispd08 / Status) ---------------------
//
// Every malformed input must produce StatusCode::kBadInput with the 1-based
// line number of the offending line — and must never crash or abort.

Status parse_status(const std::string& text) {
  std::istringstream in(text);
  auto result = parse_ispd08(in, "bad");
  EXPECT_FALSE(result.is_ok());
  return result.status();
}

TEST(Ispd08Diagnostics, MalformedGridHeader) {
  const Status s = parse_status("not a benchmark\n");
  EXPECT_EQ(s.code(), StatusCode::kBadInput);
  EXPECT_EQ(s.line(), 1);
}

TEST(Ispd08Diagnostics, NonNumericGridSizes) {
  const Status s = parse_status("grid ten 8 3\n");
  EXPECT_EQ(s.code(), StatusCode::kBadInput);
  EXPECT_EQ(s.line(), 1);
}

TEST(Ispd08Diagnostics, EmptyInput) {
  const Status s = parse_status("");
  EXPECT_EQ(s.code(), StatusCode::kBadInput);
  EXPECT_NE(s.message().find("grid"), std::string::npos);
}

TEST(Ispd08Diagnostics, WrongCapacityCount) {
  // 3-layer grid with only two vertical-capacity values: error on line 2.
  const Status s = parse_status("grid 8 8 3\nvertical capacity 0 10\n");
  EXPECT_EQ(s.code(), StatusCode::kBadInput);
  EXPECT_EQ(s.line(), 2);
}

TEST(Ispd08Diagnostics, NegativeLayerCapacity) {
  const Status s = parse_status("grid 8 8 3\nvertical capacity 0 -10 0\n");
  EXPECT_EQ(s.code(), StatusCode::kBadInput);
  EXPECT_EQ(s.line(), 2);
  EXPECT_NE(s.message().find("negative"), std::string::npos);
}

TEST(Ispd08Diagnostics, PinLayerOutOfRange) {
  std::string text(kSample);
  const auto pos = text.find("15 15 1");
  text.replace(pos, 7, "15 15 9");  // layer 9 of a 4-layer stack, line 11
  const Status s = parse_status(text);
  EXPECT_EQ(s.code(), StatusCode::kBadInput);
  EXPECT_EQ(s.line(), 11);
  EXPECT_NE(s.message().find("layer"), std::string::npos);
}

TEST(Ispd08Diagnostics, LegacyWrapperCollapsesToNullopt) {
  set_log_level(LogLevel::kSilent);
  std::istringstream in("grid 8 8 3\n");
  EXPECT_FALSE(read_ispd08(in, "bad").has_value());
  set_log_level(LogLevel::kInfo);
}

TEST(Ispd08Diagnostics, MissingFileIsAStatus) {
  const auto result = parse_ispd08_file("/nonexistent/benchmark.gr");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBadInput);
  EXPECT_NE(result.status().message().find("cannot open"), std::string::npos);
}

// Corpus files checked in under tests/parser/data/.
std::string data_path(const char* name) {
  return std::string(CPLA_TEST_DATA_DIR) + "/" + name;
}

TEST(Ispd08Corpus, TruncatedNetBlock) {
  const auto result = parse_ispd08_file(data_path("truncated_net.gr"));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBadInput);
  EXPECT_EQ(result.status().line(), 14);  // EOF: one past the last line
  EXPECT_NE(result.status().message().find("netB"), std::string::npos);
}

TEST(Ispd08Corpus, NegativeAdjustmentCapacity) {
  const auto result = parse_ispd08_file(data_path("negative_capacity.gr"));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBadInput);
  EXPECT_EQ(result.status().line(), 13);
  EXPECT_NE(result.status().message().find("negative capacity"), std::string::npos);
}

TEST(Ispd08Corpus, PinOutsideGridBounds) {
  const auto result = parse_ispd08_file(data_path("pin_out_of_bounds.gr"));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBadInput);
  EXPECT_EQ(result.status().line(), 11);
  EXPECT_NE(result.status().message().find("outside"), std::string::npos);
}

TEST(Ispd08RoundTrip, WriteThenReadPreservesStructure) {
  // Generate a synthetic design, write it, read it back, compare.
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 16;
  spec.num_nets = 40;
  spec.num_layers = 4;
  spec.seed = 99;
  const grid::Design original = gen::generate(spec);

  std::stringstream buf;
  write_ispd08(original, buf);
  const auto reread = read_ispd08(buf, original.name);
  ASSERT_TRUE(reread.has_value());

  EXPECT_EQ(reread->grid.xsize(), original.grid.xsize());
  EXPECT_EQ(reread->grid.ysize(), original.grid.ysize());
  EXPECT_EQ(reread->grid.num_layers(), original.grid.num_layers());
  ASSERT_EQ(reread->nets.size(), original.nets.size());

  for (std::size_t n = 0; n < original.nets.size(); ++n) {
    ASSERT_EQ(reread->nets[n].pins.size(), original.nets[n].pins.size()) << n;
    for (std::size_t k = 0; k < original.nets[n].pins.size(); ++k) {
      EXPECT_EQ(reread->nets[n].pins[k].x, original.nets[n].pins[k].x);
      EXPECT_EQ(reread->nets[n].pins[k].y, original.nets[n].pins[k].y);
      EXPECT_EQ(reread->nets[n].pins[k].layer, original.nets[n].pins[k].layer);
    }
  }
  // Per-edge capacities preserved (via the adjustment mechanism).
  for (int l = 0; l < original.grid.num_layers(); ++l) {
    for (int e = 0; e < original.grid.num_edges_on_layer(l); ++e) {
      ASSERT_EQ(reread->grid.edge_capacity(l, e), original.grid.edge_capacity(l, e))
          << "layer " << l << " edge " << e;
    }
  }
}

}  // namespace
}  // namespace cpla::parser
