// Fault-injection suite for the ECO engine (ctest labels: faultinject,
// eco). Arms the two eco.* sites — a poisoned cache lookup and a failing
// partition re-solve — and asserts the degradation contract: resolve()
// never crashes, falls back to full_resolve(), stays never-worse, and
// (because the session restores its entry snapshot before the fallback)
// ends bit-identical to a stock core::optimize() on an untouched copy.

#include <gtest/gtest.h>

#include "src/eco/eco_session.hpp"
#include "src/eco/edit_script.hpp"
#include "src/util/fault_inject.hpp"
#include "tests/eco/eco_test_util.hpp"

namespace cpla::eco {
namespace {

struct Entry {
  double avg = 0.0;
  double max = 0.0;
  long overflow = 0;
};

Entry entry_state(const core::Prepared& bench, const core::CriticalSet& critical) {
  const core::LaMetrics m = core::compute_metrics(*bench.state, *bench.rc, critical);
  return {m.avg_tcp, m.max_tcp, bench.state->wire_overflow() + bench.state->via_overflow()};
}

void expect_never_worse(const core::Prepared& bench, const core::CriticalSet& critical,
                        const Entry& before) {
  const Entry after = entry_state(bench, critical);
  EXPECT_LE(after.avg, before.avg * (1.0 + 1e-9));
  EXPECT_LE(after.max, before.max * (1.0 + 1e-9));
  EXPECT_LE(after.overflow, before.overflow);
}

class EcoFaultInjectTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

// Runs a faulted resolve side by side with a stock optimize on an
// identical control copy and requires bit-identical final assignments.
void expect_degrades_to_stock(const char* site, std::uint64_t seed) {
  core::Prepared live = make_bench(seed);
  core::Prepared control = make_bench(seed);

  EcoOptions opt;
  opt.critical_ratio = 0.03;
  EcoSession session(live.design.get(), live.state.get(), live.rc.get(), opt);
  const core::CriticalSet critical = session.critical();
  const Entry before = entry_state(live, critical);

  FaultInjector::instance().arm_always(site);
  const core::OptimizeResult out = session.resolve();
  FaultInjector::instance().reset();
  EXPECT_TRUE(out.status.is_ok());

  const EcoStats s = session.stats();
  EXPECT_GE(s.fallbacks, 1) << site << " never triggered the fallback";
  EXPECT_GE(s.full_resolves, 1);
  expect_never_worse(live, critical, before);

  // The fallback re-optimized from the restored entry snapshot, so the
  // faulted session must land exactly where the stock path lands.
  const core::OptimizeResult ref =
      core::optimize(control.state.get(), *control.rc, critical, opt.flow);
  EXPECT_TRUE(ref.status.is_ok());
  expect_assignments_equal(*live.state, *control.state);
  expect_metrics_equal(*live.state, *control.state, *live.rc, critical);
}

TEST_F(EcoFaultInjectTest, PoisonedCacheLookupDegradesToFullResolve) {
  expect_degrades_to_stock("eco.cache.lookup", 91);
}

TEST_F(EcoFaultInjectTest, FailingPartitionResolveDegradesToFullResolve) {
  expect_degrades_to_stock("eco.resolve.partition", 92);
}

TEST_F(EcoFaultInjectTest, IntermittentFaultOnAWarmSessionStaysNeverWorse) {
  core::Prepared live = make_bench(93);
  EcoOptions opt;
  opt.critical_ratio = 0.03;
  EcoSession session(live.design.get(), live.state.get(), live.rc.get(), opt);
  const core::CriticalSet critical = session.critical();

  ASSERT_TRUE(session.resolve().status.is_ok());  // warm the cache cleanly
  const std::vector<Delta> script =
      make_edit_script(session.state(), critical, {.count = 5, .seed = 93});
  for (const Delta& d : script) ASSERT_TRUE(session.apply(d).is_ok());
  // Measure against the post-edit released set (the script may have
  // toggled criticality; the set is stable across a resolve).
  const core::CriticalSet& crit_now = session.critical();
  const Entry before = entry_state(live, crit_now);

  // One mid-run poisoned lookup, not a permanent failure.
  FaultInjector::instance().arm("eco.cache.lookup", 2, 1);
  const core::OptimizeResult out = session.resolve();
  FaultInjector::instance().reset();
  EXPECT_TRUE(out.status.is_ok());
  EXPECT_GE(session.stats().fallbacks, 1);
  expect_never_worse(live, crit_now, before);

  // The session recovers: the next resolve is clean again and uses the
  // cache (full_resolve's solves bypassed it, so entries are still valid).
  const long fallbacks = session.stats().fallbacks;
  EXPECT_TRUE(session.resolve().status.is_ok());
  EXPECT_EQ(session.stats().fallbacks, fallbacks);
}

}  // namespace
}  // namespace cpla::eco
