#pragma once

// Shared fixtures for the ECO suites: a small deterministic bench instance
// and the state-equality assertions the equivalence contract is stated in.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/core/flow.hpp"
#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"

namespace cpla::eco {

inline core::Prepared make_bench(std::uint64_t seed, int size = 20, int nets = 200) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = size;
  spec.num_nets = nets;
  spec.num_layers = 6;
  spec.seed = seed;
  return core::prepare(gen::generate(spec));
}

/// Bit-identical assignment equality: every net's layer vector matches.
inline void expect_assignments_equal(const assign::AssignState& a,
                                     const assign::AssignState& b) {
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (int net = 0; net < a.num_nets(); ++net) {
    EXPECT_EQ(a.layers(net), b.layers(net)) << "net " << net << " diverged";
  }
}

/// Bit-identical timing/overflow equality over a shared critical set.
inline void expect_metrics_equal(const assign::AssignState& a, const assign::AssignState& b,
                                 const timing::RcTable& rc, const core::CriticalSet& critical) {
  const core::LaMetrics ma = core::compute_metrics(a, rc, critical);
  const core::LaMetrics mb = core::compute_metrics(b, rc, critical);
  EXPECT_EQ(ma.avg_tcp, mb.avg_tcp);
  EXPECT_EQ(ma.max_tcp, mb.max_tcp);
  EXPECT_EQ(ma.via_overflow, mb.via_overflow);
  EXPECT_EQ(ma.via_count, mb.via_count);
  EXPECT_EQ(ma.wire_overflow, mb.wire_overflow);
}

}  // namespace cpla::eco
