// Unit tests for the ECO subsystem building blocks — deltas, reroute
// helpers, the content-addressed solution cache, the assign-state ECO
// mutators, the timing cache — plus EcoSession end-to-end behavior
// (warm-cache hits, dirty/clean accounting, stats). Carries the `eco` and
// `tsan` labels: the cache is hammered from an OpenMP region below.

#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <vector>

#include "src/eco/delta.hpp"
#include "src/eco/eco_session.hpp"
#include "src/eco/edit_script.hpp"
#include "src/eco/reroute.hpp"
#include "src/eco/solution_cache.hpp"
#include "src/timing/elmore.hpp"
#include "src/timing/incremental.hpp"
#include "tests/eco/eco_test_util.hpp"

namespace cpla::eco {
namespace {

// --- Rect / region helpers -------------------------------------------

TEST(RectTest, IntersectsIsHalfOpen) {
  const Rect r{2, 3, 5, 6};
  EXPECT_TRUE(intersects(r, 4, 5, 10, 10));
  EXPECT_FALSE(intersects(r, 5, 3, 10, 10));  // touching edges don't overlap
  EXPECT_FALSE(intersects(r, 0, 6, 10, 10));
  EXPECT_TRUE(intersects(r, 0, 0, 3, 4));
  EXPECT_FALSE(intersects(Rect{}, 0, 0, 10, 10));  // empty rect hits nothing
}

TEST(RectTest, TreeBboxCoversAllSegments) {
  const route::SegTree tree = make_two_pin_tree({2, 7}, {6, 3});
  const Rect b = tree_bbox(tree);
  EXPECT_EQ(b.x0, 2);
  EXPECT_EQ(b.y0, 3);
  EXPECT_EQ(b.x1, 7);  // half-open: max coordinate + 1
  EXPECT_EQ(b.y1, 8);
  EXPECT_TRUE(tree_bbox(route::SegTree{}).empty());
}

// --- Reroute helpers --------------------------------------------------

TEST(RerouteTest, TwoPinTreeShapes) {
  // Straight span: one segment, sink on it.
  const route::SegTree straight = make_two_pin_tree({1, 4}, {5, 4});
  ASSERT_EQ(straight.segs.size(), 1u);
  EXPECT_TRUE(straight.segs[0].horizontal);
  ASSERT_EQ(straight.sinks.size(), 1u);
  EXPECT_EQ(straight.sinks[0].seg_id, 0);

  // L: two segments, child hangs off the root, sink at the far end.
  const route::SegTree ell = make_two_pin_tree({1, 1}, {4, 6});
  ASSERT_EQ(ell.segs.size(), 2u);
  EXPECT_EQ(ell.segs[0].parent, -1);
  EXPECT_EQ(ell.segs[1].parent, 0);
  EXPECT_EQ(ell.sinks[0].seg_id, 1);

  // Degenerate: same cell, empty tree.
  EXPECT_TRUE(make_two_pin_tree({3, 3}, {3, 3}).segs.empty());
}

TEST(RerouteTest, AlternateRouteFlipsTheCorner) {
  const route::SegTree ell = make_two_pin_tree({1, 1}, {4, 6});
  Result<route::SegTree> flipped = alternate_route(ell);
  ASSERT_TRUE(flipped.is_ok());
  ASSERT_EQ(flipped.value().segs.size(), 2u);
  // Orientation of the first segment flips; pins stay fixed.
  EXPECT_NE(flipped.value().segs[0].horizontal, ell.segs[0].horizontal);

  // Flipping twice restores the original shape.
  Result<route::SegTree> back = alternate_route(flipped.value());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().segs[0].horizontal, ell.segs[0].horizontal);
  EXPECT_EQ(back.value().segs[0].a.x, ell.segs[0].a.x);
  EXPECT_EQ(back.value().segs[0].a.y, ell.segs[0].a.y);

  // A straight tree has no alternate corner.
  EXPECT_FALSE(alternate_route(make_two_pin_tree({1, 4}, {5, 4})).is_ok());
}

// --- AssignState ECO mutators ----------------------------------------

TEST(StateMutatorTest, ReplaceAddRemoveKeepIdsStable) {
  core::Prepared bench = make_bench(11, 12, 40);
  assign::AssignState& state = *bench.state;
  const int n = state.num_nets();

  const int added = state.add_net(make_two_pin_tree({1, 1}, {5, 5}));
  EXPECT_EQ(added, n);
  EXPECT_EQ(state.num_nets(), n + 1);
  EXPECT_TRUE(state.assigned(added));
  EXPECT_EQ(state.layers(added).size(), state.tree(added).segs.size());

  // Replacing the tree re-derives the default assignment for the new shape.
  state.replace_tree(added, make_two_pin_tree({5, 1}, {1, 5}));
  EXPECT_EQ(state.layers(added).size(), state.tree(added).segs.size());

  const long wire_before = state.wire_overflow();
  state.remove_net(added);
  EXPECT_EQ(state.num_nets(), n + 1);  // id survives as an empty slot
  EXPECT_TRUE(state.tree(added).segs.empty());
  EXPECT_LE(state.wire_overflow(), wire_before);
}

// --- Delta application ------------------------------------------------

TEST(DeltaTest, CapacityAdjustedWritesThroughTheDesign) {
  core::Prepared bench = make_bench(12, 12, 40);
  core::CriticalSet critical = core::select_critical(*bench.state, *bench.rc, 0.05);
  const auto& g = bench.design->grid;

  int layer = 0;
  while (!g.is_horizontal(layer)) ++layer;
  const int edge = g.h_edge_id(2, 3);
  const int before = g.edge_capacity(layer, edge);

  Result<int> r = apply_delta(Delta::capacity_adjusted(layer, 2, 3, before + 2),
                              bench.design.get(), bench.state.get(), &critical);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), -1);
  EXPECT_EQ(g.edge_capacity(layer, edge), before + 2);
  EXPECT_EQ(bench.state->wire_cap(layer, edge), before + 2);
}

TEST(DeltaTest, CriticalityToggleMaintainsTheReleasedSet) {
  core::Prepared bench = make_bench(13, 12, 40);
  core::CriticalSet critical = core::select_critical(*bench.state, *bench.rc, 0.05);
  ASSERT_FALSE(critical.nets.empty());
  const int net = critical.nets.front();

  ASSERT_TRUE(apply_delta(Delta::criticality_changed(net, false), bench.design.get(),
                          bench.state.get(), &critical)
                  .is_ok());
  EXPECT_FALSE(critical.released[net]);
  EXPECT_EQ(std::count(critical.nets.begin(), critical.nets.end(), net), 0);

  ASSERT_TRUE(apply_delta(Delta::criticality_changed(net, true), bench.design.get(),
                          bench.state.get(), &critical)
                  .is_ok());
  EXPECT_TRUE(critical.released[net]);
  EXPECT_EQ(std::count(critical.nets.begin(), critical.nets.end(), net), 1);
}

TEST(DeltaTest, InvalidDeltasRejectWithoutMutation) {
  core::Prepared bench = make_bench(14, 12, 40);
  core::CriticalSet critical = core::select_critical(*bench.state, *bench.rc, 0.05);
  const auto& g = bench.design->grid;

  // Out-of-range net.
  EXPECT_FALSE(apply_delta(Delta::net_removed(bench.state->num_nets() + 7), bench.design.get(),
                           bench.state.get(), &critical)
                   .is_ok());
  // Out-of-grid capacity target.
  EXPECT_FALSE(apply_delta(Delta::capacity_adjusted(0, g.xsize() + 1, 0, 4), bench.design.get(),
                           bench.state.get(), &critical)
                   .is_ok());
  // Out-of-grid tree.
  route::SegTree bad = make_two_pin_tree({0, 0}, {g.xsize() + 3, 0});
  EXPECT_FALSE(
      apply_delta(Delta::net_added(bad), bench.design.get(), bench.state.get(), &critical)
          .is_ok());
}

// --- PartitionSolutionCache -------------------------------------------

CacheKey key_of(std::uint64_t a, std::uint64_t b) {
  CacheKey k;
  k.push(a);
  k.push(b);
  k.finalize();
  return k;
}

core::GuardedSolve solve_of(int tag) {
  core::GuardedSolve s;
  s.result.pick = {tag};
  s.tier = core::GuardTier::kPrimary;
  return s;
}

TEST(SolutionCacheTest, LruEvictsTheColdestEntry) {
  PartitionSolutionCache cache(2);
  cache.insert(key_of(1, 1), solve_of(1));
  cache.insert(key_of(2, 2), solve_of(2));

  core::GuardedSolve out;
  ASSERT_TRUE(cache.lookup(key_of(1, 1), &out));  // refresh 1 -> 2 is coldest
  cache.insert(key_of(3, 3), solve_of(3));        // evicts 2

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(key_of(2, 2), &out));
  ASSERT_TRUE(cache.lookup(key_of(1, 1), &out));
  EXPECT_EQ(out.result.pick, std::vector<int>{1});
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(SolutionCacheTest, HashCollisionIsAMissNeverAWrongAnswer) {
  PartitionSolutionCache cache(8);
  CacheKey a = key_of(10, 20);
  CacheKey b = key_of(30, 40);
  b.hash = a.hash;  // force the two keys into the same bucket

  cache.insert(a, solve_of(1));
  core::GuardedSolve out;
  EXPECT_FALSE(cache.lookup(b, &out));  // full word compare rejects it
  ASSERT_TRUE(cache.lookup(a, &out));
  EXPECT_EQ(out.result.pick, std::vector<int>{1});
}

TEST(SolutionCacheTest, InsertRefreshesAnExistingKey) {
  PartitionSolutionCache cache(4);
  cache.insert(key_of(1, 1), solve_of(1));
  cache.insert(key_of(1, 1), solve_of(9));
  EXPECT_EQ(cache.size(), 1u);
  core::GuardedSolve out;
  ASSERT_TRUE(cache.lookup(key_of(1, 1), &out));
  EXPECT_EQ(out.result.pick, std::vector<int>{9});
}

TEST(SolutionCacheTest, ConcurrentMixedAccessIsRaceFree) {
  // Shape mirrors the flow's OpenMP solve phase: many threads looking up
  // and inserting overlapping keys. Run under the tsan preset this is the
  // race-detector's stand over the cache's one-mutex design.
  PartitionSolutionCache cache(64);
  const int kIters = 2000;
#ifdef _OPENMP
#pragma omp parallel for
#endif
  for (int i = 0; i < kIters; ++i) {
    const CacheKey key = key_of(static_cast<std::uint64_t>(i % 97), 5);
    core::GuardedSolve out;
    if (!cache.lookup(key, &out)) cache.insert(key, solve_of(i % 97));
  }
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.hits() + cache.misses(), 0);
}

// --- TimingCache ------------------------------------------------------

TEST(TimingCacheTest, HitIsBitIdenticalAndInvalidateForcesRecompute) {
  core::Prepared bench = make_bench(15, 12, 40);
  timing::TimingCache cache;
  int net = 0;
  while (bench.state->tree(net).segs.empty()) ++net;

  const auto& first = cache.get(net, bench.state->tree(net), bench.state->layers(net), *bench.rc);
  const timing::NetTiming direct =
      timing::compute_timing(bench.state->tree(net), bench.state->layers(net), *bench.rc);
  EXPECT_EQ(first.max_sink_delay, direct.max_sink_delay);
  EXPECT_EQ(cache.misses(), 1);

  const auto& again = cache.get(net, bench.state->tree(net), bench.state->layers(net), *bench.rc);
  EXPECT_EQ(again.max_sink_delay, direct.max_sink_delay);
  EXPECT_EQ(cache.hits(), 1);

  cache.invalidate(net);
  cache.get(net, bench.state->tree(net), bench.state->layers(net), *bench.rc);
  EXPECT_EQ(cache.misses(), 2);
}

// --- EcoSession end-to-end --------------------------------------------

TEST(EcoSessionTest, ApplyRecordsDeltasAndInvalidatesTiming) {
  core::Prepared bench = make_bench(16);
  EcoOptions opt;
  opt.critical_ratio = 0.03;
  EcoSession session(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
  ASSERT_FALSE(session.critical().nets.empty());

  const std::vector<Delta> script =
      make_edit_script(*bench.state, session.critical(), {.count = 10, .seed = 3});
  ASSERT_EQ(script.size(), 10u);
  for (const Delta& d : script) ASSERT_TRUE(session.apply(d).is_ok()) << to_string(d.kind);
  EXPECT_EQ(session.stats().deltas_applied, 10);
}

TEST(EcoSessionTest, SecondResolveIsServedFromTheCache) {
  core::Prepared bench = make_bench(17);
  EcoOptions opt;
  opt.critical_ratio = 0.03;
  EcoSession session(bench.design.get(), bench.state.get(), bench.rc.get(), opt);

  core::OptimizeResult first = session.resolve();
  EXPECT_TRUE(first.status.is_ok());
  const EcoStats after_first = session.stats();
  EXPECT_GT(after_first.cache_misses, 0);  // cold cache: everything misses
  EXPECT_EQ(after_first.fallbacks, 0);

  // No deltas in between: the converged final round of the first resolve
  // re-appears as the first round of the second, so keys match and replay.
  core::OptimizeResult second = session.resolve();
  EXPECT_TRUE(second.status.is_ok());
  const EcoStats after_second = session.stats();
  EXPECT_GT(after_second.cache_hits, 0);
  EXPECT_EQ(after_second.resolves, 2);
  EXPECT_EQ(after_second.full_resolves, 0);
}

TEST(EcoSessionTest, DirtyAndCleanPartitionsAreBothAccounted) {
  core::Prepared bench = make_bench(18);
  EcoOptions opt;
  opt.critical_ratio = 0.03;
  EcoSession session(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
  session.resolve();  // warm the cache with a clean baseline pass

  const std::vector<Delta> script =
      make_edit_script(session.state(), session.critical(), {.count = 4, .seed = 7});
  for (const Delta& d : script) ASSERT_TRUE(session.apply(d).is_ok());
  session.resolve();

  const EcoStats s = session.stats();
  EXPECT_GT(s.dirty_partitions, 0);  // delta regions marked someone dirty
  EXPECT_GT(s.clean_partitions, 0);  // but far from everyone
  EXPECT_EQ(s.fallbacks, 0);
}

}  // namespace
}  // namespace cpla::eco
