// The equivalence contract of the incremental engine, stated as a test:
// for seeded randomized delta sequences, EcoSession::resolve() must be
// BIT-IDENTICAL to a fresh core::optimize() on the identically mutated
// design — every net's layer vector equal, every Table-2 metric equal —
// while the warm solution cache actually serves hits. Exercised across
// the default self-adaptive quadtree partitioning and a pure K x K grid.

#include <gtest/gtest.h>

#include <vector>

#include "src/eco/delta.hpp"
#include "src/eco/eco_session.hpp"
#include "src/eco/edit_script.hpp"
#include "tests/eco/eco_test_util.hpp"

namespace cpla::eco {
namespace {

struct EquivalenceRun {
  std::uint64_t seed = 1;
  int deltas = 12;
  int batches = 3;  // resolve() after every `deltas / batches` edits
  core::PartitionOptions partition;  // default = quadtree enabled
};

// Drives a session and an independent control copy of the same design
// through the same edit stream, resolving in batches; after every batch
// the session's incremental resolve must match a from-scratch optimize on
// the control bit for bit.
void run_equivalence(const EquivalenceRun& run) {
  core::Prepared live = make_bench(run.seed, 16, 150);
  core::Prepared control = make_bench(run.seed, 16, 150);

  EcoOptions opt;
  opt.critical_ratio = 0.03;
  opt.flow.partition = run.partition;
  EcoSession session(live.design.get(), live.state.get(), live.rc.get(), opt);

  // Mirror of the session's critical set for the control side.
  core::CriticalSet control_critical = session.critical();
  ASSERT_FALSE(control_critical.nets.empty());

  // The whole script is generated against the entry state: resolve() only
  // changes layer assignments, never trees/capacities/criticality, so the
  // stream stays valid when interleaved with resolves.
  const std::vector<Delta> script = make_edit_script(
      *live.state, session.critical(), {.count = run.deltas, .seed = run.seed});
  ASSERT_EQ(static_cast<int>(script.size()), run.deltas);

  const int per_batch = run.deltas / run.batches;
  std::size_t next = 0;
  for (int batch = 0; batch < run.batches; ++batch) {
    const std::size_t end =
        batch + 1 == run.batches ? script.size() : next + static_cast<std::size_t>(per_batch);
    for (; next < end; ++next) {
      ASSERT_TRUE(session.apply(script[next]).is_ok()) << "delta " << next;
      ASSERT_TRUE(apply_delta(script[next], control.design.get(), control.state.get(),
                              &control_critical)
                      .is_ok())
          << "delta " << next;
    }

    const core::OptimizeResult inc = session.resolve();
    core::CplaOptions control_opt = opt.flow;
    const core::OptimizeResult ref =
        core::optimize(control.state.get(), *control.rc, control_critical, control_opt);
    ASSERT_TRUE(inc.status.is_ok());
    ASSERT_TRUE(ref.status.is_ok());

    expect_assignments_equal(*live.state, *control.state);
    expect_metrics_equal(*live.state, *control.state, *live.rc, control_critical);
    if (::testing::Test::HasFailure()) {
      FAIL() << "divergence after batch " << batch << " (seed " << run.seed << ")";
    }
  }

  const EcoStats s = session.stats();
  EXPECT_EQ(s.fallbacks, 0);
  EXPECT_GT(s.cache_hits, 0) << "warm resolves never replayed a partition";
}

TEST(EcoEquivalenceTest, QuadtreePartitioningSeed1) {
  EquivalenceRun run;
  run.seed = 1;
  run_equivalence(run);
}

TEST(EcoEquivalenceTest, QuadtreePartitioningSeed2) {
  EquivalenceRun run;
  run.seed = 2;
  run_equivalence(run);
}

TEST(EcoEquivalenceTest, QuadtreePartitioningSeed3) {
  EquivalenceRun run;
  run.seed = 3;
  run_equivalence(run);
}

TEST(EcoEquivalenceTest, PureKxKPartitioning) {
  // Disable the self-adaptive quadtree refinement: a huge segment budget
  // means no K x K cell ever splits.
  EquivalenceRun run;
  run.seed = 4;
  run.partition.max_segments = 1 << 20;
  run_equivalence(run);
}

TEST(EcoEquivalenceTest, SingleDeltaPerResolve) {
  // The finest-grained ECO loop: resolve after every single edit. This is
  // where the cache earns its keep (most partitions untouched each step).
  EquivalenceRun run;
  run.seed = 5;
  run.deltas = 6;
  run.batches = 6;
  run_equivalence(run);
}

}  // namespace
}  // namespace cpla::eco
