// Satellite regression suite for batched delta application. The plain
// apply() loop is deliberately NOT transactional — a mid-batch failure
// leaves the already-applied prefix in place (pinned here so the behavior
// can never change silently). apply_batch() is the transactional variant:
// all-or-nothing, with a failure leaving the session byte-identical to its
// pre-batch self, including the *order* of the critical set.

#include <gtest/gtest.h>

#include <vector>

#include "src/eco/eco_session.hpp"
#include "src/eco/edit_script.hpp"
#include "tests/eco/eco_test_util.hpp"

namespace cpla::eco {
namespace {

constexpr std::uint64_t kSeed = 77;

core::Prepared batch_bench() { return eco::make_bench(kSeed, 14, 80); }

int first_horizontal(const grid::GridGraph& g) {
  int layer = 0;
  while (!g.is_horizontal(layer)) ++layer;
  return layer;
}

/// A mixed batch touching all five delta kinds, valid in order.
std::vector<Delta> mixed_batch(const grid::Design& design, const assign::AssignState& state) {
  const int h = first_horizontal(design.grid);
  const int cap = design.grid.edge_capacity(h, design.grid.h_edge_id(2, 3));
  std::vector<Delta> batch;
  batch.push_back(Delta::capacity_adjusted(h, 2, 3, cap + 3));
  batch.push_back(Delta::criticality_changed(1, true));
  batch.push_back(Delta::net_rerouted(2, state.tree(2), state.layers(2)));
  batch.push_back(Delta::net_added(state.tree(3), state.layers(3)));
  batch.push_back(Delta::net_removed(4));
  return batch;
}

TEST(EcoBatchTest, PlainApplyLoopLeavesThePartialPrefixApplied) {
  // The pinned behavior: stop-at-first-failure, keep the prefix. The
  // serve-layer journal relies on exactly this (each delta journals and
  // applies independently; a rejected delta rejects identically on replay).
  core::Prepared a = batch_bench();
  core::Prepared b = batch_bench();
  EcoSession sa(a.design.get(), a.state.get(), a.rc.get());
  EcoSession sb(b.design.get(), b.state.get(), b.rc.get());

  std::vector<Delta> batch = mixed_batch(*a.design, *a.state);
  batch.insert(batch.begin() + 2, Delta::net_removed(999999));  // poison mid-batch

  int failures = 0;
  for (const Delta& d : batch) {
    if (!sa.apply(d).is_ok()) {
      ++failures;
      break;  // the CLI/service loop stops at the first failure
    }
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(sa.stats().deltas_applied, 2);

  // The twin applies only the prefix — the two states must agree exactly.
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(sb.apply(batch[i]).is_ok());
  expect_assignments_equal(*a.state, *b.state);
  EXPECT_EQ(sa.critical().nets, sb.critical().nets);
  const int h = first_horizontal(a.design->grid);
  EXPECT_EQ(a.design->grid.edge_capacity(h, a.design->grid.h_edge_id(2, 3)),
            b.design->grid.edge_capacity(h, b.design->grid.h_edge_id(2, 3)));
}

TEST(EcoBatchTest, ApplyBatchFailureRestoresThePreBatchStateExactly) {
  core::Prepared a = batch_bench();
  core::Prepared b = batch_bench();  // untouched twin = the pre-batch truth
  EcoSession sa(a.design.get(), a.state.get(), a.rc.get());
  EcoSession sb(b.design.get(), b.state.get(), b.rc.get());

  std::vector<Delta> batch = mixed_batch(*a.design, *a.state);
  batch.push_back(Delta::net_removed(999999));  // fails after all five applied

  const Result<std::vector<int>> out = sa.apply_batch(batch);
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), StatusCode::kBadInput);

  // Byte-identical pre-batch state: assignments, net count (the added net
  // was popped), capacity, critical order AND membership, counters.
  expect_assignments_equal(*a.state, *b.state);
  EXPECT_EQ(a.state->num_nets(), b.state->num_nets());
  const int h = first_horizontal(a.design->grid);
  EXPECT_EQ(a.design->grid.edge_capacity(h, a.design->grid.h_edge_id(2, 3)),
            b.design->grid.edge_capacity(h, b.design->grid.h_edge_id(2, 3)));
  EXPECT_EQ(sa.critical().nets, sb.critical().nets);
  EXPECT_EQ(sa.critical().released, sb.critical().released);
  EXPECT_EQ(sa.stats().deltas_applied, 0);

  // And no hidden bookkeeping survived: a resolve from here must be
  // bit-identical to the twin that never saw the batch.
  const core::OptimizeResult ra = sa.resolve();
  const core::OptimizeResult rb = sb.resolve();
  ASSERT_TRUE(ra.status.is_ok());
  ASSERT_TRUE(rb.status.is_ok());
  expect_assignments_equal(*a.state, *b.state);
  expect_metrics_equal(*a.state, *b.state, *a.rc, sa.critical());
}

TEST(EcoBatchTest, ApplyBatchSuccessMatchesOneByOneApplication) {
  core::Prepared a = batch_bench();
  core::Prepared b = batch_bench();
  EcoSession sa(a.design.get(), a.state.get(), a.rc.get());
  EcoSession sb(b.design.get(), b.state.get(), b.rc.get());

  const std::vector<Delta> handmade = mixed_batch(*a.design, *a.state);
  const Result<std::vector<int>> batch_ids = sa.apply_batch(handmade);
  ASSERT_TRUE(batch_ids.is_ok());
  ASSERT_EQ(batch_ids.value().size(), handmade.size());
  std::vector<int> loop_ids;
  for (const Delta& d : handmade) {
    const Result<int> r = sb.apply(d);
    ASSERT_TRUE(r.is_ok());
    loop_ids.push_back(r.value());
  }
  EXPECT_EQ(batch_ids.value(), loop_ids);
  expect_assignments_equal(*a.state, *b.state);
  EXPECT_EQ(sa.critical().nets, sb.critical().nets);
  EXPECT_EQ(sa.stats().deltas_applied, sb.stats().deltas_applied);

  // A generated mixed stream (reroutes under the hood) agrees too, and the
  // post-batch resolves stay on the bit-identical equivalence contract.
  const std::vector<Delta> script = make_edit_script(*a.state, sa.critical(), {.count = 10, .seed = 3});
  ASSERT_TRUE(sa.apply_batch(script).is_ok());
  for (const Delta& d : script) ASSERT_TRUE(sb.apply(d).is_ok());
  const core::OptimizeResult ra = sa.resolve();
  const core::OptimizeResult rb = sb.resolve();
  ASSERT_TRUE(ra.status.is_ok());
  ASSERT_TRUE(rb.status.is_ok());
  expect_assignments_equal(*a.state, *b.state);
  expect_metrics_equal(*a.state, *b.state, *a.rc, sa.critical());
}

}  // namespace
}  // namespace cpla::eco
