// The batched SDP backend under the ECO cache: resolve() with
// CplaOptions::batch enabled must be bit-identical to the scalar session —
// same assignments AND the same cache traffic (hits, misses, dirty/clean
// splits), pinning that solution-cache keys are content-addressed and
// independent of batch composition: whether a partition was solved in a
// slab or alone never changes what later resolves replay. Also covers the
// fault-degradation path with batching on.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/eco/delta.hpp"
#include "src/eco/eco_session.hpp"
#include "src/eco/edit_script.hpp"
#include "src/util/fault_inject.hpp"
#include "tests/eco/eco_test_util.hpp"

namespace cpla::eco {
namespace {

EcoOptions session_options(bool batch) {
  EcoOptions opt;
  opt.critical_ratio = 0.03;
  // Equal Gauss-Seidel granularity in both modes: batch mode widens the
  // auto commit batch, so equivalence requires pinning it explicitly.
  opt.flow.commit_batch = 16;
  opt.flow.batch.enabled = batch;
  return opt;
}

TEST(EcoBatchedResolve, BatchedSessionMatchesScalarSessionBitForBit) {
  core::Prepared scalar_bench = make_bench(91, 16, 150);
  core::Prepared batch_bench = make_bench(91, 16, 150);

  EcoSession scalar(scalar_bench.design.get(), scalar_bench.state.get(), scalar_bench.rc.get(),
                    session_options(false));
  EcoSession batched(batch_bench.design.get(), batch_bench.state.get(), batch_bench.rc.get(),
                     session_options(true));

  const std::vector<Delta> script =
      make_edit_script(*scalar_bench.state, scalar.critical(), {.count = 12, .seed = 91});
  ASSERT_FALSE(script.empty());

  std::size_t next = 0;
  for (int round = 0; round < 3; ++round) {
    const std::size_t end = round == 2 ? script.size() : next + script.size() / 3;
    for (; next < end; ++next) {
      ASSERT_TRUE(scalar.apply(script[next]).is_ok()) << "delta " << next;
      ASSERT_TRUE(batched.apply(script[next]).is_ok()) << "delta " << next;
    }
    ASSERT_TRUE(scalar.resolve().status.is_ok());
    ASSERT_TRUE(batched.resolve().status.is_ok());
    expect_assignments_equal(*scalar_bench.state, *batch_bench.state);
    if (::testing::Test::HasFailure()) FAIL() << "divergence after round " << round;
  }

  // One more resolve with nothing dirty: every partition is clean, so any
  // replay comes straight out of entries the *batched* miss-solver
  // inserted — and must land where the scalar session lands.
  const EcoStats warm = batched.stats();
  ASSERT_TRUE(scalar.resolve().status.is_ok());
  ASSERT_TRUE(batched.resolve().status.is_ok());
  expect_assignments_equal(*scalar_bench.state, *batch_bench.state);
  expect_metrics_equal(*scalar_bench.state, *batch_bench.state, *scalar_bench.rc,
                       scalar.critical());

  const EcoStats ss = scalar.stats();
  const EcoStats bs = batched.stats();
  EXPECT_EQ(ss.dirty_partitions, bs.dirty_partitions);
  EXPECT_EQ(ss.clean_partitions, bs.clean_partitions);
  EXPECT_EQ(ss.cache_hits, bs.cache_hits);
  EXPECT_EQ(ss.cache_misses, bs.cache_misses);
  EXPECT_EQ(ss.fallbacks, 0);
  EXPECT_EQ(bs.fallbacks, 0);
  EXPECT_GT(bs.cache_hits, warm.cache_hits) << "warm batched resolve never replayed a partition";
}

TEST(EcoBatchedResolve, BatchedResolveMatchesFreshOptimizeOnControlCopy) {
  core::Prepared live = make_bench(92, 16, 150);
  core::Prepared control = make_bench(92, 16, 150);

  const EcoOptions opt = session_options(true);
  EcoSession session(live.design.get(), live.state.get(), live.rc.get(), opt);
  core::CriticalSet control_critical = session.critical();
  ASSERT_FALSE(control_critical.nets.empty());

  const std::vector<Delta> script =
      make_edit_script(*live.state, session.critical(), {.count = 8, .seed = 92});
  for (std::size_t i = 0; i < script.size(); ++i) {
    ASSERT_TRUE(session.apply(script[i]).is_ok()) << "delta " << i;
    ASSERT_TRUE(
        apply_delta(script[i], control.design.get(), control.state.get(), &control_critical)
            .is_ok())
        << "delta " << i;
  }

  const core::OptimizeResult inc = session.resolve();
  const core::OptimizeResult ref =
      core::optimize(control.state.get(), *control.rc, control_critical, opt.flow);
  ASSERT_TRUE(inc.status.is_ok());
  ASSERT_TRUE(ref.status.is_ok());
  expect_assignments_equal(*live.state, *control.state);
  expect_metrics_equal(*live.state, *control.state, *live.rc, control_critical);
  EXPECT_EQ(session.stats().fallbacks, 0);
}

TEST(EcoBatchedResolve, FaultedBatchedResolveDegradesToStock) {
  FaultInjector::instance().reset();
  core::Prepared live = make_bench(93, 16, 150);
  core::Prepared control = make_bench(93, 16, 150);

  const EcoOptions opt = session_options(true);
  EcoSession session(live.design.get(), live.state.get(), live.rc.get(), opt);
  const core::CriticalSet critical = session.critical();

  FaultInjector::instance().arm_always("eco.resolve.partition");
  const core::OptimizeResult out = session.resolve();
  FaultInjector::instance().reset();
  EXPECT_TRUE(out.status.is_ok());
  EXPECT_EQ(session.stats().fallbacks, 1);

  const core::OptimizeResult ref =
      core::optimize(control.state.get(), *control.rc, critical, opt.flow);
  ASSERT_TRUE(ref.status.is_ok());
  expect_assignments_equal(*live.state, *control.state);
}

}  // namespace
}  // namespace cpla::eco
