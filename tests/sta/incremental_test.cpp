#include "src/sta/timing_graph.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "src/eco/eco_session.hpp"
#include "src/util/rng.hpp"
#include "tests/sta/sta_test_util.hpp"

namespace cpla::sta {
namespace {

// Randomly re-assigns layers on ~net_prob of the routed nets: the pure
// layer churn an ECO / flow round produces, with no tree-shape change.
void mutate_random_layers(assign::AssignState* state, Rng* rng, double net_prob) {
  for (int n = 0; n < state->num_nets(); ++n) {
    const route::SegTree& tree = state->tree(n);
    if (tree.segs.empty() || !rng->chance(net_prob)) continue;
    std::vector<int> layers = state->layers(n);
    bool touched = false;
    for (std::size_t s = 0; s < layers.size(); ++s) {
      if (!rng->chance(0.4)) continue;
      const std::vector<int>& allowed = state->allowed_layers(tree.segs[s].horizontal);
      const int pick =
          allowed[static_cast<std::size_t>(rng->uniform_int(0, static_cast<int>(allowed.size()) - 1))];
      touched = touched || pick != layers[s];
      layers[s] = pick;
    }
    if (touched) state->set_layers(n, std::move(layers));
  }
}

TEST(IncrementalSta, NoOpUpdateTouchesNothingAndStaysIdentical) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph, fresh;
  graph.build(*run.state, set, TimingGraph::Options{});

  graph.update(*run.state);
  EXPECT_EQ(graph.stats().builds, 1);
  EXPECT_EQ(graph.stats().incremental_updates, 1);
  EXPECT_EQ(graph.stats().dirty_nets, 0);
  EXPECT_EQ(graph.stats().dirty_nodes, 0);

  fresh.build(*run.state, set, TimingGraph::Options{});
  expect_graphs_bit_identical(graph, fresh);
}

// The registered determinism contract: an incrementally updated graph is
// bit-identical to a from-scratch build on the same state, across a
// randomized stream of layer-churn deltas.
TEST(IncrementalSta, RandomizedLayerChurnIsBitIdenticalToScratch) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph incremental;
  incremental.build(*run.state, set, TimingGraph::Options{});

  Rng rng(2026);
  for (int step = 0; step < 12; ++step) {
    // Mix small (local cone) and broad deltas.
    mutate_random_layers(run.state.get(), &rng, step % 3 == 0 ? 0.3 : 0.02);
    incremental.update(*run.state);

    TimingGraph fresh;
    fresh.build(*run.state, set, TimingGraph::Options{});
    SCOPED_TRACE(step);
    expect_graphs_bit_identical(incremental, fresh);
  }
  EXPECT_EQ(incremental.stats().builds, 1);  // never fell back to a rebuild
  EXPECT_EQ(incremental.stats().incremental_updates, 12);
}

TEST(IncrementalSta, DirtyConeIsSmallForALocalDelta) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  // Flip one segment of one net.
  int victim = -1;
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (!run.state->tree(n).segs.empty()) {
      victim = n;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  std::vector<int> layers = run.state->layers(victim);
  const std::vector<int>& allowed =
      run.state->allowed_layers(run.state->tree(victim).segs[0].horizontal);
  for (const int l : allowed) {
    if (l != layers[0]) {
      layers[0] = l;
      break;
    }
  }
  run.state->set_layers(victim, std::move(layers));

  graph.update(*run.state);
  EXPECT_EQ(graph.stats().dirty_nets, 1);
  // The re-propagated cone must stay a small fraction of the graph — the
  // whole point of the incremental path.
  EXPECT_LT(graph.stats().dirty_nodes, graph.num_nodes() / 2);

  TimingGraph fresh;
  fresh.build(*run.state, set, TimingGraph::Options{});
  expect_graphs_bit_identical(graph, fresh);
}

TEST(IncrementalSta, TopologyInvalidationForcesARebuild) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  // Reroute one net onto a copy of another net's tree: a real shape change.
  int a = -1, b = -1;
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (run.state->tree(n).segs.empty()) continue;
    if (a < 0) {
      a = n;
    } else if (run.state->tree(n).segs.size() != run.state->tree(a).segs.size()) {
      b = n;
      break;
    }
  }
  ASSERT_GE(b, 0);
  run.state->replace_tree(a, run.state->tree(b));
  graph.invalidate_topology();
  graph.update(*run.state);
  EXPECT_EQ(graph.stats().builds, 2);

  TimingGraph fresh;
  fresh.build(*run.state, set, TimingGraph::Options{});
  expect_graphs_bit_identical(graph, fresh);
}

TEST(IncrementalSta, NetCountGrowthForcesARebuild) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  int donor = -1;
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (!run.state->tree(n).segs.empty()) {
      donor = n;
      break;
    }
  }
  ASSERT_GE(donor, 0);
  run.state->add_net(run.state->tree(donor));
  graph.update(*run.state);  // detected by net-count mismatch, no invalidate needed
  EXPECT_EQ(graph.stats().builds, 2);

  TimingGraph fresh;
  fresh.build(*run.state, set, TimingGraph::Options{});
  expect_graphs_bit_identical(graph, fresh);
}

// An attached EcoSession keeps the graph current across resolves: after
// criticality releases + resolve (layer churn from the solver) and after a
// reroute delta (topology change), the session-maintained graph matches a
// from-scratch build on the final state.
TEST(IncrementalSta, EcoSessionKeepsTheAttachedGraphCurrent) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  eco::EcoSession session(run.design.get(), run.state.get(), run.rc.get(), {});
  session.attach_sta(&graph);
  ASSERT_EQ(session.sta_graph(), &graph);

  std::vector<int> routed;
  for (int n = 0; n < run.state->num_nets() && routed.size() < 6; ++n) {
    if (!run.state->tree(n).segs.empty()) routed.push_back(n);
  }
  ASSERT_EQ(routed.size(), 6u);
  for (const int n : routed) {
    ASSERT_TRUE(session.apply(eco::Delta::criticality_changed(n, true)).is_ok());
  }
  ASSERT_TRUE(session.resolve().status.is_ok());
  {
    TimingGraph fresh;
    fresh.build(*run.state, set, TimingGraph::Options{});
    expect_graphs_bit_identical(graph, fresh);
  }

  // A reroute delta flows through invalidate_topology -> rebuild on the
  // next resolve-driven retime.
  ASSERT_TRUE(
      session.apply(eco::Delta::net_rerouted(routed[0], run.state->tree(routed[1]))).is_ok());
  ASSERT_TRUE(session.resolve().status.is_ok());
  {
    TimingGraph fresh;
    fresh.build(*run.state, set, TimingGraph::Options{});
    expect_graphs_bit_identical(graph, fresh);
  }
}

}  // namespace
}  // namespace cpla::sta
