#include "src/sta/timing_graph.hpp"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "src/timing/elmore.hpp"
#include "src/timing/moments.hpp"
#include "tests/sta/sta_test_util.hpp"

namespace cpla::sta {
namespace {

TEST(TimingGraphBuild, NodeLayoutMirrorsTheRoutedDesign) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  ASSERT_TRUE(graph.built());
  ASSERT_EQ(graph.num_corners(), 3);

  int expected_nodes = 0;
  for (int n = 0; n < run.state->num_nets(); ++n) {
    const route::SegTree& tree = run.state->tree(n);
    const bool present = !tree.segs.empty() || !tree.sinks.empty();
    ASSERT_EQ(graph.has_net(n), present) << n;
    if (!present) continue;
    expected_nodes += 1 + static_cast<int>(tree.sinks.size());

    const NodeId driver = graph.driver_node(n);
    EXPECT_EQ(graph.kind(driver), NodeKind::kDriver);
    EXPECT_EQ(graph.node_net(driver), n);
    EXPECT_EQ(graph.node_sink(driver), -1);
    for (int k = 0; k < static_cast<int>(tree.sinks.size()); ++k) {
      const NodeId sink = graph.sink_node(n, k);
      EXPECT_EQ(graph.kind(sink), NodeKind::kSink);
      EXPECT_EQ(graph.node_net(sink), n);
      EXPECT_EQ(graph.node_sink(sink), k);
    }
  }
  EXPECT_EQ(graph.num_nodes(), expected_nodes);
  EXPECT_GT(graph.num_edges(), 0);
  EXPECT_GT(graph.num_levels(), 1);
}

TEST(TimingGraphBuild, EnabledEdgesAlwaysGoLevelUp) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  for (int e = 0; e < graph.num_edges(); ++e) {
    if (!graph.edge_enabled(e)) continue;
    EXPECT_LT(graph.level(graph.edge_from(e)), graph.level(graph.edge_to(e))) << "edge " << e;
  }
  // Endpoints really have no enabled out-edges, and the list is ascending.
  ASSERT_FALSE(graph.endpoints().empty());
  EXPECT_TRUE(std::is_sorted(graph.endpoints().begin(), graph.endpoints().end()));
  for (const NodeId v : graph.endpoints()) {
    for (int e = graph.out_edge_begin(v); e < graph.out_edge_end(v); ++e) {
      EXPECT_FALSE(graph.edge_enabled(e)) << "endpoint " << v;
    }
  }
}

TEST(TimingGraphBuild, NetEdgeDelaysAreTheCornersElmoreDelays) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (!graph.has_net(n)) continue;
    const route::SegTree& tree = run.state->tree(n);
    for (int c = 0; c < set.size(); ++c) {
      const timing::NetTiming nt =
          timing::compute_timing(tree, run.state->layers(n), set.rc(c));
      const NodeId driver = graph.driver_node(n);
      for (int k = 0; k < static_cast<int>(tree.sinks.size()); ++k) {
        // Drivers carry exactly their net edges, in sink order.
        const int e = graph.out_edge_begin(driver) + k;
        ASSERT_LT(e, graph.out_edge_end(driver));
        EXPECT_EQ(graph.edge_to(e), graph.sink_node(n, k));
        EXPECT_TRUE(same_bits(graph.edge_delay(c, e), nt.sink_delay[k]))
            << "net " << n << " sink " << k << " corner " << c;
      }
    }
  }
}

TEST(TimingGraphBuild, ArrivalIsTheMaxOverEnabledInEdges) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  for (int c = 0; c < graph.num_corners(); ++c) {
    for (int v = 0; v < graph.num_nodes(); ++v) {
      double expect = 0.0;
      for (int i = 0; i < graph.in_degree(v); ++i) {
        const int e = graph.in_edge(v, i);
        if (!graph.edge_enabled(e)) continue;
        expect = std::max(expect, graph.arrival(c, graph.edge_from(e)) + graph.edge_delay(c, e));
      }
      EXPECT_TRUE(same_bits(graph.arrival(c, v), expect)) << "corner " << c << " node " << v;
    }
  }
}

TEST(TimingGraphTiming, SlackIsRequiredMinusArrivalAndMergesWorstCorner) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  for (int v = 0; v < graph.num_nodes(); ++v) {
    double worst = std::numeric_limits<double>::infinity();
    for (int c = 0; c < graph.num_corners(); ++c) {
      EXPECT_TRUE(same_bits(graph.slack(c, v), graph.required(c, v) - graph.arrival(c, v)))
          << "corner " << c << " node " << v;
      worst = std::min(worst, graph.slack(c, v));
    }
    EXPECT_EQ(graph.worst_slack(v), worst) << v;
  }

  // worst_slack() is the endpoint minimum of the merged slack.
  double endpoint_worst = std::numeric_limits<double>::infinity();
  for (const NodeId v : graph.endpoints()) {
    endpoint_worst = std::min(endpoint_worst, graph.worst_slack(v));
  }
  EXPECT_EQ(graph.worst_slack(), endpoint_worst);
}

TEST(TimingGraphTiming, DerivedCornersZeroTheirWorstEndpoint) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  for (int c = 0; c < graph.num_corners(); ++c) {
    double worst_arrival = 0.0;
    double min_slack = std::numeric_limits<double>::infinity();
    for (const NodeId v : graph.endpoints()) {
      worst_arrival = std::max(worst_arrival, graph.arrival(c, v));
      min_slack = std::min(min_slack, graph.slack(c, v));
      // Endpoints are required exactly at the corner budget.
      EXPECT_EQ(graph.required(c, v), graph.corner_required(c)) << "corner " << c;
    }
    if (set.corner(c).required_time < 0.0) {
      // Derived budget: the worst endpoint sits at exactly zero slack.
      EXPECT_EQ(graph.corner_required(c), worst_arrival) << set.corner(c).name;
      EXPECT_EQ(min_slack, 0.0) << set.corner(c).name;
    } else {
      EXPECT_EQ(graph.corner_required(c), set.corner(c).required_time) << set.corner(c).name;
    }
  }
}

TEST(TimingGraphTiming, SlowCornerDominatesFastCorner) {
  core::Prepared run = sta_bench();
  // three_corners(): corner 0 scales everything up, corner 1 scales down.
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  for (int v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_GE(graph.arrival(0, v), graph.arrival(1, v)) << v;
  }
}

TEST(TimingGraphTiming, NetSlackIsTheMinOverTheNetsNodes) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (!graph.has_net(n)) {
      EXPECT_EQ(graph.net_slack(n), std::numeric_limits<double>::infinity());
      continue;
    }
    double expect = graph.worst_slack(graph.driver_node(n));
    const int sinks = static_cast<int>(run.state->tree(n).sinks.size());
    for (int k = 0; k < sinks; ++k) {
      expect = std::min(expect, graph.worst_slack(graph.sink_node(n, k)));
    }
    EXPECT_EQ(graph.net_slack(n), expect) << n;
  }
}

TEST(TimingGraphOptions, StageDelayOnlyEverIncreasesArrivals) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph plain, staged;
  plain.build(*run.state, set, TimingGraph::Options{});
  TimingGraph::Options options;
  options.stage_delay = 7.0;
  staged.build(*run.state, set, options);

  ASSERT_EQ(staged.num_nodes(), plain.num_nodes());
  bool any_grew = false;
  for (int c = 0; c < plain.num_corners(); ++c) {
    for (int v = 0; v < plain.num_nodes(); ++v) {
      EXPECT_GE(staged.arrival(c, v), plain.arrival(c, v));
      any_grew = any_grew || staged.arrival(c, v) > plain.arrival(c, v);
    }
  }
  // The bench has stage edges, so a nonzero stage delay must show up.
  EXPECT_TRUE(any_grew);
}

TEST(TimingGraphOptions, D2mSinkDelaysComeFromTheMomentsLayer) {
  core::Prepared run = sta_bench(12, 60);
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  TimingGraph::Options options;
  options.use_d2m = true;
  graph.build(*run.state, set, options);

  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (!graph.has_net(n)) continue;
    const route::SegTree& tree = run.state->tree(n);
    for (int c = 0; c < set.size(); ++c) {
      const timing::NetMoments nm =
          timing::compute_moments(tree, run.state->layers(n), set.rc(c));
      const NodeId driver = graph.driver_node(n);
      for (int k = 0; k < static_cast<int>(tree.sinks.size()); ++k) {
        const int e = graph.out_edge_begin(driver) + k;
        EXPECT_TRUE(same_bits(graph.edge_delay(c, e), nm.d2m[k]))
            << "net " << n << " sink " << k << " corner " << c;
      }
    }
  }
}

}  // namespace
}  // namespace cpla::sta
