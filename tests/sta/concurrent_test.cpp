#include "src/sta/timing_graph.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/rng.hpp"
#include "tests/sta/sta_test_util.hpp"

namespace cpla::sta {
namespace {

// The level-parallel propagation (Options::parallel, OpenMP) must be
// bit-identical to the serial sweep: nodes within a level write disjoint
// entries and read only earlier levels, and every in-edge reduction runs
// in the pinned ascending-edge-id order regardless of thread count.
TEST(ConcurrentSta, ParallelBuildMatchesSerialBitwise) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());

  TimingGraph parallel_graph, serial_graph;
  TimingGraph::Options parallel_options;
  parallel_options.parallel = true;
  TimingGraph::Options serial_options;
  serial_options.parallel = false;
  parallel_graph.build(*run.state, set, parallel_options);
  serial_graph.build(*run.state, set, serial_options);

  expect_graphs_bit_identical(parallel_graph, serial_graph);
}

TEST(ConcurrentSta, ParallelIncrementalUpdatesMatchSerialBitwise) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());

  TimingGraph parallel_graph, serial_graph;
  TimingGraph::Options parallel_options;
  parallel_options.parallel = true;
  TimingGraph::Options serial_options;
  serial_options.parallel = false;
  parallel_graph.build(*run.state, set, parallel_options);
  serial_graph.build(*run.state, set, serial_options);

  Rng rng(77);
  for (int step = 0; step < 6; ++step) {
    for (int n = 0; n < run.state->num_nets(); ++n) {
      const route::SegTree& tree = run.state->tree(n);
      if (tree.segs.empty() || !rng.chance(0.1)) continue;
      std::vector<int> layers = run.state->layers(n);
      for (std::size_t s = 0; s < layers.size(); ++s) {
        if (!rng.chance(0.5)) continue;
        const std::vector<int>& allowed = run.state->allowed_layers(tree.segs[s].horizontal);
        layers[s] = allowed[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(allowed.size()) - 1))];
      }
      run.state->set_layers(n, std::move(layers));
    }
    parallel_graph.update(*run.state);
    serial_graph.update(*run.state);
    SCOPED_TRACE(step);
    expect_graphs_bit_identical(parallel_graph, serial_graph);
  }
}

// Snapshot readers: a built graph is immutable under its read API, so any
// number of threads may query slack / paths concurrently (the tsan preset
// stands over this). Every reader must see the same answers.
TEST(ConcurrentSta, ManyReadersSeeIdenticalAnswers) {
  core::Prepared run = sta_bench();
  CornerSet set(*run.rc, three_corners());
  TimingGraph graph;
  graph.build(*run.state, set, TimingGraph::Options{});

  const double ref_worst = graph.worst_slack();
  const std::vector<TimingPath> ref_paths = graph.report_top_k_paths(0, 16);

  constexpr int kThreads = 8;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 20; ++iter) {
        if (!same_bits(graph.worst_slack(), ref_worst)) ++mismatches[t];
        const std::vector<TimingPath> paths = graph.report_top_k_paths(0, 16);
        if (paths.size() != ref_paths.size()) {
          ++mismatches[t];
          continue;
        }
        for (std::size_t i = 0; i < paths.size(); ++i) {
          if (paths[i].nodes != ref_paths[i].nodes ||
              !same_bits(paths[i].slack, ref_paths[i].slack)) {
            ++mismatches[t];
          }
        }
        for (int n = 0; n < run.state->num_nets(); n += 7) {
          if (graph.has_net(n) && graph.net_slack(n) > graph.worst_slack(graph.driver_node(n))) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace cpla::sta
