#pragma once

// Shared fixtures for the src/sta suite: the standard 24x24 synthetic
// bench (same silhouette critical_test uses), a three-corner table that
// exercises the worst-over-corners merge, and the bitwise graph
// comparator the incremental / concurrency contracts are judged by.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"
#include "src/sta/corner.hpp"
#include "src/sta/timing_graph.hpp"

namespace cpla::sta {

inline core::Prepared sta_bench(int size = 24, int nets = 300, std::uint64_t seed = 111) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = size;
  spec.num_nets = nets;
  spec.num_layers = 6;
  spec.seed = seed;
  return core::prepare(gen::generate(spec));
}

/// Slow, fast, and a fixed-budget corner: distinct scales so per-corner
/// values genuinely differ and the merge has something to merge.
inline std::vector<RcCorner> three_corners() {
  return {
      RcCorner{"slow", 1.3, 1.2, 1.1, -1.0},
      RcCorner{"fast", 0.8, 0.9, 0.95, -1.0},
      RcCorner{"budget", 1.0, 1.0, 1.0, 1.0e4},
  };
}

/// Bitwise equality that distinguishes +0.0 from -0.0 (the contract is
/// bit-identity, not numeric equality).
inline bool same_bits(double a, double b) {
  return a == b && std::signbit(a) == std::signbit(b);
}

/// Asserts two graphs agree on shape and on every arrival/required/slack
/// value bitwise, at every corner and node.
inline void expect_graphs_bit_identical(const TimingGraph& got, const TimingGraph& want) {
  ASSERT_EQ(got.num_corners(), want.num_corners());
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  ASSERT_EQ(got.num_levels(), want.num_levels());
  ASSERT_EQ(got.endpoints(), want.endpoints());
  for (int c = 0; c < got.num_corners(); ++c) {
    ASSERT_TRUE(same_bits(got.corner_required(c), want.corner_required(c))) << "corner " << c;
    for (int v = 0; v < got.num_nodes(); ++v) {
      ASSERT_TRUE(same_bits(got.arrival(c, v), want.arrival(c, v)))
          << "arrival corner " << c << " node " << v;
      ASSERT_TRUE(same_bits(got.required(c, v), want.required(c, v)))
          << "required corner " << c << " node " << v;
      ASSERT_TRUE(same_bits(got.slack(c, v), want.slack(c, v)))
          << "slack corner " << c << " node " << v;
    }
  }
  for (int v = 0; v < got.num_nodes(); ++v) {
    ASSERT_TRUE(same_bits(got.worst_slack(v), want.worst_slack(v))) << "worst node " << v;
  }
}

}  // namespace cpla::sta
