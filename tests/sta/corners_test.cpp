#include "src/sta/corner.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "src/timing/rc_table.hpp"
#include "tests/sta/sta_test_util.hpp"

namespace cpla::sta {
namespace {

Result<std::vector<RcCorner>> parse(const std::string& text) {
  std::istringstream in(text);
  return parse_corners(in);
}

TEST(ParseCorners, FullTableWithDefaultsCommentsAndBlanks) {
  auto result = parse(
      "# three corners, one per line\n"
      "corner slow 1.3 1.2 1.1 12000\n"
      "\n"
      "corner fast 0.8 0.9   # optional fields keep defaults\n"
      "corner typ 1.0 1.0 1.0\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const std::vector<RcCorner> corners = result.take();
  ASSERT_EQ(corners.size(), 3u);

  EXPECT_EQ(corners[0].name, "slow");
  EXPECT_DOUBLE_EQ(corners[0].res_scale, 1.3);
  EXPECT_DOUBLE_EQ(corners[0].cap_scale, 1.2);
  EXPECT_DOUBLE_EQ(corners[0].driver_scale, 1.1);
  EXPECT_DOUBLE_EQ(corners[0].required_time, 12000.0);

  // Absent optionals: driver_scale 1.0, required_time derived (-1).
  EXPECT_EQ(corners[1].name, "fast");
  EXPECT_DOUBLE_EQ(corners[1].driver_scale, 1.0);
  EXPECT_LT(corners[1].required_time, 0.0);

  EXPECT_EQ(corners[2].name, "typ");
  EXPECT_LT(corners[2].required_time, 0.0);
}

TEST(ParseCorners, ErrorsCarryTheLineNumber) {
  struct Case {
    const char* text;
    int line;
  };
  const Case cases[] = {
      {"corner a 1 1\nwrong b 1 1\n", 2},         // bad keyword
      {"corner a 1\n", 1},                        // missing cap_scale
      {"corner a 1 1 bogus\n", 1},                // malformed optional
      {"corner a 1 1 1 1 extra\n", 1},            // trailing junk
      {"corner a 1 1\ncorner b 0 1\n", 2},        // non-positive scale
      {"corner a 1 1\ncorner a 1 1\n", 2},        // duplicate name
      {"corner a 1 1 1 12000junk\n", 1},          // partially-numeric token
  };
  for (const Case& c : cases) {
    auto result = parse(c.text);
    ASSERT_FALSE(result.is_ok()) << c.text;
    EXPECT_EQ(result.status().code(), StatusCode::kBadInput) << c.text;
    EXPECT_EQ(result.status().line(), c.line) << result.status().to_string();
  }
}

TEST(ParseCorners, EmptyTableIsAnError) {
  auto result = parse("# only comments\n\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBadInput);
}

TEST(ParseCornersFile, MissingFileIsBadInput) {
  auto result = parse_corners_file("/nonexistent/corners.txt");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBadInput);
}

TEST(CornerSet, MaterializesScaledTablesPerCorner) {
  core::Prepared run = sta_bench(12, 40);
  const timing::RcTable& base = *run.rc;
  CornerSet set(base, {RcCorner{"slow", 2.0, 3.0, 1.5, -1.0}, RcCorner{}});
  ASSERT_EQ(set.size(), 2);

  const timing::RcTable& slow = set.rc(0);
  for (int l = 0; l < 6; ++l) {
    EXPECT_DOUBLE_EQ(slow.res(l), base.res(l) * 2.0) << l;
    EXPECT_DOUBLE_EQ(slow.via_res(l), base.via_res(l) * 2.0) << l;
    EXPECT_DOUBLE_EQ(slow.cap(l), base.cap(l) * 3.0) << l;
  }
  EXPECT_DOUBLE_EQ(slow.sink_cap(), base.sink_cap() * 3.0);
  EXPECT_DOUBLE_EQ(slow.driver_res(), base.driver_res() * 1.5);

  // The default corner is the unscaled base.
  const timing::RcTable& typ = set.rc(1);
  for (int l = 0; l < 6; ++l) {
    EXPECT_DOUBLE_EQ(typ.res(l), base.res(l)) << l;
    EXPECT_DOUBLE_EQ(typ.cap(l), base.cap(l)) << l;
  }
  EXPECT_DOUBLE_EQ(typ.sink_cap(), base.sink_cap());
  EXPECT_DOUBLE_EQ(typ.driver_res(), base.driver_res());
}

TEST(CornerSet, SingleIsOneDerivedCorner) {
  core::Prepared run = sta_bench(12, 40);
  const timing::RcTable& base = *run.rc;
  CornerSet set = CornerSet::single(base);
  ASSERT_EQ(set.size(), 1);
  EXPECT_LT(set.corner(0).required_time, 0.0);
  EXPECT_DOUBLE_EQ(set.rc(0).driver_res(), base.driver_res());
}

}  // namespace
}  // namespace cpla::sta
