#include "src/sta/path_enum.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/sta/timing_graph.hpp"
#include "tests/sta/sta_test_util.hpp"

namespace cpla::sta {
namespace {

// Brute force oracle: enumerate EVERY complete source-to-endpoint path by
// DFS over enabled edges, accumulating delay left-to-right exactly like
// path_enum.cpp does (so delays compare bitwise), then sort by the
// contract order (slack ascending, lexicographically smaller node
// sequence first). Exponential in principle — the fixture is sized so the
// full path set stays small, and the cap below asserts it stayed small.
constexpr std::size_t kOraclePathCap = 200000;

std::vector<TimingPath> all_paths(const TimingGraph& graph, int corner) {
  std::vector<TimingPath> out;
  std::vector<int> nodes;

  struct Dfs {
    const TimingGraph& graph;
    int corner;
    std::vector<TimingPath>& out;
    std::vector<int>& nodes;
    void walk(int v, double delay) {
      ASSERT_LT(out.size(), kOraclePathCap) << "fixture too big for the brute-force oracle";
      nodes.push_back(v);
      bool terminal = true;
      for (int e = graph.out_edge_begin(v); e < graph.out_edge_end(v); ++e) {
        if (!graph.edge_enabled(e)) continue;
        terminal = false;
        walk(graph.edge_to(e), delay + graph.edge_delay(corner, e));
      }
      if (terminal) {
        const double required = graph.corner_required(corner);
        out.push_back(TimingPath{nodes, delay, required, required - delay});
      }
      nodes.pop_back();
    }
  } dfs{graph, corner, out, nodes};

  for (int v = 0; v < graph.num_nodes(); ++v) {
    bool source = true;
    for (int i = 0; i < graph.in_degree(v); ++i) {
      if (graph.edge_enabled(graph.in_edge(v, i))) source = false;
    }
    if (source) dfs.walk(v, 0.0);
  }

  std::sort(out.begin(), out.end(), [](const TimingPath& a, const TimingPath& b) {
    if (a.slack != b.slack) return a.slack < b.slack;
    return a.nodes < b.nodes;
  });
  return out;
}

struct Fixture {
  core::Prepared run;
  CornerSet set;
  TimingGraph graph;

  Fixture() : run(sta_bench(12, 60)), set(*run.rc, three_corners()) {
    TimingGraph::Options options;
    options.stage_delay = 3.0;  // make stage hops visible in the ranking
    graph.build(*run.state, set, options);
  }
};

TEST(TopKPaths, GoldenAgainstBruteForceAtEveryCorner) {
  Fixture f;
  for (int c = 0; c < f.graph.num_corners(); ++c) {
    const std::vector<TimingPath> oracle = all_paths(f.graph, c);
    ASSERT_GT(oracle.size(), 10u) << "fixture degenerated";
    for (int k : {1, 3, 17, static_cast<int>(oracle.size())}) {
      k = std::min(k, static_cast<int>(oracle.size()));
      const std::vector<TimingPath> got = f.graph.report_top_k_paths(c, k);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(k)) << "corner " << c << " k " << k;
      for (int i = 0; i < k; ++i) {
        EXPECT_EQ(got[i].nodes, oracle[i].nodes) << "corner " << c << " k " << k << " path " << i;
        EXPECT_TRUE(same_bits(got[i].delay, oracle[i].delay)) << "corner " << c << " path " << i;
        EXPECT_TRUE(same_bits(got[i].slack, oracle[i].slack)) << "corner " << c << " path " << i;
        EXPECT_TRUE(same_bits(got[i].required, oracle[i].required)) << "corner " << c;
      }
    }
  }
}

TEST(TopKPaths, KBeyondThePathCountReturnsEveryPathOnce) {
  Fixture f;
  const std::vector<TimingPath> oracle = all_paths(f.graph, 0);
  const std::vector<TimingPath> got =
      f.graph.report_top_k_paths(0, static_cast<int>(oracle.size()) + 50);
  ASSERT_EQ(got.size(), oracle.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].nodes, oracle[i].nodes) << i;
  }
}

TEST(TopKPaths, KZeroIsEmpty) {
  Fixture f;
  EXPECT_TRUE(f.graph.report_top_k_paths(0, 0).empty());
}

TEST(TopKPaths, EmissionOrderIsSlackThenLex) {
  Fixture f;
  const std::vector<TimingPath> got = f.graph.report_top_k_paths(1, 40);
  for (std::size_t i = 1; i < got.size(); ++i) {
    const bool ordered = got[i - 1].slack < got[i].slack ||
                         (got[i - 1].slack == got[i].slack && got[i - 1].nodes < got[i].nodes);
    EXPECT_TRUE(ordered) << "paths " << i - 1 << " and " << i;
  }
}

TEST(TopKPaths, ReportedPathsAreRealGraphWalks) {
  Fixture f;
  for (const TimingPath& path : f.graph.report_top_k_paths(2, 25)) {
    ASSERT_FALSE(path.nodes.empty());
    // Starts at a source.
    const int head = path.nodes.front();
    for (int i = 0; i < f.graph.in_degree(head); ++i) {
      EXPECT_FALSE(f.graph.edge_enabled(f.graph.in_edge(head, i)));
    }
    // Every hop is an enabled edge; the delays re-accumulate bitwise.
    double delay = 0.0;
    for (std::size_t i = 1; i < path.nodes.size(); ++i) {
      const int from = path.nodes[i - 1];
      bool connected = false;
      for (int e = f.graph.out_edge_begin(from); e < f.graph.out_edge_end(from); ++e) {
        if (f.graph.edge_enabled(e) && f.graph.edge_to(e) == path.nodes[i]) {
          connected = true;
          delay += f.graph.edge_delay(2, e);
          break;
        }
      }
      ASSERT_TRUE(connected) << "hop " << i;
    }
    // Ends at an endpoint.
    const int tail = path.nodes.back();
    for (int e = f.graph.out_edge_begin(tail); e < f.graph.out_edge_end(tail); ++e) {
      EXPECT_FALSE(f.graph.edge_enabled(e));
    }
    EXPECT_TRUE(same_bits(path.delay, delay));
    EXPECT_TRUE(same_bits(path.slack, path.required - path.delay));
  }
}

TEST(TopKPaths, RepeatCallsAreIdentical) {
  Fixture f;
  const std::vector<TimingPath> a = f.graph.report_top_k_paths(0, 20);
  const std::vector<TimingPath> b = f.graph.report_top_k_paths(0, 20);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].nodes, b[i].nodes) << i;
    EXPECT_TRUE(same_bits(a[i].delay, b[i].delay)) << i;
  }
}

}  // namespace
}  // namespace cpla::sta
