#include "src/assign/route_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/assign/initial_assign.hpp"
#include "src/gen/synth.hpp"
#include "src/grid/layer_stack.hpp"
#include "src/route/router.hpp"
#include "src/util/logging.hpp"

namespace cpla::assign {
namespace {

struct Fixture {
  grid::Design design;
  Fixture() : design("t", make_grid()) {}
  static grid::GridGraph make_grid() {
    grid::GridGraph g(12, 12, grid::make_layer_stack(4), grid::default_geom());
    for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, 8);
    return g;
  }
};

TEST(RouteIo, NetWiresCoverSegmentsAndVias) {
  Fixture f;
  grid::Net net;
  net.id = 0;
  net.name = "n0";
  net.pins = {grid::Pin{1, 1, 0}, grid::Pin{5, 4, 0}};
  f.design.nets.push_back(net);
  route::NetRoute r;
  for (int x = 1; x < 5; ++x) r.add_h(f.design.grid.h_edge_id(x, 1));
  for (int y = 1; y < 4; ++y) r.add_v(f.design.grid.v_edge_id(5, y));
  AssignState state(&f.design, {route::extract_tree(f.design.grid, net, &r)});
  state.set_layers(0, {2, 3});

  const auto wires = net_wires(state, 0);
  // 2 segments + source via (0->2) + junction via (2->3) + sink via (3->0).
  ASSERT_EQ(wires.size(), 5u);
  int segs = 0, vias = 0;
  for (const auto& w : wires) {
    if (w.l1 == w.l2) {
      ++segs;
    } else {
      ++vias;
      EXPECT_EQ(w.x1, w.x2);
      EXPECT_EQ(w.y1, w.y2);
    }
  }
  EXPECT_EQ(segs, 2);
  EXPECT_EQ(vias, 3);
}

TEST(RouteIo, RoundTripOnBenchmark) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 120;
  spec.num_layers = 4;
  spec.seed = 81;
  const grid::Design d = gen::generate(spec);
  route::RoutingResult rr = route::route_all(d);
  std::vector<route::SegTree> trees;
  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    trees.push_back(route::extract_tree(d.grid, d.nets[n], &rr.routes[n]));
  }
  AssignState state(&d, std::move(trees));
  initial_assign(&state);

  std::stringstream buf;
  write_routes(state, buf);
  const auto parsed = read_routes(buf, d.grid);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), d.nets.size());

  for (std::size_t n = 0; n < parsed->size(); ++n) {
    EXPECT_EQ((*parsed)[n].name, d.nets[n].name);
    EXPECT_EQ((*parsed)[n].id, d.nets[n].id);
    const auto expected = net_wires(state, static_cast<int>(n));
    ASSERT_EQ((*parsed)[n].wires.size(), expected.size()) << d.nets[n].name;
    for (std::size_t w = 0; w < expected.size(); ++w) {
      EXPECT_EQ((*parsed)[n].wires[w], expected[w]);
    }
  }
}

TEST(RouteIo, ReaderRejectsMalformedInput) {
  set_log_level(LogLevel::kSilent);
  Fixture f;
  {
    std::istringstream in("(1,2,3)-(4,5,6)\n");  // wire before a header
    EXPECT_FALSE(read_routes(in, f.design.grid).has_value());
  }
  {
    std::istringstream in("n0 0\n(1,2\n!\n");  // truncated wire
    EXPECT_FALSE(read_routes(in, f.design.grid).has_value());
  }
  {
    std::istringstream in("n0 0\n(5,5,1)-(15,5,1)\n");  // missing '!'
    EXPECT_FALSE(read_routes(in, f.design.grid).has_value());
  }
  {
    std::istringstream in("!\n");  // stray terminator
    EXPECT_FALSE(read_routes(in, f.design.grid).has_value());
  }
  set_log_level(LogLevel::kInfo);
}

TEST(RouteIo, EmptyStateWritesNothing) {
  Fixture f;
  AssignState state(&f.design, {});
  std::stringstream buf;
  write_routes(state, buf);
  EXPECT_TRUE(buf.str().empty());
  const auto parsed = read_routes(buf, f.design.grid);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

}  // namespace
}  // namespace cpla::assign
