#include "src/assign/antenna.hpp"

#include <gtest/gtest.h>

#include "src/assign/initial_assign.hpp"
#include "src/gen/synth.hpp"
#include "src/grid/layer_stack.hpp"
#include "src/route/router.hpp"

namespace cpla::assign {
namespace {

struct Fixture {
  grid::Design design;
  Fixture() : design("t", make_grid()) {}
  static grid::GridGraph make_grid() {
    grid::GridGraph g(16, 16, grid::make_layer_stack(4), grid::default_geom());
    for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, 8);
    return g;
  }

  /// L-net (1,1)->(9,1)->(9,6): H segment length 8, V segment length 5.
  AssignState l_state(std::vector<int> layers) {
    grid::Net net;
    net.id = 0;
    net.pins = {grid::Pin{1, 1, 0}, grid::Pin{9, 6, 0}};
    route::NetRoute r;
    for (int x = 1; x < 9; ++x) r.add_h(design.grid.h_edge_id(x, 1));
    for (int y = 1; y < 6; ++y) r.add_v(design.grid.v_edge_id(9, y));
    AssignState state(&design, {route::extract_tree(design.grid, net, &r)});
    state.set_layers(0, std::move(layers));
    return state;
  }
};

TEST(Antenna, SameLayerChainDischargesThroughDriver) {
  // Both segments on the lowest pair: at every step where the sink is
  // attached, the driver is also reachable -> no antenna.
  Fixture f;
  const AssignState state = f.l_state({0, 1});
  EXPECT_DOUBLE_EQ(sink_antenna_ratio(state, 0, 0), 0.0);
}

TEST(Antenna, LowSinkSegmentBelowHighParentCollectsCharge) {
  // Parent H segment on layer 2, sink V segment on layer 1: at fabrication
  // step 1 the V metal (length 5) exists and connects to the sink, but the
  // parent (layer 2) does not exist yet -> antenna of length 5 / gate 1.
  Fixture f;
  const AssignState state = f.l_state({2, 1});
  AntennaOptions opt;
  opt.gate_size = 1.0;
  EXPECT_DOUBLE_EQ(sink_antenna_ratio(state, 0, 0, opt), 5.0);
}

TEST(Antenna, GateSizeScalesRatio) {
  Fixture f;
  const AssignState state = f.l_state({2, 1});
  AntennaOptions opt;
  opt.gate_size = 2.5;
  EXPECT_DOUBLE_EQ(sink_antenna_ratio(state, 0, 0, opt), 2.0);
}

TEST(Antenna, ReportFlagsViolationsAboveThreshold) {
  Fixture f;
  const AssignState state = f.l_state({2, 1});
  AntennaOptions opt;
  opt.gate_size = 1.0;
  opt.max_ratio = 4.0;  // ratio 5.0 violates
  const AntennaReport report = check_antennas(state, opt);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].net, 0);
  EXPECT_DOUBLE_EQ(report.violations[0].ratio, 5.0);
  EXPECT_DOUBLE_EQ(report.worst_ratio, 5.0);
  EXPECT_EQ(report.sinks_checked, 1);

  opt.max_ratio = 6.0;  // now it passes
  EXPECT_TRUE(check_antennas(state, opt).violations.empty());
}

TEST(Antenna, BenchmarkAuditRunsCleanly) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 150;
  spec.num_layers = 6;
  spec.seed = 91;
  const grid::Design d = gen::generate(spec);
  route::RoutingResult rr = route::route_all(d);
  std::vector<route::SegTree> trees;
  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    trees.push_back(route::extract_tree(d.grid, d.nets[n], &rr.routes[n]));
  }
  AssignState state(&d, std::move(trees));
  initial_assign(&state);

  const AntennaReport report = check_antennas(state);
  EXPECT_GT(report.sinks_checked, 0);
  EXPECT_GE(report.worst_ratio, 0.0);
  // Ratios are bounded by total net wirelength / gate size.
  long max_wl = 0;
  for (int n = 0; n < state.num_nets(); ++n) {
    long wl = 0;
    for (const auto& seg : state.tree(n).segs) wl += seg.length();
    max_wl = std::max(max_wl, wl);
  }
  EXPECT_LE(report.worst_ratio, static_cast<double>(max_wl));
}

}  // namespace
}  // namespace cpla::assign
