#include "src/assign/validate.hpp"

#include <gtest/gtest.h>

#include "src/assign/initial_assign.hpp"
#include "src/gen/synth.hpp"
#include "src/grid/layer_stack.hpp"
#include "src/route/router.hpp"

namespace cpla::assign {
namespace {

struct Fixture {
  grid::Design design;
  Fixture() : design("t", make_grid()) {
    grid::Net net;
    net.id = 0;
    net.name = "n0";
    net.pins = {grid::Pin{1, 1, 0}, grid::Pin{5, 1, 0}};
    design.nets.push_back(net);
  }
  static grid::GridGraph make_grid() {
    grid::GridGraph g(12, 12, grid::make_layer_stack(4), grid::default_geom());
    for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, 4);
    return g;
  }
};

RoutedNet simple_net() {
  RoutedNet net;
  net.name = "n0";
  net.id = 0;
  // Pin via up, wire across on layer 0 (horizontal), nothing else needed
  // since both pins are on layer 0 == wire layer.
  net.wires.push_back(Wire3D{1, 1, 0, 5, 1, 0});
  return net;
}

TEST(Validate, AcceptsLegalSolution) {
  Fixture f;
  const ValidationReport r = validate_solution(f.design, {simple_net()});
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.total_wirelength, 4);
  EXPECT_EQ(r.wire_overflow, 0);
}

TEST(Validate, DetectsOpenNet) {
  Fixture f;
  RoutedNet net = simple_net();
  net.wires[0].x2 = 4;  // stops one cell short of the pin at x=5
  const ValidationReport r = validate_solution(f.design, {net});
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("pin"), std::string::npos);
}

TEST(Validate, DetectsWrongDirectionLayer) {
  Fixture f;
  RoutedNet net = simple_net();
  net.wires[0].l1 = net.wires[0].l2 = 1;  // layer 1 is vertical
  net.wires.push_back(Wire3D{1, 1, 0, 1, 1, 1});  // pin vias so pins exist
  net.wires.push_back(Wire3D{5, 1, 0, 5, 1, 1});
  const ValidationReport r = validate_solution(f.design, {net});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.errors[0].find("horizontal wire on vertical layer"), std::string::npos);
}

TEST(Validate, DetectsDiagonalAndZeroLengthWires) {
  Fixture f;
  RoutedNet net = simple_net();
  net.wires.push_back(Wire3D{1, 1, 0, 2, 2, 0});  // diagonal
  EXPECT_FALSE(validate_solution(f.design, {net}).ok);

  RoutedNet net2 = simple_net();
  net2.wires.push_back(Wire3D{9, 9, 2, 9, 9, 2});  // zero length
  EXPECT_FALSE(validate_solution(f.design, {net2}).ok);
}

TEST(Validate, DetectsOutOfGridWire) {
  Fixture f;
  RoutedNet net = simple_net();
  net.wires.push_back(Wire3D{10, 1, 0, 15, 1, 0});
  EXPECT_FALSE(validate_solution(f.design, {net}).ok);
}

TEST(Validate, ViaStackConnectsLayers) {
  Fixture f;
  f.design.nets[0].pins[1] = grid::Pin{1, 5, 0};  // L-shaped net now
  RoutedNet net;
  net.name = "n0";
  net.id = 0;
  net.wires.push_back(Wire3D{1, 1, 0, 1, 1, 1});  // via 0->1 at source
  net.wires.push_back(Wire3D{1, 1, 1, 1, 5, 1});  // vertical wire on layer 1
  net.wires.push_back(Wire3D{1, 5, 1, 1, 5, 0});  // via down at sink
  const ValidationReport r = validate_solution(f.design, {net});
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.total_vias, 2);
}

TEST(Validate, CountsWireOverflow) {
  Fixture f;
  // Capacity 4 on layer 0; six identical wires through the same edges.
  std::vector<RoutedNet> nets;
  for (int i = 0; i < 6; ++i) {
    RoutedNet net = simple_net();
    nets.push_back(net);
  }
  // All six claim net id 0; geometry-wise that's allowed for the audit.
  const ValidationReport r = validate_solution(f.design, nets);
  EXPECT_TRUE(r.ok);                     // no opens, just congestion
  EXPECT_EQ(r.wire_overflow, 2 * 4);     // 2 extra wires on each of 4 edges
}

TEST(Validate, EndToEndAgainstInternalState) {
  // Full pipeline -> write_routes -> read_routes -> validate: the external
  // audit must agree with the internal bookkeeping.
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 150;
  spec.num_layers = 6;
  spec.seed = 93;
  const grid::Design d = gen::generate(spec);
  route::RoutingResult rr = route::route_all(d);
  std::vector<route::SegTree> trees;
  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    trees.push_back(route::extract_tree(d.grid, d.nets[n], &rr.routes[n]));
  }
  AssignState state(&d, std::move(trees));
  initial_assign(&state);

  std::stringstream buf;
  write_routes(state, buf);
  const auto parsed = read_routes(buf, d.grid);
  ASSERT_TRUE(parsed.has_value());
  const ValidationReport r = validate_solution(d, *parsed);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.wire_overflow, state.wire_overflow());
  EXPECT_EQ(r.via_overflow, state.via_overflow());
  EXPECT_EQ(r.total_vias, state.via_count());
}

}  // namespace
}  // namespace cpla::assign
