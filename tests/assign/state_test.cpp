#include "src/assign/state.hpp"

#include <gtest/gtest.h>

#include "src/grid/layer_stack.hpp"

namespace cpla::assign {
namespace {

struct Fixture {
  grid::Design design;
  Fixture() : design("t", make_grid()) {}

  static grid::GridGraph make_grid() {
    grid::GridGraph g(12, 12, grid::make_layer_stack(4), grid::default_geom());
    for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, 4);
    return g;
  }

  /// L-shaped 2-pin net from (1,1) to (5,4).
  route::SegTree l_net(int id = 0) {
    grid::Net net;
    net.id = id;
    net.pins = {grid::Pin{1, 1, 0}, grid::Pin{5, 4, 0}};
    route::NetRoute r;
    for (int x = 1; x < 5; ++x) r.add_h(design.grid.h_edge_id(x, 1));
    for (int y = 1; y < 4; ++y) r.add_v(design.grid.v_edge_id(5, y));
    return route::extract_tree(design.grid, net, &r);
  }
};

TEST(AssignState, UsageAppliedAndRemoved) {
  Fixture f;
  AssignState state(&f.design, {f.l_net()});
  ASSERT_EQ(state.num_nets(), 1);
  EXPECT_FALSE(state.assigned(0));

  state.set_layers(0, {0, 1});  // H seg on layer 0, V seg on layer 1
  EXPECT_TRUE(state.assigned(0));
  EXPECT_EQ(state.wire_usage(0, f.design.grid.h_edge_id(2, 1)), 1);
  EXPECT_EQ(state.wire_usage(1, f.design.grid.v_edge_id(5, 2)), 1);
  // Vias: source 0->0 none; junction 0->1 adjacent (no intermediate);
  // sink 1->0 one crossing. via_count counts crossings: 0 + 1 + 1.
  EXPECT_EQ(state.via_count(), 2);

  state.clear_net(0);
  EXPECT_FALSE(state.assigned(0));
  EXPECT_EQ(state.wire_usage(0, f.design.grid.h_edge_id(2, 1)), 0);
  EXPECT_EQ(state.via_count(), 0);
}

TEST(AssignState, TrackUsageCoversCells) {
  Fixture f;
  AssignState state(&f.design, {f.l_net()});
  state.set_layers(0, {2, 1});
  // H segment (1,1)-(5,1) on layer 2 covers cells x=1..5 at y=1.
  for (int x = 1; x <= 5; ++x) {
    EXPECT_EQ(state.track_usage(2, f.design.grid.cell_id(x, 1)), 1) << x;
  }
  EXPECT_EQ(state.track_usage(2, f.design.grid.cell_id(6, 1)), 0);
}

TEST(AssignState, IntermediateViaLayersAccrueUsage) {
  Fixture f;
  AssignState state(&f.design, {f.l_net()});
  state.set_layers(0, {0, 3});  // junction via 0 -> 3 passes layers 1 and 2
  const int junction = f.design.grid.cell_id(5, 1);
  EXPECT_EQ(state.via_usage(1, junction), 1);
  EXPECT_EQ(state.via_usage(2, junction), 1);
  EXPECT_EQ(state.via_usage(3, junction), 0);
  EXPECT_EQ(state.via_usage(0, junction), 0);
  // Sink via 3 -> 0 at (5,4) passes layers 1, 2.
  const int sink_cell = f.design.grid.cell_id(5, 4);
  EXPECT_EQ(state.via_usage(1, sink_cell), 1);
  EXPECT_EQ(state.via_usage(2, sink_cell), 1);
  // via_count: source 0 + junction 3 + sink 3.
  EXPECT_EQ(state.via_count(), 6);
}

TEST(AssignState, ReassignReplacesUsage) {
  Fixture f;
  AssignState state(&f.design, {f.l_net()});
  state.set_layers(0, {0, 1});
  state.set_layers(0, {2, 3});
  EXPECT_EQ(state.wire_usage(0, f.design.grid.h_edge_id(2, 1)), 0);
  EXPECT_EQ(state.wire_usage(2, f.design.grid.h_edge_id(2, 1)), 1);
}

TEST(AssignState, WireOverflowCounts) {
  Fixture f;
  // Five identical nets through the same corridor, capacity 4.
  std::vector<route::SegTree> trees;
  for (int i = 0; i < 5; ++i) trees.push_back(f.l_net(i));
  AssignState state(&f.design, std::move(trees));
  for (int i = 0; i < 5; ++i) state.set_layers(i, {0, 1});
  // Each of the 4 h-edges and 3 v-edges is over by 1.
  EXPECT_EQ(state.wire_overflow(), 7);
  state.set_layers(4, {2, 3});
  EXPECT_EQ(state.wire_overflow(), 0);
}

TEST(AssignState, DirectionMismatchAborts) {
  Fixture f;
  AssignState state(&f.design, {f.l_net()});
  EXPECT_DEATH(state.set_layers(0, {1, 1}), "direction");
}

TEST(AssignState, AllowedLayersSplitByDirection) {
  Fixture f;
  AssignState state(&f.design, {f.l_net()});
  EXPECT_EQ(state.allowed_layers(true), (std::vector<int>{0, 2}));
  EXPECT_EQ(state.allowed_layers(false), (std::vector<int>{1, 3}));
}

TEST(AssignState, ViaLoadCombinesViasAndTracks) {
  Fixture f;
  AssignState state(&f.design, {f.l_net()});
  state.set_layers(0, {0, 3});
  const int junction = f.design.grid.cell_id(5, 1);
  // Layer 1: one via crossing, no tracks on layer 1 at that cell.
  EXPECT_EQ(state.via_load(1, junction), 1);
  // Layer 0: the H wire crosses the junction cell -> nv tracks-worth.
  EXPECT_EQ(state.via_load(0, junction), state.nv());
}

}  // namespace
}  // namespace cpla::assign
