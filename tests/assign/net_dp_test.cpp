#include "src/assign/net_dp.hpp"

#include <gtest/gtest.h>

#include "src/grid/layer_stack.hpp"
#include "src/util/rng.hpp"

namespace cpla::assign {
namespace {

/// Builds a random segment tree (synthetic shapes, not geometric) to
/// exercise the DP; directions alternate from the parent.
route::SegTree random_tree(cpla::Rng* rng, int num_segs) {
  route::SegTree tree;
  tree.net_id = 0;
  tree.root = {1, 1};
  for (int i = 0; i < num_segs; ++i) {
    route::Segment seg;
    seg.id = i;
    seg.parent = (i == 0) ? -1 : static_cast<int>(rng->uniform_int(0, i - 1));
    seg.horizontal = (i == 0) ? true : !tree.segs[seg.parent].horizontal;
    seg.a = {1, 1};
    seg.b = seg.horizontal ? grid::XY{1 + static_cast<int>(rng->uniform_int(1, 5)), 1}
                           : grid::XY{1, 1 + static_cast<int>(rng->uniform_int(1, 5))};
    if (seg.parent >= 0) tree.segs[seg.parent].children.push_back(i);
    tree.segs.push_back(seg);
  }
  return tree;
}

TEST(NetDp, SingleSegmentPicksCheapestLayer) {
  route::SegTree tree;
  tree.root = {0, 0};
  route::Segment seg;
  seg.id = 0;
  seg.horizontal = true;
  seg.a = {0, 0};
  seg.b = {3, 0};
  tree.segs.push_back(seg);

  const std::vector<int> layers = {0, 2};
  NetDpCosts costs;
  costs.seg_cost = [](int, int l) { return l == 0 ? 7.0 : 3.0; };
  costs.root_via_cost = [](int, int) { return 0.0; };
  costs.via_cost = [](int, int, int) { return 0.0; };
  auto allowed = [&](int) -> const std::vector<int>& { return layers; };
  EXPECT_EQ(solve_net_dp(tree, allowed, costs), (std::vector<int>{2}));
}

TEST(NetDp, RootViaTiltsChoice) {
  route::SegTree tree;
  tree.root = {0, 0};
  route::Segment seg;
  seg.id = 0;
  seg.horizontal = true;
  seg.a = {0, 0};
  seg.b = {3, 0};
  tree.segs.push_back(seg);

  const std::vector<int> layers = {0, 2};
  NetDpCosts costs;
  costs.seg_cost = [](int, int l) { return l == 0 ? 7.0 : 3.0; };
  costs.root_via_cost = [](int, int l) { return l == 2 ? 10.0 : 0.0; };
  costs.via_cost = [](int, int, int) { return 0.0; };
  auto allowed = [&](int) -> const std::vector<int>& { return layers; };
  EXPECT_EQ(solve_net_dp(tree, allowed, costs), (std::vector<int>{0}));
}

TEST(NetDp, ViaCouplingPropagates) {
  // Chain of two segments; child strongly prefers layer 3, but via cost
  // from parent layer 0 to 3 is huge, so optimum is (0 -> 1).
  cpla::Rng rng(1);
  route::SegTree tree = random_tree(&rng, 1);
  route::Segment child;
  child.id = 1;
  child.parent = 0;
  child.horizontal = false;
  child.a = child.b = {1, 1};
  child.b.y = 3;
  tree.segs[0].children.push_back(1);
  tree.segs.push_back(child);

  const std::vector<int> h_layers = {0, 2};
  const std::vector<int> v_layers = {1, 3};
  NetDpCosts costs;
  costs.seg_cost = [](int s, int l) {
    if (s == 1) return l == 3 ? 1.0 : 2.0;  // slightly prefers 3
    return l == 0 ? 1.0 : 50.0;             // parent pinned to 0
  };
  costs.root_via_cost = [](int, int) { return 0.0; };
  costs.via_cost = [](int, int lp, int lc) { return 10.0 * std::abs(lp - lc); };
  auto allowed = [&](int s) -> const std::vector<int>& {
    return tree.segs[s].horizontal ? h_layers : v_layers;
  };
  EXPECT_EQ(solve_net_dp(tree, allowed, costs), (std::vector<int>{0, 1}));
}

// Property: DP result matches brute-force enumeration on random trees.
class NetDpSweep : public ::testing::TestWithParam<int> {};

TEST_P(NetDpSweep, MatchesBruteForce) {
  cpla::Rng rng(700 + static_cast<std::uint64_t>(GetParam()));
  const int num_segs = 1 + GetParam() % 8;
  const route::SegTree tree = random_tree(&rng, num_segs);

  const std::vector<int> h_layers = {0, 2};
  const std::vector<int> v_layers = {1, 3};
  auto allowed = [&](int s) -> const std::vector<int>& {
    return tree.segs[s].horizontal ? h_layers : v_layers;
  };

  // Random but deterministic cost tables.
  std::vector<std::array<double, 4>> seg_cost(num_segs);
  for (auto& row : seg_cost)
    for (auto& v : row) v = rng.uniform(0.0, 10.0);
  std::vector<std::array<double, 16>> via_cost(num_segs);
  for (auto& row : via_cost)
    for (auto& v : row) v = rng.uniform(0.0, 5.0);

  NetDpCosts costs;
  costs.seg_cost = [&](int s, int l) { return seg_cost[s][l]; };
  costs.root_via_cost = [&](int s, int l) { return 0.1 * l + 0.01 * s; };
  costs.via_cost = [&](int c, int lp, int lc) { return via_cost[c][lp * 4 + lc]; };

  auto total_of = [&](const std::vector<int>& pick) {
    double total = 0.0;
    for (int s = 0; s < num_segs; ++s) {
      total += costs.seg_cost(s, pick[s]);
      const int parent = tree.segs[s].parent;
      if (parent < 0) {
        total += costs.root_via_cost(s, pick[s]);
      } else {
        total += costs.via_cost(s, pick[parent], pick[s]);
      }
    }
    return total;
  };

  // Brute force over 2^num_segs combos (each segment has 2 options).
  double best = 1e300;
  std::vector<int> pick(num_segs);
  for (int mask = 0; mask < (1 << num_segs); ++mask) {
    for (int s = 0; s < num_segs; ++s) {
      pick[s] = allowed(s)[(mask >> s) & 1];
    }
    best = std::min(best, total_of(pick));
  }

  const std::vector<int> dp = solve_net_dp(tree, allowed, costs);
  EXPECT_NEAR(total_of(dp), best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, NetDpSweep, ::testing::Range(0, 24));

}  // namespace
}  // namespace cpla::assign
