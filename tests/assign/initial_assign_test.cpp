#include "src/assign/initial_assign.hpp"

#include <gtest/gtest.h>

#include "src/gen/synth.hpp"
#include "src/route/router.hpp"
#include "src/route/seg_tree.hpp"

namespace cpla::assign {
namespace {

AssignState routed_state(const grid::Design& design) {
  route::RoutingResult rr = route::route_all(design);
  std::vector<route::SegTree> trees;
  for (std::size_t n = 0; n < design.nets.size(); ++n) {
    trees.push_back(route::extract_tree(design.grid, design.nets[n], &rr.routes[n]));
  }
  return AssignState(&design, std::move(trees));
}

TEST(InitialAssign, AssignsEveryNetLegally) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 300;
  spec.num_layers = 4;
  spec.seed = 31;
  const grid::Design d = gen::generate(spec);
  AssignState state = routed_state(d);
  initial_assign(&state);

  for (int n = 0; n < state.num_nets(); ++n) {
    EXPECT_TRUE(state.assigned(n));
    const auto& layers = state.layers(n);
    for (const auto& seg : state.tree(n).segs) {
      EXPECT_EQ(d.grid.is_horizontal(layers[seg.id]), seg.horizontal);
    }
  }
}

TEST(InitialAssign, RespectsWireCapacityWhenFeasible) {
  // Lightly loaded design: zero wire overflow should be achievable.
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 120;
  spec.num_layers = 6;
  spec.tracks_per_layer = 12;
  spec.num_blockages = 0;
  spec.seed = 33;
  const grid::Design d = gen::generate(spec);
  AssignState state = routed_state(d);
  initial_assign(&state);
  EXPECT_EQ(state.wire_overflow(), 0);
}

TEST(InitialAssign, ViaCountIsReasonable) {
  // Each net needs at least (#segments - 1)-ish direction switches; the
  // assigner should not explode vias far beyond a small multiple of that.
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 150;
  spec.num_layers = 4;
  spec.seed = 35;
  const grid::Design d = gen::generate(spec);
  AssignState state = routed_state(d);
  initial_assign(&state);

  long total_segs = 0;
  for (int n = 0; n < state.num_nets(); ++n) {
    total_segs += static_cast<long>(state.tree(n).segs.size());
  }
  EXPECT_GT(state.via_count(), 0);
  // Loose sanity band: < 4 layer-crossings per segment on a 4-layer stack.
  EXPECT_LT(state.via_count(), 4 * total_segs + 1);
}

TEST(InitialAssign, Idempotent) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 16;
  spec.num_nets = 80;
  spec.num_layers = 4;
  spec.seed = 37;
  const grid::Design d = gen::generate(spec);
  AssignState state = routed_state(d);
  initial_assign(&state);
  const long ov1 = state.wire_overflow();
  const long vias1 = state.via_count();
  initial_assign(&state);  // re-running from the produced state
  EXPECT_LE(state.wire_overflow(), ov1);
  EXPECT_LE(std::labs(state.via_count() - vias1), vias1);  // same ballpark
}

}  // namespace
}  // namespace cpla::assign
