// EcoService behavior: submit/resolve against the engine contract,
// admission control (shed at the queue bound), within-batch coalescing,
// read-only degradation on journal faults, snapshot isolation with
// copy-on-write sharing, and supersede-driven resolve cancellation.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/eco/edit_script.hpp"
#include "src/eco/reroute.hpp"
#include "src/serve/codec.hpp"
#include "src/util/fault_inject.hpp"
#include "src/util/fault_sites.hpp"
#include "tests/serve/serve_test_util.hpp"

namespace cpla::serve {
namespace {

core::Prepared small_base() { return eco::make_bench(511, 12, 60); }

eco::Delta capacity_bump(const core::Prepared& bench, int x, int y, int delta_cap) {
  const auto& g = bench.design->grid;
  int layer = 0;
  while (!g.is_horizontal(layer)) ++layer;
  const int cap = g.edge_capacity(layer, g.h_edge_id(x, y));
  return eco::Delta::capacity_adjusted(layer, x, y, cap + delta_cap);
}

TEST(ServiceTest, SubmitAppliesAndResolveReportsTheLiveHash) {
  core::Prepared bench = small_base();
  ServeOptions opt;
  opt.eco.critical_ratio = 0.03;
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
  ASSERT_TRUE(service.start().is_ok());
  const int session = service.open_session().value();

  ASSERT_TRUE(service.submit(session, capacity_bump(bench, 2, 3, 2)).is_ok());
  const ResolveOutcome out = service.resolve(session);
  ASSERT_TRUE(out.status.is_ok());
  EXPECT_EQ(out.hash, service.snapshot()->hash);
  EXPECT_EQ(out.hash, hash_state(*bench.state, service.engine().critical()));

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.resolves, 1u);
  service.stop();
}

TEST(ServiceTest, InvalidDeltasAreCountedRejectedNotFatal) {
  core::Prepared bench = small_base();
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), ServeOptions{});
  ASSERT_TRUE(service.start().is_ok());
  const int session = service.open_session().value();

  // Out-of-range net: journal-compatible, engine-rejected.
  ASSERT_TRUE(service.submit(session, eco::Delta::net_removed(100000)).is_ok());
  ASSERT_TRUE(service.sync(session).is_ok());
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().applied, 0u);
  EXPECT_FALSE(service.read_only());  // bad input is not a durability failure
  service.stop();
}

TEST(ServiceTest, UnknownSessionsAreRefused) {
  core::Prepared bench = small_base();
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), ServeOptions{});
  ASSERT_TRUE(service.start().is_ok());
  EXPECT_EQ(service.submit(77, eco::Delta::net_removed(0)).status().code(),
            StatusCode::kBadInput);
  EXPECT_EQ(service.resolve(77).status.code(), StatusCode::kBadInput);
  service.stop();
  EXPECT_EQ(service.submit(0, eco::Delta::net_removed(0)).status().code(),
            StatusCode::kUnavailable);
}

TEST(ServiceTest, SessionLimitIsTheConnectionAdmissionControl) {
  core::Prepared bench = small_base();
  ServeOptions opt;
  opt.max_sessions = 2;
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
  ASSERT_TRUE(service.start().is_ok());
  const Result<int> a = service.open_session();
  const Result<int> b = service.open_session();
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(service.open_session().status().code(), StatusCode::kUnavailable);
  service.close_session(a.value());
  EXPECT_TRUE(service.open_session().is_ok());  // slot freed
  service.stop();
}

TEST(ServiceTest, FullQueueShedsSubmitsWithUnavailable) {
  core::Prepared bench = small_base();
  ServeOptions opt;
  opt.max_queue = 3;
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
  ASSERT_TRUE(service.start().is_ok());
  const int session = service.open_session().value();

  service.pause_worker(true);  // hold the queue so the bound is observable
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.submit(session, capacity_bump(bench, 1 + i, 1, 1)).is_ok());
  }
  const Result<std::uint64_t> shed = service.submit(session, capacity_bump(bench, 5, 1, 1));
  ASSERT_FALSE(shed.is_ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  service.pause_worker(false);
  ASSERT_TRUE(service.sync(session).is_ok());

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.applied, 3u);
  ASSERT_EQ(stats.per_session.count(session), 1u);
  EXPECT_EQ(stats.per_session.at(session).shed, 1u);
  EXPECT_EQ(stats.per_session.at(session).submitted, 3u);
  service.stop();
}

TEST(ServiceTest, SameKeyEditsCoalesceWithinABatch) {
  core::Prepared bench = small_base();
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), ServeOptions{});
  ASSERT_TRUE(service.start().is_ok());
  const int session = service.open_session().value();

  const auto& g = bench.design->grid;
  int layer = 0;
  while (!g.is_horizontal(layer)) ++layer;
  const int base_cap = g.edge_capacity(layer, g.h_edge_id(4, 4));

  service.pause_worker(true);  // force all five into one batch
  for (int bump = 1; bump <= 5; ++bump) {
    ASSERT_TRUE(service.submit(session, capacity_bump(bench, 4, 4, bump)).is_ok());
  }
  service.pause_worker(false);
  ASSERT_TRUE(service.sync(session).is_ok());

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.coalesced, 4u);  // last-wins: only the final bump applies
  EXPECT_EQ(stats.applied, 1u);
  // The surviving write is the LAST one.
  EXPECT_EQ(g.edge_capacity(layer, g.h_edge_id(4, 4)), base_cap + 5);
  service.stop();
}

TEST(ServiceTest, StructuralEditsDisableCoalescingForTheBatch) {
  core::Prepared bench = small_base();
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), ServeOptions{});
  ASSERT_TRUE(service.start().is_ok());
  const int session = service.open_session().value();

  service.pause_worker(true);
  ASSERT_TRUE(service.submit(session, capacity_bump(bench, 2, 2, 1)).is_ok());
  ASSERT_TRUE(service.submit(session, capacity_bump(bench, 2, 2, 2)).is_ok());
  ASSERT_TRUE(
      service.submit(session, eco::Delta::net_added(eco::make_two_pin_tree({1, 1}, {4, 4})))
          .is_ok());
  service.pause_worker(false);
  ASSERT_TRUE(service.sync(session).is_ok());

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.coalesced, 0u);  // the add made last-wins unsafe
  EXPECT_EQ(stats.applied, 3u);
  service.stop();
}

TEST(ServiceTest, JournalAppendFailureFlipsReadOnlyAndSubsequentWorkIsRefused) {
  TempDir dir;
  core::Prepared bench = small_base();
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                     durable_options(dir));
  ASSERT_TRUE(service.start().is_ok());
  const int session = service.open_session().value();

  ASSERT_TRUE(service.submit(session, capacity_bump(bench, 2, 2, 1)).is_ok());
  ASSERT_TRUE(service.sync(session).is_ok());
  const std::uint64_t hash_before = service.snapshot()->hash;

  FaultInjector::instance().arm(fault_sites::kServeJournalAppend, 0);
  ASSERT_TRUE(service.submit(session, capacity_bump(bench, 3, 3, 1)).is_ok());
  while (!service.read_only()) std::this_thread::yield();
  FaultInjector::instance().reset();

  // The failed delta was never applied — acknowledged state is intact.
  EXPECT_EQ(service.snapshot()->hash, hash_before);
  EXPECT_EQ(service.submit(session, capacity_bump(bench, 4, 4, 1)).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(service.resolve(session).status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.sync(session).code(), StatusCode::kUnavailable);
  // Reads keep working off the snapshot.
  EXPECT_NE(service.snapshot(), nullptr);
  EXPECT_TRUE(service.stats().read_only);
  service.stop();

  // Recovery truncates the torn tail and lands on the acknowledged state.
  core::Prepared fresh = eco::make_bench(511, 12, 60);
  EcoService recovered(fresh.design.get(), fresh.state.get(), fresh.rc.get(),
                       durable_options(dir));
  ASSERT_TRUE(recovered.start().is_ok());
  EXPECT_EQ(recovered.snapshot()->hash, hash_before);
  recovered.stop();
}

TEST(ServiceTest, SnapshotsAreImmutableAndShareUnchangedNets) {
  core::Prepared bench = small_base();
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), ServeOptions{});
  ASSERT_TRUE(service.start().is_ok());
  const int session = service.open_session().value();

  const std::shared_ptr<const StateSnapshot> before = service.snapshot();
  int reroutable = -1;
  for (int net = 0; net < bench.state->num_nets(); ++net) {
    if (eco::alternate_route(bench.state->tree(net)).is_ok()) {
      reroutable = net;
      break;
    }
  }
  ASSERT_GE(reroutable, 0);
  Request req;
  req.kind = RequestKind::kReroute;
  req.net = reroutable;
  ASSERT_TRUE(service.submit(session, req).is_ok());
  ASSERT_TRUE(service.sync(session).is_ok());

  const std::shared_ptr<const StateSnapshot> after = service.snapshot();
  ASSERT_NE(after, before);
  EXPECT_NE(after->hash, before->hash);
  // Copy-on-write: untouched nets share storage, the rerouted one does not.
  int shared = 0;
  for (std::size_t net = 0; net < before->layers.size(); ++net) {
    if (after->layers[net] == before->layers[net]) ++shared;
  }
  EXPECT_EQ(shared, static_cast<int>(before->layers.size()) - 1);
  EXPECT_NE(after->layers[static_cast<std::size_t>(reroutable)],
            before->layers[static_cast<std::size_t>(reroutable)]);
  service.stop();
}

TEST(ServiceTest, SupersededResolveIsCancelledRolledBackAndRetried) {
  core::Prepared bench = small_base();
  ServeOptions opt;
  opt.eco.critical_ratio = 0.03;
  opt.supersede_after = 1;  // any edit behind an in-flight resolve cancels it
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
  ASSERT_TRUE(service.start().is_ok());
  const int session = service.open_session().value();

  // Hammer edits from a side thread while resolves run; the bounded retry
  // loop must still complete every resolve (liveness under supersede).
  std::atomic<bool> stop_edits{false};
  std::thread hammer([&] {
    // Absolute capacities, no live-grid reads: the worker owns the mutable
    // state, so this thread must not call edge_capacity() mid-batch.
    int layer = 0;
    while (!bench.design->grid.is_horizontal(layer)) ++layer;
    int x = 0;
    while (!stop_edits.load()) {
      x = 1 + x % 9;
      (void)service.submit(session, eco::Delta::capacity_adjusted(layer, x, 2, 8 + x % 3));
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(service.resolve(session).status.is_ok());
  }
  stop_edits.store(true);
  hammer.join();
  service.stop();
  // Cancellation may or may not have triggered (timing), but the service
  // stayed live and consistent either way.
  EXPECT_GE(service.stats().resolves, 3u);
}

TEST(ServiceTest, ResolveMatchesADirectSessionOnTheSameEditStream) {
  // The service (no coalescing, so streams match 1:1) and a bare EcoSession
  // applying the identical deltas must land on identical bits.
  core::Prepared a = small_base();
  core::Prepared b = small_base();
  ServeOptions opt;
  opt.eco.critical_ratio = 0.03;
  opt.coalesce = false;
  EcoService service(a.design.get(), a.state.get(), a.rc.get(), opt);
  ASSERT_TRUE(service.start().is_ok());
  const int session = service.open_session().value();

  eco::EcoSession direct(b.design.get(), b.state.get(), b.rc.get(), opt.eco);
  const std::vector<eco::Delta> script =
      eco::make_edit_script(*b.state, direct.critical(), {.count = 10, .seed = 77});
  for (const eco::Delta& d : script) {
    ASSERT_TRUE(service.submit(session, d).is_ok());
    ASSERT_TRUE(direct.apply(d).is_ok());
  }
  const ResolveOutcome served = service.resolve(session);
  ASSERT_TRUE(served.status.is_ok());
  ASSERT_TRUE(direct.resolve().status.is_ok());

  EXPECT_EQ(served.hash, hash_state(*b.state, direct.critical()));
  eco::expect_assignments_equal(*a.state, *b.state);
  service.stop();
}

}  // namespace
}  // namespace cpla::serve
