// Concurrency suite (tsan label): 64 sessions hammering one service with
// mixed edits, resolves, syncs, and snapshot reads — no deadlock, no
// torn state, and the journal still replays to the exact final bits. A
// second case drives real AF_UNIX connections through the socket server.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/codec.hpp"
#include "src/serve/socket_server.hpp"
#include "tests/serve/serve_test_util.hpp"

namespace cpla::serve {
namespace {

TEST(ConcurrencyTest, SixtyFourSessionsKeepTheServiceConsistent) {
  constexpr int kSessions = 64;
  constexpr int kEditsPerSession = 6;
  TempDir dir;
  core::Prepared bench = eco::make_bench(701, 12, 60);

  // Pre-compute every delta while the state is quiescent: client threads
  // must never read the live grid/state (that is the worker's job).
  const auto& g = bench.design->grid;
  int h_layer = 0;
  while (!g.is_horizontal(h_layer)) ++h_layer;
  std::vector<std::vector<eco::Delta>> scripts(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    for (int i = 0; i < kEditsPerSession; ++i) {
      const int x = (s + i) % (g.xsize() - 1);
      const int y = (s * 3 + i) % g.ysize();
      const int cap = g.edge_capacity(h_layer, g.h_edge_id(x, y));
      scripts[s].push_back(eco::Delta::capacity_adjusted(h_layer, x, y, cap + 1 + (s + i) % 3));
    }
    // A criticality toggle per session exercises the ordered released-set.
    scripts[s].push_back(
        eco::Delta::criticality_changed((s * 7) % bench.state->num_nets(), s % 2 == 0));
  }

  ServeOptions opt = durable_options(dir);
  opt.max_sessions = kSessions;
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
  ASSERT_TRUE(service.start().is_ok());

  std::atomic<int> resolves_ok{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      const Result<int> session = service.open_session();
      if (!session.is_ok()) {
        failures.fetch_add(1);
        return;
      }
      for (const eco::Delta& d : scripts[s]) {
        if (!service.submit(session.value(), d).is_ok()) failures.fetch_add(1);
        if (service.snapshot() == nullptr) failures.fetch_add(1);  // reads never block
      }
      if (s % 8 == 0) {
        if (service.resolve(session.value()).status.is_ok()) resolves_ok.fetch_add(1);
      } else {
        if (!service.sync(session.value()).is_ok()) failures.fetch_add(1);
      }
      service.close_session(session.value());
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(resolves_ok.load(), kSessions / 8);
  EXPECT_FALSE(service.read_only());
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kSessions * (kEditsPerSession + 1)));
  EXPECT_EQ(stats.shed, 0u);
  const std::uint64_t final_hash = service.snapshot()->hash;
  service.stop();

  // The whole concurrent run must replay deterministically from its journal.
  core::Prepared fresh = eco::make_bench(701, 12, 60);
  Result<std::uint64_t> replayed = replay_journal(
      dir.path("journal.wal"), fresh.design.get(), fresh.state.get(), fresh.rc.get(), opt.eco);
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(replayed.value(), final_hash);
}

// --- socket front end --------------------------------------------------

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends one line and reads one reply line (blocking).
std::string roundtrip(int fd, const std::string& line) {
  const std::string out = line + "\n";
  if (::send(fd, out.data(), out.size(), MSG_NOSIGNAL) < 0) return "<send-failed>";
  std::string reply;
  char c = 0;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') return reply;
    reply.push_back(c);
  }
  return "<closed>";
}

TEST(ConcurrencyTest, SocketServerHandlesParallelConnections) {
  constexpr int kClients = 8;
  TempDir dir;
  core::Prepared bench = eco::make_bench(702, 12, 60);
  ServeOptions opt;
  opt.eco.critical_ratio = 0.03;
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
  ASSERT_TRUE(service.start().is_ok());
  SocketServer server(&service, dir.path("eco.sock"));
  ASSERT_TRUE(server.start().is_ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const int fd = connect_unix(dir.path("eco.sock"));
      if (fd < 0) {
        failures.fetch_add(1);
        return;
      }
      if (roundtrip(fd, "capacity 0 " + std::to_string(1 + i) + " 2 9").rfind("ok ", 0) != 0) {
        failures.fetch_add(1);
      }
      if (roundtrip(fd, "sync") != "ok") failures.fetch_add(1);
      const std::string hash = roundtrip(fd, "query hash");
      if (hash.rfind("ok ", 0) != 0 || hash.size() != 19) failures.fetch_add(1);
      if (roundtrip(fd, "bogus-verb") .rfind("err bad-input", 0) != 0) failures.fetch_add(1);
      if (roundtrip(fd, "quit") != "ok bye") failures.fetch_add(1);
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // One resolve over the socket to close the loop end to end.
  const int fd = connect_unix(dir.path("eco.sock"));
  ASSERT_GE(fd, 0);
  EXPECT_EQ(roundtrip(fd, "resolve").rfind("ok hash=", 0), 0u);
  ::close(fd);

  server.stop();
  service.stop();
}

TEST(ConcurrencyTest, SessionLimitRefusesTheExtraConnection) {
  TempDir dir;
  core::Prepared bench = eco::make_bench(703, 12, 40);
  ServeOptions opt;
  opt.max_sessions = 1;
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
  ASSERT_TRUE(service.start().is_ok());
  SocketServer server(&service, dir.path("eco.sock"));
  ASSERT_TRUE(server.start().is_ok());

  const int first = connect_unix(dir.path("eco.sock"));
  ASSERT_GE(first, 0);
  ASSERT_EQ(roundtrip(first, "sync"), "ok");  // session is live

  const int second = connect_unix(dir.path("eco.sock"));
  ASSERT_GE(second, 0);  // TCP-level accept still happens...
  std::string refusal;
  char c = 0;
  while (::recv(second, &c, 1, 0) == 1 && c != '\n') refusal.push_back(c);
  EXPECT_EQ(refusal.rfind("err unavailable", 0), 0u) << refusal;  // ...admission refuses
  ::close(second);
  ::close(first);
  server.stop();
  service.stop();
}

}  // namespace
}  // namespace cpla::serve
