// Units of the durability layer: byte codec roundtrips, CRC framing, scan
// semantics over torn and corrupted tails, repair idempotence, and atomic
// checkpoint write/load.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/eco/reroute.hpp"
#include "src/serve/checkpoint.hpp"
#include "src/serve/codec.hpp"
#include "src/serve/journal.hpp"
#include "src/util/fault_inject.hpp"
#include "src/util/fault_sites.hpp"
#include "tests/serve/serve_test_util.hpp"

namespace cpla::serve {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- codec -------------------------------------------------------------

TEST(CodecTest, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check string.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Chaining through the seed equals one pass over the concatenation.
  const std::uint32_t first = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, first), 0xCBF43926u);
}

TEST(CodecTest, PrimitiveRoundTripIsExact) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.f64(-1234.5678e-9);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.f64(), -1234.5678e-9);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(CodecTest, ReaderOverrunLatchesTheFailFlag) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0u);  // overrun: zeros out
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // stays failed
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, TreeAndDeltaRoundTrip) {
  const route::SegTree ell = eco::make_two_pin_tree({1, 2}, {6, 9});
  ByteWriter w;
  write_tree(&w, ell);
  ByteReader r(w.data());
  const route::SegTree back = read_tree(&r);
  ASSERT_TRUE(r.ok() && r.at_end());
  ASSERT_EQ(back.segs.size(), ell.segs.size());
  for (std::size_t i = 0; i < ell.segs.size(); ++i) {
    EXPECT_EQ(back.segs[i].a.x, ell.segs[i].a.x);
    EXPECT_EQ(back.segs[i].b.y, ell.segs[i].b.y);
    EXPECT_EQ(back.segs[i].horizontal, ell.segs[i].horizontal);
    EXPECT_EQ(back.segs[i].parent, ell.segs[i].parent);
  }
  ASSERT_EQ(back.sinks.size(), ell.sinks.size());

  const eco::Delta delta = eco::Delta::net_rerouted(3, ell, {1, 2});
  ByteWriter dw;
  write_delta(&dw, delta);
  ByteReader dr(dw.data());
  const eco::Delta dback = read_delta(&dr);
  ASSERT_TRUE(dr.ok() && dr.at_end());
  EXPECT_EQ(dback.kind, delta.kind);
  EXPECT_EQ(dback.net, delta.net);
  EXPECT_EQ(dback.layers, delta.layers);
  EXPECT_EQ(dback.tree.segs.size(), delta.tree.segs.size());
}

TEST(CodecTest, StateSerializationRoundTripsAndHashesStably) {
  core::Prepared a = eco::make_bench(31, 12, 40);
  core::Prepared b = eco::make_bench(31, 12, 40);
  core::CriticalSet ca = core::select_critical(*a.state, *a.rc, 0.05);
  core::CriticalSet cb;

  // Identical preparations hash identically before any transfer.
  const std::string blob = serialize_state(*a.state, ca);
  ASSERT_TRUE(restore_state(blob, b.design.get(), b.state.get(), &cb).is_ok());
  EXPECT_EQ(hash_state(*b.state, cb), hash_state(*a.state, ca));
  EXPECT_EQ(serialize_state(*b.state, cb), blob);

  // Any state difference moves the hash.
  a.state->set_layers(ca.nets.front(), a.state->layers(ca.nets.front()));
  core::CriticalSet cc = ca;
  cc.nets.pop_back();
  EXPECT_NE(hash_state(*a.state, cc), hash_state(*a.state, ca));
}

// --- journal frames ----------------------------------------------------

TEST(JournalTest, AppendScanRoundTrip) {
  TempDir dir;
  const std::string path = dir.path("j.wal");
  Journal j;
  ASSERT_TRUE(j.open(path).is_ok());
  ByteWriter g;
  g.u64(0x1122334455667788ull);
  ASSERT_TRUE(j.append(RecordType::kGenesis, 0, g.data()).is_ok());
  ASSERT_TRUE(j.append(RecordType::kDelta, 7, "payload").is_ok());
  ASSERT_TRUE(j.append(RecordType::kResolveAborted, 7, "").is_ok());
  ASSERT_TRUE(j.sync().is_ok());
  j.close();

  Result<Journal::ScanResult> scan = Journal::scan(path);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_FALSE(scan.value().torn_tail);
  ASSERT_EQ(scan.value().records.size(), 3u);
  EXPECT_EQ(scan.value().records[0].type, RecordType::kGenesis);
  EXPECT_EQ(scan.value().records[1].seq, 7u);
  EXPECT_EQ(scan.value().records[1].payload, "payload");
  EXPECT_EQ(scan.value().records[2].payload, "");
  EXPECT_EQ(scan.value().valid_bytes, std::filesystem::file_size(path));
}

TEST(JournalTest, MissingFileIsAnEmptyJournal) {
  TempDir dir;
  Result<Journal::ScanResult> scan = Journal::scan(dir.path("absent.wal"));
  ASSERT_TRUE(scan.is_ok());
  EXPECT_TRUE(scan.value().records.empty());
  EXPECT_FALSE(scan.value().torn_tail);
}

TEST(JournalTest, TornTailIsDetectedAndRepairTruncatesIt) {
  TempDir dir;
  const std::string path = dir.path("j.wal");
  const std::string good = encode_frame(RecordType::kDelta, 1, "alpha") +
                           encode_frame(RecordType::kDelta, 2, "beta");
  const std::string torn = encode_frame(RecordType::kDelta, 3, "gamma");
  write_file(path, good + torn.substr(0, torn.size() - 3));  // mid-crc cut

  Result<Journal::ScanResult> scan = Journal::scan(path);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_TRUE(scan.value().torn_tail);
  ASSERT_EQ(scan.value().records.size(), 2u);
  EXPECT_EQ(scan.value().valid_bytes, good.size());

  ASSERT_TRUE(Journal::repair(path).is_ok());
  EXPECT_EQ(std::filesystem::file_size(path), good.size());
  ASSERT_TRUE(Journal::repair(path).is_ok());  // idempotent
  Result<Journal::ScanResult> again = Journal::scan(path);
  ASSERT_TRUE(again.is_ok());
  EXPECT_FALSE(again.value().torn_tail);
  EXPECT_EQ(again.value().records.size(), 2u);
}

TEST(JournalTest, CorruptedByteStopsTheScanAtTheBadFrame) {
  TempDir dir;
  const std::string path = dir.path("j.wal");
  std::string bytes = encode_frame(RecordType::kDelta, 1, "alpha") +
                      encode_frame(RecordType::kDelta, 2, "beta");
  bytes[bytes.size() - 6] ^= 0x40;  // flip a payload byte of frame 2
  write_file(path, bytes);

  Result<Journal::ScanResult> scan = Journal::scan(path);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_TRUE(scan.value().torn_tail);
  ASSERT_EQ(scan.value().records.size(), 1u);
  EXPECT_EQ(scan.value().records[0].payload, "alpha");
}

TEST(JournalTest, AbsurdLengthFieldIsATornTailNotAnAllocation) {
  TempDir dir;
  const std::string path = dir.path("j.wal");
  std::string frame = encode_frame(RecordType::kDelta, 1, "x");
  // len field sits after magic+type+seq; patch it to ~4GiB.
  frame[16] = '\xff';
  frame[17] = '\xff';
  frame[18] = '\xff';
  frame[19] = '\x7f';
  write_file(path, frame);
  Result<Journal::ScanResult> scan = Journal::scan(path);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_TRUE(scan.value().torn_tail);
  EXPECT_TRUE(scan.value().records.empty());
}

TEST(JournalTest, ArmedAppendFaultTearsTheTailExactlyOnce) {
  TempDir dir;
  const std::string path = dir.path("j.wal");
  Journal j;
  ASSERT_TRUE(j.open(path).is_ok());
  ASSERT_TRUE(j.append(RecordType::kDelta, 1, "keep").is_ok());

  FaultInjector::instance().arm(fault_sites::kServeJournalAppend, 0);
  EXPECT_FALSE(j.append(RecordType::kDelta, 2, "torn-by-fault").is_ok());
  FaultInjector::instance().reset();
  j.close();

  // The fault wrote a deliberate half-frame: scan sees one record + tear.
  Result<Journal::ScanResult> scan = Journal::scan(path);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_TRUE(scan.value().torn_tail);
  ASSERT_EQ(scan.value().records.size(), 1u);
  EXPECT_EQ(scan.value().records[0].payload, "keep");
}

TEST(JournalTest, ArmedFsyncFaultFailsWithoutKillingTheFile) {
  TempDir dir;
  Journal j;
  ASSERT_TRUE(j.open(dir.path("j.wal")).is_ok());
  ASSERT_TRUE(j.append(RecordType::kDelta, 1, "a").is_ok());
  FaultInjector::instance().arm(fault_sites::kServeJournalFsync, 0);
  EXPECT_FALSE(j.sync().is_ok());
  FaultInjector::instance().reset();
  EXPECT_TRUE(j.sync().is_ok());
}

// --- checkpoints -------------------------------------------------------

Checkpoint sample_checkpoint() {
  Checkpoint c;
  c.seq = 41;
  c.record_count = 17;
  c.base_hash = 0xaaaabbbbccccddddull;
  c.state_hash = 0x1111222233334444ull;
  c.state_blob = std::string("\x00\x01\x02state-bytes\xff", 14);
  return c;
}

TEST(CheckpointTest, WriteLoadRoundTripIsExact) {
  TempDir dir;
  const std::string path = dir.path("c.ckpt");
  const Checkpoint c = sample_checkpoint();
  ASSERT_TRUE(write_checkpoint(path, c).is_ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // rename happened

  Result<Checkpoint> back = load_checkpoint(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().seq, c.seq);
  EXPECT_EQ(back.value().record_count, c.record_count);
  EXPECT_EQ(back.value().base_hash, c.base_hash);
  EXPECT_EQ(back.value().state_hash, c.state_hash);
  EXPECT_EQ(back.value().state_blob, c.state_blob);
}

TEST(CheckpointTest, CorruptOrTruncatedFilesAreRejected) {
  TempDir dir;
  const std::string path = dir.path("c.ckpt");
  ASSERT_TRUE(write_checkpoint(path, sample_checkpoint()).is_ok());

  std::string bytes = read_file(path);
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x01;
  write_file(path, flipped);
  EXPECT_FALSE(load_checkpoint(path).is_ok());

  write_file(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(load_checkpoint(path).is_ok());

  EXPECT_FALSE(load_checkpoint(dir.path("absent.ckpt")).is_ok());
}

TEST(CheckpointTest, ArmedWriteFaultSkipsTheWriteAndKeepsThePredecessor) {
  TempDir dir;
  const std::string path = dir.path("c.ckpt");
  ASSERT_TRUE(write_checkpoint(path, sample_checkpoint()).is_ok());

  Checkpoint newer = sample_checkpoint();
  newer.seq = 99;
  FaultInjector::instance().arm(fault_sites::kServeCheckpointWrite, 0);
  EXPECT_FALSE(write_checkpoint(path, newer).is_ok());
  FaultInjector::instance().reset();

  Result<Checkpoint> back = load_checkpoint(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().seq, 41u);  // previous checkpoint intact
}

}  // namespace
}  // namespace cpla::serve
