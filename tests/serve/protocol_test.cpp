// Line-protocol units: request parsing (the shared `--eco` grammar plus
// server verbs), delta materialization, and the in-process handle_line
// dispatcher the socket server and the chaos harness both ride on.

#include <gtest/gtest.h>

#include <string>

#include "src/serve/protocol.hpp"
#include "src/serve/socket_server.hpp"
#include "tests/serve/serve_test_util.hpp"

namespace cpla::serve {
namespace {

Request parse_ok(const std::string& line) {
  Result<Request> r = parse_request(line);
  EXPECT_TRUE(r.is_ok()) << line << ": " << r.status().to_string();
  return r.is_ok() ? r.value() : Request{};
}

TEST(ProtocolTest, ParsesEveryVerb) {
  const Request cap = parse_ok("capacity 2 3 4 9");
  EXPECT_EQ(cap.kind, RequestKind::kCapacity);
  EXPECT_EQ(cap.layer, 2);
  EXPECT_EQ(cap.x, 3);
  EXPECT_EQ(cap.y, 4);
  EXPECT_EQ(cap.cap, 9);

  EXPECT_EQ(parse_ok("release 5").kind, RequestKind::kRelease);
  EXPECT_EQ(parse_ok("demote 5").kind, RequestKind::kDemote);
  EXPECT_EQ(parse_ok("reroute 7").net, 7);
  const Request add = parse_ok("add 1 2 3 4");
  EXPECT_EQ(add.kind, RequestKind::kAdd);
  EXPECT_EQ(add.x2, 3);
  EXPECT_EQ(add.y2, 4);
  EXPECT_EQ(parse_ok("remove 9").kind, RequestKind::kRemove);

  EXPECT_EQ(parse_ok("resolve").deadline_ms, 0.0);
  EXPECT_EQ(parse_ok("resolve 250.5").deadline_ms, 250.5);
  EXPECT_EQ(parse_ok("sync").kind, RequestKind::kSync);
  EXPECT_EQ(parse_ok("query hash").query, "hash");
  EXPECT_EQ(parse_ok("query net 3").net, 3);
  EXPECT_EQ(parse_ok("quit").kind, RequestKind::kQuit);

  EXPECT_EQ(parse_ok("").kind, RequestKind::kEmpty);
  EXPECT_EQ(parse_ok("   ").kind, RequestKind::kEmpty);
  EXPECT_EQ(parse_ok("# a comment").kind, RequestKind::kEmpty);
}

TEST(ProtocolTest, MalformedLinesFailWithBadInput) {
  for (const char* bad : {"capacity 1 2", "release", "reroute x", "add 1 2 3",
                          "resolve -5", "query", "query bogus", "query net", "frobnicate 1"}) {
    Result<Request> r = parse_request(bad);
    ASSERT_FALSE(r.is_ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kBadInput) << bad;
  }
}

TEST(ProtocolTest, MaterializeBuildsTheSameDeltasAsTheCliGrammar) {
  core::Prepared bench = eco::make_bench(601, 12, 50);

  Result<eco::Delta> cap = materialize(parse_ok("capacity 0 2 3 7"), *bench.state);
  ASSERT_TRUE(cap.is_ok());
  EXPECT_EQ(cap.value().kind, eco::DeltaKind::kCapacityAdjusted);
  EXPECT_EQ(cap.value().cap, 7);

  Result<eco::Delta> rel = materialize(parse_ok("release 4"), *bench.state);
  ASSERT_TRUE(rel.is_ok());
  EXPECT_TRUE(rel.value().released);
  Result<eco::Delta> dem = materialize(parse_ok("demote 4"), *bench.state);
  ASSERT_TRUE(dem.is_ok());
  EXPECT_FALSE(dem.value().released);

  Result<eco::Delta> add = materialize(parse_ok("add 1 1 5 6"), *bench.state);
  ASSERT_TRUE(add.is_ok());
  EXPECT_EQ(add.value().kind, eco::DeltaKind::kNetAdded);
  EXPECT_EQ(add.value().tree.segs.size(), 2u);

  // Reroute of an out-of-range net is a materialization error.
  EXPECT_FALSE(materialize(parse_ok("reroute 100000"), *bench.state).is_ok());
  // Non-edit kinds cannot materialize.
  EXPECT_FALSE(materialize(parse_ok("sync"), *bench.state).is_ok());
}

TEST(ProtocolTest, HandleLineSpeaksTheReplyGrammar) {
  core::Prepared bench = eco::make_bench(602, 12, 50);
  ServeOptions opt;
  opt.eco.critical_ratio = 0.03;
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
  ASSERT_TRUE(service.start().is_ok());
  const int session = service.open_session().value();

  EXPECT_EQ(handle_line(&service, session, "# comment").text, "");
  EXPECT_EQ(handle_line(&service, session, "capacity 0 2 3 9").text, "ok 1");
  EXPECT_EQ(handle_line(&service, session, "sync").text, "ok");

  const LineReply resolve = handle_line(&service, session, "resolve");
  EXPECT_EQ(resolve.text.rfind("ok hash=", 0), 0u) << resolve.text;
  EXPECT_NE(resolve.text.find(" seq="), std::string::npos);

  const LineReply hash = handle_line(&service, session, "query hash");
  EXPECT_EQ(hash.text.rfind("ok ", 0), 0u);
  EXPECT_EQ(hash.text.size(), 3u + 16u);  // "ok " + 16 hex digits
  // The query answer matches the resolve reply.
  EXPECT_NE(resolve.text.find(hash.text.substr(3)), std::string::npos);

  const LineReply stats = handle_line(&service, session, "query stats");
  EXPECT_NE(stats.text.find("submitted=1"), std::string::npos) << stats.text;
  EXPECT_NE(stats.text.find("read_only=0"), std::string::npos);

  const LineReply net = handle_line(&service, session, "query net 0");
  EXPECT_EQ(net.text.rfind("ok", 0), 0u);
  EXPECT_EQ(handle_line(&service, session, "query net 99999").text.rfind("err bad-input", 0),
            0u);

  const LineReply bad = handle_line(&service, session, "capacity nope");
  EXPECT_EQ(bad.text.rfind("err bad-input: ", 0), 0u);
  EXPECT_FALSE(bad.quit);

  const LineReply quit = handle_line(&service, session, "quit");
  EXPECT_EQ(quit.text, "ok bye");
  EXPECT_TRUE(quit.quit);
  service.stop();
}

}  // namespace
}  // namespace cpla::serve
