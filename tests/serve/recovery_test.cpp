// Crash-recovery edge cases for the ECO service: empty journals,
// checkpoint-only recovery, torn final records (truncate-and-recover, not
// abort), a trailing kResolveStart completed on replay, restart
// bit-identity, and replay determinism across both partitioning shapes
// (quadtree refinement vs pure K x K).
//
// Every "restart" builds a FRESH base triple from the same generator seed
// — exactly what a real process restart does — and recovery must land the
// fresh triple on the pre-crash state, bit for bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "src/eco/edit_script.hpp"
#include "src/serve/checkpoint.hpp"
#include "src/serve/codec.hpp"
#include "src/serve/journal.hpp"
#include "tests/serve/serve_test_util.hpp"

namespace cpla::serve {
namespace {

constexpr std::uint64_t kSeed = 401;

core::Prepared fresh_base() { return eco::make_bench(kSeed, 12, 60); }

/// Submits a deterministic edit stream (eco::make_edit_script) through the
/// service and returns how many deltas went in.
int submit_script(EcoService* service, int session, int count, std::uint64_t seed) {
  // Generate against the *current* service state: pause the worker so the
  // state is quiescent while make_edit_script reads it (callers invoke this
  // only at barriers — after start/resolve/sync — so no batch is in flight).
  service->pause_worker(true);
  eco::EcoSession& engine = service->engine();
  const std::vector<eco::Delta> script =
      eco::make_edit_script(engine.state(), engine.critical(), {.count = count, .seed = seed});
  for (const eco::Delta& d : script) {
    EXPECT_TRUE(service->submit(session, d).is_ok());
  }
  service->pause_worker(false);
  return static_cast<int>(script.size());
}

TEST(RecoveryTest, FreshJournalStartsWithAGenesisRecord) {
  TempDir dir;
  core::Prepared bench = fresh_base();
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                     durable_options(dir));
  ASSERT_TRUE(service.start().is_ok());
  const std::uint64_t live_hash = service.snapshot()->hash;
  service.stop();

  Result<Journal::ScanResult> scan = Journal::scan(dir.path("journal.wal"));
  ASSERT_TRUE(scan.is_ok());
  ASSERT_EQ(scan.value().records.size(), 1u);
  EXPECT_EQ(scan.value().records[0].type, RecordType::kGenesis);
  ByteReader r(scan.value().records[0].payload);
  EXPECT_EQ(r.u64(), live_hash);
}

TEST(RecoveryTest, RestartFromTheJournalIsBitIdentical) {
  TempDir dir;
  std::uint64_t final_hash = 0;
  {
    core::Prepared bench = fresh_base();
    EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                       durable_options(dir));
    ASSERT_TRUE(service.start().is_ok());
    const int session = service.open_session().value();
    submit_script(&service, session, 8, 5);
    const ResolveOutcome out = service.resolve(session);
    ASSERT_TRUE(out.status.is_ok());
    submit_script(&service, session, 4, 6);  // un-resolved tail of edits
    ASSERT_TRUE(service.sync(session).is_ok());
    final_hash = service.snapshot()->hash;
    service.stop();
  }
  ASSERT_NE(final_hash, 0u);

  // Path 1: a restarted service recovers the fresh base to the same bits.
  {
    core::Prepared bench = fresh_base();
    EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                       durable_options(dir));
    ASSERT_TRUE(service.start().is_ok());
    EXPECT_EQ(service.snapshot()->hash, final_hash);
    service.stop();
  }
  // Path 2: the journal-only reference replay agrees.
  {
    core::Prepared bench = fresh_base();
    ServeOptions opt = durable_options(dir);
    Result<std::uint64_t> replayed = replay_journal(
        dir.path("journal.wal"), bench.design.get(), bench.state.get(), bench.rc.get(), opt.eco);
    ASSERT_TRUE(replayed.is_ok());
    EXPECT_EQ(replayed.value(), final_hash);
  }
}

TEST(RecoveryTest, TornFinalRecordIsTruncatedAndRecovered) {
  TempDir dir;
  std::uint64_t synced_hash = 0;
  {
    core::Prepared bench = fresh_base();
    EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                       durable_options(dir));
    ASSERT_TRUE(service.start().is_ok());
    const int session = service.open_session().value();
    submit_script(&service, session, 6, 9);
    ASSERT_TRUE(service.sync(session).is_ok());
    synced_hash = service.snapshot()->hash;
    service.stop();
  }

  // Tear the tail: half of a record, as a power cut mid-append leaves it.
  const std::string frame = encode_frame(RecordType::kDelta, 999, "never-finished");
  {
    std::ofstream app(dir.path("journal.wal"), std::ios::binary | std::ios::app);
    app.write(frame.data(), static_cast<std::streamsize>(frame.size() / 2));
  }

  core::Prepared bench = fresh_base();
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                     durable_options(dir));
  ASSERT_TRUE(service.start().is_ok());  // truncate-and-recover, not abort
  EXPECT_EQ(service.snapshot()->hash, synced_hash);
  service.stop();

  // The repair was physical: the journal scans clean afterwards.
  Result<Journal::ScanResult> scan = Journal::scan(dir.path("journal.wal"));
  ASSERT_TRUE(scan.is_ok());
  EXPECT_FALSE(scan.value().torn_tail);
}

TEST(RecoveryTest, CheckpointOnlyRecoveryRebuildsFromTheBlob) {
  TempDir dir;
  std::uint64_t resolved_hash = 0;
  {
    core::Prepared bench = fresh_base();
    EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                       durable_options(dir, /*checkpoint_every=*/1));
    ASSERT_TRUE(service.start().is_ok());
    const int session = service.open_session().value();
    submit_script(&service, session, 8, 11);
    ASSERT_TRUE(service.resolve(session).status.is_ok());
    resolved_hash = service.snapshot()->hash;
    EXPECT_EQ(service.stats().checkpoints, 1u);
    service.stop();
  }

  // The journal is gone; only the checkpoint survives.
  std::filesystem::remove(dir.path("journal.wal"));

  {
    core::Prepared bench = fresh_base();
    EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                       durable_options(dir, 1));
    ASSERT_TRUE(service.start().is_ok());
    EXPECT_EQ(service.snapshot()->hash, resolved_hash);
    service.stop();
  }

  // The rebuilt journal must pair with a re-written checkpoint, so a
  // SECOND restart (crashing again before any new checkpoint) still works.
  {
    core::Prepared bench = fresh_base();
    EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                       durable_options(dir, 1));
    ASSERT_TRUE(service.start().is_ok());
    EXPECT_EQ(service.snapshot()->hash, resolved_hash);
    service.stop();
  }
}

TEST(RecoveryTest, CheckpointPlusJournalSuffixReplays) {
  TempDir dir;
  std::uint64_t final_hash = 0;
  {
    core::Prepared bench = fresh_base();
    EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                       durable_options(dir, /*checkpoint_every=*/1));
    ASSERT_TRUE(service.start().is_ok());
    const int session = service.open_session().value();
    submit_script(&service, session, 6, 13);
    ASSERT_TRUE(service.resolve(session).status.is_ok());  // checkpoint here
    submit_script(&service, session, 5, 14);               // suffix past it
    ASSERT_TRUE(service.sync(session).is_ok());
    final_hash = service.snapshot()->hash;
    service.stop();
  }

  core::Prepared bench = fresh_base();
  EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                     durable_options(dir, 1));
  ASSERT_TRUE(service.start().is_ok());
  EXPECT_EQ(service.snapshot()->hash, final_hash);
  service.stop();
}

TEST(RecoveryTest, TrailingResolveStartIsCompletedOnRecovery) {
  TempDir dir;
  {
    core::Prepared bench = fresh_base();
    EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                       durable_options(dir));
    ASSERT_TRUE(service.start().is_ok());
    const int session = service.open_session().value();
    submit_script(&service, session, 8, 17);
    ASSERT_TRUE(service.sync(session).is_ok());
    service.stop();
  }

  // The crash left a fsynced kResolveStart with no outcome record — the
  // exact state a SIGKILL between the marker fsync and kResolveDone leaves.
  {
    ByteWriter deadline;
    deadline.f64(0.0);
    const std::string frame = encode_frame(RecordType::kResolveStart, 8, deadline.data());
    std::ofstream app(dir.path("journal.wal"), std::ios::binary | std::ios::app);
    app.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }

  std::uint64_t recovered_hash = 0;
  {
    core::Prepared bench = fresh_base();
    EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                       durable_options(dir));
    ASSERT_TRUE(service.start().is_ok());
    recovered_hash = service.snapshot()->hash;
    EXPECT_EQ(service.snapshot()->resolves, 1u);  // the promised resolve ran
    service.stop();
  }

  // The independent replay path promises the identical completed resolve.
  core::Prepared bench = fresh_base();
  ServeOptions opt = durable_options(dir);
  Result<std::uint64_t> replayed = replay_journal(
      dir.path("journal.wal"), bench.design.get(), bench.state.get(), bench.rc.get(), opt.eco);
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(replayed.value(), recovered_hash);
}

TEST(RecoveryTest, MismatchedBaseDesignIsRefused) {
  TempDir dir;
  {
    core::Prepared bench = fresh_base();
    EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(),
                       durable_options(dir));
    ASSERT_TRUE(service.start().is_ok());
    service.stop();
  }
  core::Prepared other = eco::make_bench(kSeed + 1, 12, 60);
  EcoService service(other.design.get(), other.state.get(), other.rc.get(),
                     durable_options(dir));
  const Status st = service.start();
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kBadInput);
  EXPECT_FALSE(service.running());
}

TEST(RecoveryTest, ReplayIsDeterministicUnderBothPartitioningShapes) {
  // Quadtree refinement (the default max_segments) and pure K x K (a
  // budget so large no leaf ever splits) produce different optimization
  // trajectories — each must still replay to its own run bit-identically.
  for (const int max_segments : {10, 1 << 20}) {
    TempDir dir;
    ServeOptions opt = durable_options(dir);
    opt.eco.flow.partition.max_segments = max_segments;

    std::uint64_t final_hash = 0;
    {
      core::Prepared bench = fresh_base();
      EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
      ASSERT_TRUE(service.start().is_ok());
      const int session = service.open_session().value();
      submit_script(&service, session, 6, 23);
      ASSERT_TRUE(service.resolve(session).status.is_ok());
      final_hash = service.snapshot()->hash;
      service.stop();
    }

    core::Prepared bench = fresh_base();
    EcoService service(bench.design.get(), bench.state.get(), bench.rc.get(), opt);
    ASSERT_TRUE(service.start().is_ok());
    EXPECT_EQ(service.snapshot()->hash, final_hash) << "max_segments=" << max_segments;
    service.stop();
  }
}

}  // namespace
}  // namespace cpla::serve
