#pragma once

// Shared fixtures for the serve suites: the eco bench makers plus a
// self-cleaning scratch directory for journal and checkpoint files.

#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/serve/service.hpp"
#include "tests/eco/eco_test_util.hpp"

namespace cpla::serve {

class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "cpla_serve_test.XXXXXX").string();
    const char* made = ::mkdtemp(tmpl.data());
    dir_ = made != nullptr ? made : std::filesystem::temp_directory_path().string();
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  std::string path(const std::string& name) const {
    return (std::filesystem::path(dir_) / name).string();
  }

 private:
  std::string dir_;
};

/// Durability-enabled options rooted in `dir` (journal + per-resolve
/// checkpoints) over a small critical set, suitable for the small benches.
inline ServeOptions durable_options(const TempDir& dir, int checkpoint_every = 0) {
  ServeOptions opt;
  opt.eco.critical_ratio = 0.03;
  opt.journal_path = dir.path("journal.wal");
  if (checkpoint_every > 0) {
    opt.checkpoint_path = dir.path("state.ckpt");
    opt.checkpoint_every = checkpoint_every;
  }
  return opt;
}

}  // namespace cpla::serve
