#include "src/grid/design.hpp"

#include <gtest/gtest.h>

namespace cpla::grid {
namespace {

Net make_net(std::vector<Pin> pins) {
  Net net;
  net.id = 0;
  net.pins = std::move(pins);
  return net;
}

TEST(Net, HpwlOfBoundingBox) {
  EXPECT_EQ(make_net({{0, 0, 0}, {3, 4, 0}}).hpwl(), 7);
  EXPECT_EQ(make_net({{2, 2, 0}}).hpwl(), 0);
  EXPECT_EQ(make_net({}).hpwl(), 0);
  // Interior pins don't change the bounding box.
  EXPECT_EQ(make_net({{0, 0, 0}, {5, 5, 0}, {2, 3, 0}}).hpwl(), 10);
}

TEST(Net, DistinctCellsDeduplicates) {
  const Net net = make_net({{1, 1, 0}, {1, 1, 2}, {2, 2, 0}, {1, 1, 0}});
  const auto cells = net.distinct_cells();
  ASSERT_EQ(cells.size(), 2u);  // (1,1) twice at different layers still one cell
  EXPECT_EQ(cells[0].x, 1);
  EXPECT_EQ(cells[1].x, 2);
}

TEST(Net, DistinctCellsPreservesDriverFirst) {
  const Net net = make_net({{5, 5, 0}, {1, 1, 0}, {5, 5, 0}});
  const auto cells = net.distinct_cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].x, 5);  // driver's cell stays first
}

TEST(GeomParams, ViasPerTrackScalesWithGeometry) {
  GeomParams g;
  g.wire_width = 2.0;
  g.wire_spacing = 2.0;
  g.via_width = 1.0;
  g.via_spacing = 1.0;
  g.tile_width = 8.0;
  // (2+2)*8 / (1+1)^2 = 8.
  EXPECT_EQ(g.vias_per_track(), 8);
  g.via_spacing = 3.0;  // (2+2)*8 / 16 = 2
  EXPECT_EQ(g.vias_per_track(), 2);
}

}  // namespace
}  // namespace cpla::grid
