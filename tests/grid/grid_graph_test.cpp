#include "src/grid/grid_graph.hpp"

#include <gtest/gtest.h>

#include "src/grid/layer_stack.hpp"

namespace cpla::grid {
namespace {

GridGraph make_grid(int xs = 8, int ys = 6, int layers = 4) {
  return GridGraph(xs, ys, make_layer_stack(layers), default_geom());
}

TEST(LayerStack, AlternatingDirections) {
  const auto stack = make_layer_stack(6);
  ASSERT_EQ(stack.size(), 6u);
  for (int l = 0; l < 6; ++l) {
    EXPECT_EQ(stack[l].horizontal, l % 2 == 0) << l;
  }
}

TEST(LayerStack, ResistanceDecreasesWithHeight) {
  const auto stack = make_layer_stack(8);
  for (int l = 1; l < 8; ++l) {
    EXPECT_LT(stack[l].unit_res, stack[l - 1].unit_res);
    EXPECT_LE(stack[l].unit_cap, stack[l - 1].unit_cap);
  }
}

TEST(GridGraph, EdgeCounts) {
  const GridGraph g = make_grid(8, 6, 4);
  EXPECT_EQ(g.num_h_edges(), 7 * 6);
  EXPECT_EQ(g.num_v_edges(), 8 * 5);
  EXPECT_EQ(g.num_cells(), 48);
}

TEST(GridGraph, EdgeIdsAreUniqueAndInRange) {
  const GridGraph g = make_grid(5, 4, 2);
  std::vector<bool> seen_h(g.num_h_edges(), false);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const int id = g.h_edge_id(x, y);
      ASSERT_GE(id, 0);
      ASSERT_LT(id, g.num_h_edges());
      EXPECT_FALSE(seen_h[id]);
      seen_h[id] = true;
    }
  }
  std::vector<bool> seen_v(g.num_v_edges(), false);
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 3; ++y) {
      const int id = g.v_edge_id(x, y);
      ASSERT_GE(id, 0);
      ASSERT_LT(id, g.num_v_edges());
      EXPECT_FALSE(seen_v[id]);
      seen_v[id] = true;
    }
  }
}

TEST(GridGraph, CapacityRoundTrip) {
  GridGraph g = make_grid();
  g.fill_layer_capacity(0, 7);
  EXPECT_EQ(g.edge_capacity(0, g.h_edge_id(3, 2)), 7);
  g.set_edge_capacity(0, g.h_edge_id(3, 2), 2);
  EXPECT_EQ(g.edge_capacity(0, g.h_edge_id(3, 2)), 2);
  EXPECT_EQ(g.edge_capacity(0, g.h_edge_id(2, 2)), 7);
}

TEST(GridGraph, ViaCapacityEqnOne) {
  // Eqn (1): cap_g = floor((ww+ws)*TileW*(cap_e0+cap_e1) / (vw+vs)^2).
  GridGraph g = make_grid(8, 6, 4);
  g.fill_layer_capacity(0, 10);
  const GeomParams& geom = g.geom();
  // Interior cell: both incident h-edges at capacity 10.
  const double expected = (geom.wire_width + geom.wire_spacing) * geom.tile_width * 20.0 /
                          ((geom.via_width + geom.via_spacing) * (geom.via_width + geom.via_spacing));
  EXPECT_EQ(g.via_capacity(0, 3, 2), static_cast<int>(expected));
}

TEST(GridGraph, ViaCapacityBoundaryUsesOneEdge) {
  GridGraph g = make_grid(8, 6, 4);
  g.fill_layer_capacity(0, 10);
  // x=0 has only the right-side h-edge.
  EXPECT_LT(g.via_capacity(0, 0, 2), g.via_capacity(0, 3, 2));
  EXPECT_EQ(g.via_capacity(0, 0, 2), g.via_capacity(0, 7, 2));  // symmetric corners
}

TEST(GridGraph, ViaCapacityZeroWhenEdgesFull) {
  GridGraph g = make_grid(8, 6, 4);
  // Capacity 0 edges -> no via sites (Eqn (1) numerator is 0).
  EXPECT_EQ(g.via_capacity(1, 3, 2), 0);
}

TEST(GridGraph, ProjectedCapacitySumsMatchingLayers) {
  GridGraph g = make_grid(8, 6, 4);  // layers 0,2 horizontal; 1,3 vertical
  g.fill_layer_capacity(0, 3);
  g.fill_layer_capacity(2, 5);
  g.fill_layer_capacity(1, 7);
  g.fill_layer_capacity(3, 11);
  EXPECT_EQ(g.projected_capacity_h(2, 2), 8);
  EXPECT_EQ(g.projected_capacity_v(2, 2), 18);
}

TEST(GridGraph, ViasPerTrack) {
  GeomParams geom = default_geom();  // (1+1)*10 / (1+1)^2 = 5
  EXPECT_EQ(geom.vias_per_track(), 5);
}

TEST(GridGraph, OutOfRangeEdgeAborts) {
  const GridGraph g = make_grid(5, 4, 2);
  EXPECT_DEATH(g.h_edge_id(4, 0), "CPLA_ASSERT");  // x must be < xsize-1
  EXPECT_DEATH(g.v_edge_id(0, 3), "CPLA_ASSERT");
}

}  // namespace
}  // namespace cpla::grid
