#include "src/core/critical.hpp"

#include "src/core/flow.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"

namespace cpla::core {
namespace {

Prepared bench() {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 300;
  spec.num_layers = 6;
  spec.seed = 111;
  return prepare(gen::generate(spec));
}

TEST(SelectByBudget, ReleasesExactlyTheViolators) {
  Prepared run = bench();
  const auto& state = *run.state;
  const auto& rc = *run.rc;

  // Pick a budget at the delay of the ~20th worst net.
  std::vector<double> delays;
  for (int n = 0; n < state.num_nets(); ++n) {
    if (state.tree(n).segs.empty()) continue;
    delays.push_back(timing::critical_delay(state.tree(n), state.layers(n), rc));
  }
  std::sort(delays.rbegin(), delays.rend());
  ASSERT_GT(delays.size(), 25u);
  const double budget = delays[20];

  const CriticalSet cs = select_by_budget(state, rc, budget);
  EXPECT_EQ(cs.nets.size(), 20u);  // strictly-above-budget nets
  // Every released net really violates; every unreleased net meets budget.
  for (int n = 0; n < state.num_nets(); ++n) {
    if (state.tree(n).segs.empty()) continue;
    const double d = timing::critical_delay(state.tree(n), state.layers(n), rc);
    EXPECT_EQ(static_cast<bool>(cs.released[n]), d > budget) << n;
  }
  // Sorted worst-first.
  for (std::size_t i = 1; i < cs.nets.size(); ++i) {
    const double a =
        timing::critical_delay(state.tree(cs.nets[i - 1]), state.layers(cs.nets[i - 1]), rc);
    const double b =
        timing::critical_delay(state.tree(cs.nets[i]), state.layers(cs.nets[i]), rc);
    EXPECT_GE(a, b);
  }
}

TEST(SelectByBudget, LooseBudgetReleasesNothing) {
  Prepared run = bench();
  const CriticalSet cs = select_by_budget(*run.state, *run.rc, 1e18);
  EXPECT_TRUE(cs.nets.empty());
}

TEST(SelectByBudget, ZeroBudgetReleasesEverythingRoutable) {
  Prepared run = bench();
  const CriticalSet cs = select_by_budget(*run.state, *run.rc, 0.0);
  int routable = 0;
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (!run.state->tree(n).segs.empty()) ++routable;
  }
  EXPECT_EQ(static_cast<int>(cs.nets.size()), routable);
}

TEST(SelectByBudget, FeedsCplaFlow) {
  Prepared run = bench();
  std::vector<double> delays;
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (run.state->tree(n).segs.empty()) continue;
    delays.push_back(
        timing::critical_delay(run.state->tree(n), run.state->layers(n), *run.rc));
  }
  std::sort(delays.rbegin(), delays.rend());
  const double budget = delays[10];
  const CriticalSet cs = select_by_budget(*run.state, *run.rc, budget);
  CplaOptions opt;
  opt.max_rounds = 2;
  const CplaResult r = run_cpla(run.state.get(), *run.rc, cs, opt);
  EXPECT_LE(r.metrics.max_tcp, delays[0] * 1.0001);  // never regresses the worst
}

sta::TimingGraph build_graph(const Prepared& run, const sta::CornerSet& set) {
  sta::TimingGraph graph;
  graph.build(*run.state, set, sta::TimingGraph::Options{});
  return graph;
}

TEST(SelectCriticalSta, ReleasesTheWorstSlackNetsWorstFirst) {
  Prepared run = bench();
  const sta::CornerSet set = sta::CornerSet::single(*run.rc);
  const sta::TimingGraph graph = build_graph(run, set);

  const double ratio = 0.05;
  const CriticalSet cs = select_critical(*run.state, graph, ratio);
  const std::size_t want =
      static_cast<std::size_t>(std::ceil(ratio * run.state->num_nets()));
  ASSERT_EQ(cs.nets.size(), want);

  // Worst slack first, and every unreleased routable net is no more
  // critical than the released tail.
  for (std::size_t i = 1; i < cs.nets.size(); ++i) {
    EXPECT_LE(graph.net_slack(cs.nets[i - 1]), graph.net_slack(cs.nets[i]));
  }
  const double tail = graph.net_slack(cs.nets.back());
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (run.state->tree(n).segs.empty() || cs.released[n]) continue;
    EXPECT_GE(graph.net_slack(n), tail) << n;
  }
}

TEST(SelectByBudgetSta, ReleasesExactlyTheNegativeSlackNets) {
  Prepared run = bench();
  // A fixed-budget corner tight enough that some nets violate: required at
  // half the worst endpoint arrival of the derived corner.
  const sta::CornerSet probe_set = sta::CornerSet::single(*run.rc);
  sta::TimingGraph probe;
  probe.build(*run.state, probe_set, sta::TimingGraph::Options{});
  const double budget = probe.corner_required(0) * 0.5;

  const sta::CornerSet set(*run.rc, {sta::RcCorner{"tight", 1.0, 1.0, 1.0, budget}});
  const sta::TimingGraph graph = build_graph(run, set);

  const CriticalSet cs = select_by_budget(*run.state, graph);
  ASSERT_FALSE(cs.nets.empty());
  for (const int n : cs.nets) EXPECT_LT(graph.net_slack(n), 0.0) << n;
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (run.state->tree(n).segs.empty() || !graph.has_net(n)) continue;
    EXPECT_EQ(static_cast<bool>(cs.released[n]), graph.net_slack(n) < 0.0) << n;
  }
}

TEST(SelectCriticalSta, FlowRediscoversThroughAnAttachedGraph) {
  Prepared run = bench();
  const sta::CornerSet set = sta::CornerSet::single(*run.rc);
  sta::TimingGraph graph;
  graph.build(*run.state, set, sta::TimingGraph::Options{});

  const CriticalSet entry = select_critical(*run.state, graph, 0.02);
  CplaOptions opt;
  opt.max_rounds = 2;
  opt.sta_graph = &graph;
  const CplaResult r = run_cpla(run.state.get(), *run.rc, entry, opt);
  EXPECT_GE(r.rounds, 1);

  // The flow's exit contract: the attached graph is current for the state
  // it landed on — bit-identical to a from-scratch build.
  sta::TimingGraph fresh;
  fresh.build(*run.state, set, sta::TimingGraph::Options{});
  ASSERT_EQ(fresh.num_nodes(), graph.num_nodes());
  for (int v = 0; v < fresh.num_nodes(); ++v) {
    EXPECT_EQ(graph.worst_slack(v), fresh.worst_slack(v)) << v;
  }
}

}  // namespace
}  // namespace cpla::core
