#include "src/core/critical.hpp"

#include "src/core/flow.hpp"

#include <gtest/gtest.h>

#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"

namespace cpla::core {
namespace {

Prepared bench() {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 300;
  spec.num_layers = 6;
  spec.seed = 111;
  return prepare(gen::generate(spec));
}

TEST(SelectByBudget, ReleasesExactlyTheViolators) {
  Prepared run = bench();
  const auto& state = *run.state;
  const auto& rc = *run.rc;

  // Pick a budget at the delay of the ~20th worst net.
  std::vector<double> delays;
  for (int n = 0; n < state.num_nets(); ++n) {
    if (state.tree(n).segs.empty()) continue;
    delays.push_back(timing::critical_delay(state.tree(n), state.layers(n), rc));
  }
  std::sort(delays.rbegin(), delays.rend());
  ASSERT_GT(delays.size(), 25u);
  const double budget = delays[20];

  const CriticalSet cs = select_by_budget(state, rc, budget);
  EXPECT_EQ(cs.nets.size(), 20u);  // strictly-above-budget nets
  // Every released net really violates; every unreleased net meets budget.
  for (int n = 0; n < state.num_nets(); ++n) {
    if (state.tree(n).segs.empty()) continue;
    const double d = timing::critical_delay(state.tree(n), state.layers(n), rc);
    EXPECT_EQ(static_cast<bool>(cs.released[n]), d > budget) << n;
  }
  // Sorted worst-first.
  for (std::size_t i = 1; i < cs.nets.size(); ++i) {
    const double a =
        timing::critical_delay(state.tree(cs.nets[i - 1]), state.layers(cs.nets[i - 1]), rc);
    const double b =
        timing::critical_delay(state.tree(cs.nets[i]), state.layers(cs.nets[i]), rc);
    EXPECT_GE(a, b);
  }
}

TEST(SelectByBudget, LooseBudgetReleasesNothing) {
  Prepared run = bench();
  const CriticalSet cs = select_by_budget(*run.state, *run.rc, 1e18);
  EXPECT_TRUE(cs.nets.empty());
}

TEST(SelectByBudget, ZeroBudgetReleasesEverythingRoutable) {
  Prepared run = bench();
  const CriticalSet cs = select_by_budget(*run.state, *run.rc, 0.0);
  int routable = 0;
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (!run.state->tree(n).segs.empty()) ++routable;
  }
  EXPECT_EQ(static_cast<int>(cs.nets.size()), routable);
}

TEST(SelectByBudget, FeedsCplaFlow) {
  Prepared run = bench();
  std::vector<double> delays;
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (run.state->tree(n).segs.empty()) continue;
    delays.push_back(
        timing::critical_delay(run.state->tree(n), run.state->layers(n), *run.rc));
  }
  std::sort(delays.rbegin(), delays.rend());
  const double budget = delays[10];
  const CriticalSet cs = select_by_budget(*run.state, *run.rc, budget);
  CplaOptions opt;
  opt.max_rounds = 2;
  const CplaResult r = run_cpla(run.state.get(), *run.rc, cs, opt);
  EXPECT_LE(r.metrics.max_tcp, delays[0] * 1.0001);  // never regresses the worst
}

}  // namespace
}  // namespace cpla::core
