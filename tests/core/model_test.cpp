#include "src/core/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/critical.hpp"
#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"

namespace cpla::core {
namespace {

class ModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen::SynthSpec spec;
    spec.xsize = spec.ysize = 24;
    spec.num_nets = 250;
    spec.num_layers = 6;
    spec.seed = 41;
    prepared_ = new Prepared(prepare(gen::generate(spec)));
    critical_ = new CriticalSet(select_critical(*prepared_->state, *prepared_->rc, 0.05));
  }
  static void TearDownTestSuite() {
    delete critical_;
    delete prepared_;
    critical_ = nullptr;
    prepared_ = nullptr;
  }

  static std::unordered_map<int, timing::NetTiming> timings() {
    std::unordered_map<int, timing::NetTiming> out;
    for (int net : critical_->nets) {
      out.emplace(net, timing::compute_timing(prepared_->state->tree(net),
                                              prepared_->state->layers(net), *prepared_->rc));
    }
    return out;
  }

  static std::vector<SegRef> all_refs() {
    std::vector<SegRef> refs;
    for (int net : critical_->nets) {
      for (const auto& seg : prepared_->state->tree(net).segs) {
        refs.push_back(SegRef{net, seg.id, {(seg.a.x + seg.b.x) / 2, (seg.a.y + seg.b.y) / 2}});
      }
    }
    return refs;
  }

  static Prepared* prepared_;
  static CriticalSet* critical_;
};

Prepared* ModelTest::prepared_ = nullptr;
CriticalSet* ModelTest::critical_ = nullptr;

TEST_F(ModelTest, CriticalSelectionPicksWorstNets) {
  ASSERT_FALSE(critical_->nets.empty());
  const auto& state = *prepared_->state;
  const auto& rc = *prepared_->rc;
  // Released nets are sorted worst-first.
  double prev = 1e300;
  for (int net : critical_->nets) {
    const double d = timing::critical_delay(state.tree(net), state.layers(net), rc);
    EXPECT_LE(d, prev + 1e-9);
    prev = d;
  }
  // Any released net is at least as slow as every unreleased net.
  double max_unreleased = 0.0;
  for (int n = 0; n < state.num_nets(); ++n) {
    if (critical_->released[n] || state.tree(n).segs.empty()) continue;
    max_unreleased = std::max(
        max_unreleased, timing::critical_delay(state.tree(n), state.layers(n), rc));
  }
  EXPECT_GE(prev, max_unreleased - 1e-9);
}

TEST_F(ModelTest, BuildsConsistentProblem) {
  const auto t = timings();
  const auto refs = all_refs();
  PartitionOptions popt;
  const PartitionResult parts =
      partition(prepared_->design->grid.xsize(), prepared_->design->grid.ysize(), refs, popt);
  ASSERT_FALSE(parts.leaves.empty());

  int total_vars = 0;
  for (const auto& leaf : parts.leaves) {
    const PartitionProblem p =
        build_partition_problem(*prepared_->state, *prepared_->rc, t, leaf, {});
    total_vars += static_cast<int>(p.vars.size());
    EXPECT_EQ(p.vars.size(), leaf.segments.size());

    for (const auto& var : p.vars) {
      ASSERT_FALSE(var.layers.empty());
      ASSERT_EQ(var.cost.size(), var.layers.size());
      // Current layer must remain available.
      EXPECT_NE(std::find(var.layers.begin(), var.layers.end(), var.current_layer),
                var.layers.end());
      const bool horizontal = prepared_->state->tree(var.net).segs[var.seg].horizontal;
      for (std::size_t k = 0; k < var.layers.size(); ++k) {
        EXPECT_EQ(prepared_->design->grid.is_horizontal(var.layers[k]), horizontal);
        EXPECT_TRUE(std::isfinite(var.cost[k]));
        EXPECT_GE(var.cost[k], 0.0);
      }
      EXPECT_GT(var.weight, 0.0);
      EXPECT_LE(var.weight, 1.0);
    }
    for (const auto& pair : p.pairs) {
      ASSERT_GE(pair.child, 0);
      ASSERT_LT(pair.child, static_cast<int>(p.vars.size()));
      ASSERT_GE(pair.parent, 0);
      ASSERT_LT(pair.parent, static_cast<int>(p.vars.size()));
      // The pair's segments really are parent/child in the tree.
      const auto& cseg = prepared_->state->tree(p.vars[pair.child].net).segs[p.vars[pair.child].seg];
      EXPECT_EQ(cseg.parent, p.vars[pair.parent].seg);
      EXPECT_EQ(p.vars[pair.child].net, p.vars[pair.parent].net);
      EXPECT_GE(pair.scale, 0.0);
    }
    for (const auto& row : p.cap_rows) {
      EXPECT_GE(row.cap_remaining, 0);
      // Pruning: rows only exist where the members could overflow.
      EXPECT_GT(static_cast<int>(row.members.size()), row.cap_remaining);
      for (int m : row.members) {
        ASSERT_GE(m, 0);
        ASSERT_LT(m, static_cast<int>(p.vars.size()));
      }
    }
  }
  EXPECT_EQ(total_vars, static_cast<int>(refs.size()));
}

TEST_F(ModelTest, PairCostZeroOnSameLayerAndGrowsWithSpan) {
  const auto t = timings();
  const auto refs = all_refs();
  const PartitionResult parts =
      partition(prepared_->design->grid.xsize(), prepared_->design->grid.ysize(), refs, {});
  for (const auto& leaf : parts.leaves) {
    const PartitionProblem p =
        build_partition_problem(*prepared_->state, *prepared_->rc, t, leaf, {});
    for (const auto& pair : p.pairs) {
      EXPECT_DOUBLE_EQ(p.pair_cost(pair, 2, 2), 0.0);
      if (pair.scale > 0.0) {
        EXPECT_LT(p.pair_cost(pair, 0, 1), p.pair_cost(pair, 0, 5));
      }
    }
  }
}

TEST_F(ModelTest, EvaluateMatchesManualSum) {
  const auto t = timings();
  const auto refs = all_refs();
  const PartitionResult parts =
      partition(prepared_->design->grid.xsize(), prepared_->design->grid.ysize(), refs, {});
  ASSERT_FALSE(parts.leaves.empty());
  const PartitionProblem p =
      build_partition_problem(*prepared_->state, *prepared_->rc, t, parts.leaves[0], {});
  std::vector<int> pick(p.vars.size(), 0);
  double manual = 0.0;
  for (const auto& var : p.vars) manual += var.cost[0];
  for (const auto& pair : p.pairs) {
    manual += p.pair_cost(pair, p.vars[pair.parent].layers[0], p.vars[pair.child].layers[0]);
  }
  EXPECT_NEAR(p.evaluate(pick), manual, 1e-9);
}

}  // namespace
}  // namespace cpla::core
