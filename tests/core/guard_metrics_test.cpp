// Integration tests for the observability wiring: run the real optimize()
// flow and assert that solve-guard activity (solves, escalation tiers,
// failure classifications) and the pipeline phase timers surface in the
// global metrics registry. All assertions are before/after deltas so the
// tests stay robust no matter what other suites ran in this process.

#include <gtest/gtest.h>

#include "src/core/flow.hpp"
#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/fault_inject.hpp"
#include "src/util/logging.hpp"

namespace cpla::core {
namespace {

Prepared small_bench(std::uint64_t seed = 81) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 200;
  spec.num_layers = 6;
  spec.seed = seed;
  return prepare(gen::generate(spec));
}

std::int64_t counter(const char* name) { return obs::metrics().counter(name).value(); }

class GuardMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kError);
    FaultInjector::instance().reset();
  }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(GuardMetricsTest, GuardCountersMirrorGuardStats) {
  Prepared bench = small_bench();
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);

  const std::int64_t solves0 = counter("core.guard.solves");
  const std::int64_t primary0 = counter("core.guard.tier.primary");
  const std::int64_t iters0 = counter("core.guard.sdp_iterations");

  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical);
  ASSERT_TRUE(out.status.is_ok());

  const GuardStats& gs = out.result.guard_stats;
  EXPECT_EQ(counter("core.guard.solves") - solves0, gs.solves);
  EXPECT_EQ(counter("core.guard.tier.primary") - primary0,
            gs.tier_used[static_cast<int>(GuardTier::kPrimary)]);
  EXPECT_GE(counter("core.guard.sdp_iterations") - iters0, 0);

  // The guard latency histogram saw one sample per guarded solve.
  EXPECT_GE(obs::metrics().histogram("core.guard.solve.ms").count(), gs.solves);
}

TEST_F(GuardMetricsTest, EscalationTiersSurfaceInRegistry) {
  Prepared bench = small_bench(82);
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);

  const std::int64_t numfail0 = counter("core.guard.numerical_failures");
  const std::int64_t primary0 = counter("core.guard.tier.primary");
  const std::int64_t ilp0 = counter("core.guard.tier.ilp-fallback");
  const std::int64_t dp0 = counter("core.guard.tier.net-dp");
  const std::int64_t keep0 = counter("core.guard.tier.keep-current");

  // Kill every Cholesky factorization: no SDP tier can succeed, so all
  // non-trivial partitions escalate past the primary tier.
  FaultInjector::instance().arm_always("la.cholesky.factor");
  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical);
  FaultInjector::instance().reset();

  const GuardStats& gs = out.result.guard_stats;
  ASSERT_TRUE(gs.degraded());
  EXPECT_GT(counter("core.guard.numerical_failures") - numfail0, 0);
  EXPECT_EQ(counter("core.guard.numerical_failures") - numfail0, gs.numerical_failures);

  const std::int64_t fallback_delta = (counter("core.guard.tier.ilp-fallback") - ilp0) +
                                      (counter("core.guard.tier.net-dp") - dp0) +
                                      (counter("core.guard.tier.keep-current") - keep0);
  const long fallback_stats = gs.tier_used[static_cast<int>(GuardTier::kIlp)] +
                              gs.tier_used[static_cast<int>(GuardTier::kNetDp)] +
                              gs.tier_used[static_cast<int>(GuardTier::kKeepCurrent)];
  EXPECT_EQ(fallback_delta, fallback_stats);
  EXPECT_GT(fallback_delta, 0);
  EXPECT_EQ(counter("core.guard.tier.primary") - primary0,
            gs.tier_used[static_cast<int>(GuardTier::kPrimary)]);
}

TEST_F(GuardMetricsTest, FlowPhasesAndSolverCountersRecorded) {
  Prepared bench = small_bench();
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);

  const std::int64_t rounds0 = counter("core.flow.rounds");
  const std::int64_t parts0 = counter("core.flow.partitions");
  const std::int64_t sdp0 = counter("sdp.solve.calls");
  const std::int64_t elmore0 = counter("timing.elmore.evals");
  obs::Histogram& round_ms = obs::metrics().histogram("phase.core.flow.round.ms");
  obs::Histogram& solve_ms = obs::metrics().histogram("phase.core.flow.solve.ms");
  const std::int64_t round_n0 = round_ms.count();
  const std::int64_t solve_n0 = solve_ms.count();

  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical);
  ASSERT_TRUE(out.status.is_ok());

  const std::int64_t rounds = counter("core.flow.rounds") - rounds0;
  EXPECT_GT(rounds, 0);
  EXPECT_GT(counter("core.flow.partitions") - parts0, 0);
  EXPECT_GT(counter("sdp.solve.calls") - sdp0, 0);
  EXPECT_GT(counter("timing.elmore.evals") - elmore0, 0);
  // Each flow round recorded one wall-time sample; the solve phase records
  // one sample per partition batch, so at least one per round.
  EXPECT_EQ(round_ms.count() - round_n0, rounds);
  EXPECT_GE(solve_ms.count() - solve_n0, rounds);
}

TEST_F(GuardMetricsTest, PipelinePhasesRecordedByPrepare) {
  obs::Histogram& prep = obs::metrics().histogram("phase.core.pipeline.prepare.ms");
  obs::Histogram& route = obs::metrics().histogram("phase.core.pipeline.route2d.ms");
  const std::int64_t prep0 = prep.count();
  const std::int64_t route0 = route.count();

  Prepared bench = small_bench();
  ASSERT_NE(bench.state, nullptr);
  EXPECT_EQ(prep.count() - prep0, 1);
  EXPECT_EQ(route.count() - route0, 1);
  EXPECT_GE(prep.max(), 0.0);
}

}  // namespace
}  // namespace cpla::core
