// Partition-level Lagrangian engine: feasibility and the never-worse
// contract on real partition problems, golden comparison against
// brute-force enumeration on small ones, bitwise determinism, and the
// cross-backend escalation path when a lagr solve is forced to fail.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/critical.hpp"
#include "src/core/lagr_engine.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/solve_guard.hpp"
#include "src/gen/synth.hpp"
#include "src/util/fault_inject.hpp"

namespace cpla::core {
namespace {

class LagrEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen::SynthSpec spec;
    spec.xsize = spec.ysize = 20;
    spec.num_nets = 180;
    spec.num_layers = 6;
    spec.seed = 51;
    prepared_ = new Prepared(prepare(gen::generate(spec)));
    critical_ = new CriticalSet(select_critical(*prepared_->state, *prepared_->rc, 0.04));
  }
  static void TearDownTestSuite() {
    delete critical_;
    delete prepared_;
  }
  void TearDown() override { FaultInjector::instance().reset(); }

  static std::vector<PartitionProblem> problems(int max_segments) {
    std::unordered_map<int, timing::NetTiming> t;
    std::vector<SegRef> refs;
    for (int net : critical_->nets) {
      t.emplace(net, timing::compute_timing(prepared_->state->tree(net),
                                            prepared_->state->layers(net), *prepared_->rc));
      for (const auto& seg : prepared_->state->tree(net).segs) {
        refs.push_back(SegRef{net, seg.id, {(seg.a.x + seg.b.x) / 2, (seg.a.y + seg.b.y) / 2}});
      }
    }
    PartitionOptions popt;
    popt.max_segments = max_segments;
    const PartitionResult parts =
        partition(prepared_->design->grid.xsize(), prepared_->design->grid.ysize(), refs, popt);
    std::vector<PartitionProblem> out;
    for (const auto& leaf : parts.leaves) {
      out.push_back(build_partition_problem(*prepared_->state, *prepared_->rc, t, leaf, {}));
    }
    return out;
  }

  static std::vector<int> current_pick(const PartitionProblem& p) {
    std::vector<int> pick(p.vars.size(), 0);
    for (std::size_t i = 0; i < p.vars.size(); ++i) {
      for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
        if (p.vars[i].layers[k] == p.vars[i].current_layer) pick[i] = static_cast<int>(k);
      }
    }
    return pick;
  }

  /// Exhaustive feasible optimum, or false when the product space is too
  /// large to enumerate.
  static bool brute_force(const PartitionProblem& p, double* best) {
    std::uint64_t combos = 1;
    for (const VarGroup& v : p.vars) {
      combos *= v.layers.size();
      if (combos > 200000) return false;
    }
    std::vector<int> pick(p.vars.size(), 0);
    bool any = false;
    for (std::uint64_t it = 0; it < combos; ++it) {
      std::uint64_t rem = it;
      for (std::size_t i = 0; i < p.vars.size(); ++i) {
        pick[i] = static_cast<int>(rem % p.vars[i].layers.size());
        rem /= p.vars[i].layers.size();
      }
      if (!rows_feasible(p, pick)) continue;
      const double obj = p.evaluate(pick);
      if (!any || obj < *best) *best = obj;
      any = true;
    }
    return any;
  }

  static Prepared* prepared_;
  static CriticalSet* critical_;
};

Prepared* LagrEngineTest::prepared_ = nullptr;
CriticalSet* LagrEngineTest::critical_ = nullptr;

TEST_F(LagrEngineTest, PicksAreFeasibleAndNeverWorseThanIncumbent) {
  int solved = 0;
  double incumbent_total = 0.0, lagr_total = 0.0;
  for (const PartitionProblem& p : problems(8)) {
    if (p.vars.empty()) continue;
    const EngineResult r = solve_partition_lagr(p, *prepared_->state);
    EXPECT_TRUE(r.solver_ok);
    ASSERT_EQ(r.pick.size(), p.vars.size());
    EXPECT_TRUE(rows_feasible(p, r.pick));
    EXPECT_DOUBLE_EQ(r.objective, p.evaluate(r.pick));
    const double incumbent = p.evaluate(current_pick(p));
    EXPECT_LE(r.objective, incumbent * (1.0 + 1e-12) + 1e-12);
    incumbent_total += incumbent;
    lagr_total += r.objective;
    ++solved;
  }
  ASSERT_GT(solved, 0);
  // The engine must actually optimize, not just echo incumbents.
  EXPECT_LT(lagr_total, incumbent_total);
}

TEST_F(LagrEngineTest, TracksBruteForceOptimumOnSmallPartitions) {
  int enumerated = 0, optimal = 0;
  for (const PartitionProblem& p : problems(6)) {
    if (p.vars.empty()) continue;
    double best = 0.0;
    if (!brute_force(p, &best)) continue;
    ++enumerated;
    const EngineResult r = solve_partition_lagr(p, *prepared_->state);
    // Never below the true optimum (evaluate/rows_feasible consistency)...
    EXPECT_GE(r.objective, best - 1e-9 * std::abs(best) - 1e-12);
    // ...and within a modest band above it (the sweep linearizes pair
    // costs at the neighbors' picks, so a coupled partition can settle in
    // a nearby local minimum — the flow-level never-worse contract, not
    // per-partition optimality, is the hard guarantee).
    EXPECT_LE(r.objective, best * 1.10 + 1e-9);
    if (r.objective <= best + 1e-9 * std::abs(best) + 1e-12) ++optimal;
  }
  ASSERT_GT(enumerated, 0) << "no partition small enough to enumerate";
  // Most small partitions should land exactly on the optimum.
  EXPECT_GE(optimal * 2, enumerated);
}

TEST_F(LagrEngineTest, RepeatedSolvesAreBitwiseIdentical) {
  for (const PartitionProblem& p : problems(8)) {
    if (p.vars.empty()) continue;
    const EngineResult a = solve_partition_lagr(p, *prepared_->state);
    const EngineResult b = solve_partition_lagr(p, *prepared_->state);
    EXPECT_EQ(a.pick, b.pick);
    EXPECT_EQ(a.objective, b.objective);  // bitwise: registered contract TU
    EXPECT_EQ(a.iterations, b.iterations);
  }
}

TEST_F(LagrEngineTest, FaultedSolveEscalatesToSdpRescue) {
  GuardStats stats;
  bool escalated = false;
  FaultInjector::instance().arm_always("lagr.solve");
  for (const PartitionProblem& p : problems(8)) {
    if (p.vars.empty()) continue;
    const GuardedSolve s = guarded_solve(p, *prepared_->state, Engine::kLagr, sdp::SdpOptions{},
                                         ilp::MipOptions{}, GuardOptions{}, &stats);
    ASSERT_EQ(s.result.pick.size(), p.vars.size());
    EXPECT_TRUE(rows_feasible(p, s.result.pick));
    EXPECT_NE(s.tier, GuardTier::kPrimary) << "armed lagr.solve must not pass the primary tier";
    if (s.tier == GuardTier::kRetry) escalated = true;
  }
  FaultInjector::instance().reset();
  EXPECT_TRUE(escalated) << "no partition reached the cross-backend SDP retry tier";
  EXPECT_GT(stats.tier_used[static_cast<int>(GuardTier::kRetry)], 0);
}

}  // namespace
}  // namespace cpla::core
