// Batched solve phase: running the flow with CplaOptions::batch enabled
// must land on exactly the same assignment bits as the scalar per-partition
// path at equal commit-batch size — the batched SDP tier, the task-graph
// scheduler, and the scalar-route fallback nodes are all transparent to the
// result. Also covers the fallback switches (deadline, ILP engine) and the
// oversized-partition scalar route.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/flow.hpp"
#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"

namespace cpla::core {
namespace {

Prepared small_bench(std::uint64_t seed) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 300;
  spec.num_layers = 6;
  spec.seed = seed;
  return prepare(gen::generate(spec));
}

std::vector<std::vector<int>> all_layers(const assign::AssignState& state) {
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<std::size_t>(state.num_nets()));
  for (int net = 0; net < state.num_nets(); ++net) out.push_back(state.layers(net));
  return out;
}

CplaOptions base_options() {
  CplaOptions opt;
  // Serial + fixed commit batch: the Gauss-Seidel granularity is then
  // identical in both modes, which the bit-identity contract requires.
  opt.parallel = false;
  opt.commit_batch = 16;
  opt.max_rounds = 2;
  opt.max_refine_rounds = 1;
  return opt;
}

TEST(FlowBatch, BatchedFlowIsBitIdenticalToScalarFlow) {
  Prepared scalar_bench = small_bench(71);
  Prepared batch_bench = small_bench(71);
  const CriticalSet critical = select_critical(*scalar_bench.state, *scalar_bench.rc, 0.03);

  CplaOptions scalar_opt = base_options();
  const CplaResult scalar_result =
      run_cpla(scalar_bench.state.get(), *scalar_bench.rc, critical, scalar_opt);

  CplaOptions batch_opt = base_options();
  batch_opt.batch.enabled = true;
  const CplaResult batch_result =
      run_cpla(batch_bench.state.get(), *batch_bench.rc, critical, batch_opt);

  EXPECT_EQ(scalar_result.rounds, batch_result.rounds);
  EXPECT_EQ(scalar_result.partitions_solved, batch_result.partitions_solved);
  EXPECT_EQ(scalar_result.metrics.avg_tcp, batch_result.metrics.avg_tcp);
  EXPECT_EQ(scalar_result.metrics.max_tcp, batch_result.metrics.max_tcp);
  EXPECT_EQ(scalar_result.metrics.via_count, batch_result.metrics.via_count);
  EXPECT_EQ(all_layers(*scalar_bench.state), all_layers(*batch_bench.state));
  // The escalation profile must match too: the batch only replaces how the
  // primary tier is computed, never which tier wins.
  for (int t = 0; t < kNumGuardTiers; ++t) {
    EXPECT_EQ(scalar_result.guard_stats.tier_used[t], batch_result.guard_stats.tier_used[t])
        << "tier " << t;
  }
}

TEST(FlowBatch, TinyDenseLimitRoutesEverythingScalarAndStaysIdentical) {
  // With max_dense_dim = 2 every partition takes the scalar-route nodes on
  // the scheduler; the result must still match the stock flow exactly.
  Prepared scalar_bench = small_bench(72);
  Prepared batch_bench = small_bench(72);
  const CriticalSet critical = select_critical(*scalar_bench.state, *scalar_bench.rc, 0.03);

  CplaOptions scalar_opt = base_options();
  scalar_opt.max_rounds = 1;
  run_cpla(scalar_bench.state.get(), *scalar_bench.rc, critical, scalar_opt);

  CplaOptions batch_opt = scalar_opt;
  batch_opt.batch.enabled = true;
  batch_opt.batch.limits.max_dense_dim = 2;
  run_cpla(batch_bench.state.get(), *batch_bench.rc, critical, batch_opt);

  EXPECT_EQ(all_layers(*scalar_bench.state), all_layers(*batch_bench.state));
}

TEST(FlowBatch, ParallelSchedulerMatchesSerialBatchedFlow) {
  // The scheduler only reorders independent nodes, so the batched flow is
  // thread-count-invariant (exercised under the tsan label via test_core).
  Prepared serial_bench = small_bench(73);
  Prepared parallel_bench = small_bench(73);
  const CriticalSet critical = select_critical(*serial_bench.state, *serial_bench.rc, 0.03);

  CplaOptions serial_opt = base_options();
  serial_opt.batch.enabled = true;
  serial_opt.max_rounds = 1;
  run_cpla(serial_bench.state.get(), *serial_bench.rc, critical, serial_opt);

  CplaOptions parallel_opt = serial_opt;
  parallel_opt.parallel = true;
  parallel_opt.sdp.parallel = false;  // keep the inner SDP kernels serial
  run_cpla(parallel_bench.state.get(), *parallel_bench.rc, critical, parallel_opt);

  EXPECT_EQ(all_layers(*serial_bench.state), all_layers(*parallel_bench.state));
}

TEST(FlowBatch, DeadlineDisablesBatchingButFlowStaysValid) {
  Prepared bench = small_bench(74);
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const LaMetrics before = compute_metrics(*bench.state, *bench.rc, critical);

  CplaOptions opt = base_options();
  opt.batch.enabled = true;
  opt.guard.deadline_ms = 60'000.0;  // generous: solves succeed, batching is off
  const CplaResult result = run_cpla(bench.state.get(), *bench.rc, critical, opt);

  EXPECT_GT(result.partitions_solved, 0);
  EXPECT_LE(result.metrics.avg_tcp, before.avg_tcp * 1.0001);
  EXPECT_LE(result.metrics.wire_overflow, before.wire_overflow);
}

TEST(FlowBatch, IlpEngineIgnoresBatchFlag) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 16;
  spec.num_nets = 120;
  spec.num_layers = 4;
  spec.seed = 75;
  Prepared bench = prepare(gen::generate(spec));
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const LaMetrics before = compute_metrics(*bench.state, *bench.rc, critical);

  CplaOptions opt = base_options();
  opt.engine = Engine::kIlp;
  opt.batch.enabled = true;
  opt.partition.max_segments = 6;
  opt.max_rounds = 1;
  opt.ilp.time_limit_s = 10.0;
  const CplaResult result = run_cpla(bench.state.get(), *bench.rc, critical, opt);
  EXPECT_LE(result.metrics.avg_tcp, before.avg_tcp * 1.0001);
}

}  // namespace
}  // namespace cpla::core
