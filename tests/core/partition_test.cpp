#include "src/core/partition.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace cpla::core {
namespace {

std::vector<SegRef> uniform_refs(int count, int xs, int ys, std::uint64_t seed) {
  cpla::Rng rng(seed);
  std::vector<SegRef> refs;
  for (int i = 0; i < count; ++i) {
    SegRef ref;
    ref.net = i;
    ref.seg = 0;
    ref.mid = {static_cast<int>(rng.uniform_int(0, xs - 1)),
               static_cast<int>(rng.uniform_int(0, ys - 1))};
    refs.push_back(ref);
  }
  return refs;
}

TEST(Partition, EmptyInputProducesNoLeaves) {
  const PartitionResult r = partition(32, 32, {}, {});
  EXPECT_TRUE(r.leaves.empty());
  EXPECT_EQ(r.max_depth, 0);
}

TEST(Partition, EveryLeafWithinBudget) {
  PartitionOptions opt;
  opt.k = 3;
  opt.max_segments = 10;
  const auto refs = uniform_refs(500, 64, 64, 1);
  const PartitionResult r = partition(64, 64, refs, opt);
  for (const auto& leaf : r.leaves) {
    // Single-tile leaves are the only allowed exception (deadlock guard).
    if (leaf.x1 - leaf.x0 > 1 || leaf.y1 - leaf.y0 > 1) {
      EXPECT_LE(leaf.segments.size(), 10u);
    }
  }
}

TEST(Partition, NoSegmentLostOrDuplicated) {
  const auto refs = uniform_refs(300, 48, 48, 2);
  const PartitionResult r = partition(48, 48, refs, {});
  std::size_t total = 0;
  std::set<int> seen;
  for (const auto& leaf : r.leaves) {
    total += leaf.segments.size();
    for (const auto& ref : leaf.segments) {
      EXPECT_TRUE(seen.insert(ref.net).second) << "duplicated segment";
      // Membership: midpoint inside leaf bounds.
      EXPECT_GE(ref.mid.x, leaf.x0);
      EXPECT_LT(ref.mid.x, leaf.x1);
      EXPECT_GE(ref.mid.y, leaf.y0);
      EXPECT_LT(ref.mid.y, leaf.y1);
    }
  }
  EXPECT_EQ(total, refs.size());
}

TEST(Partition, HotspotRefinesDeeper) {
  // All segments in one corner cell cluster; elsewhere empty.
  std::vector<SegRef> refs;
  cpla::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    SegRef ref;
    ref.net = i;
    ref.seg = 0;
    ref.mid = {static_cast<int>(rng.uniform_int(0, 7)), static_cast<int>(rng.uniform_int(0, 7))};
    refs.push_back(ref);
  }
  PartitionOptions opt;
  opt.k = 2;
  opt.max_segments = 10;
  const PartitionResult r = partition(64, 64, refs, opt);
  EXPECT_GT(r.max_depth, 1);  // had to refine
  // The leaves holding segments are all small regions near the corner.
  for (const auto& leaf : r.leaves) {
    EXPECT_LT(leaf.x0, 8);
    EXPECT_LT(leaf.y0, 8);
  }
}

TEST(Partition, SingleTileStopsRefinement) {
  // 50 segments all at the exact same tile: cannot split further; the
  // deadlock guard must fire instead of recursing forever.
  std::vector<SegRef> refs;
  for (int i = 0; i < 50; ++i) refs.push_back(SegRef{i, 0, {5, 5}});
  PartitionOptions opt;
  opt.k = 1;
  opt.max_segments = 4;
  const PartitionResult r = partition(32, 32, refs, opt);
  ASSERT_EQ(r.leaves.size(), 1u);
  EXPECT_EQ(r.leaves[0].segments.size(), 50u);
  EXPECT_LE(r.leaves[0].x1 - r.leaves[0].x0, 1);
}

TEST(Partition, BalancedLoadAcrossLeaves) {
  // The quadtree should even out a skewed distribution: no leaf should hold
  // more than max_segments (except single tiles), and with 400 segments and
  // a budget of 10 there must be >= 40 leaves.
  const auto refs = uniform_refs(400, 64, 64, 4);
  PartitionOptions opt;
  opt.k = 4;
  opt.max_segments = 10;
  const PartitionResult r = partition(64, 64, refs, opt);
  EXPECT_GE(r.leaves.size(), 40u);
}

class PartitionBudgetSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionBudgetSweep, LeafCountShrinksWithBudget) {
  const auto refs = uniform_refs(600, 64, 64, 5);
  PartitionOptions small_budget, large_budget;
  small_budget.max_segments = GetParam();
  large_budget.max_segments = GetParam() * 4;
  const auto small = partition(64, 64, refs, small_budget);
  const auto large = partition(64, 64, refs, large_budget);
  EXPECT_GE(small.leaves.size(), large.leaves.size());
}

INSTANTIATE_TEST_SUITE_P(Budgets, PartitionBudgetSweep, ::testing::Values(5, 10, 20, 40));

}  // namespace
}  // namespace cpla::core
