#include "src/core/tila.hpp"

#include <gtest/gtest.h>

#include "src/assign/state.hpp"
#include "src/core/flow.hpp"
#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"
#include "src/grid/layer_stack.hpp"
#include "src/route/seg_tree.hpp"
#include "src/timing/rc_table.hpp"

namespace cpla::core {
namespace {

Prepared bench(std::uint64_t seed) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 300;
  spec.num_layers = 6;
  spec.seed = seed;
  return prepare(gen::generate(spec));
}

TEST(Tila, ImprovesCriticalTiming) {
  Prepared run = bench(101);
  const CriticalSet cs = select_critical(*run.state, *run.rc, 0.03);
  const LaMetrics before = compute_metrics(*run.state, *run.rc, cs);
  const TilaResult r = run_tila(run.state.get(), *run.rc, cs);
  const LaMetrics after = compute_metrics(*run.state, *run.rc, cs);
  EXPECT_GE(r.iterations_run, 1);
  EXPECT_LT(after.avg_tcp, before.avg_tcp);
}

TEST(Tila, HardCapacityNeverAddsWireOverflow) {
  Prepared run = bench(102);
  const CriticalSet cs = select_critical(*run.state, *run.rc, 0.05);
  const long before = run.state->wire_overflow();
  run_tila(run.state.get(), *run.rc, cs);
  EXPECT_LE(run.state->wire_overflow(), before);
}

TEST(Tila, Deterministic) {
  Prepared a = bench(103);
  Prepared b = bench(103);
  const CriticalSet cs = select_critical(*a.state, *a.rc, 0.03);
  run_tila(a.state.get(), *a.rc, cs);
  run_tila(b.state.get(), *b.rc, cs);
  for (int n = 0; n < a.state->num_nets(); ++n) {
    EXPECT_EQ(a.state->layers(n), b.state->layers(n)) << n;
  }
}

TEST(Tila, UntouchedNetsKeepTheirAssignment) {
  Prepared run = bench(104);
  const CriticalSet cs = select_critical(*run.state, *run.rc, 0.02);
  std::vector<std::vector<int>> before;
  for (int n = 0; n < run.state->num_nets(); ++n) before.push_back(run.state->layers(n));
  run_tila(run.state.get(), *run.rc, cs);
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (!cs.released[n]) {
      EXPECT_EQ(run.state->layers(n), before[n]) << "non-released net moved";
    }
  }
}

TEST(Tila, MoreIterationsNeverWorseThanOne) {
  Prepared a = bench(105);
  Prepared b = bench(105);
  const CriticalSet cs = select_critical(*a.state, *a.rc, 0.03);
  TilaOptions one;
  one.iterations = 1;
  run_tila(a.state.get(), *a.rc, cs, one);
  TilaOptions many;
  many.iterations = 8;
  run_tila(b.state.get(), *b.rc, cs, many);
  const double avg_one = compute_metrics(*a.state, *a.rc, cs).avg_tcp;
  const double avg_many = compute_metrics(*b.state, *b.rc, cs).avg_tcp;
  EXPECT_LE(avg_many, avg_one * 1.02);  // small tolerance: LR can oscillate
}

// Regression: sub-gradient methods must keep the *best* primal iterate.
// On a congested instance the multiplier updates make the iterates
// oscillate; the convergence test then trips on a worse iterate, which must
// not be the one left in the state. Iteration 1 of the long run is
// identical to the one-iteration run (multipliers start at zero), so
// best-iterate tracking can never end worse than either run's iteration 1
// or the entry assignment.
TEST(Tila, OscillationKeepsBestIterate) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 420;
  spec.num_layers = 6;
  spec.tracks_per_layer = 2;  // congested: capacity multipliers engage
  spec.seed = 106;
  Prepared one = prepare(gen::generate(spec));
  Prepared many = prepare(gen::generate(spec));
  const CriticalSet cs = select_critical(*one.state, *one.rc, 0.10);
  const double avg_entry = compute_metrics(*one.state, *one.rc, cs).avg_tcp;
  TilaOptions aggressive;
  aggressive.lambda_step = 8.0;
  aggressive.mu_step = 4.0;
  TilaOptions first = aggressive;
  first.iterations = 1;
  run_tila(one.state.get(), *one.rc, cs, first);
  aggressive.iterations = 12;
  const TilaResult r = run_tila(many.state.get(), *many.rc, cs, aggressive);
  const double avg_one = compute_metrics(*one.state, *one.rc, cs).avg_tcp;
  const double avg_many = compute_metrics(*many.state, *many.rc, cs).avg_tcp;
  EXPECT_LE(avg_many, avg_one * (1.0 + 1e-9))
      << "oscillation kept a worse iterate (ran " << r.iterations_run << " iterations)";
  EXPECT_LE(avg_many, avg_entry * (1.0 + 1e-9)) << "worse than the entry assignment";
}

// Regression: two segments of one net priced in the same pass each discount
// only their own *pre-pass* usage, so they can jointly overfill an edge with
// one free track. The net is a hand-built out-and-back pair of horizontal
// segments covering the same edges; layer 2 is faster but has capacity 1.
TEST(Tila, IntraPassMovesCannotJointlyOverfillAnEdge) {
  grid::GridGraph g(16, 16, grid::make_layer_stack(4), grid::default_geom());
  for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, 4);
  g.fill_layer_capacity(2, 1);
  grid::Design design("overfill", std::move(g));

  route::SegTree tree;
  tree.net_id = 0;
  tree.root = {1, 1};
  tree.root_pin_layer = 0;
  route::Segment s0;
  s0.id = 0;
  s0.a = {1, 1};
  s0.b = {14, 1};
  s0.horizontal = true;
  s0.parent = -1;
  s0.children = {1};
  route::Segment s1;
  s1.id = 1;
  s1.a = {14, 1};
  s1.b = {1, 1};
  s1.horizontal = true;
  s1.parent = 0;
  tree.segs = {s0, s1};
  route::SinkAttach sink;
  sink.pin_index = 1;
  sink.seg_id = 1;
  sink.pin_layer = 0;
  tree.sinks = {sink};

  assign::AssignState state(&design, {tree});
  state.set_layers(0, {0, 0});
  ASSERT_EQ(state.wire_overflow(), 0);

  const timing::RcTable rc(design.grid);
  CriticalSet cs;
  cs.nets = {0};
  cs.released.assign(1, 1);
  TilaOptions one;
  one.iterations = 1;
  run_tila(&state, rc, cs, one);
  EXPECT_EQ(state.wire_overflow(), 0)
      << "one pass jointly overfilled a capacity-1 edge";
}

TEST(Flow, CplaDeterministic) {
  Prepared a = bench(106);
  Prepared b = bench(106);
  const CriticalSet cs = select_critical(*a.state, *a.rc, 0.03);
  CplaOptions opt;
  opt.max_rounds = 2;
  run_cpla(a.state.get(), *a.rc, cs, opt);
  run_cpla(b.state.get(), *b.rc, cs, opt);
  for (int n = 0; n < a.state->num_nets(); ++n) {
    EXPECT_EQ(a.state->layers(n), b.state->layers(n)) << n;
  }
}

TEST(Flow, CplaUntouchedNetsKeepTheirAssignment) {
  Prepared run = bench(107);
  const CriticalSet cs = select_critical(*run.state, *run.rc, 0.02);
  std::vector<std::vector<int>> before;
  for (int n = 0; n < run.state->num_nets(); ++n) before.push_back(run.state->layers(n));
  CplaOptions opt;
  opt.max_rounds = 2;
  run_cpla(run.state.get(), *run.rc, cs, opt);
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (!cs.released[n]) {
      EXPECT_EQ(run.state->layers(n), before[n]) << "non-released net moved";
    }
  }
}

}  // namespace
}  // namespace cpla::core
