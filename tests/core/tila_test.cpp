#include "src/core/tila.hpp"

#include <gtest/gtest.h>

#include "src/core/flow.hpp"
#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"

namespace cpla::core {
namespace {

Prepared bench(std::uint64_t seed) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 300;
  spec.num_layers = 6;
  spec.seed = seed;
  return prepare(gen::generate(spec));
}

TEST(Tila, ImprovesCriticalTiming) {
  Prepared run = bench(101);
  const CriticalSet cs = select_critical(*run.state, *run.rc, 0.03);
  const LaMetrics before = compute_metrics(*run.state, *run.rc, cs);
  const TilaResult r = run_tila(run.state.get(), *run.rc, cs);
  const LaMetrics after = compute_metrics(*run.state, *run.rc, cs);
  EXPECT_GE(r.iterations_run, 1);
  EXPECT_LT(after.avg_tcp, before.avg_tcp);
}

TEST(Tila, HardCapacityNeverAddsWireOverflow) {
  Prepared run = bench(102);
  const CriticalSet cs = select_critical(*run.state, *run.rc, 0.05);
  const long before = run.state->wire_overflow();
  run_tila(run.state.get(), *run.rc, cs);
  EXPECT_LE(run.state->wire_overflow(), before);
}

TEST(Tila, Deterministic) {
  Prepared a = bench(103);
  Prepared b = bench(103);
  const CriticalSet cs = select_critical(*a.state, *a.rc, 0.03);
  run_tila(a.state.get(), *a.rc, cs);
  run_tila(b.state.get(), *b.rc, cs);
  for (int n = 0; n < a.state->num_nets(); ++n) {
    EXPECT_EQ(a.state->layers(n), b.state->layers(n)) << n;
  }
}

TEST(Tila, UntouchedNetsKeepTheirAssignment) {
  Prepared run = bench(104);
  const CriticalSet cs = select_critical(*run.state, *run.rc, 0.02);
  std::vector<std::vector<int>> before;
  for (int n = 0; n < run.state->num_nets(); ++n) before.push_back(run.state->layers(n));
  run_tila(run.state.get(), *run.rc, cs);
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (!cs.released[n]) {
      EXPECT_EQ(run.state->layers(n), before[n]) << "non-released net moved";
    }
  }
}

TEST(Tila, MoreIterationsNeverWorseThanOne) {
  Prepared a = bench(105);
  Prepared b = bench(105);
  const CriticalSet cs = select_critical(*a.state, *a.rc, 0.03);
  TilaOptions one;
  one.iterations = 1;
  run_tila(a.state.get(), *a.rc, cs, one);
  TilaOptions many;
  many.iterations = 8;
  run_tila(b.state.get(), *b.rc, cs, many);
  const double avg_one = compute_metrics(*a.state, *a.rc, cs).avg_tcp;
  const double avg_many = compute_metrics(*b.state, *b.rc, cs).avg_tcp;
  EXPECT_LE(avg_many, avg_one * 1.02);  // small tolerance: LR can oscillate
}

TEST(Flow, CplaDeterministic) {
  Prepared a = bench(106);
  Prepared b = bench(106);
  const CriticalSet cs = select_critical(*a.state, *a.rc, 0.03);
  CplaOptions opt;
  opt.max_rounds = 2;
  run_cpla(a.state.get(), *a.rc, cs, opt);
  run_cpla(b.state.get(), *b.rc, cs, opt);
  for (int n = 0; n < a.state->num_nets(); ++n) {
    EXPECT_EQ(a.state->layers(n), b.state->layers(n)) << n;
  }
}

TEST(Flow, CplaUntouchedNetsKeepTheirAssignment) {
  Prepared run = bench(107);
  const CriticalSet cs = select_critical(*run.state, *run.rc, 0.02);
  std::vector<std::vector<int>> before;
  for (int n = 0; n < run.state->num_nets(); ++n) before.push_back(run.state->layers(n));
  CplaOptions opt;
  opt.max_rounds = 2;
  run_cpla(run.state.get(), *run.rc, cs, opt);
  for (int n = 0; n < run.state->num_nets(); ++n) {
    if (!cs.released[n]) {
      EXPECT_EQ(run.state->layers(n), before[n]) << "non-released net moved";
    }
  }
}

}  // namespace
}  // namespace cpla::core
