#include "src/core/displace.hpp"

#include <gtest/gtest.h>

#include "src/core/flow.hpp"
#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"
#include "src/grid/layer_stack.hpp"

namespace cpla::core {
namespace {

// Hand-built scenario: a critical net blocked below a top layer that is
// fully occupied by short non-critical nets; displacement must clear it.
class DisplaceTest : public ::testing::Test {
 protected:
  DisplaceTest() : design_("d", make_grid()) {}

  static grid::GridGraph make_grid() {
    grid::GridGraph g(16, 16, grid::make_layer_stack(4), grid::default_geom());
    for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, 2);
    return g;
  }

  route::SegTree h_net(int id, int y, int x0, int x1) {
    grid::Net net;
    net.id = id;
    net.pins = {grid::Pin{x0, y, 0}, grid::Pin{x1, y, 0}};
    route::NetRoute r;
    for (int x = x0; x < x1; ++x) r.add_h(design_.grid.h_edge_id(x, y));
    return route::extract_tree(design_.grid, net, &r);
  }

  grid::Design design_;
};

TEST_F(DisplaceTest, ClearsBlockedTopLayer) {
  // Net 0: long critical net on layer 0 along y=2.
  // Nets 1, 2: short nets filling layer 2 (cap 2) over the same edges.
  std::vector<route::SegTree> trees;
  trees.push_back(h_net(0, 2, 1, 13));
  trees.push_back(h_net(1, 2, 1, 13));
  trees.push_back(h_net(2, 2, 1, 13));
  assign::AssignState state(&design_, std::move(trees));
  state.set_layers(0, {0});
  state.set_layers(1, {2});
  state.set_layers(2, {2});

  timing::RcTable rc(design_.grid);
  CriticalSet critical;
  critical.nets = {0};
  critical.released.assign(3, 0);
  critical.released[0] = 1;

  // Layer 2 over the corridor is full (cap 2, usage 2): the critical net
  // cannot move up until a victim is displaced.
  EXPECT_EQ(state.wire_usage(2, design_.grid.h_edge_id(5, 2)), 2);

  DisplaceOptions opt;
  opt.min_criticality = 0.0;  // the single net is trivially critical
  // Victims are 12 tiles long, below the default displacement cutoff.
  const int moved = make_headroom(&state, rc, critical, opt);
  EXPECT_GE(moved, 1);
  EXPECT_LT(state.wire_usage(2, design_.grid.h_edge_id(5, 2)), 2);
  // No overflow introduced anywhere.
  EXPECT_EQ(state.wire_overflow(), 0);
}

TEST_F(DisplaceTest, NoOpWhenNothingBlocked) {
  std::vector<route::SegTree> trees;
  trees.push_back(h_net(0, 2, 1, 13));
  trees.push_back(h_net(1, 8, 1, 13));  // far away
  assign::AssignState state(&design_, std::move(trees));
  state.set_layers(0, {0});
  state.set_layers(1, {2});

  timing::RcTable rc(design_.grid);
  CriticalSet critical;
  critical.nets = {0};
  critical.released.assign(2, 0);
  critical.released[0] = 1;

  DisplaceOptions opt;
  opt.min_criticality = 0.0;
  EXPECT_EQ(make_headroom(&state, rc, critical, opt), 0);
  EXPECT_EQ(state.layers(1), (std::vector<int>{2}));
}

TEST(Displace, NeverWorsensOverflowOnBenchmark) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 300;
  spec.num_layers = 6;
  spec.seed = 71;
  Prepared bench = prepare(gen::generate(spec));
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const long wire_before = bench.state->wire_overflow();
  const long via_before = bench.state->via_overflow();
  make_headroom(bench.state.get(), *bench.rc, critical);
  EXPECT_LE(bench.state->wire_overflow(), wire_before);
  EXPECT_LE(bench.state->via_overflow(), via_before);
}

TEST(Displace, ReleasedNetsAreNeverVictims) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 300;
  spec.num_layers = 6;
  spec.seed = 72;
  Prepared bench = prepare(gen::generate(spec));
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  std::vector<std::vector<int>> released_before;
  for (int net : critical.nets) released_before.push_back(bench.state->layers(net));
  make_headroom(bench.state.get(), *bench.rc, critical);
  for (std::size_t i = 0; i < critical.nets.size(); ++i) {
    EXPECT_EQ(bench.state->layers(critical.nets[i]), released_before[i]);
  }
}

}  // namespace
}  // namespace cpla::core
