#include "src/core/flow.hpp"

#include <gtest/gtest.h>

#include "src/core/pipeline.hpp"
#include "src/core/tila.hpp"
#include "src/gen/synth.hpp"

namespace cpla::core {
namespace {

Prepared small_bench(std::uint64_t seed = 61) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 300;
  spec.num_layers = 6;
  spec.seed = seed;
  return prepare(gen::generate(spec));
}

TEST(Flow, CplaImprovesCriticalTiming) {
  Prepared bench = small_bench();
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const LaMetrics before = compute_metrics(*bench.state, *bench.rc, critical);

  CplaOptions opt;
  const CplaResult result = run_cpla(bench.state.get(), *bench.rc, critical, opt);

  EXPECT_GT(result.partitions_solved, 0);
  EXPECT_LE(result.metrics.avg_tcp, before.avg_tcp * 1.0001);
  EXPECT_LE(result.metrics.max_tcp, before.max_tcp * 1.0001);
  EXPECT_GT(result.metrics.avg_tcp, 0.0);
  // Wire capacity must not regress into new overflow.
  EXPECT_LE(result.metrics.wire_overflow, before.wire_overflow);
}

TEST(Flow, TilaImprovesWeightedDelay) {
  Prepared bench = small_bench(62);
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const LaMetrics before = compute_metrics(*bench.state, *bench.rc, critical);

  const TilaResult result = run_tila(bench.state.get(), *bench.rc, critical);
  EXPECT_GE(result.iterations_run, 1);

  const LaMetrics after = compute_metrics(*bench.state, *bench.rc, critical);
  EXPECT_LE(after.avg_tcp, before.avg_tcp * 1.02);  // weighted-sum objective, mild guarantee
  EXPECT_GT(after.avg_tcp, 0.0);
}

TEST(Flow, CplaBeatsOrMatchesTilaOnMaxTiming) {
  // The paper's headline: on the same released set, the SDP flow controls
  // Max(Tcp) at least as well as TILA. Run both from identical states.
  Prepared for_tila = small_bench(63);
  Prepared for_cpla = small_bench(63);
  const CriticalSet critical = select_critical(*for_tila.state, *for_tila.rc, 0.03);

  run_tila(for_tila.state.get(), *for_tila.rc, critical);
  const LaMetrics tila = compute_metrics(*for_tila.state, *for_tila.rc, critical);

  run_cpla(for_cpla.state.get(), *for_cpla.rc, critical);
  const LaMetrics cpla = compute_metrics(*for_cpla.state, *for_cpla.rc, critical);

  EXPECT_LE(cpla.max_tcp, tila.max_tcp * 1.05);
  EXPECT_LE(cpla.avg_tcp, tila.avg_tcp * 1.05);
}

TEST(Flow, IlpEngineRunsOnTinyBenchmark) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 16;
  spec.num_nets = 120;
  spec.num_layers = 4;
  spec.seed = 64;
  Prepared bench = prepare(gen::generate(spec));
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const LaMetrics before = compute_metrics(*bench.state, *bench.rc, critical);

  CplaOptions opt;
  opt.engine = Engine::kIlp;
  opt.partition.max_segments = 6;
  opt.max_rounds = 1;
  opt.ilp.time_limit_s = 10.0;
  const CplaResult result = run_cpla(bench.state.get(), *bench.rc, critical, opt);
  EXPECT_LE(result.metrics.avg_tcp, before.avg_tcp * 1.0001);
}

TEST(Flow, MetricsOverEmptyCriticalSet) {
  Prepared bench = small_bench(65);
  CriticalSet empty;
  empty.released.assign(bench.state->num_nets(), 0);
  const LaMetrics m = compute_metrics(*bench.state, *bench.rc, empty);
  EXPECT_EQ(m.avg_tcp, 0.0);
  EXPECT_EQ(m.max_tcp, 0.0);
  const CplaResult r = run_cpla(bench.state.get(), *bench.rc, empty, {});
  EXPECT_EQ(r.partitions_solved, 0);
}

TEST(Flow, CriticalRatioScalesReleasedCount) {
  Prepared bench = small_bench(66);
  const CriticalSet small = select_critical(*bench.state, *bench.rc, 0.01);
  const CriticalSet large = select_critical(*bench.state, *bench.rc, 0.05);
  EXPECT_LT(small.nets.size(), large.nets.size());
  EXPECT_EQ(small.nets.size(), 3u);   // ceil(0.01 * 300)
  EXPECT_EQ(large.nets.size(), 15u);  // ceil(0.05 * 300)
}

}  // namespace
}  // namespace cpla::core
