#include <gtest/gtest.h>

#include "src/core/critical.hpp"
#include "src/core/ilp_engine.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/sdp_engine.hpp"
#include "src/gen/synth.hpp"

namespace cpla::core {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen::SynthSpec spec;
    spec.xsize = spec.ysize = 20;
    spec.num_nets = 180;
    spec.num_layers = 6;
    spec.seed = 51;
    prepared_ = new Prepared(prepare(gen::generate(spec)));
    critical_ = new CriticalSet(select_critical(*prepared_->state, *prepared_->rc, 0.04));
  }
  static void TearDownTestSuite() {
    delete critical_;
    delete prepared_;
  }

  static std::vector<PartitionProblem> problems() {
    std::unordered_map<int, timing::NetTiming> t;
    std::vector<SegRef> refs;
    for (int net : critical_->nets) {
      t.emplace(net, timing::compute_timing(prepared_->state->tree(net),
                                            prepared_->state->layers(net), *prepared_->rc));
      for (const auto& seg : prepared_->state->tree(net).segs) {
        refs.push_back(SegRef{net, seg.id, {(seg.a.x + seg.b.x) / 2, (seg.a.y + seg.b.y) / 2}});
      }
    }
    PartitionOptions popt;
    popt.max_segments = 8;
    const PartitionResult parts =
        partition(prepared_->design->grid.xsize(), prepared_->design->grid.ysize(), refs, popt);
    std::vector<PartitionProblem> out;
    for (const auto& leaf : parts.leaves) {
      out.push_back(build_partition_problem(*prepared_->state, *prepared_->rc, t, leaf, {}));
    }
    return out;
  }

  static std::vector<int> current_pick(const PartitionProblem& p) {
    std::vector<int> pick(p.vars.size(), 0);
    for (std::size_t i = 0; i < p.vars.size(); ++i) {
      for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
        if (p.vars[i].layers[k] == p.vars[i].current_layer) pick[i] = static_cast<int>(k);
      }
    }
    return pick;
  }

  static Prepared* prepared_;
  static CriticalSet* critical_;
};

Prepared* EngineTest::prepared_ = nullptr;
CriticalSet* EngineTest::critical_ = nullptr;

TEST_F(EngineTest, PostMapRespectsCapacities) {
  for (const PartitionProblem& p : problems()) {
    if (p.vars.empty()) continue;
    // Uniform fractional input: everything ties; post-map must still stay
    // within the capacity rows it was given.
    std::vector<std::vector<double>> x(p.vars.size());
    for (std::size_t i = 0; i < p.vars.size(); ++i) {
      x[i].assign(p.vars[i].layers.size(), 1.0 / p.vars[i].layers.size());
    }
    const std::vector<int> pick = post_map(p, *prepared_->state, x);
    ASSERT_EQ(pick.size(), p.vars.size());
    for (std::size_t i = 0; i < pick.size(); ++i) {
      ASSERT_GE(pick[i], 0);
      ASSERT_LT(pick[i], static_cast<int>(p.vars[i].layers.size()));
    }
    // Check the explicit capacity rows.
    for (const auto& row : p.cap_rows) {
      int used = 0;
      for (int m : row.members) {
        if (p.vars[m].layers[pick[m]] == row.layer) ++used;
      }
      EXPECT_LE(used, row.cap_remaining) << "cap row violated";
    }
  }
}

TEST_F(EngineTest, PostMapPrefersHighXValues) {
  for (const PartitionProblem& p : problems()) {
    if (p.vars.empty()) continue;
    // Give each var a clear winner: its currently assigned layer.
    std::vector<std::vector<double>> x(p.vars.size());
    for (std::size_t i = 0; i < p.vars.size(); ++i) {
      x[i].assign(p.vars[i].layers.size(), 0.01);
      for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
        if (p.vars[i].layers[k] == p.vars[i].current_layer) x[i][k] = 0.99;
      }
    }
    const std::vector<int> pick = post_map(p, *prepared_->state, x);
    // The current assignment is feasible by construction, so post-map
    // should reproduce it exactly.
    for (std::size_t i = 0; i < pick.size(); ++i) {
      EXPECT_EQ(p.vars[i].layers[pick[i]], p.vars[i].current_layer);
    }
  }
}

TEST_F(EngineTest, SdpEngineProducesValidImprovingPicks) {
  double improved = 0, total = 0;
  for (const PartitionProblem& p : problems()) {
    if (p.vars.empty()) continue;
    const EngineResult r = solve_partition_sdp(p, *prepared_->state);
    EXPECT_TRUE(r.solver_ok);
    ASSERT_EQ(r.pick.size(), p.vars.size());
    const double current = p.evaluate(current_pick(p));
    total += 1;
    if (r.objective <= current + 1e-6) improved += 1;
    // The SDP relaxation bound can't exceed the integral solution value by
    // more than numerical noise.
    EXPECT_LE(r.relaxation_obj, r.objective + 1e-3 * (1.0 + std::abs(r.objective)));
  }
  ASSERT_GT(total, 0);
  // The engine should match-or-beat the incumbent on nearly every
  // partition (post-mapping ties can rarely lose).
  EXPECT_GE(improved / total, 0.9);
}

TEST_F(EngineTest, IlpMatchesOrBeatsSdpOnModelObjective) {
  int compared = 0;
  for (const PartitionProblem& p : problems()) {
    if (p.vars.empty() || p.vars.size() > 6) continue;  // keep ILP fast
    const EngineResult sdp_r = solve_partition_sdp(p, *prepared_->state);
    ilp::MipOptions mopt;
    mopt.time_limit_s = 20.0;
    const EngineResult ilp_r = solve_partition_ilp(p, *prepared_->state, mopt);
    if (!ilp_r.solver_ok) continue;
    // ILP solves the model exactly (modulo the soft via rows), so its model
    // objective is never worse than the rounded SDP's.
    EXPECT_LE(ilp_r.objective, sdp_r.objective + 1e-6 * (1.0 + std::abs(sdp_r.objective)));
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST_F(EngineTest, EmptyProblemIsHandled) {
  PartitionProblem p;
  const EngineResult r1 = solve_partition_sdp(p, *prepared_->state);
  EXPECT_TRUE(r1.pick.empty());
  const EngineResult r2 = solve_partition_ilp(p, *prepared_->state);
  EXPECT_TRUE(r2.pick.empty());
}

}  // namespace
}  // namespace cpla::core
