// End-to-end graceful-degradation tests: force real failure modes through
// the deterministic fault injector and assert the never-crash, never-worse
// contract of core::optimize() — a capacity-valid assignment whose critical
// timing and overflow are no worse than on entry, with the degradation
// reported through GuardStats. These carry the `faultinject` ctest label.

#include <gtest/gtest.h>

#include "src/core/flow.hpp"
#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"
#include "src/util/fault_inject.hpp"
#include "src/util/logging.hpp"

namespace cpla::core {
namespace {

Prepared small_bench(std::uint64_t seed = 81) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 200;
  spec.num_layers = 6;
  spec.seed = seed;
  return prepare(gen::generate(spec));
}

struct Entry {
  double avg = 0.0;
  double max = 0.0;
  long overflow = 0;
};

Entry entry_state(const Prepared& bench, const CriticalSet& critical) {
  const LaMetrics m = compute_metrics(*bench.state, *bench.rc, critical);
  return {m.avg_tcp, m.max_tcp, bench.state->wire_overflow() + bench.state->via_overflow()};
}

void expect_never_worse(const Prepared& bench, const CriticalSet& critical, const Entry& before) {
  const Entry after = entry_state(bench, critical);
  EXPECT_LE(after.avg, before.avg * (1.0 + 1e-9));
  EXPECT_LE(after.max, before.max * (1.0 + 1e-9));
  EXPECT_LE(after.overflow, before.overflow);
}

class FaultInjectFlowTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectFlowTest, CleanRunReportsOkAndPrimaryTier) {
  Prepared bench = small_bench();
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const Entry before = entry_state(bench, critical);

  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical);
  EXPECT_TRUE(out.status.is_ok());
  EXPECT_GT(out.result.guard_stats.solves, 0);
  EXPECT_GT(out.result.guard_stats.tier_used[static_cast<int>(GuardTier::kPrimary)], 0);
  expect_never_worse(bench, critical, before);
}

TEST_F(FaultInjectFlowTest, CholeskyBreakdownDegradesGracefully) {
  Prepared bench = small_bench(82);
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const Entry before = entry_state(bench, critical);

  // Every Schur factorization fails: both SDP tiers are dead, so every
  // partition must land on ILP, per-net DP, or keep-current — and the
  // assignment must still come back valid and no worse.
  FaultInjector::instance().arm_always("la.cholesky.factor");
  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical);
  FaultInjector::instance().reset();

  const GuardStats& gs = out.result.guard_stats;
  EXPECT_GT(gs.solves, 0);
  EXPECT_GT(gs.numerical_failures, 0);
  EXPECT_TRUE(gs.degraded());
  // No SDP tier can succeed without a working factorization. (Partitions
  // with no free variables are trivially "primary", hence no kPrimary
  // assertion.)
  EXPECT_EQ(gs.tier_used[static_cast<int>(GuardTier::kRetry)], 0);
  EXPECT_GT(gs.tier_used[static_cast<int>(GuardTier::kIlp)] +
                gs.tier_used[static_cast<int>(GuardTier::kNetDp)] +
                gs.tier_used[static_cast<int>(GuardTier::kKeepCurrent)],
            0);
  expect_never_worse(bench, critical, before);
}

TEST_F(FaultInjectFlowTest, IterationLimitDegradesGracefully) {
  Prepared bench = small_bench(83);
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const Entry before = entry_state(bench, critical);

  FaultInjector::instance().arm_always("sdp.solve.iterlimit");
  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical);
  FaultInjector::instance().reset();

  const GuardStats& gs = out.result.guard_stats;
  EXPECT_GT(gs.solves, 0);
  EXPECT_GT(gs.iteration_limits, 0);
  expect_never_worse(bench, critical, before);
}

TEST_F(FaultInjectFlowTest, ForcedDeadlineKeepsCurrentAssignment) {
  Prepared bench = small_bench(84);
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const Entry before = entry_state(bench, critical);

  // The deadline fires before any tier runs: every solve must resolve to
  // the keep-current tier, i.e. a guaranteed no-op per partition.
  FaultInjector::instance().arm_always("solve_guard.deadline");
  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical);
  FaultInjector::instance().reset();

  const GuardStats& gs = out.result.guard_stats;
  EXPECT_GT(gs.solves, 0);
  EXPECT_GT(gs.deadline_hits, 0);
  EXPECT_GT(gs.tier_used[static_cast<int>(GuardTier::kKeepCurrent)], 0);
  // Nothing between "trivial" and "kept": no tier ever got to run.
  EXPECT_EQ(gs.tier_used[static_cast<int>(GuardTier::kRetry)], 0);
  EXPECT_EQ(gs.tier_used[static_cast<int>(GuardTier::kIlp)], 0);
  EXPECT_EQ(gs.tier_used[static_cast<int>(GuardTier::kNetDp)], 0);
  expect_never_worse(bench, critical, before);
}

TEST_F(FaultInjectFlowTest, TinyWallClockDeadlineDegradesGracefully) {
  Prepared bench = small_bench(85);
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const Entry before = entry_state(bench, critical);

  CplaOptions opt;
  opt.guard.deadline_ms = 1e-6;  // effectively a 0-ms budget per solve
  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical, opt);

  const GuardStats& gs = out.result.guard_stats;
  EXPECT_GT(gs.solves, 0);
  EXPECT_GT(gs.deadline_hits, 0);
  EXPECT_GT(gs.tier_used[static_cast<int>(GuardTier::kKeepCurrent)], 0);
  expect_never_worse(bench, critical, before);
}

TEST_F(FaultInjectFlowTest, IntermittentCholeskyFailureStaysNeverWorse) {
  Prepared bench = small_bench(86);
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const Entry before = entry_state(bench, critical);

  // Fail a window of factorizations mid-run instead of all of them.
  FaultInjector::instance().arm("la.cholesky.factor", 5, 50);
  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical);
  FaultInjector::instance().reset();

  EXPECT_GT(out.result.guard_stats.solves, 0);
  expect_never_worse(bench, critical, before);
}

TEST_F(FaultInjectFlowTest, LagrSolveFailureEscalatesToSdpRescue) {
  // Every Lagrangian partition solve fails: the guard's cross-backend
  // retry tier (a full SDP solve under the kLagr primary) must carry the
  // run, and the contract must hold end to end.
  Prepared bench = small_bench(89);
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const Entry before = entry_state(bench, critical);

  CplaOptions opt;
  opt.engine = Engine::kLagr;
  FaultInjector::instance().arm_always("lagr.solve");
  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical, opt);
  FaultInjector::instance().reset();

  EXPECT_GT(out.result.guard_stats.solves, 0);
  EXPECT_EQ(out.result.guard_stats.tier_used[static_cast<int>(GuardTier::kPrimary)], 0)
      << "an armed lagr.solve passed the primary tier";
  EXPECT_GT(out.result.guard_stats.tier_used[static_cast<int>(GuardTier::kRetry)], 0)
      << "cross-backend SDP rescue never engaged";
  EXPECT_GT(out.result.guard_stats.numerical_failures, 0);
  expect_never_worse(bench, critical, before);
}

TEST_F(FaultInjectFlowTest, IntermittentLagrFailureStaysNeverWorse) {
  Prepared bench = small_bench(90);
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const Entry before = entry_state(bench, critical);

  CplaOptions opt;
  opt.engine = Engine::kLagr;
  FaultInjector::instance().arm("lagr.solve", 3, 20);
  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical, opt);
  FaultInjector::instance().reset();

  EXPECT_GT(out.result.guard_stats.solves, 0);
  expect_never_worse(bench, critical, before);
}

TEST_F(FaultInjectFlowTest, EmptyCriticalSetIsANoOp) {
  Prepared bench = small_bench(87);
  CriticalSet empty;
  empty.released.assign(bench.state->num_nets(), 0);
  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, empty);
  EXPECT_TRUE(out.status.is_ok());
  EXPECT_EQ(out.result.guard_stats.solves, 0);
}

TEST_F(FaultInjectFlowTest, GuardDisabledStillRuns) {
  // The legacy ungated path remains available for ablation.
  Prepared bench = small_bench(88);
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.03);
  const Entry before = entry_state(bench, critical);

  CplaOptions opt;
  opt.guard.enabled = false;
  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical, opt);
  EXPECT_GT(out.result.guard_stats.solves, 0);
  // optimize()'s outer rollback still enforces never-worse.
  expect_never_worse(bench, critical, before);
}

}  // namespace
}  // namespace cpla::core
