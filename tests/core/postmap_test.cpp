// Hand-crafted scenarios for the post-mapping algorithm (Alg 1) and the
// shared coordinate-descent polish, using a grid small enough that every
// capacity interaction is enumerable by eye.

#include <gtest/gtest.h>

#include "src/core/sdp_engine.hpp"
#include "src/util/rng.hpp"
#include "src/grid/layer_stack.hpp"

namespace cpla::core {
namespace {

// Fixture: 4-layer 12x12 grid, capacity 2 everywhere, and N parallel
// two-segment L-nets stacked on the same corridor so they compete for
// tracks.
class PostMapTest : public ::testing::Test {
 protected:
  PostMapTest() : design_("pm", make_grid()) {}

  static grid::GridGraph make_grid() {
    grid::GridGraph g(12, 12, grid::make_layer_stack(4), grid::default_geom());
    for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, 2);
    return g;
  }

  /// Straight horizontal 2-pin net along y=1, x in [1, 5].
  route::SegTree straight_net(int id) {
    grid::Net net;
    net.id = id;
    net.pins = {grid::Pin{1, 1, 0}, grid::Pin{5, 1, 0}};
    route::NetRoute r;
    for (int x = 1; x < 5; ++x) r.add_h(design_.grid.h_edge_id(x, 1));
    return route::extract_tree(design_.grid, net, &r);
  }

  /// Builds a state with `count` identical straight nets, all on layer 0.
  assign::AssignState make_state(int count) {
    std::vector<route::SegTree> trees;
    for (int i = 0; i < count; ++i) trees.push_back(straight_net(i));
    assign::AssignState state(&design_, std::move(trees));
    for (int i = 0; i < count; ++i) state.set_layers(i, {0});
    return state;
  }

  /// One-variable-per-net problem over layers {0, 2}, uniform costs.
  PartitionProblem make_problem(const assign::AssignState& /*state*/, int count) {
    PartitionProblem p;
    rc_ = std::make_unique<timing::RcTable>(design_.grid);
    p.rc = rc_.get();
    for (int i = 0; i < count; ++i) {
      VarGroup var;
      var.net = i;
      var.seg = 0;
      var.current_layer = 0;
      var.layers = {0, 2};
      var.cost = {10.0, 5.0};  // everyone prefers layer 2
      p.vars.push_back(var);
    }
    // One capacity row per (layer, edge) the nets share; remaining = 2 for
    // layer 2 (empty) and 2 for layer 0 (all current usage is ours).
    for (int l : {0, 2}) {
      for (int x = 1; x < 5; ++x) {
        CapRow row;
        row.layer = l;
        row.edge = design_.grid.h_edge_id(x, 1);
        row.cap_remaining = 2;
        for (int i = 0; i < count; ++i) row.members.push_back(i);
        if (static_cast<int>(row.members.size()) > row.cap_remaining) {
          p.cap_rows.push_back(row);
        }
      }
    }
    return p;
  }

  grid::Design design_;
  std::unique_ptr<timing::RcTable> rc_;
};

TEST_F(PostMapTest, CapacityRaceLosersCascade) {
  // 3 nets, everyone's x prefers layer 2, but only 2 fit: the loser must
  // land on layer 0, not be dropped.
  const auto state = make_state(3);
  const PartitionProblem p = make_problem(state, 3);

  std::vector<std::vector<double>> x = {{0.1, 0.9}, {0.2, 0.8}, {0.3, 0.7}};
  const std::vector<int> pick = post_map(p, state, x);
  int on2 = 0, on0 = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    (p.vars[i].layers[pick[i]] == 2 ? on2 : on0) += 1;
  }
  EXPECT_EQ(on2, 2);
  EXPECT_EQ(on0, 1);
  // The strongest x values win the race.
  EXPECT_EQ(p.vars[0].layers[pick[0]], 2);
  EXPECT_EQ(p.vars[1].layers[pick[1]], 2);
  EXPECT_EQ(p.vars[2].layers[pick[2]], 0);
}

TEST_F(PostMapTest, AllFitWhenCapacityAllows) {
  const auto state = make_state(2);
  const PartitionProblem p = make_problem(state, 2);
  std::vector<std::vector<double>> x = {{0.4, 0.6}, {0.4, 0.6}};
  const std::vector<int> pick = post_map(p, state, x);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_EQ(p.vars[i].layers[pick[i]], 2);
}

TEST_F(PostMapTest, RowsFeasibleDetectsViolation) {
  const auto state = make_state(3);
  const PartitionProblem p = make_problem(state, 3);
  EXPECT_TRUE(rows_feasible(p, {0, 0, 1}));   // 2 on layer 0, 1 on layer 2
  EXPECT_FALSE(rows_feasible(p, {1, 1, 1}));  // 3 on layer 2 > cap 2
}

TEST_F(PostMapTest, PolishImprovesWithinCapacity) {
  const auto state = make_state(3);
  const PartitionProblem p = make_problem(state, 3);
  // Start everyone on layer 0 (cost 10 each); polish should move exactly
  // two to layer 2 (cost 5) and stop at the capacity row.
  std::vector<int> pick = {0, 0, 0};
  polish_pick(p, &pick);
  int on2 = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (p.vars[i].layers[pick[i]] == 2) ++on2;
  }
  EXPECT_EQ(on2, 2);
  EXPECT_TRUE(rows_feasible(p, pick));
  EXPECT_NEAR(p.evaluate(pick), 5.0 + 5.0 + 10.0, 1e-12);
}

TEST_F(PostMapTest, PolishRespectsPairCoupling) {
  // Two vars of the same net chained by a pair whose via cost outweighs the
  // per-var preference: polish must move them together or not at all.
  const auto state = make_state(2);
  PartitionProblem p = make_problem(state, 2);
  p.cap_rows.clear();  // capacity out of the way
  VarPair pair;
  pair.child = 1;
  pair.parent = 0;
  pair.junction = {1, 1};
  pair.scale = 100.0;  // huge via cost for any layer mismatch
  pair.load_ratio.assign(4, 0.0);
  p.pairs.push_back(pair);

  std::vector<int> pick = {0, 0};
  polish_pick(p, &pick);
  // Either both moved to layer 2 or both stayed: never split.
  EXPECT_EQ(p.vars[0].layers[pick[0]], p.vars[1].layers[pick[1]]);
}

// Property: on enumerable problems the SDP engine's pick is within a whisker
// of the exhaustive optimum over all capacity-feasible picks.
class EngineOptimality : public PostMapTest, public ::testing::WithParamInterface<int> {};

TEST_P(EngineOptimality, NearExhaustiveOptimum) {
  cpla::Rng rng(1500 + static_cast<std::uint64_t>(GetParam()));
  const int count = 2 + GetParam() % 3;  // 2..4 vars
  const auto state = make_state(count);
  PartitionProblem p = make_problem(state, count);
  // Random costs and a random chain of pairs.
  for (auto& var : p.vars) {
    for (auto& c : var.cost) c = rng.uniform(1.0, 20.0);
  }
  for (int i = 1; i < count; ++i) {
    if (!rng.chance(0.6)) continue;
    VarPair pair;
    pair.child = i;
    pair.parent = i - 1;
    pair.junction = {1, 1};
    pair.scale = rng.uniform(0.0, 3.0);
    pair.load_ratio.assign(4, 0.0);
    p.pairs.push_back(pair);
  }

  // Exhaustive optimum over capacity-feasible picks.
  double best = 1e300;
  std::vector<int> pick(count, 0);
  const int combos = 1 << count;  // 2 options per var
  for (int mask = 0; mask < combos; ++mask) {
    for (int i = 0; i < count; ++i) pick[i] = (mask >> i) & 1;
    if (!rows_feasible(p, pick)) continue;
    best = std::min(best, p.evaluate(pick));
  }
  ASSERT_LT(best, 1e300);

  const EngineResult r = solve_partition_sdp(p, state);
  ASSERT_EQ(r.pick.size(), static_cast<std::size_t>(count));
  // The incumbent (everyone on their current layer 0) may itself be
  // capacity-infeasible in this crafted setup — the incremental guard is
  // then allowed to return it. Otherwise the pick must be feasible and
  // optimal.
  std::vector<int> incumbent(count, 0);
  if (rows_feasible(p, r.pick)) {
    EXPECT_LE(r.objective, best * 1.001 + 1e-9) << "engine missed the optimum";
  } else {
    EXPECT_EQ(r.pick, incumbent) << "infeasible pick that is not the incumbent";
    EXPECT_LE(r.objective, p.evaluate(incumbent) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, EngineOptimality, ::testing::Range(0, 16));

}  // namespace
}  // namespace cpla::core
