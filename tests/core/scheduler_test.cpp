// Scheduler/TaskGraph contract: every node runs exactly once, dependencies
// are respected at any thread count, the single-thread path is
// deterministic (id-ordered topological execution), and a persistent pool
// survives many back-to-back runs. The stress cases run under the `tsan`
// ctest label through test_core.

#include "src/core/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

namespace cpla::core {
namespace {

TEST(Scheduler, RunsEveryNodeExactlyOnce) {
  Scheduler sched(4);
  constexpr int kNodes = 257;
  std::vector<std::atomic<int>> runs(kNodes);
  for (auto& r : runs) r.store(0);
  TaskGraph graph;
  for (int i = 0; i < kNodes; ++i) {
    graph.add([&runs, i] { runs[static_cast<std::size_t>(i)].fetch_add(1); });
  }
  sched.run(&graph);
  for (int i = 0; i < kNodes; ++i) EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST(Scheduler, EmptyGraphIsANoOp) {
  Scheduler sched(2);
  TaskGraph graph;
  sched.run(&graph);  // must not hang
}

TEST(Scheduler, RespectsChainDependencies) {
  // A linear chain forces fully serial execution regardless of threads;
  // the recorded order must be exactly 0..n-1.
  Scheduler sched(4);
  constexpr int kNodes = 64;
  std::vector<int> order;
  std::mutex mu;
  TaskGraph graph;
  int prev = -1;
  for (int i = 0; i < kNodes; ++i) {
    const int id = graph.add([&order, &mu, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
    if (prev >= 0) graph.depend(id, prev);
    prev = id;
  }
  sched.run(&graph);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kNodes));
  for (int i = 0; i < kNodes; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, DiamondJoinSeesBothBranches) {
  // fan-out -> two branches -> join: the join must observe both branch
  // writes (the scheduler's dep counter is the only synchronization).
  for (int threads : {1, 2, 4}) {
    Scheduler sched(threads);
    int a = 0, b = 0, sum = -1;
    TaskGraph graph;
    const int src = graph.add([] {});
    const int left = graph.add([&a] { a = 21; });
    const int right = graph.add([&b] { b = 21; });
    const int join = graph.add([&] { sum = a + b; });
    graph.depend(left, src);
    graph.depend(right, src);
    graph.depend(join, left);
    graph.depend(join, right);
    sched.run(&graph);
    EXPECT_EQ(sum, 42) << "threads=" << threads;
  }
}

TEST(Scheduler, FanOutFanInAggregatesEverySlot) {
  // The flow's shape: one node per partition writing its own slot, then a
  // barrier node consuming all of them.
  Scheduler sched(4);
  constexpr int kSlots = 100;
  std::vector<int> slot(kSlots, 0);
  long total = 0;
  TaskGraph graph;
  std::vector<int> writers;
  for (int i = 0; i < kSlots; ++i) {
    writers.push_back(graph.add([&slot, i] { slot[static_cast<std::size_t>(i)] = i + 1; }));
  }
  const int barrier = graph.add([&] { total = std::accumulate(slot.begin(), slot.end(), 0L); });
  for (int w : writers) graph.depend(barrier, w);
  sched.run(&graph);
  EXPECT_EQ(total, static_cast<long>(kSlots) * (kSlots + 1) / 2);
}

TEST(Scheduler, SingleThreadExecutesInIdTopologicalOrder) {
  // threads == 1 is the deterministic inline path: among ready nodes the
  // lowest id always runs first.
  Scheduler sched(1);
  EXPECT_EQ(sched.threads(), 1);
  std::vector<int> order;
  TaskGraph graph;
  const int n0 = graph.add([&order] { order.push_back(0); });
  const int n1 = graph.add([&order] { order.push_back(1); });
  const int n2 = graph.add([&order] { order.push_back(2); });
  const int n3 = graph.add([&order] { order.push_back(3); });
  graph.depend(n1, n3);  // 1 waits on 3
  (void)n0;
  (void)n2;
  sched.run(&graph);
  // Ready at start: {0, 2, 3}; 1 becomes ready after 3.
  const std::vector<int> expected = {0, 2, 3, 1};
  EXPECT_EQ(order, expected);
}

TEST(Scheduler, PersistentPoolSurvivesManyRuns) {
  Scheduler sched(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    TaskGraph graph;
    for (int i = 0; i < 20; ++i) graph.add([&total] { total.fetch_add(1); });
    sched.run(&graph);
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(Scheduler, StressManyDependentLayers) {
  // Layered DAG: each layer's nodes depend on two nodes of the previous
  // layer. Verifies no lost wakeups / premature completion under load.
  Scheduler sched(4);
  constexpr int kLayers = 40;
  constexpr int kWidth = 16;
  std::vector<std::vector<std::atomic<int>>> done(kLayers);
  for (auto& layer : done) {
    std::vector<std::atomic<int>> row(kWidth);
    for (auto& v : row) v.store(0);
    layer = std::move(row);
  }
  TaskGraph graph;
  std::vector<std::vector<int>> ids(kLayers, std::vector<int>(kWidth));
  std::atomic<bool> violated{false};
  for (int l = 0; l < kLayers; ++l) {
    for (int w = 0; w < kWidth; ++w) {
      ids[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)] =
          graph.add([&done, &violated, l, w] {
            if (l > 0) {
              const auto& prev = done[static_cast<std::size_t>(l - 1)];
              if (prev[static_cast<std::size_t>(w)].load() != 1 ||
                  prev[static_cast<std::size_t>((w + 1) % kWidth)].load() != 1) {
                violated.store(true);
              }
            }
            done[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)].store(1);
          });
      if (l > 0) {
        graph.depend(ids[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)],
                     ids[static_cast<std::size_t>(l - 1)][static_cast<std::size_t>(w)]);
        graph.depend(
            ids[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)],
            ids[static_cast<std::size_t>(l - 1)][static_cast<std::size_t>((w + 1) % kWidth)]);
      }
    }
  }
  sched.run(&graph);
  EXPECT_FALSE(violated.load());
  for (const auto& layer : done) {
    for (const auto& v : layer) EXPECT_EQ(v.load(), 1);
  }
}

}  // namespace
}  // namespace cpla::core
