// BackendArbiter policy units (size, deadline, adaptive history, mode
// forcing, kIlp passthrough) plus the end-to-end hybrid flow: both
// backends exercised through core::optimize(), deterministic across
// repeated runs, never worse than entry.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/backend_arbiter.hpp"
#include "src/core/flow.hpp"
#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"

namespace cpla::core {
namespace {

PartitionProblem problem_with_vars(int n) {
  PartitionProblem p;
  p.vars.resize(static_cast<std::size_t>(n));
  return p;
}

GuardedSolve solve_at_tier(GuardTier tier) {
  GuardedSolve s;
  s.tier = tier;
  return s;
}

TEST(BackendArbiterTest, SdpModeReturnsBaseUntouched) {
  ArbiterOptions opt;  // mode defaults to kSdp
  const BackendArbiter arbiter(opt);
  const GuardOptions guard;
  EXPECT_EQ(arbiter.choose(problem_with_vars(1000), guard, Engine::kSdp), Engine::kSdp);
  EXPECT_EQ(arbiter.choose(problem_with_vars(1000), guard, Engine::kLagr), Engine::kLagr);
}

TEST(BackendArbiterTest, IlpBaseIsNeverOverridden) {
  for (BackendMode mode : {BackendMode::kSdp, BackendMode::kLagr, BackendMode::kHybrid}) {
    ArbiterOptions opt;
    opt.mode = mode;
    const BackendArbiter arbiter(opt);
    EXPECT_EQ(arbiter.choose(problem_with_vars(1000), GuardOptions{}, Engine::kIlp),
              Engine::kIlp)
        << "mode " << to_string(mode);
  }
}

TEST(BackendArbiterTest, LagrModeForcesLagrEverywhere) {
  ArbiterOptions opt;
  opt.mode = BackendMode::kLagr;
  const BackendArbiter arbiter(opt);
  EXPECT_EQ(arbiter.choose(problem_with_vars(1), GuardOptions{}, Engine::kSdp), Engine::kLagr);
}

TEST(BackendArbiterTest, HybridRoutesBySizeThreshold) {
  ArbiterOptions opt;
  opt.mode = BackendMode::kHybrid;
  const BackendArbiter arbiter(opt);
  const GuardOptions guard;  // no deadline
  EXPECT_EQ(arbiter.choose(problem_with_vars(opt.lagr_min_vars - 1), guard, Engine::kSdp),
            Engine::kSdp);
  EXPECT_EQ(arbiter.choose(problem_with_vars(opt.lagr_min_vars), guard, Engine::kSdp),
            Engine::kLagr);
}

TEST(BackendArbiterTest, HybridRoutesByDeadlinePressure) {
  ArbiterOptions opt;
  opt.mode = BackendMode::kHybrid;
  const BackendArbiter arbiter(opt);
  GuardOptions deadline;
  deadline.deadline_ms = 10.0;
  EXPECT_EQ(arbiter.choose(problem_with_vars(opt.deadline_min_vars), deadline, Engine::kSdp),
            Engine::kLagr);
  EXPECT_EQ(
      arbiter.choose(problem_with_vars(opt.deadline_min_vars - 1), deadline, Engine::kSdp),
      Engine::kSdp);
  // Same sizes without a deadline stay on the SDP tier.
  EXPECT_EQ(arbiter.choose(problem_with_vars(opt.deadline_min_vars), GuardOptions{},
                           Engine::kSdp),
            Engine::kSdp);
}

TEST(BackendArbiterTest, HistoryHalvesThresholdUnderEscalationPressure) {
  ArbiterOptions opt;
  opt.mode = BackendMode::kHybrid;
  BackendArbiter arbiter(opt);
  const GuardOptions guard;
  const int half = opt.lagr_min_vars / 2;
  EXPECT_EQ(arbiter.choose(problem_with_vars(half), guard, Engine::kSdp), Engine::kSdp);

  // Feed history_min_solves SDP outcomes, most of them escalated: the
  // observed escalation rate crosses the configured threshold and the size
  // cutoff halves.
  for (int i = 0; i < opt.history_min_solves; ++i) {
    const bool escalated = i < opt.history_min_solves - 1;
    arbiter.record(Engine::kSdp,
                   solve_at_tier(escalated ? GuardTier::kNetDp : GuardTier::kPrimary));
  }
  EXPECT_EQ(arbiter.stats().sdp_chosen, opt.history_min_solves);
  EXPECT_EQ(arbiter.choose(problem_with_vars(half), guard, Engine::kSdp), Engine::kLagr);
  EXPECT_EQ(arbiter.choose(problem_with_vars(half - 1), guard, Engine::kSdp), Engine::kSdp);

  // History disabled: the same record stream must not move the cutoff.
  ArbiterOptions frozen = opt;
  frozen.use_history = false;
  BackendArbiter pure(frozen);
  for (int i = 0; i < 4 * opt.history_min_solves; ++i) {
    pure.record(Engine::kSdp, solve_at_tier(GuardTier::kNetDp));
  }
  EXPECT_EQ(pure.choose(problem_with_vars(half), guard, Engine::kSdp), Engine::kSdp);
}

TEST(BackendArbiterTest, RecordTalliesPerBackendEscalations) {
  ArbiterOptions opt;
  opt.mode = BackendMode::kHybrid;
  BackendArbiter arbiter(opt);
  arbiter.record(Engine::kSdp, solve_at_tier(GuardTier::kPrimary));
  arbiter.record(Engine::kSdp, solve_at_tier(GuardTier::kRetry));
  arbiter.record(Engine::kLagr, solve_at_tier(GuardTier::kPrimary));
  arbiter.record(Engine::kLagr, solve_at_tier(GuardTier::kNetDp));
  const ArbiterStats& s = arbiter.stats();
  EXPECT_EQ(s.sdp_chosen, 2);
  EXPECT_EQ(s.lagr_chosen, 2);
  EXPECT_EQ(s.sdp_escalations, 1);
  EXPECT_EQ(s.lagr_escalations, 1);
}

TEST(BackendArbiterTest, StatsMergeAccumulates) {
  ArbiterStats a{1, 2, 3, 4};
  const ArbiterStats b{10, 20, 30, 40};
  a.merge(b);
  EXPECT_EQ(a.sdp_chosen, 11);
  EXPECT_EQ(a.lagr_chosen, 22);
  EXPECT_EQ(a.sdp_escalations, 33);
  EXPECT_EQ(a.lagr_escalations, 44);
}

// --- End-to-end: the hybrid arbiter inside core::optimize() -------------

class ArbiterFlowTest : public ::testing::Test {
 protected:
  static CplaOptions hybrid_options() {
    CplaOptions opt;
    opt.max_rounds = 2;
    // A raised partition cap plus a lowered size cutoff puts partitions on
    // both sides of the threshold on a small instance.
    opt.partition.max_segments = 48;
    opt.backend.mode = BackendMode::kHybrid;
    opt.backend.lagr_min_vars = 16;
    return opt;
  }

  static std::vector<std::vector<int>> all_layers(const assign::AssignState& state) {
    std::vector<std::vector<int>> out;
    for (int net = 0; net < state.num_nets(); ++net) out.push_back(state.layers(net));
    return out;
  }
};

TEST_F(ArbiterFlowTest, HybridExercisesBothBackendsAndStaysNeverWorse) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 400;
  spec.num_layers = 6;
  spec.seed = 77;
  Prepared bench = prepare(gen::generate(spec));
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.02);
  const LaMetrics before = compute_metrics(*bench.state, *bench.rc, critical);

  const OptimizeResult out = optimize(bench.state.get(), *bench.rc, critical, hybrid_options());
  EXPECT_TRUE(out.status.is_ok());
  EXPECT_GT(out.result.arbiter_stats.lagr_chosen, 0) << "no partition routed to lagr";
  EXPECT_GT(out.result.arbiter_stats.sdp_chosen, 0) << "no partition stayed on sdp";

  const LaMetrics after = compute_metrics(*bench.state, *bench.rc, critical);
  EXPECT_LE(after.avg_tcp, before.avg_tcp * (1.0 + 1e-9));
  EXPECT_LE(after.max_tcp, before.max_tcp * (1.0 + 1e-9));
  EXPECT_LE(after.wire_overflow, before.wire_overflow);
  EXPECT_LE(after.via_overflow, before.via_overflow);
}

TEST_F(ArbiterFlowTest, HybridFlowIsDeterministicAcrossRuns) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 400;
  spec.num_layers = 6;
  spec.seed = 78;
  Prepared bench = prepare(gen::generate(spec));
  const CriticalSet critical = select_critical(*bench.state, *bench.rc, 0.02);
  const std::vector<std::vector<int>> entry = all_layers(*bench.state);

  const OptimizeResult first = optimize(bench.state.get(), *bench.rc, critical, hybrid_options());
  const std::vector<std::vector<int>> landed = all_layers(*bench.state);

  for (int net = 0; net < bench.state->num_nets(); ++net) {
    bench.state->set_layers(net, std::vector<int>(entry[net]));
  }
  const OptimizeResult second =
      optimize(bench.state.get(), *bench.rc, critical, hybrid_options());

  EXPECT_EQ(first.result.arbiter_stats.sdp_chosen, second.result.arbiter_stats.sdp_chosen);
  EXPECT_EQ(first.result.arbiter_stats.lagr_chosen, second.result.arbiter_stats.lagr_chosen);
  EXPECT_EQ(all_layers(*bench.state), landed) << "hybrid flow not replayable";
}

}  // namespace
}  // namespace cpla::core
