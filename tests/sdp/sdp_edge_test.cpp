// Edge-case behaviour of the SDP solver: infeasible/contradictory
// constraint sets must terminate with a non-optimal status instead of
// looping or crashing, and tiny/degenerate problems must solve.

#include <gtest/gtest.h>

#include "src/sdp/solver.hpp"

namespace cpla::sdp {
namespace {

BlockStructure dense(int n) { return {BlockSpec{BlockSpec::Kind::kDense, n}}; }

TEST(SdpEdge, ContradictoryTraceConstraints) {
  SdpProblem p(dense(2));
  p.add_objective_entry(0, 0, 0, 1.0);
  const int a = p.add_constraint(1.0);
  p.add_entry(a, 0, 0, 0, 1.0);
  p.add_entry(a, 0, 1, 1, 1.0);
  const int b = p.add_constraint(3.0);  // trace cannot be both 1 and 3
  p.add_entry(b, 0, 0, 0, 1.0);
  p.add_entry(b, 0, 1, 1, 1.0);

  SdpOptions opt;
  opt.max_iterations = 50;
  const SdpResult r = solve(p, opt);
  EXPECT_NE(r.status, SdpStatus::kOptimal);
}

TEST(SdpEdge, NegativeDefiniteRequirementInfeasible) {
  // X_00 = -1 has no PSD solution.
  SdpProblem p(dense(1));
  p.add_objective_entry(0, 0, 0, 1.0);
  const int c = p.add_constraint(-1.0);
  p.add_entry(c, 0, 0, 0, 1.0);
  SdpOptions opt;
  opt.max_iterations = 50;
  const SdpResult r = solve(p, opt);
  EXPECT_NE(r.status, SdpStatus::kOptimal);
}

TEST(SdpEdge, OneByOneProblem) {
  // min 2*x s.t. x = 5, x >= 0 (scalar PSD).
  SdpProblem p(dense(1));
  p.add_objective_entry(0, 0, 0, 2.0);
  const int c = p.add_constraint(5.0);
  p.add_entry(c, 0, 0, 0, 1.0);
  const SdpResult r = solve(p);
  ASSERT_EQ(r.status, SdpStatus::kOptimal);
  EXPECT_NEAR(r.x.dense(0)(0, 0), 5.0, 1e-5);
  EXPECT_NEAR(r.primal_obj, 10.0, 1e-4);
}

TEST(SdpEdge, PureDiagBlockWithRedundantConstraints) {
  SdpProblem p({BlockSpec{BlockSpec::Kind::kDiag, 3}});
  for (int i = 0; i < 3; ++i) p.add_objective_entry(0, i, i, 1.0 + i);
  const int c1 = p.add_constraint(2.0);
  for (int i = 0; i < 3; ++i) p.add_entry(c1, 0, i, i, 1.0);
  const int c2 = p.add_constraint(4.0);  // scaled duplicate of c1
  for (int i = 0; i < 3; ++i) p.add_entry(c2, 0, i, i, 2.0);

  const SdpResult r = solve(p);
  // Redundant (rank-deficient) constraints exercise the Schur ridge path;
  // the solver may stop on the stall detector but must still land on the
  // optimum: all mass on the cheapest variable.
  ASSERT_TRUE(r.status == SdpStatus::kOptimal || r.status == SdpStatus::kStalled);
  EXPECT_NEAR(r.primal_obj, 2.0, 1e-3);
  EXPECT_NEAR(r.x.diag(0)[0], 2.0, 1e-2);
}

TEST(SdpEdge, ZeroObjective) {
  // Any feasible point is optimal; must converge with gap ~0.
  SdpProblem p(dense(2));
  const int tr = p.add_constraint(1.0);
  p.add_entry(tr, 0, 0, 0, 1.0);
  p.add_entry(tr, 0, 1, 1, 1.0);
  const SdpResult r = solve(p);
  ASSERT_EQ(r.status, SdpStatus::kOptimal);
  EXPECT_NEAR(r.primal_obj, 0.0, 1e-6);
  EXPECT_NEAR(r.x.dense(0)(0, 0) + r.x.dense(0)(1, 1), 1.0, 1e-5);
}

}  // namespace
}  // namespace cpla::sdp
