#include "src/sdp/batch_solver.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/util/fault_inject.hpp"
#include "src/util/rng.hpp"

// Golden contract of the batched tier: for every problem, solve_batch
// returns byte-for-byte the SdpResult that sdp::solve returns — same
// status, same iteration count, and bit-equal doubles in every iterate
// entry and diagnostic. These tests compare across batch sizes that
// exercise partial chunks (1, 2, 7), exact-fill (8 via 33 = 4*8+1), and
// multiple chunks per size class (33), times partition sizes spanning
// the blocked-Cholesky panel boundary (dense dims 33, 65, 97 vs kNb=48).

namespace cpla::sdp {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// Same shape as bench/micro_solvers.cpp's lifted partition SDP: moment
// relaxation of a partition's layer choice with capacity couplings.
SdpProblem lifted_partition_problem(int vars, int layers, Rng* rng) {
  const int dense_dim = 1 + vars * layers;
  const int caps = vars;
  SdpProblem p({BlockSpec{BlockSpec::Kind::kDense, dense_dim},
                BlockSpec{BlockSpec::Kind::kDiag, caps}});
  for (int k = 1; k < dense_dim; ++k) {
    p.add_objective_entry(0, 0, k, 0.5 * rng->uniform(0.1, 1.0));
  }
  for (int k = 1; k + layers < dense_dim; ++k) {
    p.add_objective_entry(0, k, k + layers, rng->uniform(-0.2, 0.2));
  }
  const int c0 = p.add_constraint(1.0);
  p.add_entry(c0, 0, 0, 0, 1.0);
  for (int k = 1; k < dense_dim; ++k) {
    const int c = p.add_constraint(0.0);
    p.add_entry(c, 0, k, k, 1.0);
    p.add_entry(c, 0, 0, k, -0.5);
  }
  for (int v = 0; v < vars; ++v) {
    const int c = p.add_constraint(1.0);
    for (int l = 0; l < layers; ++l) p.add_entry(c, 0, 0, 1 + v * layers + l, 0.5);
  }
  for (int r = 0; r < caps; ++r) {
    const int c = p.add_constraint(rng->uniform(1.0, 2.0));
    for (int v = 0; v < vars; ++v) {
      if (!rng->chance(0.4)) continue;
      const int l = static_cast<int>(rng->uniform_int(0, layers - 1));
      p.add_entry(c, 0, 0, 1 + v * layers + l, 0.5 * rng->uniform(0.5, 1.0));
    }
    p.add_entry(c, 1, r, r, 1.0);
  }
  return p;
}

void expect_matrix_bits_eq(const la::Matrix& a, const la::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(bits(a(r, c)), bits(b(r, c))) << "entry (" << r << "," << c << ")";
    }
  }
}

void expect_block_bits_eq(const BlockMatrix& a, const BlockMatrix& b) {
  ASSERT_EQ(a.num_blocks(), b.num_blocks());
  for (std::size_t k = 0; k < a.num_blocks(); ++k) {
    if (a.is_dense(k)) {
      expect_matrix_bits_eq(a.dense(k), b.dense(k));
    } else {
      ASSERT_EQ(a.diag(k).size(), b.diag(k).size());
      for (std::size_t i = 0; i < a.diag(k).size(); ++i) {
        ASSERT_EQ(bits(a.diag(k)[i]), bits(b.diag(k)[i])) << "diag " << i;
      }
    }
  }
}

void expect_result_bits_eq(const SdpResult& got, const SdpResult& want) {
  EXPECT_EQ(got.status, want.status);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(bits(got.primal_obj), bits(want.primal_obj));
  EXPECT_EQ(bits(got.dual_obj), bits(want.dual_obj));
  EXPECT_EQ(bits(got.rel_gap), bits(want.rel_gap));
  EXPECT_EQ(bits(got.primal_infeas), bits(want.primal_infeas));
  EXPECT_EQ(bits(got.dual_infeas), bits(want.dual_infeas));
  ASSERT_EQ(got.y.size(), want.y.size());
  for (std::size_t i = 0; i < got.y.size(); ++i) {
    ASSERT_EQ(bits(got.y[i]), bits(want.y[i])) << "y[" << i << "]";
  }
  expect_block_bits_eq(got.x, want.x);
  expect_block_bits_eq(got.z, want.z);
}

std::vector<const SdpProblem*> ptrs(const std::vector<SdpProblem>& ps) {
  std::vector<const SdpProblem*> out;
  out.reserve(ps.size());
  for (const auto& p : ps) out.push_back(&p);
  return out;
}

class BatchBitIdentity : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BatchBitIdentity, MatchesScalarSolveBitForBit) {
  const int batch = std::get<0>(GetParam());
  const int vars = std::get<1>(GetParam());
  Rng rng(1234 + static_cast<std::uint64_t>(batch) * 100 + static_cast<std::uint64_t>(vars));
  std::vector<SdpProblem> problems;
  problems.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) problems.push_back(lifted_partition_problem(vars, 4, &rng));

  SdpOptions opt;
  opt.max_iterations = 60;
  BatchSolveStats stats;
  const std::vector<SdpResult> batched = solve_batch(ptrs(problems), opt, {}, &stats);
  ASSERT_EQ(batched.size(), problems.size());
  EXPECT_EQ(stats.batched_lanes, batch);
  EXPECT_EQ(stats.scalar, 0);
  EXPECT_EQ(stats.aborted, 0);

  for (int i = 0; i < batch; ++i) {
    SCOPED_TRACE("problem " + std::to_string(i));
    const SdpResult scalar = solve(problems[static_cast<std::size_t>(i)], opt);
    EXPECT_EQ(scalar.status, SdpStatus::kOptimal);
    expect_result_bits_eq(batched[static_cast<std::size_t>(i)], scalar);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBatches, BatchBitIdentity,
    ::testing::Combine(::testing::Values(1, 2, 7, 33), ::testing::Values(8, 16, 24)),
    [](const auto& param_info) {
      return "batch" + std::to_string(std::get<0>(param_info.param)) + "_vars" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(BatchSolver, RepeatedRunsAreBitIdentical) {
  Rng rng(77);
  std::vector<SdpProblem> problems;
  for (int i = 0; i < 5; ++i) problems.push_back(lifted_partition_problem(10, 4, &rng));
  const SdpOptions opt;
  const auto first = solve_batch(ptrs(problems), opt);
  const auto second = solve_batch(ptrs(problems), opt);
  for (std::size_t i = 0; i < problems.size(); ++i) {
    SCOPED_TRACE("problem " + std::to_string(i));
    expect_result_bits_eq(second[i], first[i]);
  }
}

TEST(BatchSolver, MixedSizeClassesBinIntoSeparateChunks) {
  Rng rng(42);
  std::vector<SdpProblem> problems;
  // Alternate two size classes; each must land in its own chunk.
  for (int i = 0; i < 6; ++i) {
    problems.push_back(lifted_partition_problem(i % 2 == 0 ? 6 : 14, 4, &rng));
  }
  SdpOptions opt;
  BatchSolveStats stats;
  const auto batched = solve_batch(ptrs(problems), opt, {}, &stats);
  EXPECT_EQ(stats.chunks, 2);
  EXPECT_EQ(stats.batched_lanes, 6);
  for (std::size_t i = 0; i < problems.size(); ++i) {
    SCOPED_TRACE("problem " + std::to_string(i));
    expect_result_bits_eq(batched[i], solve(problems[i], opt));
  }
}

TEST(BatchSolver, IneligibleProblemsFallBackToScalar) {
  Rng rng(9);
  std::vector<SdpProblem> problems;
  problems.push_back(lifted_partition_problem(6, 4, &rng));   // eligible
  problems.push_back(lifted_partition_problem(6, 4, &rng));   // eligible
  // Diag-only structure: not batchable.
  SdpProblem diag_only({BlockSpec{BlockSpec::Kind::kDiag, 3}});
  const int c = diag_only.add_constraint(3.0);
  diag_only.add_entry(c, 0, 0, 0, 1.0);
  diag_only.add_entry(c, 0, 1, 1, 1.0);
  diag_only.add_entry(c, 0, 2, 2, 1.0);
  diag_only.add_objective_entry(0, 0, 0, 1.0);
  diag_only.add_objective_entry(0, 1, 1, 2.0);
  diag_only.add_objective_entry(0, 2, 2, 3.0);
  problems.push_back(std::move(diag_only));

  SdpOptions opt;
  BatchSolveStats stats;
  const auto batched = solve_batch(ptrs(problems), opt, {}, &stats);
  EXPECT_EQ(stats.batched_lanes, 2);
  EXPECT_EQ(stats.scalar, 1);
  for (std::size_t i = 0; i < problems.size(); ++i) {
    SCOPED_TRACE("problem " + std::to_string(i));
    expect_result_bits_eq(batched[i], solve(problems[i], opt));
  }
}

TEST(BatchSolver, DeadlineOptionDisablesBatching) {
  Rng rng(5);
  const SdpProblem p = lifted_partition_problem(6, 4, &rng);
  SdpOptions opt;
  opt.time_limit_ms = 1e9;  // any positive deadline needs scalar pacing
  EXPECT_FALSE(batch_eligible(p, opt));
  BatchSolveStats stats;
  const auto res = solve_batch({&p}, opt, {}, &stats);
  EXPECT_EQ(stats.scalar, 1);
  EXPECT_EQ(stats.batched_lanes, 0);
  EXPECT_EQ(res[0].status, SdpStatus::kOptimal);
}

TEST(BatchSolver, SizeLimitsRouteOversizedProblemsScalar) {
  Rng rng(5);
  const SdpProblem p = lifted_partition_problem(6, 4, &rng);
  const SdpOptions opt;
  EXPECT_TRUE(batch_eligible(p, opt));
  BatchLimits tight;
  tight.max_dense_dim = 10;
  EXPECT_FALSE(batch_eligible(p, opt, tight));
  tight = BatchLimits{};
  tight.max_constraints = 5;
  EXPECT_FALSE(batch_eligible(p, opt, tight));
  tight = BatchLimits{};
  tight.max_schur_ops = 10;
  EXPECT_FALSE(batch_eligible(p, opt, tight));
}

// Batch-infrastructure faults degrade to scalar re-solves with
// bit-identical results — armed or not, callers cannot tell apart from
// the answers (only from stats/metrics).
TEST(BatchSolver, PackFaultDegradesToScalarWithIdenticalResults) {
  Rng rng(31);
  std::vector<SdpProblem> problems;
  for (int i = 0; i < 4; ++i) problems.push_back(lifted_partition_problem(8, 4, &rng));
  const SdpOptions opt;
  const auto clean = solve_batch(ptrs(problems), opt);

  FaultInjector::instance().arm("batch.pack", 0);
  BatchSolveStats stats;
  const auto faulted = solve_batch(ptrs(problems), opt, {}, &stats);
  FaultInjector::instance().reset();
  EXPECT_EQ(stats.aborted, 4);
  EXPECT_EQ(stats.batched_lanes, 0);
  for (std::size_t i = 0; i < problems.size(); ++i) {
    SCOPED_TRACE("problem " + std::to_string(i));
    expect_result_bits_eq(faulted[i], clean[i]);
  }
}

TEST(BatchSolver, MidSolveStepFaultDegradesToScalarWithIdenticalResults) {
  Rng rng(32);
  std::vector<SdpProblem> problems;
  for (int i = 0; i < 4; ++i) problems.push_back(lifted_partition_problem(8, 4, &rng));
  const SdpOptions opt;
  const auto clean = solve_batch(ptrs(problems), opt);

  FaultInjector::instance().arm("batch.solve.step", 3);  // abort mid-iteration
  BatchSolveStats stats;
  const auto faulted = solve_batch(ptrs(problems), opt, {}, &stats);
  FaultInjector::instance().reset();
  EXPECT_EQ(stats.aborted, 4);
  for (std::size_t i = 0; i < problems.size(); ++i) {
    SCOPED_TRACE("problem " + std::to_string(i));
    expect_result_bits_eq(faulted[i], clean[i]);
  }
}

TEST(BatchSolver, MirrorsScalarSolveCallMetrics) {
  Rng rng(55);
  std::vector<SdpProblem> problems;
  for (int i = 0; i < 3; ++i) problems.push_back(lifted_partition_problem(6, 4, &rng));
  const std::int64_t calls0 = obs::metrics().counter("sdp.solve.calls").value();
  const std::int64_t lanes0 = obs::metrics().counter("batch.solve.lanes").value();
  solve_batch(ptrs(problems), SdpOptions{});
  EXPECT_EQ(obs::metrics().counter("sdp.solve.calls").value(), calls0 + 3);
  EXPECT_EQ(obs::metrics().counter("batch.solve.lanes").value(), lanes0 + 3);
}

}  // namespace
}  // namespace cpla::sdp
