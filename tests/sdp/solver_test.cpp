#include "src/sdp/solver.hpp"

#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/la/eigen.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/fault_inject.hpp"
#include "src/util/rng.hpp"
#include "src/util/status.hpp"

namespace cpla::sdp {
namespace {

BlockStructure dense_block(int n) { return {BlockSpec{BlockSpec::Kind::kDense, n}}; }

TEST(SdpProblem, ApplyAndAdjoint) {
  SdpProblem p(dense_block(2));
  const int c0 = p.add_constraint(3.0);
  p.add_entry(c0, 0, 0, 0, 1.0);
  p.add_entry(c0, 0, 0, 1, 2.0);  // off-diagonal: counts twice in the trace

  BlockMatrix x(p.structure());
  x.dense(0)(0, 0) = 5.0;
  x.dense(0)(0, 1) = x.dense(0)(1, 0) = 1.5;
  EXPECT_DOUBLE_EQ(p.apply(0, x), 5.0 + 2.0 * 2.0 * 1.5);

  BlockMatrix adj(p.structure());
  p.accumulate_adjoint({2.0}, &adj);
  EXPECT_DOUBLE_EQ(adj.dense(0)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(adj.dense(0)(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(adj.dense(0)(1, 0), 4.0);

  EXPECT_DOUBLE_EQ(p.rhs_vector()[0], 3.0);
}

// min tr(CX) s.t. tr(X) = 1, X >= 0 computes the minimum eigenvalue of C.
TEST(SdpSolver, MinimumEigenvalueDiagonalC) {
  SdpProblem p(dense_block(2));
  p.add_objective_entry(0, 0, 0, 2.0);
  p.add_objective_entry(0, 1, 1, 1.0);
  const int tr = p.add_constraint(1.0);
  p.add_entry(tr, 0, 0, 0, 1.0);
  p.add_entry(tr, 0, 1, 1, 1.0);

  const SdpResult r = solve(p);
  EXPECT_EQ(r.status, SdpStatus::kOptimal);
  EXPECT_NEAR(r.primal_obj, 1.0, 1e-5);
  EXPECT_NEAR(r.x.dense(0)(1, 1), 1.0, 1e-4);
  EXPECT_NEAR(r.x.dense(0)(0, 0), 0.0, 1e-4);
}

TEST(SdpSolver, MinimumEigenvalueDenseC) {
  // C = [[2,1],[1,2]] has eigenvalues {1,3}; optimum X = vv^T, v=(1,-1)/sqrt2.
  SdpProblem p(dense_block(2));
  p.add_objective_entry(0, 0, 0, 2.0);
  p.add_objective_entry(0, 1, 1, 2.0);
  p.add_objective_entry(0, 0, 1, 1.0);
  const int tr = p.add_constraint(1.0);
  p.add_entry(tr, 0, 0, 0, 1.0);
  p.add_entry(tr, 0, 1, 1, 1.0);

  const SdpResult r = solve(p);
  EXPECT_EQ(r.status, SdpStatus::kOptimal);
  EXPECT_NEAR(r.primal_obj, 1.0, 1e-5);
  EXPECT_NEAR(r.dual_obj, 1.0, 1e-5);
  EXPECT_NEAR(r.x.dense(0)(0, 1), -0.5, 1e-4);
}

// Pure LP posed through the diag block: min x0 + 2 x1, x0 + x1 = 1, x >= 0.
TEST(SdpSolver, LpDiagBlock) {
  SdpProblem p({BlockSpec{BlockSpec::Kind::kDiag, 2}});
  p.add_objective_entry(0, 0, 0, 1.0);
  p.add_objective_entry(0, 1, 1, 2.0);
  const int c = p.add_constraint(1.0);
  p.add_entry(c, 0, 0, 0, 1.0);
  p.add_entry(c, 0, 1, 1, 1.0);

  const SdpResult r = solve(p);
  EXPECT_EQ(r.status, SdpStatus::kOptimal);
  EXPECT_NEAR(r.primal_obj, 1.0, 1e-5);
  EXPECT_NEAR(r.x.diag(0)[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x.diag(0)[1], 0.0, 1e-4);
}

// Mixed dense + LP-slack: min tr(CX) s.t. tr(X) + s = 2, s >= 0, with C PSD:
// pushing tr(X) to 0 is optimal, s takes the slack.
TEST(SdpSolver, MixedBlocksWithSlack) {
  SdpProblem p({BlockSpec{BlockSpec::Kind::kDense, 2}, BlockSpec{BlockSpec::Kind::kDiag, 1}});
  p.add_objective_entry(0, 0, 0, 1.0);
  p.add_objective_entry(0, 1, 1, 1.0);
  const int c = p.add_constraint(2.0);
  p.add_entry(c, 0, 0, 0, 1.0);
  p.add_entry(c, 0, 1, 1, 1.0);
  p.add_entry(c, 1, 0, 0, 1.0);

  const SdpResult r = solve(p);
  EXPECT_EQ(r.status, SdpStatus::kOptimal);
  EXPECT_NEAR(r.primal_obj, 0.0, 1e-4);
  EXPECT_NEAR(r.x.diag(1)[0], 2.0, 1e-3);
}

// The lifted binary-QP relaxation the CPLA engine uses, on a tiny instance:
// one segment, two layers, costs 5 and 3. Y = [[1, x'],[x, X]], diag(X)=x,
// x0+x1 = 1. The relaxation is exact here: pick layer 1.
TEST(SdpSolver, LiftedAssignmentExact) {
  SdpProblem p(dense_block(3));
  p.add_objective_entry(0, 1, 1, 5.0);
  p.add_objective_entry(0, 2, 2, 3.0);
  const int corner = p.add_constraint(1.0);
  p.add_entry(corner, 0, 0, 0, 1.0);
  for (int i = 1; i <= 2; ++i) {
    // X_ii - Y_0i = 0  (x^2 = x linkage)
    const int link = p.add_constraint(0.0);
    p.add_entry(link, 0, i, i, 1.0);
    p.add_entry(link, 0, 0, i, -0.5);  // off-diag counts twice
  }
  const int pick = p.add_constraint(1.0);
  p.add_entry(pick, 0, 1, 1, 1.0);
  p.add_entry(pick, 0, 2, 2, 1.0);

  const SdpResult r = solve(p);
  EXPECT_EQ(r.status, SdpStatus::kOptimal);
  EXPECT_NEAR(r.primal_obj, 3.0, 1e-4);
  EXPECT_NEAR(r.x.dense(0)(2, 2), 1.0, 1e-3);
  EXPECT_NEAR(r.x.dense(0)(1, 1), 0.0, 1e-3);
}

TEST(SdpSolver, DualityGapCloses) {
  // Random PSD objective over the spectraplex; verify optimality conditions.
  cpla::Rng rng(77);
  const int n = 5;
  SdpProblem p(dense_block(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) p.add_objective_entry(0, i, j, rng.uniform(-1.0, 1.0));
  }
  const int tr = p.add_constraint(1.0);
  for (int i = 0; i < n; ++i) p.add_entry(tr, 0, i, i, 1.0);

  const SdpResult r = solve(p);
  ASSERT_EQ(r.status, SdpStatus::kOptimal);
  EXPECT_LT(r.rel_gap, 1e-6);
  EXPECT_LT(r.primal_infeas, 1e-6);
  EXPECT_LT(r.dual_infeas, 1e-6);
  // Primal iterate stays PSD (tiny numerical slack allowed).
  EXPECT_TRUE(is_positive_definite(r.x, 1e-9));
  EXPECT_TRUE(is_positive_definite(r.z, 1e-9));
}

// Property sweep: min-eigenvalue SDPs of growing size against the Jacobi
// eigensolver.
class SdpEigSweep : public ::testing::TestWithParam<int> {};

TEST_P(SdpEigSweep, MatchesEigensolver) {
  const int n = GetParam();
  cpla::Rng rng(900 + static_cast<std::uint64_t>(n));
  la::Matrix c(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  SdpProblem p(dense_block(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.uniform(-2.0, 2.0);
      c(i, j) = c(j, i) = v;
      p.add_objective_entry(0, i, j, v);
    }
  }
  const int tr = p.add_constraint(1.0);
  for (int i = 0; i < n; ++i) p.add_entry(tr, 0, i, i, 1.0);

  const SdpResult r = solve(p);
  ASSERT_EQ(r.status, SdpStatus::kOptimal);
  EXPECT_NEAR(r.primal_obj, la::min_eigenvalue(c), 1e-4 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SdpEigSweep, ::testing::Values(2, 3, 4, 6, 8, 12, 16));

// A small well-posed instance reused by the failure-mode tests below.
SdpProblem min_eig_instance() {
  SdpProblem p(dense_block(2));
  p.add_objective_entry(0, 0, 0, 2.0);
  p.add_objective_entry(0, 1, 1, 1.0);
  const int tr = p.add_constraint(1.0);
  p.add_entry(tr, 0, 0, 0, 1.0);
  p.add_entry(tr, 0, 1, 1, 1.0);
  return p;
}

TEST(SdpStatusNames, AllValues) {
  EXPECT_STREQ(to_string(SdpStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SdpStatus::kStalled), "stalled");
  EXPECT_STREQ(to_string(SdpStatus::kIterLimit), "iteration-limit");
  EXPECT_STREQ(to_string(SdpStatus::kNumerical), "numerical-failure");
  EXPECT_STREQ(to_string(SdpStatus::kDeadline), "deadline-exceeded");
  EXPECT_STREQ(to_string(SdpStatus::kBadProblem), "bad-problem");
}

TEST(SdpSolver, DeadlineExhaustionReportsStatus) {
  SdpOptions opt;
  opt.time_limit_ms = 1e-7;  // expires before the first iteration completes
  const SdpResult r = solve(min_eig_instance(), opt);
  EXPECT_EQ(r.status, SdpStatus::kDeadline);
}

TEST(SdpSolver, InjectedNumericalFailureReportsStatus) {
  FaultInjector::instance().arm_always("sdp.solve.numerical");
  const SdpResult r = solve(min_eig_instance());
  EXPECT_EQ(r.status, SdpStatus::kNumerical);
  FaultInjector::instance().reset();
  EXPECT_EQ(solve(min_eig_instance()).status, SdpStatus::kOptimal);
}

TEST(SdpSolver, InjectedIterationLimitReportsStatus) {
  FaultInjector::instance().arm_always("sdp.solve.iterlimit");
  const SdpResult r = solve(min_eig_instance());
  EXPECT_EQ(r.status, SdpStatus::kIterLimit);
  FaultInjector::instance().reset();
}

// Regression: res.iterations used to be set at the top of the loop, so the
// iteration-limit path under-reported by one (max_iterations - 1 instead of
// max_iterations completed iterations).
TEST(SdpSolver, IterationLimitReportsCompletedIterations) {
  SdpOptions opt;
  opt.max_iterations = 3;
  opt.tol = 1e-30;  // unreachable: force the iteration-limit path
  const SdpResult r = solve(min_eig_instance(), opt);
  ASSERT_EQ(r.status, SdpStatus::kIterLimit);
  EXPECT_EQ(r.iterations, 3);
}

// Regression: an off-diagonal entry on a diagonal block used to abort the
// process via CPLA_ASSERT inside add_entry. It is an input-shape error, not
// a programmer invariant: validate() rejects it recoverably and solve()
// refuses with kBadProblem instead of silently mis-solving (the diag block
// storage would have dropped the off-diagonal coefficient).
TEST(SdpSolver, RejectsOffDiagonalEntryOnDiagBlock) {
  SdpProblem p({BlockSpec{BlockSpec::Kind::kDiag, 2}});
  p.add_objective_entry(0, 0, 0, 1.0);
  const int c = p.add_constraint(1.0);
  p.add_entry(c, 0, 0, 1, 1.0);  // off-diagonal on a diagonal block

  const Status vs = p.validate();
  ASSERT_FALSE(vs.is_ok());
  EXPECT_EQ(vs.code(), StatusCode::kBadInput);

  const SdpResult r = solve(p);
  EXPECT_EQ(r.status, SdpStatus::kBadProblem);
  EXPECT_EQ(r.iterations, 0);
}

TEST(SdpSolver, RejectsOffDiagonalObjectiveEntryOnDiagBlock) {
  SdpProblem p({BlockSpec{BlockSpec::Kind::kDiag, 3}});
  p.add_objective_entry(0, 1, 2, 0.5);
  EXPECT_FALSE(p.validate().is_ok());
  EXPECT_EQ(solve(p).status, SdpStatus::kBadProblem);
}

// Failure accounting contract: kStalled is NOT a failure (the best iterate
// is still returned and downstream accepts it); it is tracked in the
// separate sdp.solve.stalls counter. A rejected problem IS a failure.
TEST(SdpSolverCounters, StallsAreNotFailures) {
  obs::Counter& failures = obs::metrics().counter("sdp.solve.failures");
  obs::Counter& stalls = obs::metrics().counter("sdp.solve.stalls");

  const std::int64_t f0 = failures.value();
  const std::int64_t s0 = stalls.value();
  const SdpResult ok = solve(min_eig_instance());
  ASSERT_EQ(ok.status, SdpStatus::kOptimal);
  EXPECT_EQ(failures.value(), f0);
  EXPECT_EQ(stalls.value(), s0);

  SdpProblem bad({BlockSpec{BlockSpec::Kind::kDiag, 2}});
  const int c = bad.add_constraint(1.0);
  bad.add_entry(c, 0, 0, 1, 1.0);
  ASSERT_EQ(solve(bad).status, SdpStatus::kBadProblem);
  EXPECT_EQ(failures.value(), f0 + 1);
  EXPECT_EQ(stalls.value(), s0);
}

// A lifted assignment relaxation in the shape the CPLA engine emits: a
// moment-style dense block Y = [[1, x'],[x, X]] plus a diagonal slack
// block, with x^2 = x linkage, one-layer-per-segment, and capacity rows.
// Large enough (m > 8) to engage the parallel Schur path.
SdpProblem lifted_instance(int vars, int layers, cpla::Rng* rng) {
  const int dim = 1 + vars * layers;
  SdpProblem p({BlockSpec{BlockSpec::Kind::kDense, dim},
                BlockSpec{BlockSpec::Kind::kDiag, vars}});
  for (int k = 1; k < dim; ++k) {
    p.add_objective_entry(0, 0, k, 0.5 * rng->uniform(0.1, 1.0));
    if (k + layers < dim) p.add_objective_entry(0, k, k + layers, rng->uniform(-0.2, 0.2));
  }
  const int corner = p.add_constraint(1.0);
  p.add_entry(corner, 0, 0, 0, 1.0);
  for (int k = 1; k < dim; ++k) {
    const int link = p.add_constraint(0.0);
    p.add_entry(link, 0, k, k, 1.0);
    p.add_entry(link, 0, 0, k, -0.5);  // off-diag counts twice
  }
  for (int v = 0; v < vars; ++v) {
    const int pick = p.add_constraint(1.0);
    for (int l = 0; l < layers; ++l) p.add_entry(pick, 0, 1 + v * layers + l, 1 + v * layers + l, 1.0);
  }
  for (int v = 0; v < vars; ++v) {
    const int cap = p.add_constraint(1.0);
    for (int l = 0; l < layers; ++l) {
      if (rng->chance(0.5)) p.add_entry(cap, 0, 1 + v * layers + l, 1 + v * layers + l, 1.0);
    }
    p.add_entry(cap, 1, v, v, 1.0);  // slack keeps the row an equality
  }
  return p;
}

void expect_bits_equal(const BlockMatrix& a, const BlockMatrix& b) {
  ASSERT_EQ(a.num_blocks(), b.num_blocks());
  for (std::size_t k = 0; k < a.num_blocks(); ++k) {
    if (a.is_dense(k)) {
      const la::Matrix& ma = a.dense(k);
      const la::Matrix& mb = b.dense(k);
      for (std::size_t i = 0; i < ma.rows(); ++i) {
        for (std::size_t j = 0; j < ma.cols(); ++j) ASSERT_EQ(ma(i, j), mb(i, j));
      }
    } else {
      for (std::size_t i = 0; i < a.diag(k).size(); ++i) ASSERT_EQ(a.diag(k)[i], b.diag(k)[i]);
    }
  }
}

void expect_results_bit_identical(const SdpResult& a, const SdpResult& b) {
  ASSERT_EQ(a.status, b.status);
  ASSERT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.primal_obj, b.primal_obj);
  EXPECT_EQ(a.dual_obj, b.dual_obj);
  ASSERT_EQ(a.y.size(), b.y.size());
  for (std::size_t i = 0; i < a.y.size(); ++i) ASSERT_EQ(a.y[i], b.y[i]);
  expect_bits_equal(a.x, b.x);
  expect_bits_equal(a.z, b.z);
}

// The ECO cache replays solutions byte-for-byte, so the solver must be
// bit-identical run to run.
TEST(SdpDeterminism, RepeatedRunsBitIdentical) {
  cpla::Rng rng(42);
  const SdpProblem p = lifted_instance(4, 3, &rng);
  const SdpResult a = solve(p);
  const SdpResult b = solve(p);
  expect_results_bit_identical(a, b);
}

// The parallel paths use a fixed blocking schedule with no
// reduction-order nondeterminism, so a parallel solve is bit-identical to
// a serial one — at any thread count.
TEST(SdpDeterminism, ParallelMatchesSerialBitwise) {
  cpla::Rng rng(43);
  const SdpProblem p = lifted_instance(5, 3, &rng);
  SdpOptions par;
  par.parallel = true;
  SdpOptions ser;
  ser.parallel = false;
  expect_results_bit_identical(solve(p, par), solve(p, ser));
}

#ifdef _OPENMP
TEST(SdpDeterminism, ThreadCountDoesNotChangeBits) {
  cpla::Rng rng(44);
  const SdpProblem p = lifted_instance(5, 4, &rng);
  SdpOptions opt;
  opt.parallel = true;
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const SdpResult one = solve(p, opt);
  omp_set_num_threads(4);
  const SdpResult four = solve(p, opt);
  omp_set_num_threads(saved);
  expect_results_bit_identical(one, four);
}
#endif

}  // namespace
}  // namespace cpla::sdp
