#include "src/sdp/blockmat.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.hpp"

namespace cpla::sdp {
namespace {

BlockStructure two_blocks() {
  return {BlockSpec{BlockSpec::Kind::kDense, 3}, BlockSpec{BlockSpec::Kind::kDiag, 2}};
}

TEST(BlockMatrix, TotalDim) { EXPECT_EQ(total_dim(two_blocks()), 5); }

TEST(BlockMatrix, ScaledIdentity) {
  const BlockMatrix m = BlockMatrix::scaled_identity(two_blocks(), 2.5);
  EXPECT_DOUBLE_EQ(m.dense(0)(1, 1), 2.5);
  EXPECT_DOUBLE_EQ(m.dense(0)(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.diag(1)[0], 2.5);
  EXPECT_DOUBLE_EQ(m.trace(), 5 * 2.5);
}

TEST(BlockMatrix, AxpyInnerNorm) {
  BlockMatrix a = BlockMatrix::scaled_identity(two_blocks(), 1.0);
  BlockMatrix b = BlockMatrix::scaled_identity(two_blocks(), 3.0);
  a.axpy(2.0, b);  // a = 7 * I
  EXPECT_DOUBLE_EQ(a.dense(0)(2, 2), 7.0);
  EXPECT_DOUBLE_EQ(a.inner(b), 7.0 * 3.0 * 5);
  EXPECT_DOUBLE_EQ(a.frob_norm(), std::sqrt(49.0 * 5));
  EXPECT_DOUBLE_EQ(a.max_abs(), 7.0);
  a.set_zero();
  EXPECT_DOUBLE_EQ(a.frob_norm(), 0.0);
}

TEST(BlockMatrix, MultiplyBlockwise) {
  BlockMatrix a(two_blocks()), b(two_blocks());
  a.dense(0)(0, 1) = 2.0;
  b.dense(0)(1, 2) = 3.0;
  a.diag(1) = {2.0, 4.0};
  b.diag(1) = {5.0, 0.5};
  const BlockMatrix c = multiply(a, b);
  EXPECT_DOUBLE_EQ(c.dense(0)(0, 2), 6.0);
  EXPECT_DOUBLE_EQ(c.diag(1)[0], 10.0);
  EXPECT_DOUBLE_EQ(c.diag(1)[1], 2.0);
}

TEST(BlockCholesky, FactorsAndInverts) {
  BlockMatrix a = BlockMatrix::scaled_identity(two_blocks(), 4.0);
  a.dense(0)(0, 1) = a.dense(0)(1, 0) = 1.0;
  auto chol = BlockCholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const BlockMatrix inv = chol->inverse();
  const BlockMatrix prod = multiply(a, inv);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(prod.dense(0)(i, j), i == j ? 1 : 0, 1e-12);
  }
  EXPECT_NEAR(inv.diag(1)[0], 0.25, 1e-15);
  // det(dense) = 4*4*4 - 1*... dense block [[4,1,0],[1,4,0],[0,0,4]] -> det = 60.
  EXPECT_NEAR(chol->log_det(), std::log(60.0) + std::log(16.0), 1e-10);
}

TEST(BlockCholesky, RejectsIndefiniteDense) {
  BlockMatrix a = BlockMatrix::scaled_identity(two_blocks(), 1.0);
  a.dense(0)(0, 0) = -1.0;
  EXPECT_FALSE(BlockCholesky::factor(a).has_value());
  EXPECT_FALSE(is_positive_definite(a));
  EXPECT_TRUE(is_positive_definite(a, 3.0));
}

TEST(BlockCholesky, RejectsNonPositiveDiagBlock) {
  BlockMatrix a = BlockMatrix::scaled_identity(two_blocks(), 1.0);
  a.diag(1)[1] = 0.0;
  EXPECT_FALSE(BlockCholesky::factor(a).has_value());
}

TEST(BlockMatrix, SymmetrizeDenseOnly) {
  BlockMatrix a(two_blocks());
  a.dense(0)(0, 1) = 4.0;
  a.symmetrize();
  EXPECT_DOUBLE_EQ(a.dense(0)(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a.dense(0)(1, 0), 2.0);
}

// The parallel per-block paths must produce the same bits as the serial
// ones (per-block ownership, serial partial-sum reduction in block order).
TEST(BlockMatrix, ParallelFlagDoesNotChangeBits) {
  const BlockStructure structure = {BlockSpec{BlockSpec::Kind::kDense, 7},
                                    BlockSpec{BlockSpec::Kind::kDiag, 5},
                                    BlockSpec{BlockSpec::Kind::kDense, 4}};
  cpla::Rng rng(11);
  BlockMatrix a(structure), b(structure);
  for (std::size_t k = 0; k < a.num_blocks(); ++k) {
    if (a.is_dense(k)) {
      auto& ma = a.dense(k);
      auto& mb = b.dense(k);
      for (std::size_t i = 0; i < ma.rows(); ++i) {
        for (std::size_t j = i; j < ma.cols(); ++j) {
          ma(i, j) = ma(j, i) = rng.uniform(-1.0, 1.0);
          mb(i, j) = mb(j, i) = rng.uniform(-1.0, 1.0);
        }
      }
      for (std::size_t i = 0; i < ma.rows(); ++i) {
        ma(i, i) += static_cast<double>(ma.rows());  // diagonally dominant -> SPD
        mb(i, i) += static_cast<double>(mb.rows());
      }
    } else {
      for (std::size_t i = 0; i < a.diag(k).size(); ++i) {
        a.diag(k)[i] = rng.uniform(0.5, 2.0);
        b.diag(k)[i] = rng.uniform(0.5, 2.0);
      }
    }
  }

  EXPECT_EQ(a.inner(b, /*parallel=*/false), a.inner(b, /*parallel=*/true));
  EXPECT_EQ(a.frob_norm(false), a.frob_norm(true));

  const BlockMatrix ps = multiply(a, b, /*parallel=*/false);
  const BlockMatrix pp = multiply(a, b, /*parallel=*/true);
  BlockMatrix as = a, ap = a;
  as.axpy(0.37, b, /*parallel=*/false);
  ap.axpy(0.37, b, /*parallel=*/true);
  const auto fs = BlockCholesky::factor(a, /*parallel=*/false);
  const auto fp = BlockCholesky::factor(a, /*parallel=*/true);
  ASSERT_TRUE(fs.has_value());
  ASSERT_TRUE(fp.has_value());
  for (std::size_t k = 0; k < a.num_blocks(); ++k) {
    if (a.is_dense(k)) {
      for (std::size_t i = 0; i < a.dense(k).rows(); ++i) {
        for (std::size_t j = 0; j < a.dense(k).cols(); ++j) {
          ASSERT_EQ(ps.dense(k)(i, j), pp.dense(k)(i, j));
          ASSERT_EQ(as.dense(k)(i, j), ap.dense(k)(i, j));
        }
      }
    } else {
      for (std::size_t i = 0; i < a.diag(k).size(); ++i) {
        ASSERT_EQ(ps.diag(k)[i], pp.diag(k)[i]);
        ASSERT_EQ(as.diag(k)[i], ap.diag(k)[i]);
      }
    }
  }
  const BlockMatrix is = fs->inverse();
  const BlockMatrix ip = fp->inverse();
  for (std::size_t k = 0; k < a.num_blocks(); ++k) {
    if (a.is_dense(k)) {
      for (std::size_t i = 0; i < a.dense(k).rows(); ++i) {
        for (std::size_t j = 0; j < a.dense(k).cols(); ++j) {
          ASSERT_EQ(is.dense(k)(i, j), ip.dense(k)(i, j));
        }
      }
    } else {
      for (std::size_t i = 0; i < a.diag(k).size(); ++i) ASSERT_EQ(is.diag(k)[i], ip.diag(k)[i]);
    }
  }
}

}  // namespace
}  // namespace cpla::sdp
