#include "src/ilp/branch_bound.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace cpla::ilp {
namespace {

TEST(BranchBound, Knapsack) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary -> min form.
  // Best: a + c (weight 5, value 17)? b + c = weight 6, value 20. Optimal 20.
  MipModel m;
  const int a = m.add_binary(-10.0);
  const int b = m.add_binary(-13.0);
  const int c = m.add_binary(-7.0);
  m.add_row(lp::Sense::kLe, 6.0, {{a, 3.0}, {b, 4.0}, {c, 2.0}});
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -20.0, 1e-6);
  EXPECT_NEAR(r.x[b], 1.0, 1e-9);
  EXPECT_NEAR(r.x[c], 1.0, 1e-9);
  EXPECT_NEAR(r.x[a], 0.0, 1e-9);
}

TEST(BranchBound, IntegerRounding) {
  // min -x s.t. 2x <= 5, x integer in [0, 10]: LP gives 2.5, MIP gives 2.
  MipModel m;
  const int x = m.add_int_var(0, 10, -1.0);
  m.add_row(lp::Sense::kLe, 5.0, {{x, 2.0}});
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.0, 1e-9);
}

TEST(BranchBound, InfeasibleIntegral) {
  // 0.4 <= x <= 0.6 has no integer point.
  MipModel m;
  const int x = m.add_int_var(0.0, 1.0, 1.0);
  m.add_row(lp::Sense::kGe, 0.4, {{x, 1.0}});
  m.add_row(lp::Sense::kLe, 0.6, {{x, 1.0}});
  EXPECT_EQ(solve_mip(m).status, MipStatus::kInfeasible);
}

TEST(BranchBound, MixedIntegerContinuous) {
  // min x + y, x integer, x + 2y >= 3.2, y in [0, 0.5], x in [0, 5].
  // x = 2 forces y = 0.6 > 0.5 (infeasible), so x = 3, y = 0.1: obj 3.1.
  MipModel m;
  const int x = m.add_int_var(0, 5, 1.0);
  const int y = m.add_var(0, 0.5, 1.0);
  m.add_row(lp::Sense::kGe, 3.2, {{x, 1.0}, {y, 2.0}});
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.1, 1e-6);
  EXPECT_NEAR(r.x[x], 3.0, 1e-9);
}

TEST(BranchBound, EqualityPartition) {
  // Exactly one of three binaries set, costs 5, 3, 4 -> picks the 3.
  MipModel m;
  const int a = m.add_binary(5.0);
  const int b = m.add_binary(3.0);
  const int c = m.add_binary(4.0);
  m.add_row(lp::Sense::kEq, 1.0, {{a, 1.0}, {b, 1.0}, {c, 1.0}});
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
  EXPECT_NEAR(r.x[b], 1.0, 1e-9);
}

TEST(BranchBound, NodeLimitReportsTruncation) {
  MipModel m;
  // A small but nontrivial knapsack; with max_nodes=1 we can at best have
  // explored the root.
  for (int i = 0; i < 8; ++i) m.add_binary(-(1.0 + i * 0.37));
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 8; ++i) row.push_back({i, 1.0 + (i % 3)});
  m.add_row(lp::Sense::kLe, 6.5, row);
  MipOptions opt;
  opt.max_nodes = 1;
  const MipResult r = solve_mip(m, opt);
  EXPECT_TRUE(r.status == MipStatus::kFeasible || r.status == MipStatus::kLimit);
}

// Exhaustive cross-check: random small binary problems vs brute force.
class RandomMipSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomMipSweep, MatchesBruteForce) {
  cpla::Rng rng(500 + static_cast<std::uint64_t>(GetParam()));
  const int n = 2 + GetParam() % 6;  // up to 7 binaries
  MipModel m;
  std::vector<double> cost(n);
  for (int j = 0; j < n; ++j) {
    cost[j] = rng.uniform(-3.0, 3.0);
    m.add_binary(cost[j]);
  }
  const int rows = 1 + GetParam() % 3;
  std::vector<std::vector<double>> coef(rows, std::vector<double>(n, 0.0));
  std::vector<double> rhs(rows);
  for (int i = 0; i < rows; ++i) {
    std::vector<std::pair<int, double>> entries;
    for (int j = 0; j < n; ++j) {
      coef[i][j] = rng.uniform(0.0, 2.0);
      entries.push_back({j, coef[i][j]});
    }
    rhs[i] = rng.uniform(1.0, static_cast<double>(n));
    m.add_row(lp::Sense::kLe, rhs[i], entries);
  }

  // Brute force over all 2^n points.
  double best = 1e100;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool ok = true;
    for (int i = 0; i < rows && ok; ++i) {
      double lhs = 0.0;
      for (int j = 0; j < n; ++j)
        if (mask & (1 << j)) lhs += coef[i][j];
      ok = lhs <= rhs[i] + 1e-12;
    }
    if (!ok) continue;
    double obj = 0.0;
    for (int j = 0; j < n; ++j)
      if (mask & (1 << j)) obj += cost[j];
    best = std::min(best, obj);
  }

  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Random, RandomMipSweep, ::testing::Range(0, 24));

}  // namespace
}  // namespace cpla::ilp
