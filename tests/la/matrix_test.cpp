#include "src/la/matrix.hpp"

#include <gtest/gtest.h>

namespace cpla::la {
namespace {

TEST(Matrix, IdentityProduct) {
  Matrix a(3, 3);
  int v = 1;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  const Matrix i = Matrix::identity(3);
  const Matrix ai = a * i;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(ai(r, c), a(r, c));
}

TEST(Matrix, ProductAgainstHandComputed) {
  Matrix a(2, 3), b(3, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a(2, 4);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = static_cast<double>(r * 10 + c);
  const Matrix att = a.transposed().transposed();
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
}

TEST(Matrix, SymmetrizeAndCheck) {
  Matrix a(2, 2);
  a(0, 1) = 4.0;
  a(1, 0) = 2.0;
  EXPECT_FALSE(a.is_symmetric());
  a.symmetrize();
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
}

TEST(Matrix, AxpyScaleMaxAbs) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1.0;
  b(1, 1) = -5.0;
  a.axpy(2.0, b);
  EXPECT_DOUBLE_EQ(a(1, 1), -10.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 10.0);
  a.scale(-0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), -0.5);
  EXPECT_DOUBLE_EQ(a(1, 1), 5.0);
}

TEST(Matrix, MatVecAndTranspose) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const Vector x = {1.0, 0.0, -1.0};
  const Vector y = mat_vec(a, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);

  const Vector z = mat_tvec(a, {1.0, 1.0});
  ASSERT_EQ(z.size(), 3u);
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(Matrix, DotAndNorms) {
  Matrix a(1, 2), b(1, 2);
  a(0, 0) = 3.0; a(0, 1) = 4.0;
  b(0, 0) = 1.0; b(0, 1) = 1.0;
  EXPECT_DOUBLE_EQ(dot(a, b), 7.0);
  EXPECT_DOUBLE_EQ(frob_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
}

TEST(Matrix, OutOfRangeAborts) {
  Matrix a(2, 2);
  EXPECT_DEATH(a(2, 0), "CPLA_ASSERT");
}

}  // namespace
}  // namespace cpla::la
