// Golden equivalence suite for the blocked dense kernels. The tiled GEMM,
// blocked right-looking Cholesky, multi-RHS triangular solve, and
// triangular-inverse paths must agree with straightforward reference
// implementations across sizes that exercise both full tiles and odd tails
// (1, 2, 7, 31, 64, 65), and must be bit-identical across repeated runs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "src/la/cholesky.hpp"
#include "src/la/matrix.hpp"
#include "src/util/rng.hpp"

namespace cpla::la {
namespace {

Matrix random_dense(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng->normal();
  return m;
}

Matrix random_spd(std::size_t n, Rng* rng) {
  Matrix g = random_dense(n, n, rng);
  Matrix a = g * g.transposed();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

Matrix reference_gemm(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += a(i, k) * b(k, j);
      out(i, j) = sum;
    }
  }
  return out;
}

// Unblocked left-looking Cholesky, the pre-blocking algorithm.
Matrix reference_cholesky(const Matrix& a) {
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    EXPECT_GT(diag, 0.0);
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return l;
}

double rel_diff(const Matrix& a, const Matrix& b) {
  Matrix d = a - b;
  return frob_norm(d) / (1.0 + frob_norm(a));
}

class KernelSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelSizes, GemmMatchesReference) {
  Rng rng(100 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_dense(n, n, &rng);
  const Matrix b = random_dense(n, n, &rng);
  EXPECT_LE(rel_diff(a * b, reference_gemm(a, b)), 1e-12);
}

TEST_P(KernelSizes, GemmRectangularMatchesReference) {
  Rng rng(200 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_dense(n, n + 3, &rng);
  const Matrix b = random_dense(n + 3, 2 * n + 1, &rng);
  EXPECT_LE(rel_diff(a * b, reference_gemm(a, b)), 1e-12);
}

TEST_P(KernelSizes, CholeskyFactorMatchesReference) {
  Rng rng(300 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, &rng);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix ref = reference_cholesky(a);
  EXPECT_LE(rel_diff(chol->l(), ref), 1e-10);
  // And L L^T reconstructs A.
  EXPECT_LE(rel_diff(chol->l() * chol->l().transposed(), a), 1e-10);
}

TEST_P(KernelSizes, MultiRhsSolveMatchesColumnwise) {
  Rng rng(400 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, &rng);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix b = random_dense(n, n + 2, &rng);
  const Matrix x = chol->solve(b);
  ASSERT_EQ(x.rows(), n);
  ASSERT_EQ(x.cols(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    Vector col(n);
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    const Vector ref = chol->solve(col);
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_NEAR(x(r, c), ref[r], 1e-10 * (1.0 + std::fabs(ref[r])))
          << "col " << c << " row " << r;
    }
  }
  // Residual check against the original system.
  EXPECT_LE(rel_diff(a * x, b), 1e-9);
}

TEST_P(KernelSizes, InverseMatchesSolveIdentity) {
  Rng rng(500 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, &rng);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix inv = chol->inverse();
  EXPECT_LE(rel_diff(inv, chol->solve(Matrix::identity(n))), 1e-9);
  EXPECT_LE(rel_diff(a * inv, Matrix::identity(n)), 1e-9);
  // The triangular-inverse construction is symmetric by construction.
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < r; ++c) EXPECT_DOUBLE_EQ(inv(r, c), inv(c, r));
}

INSTANTIATE_TEST_SUITE_P(OddTails, KernelSizes,
                         ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{7},
                                           std::size_t{31}, std::size_t{64}, std::size_t{65}));

TEST(KernelDeterminism, RepeatedRunsBitIdentical) {
  Rng rng(42);
  const Matrix a = random_spd(65, &rng);
  const Matrix b = random_dense(65, 65, &rng);

  const Matrix p1 = a * b;
  const Matrix p2 = a * b;
  for (std::size_t r = 0; r < p1.rows(); ++r)
    for (std::size_t c = 0; c < p1.cols(); ++c) ASSERT_EQ(p1(r, c), p2(r, c));

  const auto c1 = Cholesky::factor(a);
  const auto c2 = Cholesky::factor(a);
  ASSERT_TRUE(c1 && c2);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c <= r; ++c) ASSERT_EQ(c1->l()(r, c), c2->l()(r, c));

  const Matrix i1 = c1->inverse();
  const Matrix i2 = c2->inverse();
  for (std::size_t r = 0; r < i1.rows(); ++r)
    for (std::size_t c = 0; c < i1.cols(); ++c) ASSERT_EQ(i1(r, c), i2(r, c));
}

}  // namespace
}  // namespace cpla::la
