#include "src/la/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/fault_inject.hpp"
#include "src/util/rng.hpp"

namespace cpla::la {
namespace {

Matrix random_spd(std::size_t n, Rng* rng) {
  Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng->normal();
  Matrix a = g * g.transposed();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);  // well-conditioned
  return a;
}

TEST(Cholesky, ReconstructsMatrix) {
  Rng rng(1);
  const Matrix a = random_spd(6, &rng);
  auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix rebuilt = chol->l() * chol->l().transposed();
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c) EXPECT_NEAR(rebuilt(r, c), a(r, c), 1e-10);
}

TEST(Cholesky, SolveResidual) {
  Rng rng(2);
  const Matrix a = random_spd(8, &rng);
  Vector b(8);
  for (auto& v : b) v = rng.normal();
  auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Vector x = chol->solve(b);
  const Vector ax = mat_vec(a, x);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(Cholesky, InverseTimesMatrixIsIdentity) {
  Rng rng(3);
  const Matrix a = random_spd(5, &rng);
  auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix prod = a * chol->inverse();
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_FALSE(Cholesky::factor(a).has_value());
  EXPECT_FALSE(is_positive_definite(a));
  EXPECT_TRUE(is_positive_definite(a, 2.0));  // shifted to PD
}

TEST(Cholesky, RejectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 1.0;
  EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, InjectedFactorFailureIsReportedNotFatal) {
  // A breakdown deep inside a hot loop must surface as nullopt — the same
  // recoverable signal an indefinite matrix produces — never as an abort.
  Rng rng(7);
  const Matrix a = random_spd(4, &rng);
  FaultInjector::instance().arm("la.cholesky.factor", 0);
  EXPECT_FALSE(Cholesky::factor(a).has_value());  // injected breakdown
  EXPECT_TRUE(Cholesky::factor(a).has_value());   // next call is healthy again
  FaultInjector::instance().reset();
}

TEST(Cholesky, LogDetDiagonal) {
  Matrix a(3, 3);
  a(0, 0) = 2.0; a(1, 1) = 3.0; a(2, 2) = 4.0;
  auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_NEAR(chol->log_det(), std::log(24.0), 1e-12);
}

TEST(Cholesky, MatrixSolve) {
  Rng rng(4);
  const Matrix a = random_spd(4, &rng);
  auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix inv = chol->solve(Matrix::identity(4));
  const Matrix prod = a * inv;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

class CholeskySizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySizeSweep, SolveAccuracyAcrossSizes) {
  const int n = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(n));
  const Matrix a = random_spd(static_cast<std::size_t>(n), &rng);
  Vector b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-5.0, 5.0);
  auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Vector x = chol->solve(b);
  const Vector ax = mat_vec(a, x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeSweep, ::testing::Values(1, 2, 3, 5, 10, 20, 50, 100));

}  // namespace
}  // namespace cpla::la
