#include "src/la/eigen.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace cpla::la {
namespace {

Matrix random_sym(std::size_t n, Rng* rng) {
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) a(r, c) = a(c, r) = rng->uniform(-1.0, 1.0);
  return a;
}

TEST(Eigen, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3.0; a(1, 1) = 1.0; a(2, 2) = 2.0;
  const EigenSym e = eigen_sym(a);
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], 3.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  const EigenSym e = eigen_sym(a);
  EXPECT_NEAR(e.values[0], 1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
  EXPECT_NEAR(min_eigenvalue(a), 1.0, 1e-10);
}

TEST(Eigen, ReconstructionAndOrthogonality) {
  Rng rng(9);
  const std::size_t n = 8;
  const Matrix a = random_sym(n, &rng);
  const EigenSym e = eigen_sym(a);

  // V D V^T == A.
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) d(i, i) = e.values[i];
  const Matrix rebuilt = e.vectors * d * e.vectors.transposed();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) EXPECT_NEAR(rebuilt(r, c), a(r, c), 1e-9);

  // V^T V == I.
  const Matrix vtv = e.vectors.transposed() * e.vectors;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) EXPECT_NEAR(vtv(r, c), r == c ? 1.0 : 0.0, 1e-10);
}

TEST(Eigen, ValuesAscending) {
  Rng rng(10);
  const Matrix a = random_sym(12, &rng);
  const EigenSym e = eigen_sym(a);
  for (std::size_t i = 1; i < e.values.size(); ++i) EXPECT_LE(e.values[i - 1], e.values[i]);
}

TEST(Eigen, TraceEqualsSumOfEigenvalues) {
  Rng rng(11);
  const Matrix a = random_sym(10, &rng);
  const EigenSym e = eigen_sym(a);
  double tr = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    tr += a(i, i);
    sum += e.values[i];
  }
  EXPECT_NEAR(tr, sum, 1e-9);
}

TEST(Eigen, EmptyMatrixMinEigenvalue) {
  EXPECT_DOUBLE_EQ(min_eigenvalue(Matrix(0, 0)), 0.0);
}

}  // namespace
}  // namespace cpla::la
