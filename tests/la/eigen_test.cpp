#include "src/la/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.hpp"

namespace cpla::la {
namespace {

Matrix random_sym(std::size_t n, Rng* rng) {
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) a(r, c) = a(c, r) = rng->uniform(-1.0, 1.0);
  return a;
}

TEST(Eigen, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3.0; a(1, 1) = 1.0; a(2, 2) = 2.0;
  const EigenSym e = eigen_sym(a);
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], 3.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  const EigenSym e = eigen_sym(a);
  EXPECT_NEAR(e.values[0], 1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
  EXPECT_NEAR(min_eigenvalue(a), 1.0, 1e-10);
}

TEST(Eigen, ReconstructionAndOrthogonality) {
  Rng rng(9);
  const std::size_t n = 8;
  const Matrix a = random_sym(n, &rng);
  const EigenSym e = eigen_sym(a);

  // V D V^T == A.
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) d(i, i) = e.values[i];
  const Matrix rebuilt = e.vectors * d * e.vectors.transposed();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) EXPECT_NEAR(rebuilt(r, c), a(r, c), 1e-9);

  // V^T V == I.
  const Matrix vtv = e.vectors.transposed() * e.vectors;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) EXPECT_NEAR(vtv(r, c), r == c ? 1.0 : 0.0, 1e-10);
}

TEST(Eigen, ValuesAscending) {
  Rng rng(10);
  const Matrix a = random_sym(12, &rng);
  const EigenSym e = eigen_sym(a);
  for (std::size_t i = 1; i < e.values.size(); ++i) EXPECT_LE(e.values[i - 1], e.values[i]);
}

TEST(Eigen, TraceEqualsSumOfEigenvalues) {
  Rng rng(11);
  const Matrix a = random_sym(10, &rng);
  const EigenSym e = eigen_sym(a);
  double tr = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    tr += a(i, i);
    sum += e.values[i];
  }
  EXPECT_NEAR(tr, sum, 1e-9);
}

TEST(Eigen, EmptyMatrixMinEigenvalue) {
  EXPECT_DOUBLE_EQ(min_eigenvalue(Matrix(0, 0)), 0.0);
}

// Badly scaled inputs: eigenvalues must track the input scale with full
// relative accuracy. The pre-fix solver compared the off-diagonal norm
// against an absolute `1 + frob` floor and skipped rotations below an
// absolute 1e-300, so a matrix scaled by 1e-150 "converged" immediately to
// its unrotated diagonal.
class EigenScaled : public ::testing::TestWithParam<double> {};

TEST_P(EigenScaled, EigenvaluesTrackInputScale) {
  Rng rng(12);
  const std::size_t n = 6;
  const Matrix base = random_sym(n, &rng);
  const EigenSym ref = eigen_sym(base);
  const double s = GetParam();
  Matrix scaled = base;
  scaled.scale(s);
  const EigenSym e = eigen_sym(scaled);
  ASSERT_EQ(e.values.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(e.values[i], s * ref.values[i], 1e-9 * s * (1.0 + std::fabs(ref.values[i])))
        << "scale " << s << " index " << i;
  }
}

TEST_P(EigenScaled, MinEigenvalueTracksInputScale) {
  Rng rng(13);
  const Matrix base = random_sym(8, &rng);
  const double ref = min_eigenvalue(base);
  const double s = GetParam();
  Matrix scaled = base;
  scaled.scale(s);
  EXPECT_NEAR(min_eigenvalue(scaled), s * ref, 1e-9 * s * (1.0 + std::fabs(ref)));
}

TEST_P(EigenScaled, ReconstructionSurvivesScaling) {
  Rng rng(14);
  const std::size_t n = 5;
  Matrix a = random_sym(n, &rng);
  const double s = GetParam();
  a.scale(s);
  const EigenSym e = eigen_sym(a);
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) d(i, i) = e.values[i];
  const Matrix rebuilt = e.vectors * d * e.vectors.transposed();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_NEAR(rebuilt(r, c), a(r, c), 1e-9 * s) << "scale " << s;
}

INSTANTIATE_TEST_SUITE_P(Scales, EigenScaled, ::testing::Values(1e-150, 1.0, 1e+150));

}  // namespace
}  // namespace cpla::la
