#include "src/la/batch.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "src/la/cholesky.hpp"
#include "src/la/matrix.hpp"
#include "src/util/rng.hpp"

// Kernel-level golden contract: every lane-batched kernel reproduces its
// scalar counterpart bit-for-bit per lane, with lanes carrying different
// real dimensions (including ones straddling the kNb = 48 Cholesky panel
// boundary) packed into one padded slab.

namespace cpla::la::batch {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

Matrix random_spd(std::size_t n, Rng* rng) {
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      a(r, c) = a(c, r) = rng->uniform(-1.0, 1.0);
    }
    a(r, r) += static_cast<double>(n);  // diagonally dominant => SPD
  }
  return a;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng->uniform(-2.0, 2.0);
  }
  return m;
}

void expect_lane_eq(const Slab& s, int lane, const Matrix& want, std::size_t n) {
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      ASSERT_EQ(bits(s.at(r, c, lane)), bits(want(r, c)))
          << "lane " << lane << " entry (" << r << "," << c << ")";
    }
  }
}

// Mixed per-lane dims: below, at, and beyond one kNb=48 panel.
constexpr int kDims[kLanes] = {8, 16, 24, 33, 47, 48, 49, 65};
constexpr std::size_t kPad = 65;

TEST(BatchKernels, GemmMatchesScalarOperatorPerLane) {
  Rng rng(1);
  Slab a(kPad, kPad), b(kPad, kPad), out(kPad, kPad);
  std::vector<Matrix> am, bm;
  for (int l = 0; l < kLanes; ++l) {
    // Pack at full padded dim so every lane exercises the same loop
    // bounds; scalar reference at the padded dim must match exactly.
    am.push_back(random_matrix(kPad, kPad, &rng));
    bm.push_back(random_matrix(kPad, kPad, &rng));
    pack_lane(&a, l, am.back());
    pack_lane(&b, l, bm.back());
  }
  gemm(a, b, &out);
  for (int l = 0; l < kLanes; ++l) {
    const Matrix want = am[static_cast<std::size_t>(l)] * bm[static_cast<std::size_t>(l)];
    expect_lane_eq(out, l, want, kPad);
  }
}

TEST(BatchKernels, CholeskyFactorMatchesScalarAtMixedDims) {
  Rng rng(2);
  Slab a(kPad, kPad), l_slab(kPad, kPad);
  std::vector<Matrix> am;
  int n[kLanes];
  bool active[kLanes];
  bool ok[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    n[l] = kDims[l];
    active[l] = true;
    ok[l] = true;
    am.push_back(random_spd(static_cast<std::size_t>(n[l]), &rng));
    pack_lane(&a, l, am.back());
  }
  cholesky_factor(a, n, active, &l_slab, ok);
  for (int l = 0; l < kLanes; ++l) {
    ASSERT_TRUE(ok[l]) << "lane " << l;
    const auto chol = Cholesky::factor(am[static_cast<std::size_t>(l)]);
    ASSERT_TRUE(chol.has_value());
    // Lower triangle must match bit-for-bit; padded diagonal is identity.
    for (int r = 0; r < n[l]; ++r) {
      for (int c = 0; c <= r; ++c) {
        ASSERT_EQ(bits(l_slab.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c), l)),
                  bits(chol->l()(static_cast<std::size_t>(r), static_cast<std::size_t>(c))))
            << "lane " << l << " (" << r << "," << c << ")";
      }
    }
    for (std::size_t r = static_cast<std::size_t>(n[l]); r < kPad; ++r) {
      ASSERT_EQ(l_slab.at(r, r, l), 1.0);
    }
  }
}

TEST(BatchKernels, CholeskyFailedPivotFlagsLaneAndPreservesOthers) {
  Rng rng(3);
  Slab a(kPad, kPad), l_slab(kPad, kPad);
  std::vector<Matrix> am;
  int n[kLanes];
  bool active[kLanes];
  bool ok[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    n[l] = kDims[l];
    active[l] = true;
    ok[l] = true;
    Matrix m = random_spd(static_cast<std::size_t>(n[l]), &rng);
    if (l == 3) m(2, 2) = -100.0;  // indefinite: pivot 2 must fail
    am.push_back(std::move(m));
    pack_lane(&a, l, am.back());
  }
  cholesky_factor(a, n, active, &l_slab, ok);
  for (int l = 0; l < kLanes; ++l) {
    if (l == 3) {
      EXPECT_FALSE(ok[l]);
      continue;
    }
    ASSERT_TRUE(ok[l]) << "lane " << l;
    const auto chol = Cholesky::factor(am[static_cast<std::size_t>(l)]);
    ASSERT_TRUE(chol.has_value());
    for (int r = 0; r < n[l]; ++r) {
      for (int c = 0; c <= r; ++c) {
        ASSERT_EQ(bits(l_slab.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c), l)),
                  bits(chol->l()(static_cast<std::size_t>(r), static_cast<std::size_t>(c))));
      }
    }
  }
}

TEST(BatchKernels, InactiveLanesArePreservedBitForBit) {
  Rng rng(4);
  Slab a(kPad, kPad), l_slab(kPad, kPad);
  int n[kLanes];
  bool active[kLanes];
  bool ok[kLanes];
  std::vector<Matrix> am;
  for (int l = 0; l < kLanes; ++l) {
    n[l] = kDims[l];
    active[l] = true;
    ok[l] = true;
    am.push_back(random_spd(static_cast<std::size_t>(n[l]), &rng));
    pack_lane(&a, l, am.back());
  }
  cholesky_factor(a, n, active, &l_slab, ok);
  const std::vector<double> snapshot(l_slab.data(), l_slab.data() + l_slab.size());
  // Refactor only lanes 0 and 5 from perturbed inputs; every other lane's
  // factor region must be byte-stable (the ridge-retry invariant).
  for (int l : {0, 5}) {
    Matrix m = random_spd(static_cast<std::size_t>(n[l]), &rng);
    pack_lane(&a, l, m);
  }
  for (int l = 0; l < kLanes; ++l) active[l] = (l == 0 || l == 5);
  cholesky_factor(a, n, active, &l_slab, ok);
  for (std::size_t i = 0; i < l_slab.size(); ++i) {
    const int lane = static_cast<int>(i % kLanes);
    if (lane == 0 || lane == 5) continue;
    ASSERT_EQ(bits(l_slab.data()[i]), bits(snapshot[i])) << "flat index " << i;
  }
}

TEST(BatchKernels, SolveAndInverseMatchScalarCholesky) {
  Rng rng(5);
  Slab a(kPad, kPad), l_slab(kPad, kPad), inv(kPad, kPad);
  Slab rhs(kPad, 1), x(kPad, 1);
  int n[kLanes];
  bool active[kLanes];
  bool ok[kLanes];
  std::vector<Matrix> am;
  std::vector<Vector> bv;
  for (int l = 0; l < kLanes; ++l) {
    n[l] = kDims[l];
    active[l] = true;
    ok[l] = true;
    am.push_back(random_spd(static_cast<std::size_t>(n[l]), &rng));
    pack_lane(&a, l, am.back());
    Vector b(static_cast<std::size_t>(n[l]));
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
    for (int i = 0; i < n[l]; ++i) rhs.at(static_cast<std::size_t>(i), 0, l) = b[static_cast<std::size_t>(i)];
    bv.push_back(std::move(b));
  }
  cholesky_factor(a, n, active, &l_slab, ok);
  cholesky_solve_vec(l_slab, rhs, &x);
  cholesky_inverse(l_slab, n, &inv);
  for (int l = 0; l < kLanes; ++l) {
    const auto chol = Cholesky::factor(am[static_cast<std::size_t>(l)]);
    ASSERT_TRUE(chol.has_value());
    const Vector want = chol->solve(bv[static_cast<std::size_t>(l)]);
    for (int i = 0; i < n[l]; ++i) {
      ASSERT_EQ(bits(x.at(static_cast<std::size_t>(i), 0, l)), bits(want[static_cast<std::size_t>(i)]))
          << "lane " << l << " x[" << i << "]";
    }
    // Padded solution rows are exact zero.
    for (std::size_t i = static_cast<std::size_t>(n[l]); i < kPad; ++i) {
      ASSERT_EQ(bits(x.at(i, 0, l)), bits(0.0));
    }
    const Matrix want_inv = chol->inverse();
    for (int r = 0; r < n[l]; ++r) {
      for (int c = 0; c < n[l]; ++c) {
        ASSERT_EQ(bits(inv.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c), l)),
                  bits(want_inv(static_cast<std::size_t>(r), static_cast<std::size_t>(c))))
            << "lane " << l << " inv(" << r << "," << c << ")";
      }
    }
  }
}

TEST(BatchKernels, AxpyScaleSymmetrizeAndReductionsMatchScalar) {
  Rng rng(6);
  constexpr std::size_t kN = 20;
  Slab a(kN, kN), b(kN, kN);
  std::vector<Matrix> am, bm;
  double alpha[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    am.push_back(random_matrix(kN, kN, &rng));
    bm.push_back(random_matrix(kN, kN, &rng));
    alpha[l] = rng.uniform(-1.5, 1.5);
    pack_lane(&a, l, am.back());
    pack_lane(&b, l, bm.back());
  }
  Slab y = a;
  axpy(alpha, b, &y);
  Slab u = a;
  axpy_uniform(-1.0, b, &u);
  Slab s = a;
  scale(alpha, &s);
  Slab sym = a;
  symmetrize(&sym);
  for (int l = 0; l < kLanes; ++l) {
    const auto lu = static_cast<std::size_t>(l);
    Matrix wy = am[lu];
    wy.axpy(alpha[l], bm[lu]);
    expect_lane_eq(y, l, wy, kN);
    Matrix wu = am[lu];
    wu.axpy(-1.0, bm[lu]);
    expect_lane_eq(u, l, wu, kN);
    Matrix ws = am[lu];
    ws.scale(alpha[l]);
    expect_lane_eq(s, l, ws, kN);
    Matrix wsym = am[lu];
    wsym.symmetrize();
    expect_lane_eq(sym, l, wsym, kN);

    EXPECT_EQ(bits(lane_dot(a, b, l, static_cast<int>(kN))), bits(dot(am[lu], bm[lu])));
    EXPECT_EQ(bits(lane_max_abs(a, l, static_cast<int>(kN))), bits(am[lu].max_abs()));
    // Affine dot == materialize both axpys, then dot.
    Matrix xa = am[lu];
    xa.axpy(0.25, bm[lu]);
    Matrix zb = bm[lu];
    zb.axpy(-0.5, am[lu]);
    EXPECT_EQ(bits(lane_dot_affine(a, b, 0.25, b, a, -0.5, l, static_cast<int>(kN))),
              bits(dot(xa, zb)));
  }
}

TEST(BatchKernels, PackUnpackRoundTripsAndZeroFillsPadding) {
  Rng rng(7);
  Slab s(10, 10);
  const Matrix m = random_matrix(6, 6, &rng);
  pack_lane(&s, 2, m);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 10; ++c) {
      if (r < 6 && c < 6) {
        EXPECT_EQ(bits(s.at(r, c, 2)), bits(m(r, c)));
      } else {
        EXPECT_EQ(bits(s.at(r, c, 2)), bits(0.0));
      }
    }
  }
  Matrix out(6, 6);
  unpack_lane(s, 2, &out);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 6; ++c) EXPECT_EQ(bits(out(r, c)), bits(m(r, c)));
  }
}

}  // namespace
}  // namespace cpla::la::batch
