#include "src/la/lu.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace cpla::la {
namespace {

Matrix random_square(std::size_t n, Rng* rng) {
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng->uniform(-2.0, 2.0);
  return a;
}

TEST(Lu, SolveResidual) {
  Rng rng(5);
  const Matrix a = random_square(7, &rng);
  Vector b(7);
  for (auto& v : b) v = rng.normal();
  auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  const Vector x = lu->solve(b);
  const Vector ax = mat_vec(a, x);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(Lu, TransposedSolveResidual) {
  Rng rng(6);
  const Matrix a = random_square(6, &rng);
  Vector b(6);
  for (auto& v : b) v = rng.normal();
  auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  const Vector x = lu->solve_transposed(b);
  const Vector atx = mat_vec(a.transposed(), x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(atx[i], b[i], 1e-9);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  const Vector x = lu->solve({3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RejectsSingular) {
  Matrix a(3, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    a(0, c) = 1.0;
    a(1, c) = 2.0;  // row 1 = 2 * row 0
    a(2, c) = static_cast<double>(c);
  }
  EXPECT_FALSE(Lu::factor(a).has_value());
}

class LuSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(LuSizeSweep, RandomSystems) {
  const int n = GetParam();
  Rng rng(200 + static_cast<std::uint64_t>(n));
  const Matrix a = random_square(static_cast<std::size_t>(n), &rng);
  auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  Vector b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector x = lu->solve(b);
  const Vector ax = mat_vec(a, x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizeSweep, ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace cpla::la
