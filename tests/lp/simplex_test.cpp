#include "src/lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.hpp"

namespace cpla::lp {
namespace {

TEST(Simplex, TwoVarTextbook) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6) with value 36 -> min form objective -36.
  LpProblem p;
  const int x = p.add_var(0, kInf, -3.0);
  const int y = p.add_var(0, kInf, -5.0);
  p.add_row(Sense::kLe, 4.0, {{x, 1.0}});
  p.add_row(Sense::kLe, 12.0, {{y, 2.0}});
  p.add_row(Sense::kLe, 18.0, {{x, 3.0}, {y, 2.0}});
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -36.0, 1e-7);
  EXPECT_NEAR(r.x[x], 2.0, 1e-7);
  EXPECT_NEAR(r.x[y], 6.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 10, x <= 4 -> x=4, y=6, obj 16.
  LpProblem p;
  const int x = p.add_var(0, 4.0, 1.0);
  const int y = p.add_var(0, kInf, 2.0);
  p.add_row(Sense::kEq, 10.0, {{x, 1.0}, {y, 1.0}});
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 16.0, 1e-7);
  EXPECT_NEAR(r.x[x], 4.0, 1e-7);
}

TEST(Simplex, GreaterEqualConstraint) {
  // min 2x + 3y s.t. x + y >= 5, x,y in [0, 10]; optimum x=5, y=0.
  LpProblem p;
  const int x = p.add_var(0, 10.0, 2.0);
  const int y = p.add_var(0, 10.0, 3.0);
  p.add_row(Sense::kGe, 5.0, {{x, 1.0}, {y, 1.0}});
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem p;
  const int x = p.add_var(0, 1.0, 1.0);
  p.add_row(Sense::kGe, 5.0, {{x, 1.0}});
  EXPECT_EQ(solve(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleContradiction) {
  LpProblem p;
  const int x = p.add_var(-kInf, kInf, 0.0);
  p.add_row(Sense::kEq, 1.0, {{x, 1.0}});
  p.add_row(Sense::kEq, 2.0, {{x, 1.0}});
  EXPECT_EQ(solve(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem p;
  p.add_var(0, kInf, -1.0);  // x: unconstrained upward
  const int y = p.add_var(0, kInf, 0.0);
  p.add_row(Sense::kLe, 3.0, {{y, 1.0}});  // x unconstrained upward
  EXPECT_EQ(solve(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, FreeVariable) {
  // min x s.t. x >= -7 via row; x free.
  LpProblem p;
  const int x = p.add_var(-kInf, kInf, 1.0);
  p.add_row(Sense::kGe, -7.0, {{x, 1.0}});
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], -7.0, 1e-7);
}

TEST(Simplex, NegativeRhs) {
  // min -x - y s.t. -x - y >= -4 (i.e. x + y <= 4), x,y in [0,3].
  LpProblem p;
  const int x = p.add_var(0, 3.0, -1.0);
  const int y = p.add_var(0, 3.0, -1.0);
  p.add_row(Sense::kGe, -4.0, {{x, -1.0}, {y, -1.0}});
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-7);
}

TEST(Simplex, BoundFlipOnly) {
  // No rows at all: variables go to their preferred bounds.
  LpProblem p;
  const int x = p.add_var(-1.0, 2.0, -1.0);
  const int y = p.add_var(-3.0, 4.0, 1.0);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.0, 1e-9);
  EXPECT_NEAR(r.x[y], -3.0, 1e-9);
}

TEST(Simplex, NoRowsUnboundedFreeVar) {
  LpProblem p;
  p.add_var(-kInf, kInf, 1.0);
  EXPECT_EQ(solve(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, DegenerateProblem) {
  // Multiple constraints through the same vertex; should still terminate.
  LpProblem p;
  const int x = p.add_var(0, kInf, -1.0);
  const int y = p.add_var(0, kInf, -1.0);
  p.add_row(Sense::kLe, 4.0, {{x, 1.0}, {y, 1.0}});
  p.add_row(Sense::kLe, 4.0, {{x, 1.0}, {y, 1.0}});
  p.add_row(Sense::kLe, 8.0, {{x, 2.0}, {y, 2.0}});
  p.add_row(Sense::kLe, 4.0, {{x, 1.0}});
  p.add_row(Sense::kLe, 4.0, {{y, 1.0}});
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-7);
}

TEST(Simplex, AssignmentPolytopeIsIntegral) {
  // 3x3 assignment LP: the relaxation has integral vertices, so the simplex
  // should return a permutation.
  LpProblem p;
  const double cost[3][3] = {{4, 2, 8}, {4, 3, 7}, {3, 1, 6}};
  int var[3][3];
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) var[i][j] = p.add_var(0.0, 1.0, cost[i][j]);
  for (int i = 0; i < 3; ++i) {
    std::vector<std::pair<int, double>> row, col;
    for (int j = 0; j < 3; ++j) {
      row.push_back({var[i][j], 1.0});
      col.push_back({var[j][i], 1.0});
    }
    p.add_row(Sense::kEq, 1.0, row);
    p.add_row(Sense::kEq, 1.0, col);
  }
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Optimal assignment: (0,1),(1,2),(2,0) -> 2+7+3 = 12.
  EXPECT_NEAR(r.objective, 12.0, 1e-6);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      const double v = r.x[var[i][j]];
      EXPECT_TRUE(std::fabs(v) < 1e-6 || std::fabs(v - 1.0) < 1e-6) << v;
    }
}

class RandomLpSweep : public ::testing::TestWithParam<int> {};

// Property: for random feasible bounded LPs, the simplex solution satisfies
// every constraint and bound, and matches the objective recomputed from x.
TEST_P(RandomLpSweep, SolutionIsFeasible) {
  cpla::Rng rng(300 + static_cast<std::uint64_t>(GetParam()));
  LpProblem p;
  const int n = 3 + GetParam() % 5;
  const int m = 2 + GetParam() % 4;
  for (int j = 0; j < n; ++j) p.add_var(0.0, rng.uniform(1.0, 5.0), rng.uniform(-2.0, 2.0));
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.7)) coeffs.push_back({j, rng.uniform(0.1, 2.0)});
    }
    if (coeffs.empty()) coeffs.push_back({0, 1.0});
    // rhs large enough that x=0 is feasible for <= rows.
    p.add_row(Sense::kLe, rng.uniform(0.5, 10.0), coeffs);
  }
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  double obj = 0.0;
  for (int j = 0; j < n; ++j) {
    EXPECT_GE(r.x[j], -1e-7);
    EXPECT_LE(r.x[j], p.upper(j) + 1e-7);
    obj += p.cost(j) * r.x[j];
  }
  EXPECT_NEAR(obj, r.objective, 1e-7);
  for (int i = 0; i < m; ++i) {
    double lhs = 0.0;
    for (const auto& [var, coef] : p.row(i).coeffs) lhs += coef * r.x[var];
    EXPECT_LE(lhs, p.row(i).rhs + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, RandomLpSweep, ::testing::Range(0, 20));

}  // namespace
}  // namespace cpla::lp
