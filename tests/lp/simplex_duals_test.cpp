// Duality checks on the simplex: for an optimal LP the duals returned must
// satisfy strong duality and complementary slackness within tolerance.

#include <gtest/gtest.h>

#include <cmath>

#include "src/lp/simplex.hpp"
#include "src/util/rng.hpp"

namespace cpla::lp {
namespace {

TEST(SimplexDuals, StrongDualityOnTextbookLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (min form).
  LpProblem p;
  const int x = p.add_var(0, kInf, -3.0);
  const int y = p.add_var(0, kInf, -5.0);
  p.add_row(Sense::kLe, 4.0, {{x, 1.0}});
  p.add_row(Sense::kLe, 12.0, {{y, 2.0}});
  p.add_row(Sense::kLe, 18.0, {{x, 3.0}, {y, 2.0}});
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  ASSERT_EQ(r.duals.size(), 3u);
  // Known optimal duals (min form): y* = (0, -3/2, -1); b'y = objective.
  double dual_obj = 0.0;
  const double rhs[3] = {4.0, 12.0, 18.0};
  for (int i = 0; i < 3; ++i) dual_obj += rhs[i] * r.duals[i];
  EXPECT_NEAR(dual_obj, r.objective, 1e-6);
}

TEST(SimplexDuals, ComplementarySlacknessOnRandomLps) {
  for (int trial = 0; trial < 10; ++trial) {
    cpla::Rng rng(1300 + static_cast<std::uint64_t>(trial));
    LpProblem p;
    const int n = 4 + trial % 4;
    for (int j = 0; j < n; ++j) p.add_var(0.0, 3.0, rng.uniform(-2.0, 0.5));
    const int m = 3;
    for (int i = 0; i < m; ++i) {
      std::vector<std::pair<int, double>> row;
      for (int j = 0; j < n; ++j) row.push_back({j, rng.uniform(0.2, 1.5)});
      p.add_row(Sense::kLe, rng.uniform(2.0, 6.0), row);
    }
    const LpResult r = solve(p);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    // For <= rows of a minimization, duals are <= 0 and a slack row implies
    // a zero dual.
    for (int i = 0; i < m; ++i) {
      double lhs = 0.0;
      for (const auto& [var, coef] : p.row(i).coeffs) lhs += coef * r.x[var];
      EXPECT_LE(r.duals[i], 1e-7) << "wrong dual sign";
      if (lhs < p.row(i).rhs - 1e-6) {
        EXPECT_NEAR(r.duals[i], 0.0, 1e-6) << "slack row with nonzero dual";
      }
    }
  }
}

TEST(SimplexLimits, IterationLimitReported) {
  cpla::Rng rng(7);
  LpProblem p;
  const int n = 12;
  for (int j = 0; j < n; ++j) p.add_var(0.0, 10.0, rng.uniform(-2.0, 2.0));
  for (int i = 0; i < 10; ++i) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < n; ++j) row.push_back({j, rng.uniform(0.1, 1.0)});
    p.add_row(Sense::kLe, rng.uniform(5.0, 20.0), row);
  }
  LpOptions opt;
  opt.max_iterations = 1;  // cannot even finish phase 1
  EXPECT_EQ(solve(p, opt).status, LpStatus::kIterLimit);
}

}  // namespace
}  // namespace cpla::lp
