// Net-level parallel Lagrangian engine (src/lagr/net_engine): the
// never-worse contract on a congested instance, overflow safety, and the
// registered determinism contract — parallel pricing must be bitwise
// identical to the serial path and across repeated runs (this binary
// carries the tsan label; the OpenMP pricing phase runs under the race
// detector).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/critical.hpp"
#include "src/core/pipeline.hpp"
#include "src/gen/synth.hpp"
#include "src/lagr/net_engine.hpp"
#include "src/timing/elmore.hpp"

namespace cpla::lagr {
namespace {

using core::Prepared;

/// Congested instance: tight per-layer tracks give nonzero wire overflow
/// at entry, so the capacity multipliers actually engage (on an overflow-
/// free instance the sub-gradient reduces to pure timing descent).
Prepared congested_bench(std::uint64_t seed) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 420;
  spec.num_layers = 6;
  spec.tracks_per_layer = 2;
  spec.seed = seed;
  return core::prepare(gen::generate(spec));
}

double objective_over(const assign::AssignState& state, const timing::RcTable& rc,
                      const std::vector<int>& nets) {
  double sum = 0.0;
  for (int net : nets) {
    const timing::NetTiming t = timing::compute_timing(state.tree(net), state.layers(net), rc);
    sum += t.max_sink_delay;
  }
  return sum;
}

std::vector<std::vector<int>> snapshot(const assign::AssignState& state) {
  std::vector<std::vector<int>> out;
  for (int net = 0; net < state.num_nets(); ++net) out.push_back(state.layers(net));
  return out;
}

void restore(assign::AssignState* state, const std::vector<std::vector<int>>& layers) {
  for (int net = 0; net < state->num_nets(); ++net) {
    state->set_layers(net, std::vector<int>(layers[net]));
  }
}

TEST(NetLagrEngine, NeverWorseThanEntryOnObjectiveAndOverflow) {
  Prepared bench = congested_bench(301);
  const core::CriticalSet critical =
      core::select_critical(*bench.state, *bench.rc, 0.05);
  ASSERT_FALSE(critical.nets.empty());
  const double entry_obj = objective_over(*bench.state, *bench.rc, critical.nets);
  const long entry_wire_ov = bench.state->wire_overflow();
  const long entry_via_ov = bench.state->via_overflow();

  NetLagrOptions opt;
  opt.iterations = 10;
  const NetLagrResult r = optimize_nets(bench.state.get(), *bench.rc, critical.nets, opt);

  EXPECT_GT(r.iterations_run, 0);
  EXPECT_LE(r.best_objective, r.entry_objective * (1.0 + 1e-12));
  // The landed state must agree with the engine's reported best.
  const double landed = objective_over(*bench.state, *bench.rc, critical.nets);
  EXPECT_NEAR(landed, r.best_objective, 1e-6 * (1.0 + std::abs(r.best_objective)));
  EXPECT_LE(landed, entry_obj * (1.0 + 1e-12));
  EXPECT_LE(bench.state->wire_overflow(), entry_wire_ov);
  EXPECT_LE(bench.state->via_overflow(), entry_via_ov);
}

TEST(NetLagrEngine, ActuallyImprovesTimingOnCongestedInstance) {
  Prepared bench = congested_bench(302);
  const core::CriticalSet critical =
      core::select_critical(*bench.state, *bench.rc, 0.05);
  const double entry_obj = objective_over(*bench.state, *bench.rc, critical.nets);

  const NetLagrResult r = optimize_nets(bench.state.get(), *bench.rc, critical.nets);
  EXPECT_GT(r.moves_committed, 0) << "engine committed nothing";
  EXPECT_LT(r.best_objective, entry_obj) << "engine failed to improve any critical net";
}

TEST(NetLagrEngine, UntouchedNetsKeepTheirAssignment) {
  Prepared bench = congested_bench(303);
  const core::CriticalSet critical =
      core::select_critical(*bench.state, *bench.rc, 0.03);
  const std::vector<std::vector<int>> entry = snapshot(*bench.state);
  std::vector<char> released(static_cast<std::size_t>(bench.state->num_nets()), 0);
  for (int net : critical.nets) released[net] = 1;

  optimize_nets(bench.state.get(), *bench.rc, critical.nets);

  for (int net = 0; net < bench.state->num_nets(); ++net) {
    if (released[net] != 0) continue;
    EXPECT_EQ(bench.state->layers(net), entry[net]) << "non-released net " << net << " moved";
  }
}

TEST(NetLagrEngine, ParallelPricingMatchesSerialBitwise) {
  Prepared bench = congested_bench(304);
  const core::CriticalSet critical =
      core::select_critical(*bench.state, *bench.rc, 0.05);
  const std::vector<std::vector<int>> entry = snapshot(*bench.state);

  NetLagrOptions serial;
  serial.parallel = false;
  const NetLagrResult rs = optimize_nets(bench.state.get(), *bench.rc, critical.nets, serial);
  const std::vector<std::vector<int>> serial_landed = snapshot(*bench.state);

  restore(bench.state.get(), entry);
  NetLagrOptions parallel;
  parallel.parallel = true;
  const NetLagrResult rp =
      optimize_nets(bench.state.get(), *bench.rc, critical.nets, parallel);

  EXPECT_EQ(snapshot(*bench.state), serial_landed) << "parallel landed a different assignment";
  EXPECT_EQ(rp.best_objective, rs.best_objective);  // bitwise: registered contract TU
  EXPECT_EQ(rp.entry_objective, rs.entry_objective);
  EXPECT_EQ(rp.moves_committed, rs.moves_committed);
  EXPECT_EQ(rp.moves_rejected, rs.moves_rejected);
  EXPECT_EQ(rp.iterations_run, rs.iterations_run);
}

TEST(NetLagrEngine, RepeatedRunsAreBitwiseIdentical) {
  Prepared bench = congested_bench(305);
  const core::CriticalSet critical =
      core::select_critical(*bench.state, *bench.rc, 0.05);
  const std::vector<std::vector<int>> entry = snapshot(*bench.state);

  const NetLagrResult a = optimize_nets(bench.state.get(), *bench.rc, critical.nets);
  const std::vector<std::vector<int>> first = snapshot(*bench.state);

  restore(bench.state.get(), entry);
  const NetLagrResult b = optimize_nets(bench.state.get(), *bench.rc, critical.nets);

  EXPECT_EQ(snapshot(*bench.state), first);
  EXPECT_EQ(a.best_objective, b.best_objective);
  EXPECT_EQ(a.moves_committed, b.moves_committed);
  EXPECT_EQ(a.moves_rejected, b.moves_rejected);
}

}  // namespace
}  // namespace cpla::lagr
