#include "src/util/table.hpp"

#include <gtest/gtest.h>

namespace cpla {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"bench", "Avg(Tcp)", "CPU(s)"});
  t.add_row({"adaptec1", "228.54", "85.66"});
  t.add_row({"bigblue1", "409.88", "105.07"});
  const std::string out = t.render();
  EXPECT_NE(out.find("adaptec1"), std::string::npos);
  EXPECT_NE(out.find("409.88"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowArityMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

TEST(FmtNum, Precision) {
  EXPECT_EQ(fmt_num(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_num(10.0, 0), "10");
}

}  // namespace
}  // namespace cpla
