#include "src/util/str.hpp"

#include <gtest/gtest.h>

namespace cpla {
namespace {

TEST(StrSplit, BasicWhitespace) {
  const auto parts = split_ws("  net1 42\t17  \n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "net1");
  EXPECT_EQ(parts[1], "42");
  EXPECT_EQ(parts[2], "17");
}

TEST(StrSplit, EmptyInput) { EXPECT_TRUE(split_ws("").empty()); }

TEST(StrSplit, OnlyDelimiters) { EXPECT_TRUE(split_ws(" \t\n ").empty()); }

TEST(StrSplit, CustomDelims) {
  const auto parts = split_ws("a,b,,c", ",");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(StrTrim, StripsBothEnds) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StrStartsWith, Basics) {
  EXPECT_TRUE(starts_with("adaptec1.gr", "adaptec"));
  EXPECT_FALSE(starts_with("ada", "adaptec"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(StrFormat, Printf) {
  EXPECT_EQ(str_format("%d nets, %.2f ms", 7, 1.5), "7 nets, 1.50 ms");
  EXPECT_EQ(str_format("plain"), "plain");
}

}  // namespace
}  // namespace cpla
