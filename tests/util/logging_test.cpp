#include "src/util/logging.hpp"

#include <gtest/gtest.h>

namespace cpla {
namespace {

TEST(Logging, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

TEST(Logging, SilentSuppressesEverything) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kSilent);
  // Nothing to assert on stderr portably; the contract is "does not crash"
  // for every level and format path.
  log_msg(LogLevel::kDebug, "d %d", 1);
  log_msg(LogLevel::kInfo, "i %s", "x");
  log_msg(LogLevel::kWarn, "w %f", 1.5);
  log_msg(LogLevel::kError, "e");
  set_log_level(before);
}

}  // namespace
}  // namespace cpla
