#include "src/util/status.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/util/check.hpp"
#include "src/util/logging.hpp"

namespace cpla {
namespace {

TEST(StatusCodeNames, AllValues) {
  EXPECT_STREQ(to_string(StatusCode::kOk), "ok");
  EXPECT_STREQ(to_string(StatusCode::kNumericalFailure), "numerical-failure");
  EXPECT_STREQ(to_string(StatusCode::kIterationLimit), "iteration-limit");
  EXPECT_STREQ(to_string(StatusCode::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(to_string(StatusCode::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(StatusCode::kBadInput), "bad-input");
  EXPECT_STREQ(to_string(StatusCode::kInternal), "internal");
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.line(), -1);
  EXPECT_TRUE(Status::ok().is_ok());
}

TEST(Status, CarriesCodeMessageAndLine) {
  const Status s(StatusCode::kBadInput, "truncated pin list", 12);
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kBadInput);
  EXPECT_EQ(s.message(), "truncated pin list");
  EXPECT_EQ(s.line(), 12);
  EXPECT_EQ(s.to_string(), "bad-input (line 12): truncated pin list");
}

TEST(Status, ToStringWithoutLine) {
  const Status s(StatusCode::kNumericalFailure, "Schur factorization failed");
  EXPECT_EQ(s.to_string(), "numerical-failure: Schur factorization failed");
}

TEST(Result, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.status().is_ok());
  EXPECT_EQ(r.value(), 41);
  r.value() += 1;
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsStatus) {
  const Result<int> r(Status(StatusCode::kInfeasible, "no feasible point"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInfeasible);
}

TEST(Result, TakeMovesTheValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  const std::vector<int> v = r.take();
  EXPECT_EQ(v.size(), 3u);
}

Status check_positive(int v) {
  CPLA_CHECK(v > 0, Status(StatusCode::kBadInput, "not positive"));
  return Status::ok();
}

Status check_chain(int v) {
  CPLA_CHECK_OK(check_positive(v));
  return Status(StatusCode::kInternal, "reached the end");
}

TEST(CheckMacros, CplaCheckReturnsStatusOnFailure) {
  EXPECT_TRUE(check_positive(1).is_ok());
  const Status s = check_positive(-1);
  EXPECT_EQ(s.code(), StatusCode::kBadInput);
}

TEST(CheckMacros, CplaCheckOkPropagates) {
  EXPECT_EQ(check_chain(-1).code(), StatusCode::kBadInput);  // propagated
  EXPECT_EQ(check_chain(1).code(), StatusCode::kInternal);   // fell through
}

using StatusDeathTest = ::testing::Test;

TEST(StatusDeathTest, AssertFailLogsExpressionAndAborts) {
  EXPECT_DEATH(CPLA_ASSERT(1 == 2), "CPLA_ASSERT failed: 1 == 2");
}

TEST(StatusDeathTest, AssertFailReportsFailureContext) {
  EXPECT_DEATH(
      {
        ScopedFailureContext ctx(3, 7);
        CPLA_ASSERT_MSG(false, "boom");
      },
      "partition=3 net=7");
}

TEST(StatusDeathTest, AssertFailIsNotSilencedByLogLevel) {
  EXPECT_DEATH(
      {
        set_log_level(LogLevel::kSilent);
        CPLA_ASSERT(false);
      },
      "CPLA_ASSERT failed");
}

TEST(FailureContext, ScopedRestoresPrevious) {
  // Observable only through assert_fail output; here we just exercise the
  // set/restore paths for the nesting case.
  set_failure_context(1, 2);
  {
    ScopedFailureContext inner(5, 6);
    ScopedFailureContext deeper(-1, 9);
  }
  set_failure_context(-1, -1);
}

}  // namespace
}  // namespace cpla
