#include "src/util/svg.hpp"

#include <gtest/gtest.h>

namespace cpla {
namespace {

TEST(Svg, DocumentStructure) {
  SvgCanvas canvas(100, 50);
  canvas.rect(1, 2, 3, 4, "#ff0000");
  canvas.line(0, 0, 10, 10, "#00ff00", 2.0);
  canvas.circle(5, 5, 2, "#0000ff");
  canvas.text(1, 10, "hello", 9);
  const std::string svg = canvas.render();
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("width=\"100\""), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find(">hello</text>"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, RectStrokeOptional) {
  SvgCanvas canvas(10, 10);
  canvas.rect(0, 0, 1, 1, "#ffffff");
  EXPECT_EQ(canvas.render().find("stroke="), std::string::npos);
  canvas.rect(0, 0, 1, 1, "#ffffff", 1.0, "#000000");
  EXPECT_NE(canvas.render().find("stroke=\"#000000\""), std::string::npos);
}

TEST(Svg, HeatColorEndpointsAndClamping) {
  EXPECT_EQ(SvgCanvas::heat_color(0.0), SvgCanvas::heat_color(-1.0));  // clamped
  EXPECT_EQ(SvgCanvas::heat_color(1.0), SvgCanvas::heat_color(2.0));
  EXPECT_EQ(SvgCanvas::heat_color(1.0), "#ff0000");  // hot = red
  // Cold end is bluish: blue channel dominates.
  const std::string cold = SvgCanvas::heat_color(0.0);
  ASSERT_EQ(cold.size(), 7u);
  EXPECT_EQ(cold.substr(1, 2), "00");  // no red
}

TEST(Svg, HeatColorIsValidHexForSweep) {
  for (int i = 0; i <= 20; ++i) {
    const std::string c = SvgCanvas::heat_color(i / 20.0);
    ASSERT_EQ(c.size(), 7u);
    EXPECT_EQ(c[0], '#');
    for (int k = 1; k < 7; ++k) {
      EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c[k])));
    }
  }
}

TEST(Svg, WriteToFile) {
  SvgCanvas canvas(10, 10);
  canvas.rect(0, 0, 5, 5, "#123456");
  EXPECT_TRUE(canvas.write("/tmp/cpla_svg_test.svg"));
  EXPECT_FALSE(canvas.write("/nonexistent-dir/x.svg"));
}

}  // namespace
}  // namespace cpla
