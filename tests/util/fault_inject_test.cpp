#include "src/util/fault_inject.hpp"

#include <gtest/gtest.h>

namespace cpla {
namespace {

class FaultInjectTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectTest, InactiveSiteNeverFires) {
  EXPECT_FALSE(CPLA_FAULT_POINT("test.site"));
  EXPECT_FALSE(CPLA_FAULT_POINT("test.site"));
  // Nothing armed: occurrences are not even counted.
  EXPECT_EQ(FaultInjector::instance().hits("test.site"), 0);
}

TEST_F(FaultInjectTest, FiresOnArmedOccurrenceOnly) {
  FaultInjector::instance().arm("test.site", 2);  // third occurrence
  EXPECT_FALSE(CPLA_FAULT_POINT("test.site"));
  EXPECT_FALSE(CPLA_FAULT_POINT("test.site"));
  EXPECT_TRUE(CPLA_FAULT_POINT("test.site"));
  EXPECT_FALSE(CPLA_FAULT_POINT("test.site"));
  EXPECT_EQ(FaultInjector::instance().hits("test.site"), 4);
}

TEST_F(FaultInjectTest, FiresOnAWindowOfOccurrences) {
  FaultInjector::instance().arm("test.site", 1, 2);  // occurrences 1 and 2
  EXPECT_FALSE(CPLA_FAULT_POINT("test.site"));
  EXPECT_TRUE(CPLA_FAULT_POINT("test.site"));
  EXPECT_TRUE(CPLA_FAULT_POINT("test.site"));
  EXPECT_FALSE(CPLA_FAULT_POINT("test.site"));
}

TEST_F(FaultInjectTest, ArmAlwaysFiresEveryTime) {
  FaultInjector::instance().arm_always("test.site");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(CPLA_FAULT_POINT("test.site"));
  EXPECT_EQ(FaultInjector::instance().hits("test.site"), 5);
}

TEST_F(FaultInjectTest, SitesAreIndependent) {
  FaultInjector::instance().arm_always("test.a");
  EXPECT_TRUE(CPLA_FAULT_POINT("test.a"));
  EXPECT_FALSE(CPLA_FAULT_POINT("test.b"));
}

TEST_F(FaultInjectTest, DisarmStopsFiring) {
  FaultInjector::instance().arm_always("test.site");
  EXPECT_TRUE(CPLA_FAULT_POINT("test.site"));
  FaultInjector::instance().disarm("test.site");
  EXPECT_FALSE(CPLA_FAULT_POINT("test.site"));
}

TEST_F(FaultInjectTest, RearmResetsTheCounter) {
  FaultInjector::instance().arm("test.site", 0);
  EXPECT_TRUE(CPLA_FAULT_POINT("test.site"));
  EXPECT_FALSE(CPLA_FAULT_POINT("test.site"));
  FaultInjector::instance().arm("test.site", 0);  // counter back to zero
  EXPECT_TRUE(CPLA_FAULT_POINT("test.site"));
}

TEST_F(FaultInjectTest, ResetClearsEverything) {
  FaultInjector::instance().arm_always("test.a");
  FaultInjector::instance().arm("test.b", 0);
  FaultInjector::instance().reset();
  EXPECT_FALSE(CPLA_FAULT_POINT("test.a"));
  EXPECT_FALSE(CPLA_FAULT_POINT("test.b"));
  EXPECT_EQ(FaultInjector::instance().hits("test.a"), 0);
}

}  // namespace
}  // namespace cpla
