// The canonical fault-site registry (src/util/fault_sites.hpp) is the
// contract `tools/cpla_lint.py` enforces between library fault points and
// the tests that arm them. These tests pin the registry's own invariants:
// well-formed names, no duplicates, and injector round-trips for every
// declared site — so a malformed entry fails here even before the linter
// runs.

#include "src/util/fault_sites.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

#include "src/util/fault_inject.hpp"

namespace cpla {
namespace {

TEST(FaultSites, RegistryIsNonEmptyAndCountMatches) {
  EXPECT_GT(fault_sites::kCount, 0u);
  EXPECT_EQ(fault_sites::kCount, sizeof(fault_sites::kAll) / sizeof(fault_sites::kAll[0]));
}

TEST(FaultSites, NamesAreUniqueDottedLowercase) {
  std::set<std::string> seen;
  for (const char* site : fault_sites::kAll) {
    const std::string name(site);
    EXPECT_TRUE(seen.insert(name).second) << "duplicate site: " << name;
    EXPECT_NE(name.find('.'), std::string::npos) << "site missing subsystem prefix: " << name;
    EXPECT_NE(name.front(), '.') << name;
    EXPECT_NE(name.back(), '.') << name;
    for (const char c : name) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '_')
          << "site \"" << name << "\" has unexpected character '" << c << "'";
    }
  }
}

TEST(FaultSites, EverySiteRoundTripsThroughTheInjector) {
  FaultInjector& inj = FaultInjector::instance();
  inj.reset();
  for (const char* site : fault_sites::kAll) {
    inj.arm_always(site);
    EXPECT_TRUE(inj.should_fail(site)) << site;
    inj.disarm(site);
    EXPECT_FALSE(inj.should_fail(site)) << site;
  }
  inj.reset();
}

}  // namespace
}  // namespace cpla
