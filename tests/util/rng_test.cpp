#include "src/util/rng.hpp"

#include <gtest/gtest.h>

namespace cpla {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformCoversUnitInterval) {
  Rng rng(11);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace cpla
