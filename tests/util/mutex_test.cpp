// Unit tests for the annotated synchronisation wrappers (src/util/mutex.hpp).
// The suite runs under the tsan preset: the ConcurrentIncrements and CondVar
// cases are real multi-thread exercises, so a regression in the wrapper's
// forwarding (or a future "optimisation" that drops a lock) trips the race
// detector, not just an assertion. The lock discipline itself is written the
// way Clang Thread Safety Analysis requires (explicit wait loops, conditional
// try_lock handling) — this file compiles under -Wthread-safety as errors.

#include "src/util/mutex.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cpla {
namespace {

class Counter {
 public:
  void add(int n) {
    MutexLock lock(mu_);
    value_ += n;
  }
  int value() const {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ CPLA_GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, ConcurrentIncrementsAreSerialized) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  if (!mu.try_lock()) {
    ADD_FAILURE() << "uncontended try_lock must succeed";
    return;
  }
  std::thread contender([&mu] {
    if (mu.try_lock()) {
      mu.unlock();
      ADD_FAILURE() << "try_lock succeeded while the main thread held the mutex";
    }
  });
  contender.join();
  mu.unlock();
  if (mu.try_lock()) {
    mu.unlock();
  } else {
    ADD_FAILURE() << "try_lock must succeed again after unlock";
  }
}

TEST(MutexTest, MutexLockSupportsManualUnlockRelock) {
  Mutex mu;
  MutexLock lock(mu);
  lock.unlock();
  // Another thread can take the mutex in the gap.
  std::thread other([&mu] {
    MutexLock inner(mu);
  });
  other.join();
  lock.lock();  // destructor unlocks once more
}

class Box {
 public:
  void put(int v) {
    MutexLock lock(mu_);
    value_ = v;
    has_value_ = true;
    cv_.notify_one();
  }
  int take() {
    MutexLock lock(mu_);
    while (!has_value_) cv_.wait(mu_);
    has_value_ = false;
    return value_;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool has_value_ CPLA_GUARDED_BY(mu_) = false;
  int value_ CPLA_GUARDED_BY(mu_) = 0;
};

TEST(CondVarTest, WaitWakesOnNotifyWithTheStoredValue) {
  Box box;
  std::thread producer([&box] {
    for (int round = 0; round < 50; ++round) box.put(round);
  });
  // take() consumes each value exactly once; put() overwrites, so the
  // consumer sees a non-decreasing subsequence ending at the last value.
  int last = -1;
  while (last != 49) {
    const int got = box.take();
    EXPECT_GT(got, last);
    last = got;
  }
  producer.join();
}

}  // namespace
}  // namespace cpla
