#include "src/route/route2d.hpp"

#include <gtest/gtest.h>

#include "src/grid/layer_stack.hpp"

namespace cpla::route {
namespace {

grid::GridGraph make_grid() {
  grid::GridGraph g(8, 8, grid::make_layer_stack(4), grid::default_geom());
  for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, 3);
  return g;
}

TEST(NetRouteType, NormalizeSortsAndDeduplicates) {
  NetRoute r;
  r.add_h(5);
  r.add_h(2);
  r.add_h(5);
  r.add_v(9);
  r.add_v(9);
  r.normalize();
  EXPECT_EQ(r.h_edges, (std::vector<int>{2, 5}));
  EXPECT_EQ(r.v_edges, (std::vector<int>{9}));
  EXPECT_EQ(r.wirelength(), 3u);
  EXPECT_FALSE(r.empty());
}

TEST(Usage2DMap, ProjectedCapacities) {
  const grid::GridGraph g = make_grid();
  Usage2D usage(g);
  // Two horizontal layers (0, 2) x cap 3 = 6; same for vertical.
  EXPECT_EQ(usage.h_cap(g.h_edge_id(3, 3)), 6);
  EXPECT_EQ(usage.v_cap(g.v_edge_id(3, 3)), 6);
}

TEST(Usage2DMap, AddRemoveAndOverflow) {
  const grid::GridGraph g = make_grid();
  Usage2D usage(g);
  NetRoute r;
  r.add_h(g.h_edge_id(2, 2));
  for (int i = 0; i < 8; ++i) usage.add(r, +1);
  EXPECT_EQ(usage.h_usage(g.h_edge_id(2, 2)), 8);
  EXPECT_EQ(usage.total_overflow(), 2);  // cap 6
  usage.add(r, -1);
  usage.add(r, -1);
  EXPECT_EQ(usage.total_overflow(), 0);
}

TEST(Usage2DMap, CostGrowsWithCongestionAndHistory) {
  const grid::GridGraph g = make_grid();
  Usage2D usage(g);
  const int e = g.h_edge_id(1, 1);
  const double idle = usage.h_cost(e);
  NetRoute r;
  r.add_h(e);
  for (int i = 0; i < 6; ++i) usage.add(r, +1);  // exactly at capacity
  const double full = usage.h_cost(e);
  EXPECT_GT(full, idle);

  usage.add(r, +1);  // overflowed
  usage.bump_history(2.0);
  const double overflowed = usage.h_cost(e);
  EXPECT_GT(overflowed, full + 2.0);  // history adds on top of congestion
  EXPECT_DOUBLE_EQ(usage.h_history(e), 2.0);
  // Non-overflowed edges keep zero history.
  EXPECT_DOUBLE_EQ(usage.h_history(g.h_edge_id(4, 4)), 0.0);
}

TEST(Usage2DMap, MonotoneCostInUsage) {
  const grid::GridGraph g = make_grid();
  Usage2D usage(g);
  const int e = g.v_edge_id(2, 2);
  NetRoute r;
  r.add_v(e);
  double prev = usage.v_cost(e);
  for (int i = 0; i < 10; ++i) {
    usage.add(r, +1);
    const double cost = usage.v_cost(e);
    EXPECT_GE(cost, prev);
    prev = cost;
  }
}

}  // namespace
}  // namespace cpla::route
