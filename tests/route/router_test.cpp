#include "src/route/router.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/gen/synth.hpp"
#include "src/grid/layer_stack.hpp"
#include "src/route/maze.hpp"
#include "src/util/logging.hpp"

namespace cpla::route {
namespace {

grid::Design small_design(int cap = 10) {
  grid::GridGraph g(12, 12, grid::make_layer_stack(4), grid::default_geom());
  for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, cap);
  return grid::Design("test", std::move(g));
}

/// True if the route connects all of the net's distinct pin cells.
bool connects_all_pins(const grid::GridGraph& g, const grid::Net& net, const NetRoute& r) {
  const auto cells = net.distinct_cells();
  if (cells.size() < 2) return true;
  std::unordered_map<int, std::vector<int>> adj;
  const int xs1 = g.xsize() - 1;
  const int ys1 = g.ysize() - 1;
  for (int id : r.h_edges) {
    const int y = id / xs1, x = id % xs1;
    adj[g.cell_id(x, y)].push_back(g.cell_id(x + 1, y));
    adj[g.cell_id(x + 1, y)].push_back(g.cell_id(x, y));
  }
  for (int id : r.v_edges) {
    const int x = id / ys1, y = id % ys1;
    adj[g.cell_id(x, y)].push_back(g.cell_id(x, y + 1));
    adj[g.cell_id(x, y + 1)].push_back(g.cell_id(x, y));
  }
  std::unordered_set<int> visited;
  std::queue<int> queue;
  queue.push(g.cell_id(cells[0].x, cells[0].y));
  visited.insert(queue.front());
  while (!queue.empty()) {
    const int c = queue.front();
    queue.pop();
    for (int n : adj[c]) {
      if (visited.insert(n).second) queue.push(n);
    }
  }
  for (const auto& pin : cells) {
    if (!visited.count(g.cell_id(pin.x, pin.y))) return false;
  }
  return true;
}

TEST(MazeRoute, StraightShotOnEmptyGrid) {
  const grid::Design d = small_design();
  Usage2D usage(d.grid);
  NetRoute out;
  ASSERT_TRUE(maze_route(d.grid, usage, {d.grid.cell_id(1, 5)}, {d.grid.cell_id(9, 5)}, &out));
  EXPECT_EQ(out.h_edges.size(), 8u);
  EXPECT_TRUE(out.v_edges.empty());
}

TEST(MazeRoute, DetoursAroundCongestion) {
  const grid::Design d = small_design(2);
  Usage2D usage(d.grid);
  // Saturate the direct corridor (y=5) between x=3..7.
  NetRoute blocker;
  for (int x = 3; x < 7; ++x) blocker.add_h(d.grid.h_edge_id(x, 5));
  const int cap = usage.h_cap(d.grid.h_edge_id(3, 5));
  for (int i = 0; i < cap; ++i) usage.add(blocker, +1);

  NetRoute out;
  ASSERT_TRUE(maze_route(d.grid, usage, {d.grid.cell_id(1, 5)}, {d.grid.cell_id(9, 5)}, &out));
  // Must leave row 5 to avoid the saturated edges.
  EXPECT_FALSE(out.v_edges.empty());
  for (int id : out.h_edges) {
    EXPECT_EQ(usage.h_usage(id) < usage.h_cap(id), true) << "routed into full edge";
  }
}

TEST(MazeRoute, MultiSourceTerminatesAtNearest) {
  const grid::Design d = small_design();
  Usage2D usage(d.grid);
  NetRoute out;
  ASSERT_TRUE(maze_route(d.grid, usage, {d.grid.cell_id(0, 0), d.grid.cell_id(8, 8)},
                         {d.grid.cell_id(9, 9)}, &out));
  EXPECT_EQ(out.wirelength(), 2u);  // from (8,8), not (0,0)
}

TEST(Router, AllNetsConnected) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 300;
  spec.num_layers = 4;
  spec.seed = 3;
  const grid::Design d = gen::generate(spec);
  const RoutingResult rr = route_all(d);
  ASSERT_EQ(rr.routes.size(), d.nets.size());
  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    EXPECT_TRUE(connects_all_pins(d.grid, d.nets[n], rr.routes[n])) << d.nets[n].name;
  }
}

TEST(Router, SingleCellNetsGetEmptyRoutes) {
  grid::Design d = small_design();
  grid::Net net;
  net.id = 0;
  net.name = "loop";
  net.pins = {grid::Pin{3, 3, 0}, grid::Pin{3, 3, 0}};
  d.nets.push_back(net);
  const RoutingResult rr = route_all(d);
  EXPECT_TRUE(rr.routes[0].empty());
}

TEST(Router, NegotiationReducesOverflow) {
  // Dense instance on a tight grid: initial pattern routing overflows;
  // negotiation should remove all or nearly all of it.
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 400;
  spec.num_layers = 4;
  spec.tracks_per_layer = 6;
  spec.seed = 11;
  const grid::Design d = gen::generate(spec);

  RouterOptions no_negotiation;
  no_negotiation.max_negotiation_rounds = 0;
  const long before = route_all(d, no_negotiation).overflow;

  const long after = route_all(d).overflow;
  EXPECT_LE(after, before);
}

}  // namespace
}  // namespace cpla::route
