#include "src/route/seg_tree.hpp"

#include <gtest/gtest.h>

#include <set>
#include <cmath>

#include "src/gen/synth.hpp"
#include "src/grid/layer_stack.hpp"
#include "src/route/router.hpp"

namespace cpla::route {
namespace {

grid::GridGraph make_grid(int n = 12) {
  grid::GridGraph g(n, n, grid::make_layer_stack(4), grid::default_geom());
  for (int l = 0; l < 4; ++l) g.fill_layer_capacity(l, 10);
  return g;
}

grid::Net make_net(std::vector<grid::Pin> pins) {
  grid::Net net;
  net.id = 0;
  net.name = "n";
  net.pins = std::move(pins);
  return net;
}

TEST(SegTree, StraightTwoPinNet) {
  const grid::GridGraph g = make_grid();
  const grid::Net net = make_net({{1, 3, 0}, {6, 3, 0}});
  NetRoute r;
  for (int x = 1; x < 6; ++x) r.add_h(g.h_edge_id(x, 3));
  const SegTree tree = extract_tree(g, net, &r);
  ASSERT_EQ(tree.segs.size(), 1u);
  EXPECT_TRUE(tree.segs[0].horizontal);
  EXPECT_EQ(tree.segs[0].length(), 5);
  EXPECT_EQ(tree.segs[0].parent, -1);
  ASSERT_EQ(tree.sinks.size(), 1u);
  EXPECT_EQ(tree.sinks[0].seg_id, 0);
}

TEST(SegTree, LShapeBreaksAtTurn) {
  const grid::GridGraph g = make_grid();
  const grid::Net net = make_net({{1, 1, 0}, {4, 5, 0}});
  NetRoute r;
  for (int x = 1; x < 4; ++x) r.add_h(g.h_edge_id(x, 1));
  for (int y = 1; y < 5; ++y) r.add_v(g.v_edge_id(4, y));
  const SegTree tree = extract_tree(g, net, &r);
  ASSERT_EQ(tree.segs.size(), 2u);
  EXPECT_TRUE(tree.segs[0].horizontal);
  EXPECT_FALSE(tree.segs[1].horizontal);
  EXPECT_EQ(tree.segs[1].parent, 0);
  EXPECT_EQ(tree.segs[0].length() + tree.segs[1].length(), 7);
}

TEST(SegTree, BranchPointSplitsSegments) {
  // T shape: trunk (1,2)-(7,2), branch up at (4,2) to (4,6).
  const grid::GridGraph g = make_grid();
  const grid::Net net = make_net({{1, 2, 0}, {7, 2, 0}, {4, 6, 0}});
  NetRoute r;
  for (int x = 1; x < 7; ++x) r.add_h(g.h_edge_id(x, 2));
  for (int y = 2; y < 6; ++y) r.add_v(g.v_edge_id(4, y));
  const SegTree tree = extract_tree(g, net, &r);
  // Trunk splits at the branch: (1..4), (4..7), (4,2..6) = 3 segments.
  ASSERT_EQ(tree.segs.size(), 3u);
  int h = 0, v = 0;
  for (const auto& s : tree.segs) (s.horizontal ? h : v) += 1;
  EXPECT_EQ(h, 2);
  EXPECT_EQ(v, 1);
  EXPECT_EQ(tree.sinks.size(), 2u);
}

TEST(SegTree, MidSegmentPinBreaksRun) {
  // Pins at (1,1), (4,1), (8,1) on one straight wire: two segments.
  const grid::GridGraph g = make_grid();
  const grid::Net net = make_net({{1, 1, 0}, {8, 1, 0}, {4, 1, 0}});
  NetRoute r;
  for (int x = 1; x < 8; ++x) r.add_h(g.h_edge_id(x, 1));
  const SegTree tree = extract_tree(g, net, &r);
  ASSERT_EQ(tree.segs.size(), 2u);
  EXPECT_EQ(tree.segs[0].length(), 3);
  EXPECT_EQ(tree.segs[1].length(), 4);
  EXPECT_EQ(tree.segs[1].parent, 0);
}

TEST(SegTree, PrunesDanglingWire) {
  const grid::GridGraph g = make_grid();
  const grid::Net net = make_net({{1, 1, 0}, {5, 1, 0}});
  NetRoute r;
  for (int x = 1; x < 5; ++x) r.add_h(g.h_edge_id(x, 1));
  // Dangling stub up from (3,1) that reaches no pin.
  r.add_v(g.v_edge_id(3, 1));
  r.add_v(g.v_edge_id(3, 2));
  const SegTree tree = extract_tree(g, net, &r);
  ASSERT_EQ(tree.segs.size(), 1u);
  EXPECT_EQ(r.v_edges.size(), 0u);  // pruned from the route too
  EXPECT_EQ(r.h_edges.size(), 4u);
}

TEST(SegTree, BreaksCycles) {
  // A loop plus the needed path; extraction keeps a tree.
  const grid::GridGraph g = make_grid();
  const grid::Net net = make_net({{1, 1, 0}, {3, 3, 0}});
  NetRoute r;
  // Full rectangle (1,1)-(3,1)-(3,3)-(1,3)-(1,1).
  for (int x = 1; x < 3; ++x) {
    r.add_h(g.h_edge_id(x, 1));
    r.add_h(g.h_edge_id(x, 3));
  }
  for (int y = 1; y < 3; ++y) {
    r.add_v(g.v_edge_id(1, y));
    r.add_v(g.v_edge_id(3, y));
  }
  const SegTree tree = extract_tree(g, net, &r);
  // Route must now be acyclic: wirelength == cells - 1 on the kept tree.
  EXPECT_LT(r.wirelength(), 8u);
  ASSERT_EQ(tree.sinks.size(), 1u);
  EXPECT_GE(tree.segs.size(), 1u);
}

TEST(SegTree, AllPinsInOneCell) {
  const grid::GridGraph g = make_grid();
  const grid::Net net = make_net({{2, 2, 0}, {2, 2, 0}, {2, 2, 1}});
  NetRoute r;
  const SegTree tree = extract_tree(g, net, &r);
  EXPECT_TRUE(tree.segs.empty());
  ASSERT_EQ(tree.sinks.size(), 2u);
  for (const auto& s : tree.sinks) EXPECT_EQ(s.seg_id, -1);
  EXPECT_EQ(tree.sinks[1].pin_layer, 1);
}

TEST(SegTree, PathToRoot) {
  const grid::GridGraph g = make_grid();
  const grid::Net net = make_net({{1, 1, 0}, {4, 5, 0}});
  NetRoute r;
  for (int x = 1; x < 4; ++x) r.add_h(g.h_edge_id(x, 1));
  for (int y = 1; y < 5; ++y) r.add_v(g.v_edge_id(4, y));
  const SegTree tree = extract_tree(g, net, &r);
  const auto path = tree.path_to_root(1);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 1);
  EXPECT_EQ(path[1], 0);
}

// Structural invariants over a whole routed benchmark.
TEST(SegTree, InvariantsOnRoutedBenchmark) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 24;
  spec.num_nets = 250;
  spec.num_layers = 4;
  spec.seed = 5;
  const grid::Design d = gen::generate(spec);
  RoutingResult rr = route_all(d);

  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    const SegTree tree = extract_tree(d.grid, d.nets[n], &rr.routes[n]);

    std::size_t total_len = 0;
    for (const auto& seg : tree.segs) {
      // Parent precedes child (topological order).
      if (seg.parent >= 0) {
        ASSERT_LT(seg.parent, seg.id);
        // Child starts at some endpoint of the parent.
        const auto& par = tree.segs[seg.parent];
        EXPECT_TRUE(seg.a == par.b || seg.a == par.a);
      }
      // Direction is consistent with the endpoints.
      EXPECT_EQ(seg.horizontal, seg.a.y == seg.b.y);
      EXPECT_GT(seg.length(), 0);
      total_len += static_cast<std::size_t>(seg.length());
      for (int c : seg.children) {
        EXPECT_EQ(tree.segs[c].parent, seg.id);
      }
    }
    // Segment lengths sum to the pruned route's wirelength.
    EXPECT_EQ(total_len, rr.routes[n].wirelength());
    // Every non-driver pin got attached.
    EXPECT_EQ(tree.sinks.size(), d.nets[n].pins.size() - 1);
  }
}

}  // namespace
}  // namespace cpla::route
