#include "src/route/router3d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/assign/state.hpp"
#include "src/gen/synth.hpp"
#include "src/grid/layer_stack.hpp"
#include "src/timing/elmore.hpp"

namespace cpla::route {
namespace {

grid::Design small_design(int n = 16, int layers = 4, int cap = 8) {
  grid::GridGraph g(n, n, grid::make_layer_stack(layers), grid::default_geom());
  for (int l = 0; l < layers; ++l) g.fill_layer_capacity(l, cap);
  return grid::Design("t3d", std::move(g));
}

TEST(Router3D, RoutesTwoPinNet) {
  grid::Design d = small_design();
  grid::Net net;
  net.id = 0;
  net.name = "n0";
  net.pins = {grid::Pin{1, 1, 0}, grid::Pin{8, 6, 0}};
  d.nets.push_back(net);

  const Routing3DResult rr = route_all_3d(d);
  ASSERT_EQ(rr.routes.size(), 1u);
  EXPECT_FALSE(rr.routes[0].empty());
  EXPECT_EQ(rr.wire_overflow, 0);

  const Tree3D t = extract_tree_3d(d.grid, net, rr.routes[0]);
  ASSERT_FALSE(t.tree.segs.empty());
  ASSERT_EQ(t.layers.size(), t.tree.segs.size());
  ASSERT_EQ(t.tree.sinks.size(), 1u);
  // Wirelength of segments >= manhattan distance.
  int total = 0;
  for (const auto& s : t.tree.segs) total += s.length();
  EXPECT_GE(total, 12);
}

TEST(Router3D, DirectionLegalLayers) {
  grid::Design d = small_design();
  for (int i = 0; i < 30; ++i) {
    grid::Net net;
    net.id = i;
    // Built in two steps: operator+(const char*, string&&) trips gcc 12's
    // -Wrestrict false positive (GCC PR105651) under -Werror.
    net.name = "n";
    net.name += std::to_string(i);
    net.pins = {grid::Pin{(i * 3) % 14 + 1, (i * 5) % 14 + 1, 0},
                grid::Pin{(i * 7) % 14 + 1, (i * 11) % 14 + 1, 0}};
    d.nets.push_back(net);
  }
  const Routing3DResult rr = route_all_3d(d);
  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    const Tree3D t = extract_tree_3d(d.grid, d.nets[n], rr.routes[n]);
    for (const auto& seg : t.tree.segs) {
      EXPECT_EQ(d.grid.is_horizontal(t.layers[seg.id]), seg.horizontal);
      EXPECT_GT(seg.length(), 0);
      if (seg.parent >= 0) {
        EXPECT_LT(seg.parent, seg.id);  // topological order
      }
    }
    EXPECT_EQ(t.tree.sinks.size(), d.nets[n].pins.size() - 1);
  }
}

TEST(Router3D, TreesFeedTimingAndState) {
  gen::SynthSpec spec;
  spec.xsize = spec.ysize = 20;
  spec.num_nets = 120;
  spec.num_layers = 6;
  spec.seed = 121;
  const grid::Design d = gen::generate(spec);
  const Routing3DResult rr = route_all_3d(d);

  std::vector<SegTree> trees;
  std::vector<std::vector<int>> layers;
  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    Tree3D t = extract_tree_3d(d.grid, d.nets[n], rr.routes[n]);
    trees.push_back(std::move(t.tree));
    layers.push_back(std::move(t.layers));
  }
  const timing::RcTable rc(d.grid);
  for (std::size_t n = 0; n < trees.size(); ++n) {
    if (trees[n].segs.empty()) continue;
    const auto t = timing::compute_timing(trees[n], layers[n], rc);
    EXPECT_TRUE(std::isfinite(t.max_sink_delay));
    EXPECT_GE(t.max_sink_delay, 0.0);
  }
  // The assignment state accepts 3-D routed trees wholesale.
  assign::AssignState state(&d, std::move(trees));
  for (std::size_t n = 0; n < layers.size(); ++n) {
    if (state.tree(static_cast<int>(n)).segs.empty()) continue;
    state.set_layers(static_cast<int>(n), layers[n]);
  }
  EXPECT_GT(state.via_count(), 0);
}

TEST(Router3D, ViaCostShapesLayerUsage) {
  // With an enormous via cost, routes should hug the pin layers (few
  // segments above the first pair); with a tiny via cost, higher layers
  // get used on long nets.
  grid::Design d = small_design(24, 6, 10);
  for (int i = 0; i < 20; ++i) {
    grid::Net net;
    net.id = i;
    net.name = "n";  // two steps: gcc 12 -Wrestrict false positive (PR105651)
    net.name += std::to_string(i);
    net.pins = {grid::Pin{1, i % 20 + 1, 0}, grid::Pin{22, (i * 3) % 20 + 1, 0}};
    d.nets.push_back(net);
  }
  Router3DOptions expensive;
  expensive.via_cost = 500.0;
  Router3DOptions cheap;
  cheap.via_cost = 0.5;

  auto high_layer_segments = [&](const Routing3DResult& rr) {
    int count = 0;
    for (std::size_t n = 0; n < d.nets.size(); ++n) {
      const Tree3D t = extract_tree_3d(d.grid, d.nets[n], rr.routes[n]);
      for (std::size_t s = 0; s < t.layers.size(); ++s) {
        if (t.layers[s] >= 2) ++count;
      }
    }
    return count;
  };
  const int expensive_high = high_layer_segments(route_all_3d(d, expensive));
  const int cheap_high = high_layer_segments(route_all_3d(d, cheap));
  EXPECT_LE(expensive_high, cheap_high);
}

TEST(Router3D, SingleCellNetsAreEmpty) {
  grid::Design d = small_design();
  grid::Net net;
  net.id = 0;
  net.name = "n0";
  net.pins = {grid::Pin{3, 3, 0}, grid::Pin{3, 3, 0}};
  d.nets.push_back(net);
  const Routing3DResult rr = route_all_3d(d);
  EXPECT_TRUE(rr.routes[0].empty());
  const Tree3D t = extract_tree_3d(d.grid, net, rr.routes[0]);
  EXPECT_TRUE(t.tree.segs.empty());
  ASSERT_EQ(t.tree.sinks.size(), 1u);
  EXPECT_EQ(t.tree.sinks[0].seg_id, -1);
}

}  // namespace
}  // namespace cpla::route
