#include <gtest/gtest.h>

#include "src/route/topology.hpp"
#include "src/util/rng.hpp"

namespace cpla::route {
namespace {

grid::Net make_net(std::vector<std::pair<int, int>> pts) {
  grid::Net net;
  net.id = 0;
  for (auto [x, y] : pts) net.pins.push_back(grid::Pin{x, y, 0});
  return net;
}

TEST(Steiner, TwoPinsUnchanged) {
  const grid::Net net = make_net({{0, 0}, {5, 7}});
  EXPECT_EQ(topology_wirelength(steiner_topology(net)), 12);
}

TEST(Steiner, ThreePinLGainsMedianPoint) {
  // Pins (0,0), (4,0), (2,3): MST = 4 + 5 = 9 (nearest pairs);
  // RSMT via Steiner point (2,0): 2 + 2 + 3 = 7.
  const grid::Net net = make_net({{0, 0}, {4, 0}, {2, 3}});
  const long mst = topology_wirelength(mst_topology(net));
  const long rsmt = topology_wirelength(steiner_topology(net));
  EXPECT_EQ(mst, 9);
  EXPECT_EQ(rsmt, 7);
}

TEST(Steiner, CrossNeedsTwoSteinerPoints) {
  // Pins at the 4 arms of a plus: optimal RSMT uses the center.
  const grid::Net net = make_net({{2, 0}, {2, 4}, {0, 2}, {4, 2}});
  const long rsmt = topology_wirelength(steiner_topology(net));
  EXPECT_EQ(rsmt, 8);  // all four arms to the center (2,2)
  EXPECT_GT(topology_wirelength(mst_topology(net)), rsmt);
}

TEST(Steiner, CollinearPinsNoGain) {
  const grid::Net net = make_net({{0, 0}, {3, 0}, {7, 0}, {10, 0}});
  EXPECT_EQ(topology_wirelength(steiner_topology(net)), 10);
}

// Properties over random nets: never longer than the MST, always a
// spanning structure (covers all pins, edge count = node count - 1).
class SteinerSweep : public ::testing::TestWithParam<int> {};

TEST_P(SteinerSweep, NeverWorseThanMstAndSpanning) {
  cpla::Rng rng(800 + static_cast<std::uint64_t>(GetParam()));
  const int pins = 3 + GetParam() % 10;
  std::vector<std::pair<int, int>> pts;
  for (int i = 0; i < pins; ++i) {
    pts.push_back({static_cast<int>(rng.uniform_int(0, 30)),
                   static_cast<int>(rng.uniform_int(0, 30))});
  }
  const grid::Net net = make_net(pts);
  const auto mst = mst_topology(net);
  const auto rsmt = steiner_topology(net);
  EXPECT_LE(topology_wirelength(rsmt), topology_wirelength(mst));

  // Spanning: union-find over the connection endpoints reaches every pin.
  std::vector<grid::XY> nodes;
  auto node_of = [&](const grid::XY& p) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == p) return i;
    }
    nodes.push_back(p);
    return nodes.size() - 1;
  };
  std::vector<std::size_t> parent;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t v) {
    return parent[v] == v ? v : parent[v] = find(parent[v]);
  };
  for (const auto& c : rsmt) {
    node_of(c.from);
    node_of(c.to);
  }
  for (const auto& pin : net.distinct_cells()) node_of({pin.x, pin.y});
  parent.resize(nodes.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  for (const auto& c : rsmt) {
    parent[find(node_of(c.from))] = find(node_of(c.to));
  }
  const auto cells = net.distinct_cells();
  const std::size_t root = find(node_of({cells[0].x, cells[0].y}));
  for (const auto& pin : cells) {
    EXPECT_EQ(find(node_of({pin.x, pin.y})), root) << "pin disconnected";
  }
  // Tree: edges == nodes - 1 (no cycles, no duplicates).
  EXPECT_EQ(rsmt.size(), nodes.size() - 1);
}

INSTANTIATE_TEST_SUITE_P(Random, SteinerSweep, ::testing::Range(0, 30));

}  // namespace
}  // namespace cpla::route
