#include "src/route/topology.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "src/util/rng.hpp"

namespace cpla::route {
namespace {

grid::Net make_net(std::vector<std::pair<int, int>> pts) {
  grid::Net net;
  net.id = 0;
  for (auto [x, y] : pts) net.pins.push_back(grid::Pin{x, y, 0});
  return net;
}

int manhattan(const TwoPin& c) {
  return std::abs(c.from.x - c.to.x) + std::abs(c.from.y - c.to.y);
}

TEST(MstTopology, TwoPins) {
  const auto conns = mst_topology(make_net({{0, 0}, {3, 4}}));
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(manhattan(conns[0]), 7);
}

TEST(MstTopology, SinglePinNoConnections) {
  EXPECT_TRUE(mst_topology(make_net({{2, 2}})).empty());
}

TEST(MstTopology, DuplicateCellsCollapse) {
  const auto conns = mst_topology(make_net({{1, 1}, {1, 1}, {5, 1}}));
  EXPECT_EQ(conns.size(), 1u);
}

TEST(MstTopology, SpanningEdgeCount) {
  const auto conns = mst_topology(make_net({{0, 0}, {4, 0}, {0, 4}, {4, 4}, {2, 2}}));
  EXPECT_EQ(conns.size(), 4u);  // n-1 edges
}

TEST(MstTopology, ChainPicksNearestNeighbors) {
  // Collinear pins: MST total = distance between extremes.
  const auto conns = mst_topology(make_net({{0, 0}, {10, 0}, {2, 0}, {7, 0}}));
  int total = 0;
  for (const auto& c : conns) total += manhattan(c);
  EXPECT_EQ(total, 10);
}

// Property: MST weight matches brute-force over all spanning trees for
// small point sets (via Prim on a clean implementation, here: compare to
// the known optimal via exhaustive Kruskal on <= 6 points).
class MstRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(MstRandomSweep, MatchesKruskal) {
  cpla::Rng rng(42 + static_cast<std::uint64_t>(GetParam()));
  const int n = 2 + GetParam() % 5;
  std::vector<std::pair<int, int>> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({static_cast<int>(rng.uniform_int(0, 20)),
                   static_cast<int>(rng.uniform_int(0, 20))});
  }
  const grid::Net net = make_net(pts);
  const auto cells = net.distinct_cells();
  const auto conns = mst_topology(net);
  ASSERT_EQ(conns.size(), cells.size() - 1);

  long prim_total = 0;
  for (const auto& c : conns) prim_total += manhattan(c);

  // Kruskal with union-find.
  struct E {
    int a, b, w;
  };
  std::vector<E> edges;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      edges.push_back({static_cast<int>(i), static_cast<int>(j),
                       std::abs(cells[i].x - cells[j].x) + std::abs(cells[i].y - cells[j].y)});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const E& a, const E& b) { return a.w < b.w; });
  std::vector<int> parent(cells.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int v) {
    return parent[v] == v ? v : parent[v] = find(parent[v]);
  };
  long kruskal_total = 0;
  for (const E& e : edges) {
    if (find(e.a) != find(e.b)) {
      parent[find(e.a)] = find(e.b);
      kruskal_total += e.w;
    }
  }
  EXPECT_EQ(prim_total, kruskal_total);
}

INSTANTIATE_TEST_SUITE_P(Random, MstRandomSweep, ::testing::Range(0, 20));

}  // namespace
}  // namespace cpla::route
