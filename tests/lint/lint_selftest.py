#!/usr/bin/env python3
"""Self-test for tools/cpla_lint.py.

Three contracts, each of which has caught a real class of linter rot in other
projects:

  1. every check fires on its seeded-violation fixture (a check that cannot
     fail is decoration, not analysis),
  2. a clean fixture and the real repository produce zero findings,
  3. --fix repairs what it claims to repair, idempotently.

Fixtures live in tests/lint/data/<check_name>/ as miniature repo roots. The
test runs the linter in-process (no subprocess per case) through its main()
so argument parsing and exit codes are covered too.
"""

from __future__ import annotations

import io
import json
import shutil
import sys
import tempfile
import unittest
from contextlib import redirect_stdout
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DATA = REPO_ROOT / "tests" / "lint" / "data"

sys.path.insert(0, str(REPO_ROOT / "tools"))

import cpla_lint  # noqa: E402


def run_lint(*argv: str) -> tuple[int, dict[str, Any]]:
    out = io.StringIO()
    with redirect_stdout(out):
        rc = cpla_lint.main([*argv, "--format", "json"])
    return rc, json.loads(out.getvalue())


class FixtureFiring(unittest.TestCase):
    """Every check fires — and only that check — on its seeded fixture."""

    def assert_fires(self, check: str) -> None:
        fixture = DATA / check.replace("-", "_")
        self.assertTrue(fixture.is_dir(), f"missing fixture dir {fixture}")
        rc, doc = run_lint("--root", str(fixture))
        self.assertEqual(rc, 1, f"{check}: linter should exit 1 on its fixture")
        fired = {f["check"] for f in doc["findings"]}
        self.assertIn(check, fired, f"{check}: expected the check to fire, got {fired}")
        self.assertEqual(
            fired, {check}, f"{check}: fixture should trip exactly one check, got {fired}"
        )

    def test_every_check_has_a_firing_fixture(self) -> None:
        for check in cpla_lint.CHECKS:
            with self.subTest(check=check):
                self.assert_fires(check)

    def test_finding_shape(self) -> None:
        rc, doc = run_lint("--root", str(DATA / "no_direct_stdout"))
        self.assertEqual(rc, 1)
        self.assertEqual(doc["schema"], "cpla-lint-v1")
        for f in doc["findings"]:
            self.assertIn("check", f)
            self.assertIn("file", f)
            self.assertGreater(f["line"], 0)
            self.assertTrue(f["message"])

    def test_stdout_fixture_reports_each_call(self) -> None:
        _, doc = run_lint("--root", str(DATA / "no_direct_stdout"))
        lines = {f["line"] for f in doc["findings"]}
        self.assertEqual(
            len(lines), 3, "std::cout, printf, and fwrite(stdout) are separate findings"
        )


class CleanTrees(unittest.TestCase):
    def test_clean_fixture_is_clean(self) -> None:
        rc, doc = run_lint("--root", str(DATA / "clean"))
        self.assertEqual(doc["findings"], [])
        self.assertEqual(rc, 0)

    def test_real_repository_is_clean(self) -> None:
        rc, doc = run_lint("--root", str(REPO_ROOT))
        self.assertEqual(
            [f"{f['file']}:{f['line']} {f['check']}" for f in doc["findings"]],
            [],
            "the real tree must lint clean (fix the finding or the check)",
        )
        self.assertEqual(rc, 0)


class Suppression(unittest.TestCase):
    def test_allow_comment_suppresses_one_line(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "fixture"
            shutil.copytree(DATA / "solver_nondeterminism", root)
            src = root / "src" / "sdp" / "perturb.cpp"
            patched = [
                line.rstrip("\n")
                + "  // cpla-lint: allow(solver-nondeterminism) -- seeded by the self-test"
                if "rand()" in line or "random_device rd" in line
                else line.rstrip("\n")
                for line in src.read_text().splitlines()
            ]
            src.write_text("\n".join(patched) + "\n")
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(doc["findings"], [])
            self.assertEqual(rc, 0)

    def test_standalone_allow_line_covers_the_line_below(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "fixture"
            shutil.copytree(DATA / "no_direct_stdout", root)
            src = next((root / "src").rglob("*.cpp"))
            patched = []
            for line in src.read_text().splitlines():
                if "std::cout" in line:
                    patched.append("  // cpla-lint: allow(no-direct-stdout) -- self-test seed")
                patched.append(line)
            src.write_text("\n".join(patched) + "\n")
            _, doc = run_lint("--root", str(root))
            fired = [f for f in doc["findings"] if f["check"] == "no-direct-stdout"]
            self.assertEqual(len(fired), 2, "only the std::cout line is covered")

    def test_rationale_less_allow_fires_and_cannot_self_suppress(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "fixture"
            shutil.copytree(DATA / "suppression_rationale", root)
            src = root / "src" / "eco" / "noisy.cpp"
            # Escalate the seed: try to suppress the policing check itself,
            # still without a rationale. It must fire anyway.
            src.write_text(
                src.read_text().replace(
                    "allow(no-direct-stdout)",
                    "allow(no-direct-stdout, suppression-rationale)",
                )
            )
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(rc, 1)
            self.assertEqual(
                {f["check"] for f in doc["findings"]}, {"suppression-rationale"}
            )

    def test_list_suppressions_inventory(self) -> None:
        rc, doc = run_lint("--root", str(DATA / "suppression_rationale"), "--list-suppressions")
        self.assertEqual(rc, 0)
        self.assertEqual(len(doc["suppressions"]), 1)
        entry = doc["suppressions"][0]
        self.assertEqual(entry["checks"], ["no-direct-stdout"])
        self.assertIsNone(entry["rationale"])
        self.assertTrue(entry["file"].endswith("noisy.cpp"))


class DeterminismAcceptance(unittest.TestCase):
    """The contract the registry header promises: removing -ffp-contract=off
    from a registered TU's CMake lists, or adding an OpenMP reduction to the
    TU, turns the real repository's lint red. Exercised on a copy of the
    real src/la build files so the test proves the production CMake idiom
    (${var} indirection through set + list(APPEND)) is parsed, not a toy.
    """

    def make_mini_repo(self, tmp: str) -> Path:
        root = Path(tmp) / "repo"
        for rel in (
            "src/util/determinism_contract.hpp",
            "src/la/batch.cpp",
            "src/la/CMakeLists.txt",
            # The registry also pins the STA TUs; the mini repo must carry
            # every registered TU (and its CMake proof) to lint clean.
            "src/sta/timing_graph.cpp",
            "src/sta/path_enum.cpp",
            "src/sta/CMakeLists.txt",
            "src/lagr/net_engine.cpp",
            "src/lagr/CMakeLists.txt",
            "src/core/lagr_engine.cpp",
            "src/core/CMakeLists.txt",
        ):
            dst = root / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(REPO_ROOT / rel, dst)
        # lagr_engine.cpp carries the "lagr.solve" fault point; declare
        # exactly the sites the mini repo uses (copying the real registry
        # would trip fault-site-unused for every site whose TU isn't here).
        sites = root / "src" / "util" / "fault_sites.hpp"
        sites.parent.mkdir(parents=True, exist_ok=True)
        sites.write_text(
            "#pragma once\n"
            "namespace cpla::fault_sites {\n"
            'inline constexpr char kLagrSolve[] = "lagr.solve";\n'
            "inline constexpr const char* kAll[] = {kLagrSolve};\n"
            "}  // namespace cpla::fault_sites\n"
        )
        return root

    def test_copied_production_files_are_clean(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            rc, doc = run_lint("--root", str(self.make_mini_repo(tmp)))
            self.assertEqual(doc["findings"], [])
            self.assertEqual(rc, 0)

    def test_dropping_fp_contract_flag_fails_the_lint(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_mini_repo(tmp)
            cml = root / "src" / "la" / "CMakeLists.txt"
            text = cml.read_text()
            self.assertIn("-ffp-contract=off", text)
            cml.write_text(text.replace("-ffp-contract=off", ""))
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(rc, 1)
            self.assertEqual(
                {f["check"] for f in doc["findings"]}, {"determinism-fp-contract"}
            )

    def test_adding_an_omp_reduction_fails_the_lint(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_mini_repo(tmp)
            tu = root / "src" / "la" / "batch.cpp"
            lines = tu.read_text().splitlines()
            # Inject after the include block, inside the TU proper.
            lines.insert(30, "#pragma omp parallel for reduction(+ : acc)")
            tu.write_text("\n".join(lines) + "\n")
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(rc, 1)
            self.assertEqual(
                {f["check"] for f in doc["findings"]}, {"determinism-omp-reduction"}
            )

    def drop_flag(self, root: Path) -> Path:
        """Strips -ffp-contract=off from the mini repo's CMakeLists and
        returns the file, so each case can re-add the flag in one shape."""
        cml = root / "src" / "la" / "CMakeLists.txt"
        text = cml.read_text()
        self.assertIn("-ffp-contract=off", text)
        cml.write_text(text.replace("-ffp-contract=off", ""))
        return cml

    def test_blanket_flag_after_the_target_does_not_count(self) -> None:
        # add_compile_options only reaches targets defined after it.
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_mini_repo(tmp)
            cml = self.drop_flag(root)
            cml.write_text(cml.read_text() + '\nadd_compile_options("-ffp-contract=off")\n')
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(rc, 1)
            self.assertEqual(
                {f["check"] for f in doc["findings"]}, {"determinism-fp-contract"}
            )

    def test_blanket_flag_before_the_target_counts(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_mini_repo(tmp)
            cml = self.drop_flag(root)
            cml.write_text('add_compile_options("-ffp-contract=off")\n' + cml.read_text())
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(doc["findings"], [])
            self.assertEqual(rc, 0)

    def test_blanket_flag_inside_an_if_branch_does_not_count(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_mini_repo(tmp)
            cml = self.drop_flag(root)
            cml.write_text(
                "if(CPLA_NEVER_SET_OPTION)\n"
                '  add_compile_options("-ffp-contract=off")\n'
                "endif()\n" + cml.read_text()
            )
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(rc, 1)
            self.assertEqual(
                {f["check"] for f in doc["findings"]}, {"determinism-fp-contract"}
            )

    def test_flag_on_an_unrelated_target_does_not_count(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_mini_repo(tmp)
            cml = self.drop_flag(root)
            cml.write_text(
                cml.read_text() + "\nadd_library(cpla_other other.cpp)\n"
                'target_compile_options(cpla_other PRIVATE "-ffp-contract=off")\n'
            )
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(rc, 1)
            self.assertEqual(
                {f["check"] for f in doc["findings"]}, {"determinism-fp-contract"}
            )

    def test_flag_on_the_owning_target_counts(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_mini_repo(tmp)
            cml = self.drop_flag(root)
            cml.write_text(
                cml.read_text()
                + '\ntarget_compile_options(cpla_la PRIVATE "-ffp-contract=off")\n'
            )
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(doc["findings"], [])
            self.assertEqual(rc, 0)

    def test_registry_pointing_at_a_deleted_tu_fails_the_lint(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_mini_repo(tmp)
            (root / "src" / "la" / "batch.cpp").unlink()
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(rc, 1)
            self.assertEqual(
                {f["check"] for f in doc["findings"]}, {"determinism-fp-contract"}
            )


class FixMode(unittest.TestCase):
    def fix_and_recheck(self, fixture: str, check: str) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "fixture"
            shutil.copytree(DATA / fixture, root)
            rc, doc = run_lint("--root", str(root), "--fix")
            self.assertEqual({f["check"] for f in doc["fixed"]}, {check})
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(
                [f for f in doc["findings"] if f["check"] == check],
                [],
                f"--fix did not clear {check}",
            )

    def test_fix_pragma_once(self) -> None:
        self.fix_and_recheck("missing_pragma_once", "missing-pragma-once")

    def test_fix_registry_append(self) -> None:
        self.fix_and_recheck("fault_site_undeclared", "fault-site-undeclared")

    def test_fixed_registry_parses_as_the_canonical_shape(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "fixture"
            shutil.copytree(DATA / "fault_site_undeclared", root)
            run_lint("--root", str(root), "--fix")
            text = (root / "src" / "util" / "fault_sites.hpp").read_text()
            self.assertIn(
                'inline constexpr char kWidgetSolveOverflow[] = "widget.solve.overflow";', text
            )
            self.assertIn("kWidgetSolveOverflow,", text)


class CommentStripping(unittest.TestCase):
    def test_strings_survive_comments_die(self) -> None:
        code = (
            'a("keep");\n'
            '// b("dies")\n'
            '/* c("dies\ntoo") */ d("keep2");\n'
            'e("slash // not comment");\n'
        )
        stripped = cpla_lint.strip_comments(code)
        self.assertIn('"keep"', stripped)
        self.assertIn('"keep2"', stripped)
        self.assertIn('"slash // not comment"', stripped)
        self.assertNotIn("dies", stripped)
        self.assertEqual(stripped.count("\n"), code.count("\n"), "line structure preserved")


if __name__ == "__main__":
    unittest.main(verbosity=2)
