#!/usr/bin/env python3
"""Self-test for tools/cpla_lint.py.

Three contracts, each of which has caught a real class of linter rot in other
projects:

  1. every check fires on its seeded-violation fixture (a check that cannot
     fail is decoration, not analysis),
  2. a clean fixture and the real repository produce zero findings,
  3. --fix repairs what it claims to repair, idempotently.

Fixtures live in tests/lint/data/<check_name>/ as miniature repo roots. The
test runs the linter in-process (no subprocess per case) through its main()
so argument parsing and exit codes are covered too.
"""

from __future__ import annotations

import io
import json
import shutil
import sys
import tempfile
import unittest
from contextlib import redirect_stdout
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DATA = REPO_ROOT / "tests" / "lint" / "data"

sys.path.insert(0, str(REPO_ROOT / "tools"))

import cpla_lint  # noqa: E402


def run_lint(*argv: str) -> tuple[int, dict[str, Any]]:
    out = io.StringIO()
    with redirect_stdout(out):
        rc = cpla_lint.main([*argv, "--format", "json"])
    return rc, json.loads(out.getvalue())


class FixtureFiring(unittest.TestCase):
    """Every check fires — and only that check — on its seeded fixture."""

    def assert_fires(self, check: str) -> None:
        fixture = DATA / check.replace("-", "_")
        self.assertTrue(fixture.is_dir(), f"missing fixture dir {fixture}")
        rc, doc = run_lint("--root", str(fixture))
        self.assertEqual(rc, 1, f"{check}: linter should exit 1 on its fixture")
        fired = {f["check"] for f in doc["findings"]}
        self.assertIn(check, fired, f"{check}: expected the check to fire, got {fired}")
        self.assertEqual(
            fired, {check}, f"{check}: fixture should trip exactly one check, got {fired}"
        )

    def test_every_check_has_a_firing_fixture(self) -> None:
        for check in cpla_lint.CHECKS:
            with self.subTest(check=check):
                self.assert_fires(check)

    def test_finding_shape(self) -> None:
        rc, doc = run_lint("--root", str(DATA / "no_direct_stdout"))
        self.assertEqual(rc, 1)
        self.assertEqual(doc["schema"], "cpla-lint-v1")
        for f in doc["findings"]:
            self.assertIn("check", f)
            self.assertIn("file", f)
            self.assertGreater(f["line"], 0)
            self.assertTrue(f["message"])

    def test_stdout_fixture_reports_each_call(self) -> None:
        _, doc = run_lint("--root", str(DATA / "no_direct_stdout"))
        lines = {f["line"] for f in doc["findings"]}
        self.assertEqual(
            len(lines), 3, "std::cout, printf, and fwrite(stdout) are separate findings"
        )


class CleanTrees(unittest.TestCase):
    def test_clean_fixture_is_clean(self) -> None:
        rc, doc = run_lint("--root", str(DATA / "clean"))
        self.assertEqual(doc["findings"], [])
        self.assertEqual(rc, 0)

    def test_real_repository_is_clean(self) -> None:
        rc, doc = run_lint("--root", str(REPO_ROOT))
        self.assertEqual(
            [f"{f['file']}:{f['line']} {f['check']}" for f in doc["findings"]],
            [],
            "the real tree must lint clean (fix the finding or the check)",
        )
        self.assertEqual(rc, 0)


class Suppression(unittest.TestCase):
    def test_allow_comment_suppresses_one_line(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "fixture"
            shutil.copytree(DATA / "solver_nondeterminism", root)
            src = root / "src" / "sdp" / "perturb.cpp"
            patched = [
                line.rstrip("\n") + "  // cpla-lint: allow(solver-nondeterminism)"
                if "rand()" in line or "random_device rd" in line
                else line.rstrip("\n")
                for line in src.read_text().splitlines()
            ]
            src.write_text("\n".join(patched) + "\n")
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(doc["findings"], [])
            self.assertEqual(rc, 0)


class FixMode(unittest.TestCase):
    def fix_and_recheck(self, fixture: str, check: str) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "fixture"
            shutil.copytree(DATA / fixture, root)
            rc, doc = run_lint("--root", str(root), "--fix")
            self.assertEqual({f["check"] for f in doc["fixed"]}, {check})
            rc, doc = run_lint("--root", str(root))
            self.assertEqual(
                [f for f in doc["findings"] if f["check"] == check],
                [],
                f"--fix did not clear {check}",
            )

    def test_fix_pragma_once(self) -> None:
        self.fix_and_recheck("missing_pragma_once", "missing-pragma-once")

    def test_fix_registry_append(self) -> None:
        self.fix_and_recheck("fault_site_undeclared", "fault-site-undeclared")

    def test_fixed_registry_parses_as_the_canonical_shape(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "fixture"
            shutil.copytree(DATA / "fault_site_undeclared", root)
            run_lint("--root", str(root), "--fix")
            text = (root / "src" / "util" / "fault_sites.hpp").read_text()
            self.assertIn(
                'inline constexpr char kWidgetSolveOverflow[] = "widget.solve.overflow";', text
            )
            self.assertIn("kWidgetSolveOverflow,", text)


class CommentStripping(unittest.TestCase):
    def test_strings_survive_comments_die(self) -> None:
        code = (
            'a("keep");\n'
            '// b("dies")\n'
            '/* c("dies\ntoo") */ d("keep2");\n'
            'e("slash // not comment");\n'
        )
        stripped = cpla_lint.strip_comments(code)
        self.assertIn('"keep"', stripped)
        self.assertIn('"keep2"', stripped)
        self.assertIn('"slash // not comment"', stripped)
        self.assertNotIn("dies", stripped)
        self.assertEqual(stripped.count("\n"), code.count("\n"), "line structure preserved")


if __name__ == "__main__":
    unittest.main(verbosity=2)
