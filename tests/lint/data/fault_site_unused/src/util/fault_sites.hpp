#pragma once
namespace cpla::fault_sites {
inline constexpr char kGhostSite[] = "ghost.site.never_used";
inline constexpr char kServeStale[] = "serve.journal.stale";
inline constexpr const char* kAll[] = {
    kGhostSite,
    kServeStale,
};
}  // namespace cpla::fault_sites
