#pragma once
namespace cpla::fault_sites {
inline constexpr char kGhostSite[] = "ghost.site.never_used";
inline constexpr const char* kAll[] = {
    kGhostSite,
};
}  // namespace cpla::fault_sites
