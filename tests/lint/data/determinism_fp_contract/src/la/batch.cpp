namespace cpla::la {

double batched_dot(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace cpla::la
