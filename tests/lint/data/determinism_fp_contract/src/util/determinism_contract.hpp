#pragma once

namespace cpla::contract {

inline constexpr const char* kBitIdentityTUs[] = {
    "src/la/batch.cpp",
};

inline constexpr const char* kOrderSensitiveDirs[] = {
    "src/core",
};

}  // namespace cpla::contract
