namespace cpla::eco {

void report(int n) {
  // The allow() below suppresses no-direct-stdout but carries no rationale,
  // so only suppression-rationale fires on this fixture.
  printf("n=%d\n", n);  // cpla-lint: allow(no-direct-stdout)
}

}  // namespace cpla::eco
