namespace cpla::grid {
struct Naked { int x = 0; };
}  // namespace cpla::grid
