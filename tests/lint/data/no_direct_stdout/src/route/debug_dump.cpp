#include <cstdio>
#include <iostream>
void dump(int rounds) {
  std::cout << "rounds=" << rounds << "\n";
  printf("rounds=%d\n", rounds);
}
void dump_raw(const char* text, unsigned long len) {
  std::fwrite(text, 1, len, stdout);
}
