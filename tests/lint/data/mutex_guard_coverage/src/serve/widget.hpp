#pragma once

#define CPLA_GUARDED_BY(x)

namespace cpla::serve {

class Mutex {};

class Widget {
 public:
  int value() const;

 private:
  // Seeded violation 1: a raw std:: primitive invisible to Clang TSA.
  std::mutex raw_mu_;
  // Seeded violation 2: an annotated-wrapper Mutex guarding nothing.
  Mutex orphan_mu_;
  Mutex mu_;
  int value_ CPLA_GUARDED_BY(mu_) = 0;
};

// Seeded violation 3: a second class reusing the name mu_ — Widget's
// CPLA_GUARDED_BY(mu_) must not vouch for it — declared with a brace
// initializer, which the member pattern must still match.
class Gadget {
 private:
  Mutex mu_{};
  int value_ = 0;
};

}  // namespace cpla::serve
