#pragma once

#define CPLA_GUARDED_BY(x)

namespace cpla::serve {

class Mutex {};

class Widget {
 public:
  int value() const;

 private:
  // Seeded violation 1: a raw std:: primitive invisible to Clang TSA.
  std::mutex raw_mu_;
  // Seeded violation 2: an annotated-wrapper Mutex guarding nothing.
  Mutex orphan_mu_;
  Mutex mu_;
  int value_ CPLA_GUARDED_BY(mu_) = 0;
};

}  // namespace cpla::serve
