#include <cstdlib>
#include <random>
double perturbation() {
  std::random_device rd;
  return (rand() % 100) * 1e-9 + rd();
}
