#include "src/util/fault_sites.hpp"
bool widget_solve() {
  if (CPLA_FAULT_POINT("widget.solve.overflow")) return false;
  if (CPLA_FAULT_POINT("serve.journal.fsync")) return false;
  return true;
}
