#pragma once
#include <vector>
using namespace std;
namespace cpla::grid {
inline vector<int> layers() { return {1, 2, 3}; }
}  // namespace cpla::grid
