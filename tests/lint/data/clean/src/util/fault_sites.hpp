#pragma once
// Example in a comment must not count: CPLA_FAULT_POINT("comment.site")
namespace cpla::fault_sites {
inline constexpr char kWidgetSolveOverflow[] = "widget.solve.overflow";
inline constexpr const char* kAll[] = {
    kWidgetSolveOverflow,
};
}  // namespace cpla::fault_sites
