#pragma once
// Example in a comment must not count: CPLA_FAULT_POINT("comment.site")
namespace cpla::fault_sites {
inline constexpr char kWidgetSolveOverflow[] = "widget.solve.overflow";
inline constexpr char kServeJournalFsync[] = "serve.journal.fsync";
inline constexpr const char* kAll[] = {
    kWidgetSolveOverflow,
    kServeJournalFsync,
};
}  // namespace cpla::fault_sites
