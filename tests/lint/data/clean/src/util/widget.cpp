#include "src/util/fault_sites.hpp"
bool widget_solve() {
  if (CPLA_FAULT_POINT("widget.solve.overflow")) return false;
  if (CPLA_FAULT_POINT("serve.journal.fsync")) return false;
  return true;
}
void instrument() {
  obs::metrics().counter("widget.solves").add();
  obs::metrics().counter("eco.cache.hits").add();
  obs::metrics().counter("la.cholesky.factors").add();
  obs::metrics().counter("sdp.solve.stalls").add();
  obs::metrics().counter("serve.deltas.applied").add();
  obs::metrics().counter("batch.solve.lanes").add();
}
