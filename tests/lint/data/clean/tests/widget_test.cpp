void test_widget() {
  FaultInjector::instance().arm_always("widget.solve.overflow");
  FaultInjector::instance().arm("serve.journal.fsync", 2);
  auto reg = LocalRegistry();
  reg.counter("test.local.name").add();  // local registry: exempt
  auto v = obs::metrics().counter("widget.solves").value();
  auto h = obs::metrics().counter("eco.cache.hits").value();
  auto f = obs::metrics().counter("la.cholesky.factors").value();
  auto s = obs::metrics().counter("sdp.solve.stalls").value();
  auto d = obs::metrics().counter("serve.deltas.applied").value();
  auto b = obs::metrics().counter("batch.solve.lanes").value();
  (void)v;
  (void)h;
  (void)f;
  (void)s;
  (void)d;
  (void)b;
}
