#pragma once

namespace cpla::contract {

inline constexpr const char* kBitIdentityTUs[] = {};

inline constexpr const char* kOrderSensitiveDirs[] = {
    "src/core",
};

}  // namespace cpla::contract
