#include <unordered_map>
#include <vector>

namespace cpla::core {

std::vector<int> emit_rows(const std::vector<int>& members) {
  std::unordered_map<int, int> usage;
  for (std::size_t i = 0; i < members.size(); ++i) usage[members[i]] += 1;
  std::vector<int> rows;
  // The seeded violation: row emission order inherits hash-bucket order.
  for (const auto& [key, count] : usage) {
    if (count > 1) rows.push_back(key);
  }
  return rows;
}

}  // namespace cpla::core
