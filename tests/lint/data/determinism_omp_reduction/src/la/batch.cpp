namespace cpla::la {

double batched_sum(const double* a, int n) {
  double acc = 0.0;
// The seeded violation: an OpenMP reduction reassociates the sum, so the
// result depends on the thread count.
#pragma omp parallel for reduction(+ : acc)
  for (int i = 0; i < n; ++i) acc += a[i];
  return acc;
}

}  // namespace cpla::la
