void instrument() {
  obs::metrics().counter("core.widget.solves").add();
  obs::metrics().counter("eco.cache.hits").add();
}
