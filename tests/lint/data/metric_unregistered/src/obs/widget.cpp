void instrument() {
  obs::metrics().counter("core.widget.solves").add();
}
