void instrument() {
  obs::metrics().counter("core.widget.solves").add();
  obs::metrics().counter("eco.cache.hits").add();
  obs::metrics().counter("la.cholesky.factors").add();
  obs::metrics().counter("sdp.solve.stalls").add();
  obs::metrics().counter("serve.deltas.applied").add();
  obs::metrics().counter("batch.solve.lanes").add();
  obs::metrics().counter("sta.update.incremental").add();
  obs::metrics().counter("lagr.arbiter.lagr_chosen").add();
}
