void check_counters() {
  auto v = obs::metrics().counter("core.widget.sloves").value();  // typo'd name
  (void)v;
}
