void check_counters() {
  auto v = obs::metrics().counter("core.widget.sloves").value();  // typo'd name
  auto h = obs::metrics().counter("eco.cache.hit").value();  // missing trailing s
  auto f = obs::metrics().counter("la.cholesky.factorizations").value();  // renamed
  auto s = obs::metrics().counter("sdp.solve.stalled").value();  // tense drift
  auto d = obs::metrics().counter("serve.deltas.appled").value();  // dropped letter
  auto b = obs::metrics().counter("batch.solve.lane").value();  // missing trailing s
  auto i = obs::metrics().counter("sta.update.incrementals").value();  // spurious plural
  auto g = obs::metrics().counter("lagr.arbiter.lagr_chose").value();  // dropped letter
  (void)v;
  (void)h;
  (void)f;
  (void)s;
  (void)d;
  (void)b;
  (void)i;
  (void)g;
}
