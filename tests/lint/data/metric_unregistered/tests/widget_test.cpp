void check_counters() {
  auto v = obs::metrics().counter("core.widget.sloves").value();  // typo'd name
  auto h = obs::metrics().counter("eco.cache.hit").value();  // missing trailing s
  (void)v;
  (void)h;
}
