#pragma once
namespace cpla::fault_sites {
inline constexpr const char* kAll[] = {
};
}  // namespace cpla::fault_sites
