void test_degradation() {
  FaultInjector::instance().arm_always("no.such.site");
}
