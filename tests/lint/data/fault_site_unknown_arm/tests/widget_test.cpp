void test_degradation() {
  FaultInjector::instance().arm_always("no.such.site");
  FaultInjector::instance().arm("serve.journal.fsnyc", 2);  // transposed
}
