// Unit tests for the observability layer: OpenMP-safe aggregation, the
// histogram percentile math, the JSON export (validated by re-parsing it
// with a minimal in-test JSON reader), and the phase-timer plumbing.

#include "src/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <variant>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace cpla::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader, just enough to round-trip the exporter's output
// (objects, strings, numbers). Throws std::runtime_error on malformed input
// so a broken exporter fails the test loudly.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<double, std::string, std::shared_ptr<JsonObject>> v;

  double num() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  const JsonObject& obj() const { return *std::get<std::shared_ptr<JsonObject>>(v); }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing bytes");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected ") + c);
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '"') return JsonValue{string()};
    return number();
  }

  JsonValue object() {
    auto obj = std::make_shared<JsonObject>();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      (*obj)[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{obj};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': pos_ += 4; out += '?'; break;  // not needed for round-trip keys
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    ++pos_;
    return out;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    return JsonValue{std::stod(s_.substr(start, pos_ - start))};
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.counter");
  constexpr int kIters = 200000;
#ifdef _OPENMP
#pragma omp parallel for
#endif
  for (int i = 0; i < kIters; ++i) c.add();
  EXPECT_EQ(c.value(), kIters);

  // Weighted adds from multiple threads are exact too.
#ifdef _OPENMP
#pragma omp parallel for
#endif
  for (int i = 0; i < 1000; ++i) c.add(3);
  EXPECT_EQ(c.value(), kIters + 3000);
}

TEST(HistogramTest, ConcurrentRecordsKeepExactCountAndSum) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.hist");
  constexpr int kIters = 100000;
#ifdef _OPENMP
#pragma omp parallel for
#endif
  for (int i = 0; i < kIters; ++i) h.record(1.0);
  EXPECT_EQ(h.count(), kIters);
  EXPECT_NEAR(h.sum(), static_cast<double>(kIters), 1e-6);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
}

TEST(HistogramTest, PercentileMath) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Geometric buckets quantize percentiles to ~12% relative resolution.
  EXPECT_NEAR(h.percentile(50.0), 500.0, 500.0 * 0.15);
  EXPECT_NEAR(h.percentile(90.0), 900.0, 900.0 * 0.15);
  EXPECT_NEAR(h.percentile(99.0), 990.0, 990.0 * 0.15);
  // Percentiles are clamped to the observed range.
  EXPECT_GE(h.percentile(0.0), 1.0);
  EXPECT_LE(h.percentile(100.0), 1000.0);
}

TEST(HistogramTest, EdgeCases) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.record(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 42.0);  // single sample: clamped to [min,max]
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 42.0);

  // Out-of-ladder values land in the saturating end buckets but keep exact
  // min/max; non-finite values are dropped.
  Histogram wide;
  wide.record(1e-9);
  wide.record(1e9);
  wide.record(std::nan(""));
  EXPECT_EQ(wide.count(), 2);
  EXPECT_DOUBLE_EQ(wide.min(), 1e-9);
  EXPECT_DOUBLE_EQ(wide.max(), 1e9);
  EXPECT_LE(wide.percentile(100.0), 1e9);
}

TEST(RegistryTest, HandlesAreStableAcrossReset) {
  MetricsRegistry reg;
  Counter& c = reg.counter("stable.counter");
  c.add(7);
  Counter& again = reg.counter("stable.counter");
  EXPECT_EQ(&c, &again);
  reg.reset();
  EXPECT_EQ(c.value(), 0);  // same handle, zeroed value
  c.add();
  EXPECT_EQ(reg.counter("stable.counter").value(), 1);
}

TEST(RegistryTest, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("a.count").add(42);
  reg.counter("b.count").add(7);
  reg.gauge("g.value").set(2.5);
  Histogram& h = reg.histogram("h.ms");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));

  const std::string json = reg.to_json();
  const JsonValue doc = JsonReader(json).parse();

  EXPECT_EQ(doc.obj().at("counters").obj().at("a.count").num(), 42.0);
  EXPECT_EQ(doc.obj().at("counters").obj().at("b.count").num(), 7.0);
  EXPECT_DOUBLE_EQ(doc.obj().at("gauges").obj().at("g.value").num(), 2.5);

  const JsonObject& hist = doc.obj().at("histograms").obj().at("h.ms").obj();
  EXPECT_EQ(hist.at("count").num(), 100.0);
  EXPECT_NEAR(hist.at("sum").num(), 5050.0, 1e-6);
  EXPECT_DOUBLE_EQ(hist.at("min").num(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("max").num(), 100.0);
  EXPECT_NEAR(hist.at("p50").num(), 50.0, 50.0 * 0.2);
}

TEST(RegistryTest, JsonEscapesNames) {
  MetricsRegistry reg;
  reg.counter("weird\"name\\with\ttabs").add(1);
  const std::string json = reg.to_json();
  const JsonValue doc = JsonReader(json).parse();
  EXPECT_EQ(doc.obj().at("counters").obj().at("weird\"name\\with\ttabs").num(), 1.0);
}

TEST(ScopedPhaseTest, RecordsIntoPhaseHistogram) {
  MetricsRegistry reg;
  {
    ScopedPhase phase("unit.work", &reg);
  }
  Histogram& h = reg.histogram("phase.unit.work.ms");
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(h.max(), 0.0);

  // stop() is idempotent and returns the recorded elapsed time.
  ScopedPhase phase2("unit.work", &reg);
  const double ms = phase2.stop();
  EXPECT_DOUBLE_EQ(phase2.stop(), ms);
  EXPECT_EQ(h.count(), 2);
}

TEST(GlobalRegistryTest, SharedAcrossCallSites) {
  const std::int64_t before = metrics().counter("global.test.counter").value();
  metrics().counter("global.test.counter").add(5);
  EXPECT_EQ(metrics().counter("global.test.counter").value(), before + 5);
}

TEST(JsonHelpersTest, NumberFormatting) {
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-3.0), "-3");
  EXPECT_EQ(json_number(std::nan("")), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  const std::string frac = json_number(2.5);
  EXPECT_NEAR(std::stod(frac), 2.5, 1e-12);
}

}  // namespace
}  // namespace cpla::obs
