#!/usr/bin/env python3
"""Tests for tools/refresh_baselines.py (runnable under unittest or pytest).

The tool's job is narrow but load-bearing: it is the only sanctioned path
for regenerating the CI bench gates, so a bug here silently rewrites what
"no regression" means. The suite drives main() end-to-end against stub
bench executables (shell scripts that honour --metrics-out and emit a
cpla-bench-v1 artifact), so argument plumbing, the schema-diff safety net,
and --install all run for real — only the C++ binaries are faked.

Also pins the SPECS <-> CI contract: every artifact refresh_baselines knows
about must be gated in .github/workflows/ci.yml and have a checked-in
baseline, and vice versa. The two lists drifting apart is exactly the kind
of rot nothing else would catch.
"""

from __future__ import annotations

import json
import os
import stat
import sys
import tempfile
import unittest
from pathlib import Path
from typing import Any
from unittest import mock

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

import refresh_baselines  # noqa: E402

FAKE_SPEC = ("BENCH_fake.json", "fake_bench", ["--quick"])


def artifact(drop_counter: bool = False) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "schema": "cpla-bench-v1",
        "bench": "fake_bench",
        "threads": 1,
        "phases": {"solve.total": {"wall_ms": 10.0}},
        "values": {"final.avg_tcp": 123.0},
        "metrics": {"counters": {"solver.iterations": 42}},
    }
    if drop_counter:
        del doc["metrics"]["counters"]["solver.iterations"]
    return doc


def write_stub_bench(build_dir: Path, name: str, doc: dict[str, Any]) -> Path:
    """A bench binary stand-in: a shell script that scans its arguments for
    --metrics-out and writes the given artifact there.
    """
    exe = build_dir / "bench" / name
    exe.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(doc).replace("'", "'\\''")
    exe.write_text(
        "#!/bin/sh\n"
        "out=\n"
        'while [ $# -gt 0 ]; do\n'
        '  if [ "$1" = "--metrics-out" ]; then out="$2"; fi\n'
        "  shift\n"
        "done\n"
        f"printf '%s' '{payload}' > \"$out\"\n"
    )
    exe.chmod(exe.stat().st_mode | stat.S_IXUSR)
    return exe


class RefreshFlow(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        self.build = self.root / "build"
        self.baselines = self.root / "baselines"
        self.out = self.root / "candidate"
        self.baselines.mkdir()
        patcher = mock.patch.object(refresh_baselines, "SPECS", [FAKE_SPEC])
        patcher.start()
        self.addCleanup(patcher.stop)
        self.addCleanup(self._tmp.cleanup)

    def run_main(self, *extra: str) -> int:
        return refresh_baselines.main(
            [
                "--build-dir", str(self.build),
                "--baselines", str(self.baselines),
                "--out", str(self.out),
                *extra,
            ]
        )

    def test_happy_path_writes_candidate_and_diffs_clean(self) -> None:
        write_stub_bench(self.build, "fake_bench", artifact())
        (self.baselines / "BENCH_fake.json").write_text(json.dumps(artifact()))
        self.assertEqual(self.run_main(), 0)
        candidate = json.loads((self.out / "BENCH_fake.json").read_text())
        self.assertEqual(candidate["schema"], "cpla-bench-v1")
        # Default mode must not touch the checked-in baselines.
        self.assertEqual(
            json.loads((self.baselines / "BENCH_fake.json").read_text()), artifact()
        )

    def test_candidate_dropping_a_counter_fails_the_refresh(self) -> None:
        write_stub_bench(self.build, "fake_bench", artifact(drop_counter=True))
        (self.baselines / "BENCH_fake.json").write_text(json.dumps(artifact()))
        self.assertEqual(self.run_main(), 1)

    def test_missing_binary_fails(self) -> None:
        (self.baselines / "BENCH_fake.json").write_text(json.dumps(artifact()))
        self.assertEqual(self.run_main(), 1)

    def test_new_bench_without_baseline_passes_and_install_creates_it(self) -> None:
        write_stub_bench(self.build, "fake_bench", artifact())
        self.assertEqual(self.run_main("--install"), 0)
        installed = json.loads((self.baselines / "BENCH_fake.json").read_text())
        self.assertEqual(installed, artifact())

    def test_check_mode_skips_bench_runs(self) -> None:
        # No stub binary: --check must still succeed off an existing candidate.
        self.out.mkdir()
        (self.out / "BENCH_fake.json").write_text(json.dumps(artifact()))
        (self.baselines / "BENCH_fake.json").write_text(json.dumps(artifact()))
        self.assertEqual(self.run_main("--check"), 0)

    def test_only_filter_unknown_name_is_a_usage_error(self) -> None:
        with self.assertRaises(SystemExit) as ctx:
            self.run_main("--only", "no_such_bench")
        self.assertEqual(ctx.exception.code, 2)

    def test_bench_nonzero_exit_fails(self) -> None:
        exe = write_stub_bench(self.build, "fake_bench", artifact())
        exe.write_text("#!/bin/sh\nexit 3\n")
        (self.baselines / "BENCH_fake.json").write_text(json.dumps(artifact()))
        self.assertEqual(self.run_main(), 1)

    def test_omp_threads_pinned_for_bench_runs(self) -> None:
        # The stub records its environment; CI comparability depends on the
        # single-thread pin.
        exe = write_stub_bench(self.build, "fake_bench", artifact())
        marker = self.root / "omp.txt"
        exe.write_text(
            "#!/bin/sh\n"
            "out=\n"
            'while [ $# -gt 0 ]; do\n'
            '  if [ "$1" = "--metrics-out" ]; then out="$2"; fi\n'
            "  shift\n"
            "done\n"
            f'echo "$OMP_NUM_THREADS" > "{marker}"\n'
            f"printf '%s' '{json.dumps(artifact())}' > \"$out\"\n"
        )
        (self.baselines / "BENCH_fake.json").write_text(json.dumps(artifact()))
        self.assertEqual(self.run_main(), 0)
        self.assertEqual(marker.read_text().strip(), "1")


class SpecsContract(unittest.TestCase):
    """SPECS, the bench-smoke CI job, and ci/baselines/ must agree."""

    def test_every_spec_has_a_checked_in_baseline(self) -> None:
        for name, _binary, _args in refresh_baselines.SPECS:
            self.assertTrue(
                (REPO_ROOT / "ci" / "baselines" / name).is_file(),
                f"SPECS lists {name} but ci/baselines/{name} is not checked in",
            )

    def test_every_checked_in_baseline_is_in_specs(self) -> None:
        spec_names = {name for name, _, _ in refresh_baselines.SPECS}
        on_disk = {p.name for p in (REPO_ROOT / "ci" / "baselines").glob("BENCH_*.json")}
        self.assertEqual(
            on_disk - spec_names,
            set(),
            "baseline files exist that refresh_baselines.py cannot regenerate",
        )

    def test_ci_workflow_gates_every_spec(self) -> None:
        workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        for name, binary, _args in refresh_baselines.SPECS:
            self.assertIn(
                name, workflow, f"{name} is not referenced by .github/workflows/ci.yml"
            )
            self.assertIn(
                binary, workflow, f"bench binary {binary} is not run by the CI workflow"
            )

    def test_artifacts_parse_as_bench_schema(self) -> None:
        for name, _binary, _args in refresh_baselines.SPECS:
            doc = json.loads((REPO_ROOT / "ci" / "baselines" / name).read_text())
            self.assertEqual(doc.get("schema"), "cpla-bench-v1", name)


class EntryPoint(unittest.TestCase):
    def test_main_accepts_argv_none(self) -> None:
        # Argv plumbing: parse_args(None) must read sys.argv, not crash.
        with mock.patch.object(sys, "argv", ["refresh_baselines.py", "--only", "zzz"]):
            with self.assertRaises(SystemExit):
                refresh_baselines.main()

    def test_os_environ_not_mutated_by_run_bench(self) -> None:
        before = dict(os.environ)
        refresh_baselines.run_bench("/nonexistent", "/tmp", "x.json", "nope", [])
        self.assertEqual(dict(os.environ), before)


if __name__ == "__main__":
    unittest.main(verbosity=2)
