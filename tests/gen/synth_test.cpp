#include "src/gen/synth.hpp"

#include <gtest/gtest.h>

namespace cpla::gen {
namespace {

TEST(SuiteNames, FifteenBenchmarks) {
  EXPECT_EQ(suite_names().size(), 15u);
  EXPECT_EQ(small_case_names().size(), 6u);
  for (const auto& name : small_case_names()) {
    EXPECT_NE(std::find(suite_names().begin(), suite_names().end(), name),
              suite_names().end())
        << name;
  }
}

TEST(SuiteSpec, KnownNameHasSaneParameters) {
  const SynthSpec spec = suite_spec("adaptec1");
  EXPECT_EQ(spec.name, "adaptec1");
  EXPECT_GE(spec.num_layers, 6);
  EXPECT_GT(spec.num_nets, 100);
  EXPECT_GE(spec.xsize, 16);
}

TEST(SuiteSpec, UnknownNameAborts) { EXPECT_DEATH(suite_spec("nosuchbench"), "unknown"); }

TEST(SuiteSpec, BigBlue4IsLargerThanAdaptec1) {
  const SynthSpec a = suite_spec("adaptec1");
  const SynthSpec b = suite_spec("bigblue4");
  EXPECT_GT(b.num_nets, a.num_nets);
  EXPECT_GT(b.xsize, a.xsize);
  EXPECT_GT(b.num_layers, a.num_layers - 1);
}

TEST(Generate, Deterministic) {
  SynthSpec spec;
  spec.num_nets = 50;
  spec.xsize = spec.ysize = 20;
  spec.seed = 7;
  const grid::Design a = generate(spec);
  const grid::Design b = generate(spec);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t n = 0; n < a.nets.size(); ++n) {
    ASSERT_EQ(a.nets[n].pins.size(), b.nets[n].pins.size());
    for (std::size_t k = 0; k < a.nets[n].pins.size(); ++k) {
      EXPECT_EQ(a.nets[n].pins[k], b.nets[n].pins[k]);
    }
  }
}

TEST(Generate, PinsInsideGrid) {
  SynthSpec spec;
  spec.num_nets = 300;
  spec.xsize = 24;
  spec.ysize = 32;
  const grid::Design d = generate(spec);
  EXPECT_EQ(d.nets.size(), 300u);
  for (const auto& net : d.nets) {
    ASSERT_GE(net.pins.size(), 2u);
    for (const auto& pin : net.pins) {
      EXPECT_GE(pin.x, 0);
      EXPECT_LT(pin.x, 24);
      EXPECT_GE(pin.y, 0);
      EXPECT_LT(pin.y, 32);
      EXPECT_EQ(pin.layer, 0);
    }
  }
}

TEST(Generate, PinDistributionHasMultiPinTail) {
  SynthSpec spec;
  spec.num_nets = 2000;
  spec.xsize = spec.ysize = 32;
  const grid::Design d = generate(spec);
  int two_pin = 0, big = 0;
  for (const auto& net : d.nets) {
    if (net.pins.size() == 2) ++two_pin;
    if (net.pins.size() >= 10) ++big;
  }
  // ~45% 2-pin, a real multi-pin tail.
  EXPECT_GT(two_pin, 700);
  EXPECT_GT(big, 20);
}

TEST(Generate, BlockagesDepressLowLayerCapacity) {
  SynthSpec spec;
  spec.num_nets = 10;
  spec.xsize = spec.ysize = 32;
  spec.num_blockages = 4;
  spec.tracks_per_layer = 12;
  const grid::Design d = generate(spec);
  int depressed = 0;
  for (int e = 0; e < d.grid.num_edges_on_layer(0); ++e) {
    if (d.grid.edge_capacity(0, e) < 12) ++depressed;
  }
  EXPECT_GT(depressed, 0);
}

TEST(Generate, AllSuiteBenchmarksGenerate) {
  for (const auto& name : suite_names()) {
    const grid::Design d = generate_suite(name);
    EXPECT_EQ(d.name, name);
    EXPECT_GT(d.nets.size(), 100u) << name;
  }
}

}  // namespace
}  // namespace cpla::gen
