#include "src/sta/corner.hpp"

#include <exception>
#include <fstream>
#include <iterator>
#include <sstream>

#include "src/util/check.hpp"

namespace cpla::sta {

CornerSet::CornerSet(const timing::RcTable& base, std::vector<RcCorner> corners)
    : corners_(std::move(corners)) {
  CPLA_ASSERT_MSG(!corners_.empty(), "a CornerSet needs at least one corner");
  tables_.reserve(corners_.size());
  for (const RcCorner& c : corners_) {
    timing::RcTable rc = base;
    rc.scale_resistance(c.res_scale);
    rc.scale_capacitance(c.cap_scale);
    rc.set_sink_cap(base.sink_cap() * c.cap_scale);
    rc.set_driver_res(base.driver_res() * c.driver_scale);
    tables_.push_back(std::move(rc));
  }
}

CornerSet CornerSet::single(const timing::RcTable& base) {
  return CornerSet(base, {RcCorner{}});
}

Result<std::vector<RcCorner>> parse_corners(std::istream& in) {
  std::vector<RcCorner> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank or comment-only line
    if (keyword != "corner") {
      return Status(StatusCode::kBadInput, "expected 'corner', got '" + keyword + "'", lineno);
    }
    RcCorner corner;
    if (!(fields >> corner.name >> corner.res_scale >> corner.cap_scale)) {
      return Status(StatusCode::kBadInput,
                    "corner needs <name> <res_scale> <cap_scale> "
                    "[driver_scale [required_time]]",
                    lineno);
    }
    if (fields.fail()) {
      return Status(StatusCode::kBadInput, "malformed corner scales", lineno);
    }
    // Optional fields keep their defaults when absent; a present-but-
    // malformed value is an error, not a silent default.
    double* const optional_fields[] = {&corner.driver_scale, &corner.required_time};
    std::string token;
    std::size_t opt = 0;
    while (fields >> token) {
      if (opt >= std::size(optional_fields)) {
        return Status(StatusCode::kBadInput, "trailing junk '" + token + "'", lineno);
      }
      std::size_t consumed = 0;
      double value = 0.0;
      try {
        value = std::stod(token, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != token.size()) {
        return Status(StatusCode::kBadInput, "malformed number '" + token + "'", lineno);
      }
      *optional_fields[opt++] = value;
    }
    if (corner.res_scale <= 0.0 || corner.cap_scale <= 0.0 || corner.driver_scale <= 0.0) {
      return Status(StatusCode::kBadInput, "corner scales must be positive", lineno);
    }
    for (const RcCorner& seen : out) {
      if (seen.name == corner.name) {
        return Status(StatusCode::kBadInput, "duplicate corner '" + corner.name + "'", lineno);
      }
    }
    out.push_back(std::move(corner));
  }
  if (out.empty()) {
    return Status(StatusCode::kBadInput, "corner table defines no corners");
  }
  return out;
}

Result<std::vector<RcCorner>> parse_corners_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kBadInput, "cannot open corners file " + path);
  }
  return parse_corners(in);
}

}  // namespace cpla::sta
