#pragma once

// TimingPath: one source-to-endpoint path through the timing graph, as
// returned by TimingGraph::report_top_k_paths. Lives in its own header so
// the graph header can declare the report API without pulling in the
// enumeration machinery (which stays in path_enum.cpp, a registered
// bit-identity TU).

#include <vector>

namespace cpla::sta {

struct TimingPath {
  // Node ids along the path, primary input first, endpoint last.
  std::vector<int> nodes;
  double delay = 0.0;     // sum of edge delays along the path
  double required = 0.0;  // the endpoint's required time at the corner
  double slack = 0.0;     // required - delay; paths report in ascending slack
};

}  // namespace cpla::sta
