#pragma once

// Incremental multi-corner STA over the routed design.
//
// Graph model. Two node kinds per net with a nonempty routing tree:
//
//   * one DRIVER node at the net's root cell,
//   * one SINK node per sink attach (SegTree::sinks order).
//
// Edges:
//
//   * net edges  driver(n) -> sink(n, k), one per sink, whose per-corner
//     delay is the Elmore (or D2M) root-to-sink delay of net n under the
//     corner's RcTable — recomputed whenever the net's layer vector
//     changes;
//   * stage edges  sink(a, k) -> driver(b)  whenever sink k of net a sits
//     in the same GCell as the root of net b (a != b): the spatial stand-in
//     for the gate that would connect the two nets in a full netlist. Their
//     delay is Options::stage_delay at every corner.
//
// The graph is levelized (Kahn; cycles from the spatial heuristic are
// broken deterministically at the smallest-id stalled node and counted).
// Per corner, arrival propagates forward in level order (max over in-edges
// in ascending edge-id order — the pinned reduction order of the
// bit-identity contract), required time propagates backward (min over
// out-edges), slack = required - arrival, and the worst-over-corners merge
// min_c slack(c, v) is the flow-facing criticality. Endpoints are nodes
// with no enabled out-edges; a corner with required_time < 0 derives its
// budget from its own worst endpoint arrival.
//
// update() re-times incrementally: nets whose layer vectors changed are
// re-timed, and only the affected fan-out (arrival) / fan-in (required)
// cones are re-propagated, stopping where recomputed values are bitwise
// equal to stored ones. Registered in determinism_contract.hpp: an
// incremental update is bit-identical to a from-scratch build() on the
// same state. Tree-shape changes (ECO reroute/add/remove) are topology
// changes — call invalidate_topology() and the next update() rebuilds.
//
// Not thread-safe: one writer at a time. The internal level-parallel
// propagation (Options::parallel) is deterministic — nodes within a level
// write disjoint entries and read only earlier levels.

#include <vector>

#include "src/assign/state.hpp"
#include "src/sta/corner.hpp"
#include "src/sta/path_enum.hpp"

namespace cpla::sta {

using NodeId = int;

enum class NodeKind : char { kDriver, kSink };

class TimingGraph {
 public:
  struct Options {
    double stage_delay = 0.0;  // per-corner delay of every stage edge
    bool parallel = true;      // OpenMP over nodes within a level
    bool use_d2m = false;      // D2M sink delays instead of Elmore
  };

  struct Stats {
    long builds = 0;               // from-scratch builds (including rebuilds)
    long incremental_updates = 0;  // update() calls served incrementally
    long dirty_nets = 0;           // nets re-timed by the last update
    long dirty_nodes = 0;          // nodes re-propagated by the last update
    long broken_cycle_edges = 0;   // edges disabled by cycle breaking (current graph)
  };

  TimingGraph() = default;

  /// From-scratch build. `corners` is borrowed and must outlive the graph
  /// (update() re-times against the same set).
  void build(const assign::AssignState& state, const CornerSet& corners,
             const Options& options);
  void build(const assign::AssignState& state, const CornerSet& corners) {
    build(state, corners, Options{});
  }

  bool built() const { return corners_ != nullptr; }

  /// Marks the graph topology stale (a net's tree changed shape, or nets
  /// were added/removed): the next update() rebuilds from scratch. Pure
  /// layer changes never need this — update() detects them by exact
  /// layer-vector comparison, like timing::TimingCache.
  void invalidate_topology() { topology_dirty_ = true; }

  /// Re-times against the (possibly mutated) state. Bit-identical to a
  /// fresh build() on the same state — the registered contract.
  void update(const assign::AssignState& state);

  // --- Shape -----------------------------------------------------------
  int num_corners() const { return static_cast<int>(arrival_.size()); }
  int num_nodes() const { return static_cast<int>(kind_.size()); }
  int num_edges() const { return static_cast<int>(edge_to_.size()); }
  int num_levels() const { return num_levels_; }

  NodeKind kind(NodeId v) const { return static_cast<NodeKind>(kind_[v]); }
  int node_net(NodeId v) const { return node_net_[v]; }
  /// Sink index within the net (SegTree::sinks order); -1 for drivers.
  int node_sink(NodeId v) const { return node_sink_[v]; }

  bool has_net(int net) const {
    return net >= 0 && net < static_cast<int>(driver_node_.size()) && driver_node_[net] >= 0;
  }
  NodeId driver_node(int net) const { return driver_node_[net]; }
  NodeId sink_node(int net, int k) const { return driver_node_[net] + 1 + k; }

  /// Endpoint node ids (no enabled out-edges), ascending.
  const std::vector<NodeId>& endpoints() const { return endpoints_; }

  // --- Edge / level inspection (tests, tools, reporting) ---------------
  // Out-edges of `v` are the contiguous edge-id range
  // [out_edge_begin(v), out_edge_end(v)); in-edges are in_edge(v, 0..in_degree).
  int out_edge_begin(NodeId v) const { return out_begin_[v]; }
  int out_edge_end(NodeId v) const { return out_begin_[v + 1]; }
  int in_degree(NodeId v) const { return in_begin_[v + 1] - in_begin_[v]; }
  int in_edge(NodeId v, int i) const { return in_edge_[in_begin_[v] + i]; }
  int edge_from(int e) const { return edge_from_[e]; }
  int edge_to(int e) const { return edge_to_[e]; }
  /// False = removed by deterministic cycle breaking.
  bool edge_enabled(int e) const { return edge_enabled_[e] != 0; }
  double edge_delay(int corner, int e) const { return edge_delay_[corner][e]; }
  /// Topological level of `v` (enabled edges always go level-up).
  int level(NodeId v) const { return level_[v]; }

  // --- Timing ----------------------------------------------------------
  double arrival(int corner, NodeId v) const { return arrival_[corner][v]; }
  double required(int corner, NodeId v) const { return required_[corner][v]; }
  double slack(int corner, NodeId v) const { return slack_[corner][v]; }

  /// Worst slack over corners at one node — the flow's objective merge.
  double worst_slack(NodeId v) const { return worst_slack_[v]; }

  /// Worst slack over every endpoint (the design's critical-path slack).
  double worst_slack() const;

  /// min worst_slack over the net's driver and sink nodes; +infinity for
  /// nets absent from the graph (empty placeholder trees).
  double net_slack(int net) const;

  /// The effective required time of corner `c` (explicit, or the derived
  /// worst-endpoint-arrival budget).
  double corner_required(int c) const { return effective_required_[c]; }

  /// Top-K critical paths at one corner: the K paths with the smallest
  /// slack, ascending, ties broken by lexicographically smaller node
  /// sequence. Branch-and-bound over the slack-annotated DAG — exact, and
  /// never enumerates more than K complete paths. Implemented in
  /// path_enum.cpp (registered bit-identity TU).
  std::vector<TimingPath> report_top_k_paths(int corner, int k) const;

  const Stats& stats() const { return stats_; }

 private:
  void levelize();
  void retime_net(const assign::AssignState& state, int net);
  void propagate_full();
  void recompute_arrival(int v);
  void recompute_required(int v);
  bool refresh_effective_required();
  void merge_slack(int v);

  const CornerSet* corners_ = nullptr;  // borrowed
  Options options_;
  bool topology_dirty_ = false;
  int num_levels_ = 0;

  // Nodes. Layout: driver(net), sink(net, 0), ..., per net ascending.
  std::vector<char> kind_;
  std::vector<int> node_net_;
  std::vector<int> node_sink_;
  std::vector<int> driver_node_;  // per net id; -1 = net absent

  // Edges, CSR by source node; edge id order is the pinned order every
  // reduction below iterates in.
  std::vector<int> out_begin_;      // per node, size nodes+1
  std::vector<int> edge_to_;        // per edge
  std::vector<int> edge_from_;      // per edge
  std::vector<char> edge_enabled_;  // false = removed by cycle breaking
  std::vector<std::vector<double>> edge_delay_;  // [corner][edge]
  // Reverse adjacency: in-edge ids per node, ascending (CSR).
  std::vector<int> in_begin_;
  std::vector<int> in_edge_;

  // Levelization: nodes sorted by (level, id), CSR over levels.
  std::vector<int> level_;
  std::vector<int> level_begin_;
  std::vector<int> level_nodes_;

  std::vector<NodeId> endpoints_;

  // Timing values, [corner][node].
  std::vector<std::vector<double>> arrival_, required_, slack_;
  std::vector<double> worst_slack_;          // per node, min over corners
  std::vector<double> effective_required_;   // per corner
  std::vector<std::vector<int>> timed_layers_;  // per net: layers last timed with

  Stats stats_;
};

}  // namespace cpla::sta
