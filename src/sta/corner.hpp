#pragma once

// RC corners for multi-scenario STA. A corner is a named scaling of the
// base RC extraction (the `CellLib x TimingMode` idiom of the Galois
// TimingEngine, collapsed to what this repo models: wire/via resistance,
// wire/pin capacitance, and driver strength) plus an optional endpoint
// required time. CornerSet materializes one RcTable per corner up front so
// the timing graph's inner loops never re-scale.

#include <iosfwd>
#include <string>
#include <vector>

#include "src/timing/rc_table.hpp"
#include "src/util/status.hpp"

namespace cpla::sta {

struct RcCorner {
  std::string name = "typ";
  double res_scale = 1.0;        // wire + via resistance multiplier
  double cap_scale = 1.0;        // wire + sink pin capacitance multiplier
  double driver_scale = 1.0;     // driver resistance multiplier
  // Endpoint budget for this corner. Negative = derived: the corner's
  // worst endpoint arrival becomes the required time, so the most critical
  // endpoint sits at exactly zero slack and everything else is ranked
  // relative to it.
  double required_time = -1.0;
};

/// The materialized corner table: one scaled RcTable per RcCorner.
class CornerSet {
 public:
  CornerSet() = default;
  CornerSet(const timing::RcTable& base, std::vector<RcCorner> corners);

  /// The trivial one-corner set (unscaled base extraction, derived budget).
  static CornerSet single(const timing::RcTable& base);

  int size() const { return static_cast<int>(corners_.size()); }
  const RcCorner& corner(int c) const { return corners_[static_cast<std::size_t>(c)]; }
  const timing::RcTable& rc(int c) const { return tables_[static_cast<std::size_t>(c)]; }

 private:
  std::vector<RcCorner> corners_;
  std::vector<timing::RcTable> tables_;
};

/// Parses a corner table. One corner per line, '#' comments and blank
/// lines ignored:
///
///   corner <name> <res_scale> <cap_scale> [driver_scale [required_time]]
///
/// Returns kBadInput (with the 1-based line number) on a malformed line,
/// a duplicate corner name, or an empty table.
Result<std::vector<RcCorner>> parse_corners(std::istream& in);

/// parse_corners over a file; kBadInput when the file cannot be opened.
Result<std::vector<RcCorner>> parse_corners_file(const std::string& path);

}  // namespace cpla::sta
