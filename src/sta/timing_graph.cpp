#include "src/sta/timing_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/metrics.hpp"
#include "src/timing/elmore.hpp"
#include "src/timing/moments.hpp"
#include "src/util/check.hpp"

namespace cpla::sta {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The sink's GCell: the far end of its attach segment, or the net root for
// sinks merged into the driver cell.
grid::XY sink_cell(const route::SegTree& tree, const route::SinkAttach& sink) {
  return sink.seg_id < 0 ? tree.root : tree.segs[sink.seg_id].b;
}

}  // namespace

void TimingGraph::build(const assign::AssignState& state, const CornerSet& corners,
                        const Options& options) {
  obs::ScopedPhase phase("sta.build");
  static obs::Counter& builds_counter = obs::metrics().counter("sta.graph.builds");
  static obs::Gauge& nodes_gauge = obs::metrics().gauge("sta.graph.nodes");
  static obs::Gauge& edges_gauge = obs::metrics().gauge("sta.graph.edges");

  CPLA_ASSERT_MSG(corners.size() > 0, "TimingGraph needs at least one corner");
  corners_ = &corners;
  options_ = options;
  topology_dirty_ = false;

  const grid::GridGraph& grid = state.design().grid;
  const int num_nets = state.num_nets();
  const int nc = corners.size();

  // --- Nodes: driver then sinks, nets ascending ------------------------
  kind_.clear();
  node_net_.clear();
  node_sink_.clear();
  driver_node_.assign(num_nets, -1);
  for (int net = 0; net < num_nets; ++net) {
    const route::SegTree& tree = state.tree(net);
    if (tree.segs.empty() && tree.sinks.empty()) continue;  // removed/placeholder
    driver_node_[net] = static_cast<int>(kind_.size());
    kind_.push_back(static_cast<char>(NodeKind::kDriver));
    node_net_.push_back(net);
    node_sink_.push_back(-1);
    for (int k = 0; k < static_cast<int>(tree.sinks.size()); ++k) {
      kind_.push_back(static_cast<char>(NodeKind::kSink));
      node_net_.push_back(net);
      node_sink_.push_back(k);
    }
  }
  const int n = num_nodes();

  // --- Edges, CSR by source --------------------------------------------
  // Driver cells, sorted by (cell, node) for binary-searched stage-edge
  // discovery (no unordered containers: src/sta is order-sensitive).
  std::vector<std::pair<int, int>> driver_at_cell;  // (cell id, driver node)
  for (int net = 0; net < num_nets; ++net) {
    if (driver_node_[net] < 0) continue;
    const route::SegTree& tree = state.tree(net);
    driver_at_cell.emplace_back(grid.cell_id(tree.root.x, tree.root.y), driver_node_[net]);
  }
  std::sort(driver_at_cell.begin(), driver_at_cell.end());

  out_begin_.assign(n + 1, 0);
  edge_to_.clear();
  edge_from_.clear();
  for (int v = 0; v < n; ++v) {
    out_begin_[v] = static_cast<int>(edge_to_.size());
    const int net = node_net_[v];
    const route::SegTree& tree = state.tree(net);
    if (kind(v) == NodeKind::kDriver) {
      // Net edges, sink order: edge id of driver->sink k is out_begin_[v]+k.
      for (int k = 0; k < static_cast<int>(tree.sinks.size()); ++k) {
        edge_from_.push_back(v);
        edge_to_.push_back(v + 1 + k);
      }
    } else {
      // Stage edges to every other net driven from the sink's cell,
      // ascending driver-node order (driver_at_cell is sorted).
      const grid::XY cell = sink_cell(tree, tree.sinks[node_sink_[v]]);
      const int cell_id = grid.cell_id(cell.x, cell.y);
      auto range = std::equal_range(driver_at_cell.begin(), driver_at_cell.end(),
                                    std::make_pair(cell_id, 0),
                                    [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto it = range.first; it != range.second; ++it) {
        if (it->second == driver_node_[net]) continue;  // no self-stage
        edge_from_.push_back(v);
        edge_to_.push_back(it->second);
      }
    }
  }
  out_begin_[n] = static_cast<int>(edge_to_.size());
  const int m = num_edges();
  edge_enabled_.assign(m, 1);

  // Reverse CSR; pushing edges in ascending id keeps each node's in-edge
  // list ascending — the pinned reduction order of the arrival max.
  in_begin_.assign(n + 1, 0);
  for (int e = 0; e < m; ++e) ++in_begin_[edge_to_[e] + 1];
  for (int v = 0; v < n; ++v) in_begin_[v + 1] += in_begin_[v];
  in_edge_.assign(m, 0);
  {
    std::vector<int> cursor(in_begin_.begin(), in_begin_.end() - 1);
    for (int e = 0; e < m; ++e) in_edge_[cursor[edge_to_[e]]++] = e;
  }

  levelize();

  // --- Delays and propagation ------------------------------------------
  edge_delay_.assign(nc, std::vector<double>(m, options_.stage_delay));
  timed_layers_.assign(num_nets, {});
  for (int net = 0; net < num_nets; ++net) {
    if (driver_node_[net] >= 0) retime_net(state, net);
  }

  arrival_.assign(nc, std::vector<double>(n, 0.0));
  required_.assign(nc, std::vector<double>(n, 0.0));
  slack_.assign(nc, std::vector<double>(n, 0.0));
  worst_slack_.assign(n, kInf);
  effective_required_.assign(nc, 0.0);
  propagate_full();

  ++stats_.builds;
  builds_counter.add();
  nodes_gauge.set(n);
  edges_gauge.set(m);
  static obs::Gauge& worst_gauge = obs::metrics().gauge("sta.slack.worst");
  worst_gauge.set(worst_slack());
}

void TimingGraph::levelize() {
  obs::ScopedPhase phase("sta.levelize");
  static obs::Counter& cycle_edges = obs::metrics().counter("sta.graph.cycle_edges");

  const int n = num_nodes();
  stats_.broken_cycle_edges = 0;
  level_.assign(n, 0);
  level_begin_.clear();
  level_nodes_.clear();
  level_nodes_.reserve(n);

  std::vector<int> indeg(n, 0);
  for (int e = 0; e < num_edges(); ++e) ++indeg[edge_to_[e]];
  std::vector<char> placed(n, 0);

  std::vector<int> frontier, next;
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) frontier.push_back(v);
  }
  int processed = 0;
  int level = 0;
  while (processed < n) {
    if (frontier.empty()) {
      // Cycle (the spatial stage heuristic can produce them): break it at
      // the smallest unplaced node by disabling its in-edges from unplaced
      // sources. Deterministic, and counted.
      int victim = -1;
      for (int v = 0; v < n; ++v) {
        if (!placed[v]) {
          victim = v;
          break;
        }
      }
      CPLA_ASSERT(victim >= 0);
      for (int i = in_begin_[victim]; i < in_begin_[victim + 1]; ++i) {
        const int e = in_edge_[i];
        if (edge_enabled_[e] && !placed[edge_from_[e]]) {
          edge_enabled_[e] = 0;
          ++stats_.broken_cycle_edges;
          cycle_edges.add();
        }
      }
      indeg[victim] = 0;
      frontier.push_back(victim);
    }
    level_begin_.push_back(static_cast<int>(level_nodes_.size()));
    for (int v : frontier) {
      level_[v] = level;
      placed[v] = 1;
      level_nodes_.push_back(v);
    }
    processed += static_cast<int>(frontier.size());
    next.clear();
    for (int v : frontier) {
      for (int e = out_begin_[v]; e < out_begin_[v + 1]; ++e) {
        if (edge_enabled_[e] && --indeg[edge_to_[e]] == 0) next.push_back(edge_to_[e]);
      }
    }
    std::sort(next.begin(), next.end());
    frontier.swap(next);
    ++level;
  }
  level_begin_.push_back(static_cast<int>(level_nodes_.size()));
  num_levels_ = static_cast<int>(level_begin_.size()) - 1;

  endpoints_.clear();
  for (int v = 0; v < n; ++v) {
    bool has_out = false;
    for (int e = out_begin_[v]; e < out_begin_[v + 1] && !has_out; ++e) {
      has_out = edge_enabled_[e] != 0;
    }
    if (!has_out) endpoints_.push_back(v);
  }
}

void TimingGraph::retime_net(const assign::AssignState& state, int net) {
  const route::SegTree& tree = state.tree(net);
  const std::vector<int>* layers = &state.layers(net);
  std::vector<int> fallback;
  if (layers->size() != tree.segs.size()) {
    fallback = state.default_layers(tree);
    layers = &fallback;
  }
  timed_layers_[net] = *layers;
  if (tree.sinks.empty()) return;
  const int first_edge = out_begin_[driver_node_[net]];
  // corners_->size(), not num_corners(): build() retimes before the
  // arrival arrays (which num_corners() measures) are allocated.
  for (int c = 0; c < corners_->size(); ++c) {
    if (options_.use_d2m) {
      const timing::NetMoments moments = timing::compute_moments(tree, *layers, corners_->rc(c));
      for (int k = 0; k < static_cast<int>(tree.sinks.size()); ++k) {
        edge_delay_[c][first_edge + k] = moments.d2m[k];
      }
    } else {
      const timing::NetTiming nt = timing::compute_timing(tree, *layers, corners_->rc(c));
      for (int k = 0; k < static_cast<int>(tree.sinks.size()); ++k) {
        edge_delay_[c][first_edge + k] = nt.sink_delay[k];
      }
    }
  }
}

void TimingGraph::recompute_arrival(int v) {
  for (int c = 0; c < num_corners(); ++c) {
    double arr = 0.0;
    for (int i = in_begin_[v]; i < in_begin_[v + 1]; ++i) {
      const int e = in_edge_[i];  // ascending edge ids: pinned max order
      if (!edge_enabled_[e]) continue;
      arr = std::max(arr, arrival_[c][edge_from_[e]] + edge_delay_[c][e]);
    }
    arrival_[c][v] = arr;
  }
}

void TimingGraph::recompute_required(int v) {
  for (int c = 0; c < num_corners(); ++c) {
    double req = kInf;
    for (int e = out_begin_[v]; e < out_begin_[v + 1]; ++e) {
      if (!edge_enabled_[e]) continue;
      req = std::min(req, required_[c][edge_to_[e]] - edge_delay_[c][e]);
    }
    required_[c][v] = req == kInf ? effective_required_[c] : req;  // endpoint
  }
}

bool TimingGraph::refresh_effective_required() {
  bool changed = false;
  for (int c = 0; c < num_corners(); ++c) {
    double req = corners_->corner(c).required_time;
    if (req < 0.0) {
      // Derived budget: the corner's worst endpoint arrival, so the most
      // critical endpoint sits at exactly zero slack.
      req = 0.0;
      for (const int v : endpoints_) req = std::max(req, arrival_[c][v]);
    }
    if (req != effective_required_[c]) {
      effective_required_[c] = req;
      changed = true;
    }
  }
  return changed;
}

void TimingGraph::merge_slack(int v) {
  double worst = kInf;
  for (int c = 0; c < num_corners(); ++c) {
    slack_[c][v] = required_[c][v] - arrival_[c][v];
    worst = std::min(worst, slack_[c][v]);
  }
  worst_slack_[v] = worst;
}

void TimingGraph::propagate_full() {
  obs::ScopedPhase phase("sta.propagate");
  const int n = num_nodes();
  for (int lv = 0; lv < num_levels_; ++lv) {
    const int begin = level_begin_[lv];
    const int end = level_begin_[lv + 1];
#pragma omp parallel for schedule(static) if (options_.parallel && end - begin > 64)
    for (int i = begin; i < end; ++i) recompute_arrival(level_nodes_[i]);
  }
  refresh_effective_required();
  for (int lv = num_levels_ - 1; lv >= 0; --lv) {
    const int begin = level_begin_[lv];
    const int end = level_begin_[lv + 1];
#pragma omp parallel for schedule(static) if (options_.parallel && end - begin > 64)
    for (int i = begin; i < end; ++i) recompute_required(level_nodes_[i]);
  }
#pragma omp parallel for schedule(static) if (options_.parallel && n > 256)
  for (int v = 0; v < n; ++v) merge_slack(v);
}

void TimingGraph::update(const assign::AssignState& state) {
  CPLA_ASSERT_MSG(built(), "TimingGraph::update before build");
  static obs::Counter& full_counter = obs::metrics().counter("sta.update.full");
  static obs::Counter& incr_counter = obs::metrics().counter("sta.update.incremental");
  static obs::Counter& dirty_counter = obs::metrics().counter("sta.update.dirty_nodes");
  static obs::Gauge& worst_gauge = obs::metrics().gauge("sta.slack.worst");

  if (topology_dirty_ || state.num_nets() != static_cast<int>(driver_node_.size())) {
    full_counter.add();
    build(state, *corners_, options_);
    return;
  }

  obs::ScopedPhase phase("sta.update");
  const int n = num_nodes();

  // --- Dirty nets: exact layer-vector compare (TimingCache discipline) --
  std::vector<int> dirty_nets;
  for (int net = 0; net < state.num_nets(); ++net) {
    if (driver_node_[net] < 0) continue;
    const route::SegTree& tree = state.tree(net);
    const std::vector<int>* layers = &state.layers(net);
    std::vector<int> fallback;
    if (layers->size() != tree.segs.size()) {
      fallback = state.default_layers(tree);
      layers = &fallback;
    }
    if (*layers != timed_layers_[net]) dirty_nets.push_back(net);
  }
  ++stats_.incremental_updates;
  incr_counter.add();
  stats_.dirty_nets = static_cast<long>(dirty_nets.size());
  stats_.dirty_nodes = 0;
  if (dirty_nets.empty()) {
    worst_gauge.set(worst_slack());
    return;
  }
  for (const int net : dirty_nets) retime_net(state, net);

  // --- Forward cone: arrival, level order, stop on bitwise equality -----
  std::vector<char> in_frontier(n, 0);
  std::vector<char> touched(n, 0);
  for (const int net : dirty_nets) {
    const route::SegTree& tree = state.tree(net);
    for (int k = 0; k < static_cast<int>(tree.sinks.size()); ++k) {
      in_frontier[sink_node(net, k)] = 1;
    }
  }
  const int nc = num_corners();
  for (int i = 0; i < n; ++i) {  // level_nodes_ is (level, id)-ordered
    const int v = level_nodes_[i];
    if (!in_frontier[v]) continue;
    ++stats_.dirty_nodes;
    bool changed = false;
    for (int c = 0; c < nc; ++c) {
      const double before = arrival_[c][v];
      double arr = 0.0;
      for (int j = in_begin_[v]; j < in_begin_[v + 1]; ++j) {
        const int e = in_edge_[j];
        if (!edge_enabled_[e]) continue;
        arr = std::max(arr, arrival_[c][edge_from_[e]] + edge_delay_[c][e]);
      }
      arrival_[c][v] = arr;
      // "Unchanged" must mean bitwise-equal (the contract): +0.0 == -0.0
      // compares equal but differs in bits, so check signs too.
      changed |= arr != before || std::signbit(arr) != std::signbit(before);
    }
    if (!changed) continue;
    touched[v] = 1;
    for (int e = out_begin_[v]; e < out_begin_[v + 1]; ++e) {
      if (edge_enabled_[e]) in_frontier[edge_to_[e]] = 1;
    }
  }

  // --- Backward cone: required --------------------------------------------
  std::fill(in_frontier.begin(), in_frontier.end(), 0);
  // A dirty net's edge delays feed the driver's required min directly.
  for (const int net : dirty_nets) in_frontier[driver_node_[net]] = 1;
  if (refresh_effective_required()) {
    // The derived budget moved: every endpoint's required changes.
    for (const int v : endpoints_) in_frontier[v] = 1;
  }
  for (int i = n - 1; i >= 0; --i) {
    const int v = level_nodes_[i];
    if (!in_frontier[v]) continue;
    ++stats_.dirty_nodes;
    bool changed = false;
    for (int c = 0; c < nc; ++c) {
      const double before = required_[c][v];
      double req = kInf;
      for (int e = out_begin_[v]; e < out_begin_[v + 1]; ++e) {
        if (!edge_enabled_[e]) continue;
        req = std::min(req, required_[c][edge_to_[e]] - edge_delay_[c][e]);
      }
      if (req == kInf) req = effective_required_[c];
      required_[c][v] = req;
      changed |= req != before || std::signbit(req) != std::signbit(before);
    }
    if (!changed) continue;
    touched[v] = 1;
    for (int j = in_begin_[v]; j < in_begin_[v + 1]; ++j) {
      const int e = in_edge_[j];
      if (edge_enabled_[e]) in_frontier[edge_from_[e]] = 1;
    }
  }

  for (int v = 0; v < n; ++v) {
    if (touched[v]) merge_slack(v);
  }
  dirty_counter.add(stats_.dirty_nodes);
  worst_gauge.set(worst_slack());
}

double TimingGraph::worst_slack() const {
  double worst = kInf;
  for (const int v : endpoints_) worst = std::min(worst, worst_slack_[v]);
  return worst;
}

double TimingGraph::net_slack(int net) const {
  if (!has_net(net)) return kInf;
  double worst = kInf;
  // A net's nodes are contiguous: driver, then its sinks.
  for (int v = driver_node_[net]; v < num_nodes() && node_net_[v] == net; ++v) {
    worst = std::min(worst, worst_slack_[v]);
  }
  return worst;
}

}  // namespace cpla::sta
