#include <algorithm>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/sta/timing_graph.hpp"
#include "src/util/check.hpp"

// Top-K critical-path extraction: best-first branch-and-bound over path
// prefixes. Every endpoint shares the corner's effective required time, so
// the K smallest-slack paths are exactly the K longest-delay source-to-
// endpoint paths. Each prefix is scored by an exact admissible bound —
// prefix delay plus the longest completion from its last node — so pops
// come out in non-increasing score order and the search emits exactly K
// complete paths, never enumerating a (K+1)-th. Ties break toward the
// lexicographically smaller node sequence; since no complete path can be a
// strict prefix of another (endpoints have no out-edges), prefix order and
// final path order agree, making the report fully deterministic. This TU
// is registered in the bit-identity contract.

namespace cpla::sta {

namespace {

struct Prefix {
  std::vector<int> nodes;
  double delay = 0.0;  // exact delay of the prefix
  double bound = 0.0;  // delay + longest completion from nodes.back()
};

// Max-heap order: larger bound first, ties to the lex-smaller sequence.
struct PrefixWorse {
  bool operator()(const Prefix& a, const Prefix& b) const {
    if (a.bound != b.bound) return a.bound < b.bound;
    return b.nodes < a.nodes;
  }
};

}  // namespace

std::vector<TimingPath> TimingGraph::report_top_k_paths(int corner, int k) const {
  static obs::Counter& reports = obs::metrics().counter("sta.paths.reports");
  static obs::Counter& heap_pops = obs::metrics().counter("sta.paths.heap_pops");
  CPLA_ASSERT(corner >= 0 && corner < num_corners());
  reports.add();

  std::vector<TimingPath> out;
  const int n = num_nodes();
  if (k <= 0 || n == 0) return out;
  const std::vector<double>& delay = edge_delay_[corner];
  const double required = effective_required_[corner];

  // Longest completion per node, computed against the level order in
  // descending (level, id) sequence so every successor is final first.
  std::vector<double> completion(n, 0.0);
  for (int i = n - 1; i >= 0; --i) {
    const int v = level_nodes_[i];
    double best = 0.0;
    for (int e = out_begin_[v]; e < out_begin_[v + 1]; ++e) {
      if (!edge_enabled_[e]) continue;
      best = std::max(best, delay[e] + completion[edge_to_[e]]);
    }
    completion[v] = best;  // 0 at endpoints
  }

  std::priority_queue<Prefix, std::vector<Prefix>, PrefixWorse> heap;
  for (int v = 0; v < n; ++v) {
    bool has_in = false;
    for (int i = in_begin_[v]; i < in_begin_[v + 1] && !has_in; ++i) {
      has_in = edge_enabled_[in_edge_[i]] != 0;
    }
    if (!has_in) heap.push(Prefix{{v}, 0.0, completion[v]});  // primary input
  }

  while (!heap.empty() && static_cast<int>(out.size()) < k) {
    Prefix top = heap.top();
    heap.pop();
    heap_pops.add();
    const int last = top.nodes.back();
    bool has_out = false;
    for (int e = out_begin_[last]; e < out_begin_[last + 1]; ++e) {
      if (!edge_enabled_[e]) continue;
      has_out = true;
      Prefix child;
      child.nodes = top.nodes;
      child.nodes.push_back(edge_to_[e]);
      child.delay = top.delay + delay[e];
      child.bound = child.delay + completion[edge_to_[e]];
      heap.push(std::move(child));
    }
    if (!has_out) {
      // Endpoint: the prefix is a complete path; bound == delay.
      TimingPath path;
      path.nodes = std::move(top.nodes);
      path.delay = top.delay;
      path.required = required;
      path.slack = required - top.delay;
      out.push_back(std::move(path));
    }
  }
  return out;
}

}  // namespace cpla::sta
