#include "src/lp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "src/la/lu.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/check.hpp"

namespace cpla::lp {

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterLimit: return "iteration-limit";
  }
  return "?";
}

int LpProblem::add_var(double lo, double up, double cost) {
  CPLA_ASSERT(lo <= up);
  lo_.push_back(lo);
  up_.push_back(up);
  cost_.push_back(cost);
  return static_cast<int>(cost_.size()) - 1;
}

void LpProblem::add_row(Sense sense, double rhs, std::vector<std::pair<int, double>> coeffs) {
  for (const auto& [var, coef] : coeffs) {
    CPLA_ASSERT(var >= 0 && var < num_vars());
    (void)coef;
  }
  rows_.push_back(Row{sense, rhs, std::move(coeffs)});
}

void LpProblem::set_cost(int var, double cost) { cost_[var] = cost; }

void LpProblem::set_bounds(int var, double lo, double up) {
  CPLA_ASSERT(lo <= up);
  lo_[var] = lo;
  up_[var] = up;
}

namespace {

// Internal tableau over structural + slack + artificial columns.
class Simplex {
 public:
  Simplex(const LpProblem& p, const LpOptions& opt) : p_(p), opt_(opt) {
    m_ = p.num_rows();
    nstruct_ = p.num_vars();
    ncols_ = nstruct_ + 2 * m_;  // slacks then artificials
    cols_ = la::Matrix(static_cast<std::size_t>(m_), static_cast<std::size_t>(ncols_));
    lo_.assign(ncols_, 0.0);
    up_.assign(ncols_, 0.0);
    cost_.assign(ncols_, 0.0);
    b_.assign(static_cast<std::size_t>(m_), 0.0);

    for (int j = 0; j < nstruct_; ++j) {
      lo_[j] = p.lower(j);
      up_[j] = p.upper(j);
      cost_[j] = p.cost(j);
    }
    for (int i = 0; i < m_; ++i) {
      const auto& row = p.row(i);
      b_[i] = row.rhs;
      for (const auto& [var, coef] : row.coeffs) cols_(i, var) += coef;
      const int slack = nstruct_ + i;
      cols_(i, slack) = 1.0;
      switch (row.sense) {
        case Sense::kLe:
          lo_[slack] = 0.0;
          up_[slack] = kInf;
          break;
        case Sense::kGe:
          lo_[slack] = -kInf;
          up_[slack] = 0.0;
          break;
        case Sense::kEq:
          lo_[slack] = 0.0;
          up_[slack] = 0.0;
          break;
      }
    }
  }

  LpResult run() {
    init_start_point();

    // Phase 1: drive artificial variables to zero.
    std::vector<double> phase1(ncols_, 0.0);
    for (int j = nstruct_ + m_; j < ncols_; ++j) phase1[j] = 1.0;
    LpStatus status = iterate(phase1);
    if (status != LpStatus::kOptimal) return finish(status);
    if (objective(phase1) > 1e-6) return finish(LpStatus::kInfeasible);

    // Freeze artificials at zero and optimize the true objective.
    for (int j = nstruct_ + m_; j < ncols_; ++j) {
      lo_[j] = 0.0;
      up_[j] = 0.0;
      if (state_[j] != kBasic) {
        state_[j] = kAtLower;
        val_[j] = 0.0;
      }
    }
    status = iterate(cost_);
    return finish(status);
  }

 private:
  static constexpr int kBasic = -1;
  static constexpr int kAtLower = 0;
  static constexpr int kAtUpper = 1;

  void init_start_point() {
    state_.assign(ncols_, kAtLower);
    val_.assign(ncols_, 0.0);
    basis_.assign(static_cast<std::size_t>(m_), 0);

    for (int j = 0; j < nstruct_ + m_; ++j) {
      if (std::isfinite(lo_[j])) {
        state_[j] = kAtLower;
        val_[j] = lo_[j];
      } else if (std::isfinite(up_[j])) {
        state_[j] = kAtUpper;
        val_[j] = up_[j];
      } else {
        state_[j] = kAtLower;  // free variable parked at 0
        val_[j] = 0.0;
      }
    }

    // Residual determines the artificial column signs so their start values
    // are nonnegative.
    la::Vector r = b_;
    for (int j = 0; j < nstruct_ + m_; ++j) {
      if (val_[j] == 0.0) continue;
      for (int i = 0; i < m_; ++i) r[i] -= cols_(i, j) * val_[j];
    }
    for (int i = 0; i < m_; ++i) {
      const int art = nstruct_ + m_ + i;
      cols_(i, art) = (r[i] >= 0.0) ? 1.0 : -1.0;
      lo_[art] = 0.0;
      up_[art] = kInf;
      basis_[i] = art;
      state_[art] = kBasic;
      val_[art] = std::fabs(r[i]);
    }
  }

  double objective(const std::vector<double>& c) const {
    double sum = 0.0;
    for (int j = 0; j < ncols_; ++j) sum += c[j] * val_[j];
    return sum;
  }

  /// Recomputes basic variable values from the nonbasic point (exact, no
  /// incremental drift). Requires a factorized basis.
  bool recompute_basics(const la::Lu& lu) {
    la::Vector rhs = b_;
    for (int j = 0; j < ncols_; ++j) {
      if (state_[j] == kBasic || val_[j] == 0.0) continue;
      for (int i = 0; i < m_; ++i) rhs[i] -= cols_(i, j) * val_[j];
    }
    la::Vector xb = lu.solve(rhs);
    for (int i = 0; i < m_; ++i) val_[basis_[i]] = xb[i];
    return true;
  }

  std::optional<la::Lu> factor_basis() const {
    la::Matrix bmat(static_cast<std::size_t>(m_), static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      for (int k = 0; k < m_; ++k) bmat(i, k) = cols_(i, basis_[k]);
    }
    return la::Lu::factor(bmat);
  }

  LpStatus iterate(const std::vector<double>& c) {
    const double tol = opt_.tol;
    int stall = 0;
    double last_obj = kInf;

    for (; iters_ < opt_.max_iterations; ++iters_) {
      auto lu = factor_basis();
      CPLA_ASSERT_MSG(lu.has_value(), "singular simplex basis");
      recompute_basics(*lu);

      const double obj = objective(c);
      if (obj < last_obj - 1e-12) {
        last_obj = obj;
        stall = 0;
      } else {
        ++stall;
      }
      const bool bland = stall > 2 * ncols_ + 50;

      // Prices and reduced costs.
      la::Vector cb(static_cast<std::size_t>(m_));
      for (int i = 0; i < m_; ++i) cb[i] = c[basis_[i]];
      duals_ = lu->solve_transposed(cb);

      int enter = -1;
      int dir = 0;
      double best = tol;
      for (int j = 0; j < ncols_; ++j) {
        if (state_[j] == kBasic) continue;
        if (lo_[j] == up_[j]) continue;  // fixed
        double d = c[j];
        for (int i = 0; i < m_; ++i) d -= duals_[i] * cols_(i, j);
        const bool can_up = val_[j] < up_[j] - 1e-14 || up_[j] == kInf;
        const bool can_dn = val_[j] > lo_[j] + 1e-14 || lo_[j] == -kInf;
        if (d < -best && can_up) {
          enter = j;
          dir = +1;
          if (bland) break;
          best = -d;
        } else if (d > best && can_dn) {
          enter = j;
          dir = -1;
          if (bland) break;
          best = d;
        }
      }
      if (enter < 0) return LpStatus::kOptimal;

      // Direction of basic values: xB -= t * dir * w, w = B^{-1} A_enter.
      la::Vector acol(static_cast<std::size_t>(m_));
      for (int i = 0; i < m_; ++i) acol[i] = cols_(i, enter);
      la::Vector w = lu->solve(acol);

      // Ratio test.
      double tmax = (dir > 0) ? up_[enter] - val_[enter] : val_[enter] - lo_[enter];
      int leave = -1;     // index into basis_, or -1 for a bound flip
      int leave_to = 0;   // bound the leaving variable lands on
      double pivot_mag = 0.0;
      for (int i = 0; i < m_; ++i) {
        const double coef = dir * w[i];
        const int bj = basis_[i];
        if (coef > tol) {
          if (lo_[bj] == -kInf) continue;
          const double t = (val_[bj] - lo_[bj]) / coef;
          if (t < tmax - 1e-12 || (t < tmax + 1e-12 && std::fabs(w[i]) > pivot_mag)) {
            tmax = std::max(t, 0.0);
            leave = i;
            leave_to = kAtLower;
            pivot_mag = std::fabs(w[i]);
          }
        } else if (coef < -tol) {
          if (up_[bj] == kInf) continue;
          const double t = (up_[bj] - val_[bj]) / (-coef);
          if (t < tmax - 1e-12 || (t < tmax + 1e-12 && std::fabs(w[i]) > pivot_mag)) {
            tmax = std::max(t, 0.0);
            leave = i;
            leave_to = kAtUpper;
            pivot_mag = std::fabs(w[i]);
          }
        }
      }
      if (tmax == kInf) return LpStatus::kUnbounded;

      // Apply the step.
      val_[enter] += dir * tmax;
      for (int i = 0; i < m_; ++i) val_[basis_[i]] -= dir * tmax * w[i];

      if (leave < 0) {
        // Bound flip: entering variable runs to its opposite bound.
        state_[enter] = (dir > 0) ? kAtUpper : kAtLower;
        val_[enter] = (dir > 0) ? up_[enter] : lo_[enter];
      } else {
        const int out = basis_[leave];
        state_[out] = leave_to;
        val_[out] = (leave_to == kAtLower) ? lo_[out] : up_[out];
        basis_[leave] = enter;
        state_[enter] = kBasic;
      }
    }
    return LpStatus::kIterLimit;
  }

  LpResult finish(LpStatus status) {
    LpResult out;
    out.status = status;
    out.iterations = iters_;
    out.x.assign(static_cast<std::size_t>(nstruct_), 0.0);
    for (int j = 0; j < nstruct_; ++j) out.x[j] = val_[j];
    out.objective = 0.0;
    for (int j = 0; j < nstruct_; ++j) out.objective += cost_[j] * val_[j];
    out.duals = duals_;
    return out;
  }

  const LpProblem& p_;
  const LpOptions& opt_;
  int m_ = 0, nstruct_ = 0, ncols_ = 0;
  la::Matrix cols_;
  std::vector<double> lo_, up_, cost_;
  la::Vector b_;
  std::vector<int> state_;
  std::vector<double> val_;
  std::vector<int> basis_;
  la::Vector duals_;
  int iters_ = 0;
};

/// Mirrors every solve into the global metrics registry (pivot counts are
/// the simplex cost driver CI tracks across PRs).
LpResult record_lp(LpResult out) {
  static obs::Counter& solves = obs::metrics().counter("lp.simplex.solves");
  static obs::Counter& pivots = obs::metrics().counter("lp.simplex.pivots");
  solves.add();
  pivots.add(out.iterations);
  return out;
}

}  // namespace

LpResult solve(const LpProblem& problem, const LpOptions& options) {
  if (problem.num_rows() == 0) {
    // Pure bound problem: each variable sits at whichever bound its cost
    // prefers; unbounded if a preferred bound is infinite.
    LpResult out;
    out.status = LpStatus::kOptimal;
    out.x.assign(static_cast<std::size_t>(problem.num_vars()), 0.0);
    for (int j = 0; j < problem.num_vars(); ++j) {
      const double c = problem.cost(j);
      double v;
      if (c > 0) {
        v = problem.lower(j);
      } else if (c < 0) {
        v = problem.upper(j);
      } else {
        v = std::isfinite(problem.lower(j)) ? problem.lower(j)
            : (std::isfinite(problem.upper(j)) ? problem.upper(j) : 0.0);
      }
      if (!std::isfinite(v)) {
        out.status = LpStatus::kUnbounded;
        v = 0.0;
      }
      out.x[j] = v;
      out.objective += c * v;
    }
    return record_lp(std::move(out));
  }
  Simplex solver(problem, options);
  return record_lp(solver.run());
}

}  // namespace cpla::lp
