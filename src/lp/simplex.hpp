#pragma once

// Bounded-variable two-phase revised simplex (dense). This is the LP engine
// under the branch-and-bound ILP solver that stands in for GUROBI in the
// paper's ILP formulation (Section 3.1). Problem sizes are partition-scale
// (tens of variables/rows), so each iteration refactorizes the basis — simple
// and numerically safe at this scale.

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/la/matrix.hpp"

namespace cpla::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kLe, kGe, kEq };

enum class [[nodiscard]] LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

const char* to_string(LpStatus status);

/// A minimization LP: min c'x  s.t.  rows, lo <= x <= up.
class LpProblem {
 public:
  /// Adds a variable; returns its index.
  int add_var(double lo, double up, double cost);

  /// Adds a constraint over (var, coefficient) pairs.
  void add_row(Sense sense, double rhs, std::vector<std::pair<int, double>> coeffs);

  /// Overwrites the objective coefficient of a variable.
  void set_cost(int var, double cost);

  /// Tightens a variable's bounds (used by branch-and-bound).
  void set_bounds(int var, double lo, double up);

  int num_vars() const { return static_cast<int>(cost_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  double lower(int var) const { return lo_[var]; }
  double upper(int var) const { return up_[var]; }
  double cost(int var) const { return cost_[var]; }

  struct Row {
    Sense sense;
    double rhs;
    std::vector<std::pair<int, double>> coeffs;
  };
  const Row& row(int i) const { return rows_[i]; }

 private:
  std::vector<double> lo_, up_, cost_;
  std::vector<Row> rows_;
};

struct LpOptions {
  int max_iterations = 20000;
  double tol = 1e-9;  // feasibility / optimality tolerance
};

struct LpResult {
  LpStatus status = LpStatus::kIterLimit;
  double objective = 0.0;
  la::Vector x;      // primal solution (structural variables only)
  la::Vector duals;  // one multiplier per row
  int iterations = 0;
};

LpResult solve(const LpProblem& problem, const LpOptions& options = {});

}  // namespace cpla::lp
