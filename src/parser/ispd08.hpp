#pragma once

// Reader/writer for the ISPD'08 global-routing benchmark format [17]:
//
//   grid X Y L
//   vertical capacity   c1 .. cL
//   horizontal capacity c1 .. cL
//   minimum width       w1 .. wL
//   minimum spacing     s1 .. sL
//   via spacing         v1 .. vL
//   llx lly tile_w tile_h
//   num net N
//   <name> <id> <#pins> <minwidth>
//   px py layer          (absolute coordinates, 1-based layers)
//   ...
//   A                    (#capacity adjustments)
//   x1 y1 l1  x2 y2 l2  cap
//
// Real suite files drop straight in; the synthetic generator writes the
// same format (see src/gen).

#include <iosfwd>
#include <optional>
#include <string>

#include "src/grid/design.hpp"
#include "src/util/status.hpp"

namespace cpla::parser {

struct Ispd08Options {
  // Electrical annotation is not part of the file format; these populate the
  // per-layer RC with an industrial-style profile (higher layer => lower R).
  // See timing::RcTable for where they are consumed.
  double tile_width = 10.0;
};

/// Parses a benchmark. Malformed input — truncated blocks, non-numeric
/// fields, negative capacities, pins outside the grid — yields a
/// StatusCode::kBadInput Status carrying the 1-based line number of the
/// offending line; no input can crash the parser.
Result<grid::Design> parse_ispd08(std::istream& in, const std::string& design_name);
Result<grid::Design> parse_ispd08_file(const std::string& path);

/// Legacy convenience wrappers: log the diagnostic and collapse the Status
/// to std::nullopt.
std::optional<grid::Design> read_ispd08(std::istream& in, const std::string& design_name);
std::optional<grid::Design> read_ispd08_file(const std::string& path);

/// Writes a design back out in ISPD'08 syntax (capacity adjustments are not
/// reconstructed; per-edge deviations from the layer default are emitted as
/// adjustment records).
void write_ispd08(const grid::Design& design, std::ostream& out);
bool write_ispd08_file(const grid::Design& design, const std::string& path);

}  // namespace cpla::parser
