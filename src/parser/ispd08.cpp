#include "src/parser/ispd08.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <algorithm>
#include <sstream>

#include "src/grid/layer_stack.hpp"
#include "src/util/logging.hpp"
#include "src/util/str.hpp"

namespace cpla::parser {

namespace {

/// Pulls the next non-empty line's tokens.
bool next_tokens(std::istream& in, std::vector<std::string>* out) {
  std::string line;
  while (std::getline(in, line)) {
    auto toks = cpla::split_ws(line);
    if (!toks.empty()) {
      *out = std::move(toks);
      return true;
    }
  }
  return false;
}

/// Reads the numeric tail of a header line like "vertical capacity 0 10 ...".
std::vector<int> numeric_tail(const std::vector<std::string>& toks) {
  std::vector<int> vals;
  for (const auto& t : toks) {
    char* end = nullptr;
    const long v = std::strtol(t.c_str(), &end, 10);
    if (end != t.c_str() && *end == '\0') vals.push_back(static_cast<int>(v));
  }
  return vals;
}

}  // namespace

std::optional<grid::Design> read_ispd08(std::istream& in, const std::string& design_name) {
  std::vector<std::string> toks;

  // grid X Y L
  if (!next_tokens(in, &toks) || toks.size() < 4 || toks[0] != "grid") {
    LOG_ERROR("ispd08: missing 'grid' header");
    return std::nullopt;
  }
  const int xsize = std::stoi(toks[1]);
  const int ysize = std::stoi(toks[2]);
  const int num_layers = std::stoi(toks[3]);
  if (xsize < 2 || ysize < 2 || num_layers < 2) {
    LOG_ERROR("ispd08: degenerate grid %dx%dx%d", xsize, ysize, num_layers);
    return std::nullopt;
  }

  auto read_layer_vals = [&](const char* what) -> std::optional<std::vector<int>> {
    if (!next_tokens(in, &toks)) {
      LOG_ERROR("ispd08: missing '%s' line", what);
      return std::nullopt;
    }
    auto vals = numeric_tail(toks);
    if (static_cast<int>(vals.size()) != num_layers) {
      LOG_ERROR("ispd08: '%s' expects %d values, got %zu", what, num_layers, vals.size());
      return std::nullopt;
    }
    return vals;
  };

  const auto vcap = read_layer_vals("vertical capacity");
  const auto hcap = read_layer_vals("horizontal capacity");
  const auto min_width = read_layer_vals("minimum width");
  const auto min_spacing = read_layer_vals("minimum spacing");
  const auto via_spacing = read_layer_vals("via spacing");
  if (!vcap || !hcap || !min_width || !min_spacing || !via_spacing) return std::nullopt;

  // llx lly tile_w tile_h
  if (!next_tokens(in, &toks) || toks.size() < 4) {
    LOG_ERROR("ispd08: missing origin/tile line");
    return std::nullopt;
  }
  const double llx = std::stod(toks[0]);
  const double lly = std::stod(toks[1]);
  const double tile_w = std::stod(toks[2]);
  const double tile_h = std::stod(toks[3]);

  // Direction per layer from which capacity is nonzero; RC profile from the
  // canonical stack (the file format carries no electrical data).
  std::vector<grid::Layer> layers = grid::make_layer_stack(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    layers[l].horizontal = (*hcap)[l] >= (*vcap)[l];
  }
  grid::GeomParams geom = grid::default_geom();
  geom.tile_width = tile_w;
  geom.wire_width = std::max(1, (*min_width)[0]);
  geom.wire_spacing = std::max(0, (*min_spacing)[0]);
  geom.via_spacing = std::max(0, (*via_spacing)[0]);

  grid::GridGraph g(xsize, ysize, layers, geom);
  for (int l = 0; l < num_layers; ++l) {
    const int raw = layers[l].horizontal ? (*hcap)[l] : (*vcap)[l];
    const int pitch = std::max(1, (*min_width)[l] + (*min_spacing)[l]);
    g.fill_layer_capacity(l, raw / pitch);  // tracks per edge
  }

  grid::Design design(design_name, std::move(g));

  // num net N
  if (!next_tokens(in, &toks) || toks.size() < 3 || toks[0] != "num" || toks[1] != "net") {
    LOG_ERROR("ispd08: missing 'num net' line");
    return std::nullopt;
  }
  const int num_nets = std::stoi(toks[2]);

  auto to_cell = [&](double px, double py) -> grid::Pin {
    grid::Pin pin;
    pin.x = std::clamp(static_cast<int>((px - llx) / tile_w), 0, xsize - 1);
    pin.y = std::clamp(static_cast<int>((py - lly) / tile_h), 0, ysize - 1);
    return pin;
  };

  design.nets.reserve(static_cast<std::size_t>(num_nets));
  for (int n = 0; n < num_nets; ++n) {
    if (!next_tokens(in, &toks) || toks.size() < 3) {
      LOG_ERROR("ispd08: truncated net header (net %d)", n);
      return std::nullopt;
    }
    grid::Net net;
    net.name = toks[0];
    net.id = n;
    const int num_pins = std::stoi(toks[2]);
    net.pins.reserve(static_cast<std::size_t>(num_pins));
    for (int k = 0; k < num_pins; ++k) {
      if (!next_tokens(in, &toks) || toks.size() < 3) {
        LOG_ERROR("ispd08: truncated pin list for net %s", net.name.c_str());
        return std::nullopt;
      }
      grid::Pin pin = to_cell(std::stod(toks[0]), std::stod(toks[1]));
      pin.layer = std::clamp(std::stoi(toks[2]) - 1, 0, num_layers - 1);
      net.pins.push_back(pin);
    }
    design.nets.push_back(std::move(net));
  }

  // Optional capacity adjustments.
  if (next_tokens(in, &toks)) {
    const int num_adjust = std::stoi(toks[0]);
    for (int a = 0; a < num_adjust; ++a) {
      if (!next_tokens(in, &toks) || toks.size() < 7) {
        LOG_ERROR("ispd08: truncated adjustment %d", a);
        return std::nullopt;
      }
      const int x1 = std::stoi(toks[0]), y1 = std::stoi(toks[1]), l1 = std::stoi(toks[2]) - 1;
      const int x2 = std::stoi(toks[3]), y2 = std::stoi(toks[4]), l2 = std::stoi(toks[5]) - 1;
      const int cap = std::stoi(toks[6]);
      if (l1 != l2 || l1 < 0 || l1 >= num_layers) continue;
      const int pitch = 1;  // adjustments are given in tracks already
      (void)pitch;
      auto& gg = design.grid;
      if (y1 == y2 && std::abs(x1 - x2) == 1 && gg.is_horizontal(l1)) {
        gg.set_edge_capacity(l1, gg.h_edge_id(std::min(x1, x2), y1), cap);
      } else if (x1 == x2 && std::abs(y1 - y2) == 1 && !gg.is_horizontal(l1)) {
        gg.set_edge_capacity(l1, gg.v_edge_id(x1, std::min(y1, y2)), cap);
      }
    }
  }

  return design;
}

std::optional<grid::Design> read_ispd08_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    LOG_ERROR("ispd08: cannot open %s", path.c_str());
    return std::nullopt;
  }
  // Design name = basename without extension.
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return read_ispd08(in, name);
}

void write_ispd08(const grid::Design& design, std::ostream& out) {
  const auto& g = design.grid;
  const int nl = g.num_layers();
  out << "grid " << g.xsize() << " " << g.ysize() << " " << nl << "\n";

  // Layer default capacity = the most common per-edge value.
  std::vector<int> def(nl, 0);
  for (int l = 0; l < nl; ++l) {
    // Use edge 0 as the default; deviations become adjustments below.
    def[l] = g.num_edges_on_layer(l) > 0 ? g.edge_capacity(l, 0) : 0;
  }

  out << "vertical capacity";
  for (int l = 0; l < nl; ++l) out << " " << (g.is_horizontal(l) ? 0 : def[l]);
  out << "\nhorizontal capacity";
  for (int l = 0; l < nl; ++l) out << " " << (g.is_horizontal(l) ? def[l] : 0);
  out << "\nminimum width";
  for (int l = 0; l < nl; ++l) out << " " << 1;
  out << "\nminimum spacing";
  for (int l = 0; l < nl; ++l) out << " " << 0;
  out << "\nvia spacing";
  for (int l = 0; l < nl; ++l) out << " " << 0;
  const double tile = g.geom().tile_width;
  out << "\n0 0 " << tile << " " << tile << "\n\n";

  out << "num net " << design.nets.size() << "\n";
  for (const auto& net : design.nets) {
    out << net.name << " " << net.id << " " << net.pins.size() << " 1\n";
    for (const auto& pin : net.pins) {
      out << (pin.x + 0.5) * tile << " " << (pin.y + 0.5) * tile << " " << pin.layer + 1 << "\n";
    }
  }

  // Adjustments for edges that deviate from the layer default.
  struct Adj {
    int x1, y1, x2, y2, l, cap;
  };
  std::vector<Adj> adjustments;
  for (int l = 0; l < nl; ++l) {
    if (g.is_horizontal(l)) {
      for (int y = 0; y < g.ysize(); ++y) {
        for (int x = 0; x < g.xsize() - 1; ++x) {
          const int cap = g.edge_capacity(l, g.h_edge_id(x, y));
          if (cap != def[l]) adjustments.push_back({x, y, x + 1, y, l, cap});
        }
      }
    } else {
      for (int x = 0; x < g.xsize(); ++x) {
        for (int y = 0; y < g.ysize() - 1; ++y) {
          const int cap = g.edge_capacity(l, g.v_edge_id(x, y));
          if (cap != def[l]) adjustments.push_back({x, y, x, y + 1, l, cap});
        }
      }
    }
  }
  out << adjustments.size() << "\n";
  for (const auto& a : adjustments) {
    out << a.x1 << " " << a.y1 << " " << a.l + 1 << "   " << a.x2 << " " << a.y2 << " "
        << a.l + 1 << "   " << a.cap << "\n";
  }
}

bool write_ispd08_file(const grid::Design& design, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    LOG_ERROR("ispd08: cannot write %s", path.c_str());
    return false;
  }
  write_ispd08(design, out);
  return true;
}

}  // namespace cpla::parser
