#include "src/parser/ispd08.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/grid/layer_stack.hpp"
#include "src/util/logging.hpp"
#include "src/util/str.hpp"

namespace cpla::parser {

namespace {

/// Token stream that remembers the 1-based number of the line it last
/// produced, so every diagnostic can point at the offending input line.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Pulls the next non-empty line's tokens.
  bool next(std::vector<std::string>* out) {
    std::string line;
    while (std::getline(in_, line)) {
      ++line_;
      auto toks = cpla::split_ws(line);
      if (!toks.empty()) {
        *out = std::move(toks);
        return true;
      }
    }
    return false;
  }

  /// Line of the last token set produced (0 before the first next()).
  int line() const { return line_; }
  /// Line to blame when input ends where more was expected.
  int eof_line() const { return line_ + 1; }

 private:
  std::istream& in_;
  int line_ = 0;
};

/// Strict full-token integer parse — no exceptions, no partial consumption.
bool to_int(const std::string& t, int* out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(t.c_str(), &end, 10);
  if (end == t.c_str() || *end != '\0' || errno == ERANGE) return false;
  if (v < static_cast<long>(INT_MIN) || v > static_cast<long>(INT_MAX)) return false;
  *out = static_cast<int>(v);
  return true;
}

bool to_double(const std::string& t, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(t.c_str(), &end);
  if (end == t.c_str() || *end != '\0' || errno == ERANGE || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

/// Reads the numeric tail of a header line like "vertical capacity 0 10 ...".
std::vector<int> numeric_tail(const std::vector<std::string>& toks) {
  std::vector<int> vals;
  for (const auto& t : toks) {
    int v = 0;
    if (to_int(t, &v)) vals.push_back(v);
  }
  return vals;
}

Status bad_line(int line, std::string message) {
  return Status(StatusCode::kBadInput, std::move(message), line);
}

}  // namespace

Result<grid::Design> parse_ispd08(std::istream& in, const std::string& design_name) {
  LineReader reader(in);
  std::vector<std::string> toks;

  // grid X Y L
  if (!reader.next(&toks)) return bad_line(reader.eof_line(), "missing 'grid' header");
  int xsize = 0, ysize = 0, num_layers = 0;
  if (toks.size() < 4 || toks[0] != "grid" || !to_int(toks[1], &xsize) ||
      !to_int(toks[2], &ysize) || !to_int(toks[3], &num_layers)) {
    return bad_line(reader.line(), "malformed 'grid X Y L' header");
  }
  if (xsize < 2 || ysize < 2 || num_layers < 2) {
    return bad_line(reader.line(), str_format("degenerate grid %dx%dx%d", xsize, ysize,
                                              num_layers));
  }
  if (static_cast<long long>(xsize) * ysize > 100'000'000LL || num_layers > 256) {
    return bad_line(reader.line(), str_format("implausible grid %dx%dx%d", xsize, ysize,
                                              num_layers));
  }

  auto read_layer_vals = [&](const char* what) -> Result<std::vector<int>> {
    if (!reader.next(&toks)) {
      return bad_line(reader.eof_line(), str_format("missing '%s' line", what));
    }
    auto vals = numeric_tail(toks);
    if (static_cast<int>(vals.size()) != num_layers) {
      return bad_line(reader.line(), str_format("'%s' expects %d values, got %zu", what,
                                                num_layers, vals.size()));
    }
    for (int v : vals) {
      if (v < 0) {
        return bad_line(reader.line(), str_format("negative value %d in '%s'", v, what));
      }
    }
    return vals;
  };

  auto vcap = read_layer_vals("vertical capacity");
  if (!vcap.is_ok()) return vcap.status();
  auto hcap = read_layer_vals("horizontal capacity");
  if (!hcap.is_ok()) return hcap.status();
  auto min_width = read_layer_vals("minimum width");
  if (!min_width.is_ok()) return min_width.status();
  auto min_spacing = read_layer_vals("minimum spacing");
  if (!min_spacing.is_ok()) return min_spacing.status();
  auto via_spacing = read_layer_vals("via spacing");
  if (!via_spacing.is_ok()) return via_spacing.status();

  // llx lly tile_w tile_h
  if (!reader.next(&toks)) return bad_line(reader.eof_line(), "missing origin/tile line");
  double llx = 0, lly = 0, tile_w = 0, tile_h = 0;
  if (toks.size() < 4 || !to_double(toks[0], &llx) || !to_double(toks[1], &lly) ||
      !to_double(toks[2], &tile_w) || !to_double(toks[3], &tile_h)) {
    return bad_line(reader.line(), "malformed origin/tile line");
  }
  if (tile_w <= 0.0 || tile_h <= 0.0) {
    return bad_line(reader.line(), str_format("non-positive tile size %g x %g", tile_w, tile_h));
  }

  // Direction per layer from which capacity is nonzero; RC profile from the
  // canonical stack (the file format carries no electrical data).
  const std::vector<int>& vc = vcap.value();
  const std::vector<int>& hc = hcap.value();
  const std::vector<int>& mw = min_width.value();
  const std::vector<int>& ms = min_spacing.value();
  const std::vector<int>& vs = via_spacing.value();
  std::vector<grid::Layer> layers = grid::make_layer_stack(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    layers[l].horizontal = hc[l] >= vc[l];
  }
  grid::GeomParams geom = grid::default_geom();
  geom.tile_width = tile_w;
  geom.wire_width = std::max(1, mw[0]);
  geom.wire_spacing = std::max(0, ms[0]);
  geom.via_spacing = std::max(0, vs[0]);

  grid::GridGraph g(xsize, ysize, layers, geom);
  for (int l = 0; l < num_layers; ++l) {
    const int raw = layers[l].horizontal ? hc[l] : vc[l];
    const int pitch = std::max(1, mw[l] + ms[l]);
    g.fill_layer_capacity(l, raw / pitch);  // tracks per edge
  }

  grid::Design design(design_name, std::move(g));

  // num net N
  if (!reader.next(&toks)) return bad_line(reader.eof_line(), "missing 'num net' line");
  int num_nets = 0;
  if (toks.size() < 3 || toks[0] != "num" || toks[1] != "net" || !to_int(toks[2], &num_nets) ||
      num_nets < 0) {
    return bad_line(reader.line(), "malformed 'num net N' line");
  }

  // Maps an absolute pin coordinate to its g-cell; a point exactly on the
  // far boundary belongs to the last cell, anything further out is an
  // input error (the old behavior of silently clamping hid corrupt files).
  auto to_cell = [&](double p, double origin, double tile, int size, int* cell) {
    const double offset = p - origin;
    const int c = static_cast<int>(offset / tile);
    if (offset < 0.0 || c > size || (c == size && offset > size * tile)) return false;
    *cell = std::min(c, size - 1);
    return true;
  };

  design.nets.reserve(static_cast<std::size_t>(std::min(num_nets, 10'000'000)));
  for (int n = 0; n < num_nets; ++n) {
    if (!reader.next(&toks) || toks.size() < 3) {
      return bad_line(reader.eof_line(), str_format("truncated net header (net %d of %d)", n,
                                                    num_nets));
    }
    grid::Net net;
    net.name = toks[0];
    net.id = n;
    int num_pins = 0;
    if (!to_int(toks[2], &num_pins) || num_pins < 1) {
      return bad_line(reader.line(), str_format("malformed pin count for net %s",
                                                net.name.c_str()));
    }
    if (num_pins > 1'000'000) {
      return bad_line(reader.line(), str_format("implausible pin count %d for net %s", num_pins,
                                                net.name.c_str()));
    }
    net.pins.reserve(static_cast<std::size_t>(num_pins));
    for (int k = 0; k < num_pins; ++k) {
      if (!reader.next(&toks)) {
        return bad_line(reader.eof_line(), str_format("truncated pin list for net %s (pin %d of %d)",
                                                      net.name.c_str(), k, num_pins));
      }
      double px = 0, py = 0;
      int file_layer = 0;
      if (toks.size() < 3 || !to_double(toks[0], &px) || !to_double(toks[1], &py) ||
          !to_int(toks[2], &file_layer)) {
        return bad_line(reader.line(), str_format("malformed pin for net %s", net.name.c_str()));
      }
      grid::Pin pin;
      if (!to_cell(px, llx, tile_w, xsize, &pin.x) || !to_cell(py, lly, tile_h, ysize, &pin.y)) {
        return bad_line(reader.line(), str_format("pin (%g, %g) outside the %dx%d grid", px, py,
                                                  xsize, ysize));
      }
      if (file_layer < 1 || file_layer > num_layers) {
        return bad_line(reader.line(), str_format("pin layer %d outside [1, %d]", file_layer,
                                                  num_layers));
      }
      pin.layer = file_layer - 1;
      net.pins.push_back(pin);
    }
    design.nets.push_back(std::move(net));
  }

  // Optional capacity adjustments.
  if (reader.next(&toks)) {
    int num_adjust = 0;
    if (!to_int(toks[0], &num_adjust) || num_adjust < 0) {
      return bad_line(reader.line(), "malformed adjustment count");
    }
    for (int a = 0; a < num_adjust; ++a) {
      if (!reader.next(&toks) || toks.size() < 7) {
        return bad_line(reader.eof_line(), str_format("truncated adjustment %d of %d", a,
                                                      num_adjust));
      }
      int x1, y1, l1, x2, y2, l2, cap;
      if (!to_int(toks[0], &x1) || !to_int(toks[1], &y1) || !to_int(toks[2], &l1) ||
          !to_int(toks[3], &x2) || !to_int(toks[4], &y2) || !to_int(toks[5], &l2) ||
          !to_int(toks[6], &cap)) {
        return bad_line(reader.line(), str_format("malformed adjustment %d", a));
      }
      l1 -= 1;
      l2 -= 1;
      if (cap < 0) {
        return bad_line(reader.line(), str_format("negative capacity %d in adjustment %d", cap, a));
      }
      if (l1 != l2 || l1 < 0 || l1 >= num_layers) continue;
      if (x1 < 0 || x1 >= xsize || x2 < 0 || x2 >= xsize || y1 < 0 || y1 >= ysize || y2 < 0 ||
          y2 >= ysize) {
        return bad_line(reader.line(),
                        str_format("adjustment %d edge (%d,%d)-(%d,%d) outside the %dx%d grid", a,
                                   x1, y1, x2, y2, xsize, ysize));
      }
      auto& gg = design.grid;
      if (y1 == y2 && std::abs(x1 - x2) == 1 && gg.is_horizontal(l1)) {
        gg.set_edge_capacity(l1, gg.h_edge_id(std::min(x1, x2), y1), cap);
      } else if (x1 == x2 && std::abs(y1 - y2) == 1 && !gg.is_horizontal(l1)) {
        gg.set_edge_capacity(l1, gg.v_edge_id(x1, std::min(y1, y2)), cap);
      }
    }
  }

  return design;
}

Result<grid::Design> parse_ispd08_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kBadInput, str_format("cannot open %s", path.c_str()));
  }
  // Design name = basename without extension.
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return parse_ispd08(in, name);
}

std::optional<grid::Design> read_ispd08(std::istream& in, const std::string& design_name) {
  Result<grid::Design> parsed = parse_ispd08(in, design_name);
  if (!parsed.is_ok()) {
    LOG_ERROR("ispd08: %s", parsed.status().to_string().c_str());
    return std::nullopt;
  }
  return std::move(parsed.take());
}

std::optional<grid::Design> read_ispd08_file(const std::string& path) {
  Result<grid::Design> parsed = parse_ispd08_file(path);
  if (!parsed.is_ok()) {
    LOG_ERROR("ispd08: %s", parsed.status().to_string().c_str());
    return std::nullopt;
  }
  return std::move(parsed.take());
}

void write_ispd08(const grid::Design& design, std::ostream& out) {
  const auto& g = design.grid;
  const int nl = g.num_layers();
  out << "grid " << g.xsize() << " " << g.ysize() << " " << nl << "\n";

  // Layer default capacity = the most common per-edge value.
  std::vector<int> def(nl, 0);
  for (int l = 0; l < nl; ++l) {
    // Use edge 0 as the default; deviations become adjustments below.
    def[l] = g.num_edges_on_layer(l) > 0 ? g.edge_capacity(l, 0) : 0;
  }

  out << "vertical capacity";
  for (int l = 0; l < nl; ++l) out << " " << (g.is_horizontal(l) ? 0 : def[l]);
  out << "\nhorizontal capacity";
  for (int l = 0; l < nl; ++l) out << " " << (g.is_horizontal(l) ? def[l] : 0);
  out << "\nminimum width";
  for (int l = 0; l < nl; ++l) out << " " << 1;
  out << "\nminimum spacing";
  for (int l = 0; l < nl; ++l) out << " " << 0;
  out << "\nvia spacing";
  for (int l = 0; l < nl; ++l) out << " " << 0;
  const double tile = g.geom().tile_width;
  out << "\n0 0 " << tile << " " << tile << "\n\n";

  out << "num net " << design.nets.size() << "\n";
  for (const auto& net : design.nets) {
    out << net.name << " " << net.id << " " << net.pins.size() << " 1\n";
    for (const auto& pin : net.pins) {
      out << (pin.x + 0.5) * tile << " " << (pin.y + 0.5) * tile << " " << pin.layer + 1 << "\n";
    }
  }

  // Adjustments for edges that deviate from the layer default.
  struct Adj {
    int x1, y1, x2, y2, l, cap;
  };
  std::vector<Adj> adjustments;
  for (int l = 0; l < nl; ++l) {
    if (g.is_horizontal(l)) {
      for (int y = 0; y < g.ysize(); ++y) {
        for (int x = 0; x < g.xsize() - 1; ++x) {
          const int cap = g.edge_capacity(l, g.h_edge_id(x, y));
          if (cap != def[l]) adjustments.push_back({x, y, x + 1, y, l, cap});
        }
      }
    } else {
      for (int x = 0; x < g.xsize(); ++x) {
        for (int y = 0; y < g.ysize() - 1; ++y) {
          const int cap = g.edge_capacity(l, g.v_edge_id(x, y));
          if (cap != def[l]) adjustments.push_back({x, y, x, y + 1, l, cap});
        }
      }
    }
  }
  out << adjustments.size() << "\n";
  for (const auto& a : adjustments) {
    out << a.x1 << " " << a.y1 << " " << a.l + 1 << "   " << a.x2 << " " << a.y2 << " "
        << a.l + 1 << "   " << a.cap << "\n";
  }
}

bool write_ispd08_file(const grid::Design& design, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    LOG_ERROR("ispd08: cannot write %s", path.c_str());
    return false;
  }
  write_ispd08(design, out);
  return true;
}

}  // namespace cpla::parser
