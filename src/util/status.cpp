#include "src/util/status.hpp"

#include "src/util/str.hpp"

namespace cpla {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kNumericalFailure: return "numerical-failure";
    case StatusCode::kIterationLimit: return "iteration-limit";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kInfeasible: return "infeasible";
    case StatusCode::kBadInput: return "bad-input";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "?";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  if (line_ >= 0) {
    return str_format("%s (line %d): %s", cpla::to_string(code_), line_, message_.c_str());
  }
  return str_format("%s: %s", cpla::to_string(code_), message_.c_str());
}

}  // namespace cpla
