#pragma once

#include <chrono>

namespace cpla {

/// Wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cpla
