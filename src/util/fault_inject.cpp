#include "src/util/fault_inject.hpp"

namespace cpla {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& site, long first, long count) {
  MutexLock lock(mutex_);
  sites_[site] = Site{0, first, count, false};
  active_.store(true, std::memory_order_release);
}

void FaultInjector::arm_always(const std::string& site) {
  MutexLock lock(mutex_);
  sites_[site] = Site{0, 0, 0, true};
  active_.store(true, std::memory_order_release);
}

void FaultInjector::disarm(const std::string& site) {
  MutexLock lock(mutex_);
  sites_.erase(site);
  if (sites_.empty()) active_.store(false, std::memory_order_release);
}

void FaultInjector::reset() {
  MutexLock lock(mutex_);
  sites_.clear();
  active_.store(false, std::memory_order_release);
}

long FaultInjector::hits(const std::string& site) {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

bool FaultInjector::should_fail(const char* site) {
  if (!active_.load(std::memory_order_acquire)) return false;
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  const long occurrence = it->second.hits++;
  if (it->second.always) return true;
  return occurrence >= it->second.first && occurrence < it->second.first + it->second.count;
}

}  // namespace cpla
