#pragma once

// Canonical registry of fault-injection site names. Every string passed to
// CPLA_FAULT_POINT(...) in library code must be declared here, and every
// site a test arms must exist in library code — `tools/cpla_lint.py`
// cross-checks all three directions (checks `fault-site-undeclared`,
// `fault-site-unused`, `fault-site-unknown-arm`), so a renamed or deleted
// site cannot silently leave tests arming dead strings.
//
// To add a site:
//   1. declare the name below and append it to kAll,
//   2. place CPLA_FAULT_POINT("the.name") at the failure origin in src,
//   3. arm it from a test (FaultInjector::instance().arm(...)) and assert
//      the degradation ladder holds.

#include <cstddef>

namespace cpla::fault_sites {

// la: dense linear algebra failure origins.
inline constexpr char kLaCholeskyFactor[] = "la.cholesky.factor";

// sdp: interior-point solver failure origins.
inline constexpr char kSdpSolveNumerical[] = "sdp.solve.numerical";
inline constexpr char kSdpSolveIterlimit[] = "sdp.solve.iterlimit";

// sdp batch tier: infrastructure faults in the lane-batched solver. A
// fired pack site aborts a chunk before packing; a fired step site aborts
// it mid-iteration. Both degrade to per-lane scalar sdp::solve re-solves,
// so armed or not the caller sees bit-identical results.
inline constexpr char kBatchPack[] = "batch.pack";
inline constexpr char kBatchSolveStep[] = "batch.solve.step";

// core: solve-guard escalation triggers.
inline constexpr char kSolveGuardDeadline[] = "solve_guard.deadline";

// lagr: a failed Lagrangian partition solve (incumbent pick comes back
// with kNumericalFailure; the guard escalates to the cross-backend SDP
// retry tier).
inline constexpr char kLagrSolve[] = "lagr.solve";

// eco: incremental-resolve degradation triggers (EcoSession falls back to
// full_resolve() when either fires).
inline constexpr char kEcoCacheLookup[] = "eco.cache.lookup";
inline constexpr char kEcoResolvePartition[] = "eco.resolve.partition";

// serve: durability failure origins of the ECO service. A fired journal
// site simulates a torn/short append or a failed fsync (the service
// degrades to read-only, never corrupts the on-disk journal prefix); a
// fired checkpoint site skips the checkpoint (recovery replays a longer
// journal suffix instead).
inline constexpr char kServeJournalAppend[] = "serve.journal.append";
inline constexpr char kServeJournalFsync[] = "serve.journal.fsync";
inline constexpr char kServeCheckpointWrite[] = "serve.checkpoint.write";

inline constexpr const char* kAll[] = {
    kLaCholeskyFactor,
    kSdpSolveNumerical,
    kSdpSolveIterlimit,
    kBatchPack,
    kBatchSolveStep,
    kSolveGuardDeadline,
    kLagrSolve,
    kEcoCacheLookup,
    kEcoResolvePartition,
    kServeJournalAppend,
    kServeJournalFsync,
    kServeCheckpointWrite,
};

inline constexpr std::size_t kCount = sizeof(kAll) / sizeof(kAll[0]);

}  // namespace cpla::fault_sites
