#include "src/util/mutex.hpp"

namespace cpla {

// Out of line so the adopt/release dance against the underlying std::mutex
// stays in one TU; the analysis sees only the CPLA_REQUIRES contract on the
// declaration. std::condition_variable needs a std::unique_lock, so adopt
// the already-held mutex and release the unique_lock before it destructs —
// the caller's MutexLock keeps ownership throughout.
void CondVar::wait(Mutex& mu) {
  std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
  cv_.wait(ul);
  ul.release();
}

}  // namespace cpla
