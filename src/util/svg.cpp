#include "src/util/svg.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "src/util/str.hpp"

namespace cpla {

SvgCanvas::SvgCanvas(double width, double height) : width_(width), height_(height) {}

void SvgCanvas::rect(double x, double y, double w, double h, const std::string& fill,
                     double opacity, const std::string& stroke) {
  std::string el = str_format(
      "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\" "
      "fill-opacity=\"%.3f\"",
      x, y, w, h, fill.c_str(), opacity);
  if (!stroke.empty()) el += str_format(" stroke=\"%s\" stroke-width=\"0.5\"", stroke.c_str());
  el += "/>";
  elements_.push_back(std::move(el));
}

void SvgCanvas::line(double x1, double y1, double x2, double y2, const std::string& stroke,
                     double width) {
  elements_.push_back(str_format(
      "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" stroke=\"%s\" "
      "stroke-width=\"%.2f\" stroke-linecap=\"round\"/>",
      x1, y1, x2, y2, stroke.c_str(), width));
}

void SvgCanvas::circle(double cx, double cy, double r, const std::string& fill) {
  elements_.push_back(str_format("<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.2f\" fill=\"%s\"/>", cx,
                                 cy, r, fill.c_str()));
}

void SvgCanvas::text(double x, double y, const std::string& content, double size,
                     const std::string& fill) {
  elements_.push_back(str_format(
      "<text x=\"%.2f\" y=\"%.2f\" font-size=\"%.1f\" font-family=\"sans-serif\" "
      "fill=\"%s\">%s</text>",
      x, y, size, fill.c_str(), content.c_str()));
}

std::string SvgCanvas::render() const {
  std::string out = str_format(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" "
      "viewBox=\"0 0 %.0f %.0f\">\n",
      width_, height_, width_, height_);
  for (const auto& el : elements_) {
    out += el;
    out += '\n';
  }
  out += "</svg>\n";
  return out;
}

bool SvgCanvas::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

std::string SvgCanvas::heat_color(double value) {
  const double v = std::clamp(value, 0.0, 1.0);
  // Piecewise blue (cold) -> green -> yellow -> red (hot).
  int r, g, b;
  if (v < 1.0 / 3.0) {
    const double t = v * 3.0;
    r = 0;
    g = static_cast<int>(200 * t);
    b = static_cast<int>(200 * (1.0 - t) + 55);
  } else if (v < 2.0 / 3.0) {
    const double t = (v - 1.0 / 3.0) * 3.0;
    r = static_cast<int>(255 * t);
    g = 200;
    b = 0;
  } else {
    const double t = (v - 2.0 / 3.0) * 3.0;
    r = 255;
    g = static_cast<int>(200 * (1.0 - t));
    b = 0;
  }
  return str_format("#%02x%02x%02x", r, g, b);
}

}  // namespace cpla
