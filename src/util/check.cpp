#include "src/util/check.hpp"

#include <cstdio>
#include <cstdlib>

#include "src/util/logging.hpp"

namespace cpla {

namespace {
thread_local int g_partition = -1;
thread_local int g_net = -1;
}  // namespace

void set_failure_context(int partition, int net) {
  g_partition = partition;
  g_net = net;
}

ScopedFailureContext::ScopedFailureContext(int partition, int net)
    : prev_partition_(g_partition), prev_net_(g_net) {
  g_partition = partition;
  g_net = net;
}

ScopedFailureContext::~ScopedFailureContext() {
  g_partition = prev_partition_;
  g_net = prev_net_;
}

void assert_fail(const char* expr, const char* file, int line, const char* msg) {
  // Route through the logger so the failure lands in the same stream (and
  // with the same timestamps) as the run's diagnostics; emit at kError
  // regardless of the gating level — an abort must never be silent.
  const LogLevel saved = log_level();
  if (saved > LogLevel::kError) set_log_level(LogLevel::kError);
  log_msg(LogLevel::kError, "CPLA_ASSERT failed: %s at %s:%d%s%s", expr, file, line,
          msg ? " — " : "", msg ? msg : "");
  if (g_partition >= 0 || g_net >= 0) {
    log_msg(LogLevel::kError, "CPLA_ASSERT context: partition=%d net=%d", g_partition, g_net);
  }
  std::fflush(stderr);
  std::fflush(stdout);
  std::abort();
}

}  // namespace cpla
