#pragma once

// Deterministic RNG used throughout benchmark generation and randomized
// tests. SplitMix64 core: tiny state, excellent statistical quality for the
// non-cryptographic uses here, and trivially reproducible across platforms
// (unlike distribution adapters in <random>, whose outputs are
// implementation-defined).

#include <cstdint>

#include "src/util/check.hpp"

namespace cpla {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    CPLA_ASSERT(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box-Muller (one value per call; simple > fast here).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) * __builtin_cos(6.283185307179586 * u2);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace cpla
