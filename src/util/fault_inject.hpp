#pragma once

// Deterministic fault injection for robustness tests. Library code marks
// the places where a real failure could originate (a Cholesky breakdown, an
// iteration cap, a deadline) with CPLA_FAULT_POINT("site.name"); tests arm
// a site to fire at a chosen occurrence and assert the pipeline degrades
// instead of crashing. Compiled in unconditionally: when nothing is armed a
// fault point is a single relaxed atomic load, so the hooks are free in
// production builds and the tested binary is the shipped binary.

#include <atomic>
#include <string>
#include <unordered_map>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace cpla {

class FaultInjector {
 public:
  /// Process-wide instance (fault points must be reachable from anywhere).
  static FaultInjector& instance();

  /// Arms `site` to fire on occurrences [first, first + count) — 0-based,
  /// counted from the moment of arming. Re-arming resets the site counter.
  void arm(const std::string& site, long first, long count = 1);

  /// Arms `site` to fire on every occurrence.
  void arm_always(const std::string& site);

  void disarm(const std::string& site);

  /// Disarms everything and clears all counters.
  void reset();

  /// Occurrences observed at `site` since it was armed (0 if never armed).
  long hits(const std::string& site);

  /// Called by CPLA_FAULT_POINT. Returns true when the site is armed for
  /// this occurrence. No-op (and no counting) while nothing is armed.
  bool should_fail(const char* site);

 private:
  struct Site {
    long hits = 0;
    long first = 0;
    long count = 0;
    bool always = false;
  };

  std::atomic<bool> active_{false};
  Mutex mutex_;
  std::unordered_map<std::string, Site> sites_ CPLA_GUARDED_BY(mutex_);
};

}  // namespace cpla

#define CPLA_FAULT_POINT(site) (::cpla::FaultInjector::instance().should_fail(site))
