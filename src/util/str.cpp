#include "src/util/str.hpp"

#include <string.h>  // strerror_r (both the XSI and GNU signature live here)

#include <cstdarg>
#include <cstdio>

namespace cpla {

namespace {

// strerror_r has two incompatible signatures (XSI returns int, GNU returns
// char*); overload resolution on the actual return type picks the right
// adapter without any feature-test-macro guessing. The fallback keeps the
// numeric errno so an unrenderable value still yields a diagnosable log.
inline std::string strerror_fallback(int err) {
  return "unknown error " + std::to_string(err);
}
inline std::string strerror_result(int err, int rc, const char* buf) {
  return rc == 0 ? std::string(buf) : strerror_fallback(err);
}
inline std::string strerror_result(int err, const char* msg, const char* /*buf*/) {
  return msg != nullptr ? std::string(msg) : strerror_fallback(err);
}

}  // namespace

std::vector<std::string> split_ws(std::string_view text, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && delims.find(text[i]) != std::string_view::npos) ++i;
    std::size_t j = i;
    while (j < text.size() && delims.find(text[j]) == std::string_view::npos) ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\r' || text[b] == '\n')) ++b;
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' || text[e - 1] == '\r' ||
                   text[e - 1] == '\n'))
    --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

std::string errno_str(int err) {
  char buf[256] = {};
  return strerror_result(err, strerror_r(err, buf, sizeof(buf)), buf);
}

}  // namespace cpla
