#pragma once

// Console table renderer used by the benchmark harnesses to print
// paper-style result tables (Table 2, Fig 7/8/9 series) with aligned columns.
//
// Library code never picks an output stream itself (the no-direct-stdout
// lint contract); print() takes the destination from the caller, so only
// the CLI surface (bench/, examples/) decides where a table lands.

#include <cstdio>
#include <string>
#include <vector>

namespace cpla {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment (first column left, rest right).
  std::string render() const;

  /// Renders and writes to `out` (callers pass stdout at the CLI surface).
  void print(std::FILE* out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, trimming to a compact width.
std::string fmt_num(double value, int precision = 2);

}  // namespace cpla
