#pragma once

// Structured, recoverable error reporting for library code. CPLA_ASSERT
// (src/util/check.hpp) remains the tool for true programmer invariants —
// conditions that can only be false through a bug in this repository. Every
// failure an *input* or the *numerics* can cause (ill-conditioned Schur
// systems, iteration caps, wall-clock deadlines, malformed benchmark files)
// is reported through Status/Result so callers can degrade gracefully
// instead of aborting mid-run.

#include <optional>
#include <string>
#include <utility>

#include "src/util/check.hpp"

namespace cpla {

enum class [[nodiscard]] StatusCode : int {
  kOk = 0,
  kNumericalFailure,   // factorization failed / non-finite iterate
  kIterationLimit,     // solver hit its iteration cap
  kDeadlineExceeded,   // wall-clock budget exhausted
  kInfeasible,         // no feasible point exists (or was found)
  kBadInput,           // malformed external input (parser, config)
  kInternal,           // caught exception / unclassified failure
  kUnavailable,        // service refused the request (shed, read-only, stopped)
};

const char* to_string(StatusCode code);

/// Failure description: a code, a human-readable message, and — for input
/// errors — the 1-based line number of the offending input line.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message, int line = -1)
      : code_(code), message_(std::move(message)), line_(line) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  /// Input line number the failure was detected on; -1 when not applicable.
  int line() const { return line_; }

  /// "numerical-failure: Schur factorization failed" /
  /// "bad-input (line 12): truncated pin list".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  int line_ = -1;
};

/// Value-or-Status. A Result holding a value is always ok(); constructing
/// from a Status requires a non-ok status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CPLA_ASSERT_MSG(!status_.is_ok(), "Result built from an ok Status carries no value");
  }

  bool is_ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    CPLA_ASSERT_MSG(value_.has_value(), "value() on a failed Result");
    return *value_;
  }
  const T& value() const {
    CPLA_ASSERT_MSG(value_.has_value(), "value() on a failed Result");
    return *value_;
  }
  T&& take() {
    CPLA_ASSERT_MSG(value_.has_value(), "take() on a failed Result");
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cpla

/// Returns `status_expr` from the enclosing function when `cond` is false.
/// For recoverable conditions; use CPLA_ASSERT for programmer invariants.
#define CPLA_CHECK(cond, status_expr) \
  do {                                \
    if (!(cond)) return (status_expr); \
  } while (0)

/// Propagates a failed Status from an expression yielding one.
#define CPLA_CHECK_OK(expr)                            \
  do {                                                 \
    ::cpla::Status cpla_check_status_ = (expr);        \
    if (!cpla_check_status_.is_ok()) return cpla_check_status_; \
  } while (0)
