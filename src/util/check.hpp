#pragma once

// Lightweight contract checking. CPLA_ASSERT is active in all build types:
// the solvers in this project rely on invariants (PSD-ness, basis validity,
// tree shape) whose silent violation produces garbage numbers, which is far
// more expensive to debug than the cost of the checks.

#include <cstdio>
#include <cstdlib>

namespace cpla {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "CPLA_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace cpla

#define CPLA_ASSERT(expr)                                       \
  do {                                                          \
    if (!(expr)) ::cpla::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define CPLA_ASSERT_MSG(expr, msg)                              \
  do {                                                          \
    if (!(expr)) ::cpla::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
