#pragma once

// Lightweight contract checking. CPLA_ASSERT is active in all build types:
// the solvers in this project rely on invariants (PSD-ness, basis validity,
// tree shape) whose silent violation produces garbage numbers, which is far
// more expensive to debug than the cost of the checks.
//
// CPLA_ASSERT is for *programmer invariants only* — conditions that can be
// false only through a bug in this repository. Failures that inputs or
// numerics can cause must be reported recoverably instead; see
// src/util/status.hpp (CPLA_CHECK / Status / Result).

namespace cpla {

/// Logs the failed expression plus any active failure context through the
/// logging subsystem (flushed), then aborts.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line, const char* msg);

// Thread-local context attached to assert_fail output, so a crash inside a
// parallel partition solve identifies which partition/net was active.
// -1 clears a field.
void set_failure_context(int partition, int net);

/// RAII failure-context scope; restores the previous context on exit.
class ScopedFailureContext {
 public:
  ScopedFailureContext(int partition, int net);
  ~ScopedFailureContext();
  ScopedFailureContext(const ScopedFailureContext&) = delete;
  ScopedFailureContext& operator=(const ScopedFailureContext&) = delete;

 private:
  int prev_partition_;
  int prev_net_;
};

}  // namespace cpla

#define CPLA_ASSERT(expr)                                       \
  do {                                                          \
    if (!(expr)) ::cpla::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define CPLA_ASSERT_MSG(expr, msg)                              \
  do {                                                          \
    if (!(expr)) ::cpla::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
