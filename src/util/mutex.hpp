#pragma once

// Capability-annotated synchronization primitives. std::mutex carries no
// Clang Thread Safety attributes, so code locking one is invisible to
// -Wthread-safety; these thin wrappers make the lock discipline provable at
// compile time (see src/util/thread_annotations.hpp for the policy). Every
// mutex member in src/ must be a cpla::Mutex — tools/cpla_lint.py
// (mutex-guard-coverage) rejects raw std::mutex / std::condition_variable
// members outside this header.
//
// The wrappers add no state and every lock operation inlines to the
// std::mutex call, so they are free at runtime.

#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.hpp"

namespace cpla {

class CondVar;

/// Annotated std::mutex. Prefer MutexLock for scoped acquisition; the raw
/// lock()/unlock() exist for the RAII types and for adopting patterns.
class CPLA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CPLA_ACQUIRE() { mu_.lock(); }
  void unlock() CPLA_RELEASE() { mu_.unlock(); }
  bool try_lock() CPLA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock (the clang-docs MutexLocker pattern). Constructor acquires,
/// destructor releases; the manual unlock()/lock() pair supports dropping
/// the lock around a blocking call without leaving the scope.
class CPLA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CPLA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CPLA_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() CPLA_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() CPLA_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to cpla::Mutex. wait() names the mutex instead
/// of a lock object so the CPLA_REQUIRES contract is visible to the
/// analysis; write wait loops explicitly at the call site
/// (`while (!ready_) cv_.wait(mu_);`) rather than passing a predicate
/// lambda — lambda bodies are analyzed without the caller's lock set and
/// would trip guarded_by on every field they touch.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Caller must hold `mu` (enforced at compile time).
  void wait(Mutex& mu) CPLA_REQUIRES(mu);

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cpla
