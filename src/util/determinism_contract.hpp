#pragma once

// Canonical registry of the repo's determinism contract. This header is the
// single source of truth both for humans (DESIGN.md § Compile-time
// contracts links here) and for tools/cpla_lint.py, which parses the two
// arrays below and enforces, cross-file:
//
//   * determinism-fp-contract: every TU in kBitIdentityTUs must be compiled
//     with -ffp-contract=off (the linter parses the CMake lists, including
//     one level of ${var} indirection, to prove the flag is applied);
//   * determinism-omp-reduction: no `#pragma omp ... reduction(...)` and no
//     `#pragma omp atomic` float accumulation inside a registered TU —
//     reassociated or racing accumulation breaks bit-identity;
//   * unordered-iteration: no range-for over a std::unordered_{map,set} in
//     the directories listed in kOrderSensitiveDirs, where iteration order
//     feeds solver-visible structures (constraint rows, accumulation
//     order). Iterate a sorted container or a deterministic index instead;
//     genuinely order-independent loops carry a rationale'd
//     allow(unordered-iteration) suppression comment.
//
// To put a new TU under the bit-identity contract: add it to
// kBitIdentityTUs, add `-ffp-contract=off` to its COMPILE_OPTIONS in the
// owning CMakeLists.txt, and run `tools/cpla_lint.py --root .` — the lint
// fails until both halves agree (and keeps failing if either later drifts).

namespace cpla::contract {

// TUs whose results must be bit-identical across thread counts, batch
// shapes, and replay (the ECO cache and the serve journal both replay their
// outputs and compare hashes). FMA contraction is compiler-discretionary,
// so these are pinned to -ffp-contract=off; reductions must accumulate in
// a pinned order (ascending k — see DESIGN.md § Batched SDP backend).
inline constexpr const char* kBitIdentityTUs[] = {
    "src/la/batch.cpp",
    // Incremental STA: an incremental TimingGraph::update() must be
    // bit-identical to a from-scratch build() on the same state, and the
    // top-K path report is replayed by tests against a brute-force oracle.
    "src/sta/timing_graph.cpp",
    "src/sta/path_enum.cpp",
    // Lagrangian sub-gradient backend: the net-level engine's parallel
    // pricing + ordered serial sums must be bitwise identical across
    // thread counts and repeated runs, and the partition-level engine's
    // picks feed the ECO replay cache.
    "src/lagr/net_engine.cpp",
    "src/core/lagr_engine.cpp",
};

// Directories where container iteration order can reach solver inputs
// (constraint ordering, pivot selection, accumulation order) and must
// therefore be deterministic.
inline constexpr const char* kOrderSensitiveDirs[] = {
    "src/core",
    "src/la",
    "src/lagr",
    "src/sdp",
    "src/sta",
};

}  // namespace cpla::contract
