#pragma once

// Minimal leveled logger. Thread-safe line output; level gating is global.
// Usage: LOG_INFO("routed %zu nets, overflow=%d", n, ov);

#include <cstdarg>

namespace cpla {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/// Sets the global minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style emission; prefixed with level tag and elapsed wall time.
void log_msg(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace cpla

#define LOG_DEBUG(...) ::cpla::log_msg(::cpla::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) ::cpla::log_msg(::cpla::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) ::cpla::log_msg(::cpla::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) ::cpla::log_msg(::cpla::LogLevel::kError, __VA_ARGS__)
