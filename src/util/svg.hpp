#pragma once

// Minimal SVG canvas for visual diagnostics: routing-density heatmaps
// (Fig 3(b) of the paper), net overlays, partition outlines. Header-light,
// no dependencies; output is a standalone .svg file.

#include <string>
#include <vector>

namespace cpla {

class SvgCanvas {
 public:
  SvgCanvas(double width, double height);

  void rect(double x, double y, double w, double h, const std::string& fill,
            double opacity = 1.0, const std::string& stroke = "");
  void line(double x1, double y1, double x2, double y2, const std::string& stroke,
            double width = 1.0);
  void circle(double cx, double cy, double r, const std::string& fill);
  void text(double x, double y, const std::string& content, double size = 12.0,
            const std::string& fill = "#222222");

  /// Renders the complete SVG document.
  std::string render() const;

  /// Writes to a file; returns false on I/O failure.
  bool write(const std::string& path) const;

  /// Maps a value in [0,1] to a blue->green->yellow->red heat color.
  static std::string heat_color(double value);

 private:
  double width_, height_;
  std::vector<std::string> elements_;
};

}  // namespace cpla
