#pragma once

// Clang Thread Safety Analysis attribute wrappers. Annotating a mutex-owning
// class with these macros turns its lock discipline into a compile-time
// contract: the clang build (and the `thread-safety` CI job) promotes
// -Wthread-safety -Wthread-safety-beta to errors, so an unguarded access to
// a CPLA_GUARDED_BY field, a forgotten unlock, or a call that violates a
// CPLA_REQUIRES precondition fails the build instead of waiting for TSan to
// catch the interleaving at runtime. GCC and other compilers expand every
// macro to nothing, so annotated headers stay portable.
//
// Policy (DESIGN.md § Compile-time contracts): every mutex member in src/
// must be a cpla::Mutex (src/util/mutex.hpp) — std::mutex itself carries no
// capability attribute, so the analysis cannot see it. Every field a mutex
// guards gets CPLA_GUARDED_BY(mu_). CPLA_NO_THREAD_SAFETY_ANALYSIS is
// function-level only and must carry a written rationale at the use site;
// blanket suppressions are banned (enforced by tools/cpla_lint.py,
// mutex-guard-coverage).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CPLA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CPLA_THREAD_ANNOTATION
#define CPLA_THREAD_ANNOTATION(x)  // not clang (or too old): annotations vanish
#endif

// --- type attributes -------------------------------------------------------

// Marks a class as a lockable capability ("mutex" names the capability kind
// in diagnostics).
#define CPLA_CAPABILITY(x) CPLA_THREAD_ANNOTATION(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (e.g. cpla::MutexLock).
#define CPLA_SCOPED_CAPABILITY CPLA_THREAD_ANNOTATION(scoped_lockable)

// --- data-member attributes ------------------------------------------------

// Field may only be read/written while holding `x`.
#define CPLA_GUARDED_BY(x) CPLA_THREAD_ANNOTATION(guarded_by(x))

// Pointer field: the *pointee* may only be accessed while holding `x`.
#define CPLA_PT_GUARDED_BY(x) CPLA_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations (deadlock prevention, checked under -beta).
#define CPLA_ACQUIRED_BEFORE(...) CPLA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CPLA_ACQUIRED_AFTER(...) CPLA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// --- function attributes ---------------------------------------------------

// Caller must hold the capability (exclusively / shared) on entry; the
// function neither acquires nor releases it.
#define CPLA_REQUIRES(...) CPLA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CPLA_REQUIRES_SHARED(...) \
  CPLA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires/releases the capability and holds/releases it on exit.
#define CPLA_ACQUIRE(...) CPLA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CPLA_ACQUIRE_SHARED(...) \
  CPLA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define CPLA_RELEASE(...) CPLA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CPLA_RELEASE_SHARED(...) \
  CPLA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `result`.
#define CPLA_TRY_ACQUIRE(...) CPLA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Caller must NOT hold the capability (guards against recursive locking).
#define CPLA_EXCLUDES(...) CPLA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held; tells the analysis to
// assume it from here on (escape hatch for code reached only under lock).
#define CPLA_ASSERT_CAPABILITY(x) CPLA_THREAD_ANNOTATION(assert_capability(x))

// Function returns a reference to the given capability.
#define CPLA_RETURN_CAPABILITY(x) CPLA_THREAD_ANNOTATION(lock_returned(x))

// Function-level opt-out. Use ONLY with a written rationale on the same or
// preceding line — the lint suppression-budget check inventories these.
#define CPLA_NO_THREAD_SAFETY_ANALYSIS CPLA_THREAD_ANNOTATION(no_thread_safety_analysis)
