#include "src/util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "src/util/mutex.hpp"

namespace cpla {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
// Serializes the fprintf sequence so concurrent log lines never interleave;
// guards the stderr stream, not any in-process state.
Mutex g_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DBG";
    case LogLevel::kInfo: return "INF";
    case LogLevel::kWarn: return "WRN";
    case LogLevel::kError: return "ERR";
    default: return "???";
  }
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_msg(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load()) return;
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s %8.2fs] ", tag(level), elapsed_seconds());
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace cpla
