#include "src/util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "src/util/check.hpp"
#include "src/util/str.hpp"

namespace cpla {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  CPLA_ASSERT_MSG(cells.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      if (c == 0) {
        line += row[c] + std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ') + row[c];
      }
      line += (c + 1 == row.size()) ? "\n" : "  ";
    }
    return line;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print(std::FILE* out) const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fflush(out);
}

std::string fmt_num(double value, int precision) {
  return str_format("%.*f", precision, value);
}

}  // namespace cpla
