#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cpla {

/// Splits on any run of the given delimiter characters; empty tokens dropped.
std::vector<std::string> split_ws(std::string_view text, std::string_view delims = " \t\r\n");

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style std::string formatting.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Thread-safe strerror: renders `err` (an errno value) via strerror_r into
/// an owned string. std::strerror returns a shared static buffer and is
/// flagged by clang-tidy concurrency-mt-unsafe; use this everywhere.
std::string errno_str(int err);

}  // namespace cpla
