#include "src/route/route2d.hpp"

#include <algorithm>

namespace cpla::route {

void NetRoute::normalize() {
  std::sort(h_edges.begin(), h_edges.end());
  h_edges.erase(std::unique(h_edges.begin(), h_edges.end()), h_edges.end());
  std::sort(v_edges.begin(), v_edges.end());
  v_edges.erase(std::unique(v_edges.begin(), v_edges.end()), v_edges.end());
}

Usage2D::Usage2D(const grid::GridGraph& g) {
  h_usage_.assign(static_cast<std::size_t>(g.num_h_edges()), 0);
  v_usage_.assign(static_cast<std::size_t>(g.num_v_edges()), 0);
  h_hist_.assign(h_usage_.size(), 0.0);
  v_hist_.assign(v_usage_.size(), 0.0);
  h_cap_.resize(h_usage_.size());
  v_cap_.resize(v_usage_.size());
  for (int y = 0; y < g.ysize(); ++y) {
    for (int x = 0; x < g.xsize() - 1; ++x) {
      h_cap_[g.h_edge_id(x, y)] = g.projected_capacity_h(x, y);
    }
  }
  for (int x = 0; x < g.xsize(); ++x) {
    for (int y = 0; y < g.ysize() - 1; ++y) {
      v_cap_[g.v_edge_id(x, y)] = g.projected_capacity_v(x, y);
    }
  }
}

void Usage2D::add(const NetRoute& r, int delta) {
  for (int id : r.h_edges) h_usage_[id] += delta;
  for (int id : r.v_edges) v_usage_[id] += delta;
}

long Usage2D::total_overflow() const {
  long sum = 0;
  for (std::size_t i = 0; i < h_usage_.size(); ++i) {
    sum += std::max(0, h_usage_[i] - h_cap_[i]);
  }
  for (std::size_t i = 0; i < v_usage_.size(); ++i) {
    sum += std::max(0, v_usage_[i] - v_cap_[i]);
  }
  return sum;
}

void Usage2D::bump_history(double amount) {
  for (std::size_t i = 0; i < h_usage_.size(); ++i) {
    if (h_usage_[i] > h_cap_[i]) h_hist_[i] += amount;
  }
  for (std::size_t i = 0; i < v_usage_.size(); ++i) {
    if (v_usage_[i] > v_cap_[i]) v_hist_[i] += amount;
  }
}

double Usage2D::edge_cost(int usage, int cap, double hist) {
  // PathFinder-flavored: unit base cost, plus history, plus a sharply
  // growing present-congestion term once the edge would overflow.
  double cost = 1.0 + hist;
  if (usage + 1 > cap) {
    cost += 8.0 + 4.0 * static_cast<double>(usage + 1 - cap);
  } else if (cap > 0) {
    cost += 0.5 * static_cast<double>(usage) / static_cast<double>(cap);
  }
  return cost;
}

}  // namespace cpla::route
