#include "src/route/maze.hpp"

#include <limits>
#include <queue>

#include "src/util/check.hpp"

namespace cpla::route {

// Dijkstra over (cell, incoming direction) states. The bend penalty keeps
// rerouted paths straight — matching the mostly-monotone routes production
// global routers emit, and keeping the downstream segment trees short.
namespace {
constexpr double kBendPenalty = 1.5;
constexpr int kDirH = 0;
constexpr int kDirV = 1;
constexpr int kDirNone = 2;  // start state
}  // namespace

bool maze_route(const grid::GridGraph& g, const Usage2D& usage,
                const std::vector<int>& sources, const std::vector<int>& targets,
                NetRoute* out) {
  CPLA_ASSERT(!sources.empty() && !targets.empty());
  const int xs = g.xsize();
  const int ys = g.ysize();
  const int num_states = xs * ys * 3;

  std::vector<double> dist(static_cast<std::size_t>(num_states),
                           std::numeric_limits<double>::infinity());
  std::vector<int> prev(static_cast<std::size_t>(num_states), -1);
  std::vector<char> is_target(static_cast<std::size_t>(xs * ys), 0);
  for (int t : targets) is_target[t] = 1;

  auto state_id = [&](int cell, int dir) { return cell * 3 + dir; };

  using Item = std::pair<double, int>;  // (dist, state)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (int s : sources) {
    const int st = state_id(s, kDirNone);
    dist[st] = 0.0;
    heap.push({0.0, st});
  }

  int goal_state = -1;
  while (!heap.empty()) {
    const auto [d, st] = heap.top();
    heap.pop();
    if (d > dist[st]) continue;
    const int cell = st / 3;
    const int dir = st % 3;
    if (is_target[cell]) {
      goal_state = st;
      break;
    }
    const int x = cell % xs;
    const int y = cell / xs;

    auto relax = [&](int nx, int ny, int ndir, double edge_cost) {
      const double bend = (dir != kDirNone && dir != ndir) ? kBendPenalty : 0.0;
      const int ncell = ny * xs + nx;
      const int nst = state_id(ncell, ndir);
      const double nd = d + edge_cost + bend;
      if (nd < dist[nst]) {
        dist[nst] = nd;
        prev[nst] = st;
        heap.push({nd, nst});
      }
    };
    if (x > 0) relax(x - 1, y, kDirH, usage.h_cost(g.h_edge_id(x - 1, y)));
    if (x < xs - 1) relax(x + 1, y, kDirH, usage.h_cost(g.h_edge_id(x, y)));
    if (y > 0) relax(x, y - 1, kDirV, usage.v_cost(g.v_edge_id(x, y - 1)));
    if (y < ys - 1) relax(x, y + 1, kDirV, usage.v_cost(g.v_edge_id(x, y)));
  }
  if (goal_state < 0) return false;

  // Walk back, emitting unit edges.
  int st = goal_state;
  while (prev[st] >= 0) {
    const int p = prev[st];
    const int cell = st / 3;
    const int pcell = p / 3;
    const int cx = cell % xs, cy = cell / xs;
    const int px = pcell % xs, py = pcell / xs;
    if (cy == py) {
      out->add_h(g.h_edge_id(std::min(cx, px), cy));
    } else {
      out->add_v(g.v_edge_id(cx, std::min(cy, py)));
    }
    st = p;
  }
  return true;
}

}  // namespace cpla::route
