#pragma once

// 2-D routing primitives: per-net sets of unit grid edges plus a 2-D usage
// map with PathFinder-style history costs.

#include <vector>

#include "src/grid/design.hpp"

namespace cpla::route {

/// A net's 2-D route: sorted, deduplicated directional unit-edge id sets
/// (ids per GridGraph::h_edge_id / v_edge_id).
struct NetRoute {
  std::vector<int> h_edges;
  std::vector<int> v_edges;

  bool empty() const { return h_edges.empty() && v_edges.empty(); }
  std::size_t wirelength() const { return h_edges.size() + v_edges.size(); }

  void add_h(int id) { h_edges.push_back(id); }
  void add_v(int id) { v_edges.push_back(id); }

  /// Sorts and removes duplicate edges.
  void normalize();
};

/// 2-D wire usage with projected capacities and negotiation history.
class Usage2D {
 public:
  explicit Usage2D(const grid::GridGraph& g);

  void add(const NetRoute& r, int delta);

  int h_usage(int id) const { return h_usage_[id]; }
  int v_usage(int id) const { return v_usage_[id]; }
  int h_cap(int id) const { return h_cap_[id]; }
  int v_cap(int id) const { return v_cap_[id]; }

  double& h_history(int id) { return h_hist_[id]; }
  double& v_history(int id) { return v_hist_[id]; }
  double h_history(int id) const { return h_hist_[id]; }
  double v_history(int id) const { return v_hist_[id]; }

  /// Total units of usage above capacity.
  long total_overflow() const;

  /// Bumps history on every currently-overflowed edge (negotiation step).
  void bump_history(double amount);

  /// Routing cost of pushing one more wire through the edge.
  double h_cost(int id) const { return edge_cost(h_usage_[id], h_cap_[id], h_hist_[id]); }
  double v_cost(int id) const { return edge_cost(v_usage_[id], v_cap_[id], v_hist_[id]); }

 private:
  static double edge_cost(int usage, int cap, double hist);
  std::vector<int> h_usage_, v_usage_;
  std::vector<int> h_cap_, v_cap_;
  std::vector<double> h_hist_, v_hist_;
};

}  // namespace cpla::route
