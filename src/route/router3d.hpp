#pragma once

// Direct 3-D global router: negotiation-based maze routing over the full
// (x, y, layer) grid, with per-layer wire costs and explicit via edges.
// This is the monolithic alternative to the 2-D route + layer-assignment
// decomposition the paper's flow belongs to; the ablation bench compares
// the two (3-D search sees layers during routing but explores a much
// larger graph per net).
//
// The result converts into the same SegTree + per-segment-layer form the
// timing engine and AssignState consume, so both flows are measured with
// identical machinery.

#include <vector>

#include "src/route/seg_tree.hpp"

namespace cpla::route {

/// A net's 3-D route as unit edges: wires on a layer plus vias between
/// adjacent layers.
struct NetRoute3D {
  struct WireEdge {
    int layer;
    int edge;  // h_edge_id on horizontal layers, v_edge_id on vertical
    friend bool operator==(const WireEdge&, const WireEdge&) = default;
  };
  struct ViaEdge {
    int cell;
    int lower;  // connects `lower` and `lower`+1
    friend bool operator==(const ViaEdge&, const ViaEdge&) = default;
  };
  std::vector<WireEdge> wires;
  std::vector<ViaEdge> vias;

  bool empty() const { return wires.empty() && vias.empty(); }
  void normalize();
};

struct Router3DOptions {
  int max_negotiation_rounds = 6;
  double history_step = 1.5;
  double via_cost = 2.0;        // base cost per via edge
  double layer_cost_scale = 1.0;  // scales the per-layer wire cost profile
};

struct Routing3DResult {
  std::vector<NetRoute3D> routes;  // indexed by net id
  long wire_overflow = 0;
  int rounds = 0;
};

Routing3DResult route_all_3d(const grid::Design& design, const Router3DOptions& options = {});

/// Converts a 3-D route into a segment tree plus per-segment layers
/// (segments break at turns, branches, pins, and layer changes). Prunes
/// edges not on any pin-to-pin path. Aborts if the route does not connect
/// the net's pins at their pin layers.
struct Tree3D {
  SegTree tree;
  std::vector<int> layers;  // per segment
};
Tree3D extract_tree_3d(const grid::GridGraph& g, const grid::Net& net,
                       const NetRoute3D& route);

}  // namespace cpla::route
