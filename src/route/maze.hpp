#pragma once

// Congestion-aware maze routing: Dijkstra over the 2-D grid from a source
// set to a target set, using Usage2D edge costs. Used both for rip-up
// rerouting and for connecting pins into a grown net component.

#include <vector>

#include "src/route/route2d.hpp"

namespace cpla::route {

/// Finds the cheapest path from any cell in `sources` to any cell in
/// `targets`; appends its unit edges to `out`. Returns false if no path
/// exists (cannot happen on a connected grid). Cells are cell ids
/// (GridGraph::cell_id).
bool maze_route(const grid::GridGraph& g, const Usage2D& usage,
                const std::vector<int>& sources, const std::vector<int>& targets,
                NetRoute* out);

}  // namespace cpla::route
