#include "src/route/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "src/util/check.hpp"

namespace cpla::route {

namespace {

int dist(const grid::XY& a, const grid::XY& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

int median3(int a, int b, int c) { return std::max(std::min(a, b), std::min(std::max(a, b), c)); }

}  // namespace

std::vector<TwoPin> mst_topology(const grid::Net& net) {
  const std::vector<grid::Pin> cells = net.distinct_cells();
  std::vector<TwoPin> out;
  if (cells.size() < 2) return out;

  const std::size_t n = cells.size();
  std::vector<bool> in_tree(n, false);
  std::vector<int> best_dist(n, std::numeric_limits<int>::max());
  std::vector<std::size_t> best_from(n, 0);

  in_tree[0] = true;  // grow from the driver
  for (std::size_t j = 1; j < n; ++j) {
    best_dist[j] = std::abs(cells[j].x - cells[0].x) + std::abs(cells[j].y - cells[0].y);
  }

  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = 0;
    int dist = std::numeric_limits<int>::max();
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best_dist[j] < dist) {
        dist = best_dist[j];
        pick = j;
      }
    }
    in_tree[pick] = true;
    out.push_back(TwoPin{{cells[best_from[pick]].x, cells[best_from[pick]].y},
                         {cells[pick].x, cells[pick].y}});
    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      const int d = std::abs(cells[j].x - cells[pick].x) + std::abs(cells[j].y - cells[pick].y);
      if (d < best_dist[j]) {
        best_dist[j] = d;
        best_from[j] = pick;
      }
    }
  }
  return out;
}

long topology_wirelength(const std::vector<TwoPin>& connections) {
  long total = 0;
  for (const TwoPin& c : connections) total += dist(c.from, c.to);
  return total;
}

std::vector<TwoPin> steiner_topology(const grid::Net& net) {
  std::vector<TwoPin> edges = mst_topology(net);
  if (edges.size() < 2) return edges;

  // Work on a mutable node/edge graph; nodes beyond the original pins are
  // Steiner points.
  std::vector<grid::XY> nodes;
  auto node_of = [&](const grid::XY& p) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == p) return static_cast<int>(i);
    }
    nodes.push_back(p);
    return static_cast<int>(nodes.size()) - 1;
  };
  struct Edge {
    int a, b;
    bool alive = true;
  };
  std::vector<Edge> graph;
  for (const TwoPin& c : edges) graph.push_back({node_of(c.from), node_of(c.to), true});

  // Greedy median-point insertion until no positive-gain move remains.
  // Each pass scans every node with >= 2 incident edges and tries to merge
  // its two longest incident connections through the 3-point median.
  for (int pass = 0; pass < 8; ++pass) {
    bool improved = false;
    for (std::size_t u = 0; u < nodes.size(); ++u) {
      // Collect live incident edges of u.
      std::vector<std::size_t> incident;
      for (std::size_t e = 0; e < graph.size(); ++e) {
        if (graph[e].alive && (graph[e].a == static_cast<int>(u) ||
                               graph[e].b == static_cast<int>(u))) {
          incident.push_back(e);
        }
      }
      if (incident.size() < 2) continue;

      // Best pair of incident edges by median gain.
      double best_gain = 0.0;
      std::size_t best_e1 = 0, best_e2 = 0;
      grid::XY best_s{};
      for (std::size_t i = 0; i < incident.size(); ++i) {
        for (std::size_t j = i + 1; j < incident.size(); ++j) {
          const Edge& e1 = graph[incident[i]];
          const Edge& e2 = graph[incident[j]];
          const int v1 = (e1.a == static_cast<int>(u)) ? e1.b : e1.a;
          const int v2 = (e2.a == static_cast<int>(u)) ? e2.b : e2.a;
          const grid::XY s{median3(nodes[u].x, nodes[v1].x, nodes[v2].x),
                           median3(nodes[u].y, nodes[v1].y, nodes[v2].y)};
          const int before = dist(nodes[u], nodes[v1]) + dist(nodes[u], nodes[v2]);
          const int after = dist(nodes[u], s) + dist(s, nodes[v1]) + dist(s, nodes[v2]);
          const int gain = before - after;
          if (gain > best_gain) {
            best_gain = gain;
            best_e1 = incident[i];
            best_e2 = incident[j];
            best_s = s;
          }
        }
      }
      if (best_gain <= 0.0) continue;

      const Edge& e1 = graph[best_e1];
      const Edge& e2 = graph[best_e2];
      const int v1 = (e1.a == static_cast<int>(u)) ? e1.b : e1.a;
      const int v2 = (e2.a == static_cast<int>(u)) ? e2.b : e2.a;
      graph[best_e1].alive = false;
      graph[best_e2].alive = false;
      const int s = node_of(best_s);
      if (s != static_cast<int>(u)) graph.push_back({static_cast<int>(u), s, true});
      if (s != v1) graph.push_back({s, v1, true});
      if (s != v2) graph.push_back({s, v2, true});
      improved = true;
    }
    if (!improved) break;
  }

  std::vector<TwoPin> out;
  for (const Edge& e : graph) {
    if (e.alive && e.a != e.b) out.push_back(TwoPin{nodes[e.a], nodes[e.b]});
  }
  return out;
}

}  // namespace cpla::route
