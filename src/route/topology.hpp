#pragma once

// Net topology: rectilinear minimum spanning tree over the net's distinct
// pin cells (Prim). Each MST edge becomes a 2-pin connection for pattern /
// maze routing. (The paper assumes initial routing from NCTU-GR; an
// MST-based topology exercises the same layer-assignment code path.)

#include <vector>

#include "src/grid/design.hpp"

namespace cpla::route {

struct TwoPin {
  grid::XY from;
  grid::XY to;
};

/// MST edges over the net's distinct pin cells, in a deterministic order
/// (each connection attaches one new pin to the grown component).
std::vector<TwoPin> mst_topology(const grid::Net& net);

/// Rectilinear Steiner tree approximation: the MST refined by iterative
/// median-point insertion — for a node with two tree neighbors, the
/// component-wise median of the three points becomes a Steiner point when
/// that shortens the tree. Classic RMST -> RSMT refinement; wirelength is
/// never worse than the MST and up to ~10% shorter on multi-pin nets.
std::vector<TwoPin> steiner_topology(const grid::Net& net);

/// Total rectilinear length of a connection list.
long topology_wirelength(const std::vector<TwoPin>& connections);

}  // namespace cpla::route
