#pragma once

// 2-D global router: congestion-aware pattern (L-shape) initial routing,
// followed by PathFinder-style negotiated rip-up-and-reroute with maze
// routing for nets crossing overflowed edges. Produces the "initial
// routing" input the layer-assignment stage consumes.

#include <vector>

#include "src/route/route2d.hpp"

namespace cpla::route {

struct RouterOptions {
  int max_negotiation_rounds = 8;
  double history_step = 1.5;
  // Use the RSMT (Steiner-refined) topology for initial pattern routing;
  // false falls back to the plain MST.
  bool use_steiner = true;
};

struct RoutingResult {
  std::vector<NetRoute> routes;  // indexed by net id
  long overflow = 0;             // residual 2-D overflow after negotiation
  int rounds = 0;
};

RoutingResult route_all(const grid::Design& design, const RouterOptions& options = {});

}  // namespace cpla::route
