#include "src/route/router3d.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/obs/metrics.hpp"
#include "src/util/check.hpp"
#include "src/util/logging.hpp"

namespace cpla::route {

void NetRoute3D::normalize() {
  auto wire_less = [](const WireEdge& a, const WireEdge& b) {
    return a.layer != b.layer ? a.layer < b.layer : a.edge < b.edge;
  };
  std::sort(wires.begin(), wires.end(), wire_less);
  wires.erase(std::unique(wires.begin(), wires.end()), wires.end());
  auto via_less = [](const ViaEdge& a, const ViaEdge& b) {
    return a.cell != b.cell ? a.cell < b.cell : a.lower < b.lower;
  };
  std::sort(vias.begin(), vias.end(), via_less);
  vias.erase(std::unique(vias.begin(), vias.end()), vias.end());
}

namespace {

/// 3-D usage map with negotiation history on wire edges.
class Usage3D {
 public:
  explicit Usage3D(const grid::GridGraph& g) : g_(g) {
    usage_.resize(g.num_layers());
    hist_.resize(g.num_layers());
    for (int l = 0; l < g.num_layers(); ++l) {
      usage_[l].assign(static_cast<std::size_t>(g.num_edges_on_layer(l)), 0);
      hist_[l].assign(usage_[l].size(), 0.0);
    }
  }

  void add(const NetRoute3D& r, int delta) {
    for (const auto& w : r.wires) usage_[w.layer][w.edge] += delta;
  }

  int usage(int l, int e) const { return usage_[l][e]; }

  double cost(int l, int e) const {
    const int cap = g_.edge_capacity(l, e);
    double c = 1.0 + hist_[l][e];
    if (usage_[l][e] + 1 > cap) {
      c += 8.0 + 4.0 * (usage_[l][e] + 1 - cap);
    } else if (cap > 0) {
      c += 0.5 * static_cast<double>(usage_[l][e]) / cap;
    }
    return c;
  }

  long total_overflow() const {
    long sum = 0;
    for (int l = 0; l < g_.num_layers(); ++l) {
      for (std::size_t e = 0; e < usage_[l].size(); ++e) {
        sum += std::max(0, usage_[l][e] - g_.edge_capacity(l, static_cast<int>(e)));
      }
    }
    return sum;
  }

  void bump_history(double amount) {
    for (int l = 0; l < g_.num_layers(); ++l) {
      for (std::size_t e = 0; e < usage_[l].size(); ++e) {
        if (usage_[l][e] > g_.edge_capacity(l, static_cast<int>(e))) hist_[l][e] += amount;
      }
    }
  }

  bool overflowed(const NetRoute3D& r) const {
    for (const auto& w : r.wires) {
      if (usage_[w.layer][w.edge] > g_.edge_capacity(w.layer, w.edge)) return true;
    }
    return false;
  }

 private:
  const grid::GridGraph& g_;
  std::vector<std::vector<int>> usage_;
  std::vector<std::vector<double>> hist_;
};

/// Multi-source Dijkstra over (cell, layer) nodes.
bool maze_route_3d(const grid::GridGraph& g, const Usage3D& usage,
                   const Router3DOptions& opt, const std::vector<int>& sources,
                   const std::vector<int>& targets, NetRoute3D* out,
                   std::vector<int>* new_nodes) {
  const int xs = g.xsize();
  const int ys = g.ysize();
  const int nl = g.num_layers();
  const int num_nodes = xs * ys * nl;
  CPLA_ASSERT(!sources.empty() && !targets.empty());

  std::vector<double> dist(static_cast<std::size_t>(num_nodes),
                           std::numeric_limits<double>::infinity());
  std::vector<int> prev(static_cast<std::size_t>(num_nodes), -1);
  std::vector<char> is_target(static_cast<std::size_t>(num_nodes), 0);
  for (int t : targets) is_target[t] = 1;

  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (int s : sources) {
    dist[s] = 0.0;
    heap.push({0.0, s});
  }

  // Per-layer wire cost: higher (lower-R) layers slightly cheaper so long
  // connections prefer them — the 3-D analogue of timing-driven layers.
  std::vector<double> layer_cost(nl, 1.0);
  for (int l = 0; l < nl; ++l) {
    layer_cost[l] = 1.0 + opt.layer_cost_scale * 0.08 * (nl - 1 - l);
  }

  int goal = -1;
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[node]) continue;
    if (is_target[node]) {
      goal = node;
      break;
    }
    const int l = node / (xs * ys);
    const int cell = node % (xs * ys);
    const int x = cell % xs;
    const int y = cell / xs;

    auto relax = [&](int nnode, double cost) {
      const double nd = d + cost;
      if (nd < dist[nnode]) {
        dist[nnode] = nd;
        prev[nnode] = node;
        heap.push({nd, nnode});
      }
    };
    if (g.is_horizontal(l)) {
      if (x > 0) relax(node - 1, usage.cost(l, g.h_edge_id(x - 1, y)) * layer_cost[l]);
      if (x < xs - 1) relax(node + 1, usage.cost(l, g.h_edge_id(x, y)) * layer_cost[l]);
    } else {
      if (y > 0) relax(node - xs, usage.cost(l, g.v_edge_id(x, y - 1)) * layer_cost[l]);
      if (y < ys - 1) relax(node + xs, usage.cost(l, g.v_edge_id(x, y)) * layer_cost[l]);
    }
    if (l > 0) relax(node - xs * ys, opt.via_cost);
    if (l < nl - 1) relax(node + xs * ys, opt.via_cost);
  }
  if (goal < 0) return false;

  int node = goal;
  while (prev[node] >= 0) {
    new_nodes->push_back(node);
    const int p = prev[node];
    const int l = node / (xs * ys);
    const int pl = p / (xs * ys);
    const int cell = node % (xs * ys);
    const int pcell = p % (xs * ys);
    if (l != pl) {
      out->vias.push_back({cell, std::min(l, pl)});
    } else {
      const int x = cell % xs, y = cell / xs;
      const int px = pcell % xs, py = pcell / xs;
      if (y == py) {
        out->wires.push_back({l, g.h_edge_id(std::min(x, px), y)});
      } else {
        out->wires.push_back({l, g.v_edge_id(x, std::min(y, py))});
      }
    }
    node = p;
  }
  new_nodes->push_back(node);
  return true;
}

NetRoute3D route_net_3d(const grid::GridGraph& g, const Usage3D& usage,
                        const Router3DOptions& opt, const grid::Net& net) {
  NetRoute3D out;
  const auto cells = net.distinct_cells();
  if (cells.size() < 2) return out;
  const int plane = g.xsize() * g.ysize();
  auto node_of = [&](const grid::Pin& p) { return p.layer * plane + g.cell_id(p.x, p.y); };

  std::vector<grid::Pin> order(cells.begin() + 1, cells.end());
  std::sort(order.begin(), order.end(), [&](const grid::Pin& a, const grid::Pin& b) {
    const int da = std::abs(a.x - cells[0].x) + std::abs(a.y - cells[0].y);
    const int db = std::abs(b.x - cells[0].x) + std::abs(b.y - cells[0].y);
    return da < db;
  });

  std::vector<int> component = {node_of(cells[0])};
  for (const auto& pin : order) {
    const int target = node_of(pin);
    if (std::find(component.begin(), component.end(), target) != component.end()) continue;
    std::vector<int> new_nodes;
    const bool ok = maze_route_3d(g, usage, opt, component, {target}, &out, &new_nodes);
    CPLA_ASSERT_MSG(ok, "3-D maze routing failed on a connected grid");
    component.insert(component.end(), new_nodes.begin(), new_nodes.end());
    std::sort(component.begin(), component.end());
    component.erase(std::unique(component.begin(), component.end()), component.end());
  }
  out.normalize();
  return out;
}

}  // namespace

Routing3DResult route_all_3d(const grid::Design& design, const Router3DOptions& options) {
  const grid::GridGraph& g = design.grid;
  Routing3DResult result;
  result.routes.resize(design.nets.size());
  Usage3D usage(g);

  std::vector<std::size_t> order(design.nets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return design.nets[a].hpwl() < design.nets[b].hpwl();
  });

  for (std::size_t idx : order) {
    NetRoute3D r = route_net_3d(g, usage, options, design.nets[idx]);
    usage.add(r, +1);
    result.routes[idx] = std::move(r);
  }

  long reroutes = 0;
  for (int round = 0; round < options.max_negotiation_rounds; ++round) {
    result.rounds = round;
    if (usage.total_overflow() == 0) break;
    usage.bump_history(options.history_step);
    for (std::size_t idx : order) {
      NetRoute3D& r = result.routes[idx];
      if (r.empty() || !usage.overflowed(r)) continue;
      usage.add(r, -1);
      r = route_net_3d(g, usage, options, design.nets[idx]);
      usage.add(r, +1);
      ++reroutes;
    }
  }
  result.wire_overflow = usage.total_overflow();
  obs::metrics().counter("route3d.ripup.rounds").add(result.rounds);
  obs::metrics().counter("route3d.ripup.reroutes").add(reroutes);
  LOG_INFO("router3d: %s: %zu nets, wire overflow=%ld after %d rounds", design.name.c_str(),
           design.nets.size(), result.wire_overflow, result.rounds);
  return result;
}

Tree3D extract_tree_3d(const grid::GridGraph& g, const grid::Net& net,
                       const NetRoute3D& route) {
  Tree3D out;
  SegTree& tree = out.tree;
  tree.net_id = net.id;
  CPLA_ASSERT(!net.pins.empty());
  tree.root = grid::XY{net.pins[0].x, net.pins[0].y};
  tree.root_pin_layer = net.pins[0].layer;
  const int xs = g.xsize();
  const int plane = xs * g.ysize();
  const int root_cell = g.cell_id(tree.root.x, tree.root.y);
  const int root_node = tree.root_pin_layer * plane + root_cell;

  // Sinks in the driver cell attach at the root.
  std::vector<int> pending;  // sink nodes
  for (std::size_t k = 1; k < net.pins.size(); ++k) {
    const int cell = g.cell_id(net.pins[k].x, net.pins[k].y);
    if (cell == root_cell) {
      tree.sinks.push_back(SinkAttach{static_cast<int>(k), -1, net.pins[k].layer});
    } else {
      pending.push_back(net.pins[k].layer * plane + cell);
    }
  }
  if (route.empty()) {
    CPLA_ASSERT_MSG(pending.empty(), "pins outside driver cell but empty 3-D route");
    return out;
  }

  // Adjacency over (cell, layer) nodes.
  std::unordered_map<int, std::vector<int>> adj;
  auto link = [&](int a, int b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  const int xs1 = g.xsize() - 1;
  const int ys1 = g.ysize() - 1;
  for (const auto& w : route.wires) {
    if (g.is_horizontal(w.layer)) {
      const int y = w.edge / xs1, x = w.edge % xs1;
      link(w.layer * plane + g.cell_id(x, y), w.layer * plane + g.cell_id(x + 1, y));
    } else {
      const int x = w.edge / ys1, y = w.edge % ys1;
      link(w.layer * plane + g.cell_id(x, y), w.layer * plane + g.cell_id(x, y + 1));
    }
  }
  for (const auto& v : route.vias) {
    link(v.lower * plane + v.cell, (v.lower + 1) * plane + v.cell);
  }

  // BFS tree from the root node; prune to pin-reaching paths.
  std::unordered_map<int, int> bfs_parent;
  bfs_parent[root_node] = root_node;
  std::queue<int> queue;
  queue.push(root_node);
  while (!queue.empty()) {
    const int node = queue.front();
    queue.pop();
    auto it = adj.find(node);
    if (it == adj.end()) continue;
    for (int next : it->second) {
      if (bfs_parent.count(next)) continue;
      bfs_parent[next] = node;
      queue.push(next);
    }
  }
  std::unordered_set<int> kept;
  kept.insert(root_node);
  for (int sink : pending) {
    CPLA_ASSERT_MSG(bfs_parent.count(sink), "3-D route does not reach a sink pin");
    int node = sink;
    while (!kept.count(node)) {
      kept.insert(node);
      node = bfs_parent[node];
    }
  }
  std::unordered_map<int, std::vector<int>> children;
  for (int node : kept) {
    if (node == root_node) continue;
    children[bfs_parent[node]].push_back(node);
  }

  std::unordered_set<int> sink_nodes(pending.begin(), pending.end());

  // Walk maximal straight single-layer runs; via edges pass through without
  // creating segments.
  struct Walk {
    int start;       // node where the next edge leaves
    int next;        // first node of the edge
    int parent_seg;  // segment the run hangs off (-1 = root)
  };
  std::vector<Walk> stack;
  auto push_children = [&](int node, int parent_seg) {
    auto it = children.find(node);
    if (it == children.end()) return;
    for (int ch : it->second) stack.push_back(Walk{node, ch, parent_seg});
  };
  push_children(root_node, -1);

  auto xy_of = [&](int node) {
    const int cell = node % plane;
    return grid::XY{cell % xs, cell / xs};
  };
  auto layer_of = [&](int node) { return node / plane; };

  while (!stack.empty()) {
    const Walk w = stack.back();
    stack.pop_back();

    if (layer_of(w.next) != layer_of(w.start)) {
      // Via edge: continue the walk without a new segment.
      push_children(w.next, w.parent_seg);
      if (sink_nodes.count(w.next)) {
        // A sink tapped mid-stack: attaches to the run it hangs off.
        // Recorded below through the far-end map; mark by treating the
        // stack node as an endpoint of the parent segment is unnecessary —
        // sink attachment uses cell identity (see end_to_seg fallback).
      }
      continue;
    }

    const grid::XY start = xy_of(w.start);
    const int layer = layer_of(w.start);
    grid::XY cur = xy_of(w.next);
    int cur_node = w.next;
    const bool horizontal = (cur.y == start.y);

    while (true) {
      if (sink_nodes.count(cur_node)) break;
      auto it = children.find(cur_node);
      if (it == children.end() || it->second.size() != 1) break;
      const int nxt = it->second[0];
      if (layer_of(nxt) != layer) break;
      const grid::XY nxy = xy_of(nxt);
      const bool same_dir = horizontal ? (nxy.y == cur.y) : (nxy.x == cur.x);
      if (!same_dir) break;
      cur = nxy;
      cur_node = nxt;
    }

    Segment seg;
    seg.id = static_cast<int>(tree.segs.size());
    seg.a = start;
    seg.b = cur;
    seg.horizontal = horizontal;
    seg.parent = w.parent_seg;
    if (w.parent_seg >= 0) tree.segs[w.parent_seg].children.push_back(seg.id);
    tree.segs.push_back(seg);
    out.layers.push_back(layer);

    push_children(cur_node, seg.id);
  }

  // Attach sinks: a sink node's cell must be the far end of some segment
  // (runs break at sinks and at via branches).
  std::unordered_map<long long, int> end_to_seg;
  for (const Segment& s : tree.segs) {
    end_to_seg[static_cast<long long>(s.b.y) * xs + s.b.x] = s.id;
  }
  for (std::size_t k = 1; k < net.pins.size(); ++k) {
    const int cell = g.cell_id(net.pins[k].x, net.pins[k].y);
    if (cell == root_cell) continue;
    auto it = end_to_seg.find(static_cast<long long>(net.pins[k].y) * xs + net.pins[k].x);
    CPLA_ASSERT_MSG(it != end_to_seg.end(), "3-D sink pin not at any segment endpoint");
    tree.sinks.push_back(SinkAttach{static_cast<int>(k), it->second, net.pins[k].layer});
  }
  return out;
}

}  // namespace cpla::route
