#include "src/route/seg_tree.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/util/check.hpp"

namespace cpla::route {

std::vector<int> SegTree::path_to_root(int seg) const {
  std::vector<int> path;
  while (seg >= 0) {
    path.push_back(seg);
    seg = segs[seg].parent;
  }
  return path;
}

namespace {

struct Adjacency {
  // cell id -> neighbor cell ids (tree edges after pruning)
  std::unordered_map<int, std::vector<int>> nbr;

  void add(int a, int b) {
    nbr[a].push_back(b);
    nbr[b].push_back(a);
  }
};

}  // namespace

SegTree extract_tree(const grid::GridGraph& g, const grid::Net& net, NetRoute* route) {
  SegTree tree;
  tree.net_id = net.id;
  CPLA_ASSERT(!net.pins.empty());
  tree.root = grid::XY{net.pins[0].x, net.pins[0].y};
  tree.root_pin_layer = net.pins[0].layer;
  const int root_cell = g.cell_id(tree.root.x, tree.root.y);
  const int xs = g.xsize();
  const int xs1 = g.xsize() - 1;
  const int ys1 = g.ysize() - 1;

  // Sink pins that live in the driver cell attach directly at the root.
  std::vector<int> pending_sink_cells;
  for (std::size_t k = 1; k < net.pins.size(); ++k) {
    const int cell = g.cell_id(net.pins[k].x, net.pins[k].y);
    if (cell == root_cell) {
      tree.sinks.push_back(SinkAttach{static_cast<int>(k), -1, net.pins[k].layer});
    } else {
      pending_sink_cells.push_back(cell);
    }
  }
  if (route->empty()) {
    CPLA_ASSERT_MSG(pending_sink_cells.empty(), "pins outside driver cell but empty route");
    return tree;
  }

  // Build raw adjacency from unit edges.
  Adjacency adj;
  for (int id : route->h_edges) {
    const int y = id / xs1;
    const int x = id % xs1;
    adj.add(g.cell_id(x, y), g.cell_id(x + 1, y));
  }
  for (int id : route->v_edges) {
    const int x = id / ys1;
    const int y = id % ys1;
    adj.add(g.cell_id(x, y), g.cell_id(x, y + 1));
  }

  // BFS tree from the root (drops cycle edges deterministically).
  std::unordered_map<int, int> bfs_parent;
  bfs_parent[root_cell] = root_cell;
  std::queue<int> queue;
  queue.push(root_cell);
  while (!queue.empty()) {
    const int cell = queue.front();
    queue.pop();
    auto it = adj.nbr.find(cell);
    if (it == adj.nbr.end()) continue;
    for (int next : it->second) {
      if (bfs_parent.count(next)) continue;
      bfs_parent[next] = cell;
      queue.push(next);
    }
  }

  // Keep only edges on root->sink paths.
  std::unordered_set<int> kept_cells;
  kept_cells.insert(root_cell);
  for (int sink : pending_sink_cells) {
    CPLA_ASSERT_MSG(bfs_parent.count(sink), "route does not reach a sink pin");
    int cell = sink;
    while (!kept_cells.count(cell)) {
      kept_cells.insert(cell);
      cell = bfs_parent[cell];
    }
  }

  // Pruned tree adjacency (child lists), and the pruned edge set written
  // back into the NetRoute.
  std::unordered_map<int, std::vector<int>> children;
  NetRoute pruned;
  for (int cell : kept_cells) {
    if (cell == root_cell) continue;
    const int par = bfs_parent[cell];
    children[par].push_back(cell);
    const int cx = cell % xs, cy = cell / xs;
    const int px = par % xs, py = par / xs;
    if (cy == py) {
      pruned.add_h(g.h_edge_id(std::min(cx, px), cy));
    } else {
      pruned.add_v(g.v_edge_id(cx, std::min(cy, py)));
    }
  }
  pruned.normalize();
  *route = std::move(pruned);

  // Breakpoints: root, sinks, branch cells, turns. Sink cells break
  // segments so every pin lands on a segment endpoint.
  std::unordered_set<int> sink_cells(pending_sink_cells.begin(), pending_sink_cells.end());

  // Walk maximal straight runs. Work item: (start cell, first child cell,
  // parent segment id).
  struct Walk {
    int start;
    int next;
    int parent_seg;
  };
  std::vector<Walk> stack;
  auto push_children = [&](int cell, int parent_seg) {
    auto it = children.find(cell);
    if (it == children.end()) return;
    for (int ch : it->second) stack.push_back(Walk{cell, ch, parent_seg});
  };
  push_children(root_cell, -1);

  auto xy_of = [&](int cell) { return grid::XY{cell % xs, cell / xs}; };

  while (!stack.empty()) {
    const Walk w = stack.back();
    stack.pop_back();

    const grid::XY start = xy_of(w.start);
    grid::XY cur = xy_of(w.next);
    const bool horizontal = (cur.y == start.y);
    int cur_cell = w.next;

    // Extend while: exactly one child, same direction, not a sink cell.
    while (true) {
      if (sink_cells.count(cur_cell)) break;
      auto it = children.find(cur_cell);
      if (it == children.end() || it->second.size() != 1) break;
      const int nxt = it->second[0];
      const grid::XY nxy = xy_of(nxt);
      const bool same_dir = horizontal ? (nxy.y == cur.y) : (nxy.x == cur.x);
      if (!same_dir) break;
      cur = nxy;
      cur_cell = nxt;
    }

    Segment seg;
    seg.id = static_cast<int>(tree.segs.size());
    seg.a = start;
    seg.b = cur;
    seg.horizontal = horizontal;
    seg.parent = w.parent_seg;
    if (w.parent_seg >= 0) tree.segs[w.parent_seg].children.push_back(seg.id);
    tree.segs.push_back(seg);

    push_children(cur_cell, seg.id);
  }

  // Attach sinks: map far-end points to segments.
  std::unordered_map<long long, int> end_to_seg;
  for (const Segment& s : tree.segs) {
    end_to_seg[static_cast<long long>(s.b.y) * xs + s.b.x] = s.id;
  }
  for (std::size_t k = 1; k < net.pins.size(); ++k) {
    const int cell = g.cell_id(net.pins[k].x, net.pins[k].y);
    if (cell == root_cell) continue;  // already attached at root
    auto it = end_to_seg.find(static_cast<long long>(net.pins[k].y) * xs + net.pins[k].x);
    CPLA_ASSERT_MSG(it != end_to_seg.end(), "sink pin not at any segment endpoint");
    tree.sinks.push_back(SinkAttach{static_cast<int>(k), it->second, net.pins[k].layer});
  }

  return tree;
}

}  // namespace cpla::route
