#pragma once

// Segment-tree extraction: converts a net's 2-D route (set of unit edges)
// into the tree of maximal straight segments that layer assignment operates
// on. Segments break at turns, branch points, and pins, so every sink and
// every via candidate sits at a segment endpoint. Redundant wires (cycles,
// dangling stubs from overlapped pattern routes) are pruned.

#include <vector>

#include "src/route/route2d.hpp"

namespace cpla::route {

struct Segment {
  int id = -1;
  grid::XY a;  // endpoint shared with the parent (or the net root)
  grid::XY b;  // far endpoint
  bool horizontal = true;
  int parent = -1;  // segment id, -1 for segments hanging off the root
  std::vector<int> children;

  int length() const { return std::abs(b.x - a.x) + std::abs(b.y - a.y); }
};

struct SinkAttach {
  int pin_index = -1;  // index into net.pins (>= 1; pin 0 is the driver)
  int seg_id = -1;     // segment whose far end carries the pin; -1 = at root
  int pin_layer = 0;   // metal layer of the pin itself
};

struct SegTree {
  int net_id = -1;
  grid::XY root;           // driver cell
  int root_pin_layer = 0;  // metal layer of the driver pin
  std::vector<Segment> segs;      // topological order: parent before child
  std::vector<SinkAttach> sinks;  // one entry per non-driver pin

  /// Segment ids on the path from `seg` up to the root (inclusive).
  std::vector<int> path_to_root(int seg) const;
};

/// Builds the segment tree for `net` from its route; prunes edges not on
/// any root-to-pin path and writes the pruned edge set back into `route`.
/// Aborts if the route does not connect all pins (the router guarantees
/// connectivity).
SegTree extract_tree(const grid::GridGraph& g, const grid::Net& net, NetRoute* route);

}  // namespace cpla::route
