#include "src/route/router.hpp"

#include <algorithm>
#include <numeric>

#include "src/obs/metrics.hpp"
#include "src/route/maze.hpp"
#include "src/route/topology.hpp"
#include "src/util/logging.hpp"

namespace cpla::route {

namespace {

/// Appends the cheapest L- or Z-shaped connection between two cells.
/// Z shapes bend at an intermediate column (HVH) or row (VHV), giving the
/// pattern stage a way to slip between congested corners; candidate bend
/// positions are sampled to bound the cost scan on long connections.
void pattern_route(const grid::GridGraph& g, const Usage2D& usage, const TwoPin& conn,
                   NetRoute* out) {
  const int x0 = conn.from.x, y0 = conn.from.y;
  const int x1 = conn.to.x, y1 = conn.to.y;

  auto h_run_cost = [&](int xa, int xb, int y) {
    double c = 0.0;
    for (int x = std::min(xa, xb); x < std::max(xa, xb); ++x) c += usage.h_cost(g.h_edge_id(x, y));
    return c;
  };
  auto v_run_cost = [&](int ya, int yb, int x) {
    double c = 0.0;
    for (int y = std::min(ya, yb); y < std::max(ya, yb); ++y) c += usage.v_cost(g.v_edge_id(x, y));
    return c;
  };
  auto emit_h = [&](int xa, int xb, int y) {
    for (int x = std::min(xa, xb); x < std::max(xa, xb); ++x) out->add_h(g.h_edge_id(x, y));
  };
  auto emit_v = [&](int ya, int yb, int x) {
    for (int y = std::min(ya, yb); y < std::max(ya, yb); ++y) out->add_v(g.v_edge_id(x, y));
  };

  if (y0 == y1) {
    emit_h(x0, x1, y0);
    return;
  }
  if (x0 == x1) {
    emit_v(y0, y1, x0);
    return;
  }

  // Candidates: the two Ls (Z bends at the endpoints) plus sampled interior
  // Z bends. Encoding: bend column xm for HVH, bend row ym for VHV.
  struct Candidate {
    bool hvh;
    int bend;
    double cost;
  };
  Candidate best{true, x1, h_run_cost(x0, x1, y0) + v_run_cost(y0, y1, x1)};  // L (corner at x1,y0)
  auto consider = [&](bool hvh, int bend, double cost) {
    if (cost < best.cost) best = Candidate{hvh, bend, cost};
  };
  consider(false, y1, v_run_cost(y0, y1, x0) + h_run_cost(x0, x1, y1));  // other L

  const int xa = std::min(x0, x1), xb = std::max(x0, x1);
  const int ya = std::min(y0, y1), yb = std::max(y0, y1);
  const int xstep = std::max(1, (xb - xa) / 6);
  for (int xm = xa + 1; xm < xb; xm += xstep) {
    consider(true, xm,
             h_run_cost(x0, xm, y0) + v_run_cost(y0, y1, xm) + h_run_cost(xm, x1, y1));
  }
  const int ystep = std::max(1, (yb - ya) / 6);
  for (int ym = ya + 1; ym < yb; ym += ystep) {
    consider(false, ym,
             v_run_cost(y0, ym, x0) + h_run_cost(x0, x1, ym) + v_run_cost(ym, y1, x1));
  }

  if (best.hvh) {
    emit_h(x0, best.bend, y0);
    emit_v(y0, y1, best.bend);
    emit_h(best.bend, x1, y1);
  } else {
    emit_v(y0, best.bend, x0);
    emit_h(x0, x1, best.bend);
    emit_v(best.bend, y1, x1);
  }
}

/// Cells touched by a route (edge endpoints).
std::vector<int> route_cells(const grid::GridGraph& g, const NetRoute& r) {
  std::vector<int> cells;
  cells.reserve(2 * (r.h_edges.size() + r.v_edges.size()));
  const int xs1 = g.xsize() - 1;
  for (int id : r.h_edges) {
    const int y = id / xs1;
    const int x = id % xs1;
    cells.push_back(g.cell_id(x, y));
    cells.push_back(g.cell_id(x + 1, y));
  }
  const int ys1 = g.ysize() - 1;
  for (int id : r.v_edges) {
    const int x = id / ys1;
    const int y = id % ys1;
    cells.push_back(g.cell_id(x, y));
    cells.push_back(g.cell_id(x, y + 1));
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

/// Full maze reroute of one net: grow a component from the driver, maze to
/// each remaining pin (nearest first).
NetRoute maze_reroute(const grid::GridGraph& g, const Usage2D& usage, const grid::Net& net) {
  NetRoute out;
  const auto cells = net.distinct_cells();
  if (cells.size() < 2) return out;

  std::vector<grid::Pin> order(cells.begin() + 1, cells.end());
  std::sort(order.begin(), order.end(), [&](const grid::Pin& a, const grid::Pin& b) {
    const int da = std::abs(a.x - cells[0].x) + std::abs(a.y - cells[0].y);
    const int db = std::abs(b.x - cells[0].x) + std::abs(b.y - cells[0].y);
    return da < db;
  });

  std::vector<int> component = {g.cell_id(cells[0].x, cells[0].y)};
  for (const auto& pin : order) {
    const int target = g.cell_id(pin.x, pin.y);
    if (std::find(component.begin(), component.end(), target) != component.end()) continue;
    NetRoute path;
    const bool ok = maze_route(g, usage, component, {target}, &path);
    CPLA_ASSERT_MSG(ok, "maze routing failed on a connected grid");
    out.h_edges.insert(out.h_edges.end(), path.h_edges.begin(), path.h_edges.end());
    out.v_edges.insert(out.v_edges.end(), path.v_edges.begin(), path.v_edges.end());
    const auto new_cells = route_cells(g, path);
    component.insert(component.end(), new_cells.begin(), new_cells.end());
    std::sort(component.begin(), component.end());
    component.erase(std::unique(component.begin(), component.end()), component.end());
  }
  out.normalize();
  return out;
}

}  // namespace

RoutingResult route_all(const grid::Design& design, const RouterOptions& options) {
  const grid::GridGraph& g = design.grid;
  RoutingResult result;
  result.routes.resize(design.nets.size());
  Usage2D usage(g);

  // Initial pattern routing, short nets first (they have the least routing
  // freedom later).
  std::vector<std::size_t> order(design.nets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return design.nets[a].hpwl() < design.nets[b].hpwl();
  });

  for (std::size_t idx : order) {
    const grid::Net& net = design.nets[idx];
    NetRoute r;
    const std::vector<TwoPin> topo =
        options.use_steiner ? steiner_topology(net) : mst_topology(net);
    for (const TwoPin& conn : topo) pattern_route(g, usage, conn, &r);
    r.normalize();
    usage.add(r, +1);
    result.routes[idx] = std::move(r);
  }

  // Negotiated rip-up and reroute.
  long reroutes = 0;
  for (int round = 0; round < options.max_negotiation_rounds; ++round) {
    const long overflow = usage.total_overflow();
    result.overflow = overflow;
    result.rounds = round;
    if (overflow == 0) break;
    usage.bump_history(options.history_step);

    for (std::size_t idx : order) {
      NetRoute& r = result.routes[idx];
      if (r.empty()) continue;
      bool congested = false;
      for (int id : r.h_edges) {
        if (usage.h_usage(id) > usage.h_cap(id)) {
          congested = true;
          break;
        }
      }
      if (!congested) {
        for (int id : r.v_edges) {
          if (usage.v_usage(id) > usage.v_cap(id)) {
            congested = true;
            break;
          }
        }
      }
      if (!congested) continue;

      usage.add(r, -1);
      r = maze_reroute(g, usage, design.nets[idx]);
      usage.add(r, +1);
      ++reroutes;
    }
  }
  result.overflow = usage.total_overflow();
  obs::metrics().counter("route.ripup.rounds").add(result.rounds);
  obs::metrics().counter("route.ripup.reroutes").add(reroutes);

  LOG_INFO("router: %s: %zu nets, overflow=%ld after %d rounds", design.name.c_str(),
           design.nets.size(), result.overflow, result.rounds);
  return result;
}

}  // namespace cpla::route
