#pragma once

// Synthetic ISPD'08-shaped benchmark generator.
//
// The real ISPD'08 suite is hundreds of MB of placement data; this project
// substitutes generated instances that preserve the statistical structure
// the layer-assignment algorithms respond to (see DESIGN.md):
//   * multi-layer grid with alternating preferred directions,
//   * per-layer track capacities with blockage-depressed regions,
//   * net-size distribution heavy on 2-4 pin nets with a multi-pin tail,
//   * clustered pins producing a congested core (cf. Fig 3(b)) plus a
//     population of long cross-chip nets that dominate critical timing.
//
// Each of the 15 suite names maps to a deterministic spec (grid size, net
// count, capacity), scaled so the full suite runs on one machine.

#include <string>
#include <vector>

#include "src/grid/design.hpp"

namespace cpla::gen {

struct SynthSpec {
  std::string name = "synthetic";
  int xsize = 48;
  int ysize = 48;
  int num_layers = 6;
  int num_nets = 1500;
  int tracks_per_layer = 10;  // per directional edge
  double cluster_fraction = 0.8;   // nets drawn inside a placement cluster
  double global_fraction = 0.10;   // long cross-chip nets
  int num_blockages = 3;           // capacity-depressed rectangles
  std::uint64_t seed = 1;
};

/// All 15 suite names (adaptec1..5, bigblue1..4, newblue1..7).
const std::vector<std::string>& suite_names();

/// The six "small" cases used for the paper's Fig 7 ILP-vs-SDP comparison.
const std::vector<std::string>& small_case_names();

/// Spec for one of the suite names; aborts on an unknown name.
SynthSpec suite_spec(const std::string& name);

/// Generates a design from a spec (deterministic in spec.seed).
grid::Design generate(const SynthSpec& spec);

/// Convenience: generate a named suite benchmark.
grid::Design generate_suite(const std::string& name);

}  // namespace cpla::gen
