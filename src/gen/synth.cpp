#include "src/gen/synth.hpp"

#include <algorithm>
#include <cmath>

#include "src/grid/layer_stack.hpp"
#include "src/util/check.hpp"
#include "src/util/rng.hpp"
#include "src/util/str.hpp"

namespace cpla::gen {

const std::vector<std::string>& suite_names() {
  static const std::vector<std::string> kNames = {
      "adaptec1", "adaptec2", "adaptec3", "adaptec4", "adaptec5",
      "bigblue1", "bigblue2", "bigblue3", "bigblue4",
      "newblue1", "newblue2", "newblue4", "newblue5", "newblue6", "newblue7",
  };
  return kNames;
}

const std::vector<std::string>& small_case_names() {
  static const std::vector<std::string> kNames = {
      "adaptec1", "adaptec2", "bigblue1", "newblue1", "newblue2", "newblue4",
  };
  return kNames;
}

SynthSpec suite_spec(const std::string& name) {
  // Scaled-down silhouettes of the real suite: relative ordering of grid
  // sizes, net counts, and layer counts mirrors ISPD'08 (bigblue4/newblue7
  // largest, adaptec1/newblue1 smallest).
  struct Row {
    const char* name;
    int grid;
    int layers;
    int nets;
    int tracks;
  };
  // Track counts sized so the 2-D router closes with ~zero overflow, like
  // the real suite under a production router; congestion shows up as local
  // pressure (blockages, clustered cores), not global infeasibility.
  static const Row kRows[] = {
      {"adaptec1", 48, 6, 1700, 12},  {"adaptec2", 52, 6, 1900, 12},
      {"adaptec3", 64, 6, 2900, 12}, {"adaptec4", 64, 6, 2700, 13},
      {"adaptec5", 72, 6, 3700, 12}, {"bigblue1", 48, 6, 2000, 12},
      {"bigblue2", 64, 6, 3000, 12},  {"bigblue3", 72, 8, 3400, 12},
      {"bigblue4", 88, 8, 5200, 12}, {"newblue1", 44, 6, 1500, 12},
      {"newblue2", 56, 6, 2400, 13}, {"newblue4", 64, 6, 3100, 12},
      {"newblue5", 84, 6, 4800, 12}, {"newblue6", 76, 6, 4300, 12},
      {"newblue7", 92, 8, 5600, 13},
  };
  for (std::size_t i = 0; i < std::size(kRows); ++i) {
    const Row& r = kRows[i];
    if (name == r.name) {
      SynthSpec spec;
      spec.name = r.name;
      spec.xsize = r.grid;
      spec.ysize = r.grid;
      spec.num_layers = r.layers;
      spec.num_nets = r.nets;
      spec.tracks_per_layer = r.tracks;
      spec.num_blockages = 2 + static_cast<int>(i % 4);
      spec.seed = 1000 + i * 7919;  // distinct, deterministic
      return spec;
    }
  }
  CPLA_ASSERT_MSG(false, "unknown suite benchmark name");
}

namespace {

struct Cluster {
  double cx, cy, sigma;
};

int clamp_coord(double v, int lo, int hi) {
  return std::clamp(static_cast<int>(std::lround(v)), lo, hi);
}

/// Net pin-count distribution: heavy 2-4 pin body, multi-pin tail.
int sample_pin_count(cpla::Rng* rng) {
  const double u = rng->uniform();
  if (u < 0.45) return 2;
  if (u < 0.70) return 3;
  if (u < 0.85) return static_cast<int>(rng->uniform_int(4, 6));
  if (u < 0.97) return static_cast<int>(rng->uniform_int(7, 14));
  return static_cast<int>(rng->uniform_int(15, 32));
}

}  // namespace

grid::Design generate(const SynthSpec& spec) {
  cpla::Rng rng(spec.seed);

  std::vector<grid::Layer> layers = grid::make_layer_stack(spec.num_layers);
  grid::GridGraph g(spec.xsize, spec.ysize, layers, grid::default_geom());
  for (int l = 0; l < spec.num_layers; ++l) {
    // Lower layer pair keeps some capacity for pin access; all layers get
    // the nominal track count.
    g.fill_layer_capacity(l, spec.tracks_per_layer);
  }

  // Blockages: rectangles where lower-layer capacity is sharply reduced
  // (macros). These create the uneven density the self-adaptive partitioner
  // responds to.
  for (int b = 0; b < spec.num_blockages; ++b) {
    const int w = static_cast<int>(rng.uniform_int(spec.xsize / 8, spec.xsize / 4));
    const int h = static_cast<int>(rng.uniform_int(spec.ysize / 8, spec.ysize / 4));
    const int x0 = static_cast<int>(rng.uniform_int(0, spec.xsize - w - 1));
    const int y0 = static_cast<int>(rng.uniform_int(0, spec.ysize - h - 1));
    const int depth = std::min(spec.num_layers - 2, 2 + b % 2);  // lowest 2-3 layers
    for (int l = 0; l < depth; ++l) {
      const int reduced = std::max(1, spec.tracks_per_layer / 4);
      if (g.is_horizontal(l)) {
        for (int y = y0; y < y0 + h; ++y)
          for (int x = x0; x < std::min(x0 + w, spec.xsize - 1); ++x)
            g.set_edge_capacity(l, g.h_edge_id(x, y), reduced);
      } else {
        for (int x = x0; x < x0 + w; ++x)
          for (int y = y0; y < std::min(y0 + h, spec.ysize - 1); ++y)
            g.set_edge_capacity(l, g.v_edge_id(x, y), reduced);
      }
    }
  }

  grid::Design design(spec.name, std::move(g));

  // Placement clusters (standard-cell neighborhoods).
  const int num_clusters = std::max(4, spec.num_nets / 400);
  std::vector<Cluster> clusters;
  clusters.reserve(static_cast<std::size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c) {
    clusters.push_back(Cluster{
        rng.uniform(0.1 * spec.xsize, 0.9 * spec.xsize),
        rng.uniform(0.1 * spec.ysize, 0.9 * spec.ysize),
        rng.uniform(2.0, 0.12 * spec.xsize),
    });
  }

  auto cluster_pin = [&](const Cluster& cl) {
    grid::Pin p;
    p.x = clamp_coord(cl.cx + rng.normal() * cl.sigma, 0, spec.xsize - 1);
    p.y = clamp_coord(cl.cy + rng.normal() * cl.sigma, 0, spec.ysize - 1);
    p.layer = 0;
    return p;
  };
  auto uniform_pin = [&]() {
    grid::Pin p;
    p.x = static_cast<int>(rng.uniform_int(0, spec.xsize - 1));
    p.y = static_cast<int>(rng.uniform_int(0, spec.ysize - 1));
    p.layer = 0;
    return p;
  };

  design.nets.reserve(static_cast<std::size_t>(spec.num_nets));
  for (int n = 0; n < spec.num_nets; ++n) {
    grid::Net net;
    net.name = cpla::str_format("n%d", n);
    net.id = n;
    const int pins = sample_pin_count(&rng);

    const double kind = rng.uniform();
    if (kind < spec.global_fraction) {
      // Global net: pins drawn from several distinct clusters — long,
      // timing-critical.
      for (int k = 0; k < pins; ++k) {
        const auto& cl = clusters[static_cast<std::size_t>(
            rng.uniform_int(0, num_clusters - 1))];
        net.pins.push_back(cluster_pin(cl));
      }
    } else if (kind < spec.global_fraction + spec.cluster_fraction) {
      // Local net inside one cluster.
      const auto& cl = clusters[static_cast<std::size_t>(rng.uniform_int(0, num_clusters - 1))];
      for (int k = 0; k < pins; ++k) net.pins.push_back(cluster_pin(cl));
    } else {
      for (int k = 0; k < pins; ++k) net.pins.push_back(uniform_pin());
    }

    // A net whose pins all collapsed into one GCell carries no routing; keep
    // it (the flow must tolerate such nets) but ensure at least the source
    // exists.
    design.nets.push_back(std::move(net));
  }

  return design;
}

grid::Design generate_suite(const std::string& name) { return generate(suite_spec(name)); }

}  // namespace cpla::gen
