#pragma once

// EcoSession: the incremental engineering-change-order engine. Wraps an
// AssignState and accepts a stream of typed deltas (delta.hpp); resolve()
// re-runs the guarded CPLA flow with two substitutions that keep the
// result bit-identical to a fresh core::optimize() on the mutated design:
//
//   * per-partition solves route through a content-addressed
//     PartitionSolutionCache — partitions whose full solve input (problem
//     + live-state reads) is unchanged replay their cached GuardedSolve
//     instead of re-running the SDP escalation ladder,
//   * per-net Elmore timing routes through a TimingCache keyed on the
//     exact layer vector.
//
// The dirty-set (delta bounding regions intersected with partition
// extents) only decides which partitions skip the cache lookup and always
// re-solve; a clean partition whose content changed anyway (cross-
// partition Gauss-Seidel coupling) simply misses and re-solves too.
// Correctness never depends on dirty-set precision.
//
// resolve() and full_resolve() carry core::optimize()'s transactional
// never-crash / never-worse contract. If an `eco.cache.lookup` or
// `eco.resolve.partition` fault fires mid-resolve, the session finishes
// the run on plain guarded solves and then degrades to full_resolve().

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/assign/state.hpp"
#include "src/core/critical.hpp"
#include "src/core/flow.hpp"
#include "src/eco/delta.hpp"
#include "src/eco/solution_cache.hpp"
#include "src/grid/design.hpp"
#include "src/sta/timing_graph.hpp"
#include "src/timing/incremental.hpp"
#include "src/timing/rc_table.hpp"
#include "src/util/status.hpp"

namespace cpla::eco {

struct EcoOptions {
  core::CplaOptions flow;          // settings for every resolve (stock defaults)
  double critical_ratio = 0.005;   // initial released-set selection
  std::size_t cache_capacity = 4096;  // LRU entries in the solution cache
};

/// Per-resolve controls layered on top of the session-wide EcoOptions.
struct ResolveOptions {
  /// Wall-clock budget per partition solve, routed into the solve-guard
  /// escalation chain (GuardOptions::deadline_ms); 0 keeps the session
  /// default. A deadline-bounded resolve trades replay determinism for
  /// latency — whether a solve hits its deadline depends on the wall
  /// clock, so journal replay of such a resolve is not guaranteed
  /// bit-identical (see DESIGN.md, ECO service failure semantics).
  double deadline_ms = 0.0;
  /// Cooperative cancellation, polled at round/batch granularity inside
  /// the flow. A cancelled resolve returns with result.cancelled set and
  /// the state still valid and never-worse, but only partially optimized;
  /// the caller decides whether to keep it or restore its own snapshot.
  const std::atomic<bool>* cancel = nullptr;
};

/// Snapshot of session counters (stats() assembles it on demand).
struct EcoStats {
  long deltas_applied = 0;
  long resolves = 0;
  long full_resolves = 0;
  long fallbacks = 0;  // degraded resolves re-run as full_resolve()
  long dirty_partitions = 0;
  long clean_partitions = 0;
  long cache_hits = 0;
  long cache_misses = 0;
  long cache_evictions = 0;
};

class EcoSession {
 public:
  /// `design` must be the mutable design `state` was built on (capacity
  /// deltas write through it); all three pointers are borrowed, not owned.
  EcoSession(grid::Design* design, assign::AssignState* state, const timing::RcTable* rc,
             EcoOptions options = {});

  /// Applies one delta to the design/state/critical-set and records its
  /// dirty region for the next resolve(). Returns the affected net id
  /// (the new id for kNetAdded, -1 for kCapacityAdjusted); on kBadInput
  /// nothing was mutated.
  Result<int> apply(const Delta& delta);

  /// Applies a batch of deltas transactionally: either every delta applies
  /// (returns the per-delta affected net ids, in order) or — on the first
  /// failure — everything already applied is undone and the session is
  /// byte-identical to its pre-batch self (no dirty regions, no version
  /// bumps, no counter changes). Requires every targeted net to be in the
  /// assigned state (the post-initial-assignment invariant): undo restores
  /// trees through replace_tree(), which always re-assigns.
  Result<std::vector<int>> apply_batch(const std::vector<Delta>& batch);

  /// Incremental re-optimization: dirty partitions re-solve, clean ones
  /// are served from the solution cache when their content key matches.
  /// Bit-identical to full_resolve() on the same state by construction.
  core::OptimizeResult resolve() { return resolve(ResolveOptions{}); }

  /// resolve() with a per-request deadline and/or cancellation hook. A
  /// cancelled run skips the degraded-fallback pass and leaves the dirty
  /// regions pending (the next resolve still covers them).
  core::OptimizeResult resolve(const ResolveOptions& request);

  /// From-scratch guarded optimize (no caches, no hooks) — the fallback
  /// target and the equivalence baseline.
  core::OptimizeResult full_resolve();

  const core::CriticalSet& critical() const { return critical_; }

  /// Recovery hook (src/serve): after the underlying design/state have been
  /// restored from a checkpoint *outside* the session's apply() path,
  /// installs the checkpointed critical set and resynchronizes per-net
  /// bookkeeping — version counters are resized to the restored net count
  /// and freshly bumped, the dirty-region list and both caches are cleared.
  void restore_critical(core::CriticalSet critical);

  /// Attaches a live STA graph (borrowed, already built on this session's
  /// state). Tree-shape deltas mark its topology stale, and every resolve
  /// — incremental, full, degraded, or cancelled — re-times it against the
  /// state it lands on. Re-timing only: the attached graph never steers
  /// the flow's critical-set selection, so resolve() stays bit-identical
  /// to a session without one. Pass nullptr to detach.
  void attach_sta(sta::TimingGraph* graph) { sta_graph_ = graph; }
  sta::TimingGraph* sta_graph() const { return sta_graph_; }

  EcoStats stats() const;
  PartitionSolutionCache& cache() { return cache_; }
  timing::TimingCache& timing_cache() { return timing_cache_; }
  assign::AssignState& state() { return *state_; }

 private:
  core::GuardedSolve solve_partition(const core::PartitionProblem& problem,
                                     const assign::AssignState& state,
                                     core::GuardStats* stats);
  // Batched counterpart with per-problem semantics identical to calling
  // solve_partition on each problem in order (fault-point consumption,
  // dirty/clean counters, cache hits and inserts); cache misses are solved
  // together through core::guarded_solve_batch. Installed as the flow's
  // partition_batch_solver so batch mode stays available under caching.
  std::vector<core::GuardedSolve> solve_partition_batch(
      const std::vector<const core::PartitionProblem*>& problems,
      const assign::AssignState& state, core::GuardStats* stats);
  CacheKey build_key(const core::PartitionProblem& problem,
                     const assign::AssignState& state) const;
  bool is_dirty(const core::PartitionProblem& problem) const;
  void retime_sta();
  core::Engine chosen_engine(const core::PartitionProblem& problem) const;

  grid::Design* design_;
  assign::AssignState* state_;
  const timing::RcTable* rc_;
  EcoOptions options_;
  // History-free copy of options_.flow.backend (use_history forced off):
  // with no adaptive state, choose() is a pure function of the problem, so
  // a cached GuardedSolve replays bit-identically no matter how many
  // solves preceded it. record() is never called — the adaptive-history
  // feature is flow-only by design.
  core::BackendArbiter arbiter_;
  core::CriticalSet critical_;

  std::vector<Rect> pending_;  // delta regions since the last clean resolve
  // Bumped on every tree change of a net; part of the cache key (layer
  // vectors alone cannot distinguish two trees of the same shape count).
  std::vector<std::uint64_t> tree_version_;
  std::uint64_t next_version_ = 1;

  sta::TimingGraph* sta_graph_ = nullptr;  // borrowed; see attach_sta
  timing::TimingCache timing_cache_;
  PartitionSolutionCache cache_;
  std::atomic<bool> degraded_{false};

  long deltas_applied_ = 0;
  long resolves_ = 0;
  long full_resolves_ = 0;
  long fallbacks_ = 0;
  // Written from the OpenMP solve phase, hence atomic.
  std::atomic<long> dirty_partitions_{0};
  std::atomic<long> clean_partitions_{0};
};

}  // namespace cpla::eco
