#include "src/eco/delta.hpp"

#include <algorithm>

namespace cpla::eco {

const char* to_string(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kNetRerouted: return "net-rerouted";
    case DeltaKind::kCriticalityChanged: return "criticality-changed";
    case DeltaKind::kCapacityAdjusted: return "capacity-adjusted";
    case DeltaKind::kNetAdded: return "net-added";
    case DeltaKind::kNetRemoved: return "net-removed";
  }
  return "unknown";
}

bool intersects(const Rect& r, int px0, int py0, int px1, int py1) {
  if (r.empty()) return false;
  return r.x0 < px1 && px0 < r.x1 && r.y0 < py1 && py0 < r.y1;
}

Rect tree_bbox(const route::SegTree& tree) {
  Rect r;
  if (tree.segs.empty()) return r;
  int xmin = tree.segs[0].a.x, xmax = xmin, ymin = tree.segs[0].a.y, ymax = ymin;
  for (const route::Segment& s : tree.segs) {
    xmin = std::min({xmin, s.a.x, s.b.x});
    xmax = std::max({xmax, s.a.x, s.b.x});
    ymin = std::min({ymin, s.a.y, s.b.y});
    ymax = std::max({ymax, s.a.y, s.b.y});
  }
  return Rect{xmin, ymin, xmax + 1, ymax + 1};
}

namespace {

Rect rect_union(const Rect& a, const Rect& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return Rect{std::min(a.x0, b.x0), std::min(a.y0, b.y0), std::max(a.x1, b.x1),
              std::max(a.y1, b.y1)};
}

bool valid_net(const assign::AssignState& state, int net) {
  return net >= 0 && net < state.num_nets();
}

/// Structural sanity of an ECO-supplied tree: ids dense and topologically
/// ordered, segments axis-aligned and inside the grid, optional explicit
/// layers direction-consistent. Keeps malformed input out of the usage
/// maps (where it would trip hard asserts) and reports kBadInput instead.
Status validate_tree(const grid::GridGraph& g, const route::SegTree& tree,
                     const std::vector<int>& layers) {
  if (!layers.empty() && layers.size() != tree.segs.size()) {
    return Status(StatusCode::kBadInput, "eco: layers/segments size mismatch");
  }
  for (std::size_t i = 0; i < tree.segs.size(); ++i) {
    const route::Segment& s = tree.segs[i];
    if (s.id != static_cast<int>(i) || s.parent >= s.id) {
      return Status(StatusCode::kBadInput, "eco: tree segments not in topological id order");
    }
    const bool aligned = s.horizontal ? (s.a.y == s.b.y) : (s.a.x == s.b.x);
    if (!aligned) return Status(StatusCode::kBadInput, "eco: segment not axis-aligned");
    for (const grid::XY& p : {s.a, s.b}) {
      if (p.x < 0 || p.x >= g.xsize() || p.y < 0 || p.y >= g.ysize()) {
        return Status(StatusCode::kBadInput, "eco: segment endpoint outside the grid");
      }
    }
    if (!layers.empty()) {
      const int l = layers[i];
      if (l < 0 || l >= g.num_layers() || g.is_horizontal(l) != s.horizontal) {
        return Status(StatusCode::kBadInput, "eco: layer direction mismatch");
      }
    }
  }
  return Status::ok();
}

void promote(core::CriticalSet* critical, int net) {
  if (net < static_cast<int>(critical->released.size()) && critical->released[net]) return;
  if (net >= static_cast<int>(critical->released.size())) {
    critical->released.resize(static_cast<std::size_t>(net) + 1, 0);
  }
  critical->released[net] = 1;
  critical->nets.push_back(net);
}

void demote(core::CriticalSet* critical, int net) {
  if (net >= static_cast<int>(critical->released.size()) || !critical->released[net]) return;
  critical->released[net] = 0;
  critical->nets.erase(std::remove(critical->nets.begin(), critical->nets.end(), net),
                       critical->nets.end());
}

}  // namespace

Delta Delta::net_rerouted(int net, route::SegTree tree, std::vector<int> layers) {
  Delta d;
  d.kind = DeltaKind::kNetRerouted;
  d.net = net;
  d.tree = std::move(tree);
  d.layers = std::move(layers);
  return d;
}

Delta Delta::criticality_changed(int net, bool released) {
  Delta d;
  d.kind = DeltaKind::kCriticalityChanged;
  d.net = net;
  d.released = released;
  return d;
}

Delta Delta::capacity_adjusted(int layer, int x, int y, int cap) {
  Delta d;
  d.kind = DeltaKind::kCapacityAdjusted;
  d.layer = layer;
  d.x = x;
  d.y = y;
  d.cap = cap;
  return d;
}

Delta Delta::net_added(route::SegTree tree, std::vector<int> layers) {
  Delta d;
  d.kind = DeltaKind::kNetAdded;
  d.tree = std::move(tree);
  d.layers = std::move(layers);
  return d;
}

Delta Delta::net_removed(int net) {
  Delta d;
  d.kind = DeltaKind::kNetRemoved;
  d.net = net;
  return d;
}

Rect bounding_region(const Delta& delta, const assign::AssignState& state) {
  switch (delta.kind) {
    case DeltaKind::kNetRerouted: {
      Rect r = tree_bbox(delta.tree);
      if (valid_net(state, delta.net)) r = rect_union(r, tree_bbox(state.tree(delta.net)));
      return r;
    }
    case DeltaKind::kCriticalityChanged:
    case DeltaKind::kNetRemoved:
      return valid_net(state, delta.net) ? tree_bbox(state.tree(delta.net)) : Rect{};
    case DeltaKind::kCapacityAdjusted: {
      const auto& g = state.design().grid;
      const bool horizontal =
          delta.layer >= 0 && delta.layer < g.num_layers() && g.is_horizontal(delta.layer);
      // The edge touches its two endpoint cells.
      return horizontal ? Rect{delta.x, delta.y, delta.x + 2, delta.y + 1}
                        : Rect{delta.x, delta.y, delta.x + 1, delta.y + 2};
    }
    case DeltaKind::kNetAdded:
      return tree_bbox(delta.tree);
  }
  return Rect{};
}

Result<int> apply_delta(const Delta& delta, grid::Design* design, assign::AssignState* state,
                        core::CriticalSet* critical) {
  CPLA_ASSERT(design != nullptr && state != nullptr && critical != nullptr);
  CPLA_ASSERT_MSG(&state->design() == design, "state must be built on this design");
  const auto& g = design->grid;

  switch (delta.kind) {
    case DeltaKind::kNetRerouted: {
      CPLA_CHECK(valid_net(*state, delta.net),
                 Status(StatusCode::kBadInput, "eco: reroute of an unknown net"));
      CPLA_CHECK_OK(validate_tree(g, delta.tree, delta.layers));
      state->replace_tree(delta.net, delta.tree, delta.layers);
      if (delta.tree.segs.empty()) demote(critical, delta.net);
      return delta.net;
    }
    case DeltaKind::kCriticalityChanged: {
      CPLA_CHECK(valid_net(*state, delta.net),
                 Status(StatusCode::kBadInput, "eco: criticality change of an unknown net"));
      if (delta.released) {
        CPLA_CHECK(!state->tree(delta.net).segs.empty(),
                   Status(StatusCode::kBadInput, "eco: cannot release a net with no wire"));
        promote(critical, delta.net);
      } else {
        demote(critical, delta.net);
      }
      return delta.net;
    }
    case DeltaKind::kCapacityAdjusted: {
      CPLA_CHECK(delta.layer >= 0 && delta.layer < g.num_layers(),
                 Status(StatusCode::kBadInput, "eco: capacity change on an unknown layer"));
      CPLA_CHECK(delta.cap >= 0, Status(StatusCode::kBadInput, "eco: negative capacity"));
      const bool horizontal = g.is_horizontal(delta.layer);
      const bool in_range = horizontal
                                ? (delta.x >= 0 && delta.x < g.xsize() - 1 && delta.y >= 0 &&
                                   delta.y < g.ysize())
                                : (delta.x >= 0 && delta.x < g.xsize() && delta.y >= 0 &&
                                   delta.y < g.ysize() - 1);
      CPLA_CHECK(in_range, Status(StatusCode::kBadInput, "eco: capacity edge outside the grid"));
      const int edge =
          horizontal ? g.h_edge_id(delta.x, delta.y) : g.v_edge_id(delta.x, delta.y);
      design->grid.set_edge_capacity(delta.layer, edge, delta.cap);
      return -1;
    }
    case DeltaKind::kNetAdded: {
      CPLA_CHECK_OK(validate_tree(g, delta.tree, delta.layers));
      const int net = state->add_net(delta.tree, delta.layers);
      if (net >= static_cast<int>(critical->released.size())) {
        critical->released.resize(static_cast<std::size_t>(net) + 1, 0);
      }
      return net;
    }
    case DeltaKind::kNetRemoved: {
      CPLA_CHECK(valid_net(*state, delta.net),
                 Status(StatusCode::kBadInput, "eco: removal of an unknown net"));
      demote(critical, delta.net);
      state->remove_net(delta.net);
      return delta.net;
    }
  }
  return Status(StatusCode::kBadInput, "eco: unknown delta kind");
}

}  // namespace cpla::eco
