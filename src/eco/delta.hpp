#pragma once

// Typed design deltas for the incremental ECO engine. An EcoSession (or a
// test mirroring one) applies a stream of these to an AssignState + Design
// + CriticalSet triple; each delta also yields a bounding region, which the
// session intersects with partition extents to build the dirty-set for the
// next resolve().
//
// The dirty-set is a performance hint only: correctness of cached
// partition solutions comes from the content-addressed cache key (see
// solution_cache.hpp), never from delta bookkeeping.

#include <vector>

#include "src/assign/state.hpp"
#include "src/core/critical.hpp"
#include "src/grid/design.hpp"
#include "src/route/seg_tree.hpp"
#include "src/util/status.hpp"

namespace cpla::eco {

enum class DeltaKind : int {
  kNetRerouted,         // a net's 2-D routing tree changed
  kCriticalityChanged,  // a net entered/left the released (critical) set
  kCapacityAdjusted,    // one directional edge's wire capacity changed
  kNetAdded,            // a brand-new net appeared
  kNetRemoved,          // a net was deleted (its id stays a valid empty slot)
};

const char* to_string(DeltaKind kind);

/// Half-open cell-coordinate rectangle [x0,x1) x [y0,y1).
struct Rect {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  bool empty() const { return x0 >= x1 || y0 >= y1; }
};

/// True when `r` overlaps the half-open region [px0,px1) x [py0,py1).
bool intersects(const Rect& r, int px0, int py0, int px1, int py1);

/// Bounding box of a tree's segments, half-open. Empty tree -> empty rect.
Rect tree_bbox(const route::SegTree& tree);

struct Delta {
  DeltaKind kind = DeltaKind::kNetRerouted;
  int net = -1;             // reroute / criticality / remove target
  route::SegTree tree;      // reroute / add payload
  std::vector<int> layers;  // optional explicit assignment (empty = default)
  bool released = true;     // criticality payload: promote or demote
  int layer = -1;           // capacity payload: metal layer
  int x = 0, y = 0;         // capacity payload: edge origin cell
  int cap = 0;              // capacity payload: new edge capacity

  static Delta net_rerouted(int net, route::SegTree tree, std::vector<int> layers = {});
  static Delta criticality_changed(int net, bool released);
  /// The directional edge starting at (x,y) on `layer` (horizontal layers:
  /// edge (x,y)-(x+1,y); vertical: (x,y)-(x,y+1)) gets capacity `cap`.
  static Delta capacity_adjusted(int layer, int x, int y, int cap);
  static Delta net_added(route::SegTree tree, std::vector<int> layers = {});
  static Delta net_removed(int net);
};

/// Region of the state a delta can touch, evaluated against the
/// *pre-application* state (a reroute covers the old and the new tree).
Rect bounding_region(const Delta& delta, const assign::AssignState& state);

/// Applies one delta to a design/state/critical-set triple — the single
/// shared implementation used by EcoSession::apply and by equivalence
/// tests mirroring a session onto a control state. Returns the id of the
/// affected net (the new id for kNetAdded, -1 for kCapacityAdjusted), or a
/// kBadInput status for out-of-range targets. On failure nothing was
/// mutated.
Result<int> apply_delta(const Delta& delta, grid::Design* design, assign::AssignState* state,
                        core::CriticalSet* critical);

}  // namespace cpla::eco
