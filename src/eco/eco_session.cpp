#include "src/eco/eco_session.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "src/obs/metrics.hpp"
#include "src/util/fault_inject.hpp"
#include "src/util/logging.hpp"

namespace cpla::eco {

namespace {

// Replay-safe arbiter configuration: the adaptive history would make a
// choice depend on how many solves ran before it, which a cache hit skips.
core::ArbiterOptions history_free(core::ArbiterOptions backend) {
  backend.use_history = false;
  return backend;
}

}  // namespace

EcoSession::EcoSession(grid::Design* design, assign::AssignState* state,
                       const timing::RcTable* rc, EcoOptions options)
    : design_(design),
      state_(state),
      rc_(rc),
      options_(std::move(options)),
      arbiter_(history_free(options_.flow.backend)),
      cache_(options_.cache_capacity) {
  CPLA_ASSERT(design_ != nullptr && state_ != nullptr && rc_ != nullptr);
  CPLA_ASSERT_MSG(&state_->design() == design_, "state must be built on this design");
  critical_ = core::select_critical(*state_, *rc_, options_.critical_ratio);
  tree_version_.assign(static_cast<std::size_t>(state_->num_nets()), 0);
}

Result<int> EcoSession::apply(const Delta& delta) {
  // The region is taken against the pre-application state so a reroute
  // covers the *old* tree's partitions as well as the new one's.
  const Rect region = bounding_region(delta, *state_);
  Result<int> applied = apply_delta(delta, design_, state_, &critical_);
  if (!applied.is_ok()) return applied;

  ++deltas_applied_;
  obs::metrics().counter("eco.deltas.applied").add();
  if (!region.empty()) pending_.push_back(region);

  if (delta.kind == DeltaKind::kNetRerouted || delta.kind == DeltaKind::kNetAdded ||
      delta.kind == DeltaKind::kNetRemoved) {
    const int net = applied.value();
    if (net >= 0) {
      if (net >= static_cast<int>(tree_version_.size())) {
        tree_version_.resize(static_cast<std::size_t>(net) + 1, 0);
      }
      tree_version_[net] = next_version_++;
      timing_cache_.invalidate(net);
    }
    // A tree changed shape (or the net set changed): the attached STA
    // graph's node/edge structure is stale, not just its delays.
    if (sta_graph_ != nullptr) sta_graph_->invalidate_topology();
  }
  return applied;
}

Result<std::vector<int>> EcoSession::apply_batch(const std::vector<Delta>& batch) {
  // Undo entries accumulate as deltas apply; on a failure they run in
  // reverse and the critical set snapshot is restored wholesale (promote/
  // demote change the *order* of critical_.nets, which matters for flow
  // determinism, so membership-level undo would not be exact). Session
  // bookkeeping (regions, version bumps, cache invalidations, counters) is
  // deferred until the whole batch has applied.
  const core::CriticalSet critical_snapshot = critical_;
  std::vector<std::function<void()>> undo;
  undo.reserve(batch.size());

  std::vector<int> applied_nets;
  std::vector<Rect> regions;
  std::vector<int> retree_nets;  // nets needing a version bump on commit
  applied_nets.reserve(batch.size());

  auto rollback = [&]() {
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) (*it)();
    critical_ = critical_snapshot;
  };

  for (const Delta& delta : batch) {
    const Rect region = bounding_region(delta, *state_);
    // Capture state-level undo *before* the mutation. Criticality changes
    // are covered by the critical-set snapshot alone.
    const std::size_t undo_before = undo.size();
    switch (delta.kind) {
      case DeltaKind::kNetRerouted:
      case DeltaKind::kNetRemoved:
        if (delta.net >= 0 && delta.net < state_->num_nets()) {
          undo.push_back([this, net = delta.net, tree = state_->tree(delta.net),
                          layers = state_->layers(delta.net)]() mutable {
            state_->replace_tree(net, std::move(tree), std::move(layers));
          });
        }
        break;
      case DeltaKind::kCapacityAdjusted: {
        const auto& g = design_->grid;
        if (delta.layer >= 0 && delta.layer < g.num_layers()) {
          const bool horizontal = g.is_horizontal(delta.layer);
          const bool in_range =
              horizontal ? (delta.x >= 0 && delta.x < g.xsize() - 1 && delta.y >= 0 &&
                            delta.y < g.ysize())
                         : (delta.x >= 0 && delta.x < g.xsize() && delta.y >= 0 &&
                            delta.y < g.ysize() - 1);
          if (in_range) {
            const int edge =
                horizontal ? g.h_edge_id(delta.x, delta.y) : g.v_edge_id(delta.x, delta.y);
            undo.push_back([this, layer = delta.layer, edge,
                            cap = g.edge_capacity(delta.layer, edge)]() {
              design_->grid.set_edge_capacity(layer, edge, cap);
            });
          }
        }
        break;
      }
      case DeltaKind::kNetAdded:
      case DeltaKind::kCriticalityChanged:
        break;  // add is undone via pop_net below; criticality via snapshot
    }

    Result<int> applied = apply_delta(delta, design_, state_, &critical_);
    if (!applied.is_ok()) {
      // The failed delta itself mutated nothing (apply_delta validates
      // first): drop *its* pre-captured undo — if it pushed one at all (an
      // out-of-range target skips the capture) — then unwind the earlier
      // ones.
      undo.resize(undo_before);
      rollback();
      obs::metrics().counter("eco.batch.rollbacks").add();
      return applied.status();
    }
    if (delta.kind == DeltaKind::kNetAdded) {
      undo.push_back([this, net = applied.value()]() { state_->pop_net(net); });
    }
    if (delta.kind == DeltaKind::kNetRerouted || delta.kind == DeltaKind::kNetAdded ||
        delta.kind == DeltaKind::kNetRemoved) {
      retree_nets.push_back(applied.value());
    }
    applied_nets.push_back(applied.value());
    if (!region.empty()) regions.push_back(region);
  }

  // Commit: only now does the session bookkeeping observe the batch.
  for (int net : retree_nets) {
    if (net < 0) continue;
    if (net >= static_cast<int>(tree_version_.size())) {
      tree_version_.resize(static_cast<std::size_t>(net) + 1, 0);
    }
    tree_version_[net] = next_version_++;
    timing_cache_.invalidate(net);
  }
  if (!retree_nets.empty() && sta_graph_ != nullptr) sta_graph_->invalidate_topology();
  for (const Rect& r : regions) pending_.push_back(r);
  deltas_applied_ += static_cast<long>(batch.size());
  obs::metrics().counter("eco.deltas.applied").add(static_cast<long>(batch.size()));
  return applied_nets;
}

core::OptimizeResult EcoSession::resolve(const ResolveOptions& request) {
  ++resolves_;
  obs::metrics().counter("eco.resolve.calls").add();
  degraded_.store(false, std::memory_order_relaxed);
  cache_.clear_poison();

  core::CplaOptions opts = options_.flow;
  opts.timing_cache = &timing_cache_;
  opts.partition_solver = [this](const core::PartitionProblem& problem,
                                 const assign::AssignState& state, core::GuardStats* stats) {
    return solve_partition(problem, state, stats);
  };
  opts.partition_batch_solver = [this](const std::vector<const core::PartitionProblem*>& problems,
                                       const assign::AssignState& state,
                                       core::GuardStats* stats) {
    return solve_partition_batch(problems, state, stats);
  };
  if (request.deadline_ms > 0.0) opts.guard.deadline_ms = request.deadline_ms;
  opts.cancel = request.cancel;

  // Entry snapshot: a degraded run restores it before full_resolve() so the
  // fallback optimizes the same input state a fresh core::optimize() would
  // see — resolve() stays bit-identical to the stock path even under
  // injected faults (no double optimization).
  std::vector<std::vector<int>> entry_layers(static_cast<std::size_t>(state_->num_nets()));
  for (int net = 0; net < state_->num_nets(); ++net) entry_layers[net] = state_->layers(net);

  core::OptimizeResult out = core::optimize(state_, *rc_, critical_, opts);
  if (out.result.cancelled) {
    // The caller owns the decision to keep or roll back a partial run;
    // pending regions stay queued so the next resolve re-covers them.
    obs::metrics().counter("eco.resolve.cancelled").add();
    retime_sta();
    return out;
  }
  if (degraded_.load(std::memory_order_relaxed) || cache_.poisoned()) {
    // A fault fired inside the incremental machinery. The run above was
    // still valid (degraded partitions fell back to plain guarded solves,
    // and optimize() enforces never-worse), but redo it on the stock path
    // from the entry state so the final answer owes nothing to the cache.
    ++fallbacks_;
    obs::metrics().counter("eco.resolve.fallbacks").add();
    LOG_WARN("eco: resolve degraded, falling back to full_resolve");
    for (int net = 0; net < state_->num_nets(); ++net) {
      if (state_->layers(net) != entry_layers[net]) {
        state_->set_layers(net, std::move(entry_layers[net]));
      }
    }
    return full_resolve();
  }
  pending_.clear();
  retime_sta();
  return out;
}

core::OptimizeResult EcoSession::full_resolve() {
  ++full_resolves_;
  obs::metrics().counter("eco.resolve.full").add();
  // Same history-free arbiter config the cached path uses: the flow's
  // adaptive history would let backend choices depend on solve *order*,
  // and resolve() must stay bit-identical to this baseline.
  core::CplaOptions opts = options_.flow;
  opts.backend = history_free(opts.backend);
  core::OptimizeResult out = core::optimize(state_, *rc_, critical_, opts);
  pending_.clear();
  retime_sta();
  return out;
}

void EcoSession::retime_sta() {
  if (sta_graph_ == nullptr || !sta_graph_->built()) return;
  sta_graph_->update(*state_);
  obs::metrics().counter("sta.eco.retimes").add();
}

void EcoSession::restore_critical(core::CriticalSet critical) {
  critical_ = std::move(critical);
  if (critical_.released.size() < static_cast<std::size_t>(state_->num_nets())) {
    critical_.released.resize(static_cast<std::size_t>(state_->num_nets()), 0);
  }
  tree_version_.resize(static_cast<std::size_t>(state_->num_nets()), 0);
  for (std::uint64_t& v : tree_version_) v = next_version_++;
  pending_.clear();
  timing_cache_.clear();
  cache_.clear();
  // The design/state were swapped out from under the session: any attached
  // graph is structurally stale; it rebuilds on its next update().
  if (sta_graph_ != nullptr) sta_graph_->invalidate_topology();
}

EcoStats EcoSession::stats() const {
  EcoStats s;
  s.deltas_applied = deltas_applied_;
  s.resolves = resolves_;
  s.full_resolves = full_resolves_;
  s.fallbacks = fallbacks_;
  s.dirty_partitions = dirty_partitions_.load(std::memory_order_relaxed);
  s.clean_partitions = clean_partitions_.load(std::memory_order_relaxed);
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  return s;
}

bool EcoSession::is_dirty(const core::PartitionProblem& problem) const {
  for (const Rect& r : pending_) {
    if (intersects(r, problem.region_x0, problem.region_y0, problem.region_x1,
                   problem.region_y1)) {
      return true;
    }
  }
  return false;
}

namespace {

/// Defensive validation of a cached pick against the freshly built problem
/// (a hit already proved key equality, so this only guards against cache
/// corruption): well-formed indices and capacity-row feasibility.
bool replay_valid(const core::PartitionProblem& problem, const core::GuardedSolve& solve) {
  if (solve.result.pick.size() != problem.vars.size()) return false;
  for (std::size_t i = 0; i < problem.vars.size(); ++i) {
    const int k = solve.result.pick[i];
    if (k < 0 || k >= static_cast<int>(problem.vars[i].layers.size())) return false;
  }
  return rows_feasible(problem, solve.result.pick);
}

}  // namespace

core::Engine EcoSession::chosen_engine(const core::PartitionProblem& problem) const {
  return arbiter_.choose(problem, options_.flow.guard, options_.flow.engine);
}

core::GuardedSolve EcoSession::solve_partition(const core::PartitionProblem& problem,
                                               const assign::AssignState& state,
                                               core::GuardStats* stats) {
  const core::CplaOptions& f = options_.flow;
  auto solve_fresh = [&]() {
    return core::guarded_solve(problem, state, chosen_engine(problem), f.sdp, f.ilp, f.guard,
                               stats);
  };

  if (CPLA_FAULT_POINT("eco.resolve.partition")) {
    degraded_.store(true, std::memory_order_relaxed);
    return solve_fresh();
  }
  // Once degraded, stop consulting the cache for the rest of this resolve
  // (the whole run will be redone by full_resolve anyway).
  if (degraded_.load(std::memory_order_relaxed)) return solve_fresh();

  if (is_dirty(problem)) {
    dirty_partitions_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("eco.partitions.dirty").add();
    const CacheKey key = build_key(problem, state);
    const core::GuardedSolve solved = solve_fresh();
    cache_.insert(key, solved);
    return solved;
  }

  clean_partitions_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics().counter("eco.partitions.clean").add();
  const CacheKey key = build_key(problem, state);
  core::GuardedSolve cached;
  if (cache_.lookup(key, &cached)) {
    if (replay_valid(problem, cached)) {
      if (stats != nullptr) {
        ++stats->solves;
        ++stats->tier_used[static_cast<int>(cached.tier)];
      }
      return cached;
    }
    // Corrupt entry: treat as a miss and overwrite below.
    obs::metrics().counter("eco.cache.replay_rejects").add();
  }
  if (cache_.poisoned()) degraded_.store(true, std::memory_order_relaxed);
  const core::GuardedSolve solved = solve_fresh();
  cache_.insert(key, solved);
  return solved;
}

std::vector<core::GuardedSolve> EcoSession::solve_partition_batch(
    const std::vector<const core::PartitionProblem*>& problems, const assign::AssignState& state,
    core::GuardStats* stats) {
  const core::CplaOptions& f = options_.flow;
  const std::size_t n = problems.size();
  std::vector<core::GuardedSolve> out(n);

  // Classify every problem exactly as the sequential per-partition path
  // would (including degradation set by an earlier problem's fault carrying
  // forward), serving cache hits inline and queueing everything else.
  std::vector<char> insertable(n, 0);
  std::vector<CacheKey> keys(n);
  std::vector<const core::PartitionProblem*> misses;
  std::vector<std::size_t> miss_owner;
  misses.reserve(n);
  miss_owner.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const core::PartitionProblem& problem = *problems[i];
    if (CPLA_FAULT_POINT("eco.resolve.partition")) {
      degraded_.store(true, std::memory_order_relaxed);
      misses.push_back(&problem);
      miss_owner.push_back(i);
      continue;
    }
    if (degraded_.load(std::memory_order_relaxed)) {
      misses.push_back(&problem);
      miss_owner.push_back(i);
      continue;
    }
    if (is_dirty(problem)) {
      dirty_partitions_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter("eco.partitions.dirty").add();
      keys[i] = build_key(problem, state);
      insertable[i] = 1;
      misses.push_back(&problem);
      miss_owner.push_back(i);
      continue;
    }
    clean_partitions_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("eco.partitions.clean").add();
    keys[i] = build_key(problem, state);
    core::GuardedSolve cached;
    if (cache_.lookup(keys[i], &cached)) {
      if (replay_valid(problem, cached)) {
        if (stats != nullptr) {
          ++stats->solves;
          ++stats->tier_used[static_cast<int>(cached.tier)];
        }
        out[i] = std::move(cached);
        continue;
      }
      obs::metrics().counter("eco.cache.replay_rejects").add();
    }
    if (cache_.poisoned()) degraded_.store(true, std::memory_order_relaxed);
    insertable[i] = 1;
    misses.push_back(&problem);
    miss_owner.push_back(i);
  }

  if (!misses.empty()) {
    // Keys were built pre-solve, but the solve phase never mutates the
    // state, so they equal the keys the sequential path would compute.
    // The arbiter may route individual misses to the Lagrangian engine; a
    // batch call carries one engine, so lagr-chosen misses solve through
    // the scalar guarded path and only the base-engine misses are batched.
    // (chosen_engine is history-free, so the split is a pure function of
    // the problems — identical under replay and across batch shapes.)
    std::vector<core::GuardedSolve> solved(misses.size());
    std::vector<const core::PartitionProblem*> batched;
    std::vector<std::size_t> batched_owner;
    batched.reserve(misses.size());
    batched_owner.reserve(misses.size());
    for (std::size_t m = 0; m < misses.size(); ++m) {
      const core::Engine eng = chosen_engine(*misses[m]);
      if (eng == f.engine) {
        batched.push_back(misses[m]);
        batched_owner.push_back(m);
      } else {
        solved[m] = core::guarded_solve(*misses[m], state, eng, f.sdp, f.ilp, f.guard, stats);
      }
    }
    if (!batched.empty()) {
      std::vector<core::GuardedSolve> batch_solved = core::guarded_solve_batch(
          batched, state, f.engine, f.sdp, f.ilp, f.guard, f.batch.limits, stats);
      for (std::size_t b = 0; b < batched.size(); ++b) {
        solved[batched_owner[b]] = std::move(batch_solved[b]);
      }
    }
    for (std::size_t m = 0; m < misses.size(); ++m) {
      const std::size_t i = miss_owner[m];
      if (insertable[i] != 0) cache_.insert(keys[i], solved[m]);
      out[i] = std::move(solved[m]);
    }
  }
  return out;
}

CacheKey EcoSession::build_key(const core::PartitionProblem& problem,
                               const assign::AssignState& state) const {
  CacheKey key;
  const auto& g = state.design().grid;

  // Session salt: solver selection and grid shape. (Solver *options* are
  // fixed for the session's lifetime, so they need no words here.) The
  // arbiter's per-problem choice is part of the key: a pick produced by one
  // engine must never replay for a config that would route elsewhere.
  key.push_int(static_cast<int>(options_.flow.engine));
  key.push_int(static_cast<int>(options_.flow.backend.mode));
  key.push_int(static_cast<int>(chosen_engine(problem)));
  key.push_int(g.num_layers());
  key.push_int(state.nv());

  // The built problem: everything the engines read from it.
  key.push_int(problem.region_x0);
  key.push_int(problem.region_y0);
  key.push_int(problem.region_x1);
  key.push_int(problem.region_y1);
  key.push_int(static_cast<long long>(problem.vars.size()));
  key.push_int(static_cast<long long>(problem.pairs.size()));
  key.push_int(static_cast<long long>(problem.cap_rows.size()));
  for (const core::VarGroup& v : problem.vars) {
    key.push_int(v.net);
    key.push_int(v.seg);
    key.push_int(v.current_layer);
    key.push_double(v.weight);
    key.push_int(static_cast<long long>(v.layers.size()));
    for (int l : v.layers) key.push_int(l);
    for (double c : v.cost) key.push_double(c);
  }
  for (const core::VarPair& p : problem.pairs) {
    key.push_int(p.child);
    key.push_int(p.parent);
    key.push_int(p.junction.x);
    key.push_int(p.junction.y);
    key.push_double(p.scale);
    key.push_int(static_cast<long long>(p.load_ratio.size()));
    for (double r : p.load_ratio) key.push_double(r);
  }
  for (const core::CapRow& row : problem.cap_rows) {
    key.push_int(row.layer);
    key.push_int(row.edge);
    key.push_int(row.cap_remaining);
    key.push_int(static_cast<long long>(row.members.size()));
    for (int m : row.members) key.push_int(m);
  }

  // Live-state reads beyond the problem. (a) The SDP post-mapping walks
  // wire usage/capacity along each var's edges for every allowed layer.
  for (const core::VarGroup& v : problem.vars) {
    state.for_each_edge(v.net, v.seg, [&](int e) {
      for (int l : v.layers) {
        key.push_int(state.wire_usage(l, e));
        key.push_int(state.wire_cap(l, e));
      }
    });
  }
  // (b) The ILP tier reads via load/capacity at pair-junction cells on the
  // intermediate layers.
  for (const core::VarPair& p : problem.pairs) {
    const int cell = g.cell_id(p.junction.x, p.junction.y);
    for (int l = 1; l + 1 < g.num_layers(); ++l) {
      key.push_int(state.via_load(l, cell));
      key.push_int(state.via_cap(l, cell));
    }
  }
  // (c) The net-DP tier reads the partition nets' trees and *full* layer
  // vectors (segments outside the region included).
  std::vector<int> nets;
  nets.reserve(problem.vars.size());
  for (const core::VarGroup& v : problem.vars) nets.push_back(v.net);
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  for (int net : nets) {
    key.push_int(net);
    key.push(tree_version_[static_cast<std::size_t>(net)]);
    const std::vector<int>& layers = state.layers(net);
    key.push_int(static_cast<long long>(layers.size()));
    for (int l : layers) key.push_int(l);
  }

  key.finalize();
  return key;
}

}  // namespace cpla::eco
