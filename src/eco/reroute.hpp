#pragma once

// Deterministic reroute helpers for ECO scripts, tests, and benches: build
// the payload trees for NetRerouted / NetAdded deltas without dragging the
// full 2-D router into an edit loop.

#include "src/grid/grid_graph.hpp"
#include "src/route/seg_tree.hpp"
#include "src/util/status.hpp"

namespace cpla::eco {

/// Builds a minimal one- or two-segment tree from `a` (the driver) to `b`.
/// A straight span yields a single segment; an L yields horizontal-first
/// by default, vertical-first when `vertical_first` is set. `a == b`
/// yields an empty tree (sink attached at the root).
route::SegTree make_two_pin_tree(grid::XY a, grid::XY b, int root_pin_layer = 0,
                                 int sink_pin_layer = 0, bool vertical_first = false);

/// The canonical small ECO edit: flips a two-segment L through its other
/// corner (pins fixed, wirelength preserved). Fails with kBadInput when
/// the tree is not a strict two-segment, single-sink L.
Result<route::SegTree> alternate_route(const route::SegTree& tree);

}  // namespace cpla::eco
