#pragma once

// Deterministic ECO edit-script generation: a seeded mix of L-flip
// reroutes of released nets, capacity nudges under released wire,
// criticality toggles, and net add/remove — the synthetic stand-in for
// the edit stream a timing-closure loop would feed an EcoSession. Shared
// by the equivalence tests, bench/eco_incremental, and the CLI demo so
// they all exercise the same distribution.

#include <cstdint>
#include <vector>

#include "src/assign/state.hpp"
#include "src/core/critical.hpp"
#include "src/eco/delta.hpp"

namespace cpla::eco {

struct EditScriptOptions {
  int count = 50;
  std::uint64_t seed = 1;
};

/// Builds `count` deltas against `state`/`critical` *as the stream will
/// have mutated them*: later entries account for the trees, capacities,
/// and criticality flips earlier entries introduce (tracked internally —
/// neither argument is modified). Every delta is valid to apply in order.
std::vector<Delta> make_edit_script(const assign::AssignState& state,
                                    const core::CriticalSet& critical,
                                    const EditScriptOptions& options);

}  // namespace cpla::eco
