#include "src/eco/reroute.hpp"

namespace cpla::eco {

route::SegTree make_two_pin_tree(grid::XY a, grid::XY b, int root_pin_layer,
                                 int sink_pin_layer, bool vertical_first) {
  route::SegTree tree;
  tree.root = a;
  tree.root_pin_layer = root_pin_layer;

  route::SinkAttach sink;
  sink.pin_index = 1;
  sink.pin_layer = sink_pin_layer;

  auto add_seg = [&tree](grid::XY from, grid::XY to, bool horizontal, int parent) {
    route::Segment s;
    s.id = static_cast<int>(tree.segs.size());
    s.a = from;
    s.b = to;
    s.horizontal = horizontal;
    s.parent = parent;
    if (parent >= 0) tree.segs[parent].children.push_back(s.id);
    tree.segs.push_back(std::move(s));
    return tree.segs.back().id;
  };

  if (a == b) {
    sink.seg_id = -1;  // same cell as the driver
    tree.sinks.push_back(sink);
    return tree;
  }
  if (a.y == b.y) {
    sink.seg_id = add_seg(a, b, /*horizontal=*/true, -1);
  } else if (a.x == b.x) {
    sink.seg_id = add_seg(a, b, /*horizontal=*/false, -1);
  } else if (vertical_first) {
    const grid::XY corner{a.x, b.y};
    const int first = add_seg(a, corner, /*horizontal=*/false, -1);
    sink.seg_id = add_seg(corner, b, /*horizontal=*/true, first);
  } else {
    const grid::XY corner{b.x, a.y};
    const int first = add_seg(a, corner, /*horizontal=*/true, -1);
    sink.seg_id = add_seg(corner, b, /*horizontal=*/false, first);
  }
  tree.sinks.push_back(sink);
  return tree;
}

Result<route::SegTree> alternate_route(const route::SegTree& tree) {
  CPLA_CHECK(tree.segs.size() == 2 && tree.sinks.size() == 1,
             Status(StatusCode::kBadInput, "eco: not a two-segment single-sink tree"));
  const route::Segment& first = tree.segs[0];
  const route::Segment& second = tree.segs[1];
  CPLA_CHECK(first.parent == -1 && second.parent == 0 && tree.sinks[0].seg_id == 1,
             Status(StatusCode::kBadInput, "eco: unexpected tree topology"));
  const grid::XY a = first.a;
  const grid::XY b = second.b;
  CPLA_CHECK(a.x != b.x && a.y != b.y,
             Status(StatusCode::kBadInput, "eco: degenerate L cannot be flipped"));

  route::SegTree flipped =
      make_two_pin_tree(a, b, tree.root_pin_layer, tree.sinks[0].pin_layer,
                        /*vertical_first=*/first.horizontal);
  flipped.net_id = tree.net_id;
  flipped.sinks[0].pin_index = tree.sinks[0].pin_index;
  return flipped;
}

}  // namespace cpla::eco
