#pragma once

// Content-addressed LRU cache of guarded partition solutions. The key is
// the *complete* serialized input of a partition solve: the built
// PartitionProblem plus every live-state value the solver tiers read
// beyond it (wire usage/capacity along each var's edges per allowed layer,
// via load/capacity at pair junctions, the partition nets' full layer
// vectors and tree versions — see EcoSession::build_key). Because solvers
// are deterministic functions of exactly that input, a hit replays the
// bit-identical GuardedSolve a fresh solve would produce.
//
// Lookups byte-compare the full key (the 64-bit hash only picks the
// bucket), so a hash collision degrades to a miss, never a wrong answer.
// Entries cannot go stale — a state change alters the key, and the old
// entry simply stops being found until LRU eviction reclaims it.
//
// Thread-safe: the flow's OpenMP solve phase looks up and inserts
// concurrently; all map/list state sits behind one mutex (the guarded
// solve dwarfs the critical section). Covered by the tsan ctest label.

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/solve_guard.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace cpla::eco {

struct CacheKey {
  std::vector<std::uint64_t> words;
  std::uint64_t hash = 0;  // FNV-1a over words; call finalize() after building

  void push(std::uint64_t w) { words.push_back(w); }
  void push_int(long long v) { words.push_back(static_cast<std::uint64_t>(v)); }
  void push_double(double d);
  void finalize();

  friend bool operator==(const CacheKey& a, const CacheKey& b) { return a.words == b.words; }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const { return static_cast<std::size_t>(k.hash); }
};

class PartitionSolutionCache {
 public:
  explicit PartitionSolutionCache(std::size_t capacity = 4096);

  /// True on a hit (copies the cached solution into `*out` and refreshes
  /// LRU order). A fired `eco.cache.lookup` fault point poisons the cache
  /// and reports a miss — the session then degrades to full_resolve().
  bool lookup(const CacheKey& key, core::GuardedSolve* out);

  /// Inserts (or refreshes) a solution, evicting least-recently-used
  /// entries beyond capacity.
  void insert(const CacheKey& key, const core::GuardedSolve& solve);

  void clear();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  bool poisoned() const { return poisoned_.load(std::memory_order_relaxed); }
  void clear_poison() { poisoned_.store(false, std::memory_order_relaxed); }

  long hits() const { return hits_.load(std::memory_order_relaxed); }
  long misses() const { return misses_.load(std::memory_order_relaxed); }
  long evictions() const { return evictions_.load(std::memory_order_relaxed); }
  long insertions() const { return insertions_.load(std::memory_order_relaxed); }

 private:
  using LruList = std::list<std::pair<CacheKey, core::GuardedSolve>>;

  const std::size_t capacity_;
  mutable Mutex mu_;
  LruList lru_ CPLA_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> map_ CPLA_GUARDED_BY(mu_);
  std::atomic<bool> poisoned_{false};
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> evictions_{0};
  std::atomic<long> insertions_{0};
};

}  // namespace cpla::eco
