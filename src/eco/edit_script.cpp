#include "src/eco/edit_script.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "src/eco/reroute.hpp"
#include "src/util/rng.hpp"

namespace cpla::eco {

namespace {

/// Shadow of the state the generated stream will have produced so far:
/// enough to keep every generated delta valid without touching the real
/// AssignState.
struct Shadow {
  const assign::AssignState* state;
  std::map<int, route::SegTree> trees;     // overrides for rerouted nets
  std::map<std::tuple<int, int, int>, int> caps;  // (layer,x,y) -> last cap
  std::vector<char> released;
  std::vector<int> released_nets;
  std::vector<int> added_nets;  // ids we created and may later remove
  int next_net_id;

  const route::SegTree& tree(int net) const {
    auto it = trees.find(net);
    return it != trees.end() ? it->second : state->tree(net);
  }
};

}  // namespace

std::vector<Delta> make_edit_script(const assign::AssignState& state,
                                    const core::CriticalSet& critical,
                                    const EditScriptOptions& options) {
  Rng rng(options.seed * 0x9e3779b97f4a7c15ull + 0xd1b54a32d192ed03ull);
  const auto& g = state.design().grid;

  Shadow shadow;
  shadow.state = &state;
  shadow.released = critical.released;
  shadow.released.resize(static_cast<std::size_t>(state.num_nets()), 0);
  shadow.released_nets = critical.nets;
  shadow.next_net_id = state.num_nets();

  std::vector<Delta> script;
  script.reserve(static_cast<std::size_t>(options.count));

  // An L-flip reroute of a released net: the bread-and-butter ECO edit.
  auto try_reroute = [&]() -> bool {
    if (shadow.released_nets.empty()) return false;
    const std::size_t start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(shadow.released_nets.size()) - 1));
    for (std::size_t off = 0; off < shadow.released_nets.size(); ++off) {
      const int net = shadow.released_nets[(start + off) % shadow.released_nets.size()];
      Result<route::SegTree> flipped = alternate_route(shadow.tree(net));
      if (!flipped.is_ok()) continue;
      shadow.trees[net] = flipped.value();
      script.push_back(Delta::net_rerouted(net, flipped.take()));
      return true;
    }
    return false;
  };

  // Shrink or restore the wire capacity of an edge under released wire.
  auto try_capacity = [&]() -> bool {
    if (shadow.released_nets.empty()) return false;
    const int net = shadow.released_nets[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(shadow.released_nets.size()) - 1))];
    const route::SegTree& tree = shadow.tree(net);
    if (tree.segs.empty()) return false;
    const route::Segment& seg =
        tree.segs[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(tree.segs.size()) - 1))];
    const std::vector<int>& allowed = state.allowed_layers(seg.horizontal);
    const int layer = allowed[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(allowed.size()) - 1))];
    int x = std::min(seg.a.x, seg.b.x);
    int y = std::min(seg.a.y, seg.b.y);
    // Clamp the edge origin into range for the layer's direction.
    if (g.is_horizontal(layer)) {
      x = std::min(x, g.xsize() - 2);
    } else {
      y = std::min(y, g.ysize() - 2);
    }
    if (x < 0 || y < 0) return false;
    const auto key = std::make_tuple(layer, x, y);
    auto it = shadow.caps.find(key);
    const int edge = g.is_horizontal(layer) ? g.h_edge_id(x, y) : g.v_edge_id(x, y);
    const int current = it != shadow.caps.end() ? it->second : g.edge_capacity(layer, edge);
    const int next = rng.chance(0.5) ? std::max(1, current - 1) : current + 1;
    shadow.caps[key] = next;
    script.push_back(Delta::capacity_adjusted(layer, x, y, next));
    return true;
  };

  // Demote a released net or promote an unreleased one (rare: it reshapes
  // the whole problem, which is exactly what should stress the cache).
  auto try_criticality = [&]() -> bool {
    if (rng.chance(0.5) && shadow.released_nets.size() > 2) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(shadow.released_nets.size()) - 1));
      const int net = shadow.released_nets[i];
      shadow.released[static_cast<std::size_t>(net)] = 0;
      shadow.released_nets.erase(shadow.released_nets.begin() + static_cast<std::ptrdiff_t>(i));
      script.push_back(Delta::criticality_changed(net, false));
      return true;
    }
    const int start = static_cast<int>(rng.uniform_int(0, state.num_nets() - 1));
    for (int off = 0; off < state.num_nets(); ++off) {
      const int net = (start + off) % state.num_nets();
      if (shadow.released[static_cast<std::size_t>(net)]) continue;
      if (shadow.tree(net).segs.empty()) continue;
      shadow.released[static_cast<std::size_t>(net)] = 1;
      shadow.released_nets.push_back(net);
      script.push_back(Delta::criticality_changed(net, true));
      return true;
    }
    return false;
  };

  auto try_add = [&]() -> bool {
    const grid::XY a{static_cast<int>(rng.uniform_int(0, g.xsize() - 1)),
                     static_cast<int>(rng.uniform_int(0, g.ysize() - 1))};
    grid::XY b{static_cast<int>(rng.uniform_int(0, g.xsize() - 1)),
               static_cast<int>(rng.uniform_int(0, g.ysize() - 1))};
    if (a == b) b.x = (b.x + 1) % g.xsize();
    const int net = shadow.next_net_id++;
    shadow.added_nets.push_back(net);
    if (static_cast<int>(shadow.released.size()) <= net) {
      shadow.released.resize(static_cast<std::size_t>(net) + 1, 0);
    }
    script.push_back(Delta::net_added(make_two_pin_tree(a, b)));
    return true;
  };

  auto try_remove = [&]() -> bool {
    if (shadow.added_nets.empty()) return false;
    const int net = shadow.added_nets.back();
    shadow.added_nets.pop_back();
    shadow.trees.erase(net);
    script.push_back(Delta::net_removed(net));
    return true;
  };

  int attempts = 0;
  while (static_cast<int>(script.size()) < options.count && attempts < options.count * 20) {
    ++attempts;
    switch (rng.uniform_int(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3:
        try_reroute();
        break;
      case 4:
      case 5:
      case 6:
        try_capacity();
        break;
      case 7:
        try_criticality();
        break;
      case 8:
        try_add();
        break;
      default:
        if (!try_remove()) try_add();
        break;
    }
  }
  return script;
}

}  // namespace cpla::eco
