#include "src/eco/solution_cache.hpp"

#include <bit>

#include "src/obs/metrics.hpp"
#include "src/util/fault_inject.hpp"

namespace cpla::eco {

void CacheKey::push_double(double d) { words.push_back(std::bit_cast<std::uint64_t>(d)); }

void CacheKey::finalize() {
  // FNV-1a over the word stream (bucket selection only; equality always
  // compares the full word vector).
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : words) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (w >> shift) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  hash = h;
}

PartitionSolutionCache::PartitionSolutionCache(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

bool PartitionSolutionCache::lookup(const CacheKey& key, core::GuardedSolve* out) {
  if (CPLA_FAULT_POINT("eco.cache.lookup")) {
    poisoned_.store(true, std::memory_order_relaxed);
    obs::metrics().counter("eco.cache.lookup_failures").add();
    return false;
  }
  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("eco.cache.misses").add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics().counter("eco.cache.hits").add();
  return true;
}

void PartitionSolutionCache::insert(const CacheKey& key, const core::GuardedSolve& solve) {
  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = solve;
    return;
  }
  lru_.emplace_front(key, solve);
  map_.emplace(key, lru_.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics().counter("eco.cache.insertions").add();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("eco.cache.evictions").add();
  }
  obs::metrics().gauge("eco.cache.entries").set(static_cast<double>(map_.size()));
}

void PartitionSolutionCache::clear() {
  MutexLock lock(mu_);
  lru_.clear();
  map_.clear();
  obs::metrics().gauge("eco.cache.entries").set(0.0);
}

std::size_t PartitionSolutionCache::size() const {
  MutexLock lock(mu_);
  return map_.size();
}

}  // namespace cpla::eco
