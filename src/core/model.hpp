#pragma once

// The per-partition optimization model shared by the SDP and ILP engines.
// It is the data of formulation (4): released segments with their allowed
// layers and linear timing costs ts(i,j) (including vias to *fixed*
// neighbors, sink/source pin vias, and via-capacity penalties), quadratic
// via couplings tv(i,j,p,q) between released segment pairs, and the pruned
// edge-capacity rows (4c). Downstream capacitances are frozen at their
// current values during a solve (recomputed between flow rounds), exactly
// as the paper's iterative scheme does.

#include <unordered_map>
#include <vector>

#include "src/assign/state.hpp"
#include "src/core/partition.hpp"
#include "src/timing/elmore.hpp"

namespace cpla::core {

struct ModelOptions {
  double branch_weight = 0.3;       // weight floor for off-critical-path segments
  double via_penalty_scale = 40.0;  // lambda scale for via-site congestion
  double alpha = 2000.0;            // ILP relaxation weight for Vo (Sec 3.1)
  // Exponent of the global net-criticality factor (net Tcp / worst released
  // Tcp)^gamma multiplied into segment weights. Problem 1 minimizes the
  // *maximum* path timing; this makes the globally-worst nets win capacity
  // races against faster released nets. 0 disables it.
  double max_focus_gamma = 2.0;

  // --- Ablation switches (see bench/ablation_cpla) -----------------------
  bool polish = true;           // coordinate-descent polish after rounding
  bool incumbent_guard = true;  // never commit a model-objective regression
  bool rlt_rows = true;         // RLT product rows in the SDP relaxation
};

struct VarGroup {
  int net = -1;
  int seg = -1;
  int current_layer = -1;
  double weight = 1.0;
  std::vector<int> layers;   // allowed layers (direction-matching, capacity-feasible)
  std::vector<double> cost;  // linear cost per allowed layer
};

struct VarPair {
  int child = -1;   // index into PartitionProblem::vars
  int parent = -1;  // index into vars
  grid::XY junction;
  double scale = 0.0;              // weight * min(Cd_child, Cd_parent)
  std::vector<double> load_ratio;  // per layer: via-site load / capacity at the junction
};

struct CapRow {
  int layer = -1;
  int edge = -1;
  int cap_remaining = 0;
  std::vector<int> members;  // var indices that cross the edge and may pick `layer`
};

struct PartitionProblem {
  std::vector<VarGroup> vars;
  std::vector<VarPair> pairs;
  std::vector<CapRow> cap_rows;
  const timing::RcTable* rc = nullptr;
  ModelOptions options;
  // Extent of the partition region the problem was built from, half-open
  // [x0,x1) x [y0,y1). The ECO dirty-set test intersects design-delta
  // bounding boxes with these.
  int region_x0 = 0, region_y0 = 0, region_x1 = 0, region_y1 = 0;

  /// Quadratic via cost tv for a pair when child sits on lc and parent on
  /// lp: via-stack resistance * frozen downstream cap * weight, plus the
  /// congestion penalty lambda (existing via load / capacity, summed over
  /// the intermediate layers), mirroring Section 3.3.
  double pair_cost(const VarPair& pair, int lp, int lc) const;

  /// Objective value of a complete choice (index per var into its layers).
  double evaluate(const std::vector<int>& pick) const;
};

/// True if `pick` keeps every capacity row within its remaining budget.
bool rows_feasible(const PartitionProblem& problem, const std::vector<int>& pick);

/// Coordinate-descent polish of an integral pick on the exact model
/// objective, staying inside the capacity rows. Shared by the SDP
/// post-mapping stage and the ILP engine (removes rounding/truncation
/// noise).
void polish_pick(const PartitionProblem& problem, std::vector<int>* pick);

/// Builds the model for one partition region. `timings` must hold a
/// NetTiming entry for every net with a segment in the region.
PartitionProblem build_partition_problem(
    const assign::AssignState& state, const timing::RcTable& rc,
    const std::unordered_map<int, timing::NetTiming>& timings, const PartitionRegion& region,
    const ModelOptions& options);

}  // namespace cpla::core
