#pragma once

// SDP relaxation of the partition model (Section 3.3) plus the
// post-mapping algorithm (Section 3.4, Alg. 1).
//
// The binary quadratic program is lifted to Y = [[1, x'],[x, X]] >= 0 with
//   Y_kk = Y_0k               (x^2 = x)
//   sum_{j in layers(i)} x_ij = 1
//   sum_{i on e} x_ij + s = cap_e(j)   (LP-block slack, rows pre-pruned)
//   Y_kl >= 0, Y_kl >= x_k + x_l - 1   (RLT lower bounds on via products)
// with segment costs on the diagonal and via costs tv(i,j,p,q) on the
// off-diagonal products — the T matrix of Eqn (6). Via capacity enters the
// objective as the lambda penalty (the paper's choice for SDP). The
// continuous solution is rounded by Alg. 1: layers top-down, highest x
// first, respecting every edge capacity.

#include <optional>

#include "src/core/model.hpp"
#include "src/sdp/solver.hpp"
#include "src/util/status.hpp"

namespace cpla::core {

struct EngineResult {
  std::vector<int> pick;  // chosen layer-option index per var
  double objective = 0.0; // model objective of the final integral pick
  double relaxation_obj = 0.0;
  int iterations = 0;
  bool solver_ok = true;
  // Structured reason when the relaxation/search degraded (the pick is
  // still always populated — a failed solve keeps the current assignment).
  StatusCode code = StatusCode::kOk;
};

EngineResult solve_partition_sdp(const PartitionProblem& problem,
                                 const assign::AssignState& state,
                                 const sdp::SdpOptions& options = {});

/// The lifted relaxation of one partition, split out of solve_partition_sdp
/// so the batched backend (src/sdp/batch_solver) can solve many partitions'
/// SDPs in one structure-of-arrays pass:
///
///   build_partition_sdp  ->  sdp::solve / sdp::solve_batch  ->
///   finish_partition_sdp
///
/// composes to exactly solve_partition_sdp (same construction order, same
/// extraction/rounding arithmetic), so routing a partition through the
/// batch is bit-identical to the scalar engine call.
struct PartitionSdp {
  /// Empty iff the partition has no vars (nothing to solve).
  std::optional<sdp::SdpProblem> problem;
};

PartitionSdp build_partition_sdp(const PartitionProblem& problem);

/// Rounds one partition's SDP result into an EngineResult (extraction,
/// Alg. 1 post-mapping, polish, incumbent guard). `result` must come from
/// solving build_partition_sdp(problem).problem.
EngineResult finish_partition_sdp(const PartitionProblem& problem,
                                  const assign::AssignState& state,
                                  const sdp::SdpResult& result);

/// Alg. 1, exposed for tests: maps fractional per-option values to an
/// integral, capacity-respecting choice. `x[i][k]` is the relaxation value
/// of var i's option k.
std::vector<int> post_map(const PartitionProblem& problem, const assign::AssignState& state,
                          const std::vector<std::vector<double>>& x);

}  // namespace cpla::core
