#include "src/core/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

#include "src/util/check.hpp"

namespace cpla::core {

double PartitionProblem::pair_cost(const VarPair& pair, int lp, int lc) const {
  if (lp == lc) return 0.0;
  double cost = rc->via_stack_res(lp, lc) * pair.scale;
  for (int l = std::min(lp, lc) + 1; l < std::max(lp, lc); ++l) {
    cost += options.via_penalty_scale * pair.load_ratio[l];
  }
  return cost;
}

double PartitionProblem::evaluate(const std::vector<int>& pick) const {
  CPLA_ASSERT(pick.size() == vars.size());
  double total = 0.0;
  for (std::size_t i = 0; i < vars.size(); ++i) total += vars[i].cost[pick[i]];
  for (const VarPair& pair : pairs) {
    total += pair_cost(pair, vars[pair.parent].layers[pick[pair.parent]],
                       vars[pair.child].layers[pick[pair.child]]);
  }
  return total;
}

namespace {

/// Penalty for a via stack against fixed via-site congestion.
double stack_penalty(const assign::AssignState& state, const ModelOptions& opt, int cell,
                     int la, int lb) {
  double cost = 0.0;
  for (int l = std::min(la, lb) + 1; l < std::max(la, lb); ++l) {
    const double cap = std::max(1, state.via_cap(l, cell));
    cost += opt.via_penalty_scale * static_cast<double>(state.via_load(l, cell)) / cap;
  }
  return cost;
}

}  // namespace

PartitionProblem build_partition_problem(
    const assign::AssignState& state, const timing::RcTable& rc,
    const std::unordered_map<int, timing::NetTiming>& timings, const PartitionRegion& region,
    const ModelOptions& options) {
  PartitionProblem p;
  p.rc = &rc;
  p.options = options;
  p.region_x0 = region.x0;
  p.region_y0 = region.y0;
  p.region_x1 = region.x1;
  p.region_y1 = region.y1;
  const auto& g = state.design().grid;

  // Global criticality: the worst released net anchors the weighting
  // (Problem 1 minimizes the maximum path timing).
  double global_max = 0.0;
  // cpla-lint: allow(unordered-iteration) -- max over doubles is order-independent
  for (const auto& [net, t] : timings) {
    (void)net;
    global_max = std::max(global_max, t.max_sink_delay);
  }
  auto net_factor = [&](const timing::NetTiming& t) {
    if (options.max_focus_gamma <= 0.0 || global_max <= 0.0) return 1.0;
    return std::pow(t.max_sink_delay / global_max, options.max_focus_gamma);
  };

  // Pass 1: create variables and the (net, seg) -> var index map.
  std::unordered_map<long long, int> var_of;
  auto key = [](int net, int seg) { return (static_cast<long long>(net) << 24) | seg; };
  for (const SegRef& ref : region.segments) {
    const route::SegTree& tree = state.tree(ref.net);
    const timing::NetTiming& t = timings.at(ref.net);
    VarGroup var;
    var.net = ref.net;
    var.seg = ref.seg;
    var.current_layer = state.layers(ref.net)[ref.seg];
    // Smooth criticality weighting: segments feeding near-critical sinks
    // keep nearly full weight, so a branch one round away from becoming
    // the critical path is not traded off (branch_weight is the floor);
    // the whole net is further scaled by its global criticality.
    var.weight =
        std::max(options.branch_weight, t.criticality[ref.seg] * net_factor(t));

    // Allowed layers: every direction-matching layer. Feasibility is the
    // job of the capacity rows (4c) and the post-mapping step; pruning
    // merely-full layers here would freeze segments below congested upper
    // layers that other released segments are about to vacate.
    const route::Segment& seg = tree.segs[ref.seg];
    for (int l : state.allowed_layers(seg.horizontal)) var.layers.push_back(l);
    CPLA_ASSERT(!var.layers.empty());
    var_of[key(ref.net, ref.seg)] = static_cast<int>(p.vars.size());
    p.vars.push_back(std::move(var));
  }

  // Pass 2: linear costs and quadratic pairs.
  for (std::size_t vi = 0; vi < p.vars.size(); ++vi) {
    VarGroup& var = p.vars[vi];
    const route::SegTree& tree = state.tree(var.net);
    const timing::NetTiming& t = timings.at(var.net);
    const route::Segment& seg = tree.segs[var.seg];
    const double len = static_cast<double>(seg.length());
    const double cd = t.downstream_cap[var.seg];
    const std::vector<int>& fixed_layers = state.layers(var.net);

    var.cost.resize(var.layers.size());
    for (std::size_t k = 0; k < var.layers.size(); ++k) {
      const int l = var.layers[k];
      // Segment Elmore cost (Eqn 2), criticality-weighted.
      double cost = var.weight * rc.res(l) * len * (rc.cap(l) * len / 2.0 + cd);

      // Sink pin vias on this segment.
      for (const route::SinkAttach& sink : tree.sinks) {
        if (sink.seg_id != var.seg) continue;
        cost += var.weight * rc.via_stack_res(l, sink.pin_layer) * rc.sink_cap();
        cost += stack_penalty(state, options, g.cell_id(seg.b.x, seg.b.y), l, sink.pin_layer);
      }

      if (seg.parent < 0) {
        // Source via drives the whole subtree.
        const double subtree = rc.cap(l) * len + cd;
        cost += var.weight * rc.via_stack_res(tree.root_pin_layer, l) * subtree;
        cost += stack_penalty(state, options, g.cell_id(seg.a.x, seg.a.y), l,
                              tree.root_pin_layer);
      } else if (!var_of.count(key(var.net, seg.parent))) {
        // Parent is outside the partition: a fixed-layer via (Eqn 3).
        const int lp = fixed_layers[seg.parent];
        const double load = std::min(cd, t.downstream_cap[seg.parent]);
        cost += var.weight * rc.via_stack_res(lp, l) * load;
        cost += stack_penalty(state, options, g.cell_id(seg.a.x, seg.a.y), l, lp);
      }
      // Fixed children.
      for (int c : seg.children) {
        if (var_of.count(key(var.net, c))) continue;
        const int lc = fixed_layers[c];
        const double w = std::max(options.branch_weight, t.criticality[c] * net_factor(t));
        const double load = std::min(cd, t.downstream_cap[c]);
        const route::Segment& cseg = tree.segs[c];
        cost += w * rc.via_stack_res(l, lc) * load;
        cost += stack_penalty(state, options, g.cell_id(cseg.a.x, cseg.a.y), l, lc);
      }
      var.cost[k] = cost;
    }

    // Quadratic pair with an in-partition parent.
    if (seg.parent >= 0) {
      auto it = var_of.find(key(var.net, seg.parent));
      if (it != var_of.end()) {
        VarPair pair;
        pair.child = static_cast<int>(vi);
        pair.parent = it->second;
        pair.junction = seg.a;
        pair.scale = var.weight * std::min(cd, t.downstream_cap[seg.parent]);
        pair.load_ratio.resize(static_cast<std::size_t>(g.num_layers()), 0.0);
        const int cell = g.cell_id(seg.a.x, seg.a.y);
        for (int l = 0; l < g.num_layers(); ++l) {
          const double cap = std::max(1, state.via_cap(l, cell));
          pair.load_ratio[l] = static_cast<double>(state.via_load(l, cell)) / cap;
        }
        p.pairs.push_back(std::move(pair));
      }
    }
  }

  // Pass 3: capacity rows, pruned to edges where the partition could
  // actually overflow. "Remaining" capacity excludes everything except the
  // in-partition segments themselves.
  struct Bucket {
    std::vector<int> members;
    int self_usage = 0;  // in-partition members currently assigned to this layer
  };
  // Ordered map: the cap_rows emission order below is solver-visible (it
  // feeds the SDP Schur assembly and the ILP row order), so iterate the
  // buckets in (layer, edge) key order, not hash-bucket order.
  std::map<long long, Bucket> buckets;  // (layer, edge) -> bucket
  auto ekey = [](int l, int e) { return (static_cast<long long>(l) << 32) | e; };
  for (std::size_t vi = 0; vi < p.vars.size(); ++vi) {
    const VarGroup& var = p.vars[vi];
    for (int l : var.layers) {
      state.for_each_edge(var.net, var.seg, [&](int e) {
        Bucket& b = buckets[ekey(l, e)];
        b.members.push_back(static_cast<int>(vi));
        if (l == var.current_layer) b.self_usage += 1;
      });
    }
  }
  for (auto& [ke, bucket] : buckets) {
    const int l = static_cast<int>(ke >> 32);
    const int e = static_cast<int>(ke & 0xffffffff);
    const int others = state.wire_usage(l, e) - bucket.self_usage;
    const int remaining = std::max(0, state.wire_cap(l, e) - others);
    if (static_cast<int>(bucket.members.size()) > remaining) {
      p.cap_rows.push_back(CapRow{l, e, remaining, std::move(bucket.members)});
    }
  }

  return p;
}

/// True if `pick` keeps every capacity row within its remaining budget.
bool rows_feasible(const PartitionProblem& p, const std::vector<int>& pick) {
  for (const CapRow& row : p.cap_rows) {
    int used = 0;
    for (int m : row.members) {
      if (p.vars[m].layers[pick[m]] == row.layer) ++used;
    }
    if (used > row.cap_remaining) return false;
  }
  return true;
}

/// Coordinate-descent polish of the rounded solution on the exact model
/// objective, staying inside the capacity rows. The SDP seeds the basin;
/// this removes residual rounding noise (part of the post-mapping stage).
void polish_pick(const PartitionProblem& p, std::vector<int>* pick) {
  // Row usage under the current pick.
  std::vector<int> row_used(p.cap_rows.size(), 0);
  for (std::size_t r = 0; r < p.cap_rows.size(); ++r) {
    for (int m : p.cap_rows[r].members) {
      if (p.vars[m].layers[(*pick)[m]] == p.cap_rows[r].layer) ++row_used[r];
    }
  }
  // Row membership per var.
  std::vector<std::vector<int>> rows_of(p.vars.size());
  for (std::size_t r = 0; r < p.cap_rows.size(); ++r) {
    for (int m : p.cap_rows[r].members) rows_of[m].push_back(static_cast<int>(r));
  }
  // Pair adjacency per var.
  std::vector<std::vector<int>> pairs_of(p.vars.size());
  for (std::size_t q = 0; q < p.pairs.size(); ++q) {
    pairs_of[p.pairs[q].child].push_back(static_cast<int>(q));
    pairs_of[p.pairs[q].parent].push_back(static_cast<int>(q));
  }

  auto delta_cost = [&](std::size_t i, int new_k) {
    const VarGroup& var = p.vars[i];
    double delta = var.cost[new_k] - var.cost[(*pick)[i]];
    for (int q : pairs_of[i]) {
      const VarPair& pair = p.pairs[q];
      const bool is_child = (pair.child == static_cast<int>(i));
      const int other = is_child ? pair.parent : pair.child;
      const int other_layer = p.vars[other].layers[(*pick)[other]];
      const int old_layer = var.layers[(*pick)[i]];
      const int new_layer = var.layers[new_k];
      if (is_child) {
        delta += p.pair_cost(pair, other_layer, new_layer) -
                 p.pair_cost(pair, other_layer, old_layer);
      } else {
        delta += p.pair_cost(pair, new_layer, other_layer) -
                 p.pair_cost(pair, old_layer, other_layer);
      }
    }
    return delta;
  };

  auto move_feasible = [&](std::size_t i, int new_k) {
    const int old_layer = p.vars[i].layers[(*pick)[i]];
    const int new_layer = p.vars[i].layers[new_k];
    for (int r : rows_of[i]) {
      const CapRow& row = p.cap_rows[r];
      if (row.layer == new_layer && row.layer != old_layer &&
          row_used[r] + 1 > row.cap_remaining) {
        return false;
      }
    }
    return true;
  };

  for (int sweep = 0; sweep < 16; ++sweep) {
    bool moved = false;
    for (std::size_t i = 0; i < p.vars.size(); ++i) {
      int best_k = (*pick)[i];
      double best_delta = -1e-9;
      for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
        if (static_cast<int>(k) == (*pick)[i] || !move_feasible(i, static_cast<int>(k))) {
          continue;
        }
        const double d = delta_cost(i, static_cast<int>(k));
        if (d < best_delta) {
          best_delta = d;
          best_k = static_cast<int>(k);
        }
      }
      if (best_k != (*pick)[i]) {
        const int old_layer = p.vars[i].layers[(*pick)[i]];
        const int new_layer = p.vars[i].layers[best_k];
        for (int r : rows_of[i]) {
          if (p.cap_rows[r].layer == old_layer) --row_used[r];
          if (p.cap_rows[r].layer == new_layer) ++row_used[r];
        }
        (*pick)[i] = best_k;
        moved = true;
      }
    }
    if (!moved) break;
  }
}


}  // namespace cpla::core

