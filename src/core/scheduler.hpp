#pragma once

// Persistent work-stealing task-graph scheduler for the flow's solve phase.
//
// A TaskGraph is a DAG of closures with explicit dependencies; Scheduler
// executes one graph at a time over a persistent worker pool (threads are
// created once and parked between run() calls, so per-round scheduling
// costs no thread churn). Each worker owns a deque guarded by its own
// mutex: the owner pushes and pops at the back (LIFO keeps the working set
// hot), thieves steal from the front (FIFO steals the oldest — largest —
// subtrees). The calling thread participates as worker 0, so run() uses
// `threads` CPUs with only `threads - 1` pool threads.
//
// Determinism contract: the scheduler never adds nondeterminism of its
// own — it only reorders *independent* nodes across threads. Nodes that
// write disjoint slots (the flow's per-partition builds/solves) therefore
// produce identical bits at any thread count. With threads == 1 there is
// no pool at all and run() executes inline in node-id topological order
// (Kahn's algorithm with an id-ordered ready set).
//
// run() blocks until every node has executed. Nodes must not throw (the
// flow's solve contract already guarantees this); a node that does throw
// terminates via noexcept propagation rather than deadlocking the pool.

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace cpla::core {

class Scheduler;

/// A DAG of tasks. Build with add() + depend(), hand to Scheduler::run().
/// A TaskGraph is single-use state-wise: run() consumes the dependency
/// counters (re-running requires rebuilding the graph).
class TaskGraph {
 public:
  /// Adds a node; returns its id (dense, starting at 0).
  int add(std::function<void()> fn) {
    nodes_.push_back(Node{std::move(fn), {}, 0});
    return static_cast<int>(nodes_.size()) - 1;
  }

  /// Declares that `node` must not start before `on` has finished.
  void depend(int node, int on) {
    nodes_[static_cast<std::size_t>(on)].out.push_back(node);
    ++nodes_[static_cast<std::size_t>(node)].deps;
  }

  int size() const { return static_cast<int>(nodes_.size()); }

 private:
  friend class Scheduler;
  struct Node {
    std::function<void()> fn;
    std::vector<int> out;  // successors
    int deps = 0;          // unmet-dependency count (consumed by run())
  };
  std::vector<Node> nodes_;
};

class Scheduler {
 public:
  /// `threads` <= 0 selects the hardware concurrency. One pool thread per
  /// worker beyond the caller; `threads == 1` runs everything inline.
  explicit Scheduler(int threads = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int threads() const { return threads_; }

  /// Executes every node of `graph` respecting its dependencies; blocks
  /// until the last node has finished. Not reentrant: one run() at a time
  /// per Scheduler (the flow calls it from its single orchestration
  /// thread).
  void run(TaskGraph* graph) CPLA_EXCLUDES(mu_);

 private:
  struct WorkerQueue {
    Mutex mu;
    std::deque<int> tasks CPLA_GUARDED_BY(mu);  // node ids; owner: back, thieves: front
  };

  void worker_loop(int worker) CPLA_EXCLUDES(mu_);
  // The graph pointer travels from try_pop (which reads graph_ under mu_
  // at task-claim time) into execute as a parameter. Claim-time reading
  // matters: run() returns without waiting for pool workers to leave
  // participate(), so a straggler may claim a task seeded by the *next*
  // run — it must execute that task against the graph that seeded it, not
  // a per-generation snapshot of a graph the caller may have destroyed.
  void participate(int worker) CPLA_EXCLUDES(mu_);
  bool try_pop(int worker, int* node, TaskGraph** graph) CPLA_EXCLUDES(mu_);
  void execute(TaskGraph* graph, int node, int worker) CPLA_EXCLUDES(mu_);
  void run_inline(TaskGraph* graph);

  const int threads_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> pool_;

  // Run lifecycle: run() installs the graph, bumps the generation, and
  // wakes the pool; workers drain until `remaining_` hits zero, then park
  // waiting for the next generation. All shared counters sit behind mu_
  // (the per-queue mutexes only guard their deques).
  Mutex mu_;
  CondVar work_cv_;  // new generation, new tasks, or run done
  TaskGraph* graph_ CPLA_GUARDED_BY(mu_) = nullptr;
  long generation_ CPLA_GUARDED_BY(mu_) = 0;
  int remaining_ CPLA_GUARDED_BY(mu_) = 0;  // nodes not yet finished in the current run
  int pending_ CPLA_GUARDED_BY(mu_) = 0;    // nodes queued but not yet claimed by a worker
  bool shutdown_ CPLA_GUARDED_BY(mu_) = false;
};

}  // namespace cpla::core
