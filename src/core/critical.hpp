#pragma once

// Critical-net selection: the paper releases the top `ratio` fraction of
// nets by critical-path (worst sink) Elmore delay for incremental
// reassignment; everything else stays fixed.

#include <vector>

#include "src/assign/state.hpp"
#include "src/sta/timing_graph.hpp"
#include "src/timing/elmore.hpp"

namespace cpla::core {

struct CriticalSet {
  std::vector<int> nets;  // released net ids, worst delay first
  std::vector<char> released;  // indexed by net id
};

/// Selects ceil(ratio * #nets) critical nets (nets without segments are
/// never selected — they carry no assignable wire).
CriticalSet select_critical(const assign::AssignState& state, const timing::RcTable& rc,
                            double ratio);

/// Slack-based selection: releases every net whose critical-path delay
/// exceeds `required_time` (negative slack), worst first. This is how a
/// timing-closure flow would feed CPLA from an STA report instead of a
/// fixed release ratio.
CriticalSet select_by_budget(const assign::AssignState& state, const timing::RcTable& rc,
                             double required_time);

/// TimingGraph-backed selection: releases the ceil(ratio * #nets) nets
/// with the worst (smallest) slack in the graph — the worst-over-corners
/// merge, so a net critical at any corner competes for release. Nets
/// without segments, or absent from the graph, are never selected. Ties
/// break toward the smaller net id.
CriticalSet select_critical(const assign::AssignState& state, const sta::TimingGraph& graph,
                            double ratio);

/// TimingGraph-backed budget selection: releases every net with negative
/// worst slack (a live STA violation at some corner), worst first.
CriticalSet select_by_budget(const assign::AssignState& state, const sta::TimingGraph& graph);

}  // namespace cpla::core
