#pragma once

// Critical-net selection: the paper releases the top `ratio` fraction of
// nets by critical-path (worst sink) Elmore delay for incremental
// reassignment; everything else stays fixed.

#include <vector>

#include "src/assign/state.hpp"
#include "src/timing/elmore.hpp"

namespace cpla::core {

struct CriticalSet {
  std::vector<int> nets;  // released net ids, worst delay first
  std::vector<char> released;  // indexed by net id
};

/// Selects ceil(ratio * #nets) critical nets (nets without segments are
/// never selected — they carry no assignable wire).
CriticalSet select_critical(const assign::AssignState& state, const timing::RcTable& rc,
                            double ratio);

/// Slack-based selection: releases every net whose critical-path delay
/// exceeds `required_time` (negative slack), worst first. This is how a
/// timing-closure flow would feed CPLA from an STA report instead of a
/// fixed release ratio.
CriticalSet select_by_budget(const assign::AssignState& state, const timing::RcTable& rc,
                             double required_time);

}  // namespace cpla::core
