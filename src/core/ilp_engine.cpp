#include "src/core/ilp_engine.hpp"

#include <algorithm>
#include <map>

#include "src/util/check.hpp"

namespace cpla::core {

EngineResult solve_partition_ilp(const PartitionProblem& p, const assign::AssignState& state,
                                 const ilp::MipOptions& options) {
  EngineResult result;
  if (p.vars.empty()) return result;

  ilp::MipModel m;

  // x variables.
  std::vector<std::vector<int>> x(p.vars.size());
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    x[i].resize(p.vars[i].layers.size());
    for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
      x[i][k] = m.add_binary(p.vars[i].cost[k]);
    }
    // (4b): exactly one layer.
    std::vector<std::pair<int, double>> row;
    for (int var : x[i]) row.push_back({var, 1.0});
    m.add_row(lp::Sense::kEq, 1.0, row);
  }

  // (4c): hard edge capacities.
  for (const CapRow& cap : p.cap_rows) {
    std::vector<std::pair<int, double>> row;
    for (int member : cap.members) {
      const auto& layers = p.vars[member].layers;
      for (std::size_t k = 0; k < layers.size(); ++k) {
        if (layers[k] == cap.layer) row.push_back({x[member][k], 1.0});
      }
    }
    m.add_row(lp::Sense::kLe, static_cast<double>(cap.cap_remaining), row);
  }

  // y variables with (4e)-(4g), for combos that produce a via.
  struct YVar {
    int var;     // MIP variable id
    int pair;    // pair index
    int kp, kc;  // option indices
  };
  std::vector<YVar> yvars;
  for (std::size_t pi = 0; pi < p.pairs.size(); ++pi) {
    const VarPair& pair = p.pairs[pi];
    const auto& lp_ = p.vars[pair.parent].layers;
    const auto& lc_ = p.vars[pair.child].layers;
    for (std::size_t kp = 0; kp < lp_.size(); ++kp) {
      for (std::size_t kc = 0; kc < lc_.size(); ++kc) {
        if (lp_[kp] == lc_[kc]) continue;
        const double tv = p.pair_cost(pair, lp_[kp], lc_[kc]);
        const int y = m.add_binary(tv);
        const int xp = x[pair.parent][kp];
        const int xc = x[pair.child][kc];
        m.add_row(lp::Sense::kLe, 0.0, {{y, 1.0}, {xp, -1.0}});               // (4e)
        m.add_row(lp::Sense::kLe, 0.0, {{y, 1.0}, {xc, -1.0}});               // (4f)
        m.add_row(lp::Sense::kGe, -1.0, {{y, 1.0}, {xp, -1.0}, {xc, -1.0}});  // (4g)
        yvars.push_back(YVar{y, static_cast<int>(pi), static_cast<int>(kp),
                             static_cast<int>(kc)});
      }
    }
  }

  // (4d) via-capacity rows at pair junction cells, relaxed by Vo.
  const int vo = m.add_var(0.0, lp::kInf, p.options.alpha);
  const auto& g = state.design().grid;
  const int nv = state.nv();
  // Group pairs by junction cell. Ordered map: the (4d) row order below is
  // solver-visible (simplex pivot selection), so iterate in cell-id order.
  std::map<int, std::vector<int>> cell_pairs;
  for (std::size_t pi = 0; pi < p.pairs.size(); ++pi) {
    cell_pairs[g.cell_id(p.pairs[pi].junction.x, p.pairs[pi].junction.y)].push_back(
        static_cast<int>(pi));
  }
  for (const auto& [cell, pair_ids] : cell_pairs) {
    for (int l = 1; l < g.num_layers() - 1; ++l) {
      std::vector<std::pair<int, double>> row;
      // y terms: via stacks crossing layer l at this cell.
      for (const YVar& yv : yvars) {
        if (std::find(pair_ids.begin(), pair_ids.end(), yv.pair) == pair_ids.end()) continue;
        const VarPair& pair = p.pairs[yv.pair];
        const int lp_ = p.vars[pair.parent].layers[yv.kp];
        const int lc_ = p.vars[pair.child].layers[yv.kc];
        if (l > std::min(lp_, lc_) && l < std::max(lp_, lc_)) row.push_back({yv.var, 1.0});
      }
      if (row.empty()) continue;

      // nv * x terms: in-partition segments crossing this cell if put on l.
      int self_load = 0;  // current load contributed by in-partition vars
      for (std::size_t i = 0; i < p.vars.size(); ++i) {
        bool crosses = false;
        state.for_each_cell(p.vars[i].net, p.vars[i].seg, [&](int c2) {
          if (c2 == cell) crosses = true;
        });
        if (!crosses) continue;
        const auto& layers = p.vars[i].layers;
        for (std::size_t k = 0; k < layers.size(); ++k) {
          if (layers[k] == l) row.push_back({x[i][k], static_cast<double>(nv)});
        }
        if (p.vars[i].current_layer == l) self_load += nv;
      }
      // Current via stacks of the pairs at this junction also sit in
      // via_usage; lift them out of the fixed load.
      for (int pi : pair_ids) {
        const VarPair& pair = p.pairs[pi];
        const int lp_ = p.vars[pair.parent].current_layer;
        const int lc_ = p.vars[pair.child].current_layer;
        if (l > std::min(lp_, lc_) && l < std::max(lp_, lc_)) self_load += 1;
      }
      const int fixed_load = state.via_load(l, cell) - self_load;
      const double rhs = static_cast<double>(state.via_cap(l, cell) - fixed_load);
      row.push_back({vo, -1.0});
      m.add_row(lp::Sense::kLe, rhs, row);
    }
  }

  const ilp::MipResult mr = solve_mip(m, options);
  result.solver_ok =
      (mr.status == ilp::MipStatus::kOptimal || mr.status == ilp::MipStatus::kFeasible);
  switch (mr.status) {
    case ilp::MipStatus::kInfeasible: result.code = StatusCode::kInfeasible; break;
    case ilp::MipStatus::kLimit: result.code = StatusCode::kIterationLimit; break;
    default: break;
  }
  result.iterations = static_cast<int>(mr.nodes);
  result.relaxation_obj = mr.best_bound;

  result.pick.assign(p.vars.size(), 0);
  if (result.solver_ok) {
    for (std::size_t i = 0; i < p.vars.size(); ++i) {
      for (std::size_t k = 0; k < x[i].size(); ++k) {
        if (mr.x[x[i][k]] > 0.5) result.pick[i] = static_cast<int>(k);
      }
    }
  } else {
    // Keep the current assignment on failure.
    for (std::size_t i = 0; i < p.vars.size(); ++i) {
      const auto& layers = p.vars[i].layers;
      for (std::size_t k = 0; k < layers.size(); ++k) {
        if (layers[k] == p.vars[i].current_layer) result.pick[i] = static_cast<int>(k);
      }
    }
  }
  if (p.options.polish && rows_feasible(p, result.pick)) polish_pick(p, &result.pick);
  result.objective = p.evaluate(result.pick);

  // Incremental guard (mirrors the SDP engine): never regress the model
  // objective — a truncated search or soft via rows could otherwise return
  // a pick worse than the incumbent.
  std::vector<int> incumbent(p.vars.size(), 0);
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
      if (p.vars[i].layers[k] == p.vars[i].current_layer) incumbent[i] = static_cast<int>(k);
    }
  }
  if (p.options.polish && rows_feasible(p, incumbent)) polish_pick(p, &incumbent);
  const double incumbent_obj = p.evaluate(incumbent);
  if (p.options.incumbent_guard && result.objective > incumbent_obj) {
    result.pick = std::move(incumbent);
    result.objective = incumbent_obj;
  }
  return result;
}

}  // namespace cpla::core
