#include "src/core/tila.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "src/timing/elmore.hpp"
#include "src/util/logging.hpp"

namespace cpla::core {

namespace {

/// Number of sinks in the subtree hanging below each segment — the TILA
/// weighted-sum-delay weights.
std::vector<int> downstream_sinks(const route::SegTree& tree) {
  std::vector<int> w(tree.segs.size(), 0);
  for (const route::SinkAttach& sink : tree.sinks) {
    if (sink.seg_id >= 0) w[sink.seg_id] += 1;
  }
  for (std::size_t i = tree.segs.size(); i-- > 0;) {
    for (int c : tree.segs[i].children) w[i] += w[c];
  }
  return w;
}

}  // namespace

TilaResult run_tila(assign::AssignState* state, const timing::RcTable& rc,
                    const CriticalSet& critical, const TilaOptions& options) {
  const auto& g = state->design().grid;
  TilaResult result;

  // Lagrange multipliers on wire-edge and via-cell capacities.
  std::vector<std::vector<double>> lambda(g.num_layers());
  std::vector<std::vector<double>> mu(g.num_layers());
  for (int l = 0; l < g.num_layers(); ++l) {
    lambda[l].assign(static_cast<std::size_t>(g.num_edges_on_layer(l)), 0.0);
    mu[l].assign(static_cast<std::size_t>(g.num_cells()), 0.0);
  }

  // Delay scale for the subgradient step: mean segment delay over the
  // released nets at the current assignment. The same sweep prices the
  // entry assignment, which seeds the best-iterate tracking below.
  double scale = 0.0;
  long scale_n = 0;
  double entry_obj = 0.0;
  for (int net : critical.nets) {
    const auto t = timing::compute_timing(state->tree(net), state->layers(net), rc);
    entry_obj += t.max_sink_delay;
    for (std::size_t s = 0; s < state->tree(net).segs.size(); ++s) {
      const int l = state->layers(net)[s];
      scale += rc.res(l) * state->tree(net).segs[s].length() *
               (rc.cap(l) * state->tree(net).segs[s].length() / 2.0 + t.downstream_cap[s]);
      ++scale_n;
    }
  }
  scale = (scale_n > 0) ? scale / static_cast<double>(scale_n) : 1.0;
  const double lambda_step = options.lambda_step * scale;
  const double mu_step = options.mu_step * scale;

  // Sub-gradient iterates are not monotone: the iterate in the state when
  // the convergence test trips (or the budget runs out) can be worse than
  // an earlier one — or than the entry assignment. Track the best-seen
  // primal assignment over the released nets and restore it on exit.
  double best_obj = entry_obj;
  std::vector<std::vector<int>> best_layers;
  best_layers.reserve(critical.nets.size());
  for (int net : critical.nets) best_layers.push_back(state->layers(net));
  result.weighted_delay = entry_obj;

  double prev_obj = 1e300;
  for (int iter = 0; iter < options.iterations; ++iter) {
    result.iterations_run = iter + 1;
    double obj = 0.0;

    // The Lagrangian decomposition of TILA prices each segment
    // independently: via terms are *linearized* against the neighbors'
    // current layers ("TILA artificially approximates some quadratic terms
    // to [a] linear model" — the approximation this paper criticizes).
    // Segments are visited per net in topological order and committed one
    // at a time.
    for (int net : critical.nets) {
      const route::SegTree& tree = state->tree(net);
      if (tree.segs.empty()) continue;
      timing::NetTiming t = timing::compute_timing(tree, state->layers(net), rc);
      const std::vector<int> w = downstream_sinks(tree);
      std::vector<int> layers = state->layers(net);
      // Usage deltas from segments of *this* net already re-priced in this
      // pass but not yet committed to the state: without them, two segments
      // sharing an edge each discount only their own pre-pass usage and can
      // jointly overfill it.
      std::map<std::pair<int, int>, int> pass_delta;  // (layer, edge) -> +-tracks

      for (const route::Segment& seg : tree.segs) {
        const int s = seg.id;
        const std::vector<int>& allowed = state->allowed_layers(seg.horizontal);
        double best_cost = 1e300;
        int best_layer = layers[s];
        for (int l : allowed) {
          const double len = seg.length();
          double cost = w[s] * rc.res(l) * len * (rc.cap(l) * len / 2.0 + t.downstream_cap[s]);

          // Wire congestion: multipliers, with edge capacity (4c) hard —
          // a layer whose edges are full is not a legal destination
          // (staying on the current layer is always permitted). The
          // segment's own current usage is discounted.
          bool over = false;
          state->for_each_edge(net, s, [&](int e) {
            cost += lambda[l][e];
            const int self = (layers[s] == l) ? 1 : 0;
            int delta = 0;
            const auto it = pass_delta.find({l, e});
            if (it != pass_delta.end()) delta = it->second;
            if (state->wire_usage(l, e) + delta - self + 1 > state->wire_cap(l, e)) {
              over = true;
            }
          });
          if (over && l != layers[s]) continue;

          // Linearized via terms against the neighbors' current layers.
          auto via_term = [&](int cell_x, int cell_y, int other_layer, double load,
                              int weight) {
            double c = weight * rc.via_stack_res(other_layer, l) * load;
            const int cell = g.cell_id(cell_x, cell_y);
            for (int ll = std::min(other_layer, l) + 1; ll < std::max(other_layer, l); ++ll) {
              c += mu[ll][cell];
            }
            return c;
          };
          if (seg.parent < 0) {
            const double subtree = rc.cap(l) * len + t.downstream_cap[s];
            cost += via_term(seg.a.x, seg.a.y, tree.root_pin_layer, subtree, w[s]);
          } else {
            const double load = std::min(t.downstream_cap[s], t.downstream_cap[seg.parent]);
            cost += via_term(seg.a.x, seg.a.y, layers[seg.parent], load, w[s]);
          }
          for (int c : seg.children) {
            const double load = std::min(t.downstream_cap[s], t.downstream_cap[c]);
            cost += via_term(tree.segs[c].a.x, tree.segs[c].a.y, layers[c], load, w[c]);
          }
          for (const route::SinkAttach& sink : tree.sinks) {
            if (sink.seg_id != s) continue;
            cost += via_term(seg.b.x, seg.b.y, sink.pin_layer, rc.sink_cap(), 1);
          }

          if (cost < best_cost) {
            best_cost = cost;
            best_layer = l;
          }
        }
        if (best_layer != layers[s]) {
          state->for_each_edge(net, s, [&](int e) {
            pass_delta[{layers[s], e}] -= 1;
            pass_delta[{best_layer, e}] += 1;
          });
          layers[s] = best_layer;
          // Downstream caps shift with the move; keep the timing the later
          // segments price against current instead of pass-entry stale.
          t = timing::compute_timing(tree, layers, rc);
        }
      }
      state->set_layers(net, std::move(layers));
      obj += timing::compute_timing(tree, state->layers(net), rc).max_sink_delay;
    }

    // Projected subgradient update on capacity violations.
    for (int l = 0; l < g.num_layers(); ++l) {
      for (int e = 0; e < g.num_edges_on_layer(l); ++e) {
        const int over = state->wire_usage(l, e) - state->wire_cap(l, e);
        lambda[l][e] = std::max(0.0, lambda[l][e] + lambda_step * over);
      }
      for (int c = 0; c < g.num_cells(); ++c) {
        const int over = state->via_load(l, c) - state->via_cap(l, c);
        mu[l][c] = std::max(0.0, mu[l][c] + mu_step * over);
      }
    }

    if (obj < best_obj) {
      best_obj = obj;
      for (std::size_t i = 0; i < critical.nets.size(); ++i) {
        best_layers[i] = state->layers(critical.nets[i]);
      }
    }
    result.weighted_delay = best_obj;
    if (obj > prev_obj * 0.999) break;  // converged / oscillating
    prev_obj = obj;
  }

  // Restore the best-seen iterate (possibly the entry assignment).
  for (std::size_t i = 0; i < critical.nets.size(); ++i) {
    const int net = critical.nets[i];
    if (state->layers(net) != best_layers[i]) {
      state->set_layers(net, std::vector<int>(best_layers[i]));
    }
  }

  LOG_DEBUG("tila: %d iterations, objective %.1f", result.iterations_run,
            result.weighted_delay);
  return result;
}

}  // namespace cpla::core
