#pragma once

// Exact ILP formulation (4) for one partition, solved with the in-tree
// branch-and-bound (GUROBI's role in the paper). Binary x_ij pick a layer
// per segment; binary y_ijpq linearize via products through constraints
// (4e)-(4g); edge capacities (4c) are hard; via capacities (4d) at pair
// junctions are softened by the shared overflow variable Vo with weight
// alpha (Section 3.1's relaxation).

#include "src/core/model.hpp"
#include "src/core/sdp_engine.hpp"  // EngineResult
#include "src/ilp/branch_bound.hpp"

namespace cpla::core {

EngineResult solve_partition_ilp(const PartitionProblem& problem,
                                 const assign::AssignState& state,
                                 const ilp::MipOptions& options = {});

}  // namespace cpla::core
