#pragma once

// Victim displacement: Problem 1 re-assigns layers "among critical and
// non-critical nets". The partition engines only move released segments;
// this pass creates the headroom they need by demoting *non-released*
// segments off (layer, edge) slots that are (a) full and (b) wanted by a
// highly-critical released segment sitting below that layer. Victim nets
// are re-assigned with the same exact tree DP used by the initial
// assigner, with the cleared slots priced as forbidden — so victims stay
// legal and their via count stays controlled.

#include "src/assign/state.hpp"
#include "src/core/critical.hpp"
#include "src/timing/rc_table.hpp"

namespace cpla::core {

struct DisplaceOptions {
  int max_victims_per_round = 48;
  double min_criticality = 0.85;  // only clear corridors of nearly-critical segments
  int headroom = 1;               // tracks to free per wanted slot
};

/// Returns the number of victim nets re-assigned.
int make_headroom(assign::AssignState* state, const timing::RcTable& rc,
                  const CriticalSet& critical, const DisplaceOptions& options = {});

}  // namespace cpla::core
