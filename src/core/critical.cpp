#include "src/core/critical.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/check.hpp"

namespace cpla::core {

CriticalSet select_critical(const assign::AssignState& state, const timing::RcTable& rc,
                            double ratio) {
  CPLA_ASSERT(ratio >= 0.0 && ratio <= 1.0);
  const int n = state.num_nets();
  std::vector<double> delay(static_cast<std::size_t>(n), -1.0);
  for (int net = 0; net < n; ++net) {
    if (state.tree(net).segs.empty()) continue;
    CPLA_ASSERT_MSG(state.assigned(net), "critical selection requires a full assignment");
    delay[net] = timing::critical_delay(state.tree(net), state.layers(net), rc);
  }

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) { return delay[a] > delay[b]; });

  CriticalSet out;
  out.released.assign(static_cast<std::size_t>(n), 0);
  const int want = static_cast<int>(std::ceil(ratio * n));
  for (int i = 0; i < n && static_cast<int>(out.nets.size()) < want; ++i) {
    if (delay[order[i]] < 0.0) break;  // only unroutable/segment-free nets remain
    out.nets.push_back(order[i]);
    out.released[order[i]] = 1;
  }
  return out;
}

CriticalSet select_by_budget(const assign::AssignState& state, const timing::RcTable& rc,
                             double required_time) {
  const int n = state.num_nets();
  std::vector<std::pair<double, int>> violators;  // (delay, net)
  for (int net = 0; net < n; ++net) {
    if (state.tree(net).segs.empty()) continue;
    CPLA_ASSERT_MSG(state.assigned(net), "budget selection requires a full assignment");
    const double d = timing::critical_delay(state.tree(net), state.layers(net), rc);
    if (d > required_time) violators.push_back({d, net});
  }
  std::sort(violators.begin(), violators.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  CriticalSet out;
  out.released.assign(static_cast<std::size_t>(n), 0);
  for (const auto& [delay, net] : violators) {
    (void)delay;
    out.nets.push_back(net);
    out.released[net] = 1;
  }
  return out;
}

namespace {

// Nets eligible for slack-ranked release: assignable wire present and a
// live node range in the graph. Sorted worst slack first, ties by id.
std::vector<std::pair<double, int>> ranked_by_slack(const assign::AssignState& state,
                                                    const sta::TimingGraph& graph) {
  std::vector<std::pair<double, int>> ranked;  // (worst slack, net)
  for (int net = 0; net < state.num_nets(); ++net) {
    if (state.tree(net).segs.empty() || !graph.has_net(net)) continue;
    ranked.push_back({graph.net_slack(net), net});
  }
  std::sort(ranked.begin(), ranked.end());
  return ranked;
}

}  // namespace

CriticalSet select_critical(const assign::AssignState& state, const sta::TimingGraph& graph,
                            double ratio) {
  CPLA_ASSERT(ratio >= 0.0 && ratio <= 1.0);
  const int n = state.num_nets();
  const std::vector<std::pair<double, int>> ranked = ranked_by_slack(state, graph);
  CriticalSet out;
  out.released.assign(static_cast<std::size_t>(n), 0);
  const int want = static_cast<int>(std::ceil(ratio * n));
  for (const auto& [slack, net] : ranked) {
    (void)slack;
    if (static_cast<int>(out.nets.size()) >= want) break;
    out.nets.push_back(net);
    out.released[net] = 1;
  }
  return out;
}

CriticalSet select_by_budget(const assign::AssignState& state, const sta::TimingGraph& graph) {
  const std::vector<std::pair<double, int>> ranked = ranked_by_slack(state, graph);
  CriticalSet out;
  out.released.assign(static_cast<std::size_t>(state.num_nets()), 0);
  for (const auto& [slack, net] : ranked) {
    if (slack >= 0.0) break;  // ranked ascending: the rest meet timing
    out.nets.push_back(net);
    out.released[net] = 1;
  }
  return out;
}

}  // namespace cpla::core
