#include "src/core/partition.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace cpla::core {

namespace {

void refine(PartitionRegion region, const PartitionOptions& opt, PartitionResult* out) {
  out->total_regions += 1;
  out->max_depth = std::max(out->max_depth, region.depth);
  if (region.segments.empty()) return;

  const int w = region.x1 - region.x0;
  const int h = region.y1 - region.y0;
  const bool small_enough = static_cast<int>(region.segments.size()) <= opt.max_segments;
  // Stop when within budget, or when the region cannot be cut further
  // (single-tile regions would recurse forever on co-located segments).
  if (small_enough || (w <= 1 && h <= 1)) {
    out->leaves.push_back(std::move(region));
    return;
  }

  const int xm = (w > 1) ? region.x0 + w / 2 : region.x1;
  const int ym = (h > 1) ? region.y0 + h / 2 : region.y1;

  PartitionRegion quad[4];
  quad[0] = {region.x0, region.y0, xm, ym, {}, region.depth + 1};
  quad[1] = {xm, region.y0, region.x1, ym, {}, region.depth + 1};
  quad[2] = {region.x0, ym, xm, region.y1, {}, region.depth + 1};
  quad[3] = {xm, ym, region.x1, region.y1, {}, region.depth + 1};

  for (const SegRef& ref : region.segments) {
    const int qx = (ref.mid.x >= xm) ? 1 : 0;
    const int qy = (ref.mid.y >= ym) ? 1 : 0;
    quad[qy * 2 + qx].segments.push_back(ref);
  }
  for (auto& q : quad) {
    if (q.x1 > q.x0 && q.y1 > q.y0) refine(std::move(q), opt, out);
  }
}

}  // namespace

PartitionResult partition(int xsize, int ysize, const std::vector<SegRef>& segments,
                          const PartitionOptions& options) {
  CPLA_ASSERT(options.k >= 1 && options.max_segments >= 1);
  PartitionResult out;

  const int k = std::min({options.k, xsize, ysize});
  for (int ky = 0; ky < k; ++ky) {
    for (int kx = 0; kx < k; ++kx) {
      PartitionRegion region;
      region.x0 = kx * xsize / k;
      region.x1 = (kx + 1) * xsize / k;
      region.y0 = ky * ysize / k;
      region.y1 = (ky + 1) * ysize / k;
      region.depth = 0;
      for (const SegRef& ref : segments) {
        if (ref.mid.x >= region.x0 && ref.mid.x < region.x1 && ref.mid.y >= region.y0 &&
            ref.mid.y < region.y1) {
          region.segments.push_back(ref);
        }
      }
      refine(std::move(region), options, &out);
    }
  }
  return out;
}

}  // namespace cpla::core
