#include "src/core/scheduler.hpp"

#include <algorithm>
#include <queue>

#include "src/util/check.hpp"

namespace cpla::core {

Scheduler::Scheduler(int threads)
    : threads_(std::max(1, threads > 0 ? threads
                                       : static_cast<int>(std::thread::hardware_concurrency()))) {
  queues_.reserve(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  // Worker 0 is the caller; only the remaining workers get pool threads.
  pool_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    pool_.emplace_back([this, w] { worker_loop(w); });
  }
}

Scheduler::~Scheduler() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : pool_) t.join();
}

void Scheduler::run(TaskGraph* graph) {
  CPLA_ASSERT(graph != nullptr);
  if (graph->nodes_.empty()) return;
  if (threads_ == 1) {
    run_inline(graph);
    return;
  }

  {
    MutexLock lock(mu_);
    graph_ = graph;
    remaining_ = graph->size();
    // Seed the initially-ready nodes round-robin so every worker starts
    // with local work instead of stampeding one queue.
    int w = 0;
    int ready = 0;
    for (int i = 0; i < graph->size(); ++i) {
      if (graph->nodes_[static_cast<std::size_t>(i)].deps != 0) continue;
      {
        WorkerQueue& wq = *queues_[static_cast<std::size_t>(w)];
        MutexLock qlock(wq.mu);
        wq.tasks.push_back(i);
      }
      w = (w + 1) % threads_;
      ++ready;
    }
    pending_ = ready;
    CPLA_ASSERT_MSG(ready > 0, "task graph has a dependency cycle (no ready node)");
    ++generation_;
  }
  work_cv_.notify_all();

  participate(0);

  MutexLock lock(mu_);
  graph_ = nullptr;
}

void Scheduler::run_inline(TaskGraph* graph) {
  // Deterministic single-thread path: Kahn's algorithm with an id-ordered
  // ready set, so the execution order is a pure function of the graph.
  std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
  for (int i = 0; i < graph->size(); ++i) {
    if (graph->nodes_[static_cast<std::size_t>(i)].deps == 0) ready.push(i);
  }
  int executed = 0;
  while (!ready.empty()) {
    const int id = ready.top();
    ready.pop();
    TaskGraph::Node& node = graph->nodes_[static_cast<std::size_t>(id)];
    node.fn();
    ++executed;
    for (int succ : node.out) {
      if (--graph->nodes_[static_cast<std::size_t>(succ)].deps == 0) ready.push(succ);
    }
  }
  CPLA_ASSERT_MSG(executed == graph->size(), "task graph has a dependency cycle");
}

void Scheduler::worker_loop(int worker) {
  long seen = 0;
  MutexLock lock(mu_);
  while (true) {
    while (!shutdown_ && generation_ == seen) work_cv_.wait(mu_);
    if (shutdown_) return;
    seen = generation_;
    lock.unlock();
    participate(worker);
    lock.lock();
  }
}

void Scheduler::participate(int worker) {
  while (true) {
    int node = -1;
    TaskGraph* graph = nullptr;
    if (try_pop(worker, &node, &graph)) {
      execute(graph, node, worker);
      continue;
    }
    MutexLock lock(mu_);
    if (remaining_ == 0) return;
    if (pending_ == 0) {
      // No claimable work right now: park until a finishing node enqueues
      // successors or the run completes. (pending_ only moves under mu_,
      // so the missed-wakeup window is closed.)
      while (!(remaining_ == 0 || pending_ > 0 || shutdown_)) work_cv_.wait(mu_);
      if (remaining_ == 0 || shutdown_) return;
    }
  }
}

bool Scheduler::try_pop(int worker, int* node, TaskGraph** graph) {
  // Own queue first (back = most recently pushed, cache-hot), then steal
  // from the front of the others in ring order.
  for (int k = 0; k < threads_; ++k) {
    const int q = (worker + k) % threads_;
    WorkerQueue& wq = *queues_[static_cast<std::size_t>(q)];
    {
      MutexLock qlock(wq.mu);
      if (wq.tasks.empty()) continue;
      if (k == 0) {
        *node = wq.tasks.back();
        wq.tasks.pop_back();
      } else {
        *node = wq.tasks.front();
        wq.tasks.pop_front();
      }
    }
    MutexLock lock(mu_);
    --pending_;
    // Claim-time graph read: a queued-but-unclaimed task pins remaining_
    // above zero, which pins graph_ to the run that seeded the task (run()
    // only clears it after remaining_ hits zero). A straggler from a
    // previous generation that claims a task here therefore always
    // executes it against the run that task belongs to, never a stale —
    // possibly destroyed — graph.
    *graph = graph_;
    CPLA_ASSERT(*graph != nullptr);
    return true;
  }
  return false;
}

void Scheduler::execute(TaskGraph* graph, int node, int worker) {
  TaskGraph::Node& n = graph->nodes_[static_cast<std::size_t>(node)];
  n.fn();

  std::vector<int> ready;
  MutexLock lock(mu_);
  for (int succ : n.out) {
    if (--graph->nodes_[static_cast<std::size_t>(succ)].deps == 0) ready.push_back(succ);
  }
  if (!ready.empty()) {
    WorkerQueue& wq = *queues_[static_cast<std::size_t>(worker)];
    MutexLock qlock(wq.mu);
    for (int r : ready) wq.tasks.push_back(r);
  }
  pending_ += static_cast<int>(ready.size());
  if (--remaining_ == 0) {
    work_cv_.notify_all();
  } else if (!ready.empty()) {
    work_cv_.notify_all();
  }
}

}  // namespace cpla::core
