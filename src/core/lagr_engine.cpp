#include "src/core/lagr_engine.hpp"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.hpp"
#include "src/util/fault_inject.hpp"

namespace cpla::core {

namespace {

/// Option index of each var's current layer (the engines' shared
/// convention: 0 when the current layer is not among the options).
std::vector<int> incumbent_pick(const PartitionProblem& p) {
  std::vector<int> pick(p.vars.size(), 0);
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
      if (p.vars[i].layers[k] == p.vars[i].current_layer) pick[i] = static_cast<int>(k);
    }
  }
  return pick;
}

}  // namespace

EngineResult solve_partition_lagr(const PartitionProblem& p,
                                  const assign::AssignState& state,
                                  const LagrPartitionOptions& options) {
  static obs::Counter& calls = obs::metrics().counter("lagr.solve.calls");
  static obs::Counter& improved = obs::metrics().counter("lagr.solve.improved");
  (void)state;
  calls.add();

  EngineResult result;
  result.pick = incumbent_pick(p);
  if (p.vars.empty()) return result;
  const double incumbent_obj = p.evaluate(result.pick);
  result.objective = incumbent_obj;

  if (CPLA_FAULT_POINT("lagr.solve")) {
    result.solver_ok = false;
    result.code = StatusCode::kNumericalFailure;
    return result;
  }

  const std::size_t nvars = p.vars.size();
  const std::size_t nrows = p.cap_rows.size();

  // Row membership per (var, option): rows a var loads iff it picks the
  // row's layer. Built once; the pricing sweeps index it per candidate.
  std::vector<std::vector<std::vector<int>>> rows_of(nvars);
  for (std::size_t i = 0; i < nvars; ++i) {
    rows_of[i].resize(p.vars[i].layers.size());
  }
  for (std::size_t r = 0; r < nrows; ++r) {
    const CapRow& row = p.cap_rows[r];
    for (int i : row.members) {
      const VarGroup& var = p.vars[static_cast<std::size_t>(i)];
      for (std::size_t k = 0; k < var.layers.size(); ++k) {
        if (var.layers[k] == row.layer) {
          rows_of[static_cast<std::size_t>(i)][k].push_back(static_cast<int>(r));
        }
      }
    }
  }
  // Pairs touching each var, for the linearized quadratic terms.
  std::vector<std::vector<int>> pairs_of(nvars);
  for (std::size_t q = 0; q < p.pairs.size(); ++q) {
    pairs_of[static_cast<std::size_t>(p.pairs[q].child)].push_back(static_cast<int>(q));
    pairs_of[static_cast<std::size_t>(p.pairs[q].parent)].push_back(static_cast<int>(q));
  }

  // Step scale: mean linear-cost spread per var, so the multiplier prices
  // compete with the timing costs at any instance magnitude.
  double scale = 0.0;
  for (const VarGroup& var : p.vars) {
    const auto [lo, hi] = std::minmax_element(var.cost.begin(), var.cost.end());
    scale += (var.cost.empty()) ? 0.0 : (*hi - *lo);
  }
  scale /= static_cast<double>(nvars);
  if (!(scale > 0.0)) scale = 1.0;

  std::vector<double> nu(nrows, 0.0);  // row multipliers
  std::vector<int> pick = result.pick;
  std::vector<int> best = result.pick;
  double best_obj = incumbent_obj;
  bool best_is_incumbent = true;

  for (int iter = 0; iter < options.iterations; ++iter) {
    result.iterations = iter + 1;

    // Coordinate sweep in var order on the dualized objective; the pair
    // terms are linearized at the neighbors' current picks.
    for (std::size_t i = 0; i < nvars; ++i) {
      const VarGroup& var = p.vars[i];
      double best_cost = 1e300;
      int best_k = pick[i];
      for (std::size_t k = 0; k < var.layers.size(); ++k) {
        double cost = var.cost[k];
        for (int r : rows_of[i][k]) cost += nu[static_cast<std::size_t>(r)];
        const int layer = var.layers[k];
        for (int q : pairs_of[i]) {
          const VarPair& pair = p.pairs[static_cast<std::size_t>(q)];
          if (pair.child == static_cast<int>(i)) {
            const int lp = p.vars[static_cast<std::size_t>(pair.parent)]
                               .layers[static_cast<std::size_t>(
                                   pick[static_cast<std::size_t>(pair.parent)])];
            cost += p.pair_cost(pair, lp, layer);
          } else {
            const int lc = p.vars[static_cast<std::size_t>(pair.child)]
                               .layers[static_cast<std::size_t>(
                                   pick[static_cast<std::size_t>(pair.child)])];
            cost += p.pair_cost(pair, layer, lc);
          }
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_k = static_cast<int>(k);
        }
      }
      pick[i] = best_k;
    }

    // Score the sweep's integral pick on the true objective; keep the best
    // capacity-feasible one (strict improvement over the incumbent only —
    // ties keep the incumbent, minimizing churn).
    const double obj = p.evaluate(pick);
    if (obj < best_obj && rows_feasible(p, pick)) {
      best_obj = obj;
      best = pick;
      best_is_incumbent = false;
    }

    // Projected sub-gradient step on the row violations, diminishing.
    const double step =
        options.step * scale / (1.0 + options.decay * static_cast<double>(iter));
    bool any_violation = false;
    for (std::size_t r = 0; r < nrows; ++r) {
      const CapRow& row = p.cap_rows[r];
      int used = 0;
      for (int i : row.members) {
        const VarGroup& var = p.vars[static_cast<std::size_t>(i)];
        if (var.layers[static_cast<std::size_t>(pick[static_cast<std::size_t>(i)])] ==
            row.layer) {
          ++used;
        }
      }
      const int over = used - row.cap_remaining;
      if (over > 0) any_violation = true;
      nu[r] = std::max(0.0, nu[r] + step * static_cast<double>(over));
    }
    // Feasible and stationary: another sweep with unchanged prices would
    // reproduce the same pick.
    if (!any_violation && pick == best) break;
  }

  if (!best_is_incumbent && p.options.polish) {
    polish_pick(p, &best);
    const double polished = p.evaluate(best);
    if (polished <= best_obj) best_obj = polished;
  }
  result.pick = std::move(best);
  result.objective = best_obj;
  result.relaxation_obj = best_obj;
  if (!best_is_incumbent) improved.add();
  return result;
}

lagr::NetLagrResult run_lagr(assign::AssignState* state, const timing::RcTable& rc,
                             const CriticalSet& critical,
                             const lagr::NetLagrOptions& options) {
  return lagr::optimize_nets(state, rc, critical.nets, options);
}

}  // namespace cpla::core
