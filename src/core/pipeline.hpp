#pragma once

// End-to-end preparation pipeline: design -> 2-D global routing -> segment
// trees -> initial layer assignment -> ready-to-optimize AssignState. This
// is the "given initial routing and layer assignment" precondition of
// Problem 1 (CPLA).

#include <memory>

#include "src/assign/initial_assign.hpp"
#include "src/assign/state.hpp"
#include "src/grid/design.hpp"
#include "src/route/router.hpp"
#include "src/timing/rc_table.hpp"

namespace cpla::core {

struct PipelineOptions {
  route::RouterOptions router;
  assign::InitialAssignOptions initial;
};

/// Owns the design and everything derived from it. Movable, not copyable.
struct Prepared {
  std::unique_ptr<grid::Design> design;
  std::unique_ptr<assign::AssignState> state;
  std::unique_ptr<timing::RcTable> rc;
  long route_overflow_2d = 0;
};

/// Routes and initially assigns the whole design.
Prepared prepare(grid::Design design, const PipelineOptions& options = {});

}  // namespace cpla::core
