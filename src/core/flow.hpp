#pragma once

// The CPLA flow (Problem 1): select critical nets, partition their
// segments (K x K + self-adaptive quadtree), solve each partition with the
// SDP relaxation (or the exact ILP) in parallel, post-map, commit, and
// iterate until the critical-path timing stops improving.

#include <atomic>
#include <functional>
#include <unordered_map>

#include "src/assign/state.hpp"
#include "src/core/backend_arbiter.hpp"
#include "src/core/critical.hpp"
#include "src/core/displace.hpp"
#include "src/core/model.hpp"
#include "src/core/partition.hpp"
#include "src/core/solve_guard.hpp"
#include "src/ilp/branch_bound.hpp"
#include "src/sdp/solver.hpp"
#include "src/timing/incremental.hpp"
#include "src/util/status.hpp"

namespace cpla::core {

/// The per-partition solve as a reusable callable: given a built problem
/// and the live state, produce a guarded solution. The flow's default is
/// guarded_solve() with the run's engine options; src/eco substitutes a
/// caching wrapper. Implementations must honor the guarded_solve contract:
/// never throw, always return a well-formed pick. Called concurrently from
/// the OpenMP solve phase — capture only thread-safe state.
using PartitionSolveFn = std::function<GuardedSolve(
    const PartitionProblem& problem, const assign::AssignState& state, GuardStats* stats)>;

/// The batched counterpart: solve a whole commit batch of partitions at
/// once (one GuardedSolve per input problem, in order). The flow's default
/// is guarded_solve_batch(); src/eco substitutes a wrapper that serves
/// per-partition cache hits and batches only the misses. Must be
/// bit-identical to calling the per-partition path on each problem.
using PartitionBatchSolveFn = std::function<std::vector<GuardedSolve>(
    const std::vector<const PartitionProblem*>& problems, const assign::AssignState& state,
    GuardStats* stats)>;

/// The Table-2 metric set, computed over the released nets.
struct LaMetrics {
  double avg_tcp = 0.0;   // Avg(Tcp)
  double max_tcp = 0.0;   // Max(Tcp)
  long via_overflow = 0;  // OV#
  long via_count = 0;     // via#
  long wire_overflow = 0;
};

LaMetrics compute_metrics(const assign::AssignState& state, const timing::RcTable& rc,
                          const CriticalSet& critical);

// Engine and GuardTier/GuardOptions/GuardStats live in solve_guard.hpp.

struct CplaOptions {
  double critical_ratio = 0.005;  // 0.5%, the paper's headline setting
  Engine engine = Engine::kSdp;
  PartitionOptions partition;
  ModelOptions model;
  int max_rounds = 8;
  double min_improvement = 0.001;  // stop when Avg(Tcp) improves < 0.1%
  // Extra rounds after convergence with the max-focus exponent boosted, so
  // the weights collapse onto the globally-worst nets (a dedicated
  // Max(Tcp)-shaving phase; kept only if the (Avg, Max) score improves).
  int max_refine_rounds = 2;
  double refine_gamma = 8.0;
  // Victim displacement (Problem 1 re-assigns non-critical nets too):
  // demote non-released blockers off critical corridors before each round.
  bool displace_victims = true;
  DisplaceOptions displace;
  sdp::SdpOptions sdp{.max_iterations = 60, .tol = 1e-5, .step_fraction = 0.98};
  ilp::MipOptions ilp;
  // Cross-backend arbiter (src/core/backend_arbiter): per-partition choice
  // between the SDP and Lagrangian engines. The default mode (kSdp) leaves
  // `engine` in charge everywhere — the stock flow, bit-identical to the
  // arbiter-free path. kHybrid routes large / deadline-pressured
  // partitions to Engine::kLagr; choices are recorded (and the adaptive
  // history advanced) only at serial commit boundaries, so runs stay
  // deterministic. Ignored when a `partition_solver` hook is installed —
  // the hook owns backend choice (src/eco runs its own history-free
  // arbiter so cached solves replay bit-identically).
  ArbiterOptions backend;
  // Graceful degradation: every partition solve runs through the guarded
  // escalation chain and commits transactionally (see solve_guard.hpp).
  GuardOptions guard;
  bool parallel = true;  // OpenMP over partitions
  // Batched SDP backend (src/sdp/batch_solver): solve the round's small
  // partition SDPs kLanes at a time as structure-of-arrays slabs, scheduled
  // on the work-stealing task graph (src/core/scheduler) instead of the
  // per-partition OpenMP loop. Results are bit-identical to the scalar
  // path at equal commit-batch size; oversized/ineligible partitions and
  // escalation tiers still run scalar through the unchanged solve-guard
  // chain. Ignored for Engine::kIlp and whenever guard.deadline_ms > 0
  // (per-solve deadlines cannot be honored lane-wise).
  struct BatchOptions {
    bool enabled = false;
    sdp::BatchLimits limits;
  };
  BatchOptions batch;
  // Commit-batch size of the Gauss-Seidel sweep: how many partitions are
  // solved from one snapshot before committing. 0 = auto (the OpenMP
  // thread count; widened to keep slab lanes full in batch mode). The
  // granularity changes which state neighboring partitions see, so
  // batch-vs-scalar equivalence holds at equal commit_batch only.
  int commit_batch = 0;
  // Ablation: commit all partitions from one snapshot (Jacobi) instead of
  // committing each batch before building the next (Gauss-Seidel, default).
  bool jacobi_commits = false;
  // ECO hooks (src/eco). When `partition_solver` is set, every partition
  // solve routes through it instead of guarded_solve() directly. When
  // `timing_cache` is set (not owned), per-net Elmore evaluations are
  // memoized through it; results are bit-identical to direct evaluation
  // (the cache is keyed on the exact layer vector). Both default to off,
  // which is the stock flow.
  PartitionSolveFn partition_solver;
  // Batched counterpart of `partition_solver`. Batch mode requires it when
  // `partition_solver` is set (the hook must observe every solve), and
  // uses guarded_solve_batch() when neither hook is set.
  PartitionBatchSolveFn partition_batch_solver;
  timing::TimingCache* timing_cache = nullptr;
  // Live-STA critical-set rediscovery (src/sta). When set (not owned, must
  // be built against this state), every round re-times the graph
  // incrementally and re-selects the working set at `critical_ratio` from
  // worst-over-corners slack, so rip-up rounds chase the design's *live*
  // critical paths instead of the entry snapshot. Scoring, convergence,
  // and best-state tracking stay on the entry critical set — the fixed
  // yardstick the never-worse contract is judged against. The graph is
  // re-timed once more on exit so it reflects the landed state.
  sta::TimingGraph* sta_graph = nullptr;
  // Cooperative cancellation (src/serve): when set and it becomes true, the
  // flow stops at the next round/batch boundary and returns with
  // CplaResult::cancelled set. A cancelled run still lands on the tracked
  // best state — all committed work remains capacity-valid and never-worse
  // — but it is a *partial* optimization; callers wanting replay-identical
  // results must either roll back to the entry state or treat the run as
  // complete. Not owned; may be flipped from another thread.
  const std::atomic<bool>* cancel = nullptr;
};

struct CplaResult {
  LaMetrics metrics;
  int rounds = 0;
  int partitions_solved = 0;
  int max_partition_depth = 0;
  bool cancelled = false;  // CplaOptions::cancel fired mid-run
  GuardStats guard_stats;  // per-tier escalation counts across all solves
  ArbiterStats arbiter_stats;  // per-backend decision counts (hybrid/lagr modes)
};

/// Runs CPLA on a pre-selected critical set (share the set with a TILA run
/// for a fair comparison).
CplaResult run_cpla(assign::AssignState* state, const timing::RcTable& rc,
                    const CriticalSet& critical, const CplaOptions& options = {});

/// Convenience: selects the critical set at `options.critical_ratio` first.
CplaResult run_cpla(assign::AssignState* state, const timing::RcTable& rc,
                    const CplaOptions& options = {});

struct OptimizeResult {
  Status status;  // kOk, or the dominant failure when the run degraded hard
  CplaResult result;
};

/// The never-crash, never-worse entry point: runs CPLA with the full
/// degradation ladder and guarantees on return that the assignment is
/// capacity-valid and its critical timing + overflow are no worse than on
/// entry — under *any* failure, including an exception escaping the flow
/// (the state is rolled back to the initial assignment in that case).
OptimizeResult optimize(assign::AssignState* state, const timing::RcTable& rc,
                        const CriticalSet& critical, const CplaOptions& options = {});
OptimizeResult optimize(assign::AssignState* state, const timing::RcTable& rc,
                        const CplaOptions& options = {});

}  // namespace cpla::core
