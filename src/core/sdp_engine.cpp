#include "src/core/sdp_engine.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/util/check.hpp"
#include "src/util/logging.hpp"

namespace cpla::core {

namespace {

/// Scalar-variable offsets: option k of var i lives at dense index
/// 1 + offset[i] + k (index 0 is the lifted "1" corner).
std::vector<int> var_offsets(const PartitionProblem& p) {
  std::vector<int> off(p.vars.size() + 1, 0);
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    off[i + 1] = off[i] + static_cast<int>(p.vars[i].layers.size());
  }
  return off;
}

}  // namespace

std::vector<int> post_map(const PartitionProblem& p, const assign::AssignState& state,
                          const std::vector<std::vector<double>>& x) {
  const int num_layers = state.design().grid.num_layers();
  std::vector<int> pick(p.vars.size(), -1);

  // Remaining capacity per (layer, edge) over the edges the partition
  // touches, with all in-partition segments lifted out.
  std::unordered_map<long long, int> remaining;
  auto ekey = [](int l, int e) { return (static_cast<long long>(l) << 32) | e; };
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    const VarGroup& var = p.vars[i];
    for (int l : var.layers) {
      state.for_each_edge(var.net, var.seg, [&](int e) {
        const long long k = ekey(l, e);
        if (!remaining.count(k)) {
          int others = state.wire_usage(l, e);
          // Subtract in-partition segments currently on this (layer, edge).
          for (std::size_t j = 0; j < p.vars.size(); ++j) {
            if (p.vars[j].current_layer != l) continue;
            state.for_each_edge(p.vars[j].net, p.vars[j].seg, [&](int e2) {
              if (e2 == e) others -= 1;
            });
          }
          remaining[k] = state.wire_cap(l, e) - others;
        }
      });
    }
  }

  auto fits = [&](std::size_t i, int l) {
    bool ok = true;
    state.for_each_edge(p.vars[i].net, p.vars[i].seg, [&](int e) {
      if (remaining[ekey(l, e)] < 1) ok = false;
    });
    return ok;
  };
  auto consume = [&](std::size_t i, int l) {
    state.for_each_edge(p.vars[i].net, p.vars[i].seg,
                        [&](int e) { remaining[ekey(l, e)] -= 1; });
  };

  // Alg. 1: layers from the top down; per layer, grab the highest-x
  // unassigned segments while capacity lasts. A segment competes at layer l
  // only when l is its best *remaining* option (higher layers have already
  // been swept), so capacity-race losers cascade to their next-best layer.
  for (int l = num_layers - 1; l >= 0; --l) {
    std::vector<std::pair<double, std::size_t>> cands;  // (x value, var)
    std::vector<int> opt_of(p.vars.size(), -1);
    for (std::size_t i = 0; i < p.vars.size(); ++i) {
      if (pick[i] >= 0) continue;  // already on a higher layer
      const auto& layers = p.vars[i].layers;
      int best_remaining = -1;
      for (std::size_t k = 0; k < layers.size(); ++k) {
        if (layers[k] > l) continue;  // already swept and lost there
        // '>=' breaks ties toward the higher layer (options are stored in
        // ascending layer order), matching the paper's high-layer preference.
        if (best_remaining < 0 || x[i][k] >= x[i][best_remaining] - 1e-12) {
          best_remaining = static_cast<int>(k);
        }
      }
      if (best_remaining >= 0 && layers[best_remaining] == l) {
        cands.push_back({x[i][best_remaining], i});
        opt_of[i] = best_remaining;
      }
    }
    std::sort(cands.begin(), cands.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [xv, i] : cands) {
      (void)xv;
      if (!fits(i, l)) continue;
      pick[i] = opt_of[i];
      consume(i, l);
    }
  }

  // Fallback for anything unplaced: cheapest overflow increase, then
  // highest x.
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    if (pick[i] >= 0) continue;
    int best_k = 0;
    double best_score = -1e300;
    for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
      const int l = p.vars[i].layers[k];
      int overflow = 0;
      state.for_each_edge(p.vars[i].net, p.vars[i].seg, [&](int e) {
        if (remaining[ekey(l, e)] < 1) overflow += 1;
      });
      const double score = -1000.0 * overflow + x[i][k];
      if (score > best_score) {
        best_score = score;
        best_k = static_cast<int>(k);
      }
    }
    pick[i] = best_k;
    consume(i, p.vars[i].layers[best_k]);
  }
  return pick;
}

PartitionSdp build_partition_sdp(const PartitionProblem& p) {
  PartitionSdp out;
  if (p.vars.empty()) return out;

  const std::vector<int> off = var_offsets(p);
  const int n_scalar = off.back();
  const int dense_dim = 1 + n_scalar;

  // All costed (parent-option, child-option) via combos carry objective
  // entries; a capped subset additionally gets the product-bound rows
  // (nonnegativity + RLT), since the Schur complement is m x m and grows
  // with every auxiliary row. For large partitions only the most expensive
  // combos keep the strengthening; the tail relies on the PSD minor bounds.
  std::vector<std::pair<int, int>> pair_combos;  // (pair index, combo id: kp*nc+kc)
  std::vector<double> combo_cost;
  for (std::size_t pi = 0; pi < p.pairs.size(); ++pi) {
    const VarPair& pair = p.pairs[pi];
    const auto& lp = p.vars[pair.parent].layers;
    const auto& lc = p.vars[pair.child].layers;
    for (std::size_t kp = 0; kp < lp.size(); ++kp) {
      for (std::size_t kc = 0; kc < lc.size(); ++kc) {
        if (lp[kp] != lc[kc]) {
          pair_combos.push_back({static_cast<int>(pi),
                                 static_cast<int>(kp * lc.size() + kc)});
          combo_cost.push_back(p.pair_cost(pair, lp[kp], lc[kc]));
        }
      }
    }
  }
  const std::size_t kMaxAuxCombos = p.options.rlt_rows ? 160 : 0;
  std::vector<std::pair<int, int>> aux_combos = pair_combos;
  if (aux_combos.size() > kMaxAuxCombos) {
    std::vector<std::size_t> order(pair_combos.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::nth_element(
        order.begin(), order.begin() + static_cast<std::ptrdiff_t>(kMaxAuxCombos), order.end(),
        [&](std::size_t a, std::size_t b) { return combo_cost[a] > combo_cost[b]; });
    aux_combos.clear();
    for (std::size_t i = 0; i < kMaxAuxCombos; ++i) aux_combos.push_back(pair_combos[order[i]]);
  }
  const int n_slack = static_cast<int>(p.cap_rows.size()) +
                      2 * static_cast<int>(aux_combos.size());

  sdp::BlockStructure structure;
  structure.push_back({sdp::BlockSpec::Kind::kDense, dense_dim});
  if (n_slack > 0) structure.push_back({sdp::BlockSpec::Kind::kDiag, n_slack});
  sdp::SdpProblem sp(structure);

  auto xi = [&](int var, int opt) { return 1 + off[var] + opt; };

  // Objective: segment costs on the diagonal, via costs on products.
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
      sp.add_objective_entry(0, xi(i, k), xi(i, k), p.vars[i].cost[k]);
    }
  }
  for (const auto& [pi, combo] : pair_combos) {
    const VarPair& pair = p.pairs[pi];
    const auto& lc = p.vars[pair.child].layers;
    const int kp = combo / static_cast<int>(lc.size());
    const int kc = combo % static_cast<int>(lc.size());
    const double tv = p.pair_cost(pair, p.vars[pair.parent].layers[kp], lc[kc]);
    const int a = xi(pair.parent, kp);
    const int b = xi(pair.child, kc);
    sp.add_objective_entry(0, std::min(a, b), std::max(a, b), tv / 2.0);
  }

  // Y00 = 1.
  {
    const int c = sp.add_constraint(1.0);
    sp.add_entry(c, 0, 0, 0, 1.0);
  }
  // Y_kk = Y_0k.
  for (int k = 1; k < dense_dim; ++k) {
    const int c = sp.add_constraint(0.0);
    sp.add_entry(c, 0, k, k, 1.0);
    sp.add_entry(c, 0, 0, k, -0.5);
  }
  // One layer per segment.
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    const int c = sp.add_constraint(1.0);
    for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
      sp.add_entry(c, 0, 0, xi(i, k), 0.5);
    }
  }
  // Capacity rows with slack.
  int slack = 0;
  for (const CapRow& row : p.cap_rows) {
    const int c = sp.add_constraint(static_cast<double>(row.cap_remaining));
    for (int m : row.members) {
      // Which option of var m corresponds to row.layer?
      const auto& layers = p.vars[m].layers;
      for (std::size_t k = 0; k < layers.size(); ++k) {
        if (layers[k] == row.layer) sp.add_entry(c, 0, 0, xi(m, k), 0.5);
      }
    }
    sp.add_entry(c, 1, slack, slack, 1.0);
    ++slack;
  }
  // Product bounds per kept combo: Y_ab - s1 = 0 (s1 >= 0) and
  // Y_ab - x_a - x_b + 1 - s2 = 0 (s2 >= 0).
  for (const auto& [pi, combo] : aux_combos) {
    const VarPair& pair = p.pairs[pi];
    const auto& lc = p.vars[pair.child].layers;
    const int kp = combo / static_cast<int>(lc.size());
    const int kc = combo % static_cast<int>(lc.size());
    const int a = xi(pair.parent, kp);
    const int b = xi(pair.child, kc);
    {
      const int c = sp.add_constraint(0.0);
      sp.add_entry(c, 0, std::min(a, b), std::max(a, b), 0.5);
      sp.add_entry(c, 1, slack, slack, -1.0);
      ++slack;
    }
    {
      const int c = sp.add_constraint(-1.0);
      sp.add_entry(c, 0, std::min(a, b), std::max(a, b), 0.5);
      sp.add_entry(c, 0, 0, a, -0.5);
      sp.add_entry(c, 0, 0, b, -0.5);
      sp.add_entry(c, 1, slack, slack, -1.0);
      ++slack;
    }
  }
  out.problem.emplace(std::move(sp));
  return out;
}

EngineResult finish_partition_sdp(const PartitionProblem& p, const assign::AssignState& state,
                                  const sdp::SdpResult& sr) {
  EngineResult result;
  if (p.vars.empty()) return result;

  const std::vector<int> off = var_offsets(p);
  auto xi = [&](int var, int opt) { return 1 + off[var] + opt; };

  result.iterations = sr.iterations;
  result.relaxation_obj = sr.primal_obj;
  result.solver_ok =
      (sr.status == sdp::SdpStatus::kOptimal || sr.status == sdp::SdpStatus::kStalled ||
       sr.status == sdp::SdpStatus::kIterLimit);
  switch (sr.status) {
    case sdp::SdpStatus::kNumerical: result.code = StatusCode::kNumericalFailure; break;
    case sdp::SdpStatus::kDeadline: result.code = StatusCode::kDeadlineExceeded; break;
    case sdp::SdpStatus::kIterLimit: result.code = StatusCode::kIterationLimit; break;
    case sdp::SdpStatus::kBadProblem: result.code = StatusCode::kBadInput; break;
    default: break;
  }

  // Extract x from the first row/diagonal of the dense block.
  std::vector<std::vector<double>> x(p.vars.size());
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    x[i].resize(p.vars[i].layers.size());
    for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
      if (result.solver_ok) {
        x[i][k] = 0.5 * (sr.x.dense(0)(0, xi(i, k)) + sr.x.dense(0)(xi(i, k), xi(i, k)));
      }
      // Numerical failure (or a non-finite entry that slipped through a
      // nominally-ok solve): fall back to the current assignment.
      if (!result.solver_ok || !std::isfinite(x[i][k])) {
        x[i][k] = (p.vars[i].layers[k] == p.vars[i].current_layer) ? 1.0 : 0.0;
      }
    }
  }

  result.pick = post_map(p, state, x);
  if (p.options.polish && rows_feasible(p, result.pick)) polish_pick(p, &result.pick);
  result.objective = p.evaluate(result.pick);

  // Incremental guard: the rounded solution must not regress the model
  // objective relative to the incumbent assignment (rounding a weak
  // relaxation can otherwise scramble an already-good region). The
  // incumbent is also polished, so the engine is at least as strong as
  // coordinate descent from the current assignment.
  std::vector<int> incumbent(p.vars.size(), 0);
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
      if (p.vars[i].layers[k] == p.vars[i].current_layer) incumbent[i] = static_cast<int>(k);
    }
  }
  if (p.options.polish && rows_feasible(p, incumbent)) polish_pick(p, &incumbent);
  const double incumbent_obj = p.evaluate(incumbent);
  if (p.options.incumbent_guard && result.objective > incumbent_obj) {
    result.pick = std::move(incumbent);
    result.objective = incumbent_obj;
  }
  return result;
}

EngineResult solve_partition_sdp(const PartitionProblem& p, const assign::AssignState& state,
                                 const sdp::SdpOptions& options) {
  EngineResult result;
  if (p.vars.empty()) return result;
  const PartitionSdp built = build_partition_sdp(p);
  const sdp::SdpResult sr = sdp::solve(*built.problem, options);
  return finish_partition_sdp(p, state, sr);
}

}  // namespace cpla::core
