#pragma once

// Lagrangian sub-gradient engine over the partition model — the second
// full-chip backend next to the SDP relaxation. The capacity rows (4c) are
// dualized with one multiplier each; pricing is a coordinate sweep in var
// order against the linear costs, the dualized row prices, and the pair
// costs linearized at the neighbors' current picks (the TILA approximation,
// here confined to a tier whose output is validated by the solve guard).
// Every sweep's integral pick is scored on the *true* model objective and
// the best capacity-feasible pick seen is returned; when no sweep beats the
// incumbent, the incumbent comes back unchanged — the result always passes
// the guard's pick_acceptable validation, preserving the never-worse
// contract without any PSD numerics or wall-clock risk.
//
// Deterministic by construction: serial sweeps in var order, multiplier
// updates in row order (partition-level parallelism lives in the flow's
// loop over partitions). This TU is registered in the bit-identity
// contract (-ffp-contract=off; src/util/determinism_contract.hpp).

#include "src/core/critical.hpp"
#include "src/core/model.hpp"
#include "src/core/sdp_engine.hpp"
#include "src/lagr/net_engine.hpp"

namespace cpla::core {

struct LagrPartitionOptions {
  int iterations = 40;   // sub-gradient sweeps
  double step = 0.5;     // initial multiplier step, x the per-var cost scale
  double decay = 0.15;   // diminishing step: step / (1 + decay * k)
};

/// Solves one partition with the dualized-capacity sub-gradient method.
/// Never throws; the pick always satisfies the guard's validation (best
/// feasible sweep result, or the incumbent). Fault site "lagr.solve"
/// simulates a failed solve (incumbent pick, kNumericalFailure) so tests
/// can drive the cross-backend escalation chain.
EngineResult solve_partition_lagr(const PartitionProblem& problem,
                                  const assign::AssignState& state,
                                  const LagrPartitionOptions& options = {});

/// Convenience mirror of run_tila: the net-level parallel engine
/// (src/lagr/net_engine) driven by a critical set.
lagr::NetLagrResult run_lagr(assign::AssignState* state, const timing::RcTable& rc,
                             const CriticalSet& critical,
                             const lagr::NetLagrOptions& options = {});

}  // namespace cpla::core
