#include "src/core/displace.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "src/assign/net_dp.hpp"
#include "src/timing/elmore.hpp"
#include "src/util/logging.hpp"

namespace cpla::core {

namespace {

long long slot_key(int layer, int edge) {
  return (static_cast<long long>(layer) << 32) | static_cast<unsigned>(edge);
}

}  // namespace

int make_headroom(assign::AssignState* state, const timing::RcTable& rc,
                  const CriticalSet& critical, const DisplaceOptions& options) {
  const auto& g = state->design().grid;

  // 1. Wanted slots: for each nearly-critical released segment, the layers
  //    above its current one (same direction) on every edge it crosses,
  //    where remaining capacity is below the headroom target.
  std::unordered_set<long long> wanted;
  for (int net : critical.nets) {
    const route::SegTree& tree = state->tree(net);
    if (tree.segs.empty()) continue;
    const timing::NetTiming t = timing::compute_timing(tree, state->layers(net), rc);
    for (const route::Segment& seg : tree.segs) {
      if (t.criticality[seg.id] < options.min_criticality) continue;
      const int current = state->layers(net)[seg.id];
      for (int l : state->allowed_layers(seg.horizontal)) {
        if (l <= current) continue;  // headroom is only needed above
        state->for_each_edge(net, seg.id, [&](int e) {
          if (state->wire_cap(l, e) - state->wire_usage(l, e) < options.headroom) {
            wanted.insert(slot_key(l, e));
          }
        });
      }
    }
  }
  if (wanted.empty()) return 0;

  // 2. Victim candidates: non-released nets occupying wanted slots, ranked
  //    by how many wanted slots they block (clear the biggest blockers
  //    first). Only short/medium nets are displaced — demoting a long net
  //    would create a new timing problem.
  std::unordered_map<int, int> blocked_by;  // net -> #wanted slots occupied
  for (int net = 0; net < state->num_nets(); ++net) {
    if (critical.released[net] || !state->assigned(net)) continue;
    const auto& layers = state->layers(net);
    long wl = 0;
    for (const auto& seg : state->tree(net).segs) wl += seg.length();
    if (wl > 40) continue;
    for (const route::Segment& seg : state->tree(net).segs) {
      const int l = layers[seg.id];
      state->for_each_edge(net, seg.id, [&](int e) {
        if (wanted.count(slot_key(l, e))) blocked_by[net] += 1;
      });
    }
  }
  std::vector<std::pair<int, int>> victims(blocked_by.begin(), blocked_by.end());
  // Tie-break on net id: without it the sort inherits the unordered_map's
  // bucket order and the victim sequence (hence the final assignment) stops
  // being a pure function of the input.
  std::sort(victims.begin(), victims.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });

  // 3. Re-assign victims with the wanted slots priced as forbidden. A move
  //    that worsens global wire or via overflow is reverted outright — the
  //    pass trades *placement*, never legality.
  int moved = 0;
  const long wire_ov_before = state->wire_overflow();
  const long via_ov_before = state->via_overflow();
  long wire_ov = wire_ov_before;
  long via_ov = via_ov_before;
  for (const auto& [net, blocks] : victims) {
    (void)blocks;
    if (moved >= options.max_victims_per_round) break;
    const route::SegTree& tree = state->tree(net);
    const std::vector<int> old_layers = state->layers(net);
    state->clear_net(net);

    const int nv = state->nv();
    assign::NetDpCosts costs;
    costs.seg_cost = [&, nv](int s, int l) {
      double cost = 0.0;
      state->for_each_edge(net, s, [&](int e) {
        if (wanted.count(slot_key(l, e))) {
          cost += 1e7;  // stay out of the corridor being cleared
        }
        const int usage = state->wire_usage(l, e);
        const int cap = state->wire_cap(l, e);
        if (usage + 1 > cap) {
          cost += 1e5 * (usage + 1 - cap);  // never trade into wire overflow
        } else {
          cost += static_cast<double>(usage) / std::max(1, cap);
        }
      });
      // Track occupancy consumes nv via sites per crossed cell (4d); a
      // displacement must not trade wire headroom for via overflow.
      state->for_each_cell(net, s, [&](int cell) {
        if (state->via_load(l, cell) + nv > state->via_cap(l, cell)) cost += 1e4;
      });
      for (const route::SinkAttach& sink : tree.sinks) {
        if (sink.seg_id == s) cost += std::abs(l - sink.pin_layer);
      }
      return cost;
    };
    costs.root_via_cost = [&](int, int l) {
      return static_cast<double>(std::abs(l - tree.root_pin_layer));
    };
    costs.via_cost = [&, net](int c, int lp, int lc) {
      double cost = std::abs(lp - lc);
      const route::Segment& seg = state->tree(net).segs[c];
      const int cell = g.cell_id(seg.a.x, seg.a.y);
      for (int l = std::min(lp, lc) + 1; l < std::max(lp, lc); ++l) {
        if (state->via_load(l, cell) + 1 > state->via_cap(l, cell)) cost += 1e4;
      }
      return cost;
    };
    auto allowed = [&](int s) -> const std::vector<int>& {
      return state->allowed_layers(tree.segs[s].horizontal);
    };
    std::vector<int> fresh = assign::solve_net_dp(tree, allowed, costs);
    if (fresh == old_layers) {
      state->set_layers(net, old_layers);  // nowhere better to go
      continue;
    }
    state->set_layers(net, std::move(fresh));
    const long wire_now = state->wire_overflow();
    const long via_now = state->via_overflow();
    if (wire_now > wire_ov || via_now > via_ov) {
      state->set_layers(net, old_layers);  // legality first
      continue;
    }
    wire_ov = wire_now;
    via_ov = via_now;
    ++moved;
  }
  LOG_DEBUG("displace: %zu wanted slots, %d victims moved", wanted.size(), moved);
  return moved;
}

}  // namespace cpla::core
