#include "src/core/backend_arbiter.hpp"

#include <algorithm>

#include "src/obs/metrics.hpp"

namespace cpla::core {

const char* to_string(BackendMode mode) {
  switch (mode) {
    case BackendMode::kSdp: return "sdp";
    case BackendMode::kLagr: return "lagr";
    case BackendMode::kHybrid: return "hybrid";
  }
  return "?";
}

void ArbiterStats::merge(const ArbiterStats& other) {
  sdp_chosen += other.sdp_chosen;
  lagr_chosen += other.lagr_chosen;
  sdp_escalations += other.sdp_escalations;
  lagr_escalations += other.lagr_escalations;
}

Engine BackendArbiter::choose(const PartitionProblem& problem, const GuardOptions& guard,
                              Engine base) const {
  if (base == Engine::kIlp) return base;
  if (options_.mode == BackendMode::kSdp) return base;
  if (options_.mode == BackendMode::kLagr) return Engine::kLagr;

  const int vars = static_cast<int>(problem.vars.size());
  int threshold = options_.lagr_min_vars;
  if (options_.use_history && stats_.sdp_chosen >= options_.history_min_solves &&
      static_cast<double>(stats_.sdp_escalations) >
          options_.history_escalation_rate * static_cast<double>(stats_.sdp_chosen)) {
    threshold = std::max(1, threshold / 2);
  }
  if (vars >= threshold) return Engine::kLagr;
  if (guard.deadline_ms > 0.0 && vars >= options_.deadline_min_vars) return Engine::kLagr;
  return Engine::kSdp;
}

void BackendArbiter::record(Engine chosen, const GuardedSolve& solve) {
  static obs::Counter& sdp_chosen = obs::metrics().counter("lagr.arbiter.sdp_chosen");
  static obs::Counter& lagr_chosen = obs::metrics().counter("lagr.arbiter.lagr_chosen");
  static obs::Counter& escalated = obs::metrics().counter("lagr.arbiter.escalations");
  const bool escalation = solve.tier != GuardTier::kPrimary;
  if (chosen == Engine::kLagr) {
    ++stats_.lagr_chosen;
    lagr_chosen.add();
    if (escalation) ++stats_.lagr_escalations;
  } else {
    ++stats_.sdp_chosen;
    sdp_chosen.add();
    if (escalation) ++stats_.sdp_escalations;
  }
  if (escalation) escalated.add();
}

}  // namespace cpla::core
