#pragma once

// TILA baseline [Yu et al., ICCAD'15]: timing-driven incremental layer
// assignment by Lagrangian relaxation. Reimplemented here as the paper's
// comparison point. Characteristics faithfully reproduced:
//   * objective = *weighted sum* of segment/via delays, each segment
//     weighted by its number of downstream sinks (total net delay), rather
//     than the per-net critical path;
//   * capacity constraints priced by Lagrange multipliers updated with a
//     projected subgradient step between iterations;
//   * per-iteration reassignment via fast exact per-net tree DP (its
//     min-cost-flow-speed engine).
// The known weakness the paper exploits — multiplier-sensitive convergence
// and no direct control of the worst path — emerges naturally.

#include "src/assign/state.hpp"
#include "src/core/critical.hpp"
#include "src/timing/rc_table.hpp"

namespace cpla::core {

struct TilaOptions {
  double critical_ratio = 0.005;
  int iterations = 6;
  double lambda_step = 0.25;  // subgradient step, relative to delay scale
  double mu_step = 0.10;
};

struct TilaResult {
  int iterations_run = 0;
  double weighted_delay = 0.0;  // final objective
};

/// Optimizes the released nets in-place. The same CriticalSet can be shared
/// with a CPLA run for a fair comparison (the paper releases the same nets
/// for both).
TilaResult run_tila(assign::AssignState* state, const timing::RcTable& rc,
                    const CriticalSet& critical, const TilaOptions& options = {});

}  // namespace cpla::core
