#include "src/core/flow.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <optional>

#include "src/core/ilp_engine.hpp"
#include "src/core/scheduler.hpp"
#include "src/core/sdp_engine.hpp"
#include "src/obs/metrics.hpp"
#include "src/timing/elmore.hpp"
#include "src/util/check.hpp"
#include "src/util/logging.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace cpla::core {

LaMetrics compute_metrics(const assign::AssignState& state, const timing::RcTable& rc,
                          const CriticalSet& critical) {
  LaMetrics m;
  double sum = 0.0;
  for (int net : critical.nets) {
    const double tcp =
        timing::critical_delay(state.tree(net), state.layers(net), rc);
    sum += tcp;
    m.max_tcp = std::max(m.max_tcp, tcp);
  }
  m.avg_tcp = critical.nets.empty() ? 0.0 : sum / static_cast<double>(critical.nets.size());
  m.via_overflow = state.via_overflow();
  m.via_count = state.via_count();
  m.wire_overflow = state.wire_overflow();
  return m;
}

CplaResult run_cpla(assign::AssignState* state, const timing::RcTable& rc,
                    const CriticalSet& critical, const CplaOptions& options) {
  CplaResult result;
  const auto& g = state->design().grid;

  // Cooperative cancellation, polled at round and commit-batch boundaries
  // (never inside a partition solve, so every committed batch is complete).
  auto cancel_requested = [&options]() {
    return options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed);
  };

  // Best-state tracking: rounds optimize the weighted-sum model, which can
  // trade the worst path against the average; the flow returns the best
  // state seen under an equal-weight (Avg, Max) score, so neither metric
  // regresses past the initial assignment.
  auto score_of = [&](double avg, double max, double avg0, double max0) {
    return 0.5 * avg / std::max(1e-12, avg0) + 0.5 * max / std::max(1e-12, max0);
  };
  // Per-net timing, optionally memoized through the ECO timing cache
  // (bit-identical either way: critical_delay() is exactly
  // compute_timing().max_sink_delay, and the cache replays compute_timing
  // results keyed on the exact layer vector). Only called from sequential
  // sections — the cache is not thread-safe.
  auto net_delay = [&](int net) {
    return options.timing_cache
               ? options.timing_cache->get(net, state->tree(net), state->layers(net), rc)
                     .max_sink_delay
               : timing::critical_delay(state->tree(net), state->layers(net), rc);
  };
  auto timing_now = [&]() {
    double sum = 0.0, worst = 0.0;
    for (int net : critical.nets) {
      const double d = net_delay(net);
      sum += d;
      worst = std::max(worst, d);
    }
    return std::pair<double, double>(
        critical.nets.empty() ? 0.0 : sum / static_cast<double>(critical.nets.size()), worst);
  };

  // The per-partition solve, routed through the ECO hook when one is set.
  // A serial run (options.parallel == false) must stay serial all the way
  // down, so the flow-level flag also gates the SDP solver's inner OpenMP.
  sdp::SdpOptions sdp_opts = options.sdp;
  sdp_opts.parallel = sdp_opts.parallel && options.parallel;

  // Cross-backend arbiter: per-partition SDP-vs-Lagrangian choice. Its
  // choose() is consulted concurrently from the solve phase but reads only
  // history frozen at the last commit boundary; record() runs in the
  // serial commit section below, so every solve in one batch sees the same
  // history and the decision sequence is reproducible. With the default
  // mode (kSdp) choose() returns options.engine untouched — the stock
  // flow. An installed partition_solver hook owns backend choice instead.
  BackendArbiter arbiter(options.backend);
  const bool arbiter_active =
      options.backend.mode != BackendMode::kSdp && !options.partition_solver;
  const PartitionSolveFn solve_one =
      options.partition_solver
          ? options.partition_solver
          : PartitionSolveFn([&options, &arbiter, sdp_opts](const PartitionProblem& p,
                                                            const assign::AssignState& s,
                                                            GuardStats* stats) {
              const Engine engine = arbiter.choose(p, options.guard, options.engine);
              return guarded_solve(p, s, engine, sdp_opts, options.ilp, options.guard,
                                   stats);
            });

  // Batched solve phase: applies only to the SDP engine without a per-solve
  // deadline, and — when an ECO per-partition hook is installed — only if
  // its batch counterpart is too (the hook must observe every solve).
  const bool batch_mode = options.batch.enabled && options.engine == Engine::kSdp &&
                          options.guard.deadline_ms <= 0.0 &&
                          (!options.partition_solver || bool(options.partition_batch_solver));
  const PartitionBatchSolveFn batch_solve =
      options.partition_batch_solver
          ? options.partition_batch_solver
          : PartitionBatchSolveFn([&options, sdp_opts](
                                      const std::vector<const PartitionProblem*>& ps,
                                      const assign::AssignState& s, GuardStats* stats) {
              return guarded_solve_batch(ps, s, options.engine, sdp_opts, options.ilp,
                                         options.guard, options.batch.limits, stats);
            });
  // The task-graph scheduler persists across rounds (worker threads are
  // created once and parked between runs); a serial flow gets the inline
  // single-thread path.
  std::optional<Scheduler> scheduler;
  if (batch_mode) scheduler.emplace(options.parallel ? 0 : 1);

  const auto [avg0, max0] = timing_now();
  double best_score = 1.0;
  std::map<int, std::vector<int>> best_state;
  for (int net : critical.nets) best_state.emplace(net, state->layers(net));

  // Live-STA rediscovery: with a timing graph attached, rounds work on a
  // freshly re-selected set (`active`); without one, on the entry set.
  CriticalSet rediscovered;
  const CriticalSet* active = &critical;

  // One full partition-solve-commit sweep under the given model options;
  // returns false if there was nothing to do.
  auto run_round = [&](const ModelOptions& model_options) {
    obs::ScopedPhase round_phase("core.flow.round");
    obs::metrics().counter("core.flow.rounds").add();

    // Timing snapshot of every released net (downstream caps and critical
    // paths are frozen for this round's solves).
    std::unordered_map<int, timing::NetTiming> timings;
    {
      obs::ScopedPhase phase("core.flow.timing_snapshot");
      for (int net : active->nets) {
        if (options.timing_cache) {
          timings.emplace(
              net, options.timing_cache->get(net, state->tree(net), state->layers(net), rc));
        } else {
          timings.emplace(net,
                          timing::compute_timing(state->tree(net), state->layers(net), rc));
        }
      }
    }

    // All released segments with midpoints.
    std::vector<SegRef> refs;
    for (int net : active->nets) {
      const route::SegTree& tree = state->tree(net);
      for (const route::Segment& seg : tree.segs) {
        SegRef ref;
        ref.net = net;
        ref.seg = seg.id;
        ref.mid = grid::XY{(seg.a.x + seg.b.x) / 2, (seg.a.y + seg.b.y) / 2};
        refs.push_back(ref);
      }
    }
    if (refs.empty()) return false;

    obs::ScopedPhase partition_phase("core.flow.partition");
    const PartitionResult parts = partition(g.xsize(), g.ysize(), refs, options.partition);
    partition_phase.stop();
    result.max_partition_depth = std::max(result.max_partition_depth, parts.max_depth);
    const int num_parts = static_cast<int>(parts.leaves.size());
    obs::metrics().counter("core.flow.partitions").add(num_parts);

    // Gauss-Seidel sweep: each partition is built against the *latest*
    // state and committed immediately, so neighboring partitions see the
    // newly updated layers (the paper's [12] iteration). With OpenMP,
    // batches of `threads` partitions are solved Jacobi-style in parallel
    // and committed between batches.
#ifdef _OPENMP
    int batch = options.parallel ? std::max(1, omp_get_max_threads()) : 1;
#else
    int batch = 1;
#endif
    // Batch mode packs kLanes = 8 partition SDPs per slab chunk, so the
    // auto commit batch widens to keep lanes full (4 chunks' worth).
    if (batch_mode) batch = std::max(batch, 32);
    if (options.commit_batch > 0) batch = options.commit_batch;
    if (options.jacobi_commits) batch = num_parts;
    for (int base = 0; base < num_parts; base += batch) {
      if (cancel_requested()) {
        result.cancelled = true;
        break;
      }
      const int count = std::min(batch, num_parts - base);
      std::vector<PartitionProblem> problems(static_cast<std::size_t>(count));
      std::vector<GuardedSolve> solutions(static_cast<std::size_t>(count));
      std::vector<GuardStats> local_stats(static_cast<std::size_t>(count));
      obs::ScopedPhase solve_phase("core.flow.solve");
      if (batch_mode) {
        // Task-graph schedule: per-partition build nodes run first (they
        // only read the shared state), then one batch node covers every
        // small partition while oversized ones get their own scalar-route
        // nodes — all feeding the unchanged solve-guard chain.
        {
          TaskGraph builds;
          for (int i = 0; i < count; ++i) {
            builds.add([&, i] {
              ScopedFailureContext context(base + i, -1);
              problems[static_cast<std::size_t>(i)] = build_partition_problem(
                  *state, rc, timings, parts.leaves[static_cast<std::size_t>(base + i)],
                  model_options);
            });
          }
          scheduler->run(&builds);
        }
        // Conservative pre-classification: partitions whose lifted dense
        // dimension exceeds the batch limit route scalar here; residual
        // ineligibility (Schur program size, structure) is handled inside
        // the batch solver itself.
        std::vector<int> small;
        TaskGraph solves;
        for (int i = 0; i < count; ++i) {
          int total_options = 0;
          for (const VarGroup& var : problems[static_cast<std::size_t>(i)].vars) {
            total_options += static_cast<int>(var.layers.size());
          }
          // Arbiter-routed Lagrangian partitions take the scalar node path
          // (the slab batch is an SDP tier-0 pass); solve_one re-derives
          // the same choice from the same frozen history.
          const bool lagr_routed =
              arbiter_active && arbiter.choose(problems[static_cast<std::size_t>(i)],
                                               options.guard,
                                               options.engine) == Engine::kLagr;
          if (!lagr_routed && 1 + total_options <= options.batch.limits.max_dense_dim) {
            small.push_back(i);
            continue;
          }
          solves.add([&, i] {
            ScopedFailureContext context(base + i, -1);
            solutions[static_cast<std::size_t>(i)] =
                solve_one(problems[static_cast<std::size_t>(i)], *state,
                          &local_stats[static_cast<std::size_t>(i)]);
          });
        }
        GuardStats batch_stats;
        std::vector<GuardedSolve> batched;
        if (!small.empty()) {
          solves.add([&] {
            std::vector<const PartitionProblem*> ptrs;
            ptrs.reserve(small.size());
            for (int i : small) ptrs.push_back(&problems[static_cast<std::size_t>(i)]);
            batched = batch_solve(ptrs, *state, &batch_stats);
          });
        }
        if (solves.size() > 0) scheduler->run(&solves);
        for (std::size_t s = 0; s < small.size(); ++s) {
          solutions[static_cast<std::size_t>(small[s])] = std::move(batched[s]);
        }
        result.guard_stats.merge(batch_stats);
      } else {
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (options.parallel && count > 1)
#endif
        for (int i = 0; i < count; ++i) {
          ScopedFailureContext context(base + i, -1);
          problems[static_cast<std::size_t>(i)] = build_partition_problem(
              *state, rc, timings, parts.leaves[static_cast<std::size_t>(base + i)],
              model_options);
          solutions[static_cast<std::size_t>(i)] =
              solve_one(problems[static_cast<std::size_t>(i)], *state,
                        &local_stats[static_cast<std::size_t>(i)]);
        }
      }
      solve_phase.stop();
      for (const GuardStats& s : local_stats) result.guard_stats.merge(s);

      // Arbiter accounting, in the serial section: decisions are
      // recomputed against the same pre-batch history the parallel phase
      // consulted (record() has not run since), then recorded in partition
      // order so the history advances deterministically between batches.
      if (arbiter_active) {
        std::vector<Engine> chosen(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) {
          chosen[static_cast<std::size_t>(i)] = arbiter.choose(
              problems[static_cast<std::size_t>(i)], options.guard, options.engine);
        }
        for (int i = 0; i < count; ++i) {
          arbiter.record(chosen[static_cast<std::size_t>(i)],
                         solutions[static_cast<std::size_t>(i)]);
        }
      }
      obs::ScopedPhase commit_phase("core.flow.commit");

      // Commit each partition as a transaction: apply its picks, re-check
      // capacity and the affected nets' timing against the pre-commit
      // state, and roll the partition back on regression. (Partitions own
      // disjoint segments, so per-partition commits compose exactly like
      // the previous merged batch commit when nothing rolls back.)
      for (int i = 0; i < count; ++i) {
        const PartitionProblem& p = problems[i];
        if (p.vars.empty()) continue;
        // Ordered maps throughout the commit path: the guard's before/after
        // sums accumulate in iteration order, so hash-bucket order would
        // leak into the rollback decision bits.
        std::map<int, std::vector<int>> updates;
        bool changed = false;
        for (std::size_t vi = 0; vi < p.vars.size(); ++vi) {
          const VarGroup& var = p.vars[vi];
          auto it = updates.find(var.net);
          if (it == updates.end()) it = updates.emplace(var.net, state->layers(var.net)).first;
          const int new_layer = var.layers[solutions[i].result.pick[vi]];
          if (it->second[var.seg] != new_layer) changed = true;
          it->second[var.seg] = new_layer;
        }
        if (!changed) continue;

        if (!options.guard.enabled || !options.guard.transactional_commit) {
          for (auto& [net, layers] : updates) state->set_layers(net, std::move(layers));
          continue;
        }

        std::map<int, std::vector<int>> undo;
        double before_sum = 0.0, before_max = 0.0;
        for (const auto& [net, layers] : updates) {
          (void)layers;
          undo.emplace(net, state->layers(net));
          const double d = net_delay(net);
          before_sum += d;
          before_max = std::max(before_max, d);
        }
        const long before_overflow = state->wire_overflow() + state->via_overflow();

        for (auto& [net, layers] : updates) state->set_layers(net, std::move(layers));

        double after_sum = 0.0, after_max = 0.0;
        for (const auto& [net, layers] : undo) {
          (void)layers;
          const double d = net_delay(net);
          after_sum += d;
          after_max = std::max(after_max, d);
        }
        const long after_overflow = state->wire_overflow() + state->via_overflow();

        // Valid when capacity did not regress and timing of the touched
        // nets either improved in the worst case or held in the sum (the
        // max-focus weighting legitimately trades sum for max).
        const bool capacity_ok = after_overflow <= before_overflow;
        const bool timing_ok = after_sum <= before_sum * (1.0 + 1e-9) ||
                               after_max < before_max * (1.0 - 1e-12);
        if (!capacity_ok || !timing_ok) {
          for (auto& [net, layers] : undo) state->set_layers(net, std::move(layers));
          ++result.guard_stats.commit_rollbacks;
          obs::metrics().counter("core.guard.commit_rollbacks").add();
        }
      }
    }
    result.partitions_solved += num_parts;
    return true;
  };

  double prev_avg = 1e300;
  for (int round = 0; round < options.max_rounds; ++round) {
    if (cancel_requested()) {
      result.cancelled = true;
      break;
    }
    result.rounds = round + 1;

    // Re-time incrementally and re-select the working set from live slack
    // (worst-over-corners merge) before the round rips anything up.
    if (options.sta_graph != nullptr) {
      obs::ScopedPhase sta_phase("core.flow.sta");
      options.sta_graph->update(*state);
      rediscovered = select_critical(*state, *options.sta_graph, options.critical_ratio);
      active = &rediscovered;
      obs::metrics().counter("core.flow.sta_reselects").add();
    }

    if (options.displace_victims) {
      obs::ScopedPhase phase("core.flow.displace");
      make_headroom(state, rc, *active, options.displace);
    }

    // Snapshot the released nets so a regressing round can be rolled back
    // (the chaotic Gauss-Seidel sweep is not monotone).
    std::map<int, std::vector<int>> snapshot;
    for (int net : active->nets) snapshot.emplace(net, state->layers(net));

    if (!run_round(options.model)) break;

    // Convergence check on Avg(Tcp); roll back a regressing round. The
    // best (Avg, Max)-scored state is tracked independently.
    const auto [avg, worst] = timing_now();
    const double score = score_of(avg, worst, avg0, max0);
    if (score < best_score) {
      best_score = score;
      for (int net : critical.nets) best_state[net] = state->layers(net);
    }
    LOG_DEBUG("cpla: round %d avg(Tcp)=%.1f max(Tcp)=%.1f", round + 1, avg, worst);
    if (avg > prev_avg) {
      for (auto& [net, layers] : snapshot) state->set_layers(net, std::move(layers));
      break;
    }
    if (avg > prev_avg * (1.0 - options.min_improvement)) {
      prev_avg = avg;
      break;
    }
    prev_avg = avg;
  }

  // Max-shaving refinement: restart from the best state with the weights
  // collapsed onto the globally-worst nets, keeping only score improvements.
  for (auto& [net, layers] : best_state) state->set_layers(net, layers);
  if (!result.cancelled && options.max_refine_rounds > 0 &&
      options.model.max_focus_gamma > 0.0) {
    ModelOptions refine = options.model;
    refine.max_focus_gamma = options.refine_gamma;
    for (int round = 0; round < options.max_refine_rounds; ++round) {
      if (cancel_requested()) {
        result.cancelled = true;
        break;
      }
      if (!run_round(refine)) break;
      const auto [avg, worst] = timing_now();
      const double score = score_of(avg, worst, avg0, max0);
      LOG_DEBUG("cpla: refine %d avg(Tcp)=%.1f max(Tcp)=%.1f", round + 1, avg, worst);
      if (score < best_score) {
        best_score = score;
        for (int net : critical.nets) best_state[net] = state->layers(net);
      } else {
        break;
      }
    }
  }

  // Land on the best state seen.
  for (auto& [net, layers] : best_state) state->set_layers(net, std::move(layers));

  // Leave the attached graph in sync with the landed state.
  if (options.sta_graph != nullptr) options.sta_graph->update(*state);

  result.metrics = compute_metrics(*state, rc, critical);
  result.arbiter_stats = arbiter.stats();
  // Per-partition fallback statistics (counts per escalation tier).
  if (result.guard_stats.solves > 0) result.guard_stats.log_summary("cpla");
  if (arbiter_active) {
    LOG_INFO("cpla arbiter (%s): sdp=%ld lagr=%ld escalations sdp=%ld lagr=%ld",
             to_string(options.backend.mode), result.arbiter_stats.sdp_chosen,
             result.arbiter_stats.lagr_chosen, result.arbiter_stats.sdp_escalations,
             result.arbiter_stats.lagr_escalations);
  }
  return result;
}

CplaResult run_cpla(assign::AssignState* state, const timing::RcTable& rc,
                    const CplaOptions& options) {
  const CriticalSet critical = select_critical(*state, rc, options.critical_ratio);
  return run_cpla(state, rc, critical, options);
}

OptimizeResult optimize(assign::AssignState* state, const timing::RcTable& rc,
                        const CriticalSet& critical, const CplaOptions& options) {
  OptimizeResult out;

  // Snapshot *every* assigned net (victim displacement touches non-released
  // nets too) so any failure — including an exception escaping the flow —
  // restores the initial assignment, which is always a valid answer.
  std::vector<std::vector<int>> snapshot(static_cast<std::size_t>(state->num_nets()));
  for (int net = 0; net < state->num_nets(); ++net) snapshot[net] = state->layers(net);

  auto timing_over_critical = [&]() {
    double sum = 0.0, worst = 0.0;
    for (int net : critical.nets) {
      const double d =
          options.timing_cache
              ? options.timing_cache->get(net, state->tree(net), state->layers(net), rc)
                    .max_sink_delay
              : timing::critical_delay(state->tree(net), state->layers(net), rc);
      sum += d;
      worst = std::max(worst, d);
    }
    return std::pair<double, double>(
        critical.nets.empty() ? 0.0 : sum / static_cast<double>(critical.nets.size()), worst);
  };
  const auto [avg0, max0] = timing_over_critical();
  const long overflow0 = state->wire_overflow() + state->via_overflow();

  auto restore = [&]() {
    for (int net = 0; net < state->num_nets(); ++net) {
      if (state->layers(net) != snapshot[net]) state->set_layers(net, snapshot[net]);
    }
  };

  bool restored = false;
  try {
    out.result = run_cpla(state, rc, critical, options);
  } catch (const std::exception& e) {
    LOG_ERROR("optimize: flow threw (%s); restoring the initial assignment", e.what());
    out.status = Status(StatusCode::kInternal, e.what());
    restore();
    restored = true;
  } catch (...) {
    LOG_ERROR("optimize: flow threw a non-std exception; restoring the initial assignment");
    out.status = Status(StatusCode::kInternal, "non-std exception escaped the flow");
    restore();
    restored = true;
  }

  if (!restored) {
    // Defense in depth on the never-worse contract: run_cpla already lands
    // on its best tracked state, but the contract is re-verified here
    // against the entry state and enforced by rollback if violated.
    const auto [avg1, max1] = timing_over_critical();
    const long overflow1 = state->wire_overflow() + state->via_overflow();
    const double tol = 1.0 + 1e-9;
    if (avg1 > avg0 * tol || max1 > max0 * tol || overflow1 > overflow0) {
      LOG_WARN(
          "optimize: result regressed (avg %.3f->%.3f max %.3f->%.3f ov %ld->%ld); "
          "restoring the initial assignment",
          avg0, avg1, max0, max1, overflow0, overflow1);
      restore();
      restored = true;
    }
  }
  if (restored) out.result.metrics = compute_metrics(*state, rc, critical);
  return out;
}

OptimizeResult optimize(assign::AssignState* state, const timing::RcTable& rc,
                        const CplaOptions& options) {
  const CriticalSet critical = select_critical(*state, rc, options.critical_ratio);
  return optimize(state, rc, critical, options);
}

}  // namespace cpla::core
