#pragma once

// Self-adaptive quadruple partitioning (Section 3.2). The grid is first cut
// into K x K regions; any region holding more released segments than the
// cap is recursively quartered (a quadtree) until every leaf holds at most
// `max_segments` — or the leaf shrinks to a single tile, which stops
// refinement to avoid the deadlock the paper warns about. Leaves balance
// the per-thread workload of the parallel SDP solves.

#include <vector>

#include "src/grid/grid_graph.hpp"

namespace cpla::core {

struct SegRef {
  int net = -1;
  int seg = -1;
  grid::XY mid;  // segment midpoint, used for partition membership
};

struct PartitionRegion {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;  // half-open [x0,x1) x [y0,y1)
  std::vector<SegRef> segments;
  int depth = 0;  // 0 = one of the initial K x K cells
};

struct PartitionOptions {
  int k = 4;              // initial K x K division
  int max_segments = 10;  // paper default: 10 per partition
};

struct PartitionResult {
  std::vector<PartitionRegion> leaves;  // only non-empty leaves
  int max_depth = 0;
  int total_regions = 0;  // including empty leaves, for diagnostics
};

PartitionResult partition(int xsize, int ysize, const std::vector<SegRef>& segments,
                          const PartitionOptions& options);

}  // namespace cpla::core
