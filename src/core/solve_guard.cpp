#include "src/core/solve_guard.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "src/assign/net_dp.hpp"
#include "src/core/ilp_engine.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/fault_inject.hpp"
#include "src/util/logging.hpp"
#include "src/util/timer.hpp"

namespace cpla::core {

const char* to_string(GuardTier tier) {
  switch (tier) {
    case GuardTier::kPrimary: return "primary";
    case GuardTier::kRetry: return "sdp-retry";
    case GuardTier::kIlp: return "ilp-fallback";
    case GuardTier::kNetDp: return "net-dp";
    case GuardTier::kKeepCurrent: return "keep-current";
  }
  return "?";
}

void GuardStats::merge(const GuardStats& other) {
  solves += other.solves;
  for (int t = 0; t < kNumGuardTiers; ++t) tier_used[t] += other.tier_used[t];
  deadline_hits += other.deadline_hits;
  numerical_failures += other.numerical_failures;
  iteration_limits += other.iteration_limits;
  validation_rejects += other.validation_rejects;
  commit_rollbacks += other.commit_rollbacks;
}

bool GuardStats::degraded() const {
  for (int t = 1; t < kNumGuardTiers; ++t) {
    if (tier_used[t] > 0) return true;
  }
  return commit_rollbacks > 0;
}

void GuardStats::log_summary(const char* label) const {
  log_msg(degraded() ? LogLevel::kWarn : LogLevel::kInfo,
          "%s guard: solves=%ld primary=%ld retry=%ld ilp=%ld net-dp=%ld kept=%ld "
          "rollbacks=%ld (deadline=%ld numerical=%ld iterlimit=%ld rejected=%ld)",
          label, solves, tier_used[0], tier_used[1], tier_used[2], tier_used[3], tier_used[4],
          commit_rollbacks, deadline_hits, numerical_failures, iteration_limits,
          validation_rejects);
}

namespace {

/// Option index of each var's current layer (0 when the current layer is
/// not among the allowed options, matching the engines' convention).
std::vector<int> incumbent_pick(const PartitionProblem& p) {
  std::vector<int> pick(p.vars.size(), 0);
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    for (std::size_t k = 0; k < p.vars[i].layers.size(); ++k) {
      if (p.vars[i].layers[k] == p.vars[i].current_layer) pick[i] = static_cast<int>(k);
    }
  }
  return pick;
}

void classify_failure(StatusCode code, GuardStats* stats) {
  switch (code) {
    case StatusCode::kDeadlineExceeded: ++stats->deadline_hits; break;
    case StatusCode::kNumericalFailure: ++stats->numerical_failures; break;
    case StatusCode::kIterationLimit: ++stats->iteration_limits; break;
    default: break;
  }
}

/// A tier's pick is committable iff it is well-formed, finite, no worse
/// than the incumbent on the model objective, and inside the capacity rows
/// (the incumbent itself is exempt from the row check: pre-existing
/// overflow must not block the no-op).
bool pick_acceptable(const PartitionProblem& p, const std::vector<int>& pick,
                     const std::vector<int>& incumbent, double incumbent_obj) {
  if (pick.size() != p.vars.size()) return false;
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    if (pick[i] < 0 || pick[i] >= static_cast<int>(p.vars[i].layers.size())) return false;
  }
  const double obj = p.evaluate(pick);
  if (!std::isfinite(obj)) return false;
  if (obj > incumbent_obj + 1e-9 * (1.0 + std::fabs(incumbent_obj))) return false;
  if (pick != incumbent && !rows_feasible(p, pick)) return false;
  return true;
}

}  // namespace

EngineResult solve_partition_net_dp(const PartitionProblem& p,
                                    const assign::AssignState& state) {
  EngineResult result;
  result.pick.assign(p.vars.size(), 0);
  if (p.vars.empty()) return result;

  // Vars and pairs grouped per net (pairs always couple segments of one
  // net — they are tree edges). Ordered map: per-net DP results are
  // disjoint, but solving in net-id order keeps the fallback's fault/log
  // sequence deterministic.
  std::map<int, std::vector<int>> net_vars;
  for (std::size_t i = 0; i < p.vars.size(); ++i) net_vars[p.vars[i].net].push_back(static_cast<int>(i));
  std::unordered_map<long long, int> pair_of;  // (parent var, child var) -> pair index
  for (std::size_t q = 0; q < p.pairs.size(); ++q) {
    pair_of[(static_cast<long long>(p.pairs[q].parent) << 32) | p.pairs[q].child] =
        static_cast<int>(q);
  }

  for (const auto& [net, vars] : net_vars) {
    ScopedFailureContext context(-1, net);
    const route::SegTree& tree = state.tree(net);
    const std::vector<int>& current = state.layers(net);

    // Allowed layers per segment: the var's options for released segments,
    // the (frozen) current layer for everything else.
    std::vector<std::vector<int>> allowed(tree.segs.size());
    std::vector<int> var_of(tree.segs.size(), -1);
    for (std::size_t s = 0; s < tree.segs.size(); ++s) allowed[s] = {current[s]};
    for (int vi : vars) {
      allowed[p.vars[vi].seg] = p.vars[vi].layers;
      var_of[p.vars[vi].seg] = vi;
    }

    assign::NetDpCosts costs;
    // Linear cost of a released segment's layer choice; fixed segments are
    // constants and contribute nothing to the argmin.
    costs.seg_cost = [&](int s, int l) -> double {
      const int vi = var_of[s];
      if (vi < 0) return 0.0;
      const VarGroup& var = p.vars[vi];
      for (std::size_t k = 0; k < var.layers.size(); ++k) {
        if (var.layers[k] == l) return var.cost[k];
      }
      return 0.0;
    };
    // Vias to fixed neighbors are already folded into the linear costs by
    // the model builder; only released-released couplings vary here.
    costs.root_via_cost = [](int, int) { return 0.0; };
    costs.via_cost = [&](int c, int lp, int lc) -> double {
      const int pv = var_of[tree.segs[c].parent];
      const int cv = var_of[c];
      if (pv < 0 || cv < 0) return 0.0;
      auto it = pair_of.find((static_cast<long long>(pv) << 32) | cv);
      if (it == pair_of.end()) return 0.0;
      return p.pair_cost(p.pairs[it->second], lp, lc);
    };

    const std::vector<int> dp_layers = assign::solve_net_dp(
        tree, [&](int s) -> const std::vector<int>& { return allowed[s]; }, costs);

    for (int vi : vars) {
      const VarGroup& var = p.vars[vi];
      for (std::size_t k = 0; k < var.layers.size(); ++k) {
        if (var.layers[k] == dp_layers[var.seg]) result.pick[vi] = static_cast<int>(k);
      }
    }
  }

  if (p.options.polish && rows_feasible(p, result.pick)) polish_pick(p, &result.pick);
  result.objective = p.evaluate(result.pick);
  return result;
}

/// The escalation chain. `injected_primary` (nullable) supplies the
/// primary tier's engine result precomputed by the batched backend; it
/// must equal what the inline primary solve would produce (no wall-clock
/// deadline may be active — the batch entry point guarantees both).
static GuardedSolve guarded_solve_impl(const PartitionProblem& p,
                                       const assign::AssignState& state, Engine engine,
                                       const sdp::SdpOptions& sdp_options,
                                       const ilp::MipOptions& ilp_options,
                                       const GuardOptions& guard,
                                       EngineResult* injected_primary, GuardStats* stats) {
  GuardedSolve out;
  ++stats->solves;
  if (p.vars.empty()) {
    ++stats->tier_used[static_cast<int>(GuardTier::kPrimary)];
    return out;
  }

  const std::vector<int> incumbent = incumbent_pick(p);
  const double incumbent_obj = p.evaluate(incumbent);

  auto keep_current = [&](StatusCode why) {
    out.tier = GuardTier::kKeepCurrent;
    out.result = EngineResult{};
    out.result.pick = incumbent;
    out.result.objective = incumbent_obj;
    out.result.solver_ok = false;
    out.result.code = why;
    if (why != StatusCode::kOk) {
      out.status = Status(why, "partition solve degraded to keep-current");
    }
    ++stats->tier_used[static_cast<int>(GuardTier::kKeepCurrent)];
  };

  auto primary_result = [&](const sdp::SdpOptions& opts) {
    if (injected_primary != nullptr) return std::move(*injected_primary);
    switch (engine) {
      case Engine::kSdp: return solve_partition_sdp(p, state, opts);
      case Engine::kLagr: return solve_partition_lagr(p, state, guard.lagr);
      case Engine::kIlp: break;
    }
    return solve_partition_ilp(p, state, ilp_options);
  };

  if (!guard.enabled) {
    // Legacy path: one engine call, accepted unconditionally.
    out.result = primary_result(sdp_options);
    ++stats->tier_used[static_cast<int>(GuardTier::kPrimary)];
    return out;
  }

  WallTimer timer;
  const bool forced_deadline = CPLA_FAULT_POINT("solve_guard.deadline");
  auto deadline_expired = [&]() {
    if (forced_deadline) return true;
    return guard.deadline_ms > 0.0 && timer.milliseconds() >= guard.deadline_ms;
  };
  auto sdp_budget = [&](const sdp::SdpOptions& base) {
    sdp::SdpOptions budgeted = base;
    if (guard.deadline_ms > 0.0) {
      const double remaining = guard.deadline_ms - timer.milliseconds();
      budgeted.time_limit_ms = std::max(0.01, remaining);
    }
    return budgeted;
  };

  StatusCode last_failure = StatusCode::kOk;
  auto attempt = [&](GuardTier tier, EngineResult attempt_result) {
    if (attempt_result.code != StatusCode::kOk) {
      classify_failure(attempt_result.code, stats);
      last_failure = attempt_result.code;
    }
    // Iteration-limited solves still carry a usable pick; only hard
    // failures (numerical, deadline, infeasible) disqualify outright.
    const bool hard_failure = attempt_result.code == StatusCode::kNumericalFailure ||
                              attempt_result.code == StatusCode::kDeadlineExceeded ||
                              attempt_result.code == StatusCode::kInfeasible;
    if (!hard_failure &&
        pick_acceptable(p, attempt_result.pick, incumbent, incumbent_obj)) {
      out.tier = tier;
      out.result = std::move(attempt_result);
      ++stats->tier_used[static_cast<int>(tier)];
      return true;
    }
    if (!hard_failure) ++stats->validation_rejects;
    return false;
  };

  // Tier 0: the configured engine.
  if (deadline_expired()) {
    ++stats->deadline_hits;
    keep_current(StatusCode::kDeadlineExceeded);
    return out;
  }
  if (attempt(GuardTier::kPrimary, primary_result(sdp_budget(sdp_options)))) {
    return out;
  }

  // Tier 1: SDP retry with relaxed tolerance and a tighter iteration cap —
  // rescues ill-conditioned instances where chasing the last digits of the
  // gap is what breaks the Schur factorization. Under the Lagrangian
  // primary the retry is a *full* SDP solve instead: a cross-backend
  // rescue, since the two engines' failure modes are disjoint.
  if (engine == Engine::kSdp && !deadline_expired()) {
    sdp::SdpOptions relaxed = sdp_budget(sdp_options);
    relaxed.tol = sdp_options.tol * guard.retry_tol_scale;
    relaxed.max_iterations = std::min(sdp_options.max_iterations, guard.retry_max_iterations);
    if (attempt(GuardTier::kRetry, solve_partition_sdp(p, state, relaxed))) return out;
  } else if (engine == Engine::kLagr && !deadline_expired()) {
    if (attempt(GuardTier::kRetry, solve_partition_sdp(p, state, sdp_budget(sdp_options)))) {
      return out;
    }
  }

  // Tier 2: exact ILP for small partitions (GAP-LA-style engine switch:
  // below this size the exact search is cheap and has no PSD numerics).
  if (engine != Engine::kIlp && !deadline_expired() &&
      static_cast<int>(p.vars.size()) <= guard.ilp_fallback_max_vars) {
    ilp::MipOptions mip = ilp_options;
    mip.time_limit_s = guard.ilp_fallback_time_s;
    if (guard.deadline_ms > 0.0) {
      mip.time_limit_s =
          std::min(mip.time_limit_s, std::max(0.001, (guard.deadline_ms - timer.milliseconds()) * 1e-3));
    }
    if (attempt(GuardTier::kIlp, solve_partition_ilp(p, state, mip))) return out;
  }

  // Tier 3: per-net tree DP — deterministic, milliseconds, no numerics.
  if (!deadline_expired()) {
    if (attempt(GuardTier::kNetDp, solve_partition_net_dp(p, state))) return out;
  } else {
    ++stats->deadline_hits;
    last_failure = StatusCode::kDeadlineExceeded;
  }

  // Tier 4: keep the current assignment — the incremental framework's
  // always-valid answer.
  keep_current(last_failure);
  return out;
}

/// Shared by guarded_solve / guarded_solve_with_primary: mirrors per-solve
/// outcomes into the global registry — the local GuardStats aggregate
/// belongs to one flow invocation, while the registry feeds the bench JSON
/// / CI view across the whole process. In the batched path the wall
/// histogram covers only the escalation around the injected primary; the
/// batched tier-0 time lands in batch.solve.ms instead (see
/// src/sdp/batch_solver.cpp).
static GuardedSolve guarded_solve_mirrored(const PartitionProblem& p,
                                           const assign::AssignState& state, Engine engine,
                                           const sdp::SdpOptions& sdp_options,
                                           const ilp::MipOptions& ilp_options,
                                           const GuardOptions& guard,
                                           EngineResult* injected_primary, GuardStats* stats) {
  static obs::Counter& solves = obs::metrics().counter("core.guard.solves");
  static obs::Counter* tiers[kNumGuardTiers] = {
      &obs::metrics().counter("core.guard.tier.primary"),
      &obs::metrics().counter("core.guard.tier.sdp-retry"),
      &obs::metrics().counter("core.guard.tier.ilp-fallback"),
      &obs::metrics().counter("core.guard.tier.net-dp"),
      &obs::metrics().counter("core.guard.tier.keep-current"),
  };
  static obs::Counter& deadline_hits = obs::metrics().counter("core.guard.deadline_hits");
  static obs::Counter& numerical = obs::metrics().counter("core.guard.numerical_failures");
  static obs::Counter& iter_limits = obs::metrics().counter("core.guard.iteration_limits");
  static obs::Counter& rejects = obs::metrics().counter("core.guard.validation_rejects");
  static obs::Counter& sdp_iters = obs::metrics().counter("core.guard.sdp_iterations");
  static obs::Histogram& wall = obs::metrics().histogram("core.guard.solve.ms");

  const GuardStats before = *stats;
  WallTimer timer;
  GuardedSolve out = guarded_solve_impl(p, state, engine, sdp_options, ilp_options, guard,
                                        injected_primary, stats);
  wall.record(timer.milliseconds());
  solves.add();
  tiers[static_cast<int>(out.tier)]->add();
  deadline_hits.add(stats->deadline_hits - before.deadline_hits);
  numerical.add(stats->numerical_failures - before.numerical_failures);
  iter_limits.add(stats->iteration_limits - before.iteration_limits);
  rejects.add(stats->validation_rejects - before.validation_rejects);
  sdp_iters.add(out.result.iterations);
  return out;
}

GuardedSolve guarded_solve(const PartitionProblem& p, const assign::AssignState& state,
                           Engine engine, const sdp::SdpOptions& sdp_options,
                           const ilp::MipOptions& ilp_options, const GuardOptions& guard,
                           GuardStats* stats) {
  return guarded_solve_mirrored(p, state, engine, sdp_options, ilp_options, guard, nullptr,
                                stats);
}

GuardedSolve guarded_solve_with_primary(const PartitionProblem& p,
                                        const assign::AssignState& state, Engine engine,
                                        const sdp::SdpOptions& sdp_options,
                                        const ilp::MipOptions& ilp_options,
                                        const GuardOptions& guard, EngineResult primary,
                                        GuardStats* stats) {
  return guarded_solve_mirrored(p, state, engine, sdp_options, ilp_options, guard, &primary,
                                stats);
}

std::vector<GuardedSolve> guarded_solve_batch(
    const std::vector<const PartitionProblem*>& problems, const assign::AssignState& state,
    Engine engine, const sdp::SdpOptions& sdp_options, const ilp::MipOptions& ilp_options,
    const GuardOptions& guard, const sdp::BatchLimits& limits, GuardStats* stats) {
  std::vector<GuardedSolve> out(problems.size());

  // Wholesale per-partition fallback when batching cannot apply: a non-SDP
  // primary has nothing to batch, and a per-solve wall-clock deadline
  // cannot be honored lane-wise (every lane of a chunk shares one
  // iteration loop; sdp_budget would also make each lane's options depend
  // on the wall clock, breaking replay determinism).
  if (engine != Engine::kSdp || guard.deadline_ms > 0.0) {
    for (std::size_t i = 0; i < problems.size(); ++i) {
      out[i] =
          guarded_solve(*problems[i], state, engine, sdp_options, ilp_options, guard, stats);
    }
    return out;
  }

  // Tier 0 for every partition in one batched pass. With deadline_ms == 0
  // the scalar tier 0 solves under sdp_options verbatim (sdp_budget is the
  // identity), so the batched primary — bit-identical to sdp::solve per
  // problem by the batch solver's contract — is exactly what guarded_solve
  // would have computed inline.
  std::vector<PartitionSdp> built(problems.size());
  std::vector<const sdp::SdpProblem*> sps;
  std::vector<std::size_t> owner;  // sps index -> problems index
  for (std::size_t i = 0; i < problems.size(); ++i) {
    built[i] = build_partition_sdp(*problems[i]);
    if (built[i].problem.has_value()) {
      sps.push_back(&*built[i].problem);
      owner.push_back(i);
    }
  }
  const std::vector<sdp::SdpResult> solved = sdp::solve_batch(sps, sdp_options, limits);

  std::vector<EngineResult> primaries(problems.size());
  for (std::size_t s = 0; s < owner.size(); ++s) {
    primaries[owner[s]] = finish_partition_sdp(*problems[owner[s]], state, solved[s]);
  }
  for (std::size_t i = 0; i < problems.size(); ++i) {
    out[i] = guarded_solve_with_primary(*problems[i], state, engine, sdp_options, ilp_options,
                                        guard, std::move(primaries[i]), stats);
  }
  return out;
}

}  // namespace cpla::core
