#include "src/core/pipeline.hpp"

#include "src/obs/metrics.hpp"
#include "src/route/seg_tree.hpp"
#include "src/util/logging.hpp"
#include "src/util/timer.hpp"

namespace cpla::core {

Prepared prepare(grid::Design design, const PipelineOptions& options) {
  Prepared out;
  out.design = std::make_unique<grid::Design>(std::move(design));

  WallTimer timer;
  obs::ScopedPhase prepare_phase("core.pipeline.prepare");
  obs::ScopedPhase route_phase("core.pipeline.route2d");
  route::RoutingResult routed = route_all(*out.design, options.router);
  route_phase.stop();
  out.route_overflow_2d = routed.overflow;

  obs::ScopedPhase tree_phase("core.pipeline.extract_trees");
  std::vector<route::SegTree> trees;
  trees.reserve(out.design->nets.size());
  for (std::size_t n = 0; n < out.design->nets.size(); ++n) {
    trees.push_back(
        route::extract_tree(out.design->grid, out.design->nets[n], &routed.routes[n]));
  }
  tree_phase.stop();

  obs::ScopedPhase assign_phase("core.pipeline.initial_assign");
  out.state = std::make_unique<assign::AssignState>(out.design.get(), std::move(trees));
  assign::initial_assign(out.state.get(), options.initial);
  assign_phase.stop();
  out.rc = std::make_unique<timing::RcTable>(out.design->grid);

  LOG_INFO("pipeline: %s prepared in %.2fs", out.design->name.c_str(), timer.seconds());
  return out;
}

}  // namespace cpla::core
