#include "src/core/pipeline.hpp"

#include "src/route/seg_tree.hpp"
#include "src/util/logging.hpp"
#include "src/util/timer.hpp"

namespace cpla::core {

Prepared prepare(grid::Design design, const PipelineOptions& options) {
  Prepared out;
  out.design = std::make_unique<grid::Design>(std::move(design));

  WallTimer timer;
  route::RoutingResult routed = route_all(*out.design, options.router);
  out.route_overflow_2d = routed.overflow;

  std::vector<route::SegTree> trees;
  trees.reserve(out.design->nets.size());
  for (std::size_t n = 0; n < out.design->nets.size(); ++n) {
    trees.push_back(
        route::extract_tree(out.design->grid, out.design->nets[n], &routed.routes[n]));
  }

  out.state = std::make_unique<assign::AssignState>(out.design.get(), std::move(trees));
  assign::initial_assign(out.state.get(), options.initial);
  out.rc = std::make_unique<timing::RcTable>(out.design->grid);

  LOG_INFO("pipeline: %s prepared in %.2fs", out.design->name.c_str(), timer.seconds());
  return out;
}

}  // namespace cpla::core
